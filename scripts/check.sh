#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite plus the chaos suite, both under
# AddressSanitizer + UndefinedBehaviorSanitizer, and (with --tsan) the
# multithreaded compute + chaos + storage suites under ThreadSanitizer. A plain
# (unsanitized) run is assumed to happen through the default preset; this
# script is the slower, paranoid gate.
#
#   scripts/check.sh                # ASan/UBSan build + full ctest
#   scripts/check.sh --chaos        # ASan/UBSan build + chaos label only
#   scripts/check.sh --chaos-sweep [N]  # chaos label across N seed offsets
#   scripts/check.sh --tsan         # TSan build + compute and chaos labels
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--chaos-sweep" ]]; then
  # Re-run the chaos label under N distinct fault-injector seed ranges
  # (default 10). Each iteration exports TRINITY_CHAOS_SEED_OFFSET=i*1000;
  # every chaos test derives its seeds as base + offset, so each pass runs
  # the same assertions against a disjoint, fully deterministic fault
  # schedule. Offset 0 is the range the default ctest run uses.
  SWEEP="${2:-10}"
  cmake --preset sanitize
  cmake --build --preset sanitize -j "$(nproc)"
  cd build-sanitize
  for ((i = 0; i < SWEEP; ++i)); do
    echo "=== chaos sweep $((i + 1))/${SWEEP}: TRINITY_CHAOS_SEED_OFFSET=$((i * 1000)) ==="
    ASAN_OPTIONS=detect_leaks=0 TRINITY_CHAOS_SEED_OFFSET=$((i * 1000)) \
      ctest --output-on-failure -j "$(nproc)" -L 'chaos|serving|txn|coldtier'
  done
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # The compute engines run per-machine vertex loops on a thread pool; the
  # compute + chaos labels drive every multithreaded code path (supersteps,
  # sweep barriers, packed sends, crash recovery) under the race detector.
  # The storage label adds the concurrent-read torture suite (readers racing
  # defrag, relocations, and replica promotion on the shared-lock hot path);
  # the serving label adds the front-door suite (worker threads racing
  # admission control and the shared retry budget through a machine kill);
  # the analytics label adds snapshot builds racing live writers plus the
  # sharded triangle-counting pass; the txn label adds contended optimistic
  # commits (intent CAS races, wound-abort decision races, the shared
  # timestamp oracle) across worker threads; the coldtier label adds the
  # memory-hierarchy suite (readers racing fault-ins and clock eviction on
  # budgeted trunks).
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # libstdc++'s std::atomic<std::shared_ptr> spin-lock protocol is not
  # tsan-annotated; suppress the library internals (see scripts/tsan.supp).
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
  cd build-tsan
  ctest --output-on-failure -j "$(nproc)" -L 'compute|chaos|storage|serving|analytics|txn|coldtier'
  exit 0
fi

FILTER=()
if [[ "${1:-}" == "--chaos" ]]; then
  FILTER=(-L chaos)
fi

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
cd build-sanitize
ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j "$(nproc)" "${FILTER[@]}"
