#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite plus the chaos suite, both under
# AddressSanitizer + UndefinedBehaviorSanitizer, and (with --tsan) the
# multithreaded compute + chaos suites under ThreadSanitizer. A plain
# (unsanitized) run is assumed to happen through the default preset; this
# script is the slower, paranoid gate.
#
#   scripts/check.sh            # ASan/UBSan build + full ctest
#   scripts/check.sh --chaos    # ASan/UBSan build + chaos label only
#   scripts/check.sh --tsan     # TSan build + compute and chaos labels
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--tsan" ]]; then
  # The compute engines run per-machine vertex loops on a thread pool; the
  # compute + chaos labels drive every multithreaded code path (supersteps,
  # sweep barriers, packed sends, crash recovery) under the race detector.
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  cd build-tsan
  ctest --output-on-failure -j "$(nproc)" -L 'compute|chaos'
  exit 0
fi

FILTER=()
if [[ "${1:-}" == "--chaos" ]]; then
  FILTER=(-L chaos)
fi

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
cd build-sanitize
ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j "$(nproc)" "${FILTER[@]}"
