#!/usr/bin/env bash
# Full verification sweep: the tier-1 suite plus the chaos suite, both under
# AddressSanitizer + UndefinedBehaviorSanitizer. A plain (unsanitized) run is
# assumed to happen through the default preset; this script is the slower,
# paranoid gate.
#
#   scripts/check.sh            # sanitized build + full ctest
#   scripts/check.sh --chaos    # sanitized build + chaos label only
set -euo pipefail

cd "$(dirname "$0")/.."

FILTER=()
if [[ "${1:-}" == "--chaos" ]]; then
  FILTER=(-L chaos)
fi

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
cd build-sanitize
ASAN_OPTIONS=detect_leaks=0 ctest --output-on-failure -j "$(nproc)" "${FILTER[@]}"
