#!/usr/bin/env bash
# Builds the default (RelWithDebInfo) preset and runs the Fig 12 benchmark
# suite with --json, leaving one BENCH_<name>.json per figure in the repo
# root (wall-clock + modeled seconds, message/transfer/byte counters per
# table cell). The human-readable tables still print to stdout.
#
#   scripts/bench.sh             # Fig 12 benches + the serving front door
#   scripts/bench.sh fig12b      # only benches whose name matches the arg
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHES=(
  bench_async_priority
  bench_fig12a_people_search
  bench_fig12b_pagerank
  bench_fig12c_bfs
  bench_fig12d_giraph_pagerank
  bench_outofcore
  bench_serving
  bench_triangles
  bench_txn
)
if [[ $# -gt 0 ]]; then
  FILTERED=()
  for b in "${BENCHES[@]}"; do
    [[ "$b" == *"$1"* ]] && FILTERED+=("$b")
  done
  BENCHES=("${FILTERED[@]}")
fi

cmake --preset default
cmake --build --preset default -j "$(nproc)" -- "${BENCHES[@]}" \
  bench_micro_storage bench_micro_cloud

for b in "${BENCHES[@]}"; do
  "./build/bench/$b" --json
done

# Multithreaded read-throughput sweeps (BENCH_read_throughput.json and
# BENCH_read_throughput_cloud.json). --benchmark_filter=NONE skips the
# google-benchmark micro suites so only the sweep runs.
if [[ $# -eq 0 || "bench_micro_storage" == *"$1"* ]]; then
  ./build/bench/bench_micro_storage --json '--benchmark_filter=NONE'
fi
if [[ $# -eq 0 || "bench_micro_cloud" == *"$1"* ]]; then
  ./build/bench/bench_micro_cloud --json '--benchmark_filter=NONE'
fi

ls -l BENCH_*.json
