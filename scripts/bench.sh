#!/usr/bin/env bash
# Builds the default (RelWithDebInfo) preset and runs the Fig 12 benchmark
# suite with --json, leaving one BENCH_<name>.json per figure in the repo
# root (wall-clock + modeled seconds, message/transfer/byte counters per
# table cell). The human-readable tables still print to stdout.
#
#   scripts/bench.sh             # all four Fig 12 benches
#   scripts/bench.sh fig12b      # only benches whose name matches the arg
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHES=(
  bench_fig12a_people_search
  bench_fig12b_pagerank
  bench_fig12c_bfs
  bench_fig12d_giraph_pagerank
)
if [[ $# -gt 0 ]]; then
  FILTERED=()
  for b in "${BENCHES[@]}"; do
    [[ "$b" == *"$1"* ]] && FILTERED+=("$b")
  done
  BENCHES=("${FILTERED[@]}")
fi

cmake --preset default
cmake --build --preset default -j "$(nproc)" -- "${BENCHES[@]}"

for b in "${BENCHES[@]}"; do
  "./build/bench/$b" --json
done

ls -l BENCH_*.json
