// Randomized property tests against reference models, parameterized over
// seeds: the cell accessor vs a plain struct, the memory cloud under
// continuous crash/recovery churn vs a std::map, and the fabric's delivery
// guarantees under random flushing.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "cloud/memory_cloud.h"
#include "common/random.h"
#include "graph/graph.h"
#include "net/fabric.h"
#include "storage/cell_codec.h"
#include "tfs/tfs.h"
#include "tsl/cell_accessor.h"

namespace trinity {
namespace {

// ------------------------------------------------------ Accessor vs model

constexpr const char* kFuzzSchema = R"(
  cell struct Fuzzed {
    long A;
    string S;
    List<long> L;
    double D;
    string T;
  }
)";

struct ReferenceCell {
  std::int64_t a = 0;
  std::string s;
  std::vector<std::int64_t> l;
  double d = 0;
  std::string t;
};

class AccessorFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccessorFuzzTest, MatchesReferenceModel) {
  tsl::SchemaRegistry registry;
  ASSERT_TRUE(tsl::SchemaRegistry::Compile(kFuzzSchema, &registry).ok());
  const tsl::Schema* schema = registry.struct_schema("Fuzzed");
  tsl::CellAccessor cell = tsl::CellAccessor::NewDefault(schema);
  ReferenceCell ref;
  Random rng(GetParam());
  auto random_string = [&] {
    return std::string(rng.Uniform(40), static_cast<char>('a' + rng.Uniform(26)));
  };
  for (int op = 0; op < 5000; ++op) {
    switch (rng.Uniform(10)) {
      case 0: {
        const std::int64_t v = static_cast<std::int64_t>(rng.Next());
        ASSERT_TRUE(cell.SetInt64(0, v).ok());
        ref.a = v;
        break;
      }
      case 1: {
        const std::string v = random_string();
        ASSERT_TRUE(cell.SetString(1, Slice(v)).ok());
        ref.s = v;
        break;
      }
      case 2: {
        const std::int64_t v = static_cast<std::int64_t>(rng.Next());
        ASSERT_TRUE(cell.AppendListInt64(2, v).ok());
        ref.l.push_back(v);
        break;
      }
      case 3: {
        if (ref.l.empty()) break;
        const std::size_t i = rng.Uniform(ref.l.size());
        const std::int64_t v = static_cast<std::int64_t>(rng.Next());
        ASSERT_TRUE(cell.SetListInt64(2, i, v).ok());
        ref.l[i] = v;
        break;
      }
      case 4: {
        if (ref.l.empty()) break;
        const std::size_t i = rng.Uniform(ref.l.size());
        ASSERT_TRUE(cell.RemoveListElement(2, i).ok());
        ref.l.erase(ref.l.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 5: {
        const double v = rng.NextDouble();
        ASSERT_TRUE(cell.SetDouble(3, v).ok());
        ref.d = v;
        break;
      }
      case 6: {
        const std::string v = random_string();
        ASSERT_TRUE(cell.SetString(4, Slice(v)).ok());
        ref.t = v;
        break;
      }
      default: {
        // Verify one randomly chosen facet.
        switch (rng.Uniform(5)) {
          case 0: {
            std::int64_t v = 0;
            ASSERT_TRUE(cell.GetInt64(0, &v).ok());
            ASSERT_EQ(v, ref.a);
            break;
          }
          case 1: {
            std::string v;
            ASSERT_TRUE(cell.GetString(1, &v).ok());
            ASSERT_EQ(v, ref.s);
            break;
          }
          case 2: {
            std::size_t n = 0;
            ASSERT_TRUE(cell.ListSize(2, &n).ok());
            ASSERT_EQ(n, ref.l.size());
            if (n > 0) {
              const std::size_t i = rng.Uniform(n);
              std::int64_t v = 0;
              ASSERT_TRUE(cell.GetListInt64(2, i, &v).ok());
              ASSERT_EQ(v, ref.l[i]);
            }
            break;
          }
          case 3: {
            double v = 0;
            ASSERT_TRUE(cell.GetDouble(3, &v).ok());
            ASSERT_EQ(v, ref.d);
            break;
          }
          case 4: {
            std::string v;
            ASSERT_TRUE(cell.GetString(4, &v).ok());
            ASSERT_EQ(v, ref.t);
            break;
          }
        }
      }
    }
    // The blob must stay schema-valid after every mutation.
    if (op % 500 == 0) {
      ASSERT_TRUE(tsl::ValidateBlob(schema, Slice(cell.blob())).ok());
    }
  }
  ASSERT_TRUE(tsl::ValidateBlob(schema, Slice(cell.blob())).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessorFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

// -------------------------------------------- Cloud under recovery churn

class CloudChurnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CloudChurnFuzzTest, NoOpIsLostAcrossCrashes) {
  const std::string root =
      ::testing::TempDir() + "/churn_" + std::to_string(GetParam());
  std::filesystem::remove_all(root);
  tfs::Tfs::Options tfs_options;
  tfs_options.root = root;
  std::unique_ptr<tfs::Tfs> tfs;
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 1 << 20;
  options.tfs = tfs.get();
  options.buffered_logging = true;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());

  Random rng(GetParam());
  std::map<CellId, std::string> reference;
  ASSERT_TRUE(cloud->SaveSnapshot().ok());
  int crashes = 0;
  for (int op = 0; op < 1500; ++op) {
    const CellId id = rng.Uniform(128);
    switch (rng.Uniform(6)) {
      case 0: {
        const std::string payload(rng.Uniform(60), 'a' + id % 26);
        if (cloud->AddCell(id, Slice(payload)).ok()) {
          ASSERT_EQ(reference.count(id), 0u);
          reference[id] = payload;
        } else {
          ASSERT_EQ(reference.count(id), 1u);
        }
        break;
      }
      case 1: {
        const std::string payload(rng.Uniform(60), 'A' + id % 26);
        ASSERT_TRUE(cloud->PutCell(id, Slice(payload)).ok());
        reference[id] = payload;
        break;
      }
      case 2: {
        const Status s = cloud->RemoveCell(id);
        ASSERT_EQ(s.ok(), reference.erase(id) > 0);
        break;
      }
      case 3: {
        const std::string suffix(1 + rng.Uniform(20), 'z');
        const Status s = cloud->AppendToCell(id, Slice(suffix));
        auto it = reference.find(id);
        if (it == reference.end()) {
          ASSERT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          it->second += suffix;
        }
        break;
      }
      case 4: {
        std::string out;
        const Status s = cloud->GetCell(id, &out);
        auto it = reference.find(id);
        if (it == reference.end()) {
          ASSERT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          ASSERT_EQ(out, it->second) << "cell " << id << " after " << crashes
                                     << " crashes";
        }
        break;
      }
      case 5: {
        if (op % 97 != 0) break;
        // Periodic disaster: snapshot sometimes, then crash one machine
        // and recover (post-snapshot ops must come back via the logs).
        if (rng.Bernoulli(0.5)) {
          ASSERT_TRUE(cloud->SaveSnapshot().ok());
        }
        const MachineId victim =
            static_cast<MachineId>(rng.Uniform(4));
        ASSERT_TRUE(cloud->FailMachine(victim).ok());
        ASSERT_TRUE(cloud->RecoverMachine(victim).ok());
        ASSERT_TRUE(cloud->RestartMachine(victim).ok());
        ++crashes;
        break;
      }
    }
  }
  ASSERT_GT(crashes, 0);
  // Full final audit.
  for (const auto& [id, expected] : reference) {
    std::string out;
    ASSERT_TRUE(cloud->GetCell(id, &out).ok()) << "cell " << id;
    ASSERT_EQ(out, expected) << "cell " << id;
  }
  for (CellId id = 0; id < 128; ++id) {
    if (reference.count(id) == 0) {
      bool exists = false;
      ASSERT_TRUE(cloud->Contains(id, &exists).ok());
      ASSERT_FALSE(exists) << "ghost cell " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CloudChurnFuzzTest,
                         ::testing::Values(7, 17, 27));

// ------------------------------------------------- Fabric delivery fuzz

class FabricFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricFuzzTest, EveryMessageDeliveredOncePerPairInOrder) {
  const int kMachines = 5;
  net::Fabric fabric(kMachines);
  // received[src][dst] = sequence numbers in arrival order.
  std::vector<std::vector<std::vector<std::uint64_t>>> received(
      kMachines, std::vector<std::vector<std::uint64_t>>(kMachines));
  for (MachineId m = 0; m < kMachines; ++m) {
    fabric.RegisterAsyncHandler(
        m, 7, [m, &received](MachineId src, Slice payload) {
          std::uint64_t seq = 0;
          std::memcpy(&seq, payload.data(), 8);
          received[src][m].push_back(seq);
        });
  }
  Random rng(GetParam());
  std::vector<std::vector<std::uint64_t>> sent(
      kMachines, std::vector<std::uint64_t>(kMachines, 0));
  std::uint64_t next_seq = 1;
  for (int op = 0; op < 20000; ++op) {
    const MachineId src = static_cast<MachineId>(rng.Uniform(kMachines));
    const MachineId dst = static_cast<MachineId>(rng.Uniform(kMachines));
    if (rng.Uniform(50) == 0) {
      fabric.Flush(src);
      continue;
    }
    const std::uint64_t seq = next_seq++;
    char raw[8];
    std::memcpy(raw, &seq, 8);
    ASSERT_TRUE(fabric.SendAsync(src, dst, 7, Slice(raw, 8)).ok());
    ++sent[src][dst];
  }
  fabric.FlushAll();
  for (int src = 0; src < kMachines; ++src) {
    for (int dst = 0; dst < kMachines; ++dst) {
      ASSERT_EQ(received[src][dst].size(), sent[src][dst])
          << src << "->" << dst;
      // Per-pair FIFO: sequence numbers must arrive in increasing order.
      for (std::size_t i = 1; i < received[src][dst].size(); ++i) {
        ASSERT_LT(received[src][dst][i - 1], received[src][dst][i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricFuzzTest, ::testing::Values(1, 2, 3));

// -------------------------------------------------- Adjacency codec fuzz

class CellCodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

// Random node cells must round-trip bit-identically whenever the codec
// accepts them, and decoding corrupt or truncated bytes must never read out
// of bounds — it returns Corruption (the trunk surfaces it), or, for a
// lucky mutation that stays well-formed, some equally well-formed payload.
TEST_P(CellCodecFuzzTest, RoundTripsAndNeverCrashesOnGarbage) {
  Random rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    graph::NodeImage node;
    node.id = rng.Uniform(1000);
    node.data = std::string(rng.Uniform(32), 'd');
    const std::uint64_t in_count = rng.Uniform(40);
    const std::uint64_t out_count = rng.Uniform(40);
    // Mostly-sorted lists with occasional inversions, duplicates, and huge
    // gaps, so both the accept and the reject paths run.
    CellId prev = 0;
    for (std::uint64_t k = 0; k < in_count; ++k) {
      prev = rng.Bernoulli(0.05) ? rng.Next()
                                 : prev + rng.Uniform(1u << 16);
      node.in.push_back(prev);
    }
    prev = 0;
    for (std::uint64_t k = 0; k < out_count; ++k) {
      prev = rng.Bernoulli(0.05) ? rng.Next()
                                 : prev + rng.Uniform(1u << 16);
      node.out.push_back(prev);
    }
    const std::string raw = graph::Graph::EncodeNode(node);
    std::string enc;
    if (!storage::CellCodec::EncodeAdjacency(Slice(raw), &enc)) continue;
    std::string dec;
    ASSERT_TRUE(storage::CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
    ASSERT_EQ(dec, raw);
    std::uint64_t size = 0;
    ASSERT_TRUE(storage::CellCodec::DecodedSize(Slice(enc), &size).ok());
    ASSERT_EQ(size, raw.size());

    // Truncate at a random point.
    std::string cut = enc.substr(0, rng.Uniform(enc.size()));
    (void)storage::CellCodec::DecodeAdjacency(Slice(cut), &dec);
    // Flip random bytes. Decode either rejects the mutation or produces a
    // payload of exactly the size its header varint promised.
    std::string mutated = enc;
    for (int flips = 1 + static_cast<int>(rng.Uniform(4)); flips > 0;
         --flips) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    if (storage::CellCodec::DecodeAdjacency(Slice(mutated), &dec).ok()) {
      ASSERT_TRUE(
          storage::CellCodec::DecodedSize(Slice(mutated), &size).ok());
      ASSERT_EQ(dec.size(), size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellCodecFuzzTest,
                         ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace trinity
