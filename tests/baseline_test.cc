#include <gtest/gtest.h>

#include <queue>

#include "algos/bfs.h"
#include "algos/pagerank.h"
#include "baseline/diskstream_engine.h"
#include "baseline/ghost_engine.h"
#include "baseline/heap_engine.h"
#include "graph/generators.h"

namespace trinity::baseline {
namespace {

TEST(GhostEngineTest, BfsReachesSameSetAsReference) {
  const auto edges = graph::Generators::Rmat(512, 6.0, 41);
  GhostEngine::Options options;
  options.num_machines = 4;
  GhostEngine engine(options);
  GhostEngine::LoadStats load;
  ASSERT_TRUE(engine.LoadGraph(edges, &load).ok());
  GhostEngine::BfsStats stats;
  ASSERT_TRUE(engine.RunBfs(0, &stats).ok());

  // Reference BFS.
  std::vector<std::vector<CellId>> adjacency(edges.num_nodes);
  for (const auto& [s, d] : edges.edges) adjacency[s].push_back(d);
  std::vector<bool> seen(edges.num_nodes, false);
  std::queue<CellId> q;
  q.push(0);
  seen[0] = true;
  std::uint64_t reachable = 0;
  while (!q.empty()) {
    const CellId v = q.front();
    q.pop();
    ++reachable;
    for (CellId u : adjacency[v]) {
      if (!seen[u]) {
        seen[u] = true;
        q.push(u);
      }
    }
  }
  EXPECT_EQ(stats.reached, reachable);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(GhostEngineTest, GhostCellsGrowWithMachines) {
  const auto edges = graph::Generators::Rmat(1024, 8.0, 43);
  GhostEngine::LoadStats with4, with16;
  {
    GhostEngine::Options options;
    options.num_machines = 4;
    GhostEngine engine(options);
    ASSERT_TRUE(engine.LoadGraph(edges, &with4).ok());
  }
  {
    GhostEngine::Options options;
    options.num_machines = 16;
    GhostEngine engine(options);
    ASSERT_TRUE(engine.LoadGraph(edges, &with16).ok());
  }
  // More machines -> worse hash partition locality -> more ghosts (§8).
  EXPECT_GT(with16.ghost_cells, with4.ghost_cells);
  EXPECT_GT(with16.memory_bytes, 0u);
}

TEST(GhostEngineTest, MemoryExceedsTrinityForSameGraph) {
  // Fig 13(c) vs (d): PBGL's ghost-cell footprint dwarfs Trinity's blobs.
  const auto edges = graph::Generators::Rmat(2048, 16.0, 47);
  GhostEngine::Options options;
  options.num_machines = 8;
  GhostEngine engine(options);
  GhostEngine::LoadStats load;
  ASSERT_TRUE(engine.LoadGraph(edges, &load).ok());

  cloud::MemoryCloud::Options copts;
  copts.num_slaves = 8;
  copts.p_bits = 4;
  copts.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(copts, &cloud).ok());
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(cloud.get(), gopts);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, false, 0).ok());
  EXPECT_GT(load.memory_bytes, cloud->MemoryFootprintBytes());
}

TEST(GhostEngineTest, SlowerThanTrinityBfs) {
  const auto edges = graph::Generators::Rmat(1024, 8.0, 53);
  GhostEngine::Options options;
  options.num_machines = 8;
  GhostEngine engine(options);
  GhostEngine::LoadStats load;
  ASSERT_TRUE(engine.LoadGraph(edges, &load).ok());
  GhostEngine::BfsStats ghost_stats;
  ASSERT_TRUE(engine.RunBfs(0, &ghost_stats).ok());

  cloud::MemoryCloud::Options copts;
  copts.num_slaves = 8;
  copts.p_bits = 4;
  copts.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(copts, &cloud).ok());
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(cloud.get(), gopts);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, false, 0).ok());
  algos::BfsResult trinity_result;
  ASSERT_TRUE(algos::RunBfs(&graph, 0, compute::TraversalEngine::Options{},
                            &trinity_result)
                  .ok());
  EXPECT_EQ(trinity_result.reached, ghost_stats.reached);
  // Fig 13(a) vs (b): unpacked fine-grained ghost updates cost far more.
  EXPECT_GT(ghost_stats.modeled_seconds, trinity_result.modeled_seconds);
}

TEST(HeapEngineTest, PageRankMatchesTrinity) {
  const auto edges = graph::Generators::Rmat(256, 6.0, 59);
  HeapEngine::Options options;
  options.num_machines = 4;
  options.iterations = 8;
  HeapEngine engine(options);
  ASSERT_TRUE(engine.LoadGraph(edges).ok());
  HeapEngine::RunStats stats;
  ASSERT_TRUE(engine.RunPageRank(&stats).ok());
  EXPECT_EQ(stats.supersteps, 9);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.seconds_per_iteration, 0.0);
  EXPECT_GT(stats.memory_bytes,
            edges.num_nodes * 8 + edges.edges.size() * 8);
}

TEST(HeapEngineTest, SlowerPerIterationThanTrinity) {
  const auto edges = graph::Generators::Rmat(512, 8.0, 61);
  HeapEngine::Options options;
  options.num_machines = 8;
  options.iterations = 4;
  HeapEngine engine(options);
  ASSERT_TRUE(engine.LoadGraph(edges).ok());
  HeapEngine::RunStats heap_stats;
  ASSERT_TRUE(engine.RunPageRank(&heap_stats).ok());

  cloud::MemoryCloud::Options copts;
  copts.num_slaves = 8;
  copts.p_bits = 4;
  copts.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(copts, &cloud).ok());
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(cloud.get(), gopts);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, false, 0).ok());
  algos::PageRankOptions popts;
  popts.iterations = 4;
  algos::PageRankResult trinity_result;
  ASSERT_TRUE(algos::RunPageRank(&graph, popts, &trinity_result).ok());
  // Fig 12(d) vs 12(b): runtime-object engine is much slower per iteration.
  EXPECT_GT(heap_stats.seconds_per_iteration,
            trinity_result.seconds_per_iteration);
}

TEST(DiskStreamEngineTest, AsyncPageRankMatchesBspPageRank) {
  const auto edges = graph::Generators::Rmat(512, 6.0, 71);
  DiskStreamEngine::Options options;
  options.num_shards = 4;
  options.scratch_dir = ::testing::TempDir() + "/diskstream_match";
  DiskStreamEngine engine(options);
  ASSERT_TRUE(engine.LoadGraph(edges).ok());
  DiskStreamEngine::RunStats stats;
  // Asynchronous sweeps converge at least as fast as synchronous ones.
  ASSERT_TRUE(engine.RunPageRank(30, 0.85, &stats).ok());

  cloud::MemoryCloud::Options copts;
  copts.num_slaves = 4;
  copts.p_bits = 4;
  copts.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(copts, &cloud).ok());
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(cloud.get(), gopts);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, false, 0).ok());
  algos::PageRankOptions popts;
  popts.iterations = 40;
  algos::PageRankResult bsp_result;
  ASSERT_TRUE(algos::RunPageRank(&graph, popts, &bsp_result).ok());
  for (CellId v = 0; v < edges.num_nodes; ++v) {
    EXPECT_NEAR(engine.values()[v], bsp_result.ranks[v], 1e-4)
        << "vertex " << v;
  }
}

TEST(DiskStreamEngineTest, SequentialIoIsAccounted) {
  const auto edges = graph::Generators::Rmat(1024, 8.0, 73);
  DiskStreamEngine::Options options;
  options.num_shards = 8;
  options.scratch_dir = ::testing::TempDir() + "/diskstream_io";
  DiskStreamEngine engine(options);
  ASSERT_TRUE(engine.LoadGraph(edges).ok());
  DiskStreamEngine::RunStats stats;
  ASSERT_TRUE(engine.RunPageRank(2, 0.85, &stats).ok());
  // Every edge (8 bytes) is streamed once per iteration.
  EXPECT_EQ(stats.shard_bytes, edges.edges.size() * 8);
  EXPECT_EQ(stats.total_bytes_read, 2 * stats.shard_bytes);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(DiskStreamEngineTest, RejectsEmptyGraph) {
  DiskStreamEngine::Options options;
  options.scratch_dir = ::testing::TempDir() + "/diskstream_empty";
  DiskStreamEngine engine(options);
  graph::Generators::EdgeList empty;
  EXPECT_TRUE(engine.LoadGraph(empty).IsInvalidArgument());
}

}  // namespace
}  // namespace trinity::baseline
