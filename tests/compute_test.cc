#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "algos/pagerank.h"
#include "common/hash.h"
#include "compute/async_engine.h"
#include "compute/bsp.h"
#include "compute/message_optimizer.h"
#include "compute/scheduler.h"
#include "compute/traversal.h"
#include "graph/generators.h"

namespace trinity::compute {
namespace {

// Per-process scratch root: the suite runs from several build trees (e.g.
// the default and TSan presets), and a shared /tmp path would let two
// concurrently running processes clobber each other's checkpoint files.
std::string FreshTfsRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/" + tag + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

struct Fixture {
  std::unique_ptr<cloud::MemoryCloud> cloud;
  std::unique_ptr<graph::Graph> graph;
};

Fixture NewGraph(int slaves = 4, bool track_inlinks = true) {
  Fixture f;
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &f.cloud).ok());
  graph::Graph::Options gopts;
  gopts.track_inlinks = track_inlinks;
  f.graph = std::make_unique<graph::Graph>(f.cloud.get(), gopts);
  return f;
}

// Builds the 5-node test graph  0 -> 1 -> 2 -> 3 -> 4 with a chord 0 -> 3.
void BuildChain(graph::Graph* graph) {
  for (CellId v = 0; v < 5; ++v) {
    ASSERT_TRUE(graph->AddNode(v, Slice()).ok());
  }
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(1, 2).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  ASSERT_TRUE(graph->AddEdge(3, 4).ok());
  ASSERT_TRUE(graph->AddEdge(0, 3).ok());
}

TEST(BspEngineTest, PropagatesTokensAlongEdges) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  BspEngine engine(f.graph.get(), BspEngine::Options{});
  BspEngine::RunStats stats;
  // Each vertex stores the count of messages it ever received; vertex 0
  // sends one token to each out-neighbor in superstep 0.
  ASSERT_TRUE(engine
                  .Run(
                      [](BspEngine::VertexContext& ctx) {
                        if (ctx.superstep() == 0) {
                          ctx.value() = "0";
                          if (ctx.vertex() == 0) {
                            ctx.SendToAllOut(Slice("t"));
                          }
                        } else {
                          int count = std::stoi(ctx.value());
                          count += static_cast<int>(ctx.messages().size());
                          ctx.value() = std::to_string(count);
                        }
                        ctx.VoteToHalt();
                      },
                      &stats)
                  .ok());
  std::string value;
  ASSERT_TRUE(engine.GetValue(1, &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(engine.GetValue(3, &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(engine.GetValue(4, &value).ok());
  EXPECT_EQ(value, "0");  // Two hops away: no token (everyone halted).
  EXPECT_GE(stats.supersteps, 2);
}

TEST(BspEngineTest, HaltedVerticesReawakenOnMessage) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  BspEngine engine(f.graph.get(), BspEngine::Options{});
  BspEngine::RunStats stats;
  // Forward a token down the chain: each vertex relays once, then halts.
  ASSERT_TRUE(engine
                  .Run(
                      [](BspEngine::VertexContext& ctx) {
                        if (ctx.superstep() == 0) {
                          if (ctx.vertex() == 0) ctx.SendToAllOut(Slice("t"));
                        } else if (!ctx.messages().empty()) {
                          ctx.value() = "reached";
                          ctx.SendToAllOut(Slice("t"));
                        }
                        ctx.VoteToHalt();
                      },
                      &stats)
                  .ok());
  std::string value;
  ASSERT_TRUE(engine.GetValue(4, &value).ok());
  EXPECT_EQ(value, "reached");  // Token traveled the whole chain.
}

TEST(BspEngineTest, CombinerFoldsMessages) {
  Fixture f = NewGraph();
  for (CellId v = 0; v < 4; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  // 1, 2, 3 all point at 0.
  for (CellId v = 1; v < 4; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(v, 0).ok());
  }
  BspEngine::Options options;
  options.combiner = [](std::string* acc, Slice msg) {
    std::int64_t a = 0, b = 0;
    std::memcpy(&a, acc->data(), 8);
    std::memcpy(&b, msg.data(), 8);
    a += b;
    std::memcpy(acc->data(), &a, 8);
  };
  BspEngine engine(f.graph.get(), options);
  BspEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [](BspEngine::VertexContext& ctx) {
                        if (ctx.superstep() == 0) {
                          const std::int64_t one = 1;
                          ctx.SendToAllOut(
                              Slice(reinterpret_cast<const char*>(&one), 8));
                        } else if (!ctx.messages().empty()) {
                          // Combined into exactly one message.
                          EXPECT_EQ(ctx.messages().size(), 1u);
                          ctx.value() = ctx.messages().front().ToString();
                        }
                        ctx.VoteToHalt();
                      },
                      &stats)
                  .ok());
  std::string value;
  ASSERT_TRUE(engine.GetValue(0, &value).ok());
  std::int64_t total = 0;
  std::memcpy(&total, value.data(), 8);
  EXPECT_EQ(total, 3);
}

TEST(BspEngineTest, StatsAreMeaningful) {
  Fixture f = NewGraph();
  ASSERT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 4.0, 3).ok());
  BspEngine engine(f.graph.get(), BspEngine::Options{});
  BspEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [](BspEngine::VertexContext& ctx) {
                        if (ctx.superstep() == 0) {
                          ctx.SendToAllOut(Slice("m"));
                        }
                        ctx.VoteToHalt();
                      },
                      &stats)
                  .ok());
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
  EXPECT_EQ(stats.superstep_seconds.size(),
            static_cast<std::size_t>(stats.supersteps));
}

TEST(BspEngineTest, CheckpointAndRestore) {
  const std::string root = FreshTfsRoot("bsp_ckpt");
  tfs::Tfs::Options tfs_options;
  tfs_options.root = root;
  std::unique_ptr<tfs::Tfs> tfs;
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());

  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  // A counter program that runs exactly 6 supersteps.
  auto program = [](BspEngine::VertexContext& ctx) {
    const int count = ctx.value().empty() ? 0 : std::stoi(ctx.value());
    ctx.value() = std::to_string(count + 1);
    if (ctx.superstep() >= 5) {
      ctx.VoteToHalt();
    } else if (ctx.vertex() == 0) {
      ctx.SendToAllOut(Slice("go"));  // Keep targets awake.
    }
  };
  BspEngine::Options options;
  options.checkpoint_interval = 2;
  options.tfs = tfs.get();
  BspEngine engine(f.graph.get(), options);
  BspEngine::RunStats stats;
  ASSERT_TRUE(engine.Run(program, &stats).ok());
  EXPECT_GT(stats.checkpoints_written, 0);
  std::string final_value;
  ASSERT_TRUE(engine.GetValue(0, &final_value).ok());

  // A second engine on the same TFS restores from the checkpoint and
  // continues rather than starting at superstep 0.
  BspEngine resumed(f.graph.get(), options);
  BspEngine::RunStats resumed_stats;
  ASSERT_TRUE(resumed.Run(program, &resumed_stats).ok());
  EXPECT_TRUE(resumed_stats.restored_from_checkpoint);
  EXPECT_LT(resumed_stats.supersteps, stats.supersteps);
}

// PageRank-style program with a sum combiner: deterministic given a
// deterministic inbox order, so parallel and sequential runs must agree to
// the last bit.
BspEngine::Options PageRankStyleOptions(int num_threads) {
  BspEngine::Options options;
  options.num_threads = num_threads;
  options.superstep_limit = 6;
  options.combiner = [](std::string* acc, Slice msg) {
    double a = 0, b = 0;
    std::memcpy(&a, acc->data(), 8);
    std::memcpy(&b, msg.data(), 8);
    a += b;
    std::memcpy(acc->data(), &a, 8);
  };
  return options;
}

BspEngine::Program PageRankStyleProgram() {
  return [](BspEngine::VertexContext& ctx) {
    double rank = 1.0;
    if (ctx.superstep() > 0) {
      double sum = 0;
      for (Slice msg : ctx.messages()) {
        double v = 0;
        std::memcpy(&v, msg.data(), 8);
        sum += v;
      }
      rank = 0.15 + 0.85 * sum;
    }
    ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
    if (ctx.out_count() > 0) {
      const double share = rank / static_cast<double>(ctx.out_count());
      ctx.SendToAllOut(Slice(reinterpret_cast<const char*>(&share), 8));
    }
  };
}

TEST(BspEngineTest, ParallelRunIsBitIdenticalToSequential) {
  // The tentpole determinism guarantee: inboxes merge at the barrier in
  // canonical (source machine, arrival order) order, so thread count must
  // not change a single byte of the result.
  auto run = [](int num_threads) {
    Fixture f = NewGraph(8);
    EXPECT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 512, 6.0, 9).ok());
    BspEngine engine(f.graph.get(), PageRankStyleOptions(num_threads));
    BspEngine::RunStats stats;
    EXPECT_TRUE(engine.Run(PageRankStyleProgram(), &stats).ok());
    std::map<CellId, std::string> values;
    engine.ForEachValue([&](CellId v, const std::string& value) {
      values[v] = value;
    });
    return values;
  };
  const auto sequential = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (const auto& [vertex, value] : sequential) {
    auto it = parallel.find(vertex);
    ASSERT_NE(it, parallel.end()) << "vertex " << vertex;
    EXPECT_EQ(it->second, value) << "vertex " << vertex;
  }
}

TEST(BspEngineTest, NonCombinedMessagesArriveInCanonicalOrder) {
  // Without a combiner every vertex sees its messages ordered by source
  // machine, then arrival — identical for any thread count.
  auto run = [](int num_threads) {
    Fixture f = NewGraph(8);
    EXPECT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 5.0, 3).ok());
    BspEngine::Options options;
    options.num_threads = num_threads;
    options.superstep_limit = 3;
    BspEngine engine(f.graph.get(), options);
    BspEngine::RunStats stats;
    EXPECT_TRUE(engine
                    .Run(
                        [](BspEngine::VertexContext& ctx) {
                          // Concatenate received sender ids in inbox order.
                          for (Slice msg : ctx.messages()) {
                            ctx.value().append(msg.data(), msg.size());
                          }
                          const CellId self = ctx.vertex();
                          ctx.SendToAllOut(Slice(
                              reinterpret_cast<const char*>(&self), 8));
                        },
                        &stats)
                    .ok());
    std::map<CellId, std::string> values;
    engine.ForEachValue([&](CellId v, const std::string& value) {
      values[v] = value;
    });
    return values;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(BspEngineTest, CheckpointsAreByteDeterministic) {
  // Two engines computing identical state — one sequential, one parallel —
  // must write byte-identical checkpoints (the serializer sorts every
  // unordered container).
  auto checkpoint_bytes = [](int num_threads, const std::string& dir) {
    const std::string root = FreshTfsRoot(dir);
    tfs::Tfs::Options tfs_options;
    tfs_options.root = root;
    std::unique_ptr<tfs::Tfs> tfs;
    EXPECT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());
    Fixture f = NewGraph(4);
    EXPECT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 4.0, 11).ok());
    BspEngine::Options options = PageRankStyleOptions(num_threads);
    options.checkpoint_interval = 2;
    options.tfs = tfs.get();
    BspEngine engine(f.graph.get(), options);
    BspEngine::RunStats stats;
    EXPECT_TRUE(engine.Run(PageRankStyleProgram(), &stats).ok());
    EXPECT_GT(stats.checkpoints_written, 0);
    std::string image;
    EXPECT_TRUE(tfs->ReadFile("bsp_ckpt/state", &image).ok());
    return image;
  };
  const std::string a = checkpoint_bytes(1, "bsp_ckpt_det_a");
  const std::string b = checkpoint_bytes(8, "bsp_ckpt_det_b");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(BspEngineTest, PackedTransfersAreQuadraticInMachinesNotMessages) {
  // The packed send path hands the fabric at most one payload per
  // (src,dst) machine pair per superstep, so physical transfers are bounded
  // by machines² per superstep no matter how many messages flow.
  const int slaves = 4;
  Fixture f = NewGraph(slaves);
  ASSERT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 512, 6.0, 21).ok());
  BspEngine::Options options;
  options.superstep_limit = 4;
  BspEngine engine(f.graph.get(), options);
  BspEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [](BspEngine::VertexContext& ctx) {
                        ctx.SendToAllOut(Slice("eight-by"));
                      },
                      &stats)
                  .ok());
  // Thousands of logical messages per superstep...
  EXPECT_GT(stats.messages / stats.supersteps,
            static_cast<std::uint64_t>(slaves * slaves));
  // ...but at most machines² packed payloads (each under the 64 KiB pack
  // threshold, so exactly one transfer per pair with traffic).
  EXPECT_LE(stats.transfers,
            static_cast<std::uint64_t>(stats.supersteps) * slaves * slaves);
}

TEST(TraversalTest, KHopVisitsExactlyOnce) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  TraversalEngine engine(f.graph.get());
  TraversalEngine::QueryStats stats;
  std::map<CellId, int> depth;
  ASSERT_TRUE(engine
                  .KHopExplore(0, 2,
                               [&](CellId v, int d, Slice) {
                                 EXPECT_EQ(depth.count(v), 0u);
                                 depth[v] = d;
                                 return true;
                               },
                               &stats)
                  .ok());
  // 0 at depth 0; {1,3} at 1; {2,4} at 2.
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[3], 1);
  EXPECT_EQ(depth[2], 2);
  EXPECT_EQ(depth[4], 2);
  EXPECT_EQ(stats.visited, 5u);
}

TEST(TraversalTest, DepthLimitEnforced) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  TraversalEngine engine(f.graph.get());
  TraversalEngine::QueryStats stats;
  int max_depth_seen = 0;
  ASSERT_TRUE(engine
                  .KHopExplore(0, 1,
                               [&](CellId, int d, Slice) {
                                 max_depth_seen = std::max(max_depth_seen, d);
                                 return true;
                               },
                               &stats)
                  .ok());
  EXPECT_EQ(max_depth_seen, 1);
  EXPECT_EQ(stats.visited, 3u);  // 0, 1, 3.
}

TEST(TraversalTest, VisitorCanPrune) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  TraversalEngine engine(f.graph.get());
  TraversalEngine::QueryStats stats;
  std::set<CellId> visited;
  ASSERT_TRUE(engine
                  .KHopExplore(0, 4,
                               [&](CellId v, int, Slice) {
                                 visited.insert(v);
                                 return v != 3;  // Prune below vertex 3.
                               },
                               &stats)
                  .ok());
  EXPECT_TRUE(visited.count(3));
  // 4 is reachable only through 3 (0->3->4 or chain): 2->3 pruned too, so 4
  // must be absent.
  EXPECT_FALSE(visited.count(4));
}

TEST(TraversalTest, BfsMatchesReference) {
  Fixture f = NewGraph(4);
  const auto edges = graph::Generators::Rmat(512, 6.0, 77);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  TraversalEngine engine(f.graph.get());
  TraversalEngine::QueryStats stats;
  std::unordered_map<CellId, std::uint32_t> distances;
  ASSERT_TRUE(engine.Bfs(0, &distances, &stats).ok());

  // Reference in-memory BFS over the same edges.
  std::vector<std::vector<CellId>> adjacency(edges.num_nodes);
  for (const auto& [s, d] : edges.edges) adjacency[s].push_back(d);
  std::vector<std::int64_t> ref(edges.num_nodes, -1);
  std::queue<CellId> q;
  q.push(0);
  ref[0] = 0;
  while (!q.empty()) {
    const CellId v = q.front();
    q.pop();
    for (CellId u : adjacency[v]) {
      if (ref[u] < 0) {
        ref[u] = ref[v] + 1;
        q.push(u);
      }
    }
  }
  std::size_t reachable = 0;
  for (CellId v = 0; v < edges.num_nodes; ++v) {
    if (ref[v] >= 0) {
      ++reachable;
      ASSERT_TRUE(distances.count(v)) << "missing vertex " << v;
      EXPECT_EQ(distances[v], static_cast<std::uint32_t>(ref[v]));
    } else {
      EXPECT_FALSE(distances.count(v));
    }
  }
  EXPECT_EQ(distances.size(), reachable);
  EXPECT_GT(stats.rounds, 0);
  EXPECT_GT(stats.modeled_millis, 0.0);
}

TEST(TraversalTest, ParallelBfsMatchesSequential) {
  auto run = [](int num_threads) {
    Fixture f = NewGraph(8);
    const auto edges = graph::Generators::Rmat(512, 6.0, 77);
    EXPECT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
    TraversalEngine::Options options;
    options.num_threads = num_threads;
    TraversalEngine engine(f.graph.get(), options);
    TraversalEngine::QueryStats stats;
    std::unordered_map<CellId, std::uint32_t> distances;
    EXPECT_TRUE(engine.Bfs(0, &distances, &stats).ok());
    return distances;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(AsyncEngineTest, ParallelSweepsMatchSequential) {
  auto run = [](int num_threads) {
    Fixture f = NewGraph(8);
    EXPECT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 5.0, 13).ok());
    AsyncEngine::Options options;
    options.num_threads = num_threads;
    AsyncEngine engine(f.graph.get(), options);
    EXPECT_TRUE(engine.Seed(0, Slice("seed")).ok());
    AsyncEngine::RunStats stats;
    EXPECT_TRUE(engine
                    .Run(
                        [](AsyncEngine::Context& ctx, Slice) {
                          if (!ctx.value().empty()) return;
                          ctx.value() = "visited";
                          for (std::size_t i = 0; i < ctx.out_count(); ++i) {
                            ctx.Send(ctx.out()[i], Slice("fwd"));
                          }
                        },
                        &stats)
                    .ok());
    std::map<CellId, std::string> values;
    engine.ForEachValue([&](CellId v, const std::string& value) {
      values[v] = value;
    });
    return values;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(AsyncEngineTest, RunsToTerminationViaSafra) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  AsyncEngine engine(f.graph.get(), AsyncEngine::Options{});
  ASSERT_TRUE(engine.Seed(0, Slice("seed")).ok());
  std::uint64_t handled = 0;
  AsyncEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [&](AsyncEngine::Context& ctx, Slice) {
                        ++handled;
                        if (ctx.value().empty()) {
                          ctx.value() = "visited";
                          for (std::size_t i = 0; i < ctx.out_count(); ++i) {
                            ctx.Send(ctx.out()[i], Slice("fwd"));
                          }
                        }
                      },
                      &stats)
                  .ok());
  EXPECT_GT(stats.updates, 0u);
  EXPECT_EQ(stats.updates, handled);
  EXPECT_GT(stats.safra_probes, 0);
  std::string value;
  ASSERT_TRUE(engine.GetValue(4, &value).ok());
  EXPECT_EQ(value, "visited");
}

TEST(AsyncEngineTest, SnapshotsWrittenPeriodically) {
  const std::string root = FreshTfsRoot("async_snap");
  tfs::Tfs::Options tfs_options;
  tfs_options.root = root;
  std::unique_ptr<tfs::Tfs> tfs;
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());

  Fixture f = NewGraph();
  const auto edges = graph::Generators::Rmat(128, 4.0, 5);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  AsyncEngine::Options options;
  options.snapshot_interval = 50;
  options.tfs = tfs.get();
  AsyncEngine engine(f.graph.get(), options);
  ASSERT_TRUE(engine.Seed(0, Slice("x")).ok());
  AsyncEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [](AsyncEngine::Context& ctx, Slice) {
                        if (!ctx.value().empty()) return;
                        ctx.value() = "v";
                        for (std::size_t i = 0; i < ctx.out_count(); ++i) {
                          ctx.Send(ctx.out()[i], Slice("m"));
                        }
                      },
                      &stats)
                  .ok());
  if (stats.updates >= 50) {
    EXPECT_GT(stats.snapshots, 0);
    EXPECT_FALSE(tfs->List("async_snap/").empty());
  }
}

TEST(AsyncEngineTest, UpdateLimitIsExactAndDistinct) {
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  AsyncEngine::Options options;
  options.max_updates = 3;
  AsyncEngine engine(f.graph.get(), options);
  ASSERT_TRUE(engine.Seed(0, Slice("ping")).ok());
  AsyncEngine::RunStats stats;
  // Ping-pong forever between 0 -> 1 -> ... without convergence check.
  const Status s = engine.Run(
      [](AsyncEngine::Context& ctx, Slice) {
        for (std::size_t i = 0; i < ctx.out_count(); ++i) {
          ctx.Send(ctx.out()[i], Slice("ping"));
        }
      },
      &stats);
  // The safety valve is enforced per update (budgeted before each sweep),
  // so the run stops at exactly the limit — no machines×batch_size
  // overshoot — and reports a distinct terminal status naming it.
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(stats.updates, 3u);
  EXPECT_NE(s.message().find("max_updates limit (3)"), std::string::npos)
      << s.message();
}

TEST(AsyncEngineTest, RunAtExactlyTheLimitTerminatesNormally) {
  // A program whose natural termination coincides with the limit is not a
  // limit hit: no work is pending, so Safra certifies a normal finish.
  Fixture f = NewGraph();
  BuildChain(f.graph.get());
  AsyncEngine::Options options;
  options.max_updates = 1;
  AsyncEngine engine(f.graph.get(), options);
  ASSERT_TRUE(engine.Seed(0, Slice("once")).ok());
  AsyncEngine::RunStats stats;
  ASSERT_TRUE(engine.Run([](AsyncEngine::Context&, Slice) {}, &stats).ok());
  EXPECT_EQ(stats.updates, 1u);
}

// ----------------------------------------------------- Scheduler semantics

TEST(PriorityIndexTest, PopsInPriorityOrderWithIdTieBreak) {
  PriorityIndex heap;
  heap.PushOrUpdate(5, 1.0);
  heap.PushOrUpdate(3, 2.0);
  heap.PushOrUpdate(9, 2.0);  // Tie with 3: smaller id first.
  heap.PushOrUpdate(1, 0.5);
  EXPECT_EQ(heap.size(), 4u);
  double p = 0;
  EXPECT_EQ(heap.PopTop(&p), 3u);
  EXPECT_EQ(p, 2.0);
  EXPECT_EQ(heap.PopTop(), 9u);
  EXPECT_EQ(heap.PopTop(), 5u);
  EXPECT_EQ(heap.PopTop(), 1u);
  EXPECT_TRUE(heap.empty());
  EXPECT_GT(heap.ops(), 0u);
}

TEST(PriorityIndexTest, ChangeKeyRestoresHeapOrderBothDirections) {
  PriorityIndex heap;
  for (CellId v = 0; v < 64; ++v) {
    heap.PushOrUpdate(v, static_cast<double>(v % 7));
  }
  // Increase-key: a mid vertex jumps to the front.
  heap.PushOrUpdate(33, 100.0);
  EXPECT_EQ(heap.PriorityOf(33), 100.0);
  EXPECT_EQ(heap.PopTop(), 33u);
  // Decrease-key: the would-be top sinks to the back.
  CellId top = 6;  // Highest remaining priority class, smallest id: 6.
  EXPECT_EQ(heap.PriorityOf(top), 6.0);
  heap.PushOrUpdate(top, -1.0);
  std::vector<CellId> order;
  while (!heap.empty()) order.push_back(heap.PopTop());
  EXPECT_EQ(order.back(), top);
  // Full pop order is non-increasing in (priority, -id).
  EXPECT_EQ(order.size(), 63u);
}

TEST(PriorityIndexTest, RemoveKeepsInvariant) {
  PriorityIndex heap;
  for (CellId v = 0; v < 32; ++v) {
    heap.PushOrUpdate(v, static_cast<double>((v * 13) % 11));
  }
  EXPECT_TRUE(heap.Remove(17));
  EXPECT_FALSE(heap.Remove(17));
  EXPECT_FALSE(heap.Contains(17));
  double last = std::numeric_limits<double>::infinity();
  while (!heap.empty()) {
    double p = 0;
    heap.PopTop(&p);
    EXPECT_LE(p, last);
    last = p;
  }
}

// Spoke graph: vertices 1..kSpokes all point at vertex 0.
constexpr int kSpokes = 12;

void BuildSpokes(graph::Graph* graph) {
  for (CellId v = 0; v <= kSpokes; ++v) {
    ASSERT_TRUE(graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 1; v <= kSpokes; ++v) {
    ASSERT_TRUE(graph->AddEdge(v, 0).ok());
  }
}

Slice EncodeI64(const std::int64_t& v) {
  return Slice(reinterpret_cast<const char*>(&v), 8);
}

// Every scheduler mode and thread count folds coalesced messages through a
// commutative combiner to the same total: the fold commutes, so coalescing
// order cannot change the answer.
TEST(AsyncEngineTest, CoalescedFoldsCommuteAcrossModes) {
  auto run = [](SchedulerMode mode, int threads) {
    Fixture f = NewGraph(4);
    BuildSpokes(f.graph.get());
    AsyncEngine::Options options;
    options.num_threads = threads;
    options.scheduler = mode;
    options.combiner = [](std::string* acc, Slice msg) {
      std::int64_t a = 0, b = 0;
      std::memcpy(&a, acc->data(), 8);
      std::memcpy(&b, msg.data(), 8);
      a += b;
      std::memcpy(acc->data(), &a, 8);
    };
    if (mode == SchedulerMode::kPriority) {
      options.priority = [](CellId, Slice delta, Slice) {
        std::int64_t v = 0;
        std::memcpy(&v, delta.data(), 8);
        return static_cast<double>(v);
      };
    }
    AsyncEngine engine(f.graph.get(), options);
    for (CellId v = 1; v <= kSpokes; ++v) {
      EXPECT_TRUE(
          engine.Seed(v, EncodeI64(static_cast<std::int64_t>(v))).ok());
    }
    AsyncEngine::RunStats stats;
    EXPECT_TRUE(engine
                    .Run(
                        [](AsyncEngine::Context& ctx, Slice message) {
                          std::int64_t delta = 0, sum = 0;
                          std::memcpy(&delta, message.data(), 8);
                          if (ctx.value().size() == 8) {
                            std::memcpy(&sum, ctx.value().data(), 8);
                          }
                          sum += delta;
                          ctx.value().assign(
                              reinterpret_cast<const char*>(&sum), 8);
                          if (ctx.vertex() != 0) {
                            for (std::size_t i = 0; i < ctx.out_count();
                                 ++i) {
                              ctx.Send(ctx.out()[i], message);
                            }
                          }
                        },
                        &stats)
                    .ok());
    std::string value;
    EXPECT_TRUE(engine.GetValue(0, &value).ok());
    std::int64_t total = 0;
    std::memcpy(&total, value.data(), 8);
    // Delta caching: at most one pending entry per vertex, so the hub is
    // processed far fewer times than it received messages.
    EXPECT_GT(stats.coalesced_updates, 0u) << "no folds happened";
    EXPECT_EQ(stats.messages,
              static_cast<std::uint64_t>(kSpokes) + kSpokes);
    return total;
  };
  const std::int64_t expected = kSpokes * (kSpokes + 1) / 2;  // 1+..+12.
  for (SchedulerMode mode : {SchedulerMode::kFifo, SchedulerMode::kPriority,
                             SchedulerMode::kSweep}) {
    EXPECT_EQ(run(mode, 1), expected) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(run(mode, 4), expected) << "mode " << static_cast<int>(mode);
  }
}

TEST(AsyncEngineTest, EpsilonDropNeverLosesLastWriterState) {
  // 0 -> 1 -> 2. Both seeds carry super-threshold work; every pushed share
  // is sub-threshold and must be dropped at the queue door — without
  // touching the values earlier updates wrote.
  Fixture f = NewGraph(4);
  for (CellId v = 0; v < 3; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  ASSERT_TRUE(f.graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(f.graph->AddEdge(1, 2).ok());
  AsyncEngine::Options options;
  options.num_threads = 1;
  options.scheduler = SchedulerMode::kPriority;
  options.combiner = [](std::string* acc, Slice msg) {
    double a = 0, b = 0;
    std::memcpy(&a, acc->data(), 8);
    std::memcpy(&b, msg.data(), 8);
    a += b;
    std::memcpy(acc->data(), &a, 8);
  };
  options.priority = [](CellId, Slice delta, Slice) {
    double v = 0;
    std::memcpy(&v, delta.data(), 8);
    return std::abs(v);
  };
  options.priority_epsilon = 1.0;
  AsyncEngine engine(f.graph.get(), options);
  const double five = 5.0, two = 2.0;
  ASSERT_TRUE(
      engine.Seed(1, Slice(reinterpret_cast<const char*>(&two), 8)).ok());
  ASSERT_TRUE(
      engine.Seed(0, Slice(reinterpret_cast<const char*>(&five), 8)).ok());
  AsyncEngine::RunStats stats;
  ASSERT_TRUE(engine
                  .Run(
                      [](AsyncEngine::Context& ctx, Slice message) {
                        double delta = 0, value = 0;
                        std::memcpy(&delta, message.data(), 8);
                        if (ctx.value().size() == 8) {
                          std::memcpy(&value, ctx.value().data(), 8);
                        }
                        value += delta;
                        ctx.value().assign(
                            reinterpret_cast<const char*>(&value), 8);
                        const double share = delta / 8;
                        for (std::size_t i = 0; i < ctx.out_count(); ++i) {
                          ctx.Send(ctx.out()[i],
                                   Slice(reinterpret_cast<const char*>(
                                             &share),
                                         8));
                        }
                      },
                      &stats)
                  .ok());
  // Exactly the two seeds ran; both pushed shares (0.625, 0.25) dropped.
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_EQ(stats.epsilon_dropped, 2u);
  std::string value;
  ASSERT_TRUE(engine.GetValue(0, &value).ok());
  double d = 0;
  std::memcpy(&d, value.data(), 8);
  EXPECT_EQ(d, 5.0);
  // Last-writer state survives the drop aimed at it.
  ASSERT_TRUE(engine.GetValue(1, &value).ok());
  std::memcpy(&d, value.data(), 8);
  EXPECT_EQ(d, 2.0);
  // A vertex that only ever received dropped work has no materialized value.
  EXPECT_TRUE(engine.GetValue(2, &value).IsNotFound());
}

TEST(AsyncEngineTest, InvalidSchedulerConfigsAreReported) {
  Fixture f = NewGraph(4);
  BuildChain(f.graph.get());
  AsyncEngine::RunStats stats;
  auto noop = [](AsyncEngine::Context&, Slice) {};
  {
    AsyncEngine::Options options;
    options.scheduler = SchedulerMode::kPriority;  // No combiner.
    AsyncEngine engine(f.graph.get(), options);
    EXPECT_TRUE(engine.Run(noop, &stats).IsInvalidArgument());
  }
  {
    AsyncEngine::Options options;
    options.scheduler = SchedulerMode::kPriority;
    options.combiner = [](std::string*, Slice) {};  // No priority fn.
    AsyncEngine engine(f.graph.get(), options);
    EXPECT_TRUE(engine.Run(noop, &stats).IsInvalidArgument());
  }
  {
    AsyncEngine::Options options;
    options.priority_epsilon = 0.5;  // Epsilon without a priority fn.
    AsyncEngine engine(f.graph.get(), options);
    EXPECT_TRUE(engine.Run(noop, &stats).IsInvalidArgument());
  }
}

// The fifo-mode determinism anchor: this workload, hash, and update count
// were captured from the engine BEFORE the scheduler refactor (the plain
// per-machine std::deque). Fifo mode without a combiner must stay
// bit-identical to that engine for any thread count.
TEST(AsyncEngineTest, FifoModeBitIdenticalToPreSchedulerEngine) {
  constexpr std::uint64_t kGoldenHash = 0xcc71ff681b451826ULL;
  constexpr std::uint64_t kGoldenUpdates = 152099;
  for (int threads : {1, 8}) {
    Fixture f = NewGraph(8);
    ASSERT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 5.0, 13).ok());
    AsyncEngine::Options options;
    options.num_threads = threads;
    AsyncEngine engine(f.graph.get(), options);
    const std::uint32_t hops = 3;
    char seed_msg[4];
    std::memcpy(seed_msg, &hops, 4);
    ASSERT_TRUE(engine.Seed(0, Slice(seed_msg, 4)).ok());
    AsyncEngine::RunStats stats;
    ASSERT_TRUE(engine
                    .Run(
                        [](AsyncEngine::Context& ctx, Slice message) {
                          std::uint32_t budget = 0;
                          std::memcpy(&budget, message.data(), 4);
                          // Order-sensitive: append the remaining budget in
                          // processing order; any reordering changes some
                          // vertex's concatenation, hence the hash.
                          ctx.value().push_back(
                              static_cast<char>('0' + budget));
                          if (budget == 0) return;
                          const std::uint32_t next = budget - 1;
                          char buf[4];
                          std::memcpy(buf, &next, 4);
                          for (std::size_t i = 0; i < ctx.out_count(); ++i) {
                            ctx.Send(ctx.out()[i], Slice(buf, 4));
                          }
                        },
                        &stats)
                    .ok());
    EXPECT_EQ(stats.updates, kGoldenUpdates) << "threads " << threads;
    std::map<CellId, std::string> values;
    engine.ForEachValue([&](CellId v, const std::string& value) {
      values[v] = value;
    });
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [v, value] : values) {
      h ^= HashBytes(&v, 8);
      h *= 0x100000001b3ULL;
      h ^= HashBytes(value.data(), value.size());
      h *= 0x100000001b3ULL;
    }
    EXPECT_EQ(h, kGoldenHash) << "threads " << threads;
  }
}

TEST(AsyncEngineTest, PriorityAndSweepParallelRunsMatchSequential) {
  // Delta-caching modes keep the engine's bit-identical determinism
  // guarantee: same seed + same scheduler => same bytes, at any thread
  // count. Double folds happen in canonical arrival order, never
  // reassociated by scheduling.
  auto run = [](SchedulerMode mode, int threads) {
    Fixture f = NewGraph(8, /*track_inlinks=*/false);
    EXPECT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 512, 6.0, 9).ok());
    algos::DeltaPageRankOptions options;
    options.epsilon = 1e-7;
    options.async.num_threads = threads;
    options.async.scheduler = mode;
    algos::DeltaPageRankResult result;
    EXPECT_TRUE(
        algos::RunDeltaPageRank(f.graph.get(), options, &result).ok());
    return result;
  };
  for (SchedulerMode mode : {SchedulerMode::kPriority,
                             SchedulerMode::kSweep, SchedulerMode::kFifo}) {
    const auto sequential = run(mode, 1);
    const auto parallel = run(mode, 8);
    ASSERT_EQ(sequential.ranks.size(), parallel.ranks.size());
    for (const auto& [vertex, rank] : sequential.ranks) {
      auto it = parallel.ranks.find(vertex);
      ASSERT_NE(it, parallel.ranks.end()) << "vertex " << vertex;
      EXPECT_EQ(it->second, rank)
          << "vertex " << vertex << " mode " << static_cast<int>(mode);
    }
    EXPECT_EQ(sequential.stats.updates, parallel.stats.updates);
    EXPECT_EQ(sequential.stats.coalesced_updates,
              parallel.stats.coalesced_updates);
    EXPECT_EQ(sequential.stats.epsilon_dropped,
              parallel.stats.epsilon_dropped);
  }
}

TEST(MessageOptimizerTest, PolicyOrderings) {
  Fixture f = NewGraph(4);
  const auto edges = graph::Generators::PowerLaw(2000, 8.0, 2.16, 1);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());

  MessageOptimizer::Options base;
  base.hub_fraction = 0.05;
  base.num_partitions = 8;

  MessagePlanReport buffer_all, on_demand, hub, hub_part;
  base.policy = DeliveryPolicy::kBufferAll;
  ASSERT_TRUE(
      MessageOptimizer::Analyze(f.graph.get(), 0, base, &buffer_all).ok());
  base.policy = DeliveryPolicy::kOnDemand;
  ASSERT_TRUE(
      MessageOptimizer::Analyze(f.graph.get(), 0, base, &on_demand).ok());
  base.policy = DeliveryPolicy::kHubBuffered;
  ASSERT_TRUE(MessageOptimizer::Analyze(f.graph.get(), 0, base, &hub).ok());
  base.policy = DeliveryPolicy::kHubPlusPartition;
  ASSERT_TRUE(
      MessageOptimizer::Analyze(f.graph.get(), 0, base, &hub_part).ok());

  // All policies serve the same logical demand.
  EXPECT_EQ(buffer_all.logical_messages, on_demand.logical_messages);
  // Deliveries: buffer-all <= hub+partition <= hub-only <= on-demand.
  EXPECT_LE(buffer_all.delivered_messages, hub_part.delivered_messages);
  EXPECT_LE(hub_part.delivered_messages, hub.delivered_messages);
  EXPECT_LE(hub.delivered_messages, on_demand.delivered_messages);
  // Buffering: on-demand <= hub <= hub+partition <= buffer-all.
  EXPECT_LE(on_demand.peak_buffer_bytes, hub.peak_buffer_bytes);
  EXPECT_LE(hub_part.peak_buffer_bytes, buffer_all.peak_buffer_bytes);
  // Hubs cover a disproportionate share of needs on a power-law graph
  // (§5.4: a few percent of hubs cover most messages).
  EXPECT_GT(hub.hub_coverage, 0.1);
}

TEST(MessageOptimizerTest, MultilevelPartitionBeatsContiguous) {
  Fixture f = NewGraph(4);
  const auto edges = graph::Generators::PowerLaw(3000, 8.0, 2.16, 2);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  MessageOptimizer::Options options;
  options.policy = DeliveryPolicy::kHubPlusPartition;
  options.hub_fraction = 0.01;
  options.num_partitions = 8;
  MessagePlanReport contiguous, multilevel;
  ASSERT_TRUE(
      MessageOptimizer::Analyze(f.graph.get(), 0, options, &contiguous).ok());
  options.use_multilevel_partition = true;
  ASSERT_TRUE(
      MessageOptimizer::Analyze(f.graph.get(), 0, options, &multilevel).ok());
  EXPECT_EQ(multilevel.logical_messages, contiguous.logical_messages);
  // Grouping co-fed receivers lets each sender hit fewer partitions.
  EXPECT_LT(multilevel.delivered_messages, contiguous.delivered_messages);
}

TEST(MessageOptimizerTest, ResidencyFormulaMatchesPaperExample) {
  // §5.4: k = l = m = 8, p = 0.1, Facebook-scale graph (0.8e9 vertices,
  // ~104e9 undirected-ish edge slots): "78 GB memory space can be saved".
  const auto report = MessageOptimizer::Residency(
      800'000'000ull, 10'400'000'000ull, 8, 8, 8, 0.1);
  EXPECT_GT(report.saved_bytes, 60e9);
  EXPECT_LT(report.saved_bytes, 100e9);
  EXPECT_LT(report.offline_bytes, report.full_bytes);
  // Formula identity: S - S' = (1-p)(k+l)V + (1-p) 8E.
  const double v = 800e6, e = 10.4e9, p = 0.1;
  EXPECT_NEAR(report.saved_bytes, (1 - p) * 16 * v + (1 - p) * 8 * e, 1e6);
}

}  // namespace
}  // namespace trinity::compute
