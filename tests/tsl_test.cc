#include <gtest/gtest.h>

#include "tsl/cell_accessor.h"
#include "tsl/cell_io.h"
#include "tsl/codegen.h"
#include "tsl/lexer.h"
#include "tsl/parser.h"
#include "tsl/protocol.h"
#include "tsl/schema.h"

namespace trinity::tsl {
namespace {

// The paper's Fig 4 movie/actor script plus Fig 5's Echo protocol.
constexpr const char* kMovieScript = R"(
  // Modeling a movie and actor graph (paper Fig 4).
  [CellType: NodeCell]
  cell struct Movie {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Actor]
    List<long> Actors;
  }
  [CellType: NodeCell]
  cell struct Actor {
    string Name;
    [EdgeType: SimpleEdge, ReferencedCell: Movie]
    List<long> Movies;
  }
  struct MyMessage { string Text; }
  protocol Echo {
    Type: Syn;
    Request: MyMessage;
    Response: MyMessage;
  }
)";

TEST(LexerTest, TokenizesPunctuationAndIdentifiers) {
  std::vector<Token> tokens;
  ASSERT_TRUE(Lexer::Tokenize("cell struct A { int X; }", &tokens).ok());
  ASSERT_EQ(tokens.size(), 9u);  // Including end token.
  EXPECT_EQ(tokens[0].text, "cell");
  EXPECT_EQ(tokens[2].text, "A");
  EXPECT_EQ(tokens[3].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens[6].kind, TokenKind::kSemicolon);
}

TEST(LexerTest, SkipsComments) {
  std::vector<Token> tokens;
  ASSERT_TRUE(
      Lexer::Tokenize("// line\nstruct /* block */ A {}", &tokens).ok());
  EXPECT_EQ(tokens[0].text, "struct");
  EXPECT_EQ(tokens[1].text, "A");
}

TEST(LexerTest, RejectsStrayCharacters) {
  std::vector<Token> tokens;
  EXPECT_TRUE(Lexer::Tokenize("struct A @ {}", &tokens).IsInvalidArgument());
}

TEST(ParserTest, ParsesMovieScript) {
  Script script;
  ASSERT_TRUE(Parser::Parse(kMovieScript, &script).ok());
  ASSERT_EQ(script.structs.size(), 3u);
  ASSERT_EQ(script.protocols.size(), 1u);
  const StructDecl& movie = script.structs[0];
  EXPECT_EQ(movie.name, "Movie");
  EXPECT_TRUE(movie.is_cell);
  EXPECT_EQ(movie.attributes.at("CellType"), "NodeCell");
  ASSERT_EQ(movie.fields.size(), 2u);
  EXPECT_EQ(movie.fields[0].name, "Name");
  EXPECT_EQ(movie.fields[0].type.kind, TypeKind::kString);
  EXPECT_EQ(movie.fields[1].type.kind, TypeKind::kList);
  EXPECT_EQ(movie.fields[1].type.element_kind, TypeKind::kInt64);
  EXPECT_EQ(movie.fields[1].attributes.at("ReferencedCell"), "Actor");
  const ProtocolDecl& echo = script.protocols[0];
  EXPECT_TRUE(echo.synchronous);
  EXPECT_EQ(echo.request_type, "MyMessage");
  EXPECT_EQ(echo.response_type, "MyMessage");
}

TEST(ParserTest, ParsesAsynAndVoidProtocols) {
  Script script;
  ASSERT_TRUE(Parser::Parse(
                  "protocol Fire { Type: Asyn; Request: void; Response: "
                  "void; }",
                  &script)
                  .ok());
  EXPECT_FALSE(script.protocols[0].synchronous);
  EXPECT_TRUE(script.protocols[0].request_type.empty());
}

TEST(ParserTest, ReportsErrorsWithLineNumbers) {
  Script script;
  const Status s = Parser::Parse("struct A {\n  int\n}", &script);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
}

TEST(SchemaTest, CompilesAndComputesLayout) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(kMovieScript, &registry).ok());
  const Schema* movie = registry.struct_schema("Movie");
  ASSERT_NE(movie, nullptr);
  EXPECT_TRUE(movie->is_cell());
  EXPECT_FALSE(movie->fixed_size());  // Has a string and a list.
  EXPECT_EQ(movie->FieldIndex("Name"), 0);
  EXPECT_EQ(movie->FieldIndex("Actors"), 1);
  EXPECT_EQ(movie->FieldIndex("Nope"), -1);
  EXPECT_EQ(registry.cell_schemas().size(), 2u);
  ASSERT_NE(registry.protocol("Echo"), nullptr);
}

TEST(SchemaTest, FixedSizeStructs) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(
                  "struct Point { double X; double Y; int Id; }", &registry)
                  .ok());
  const Schema* point = registry.struct_schema("Point");
  ASSERT_NE(point, nullptr);
  EXPECT_TRUE(point->fixed_size());
  EXPECT_EQ(point->fixed_width(), 20u);
}

TEST(SchemaTest, RejectsDuplicatesAndUnknownRefs) {
  SchemaRegistry registry;
  EXPECT_TRUE(SchemaRegistry::Compile("struct A {} struct A {}", &registry)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      SchemaRegistry::Compile("struct A { Unknown F; }", &registry)
          .IsInvalidArgument());
  EXPECT_TRUE(SchemaRegistry::Compile(
                  "cell struct A { [ReferencedCell: Nope] List<long> L; }",
                  &registry)
                  .IsInvalidArgument());
  // ReferencedCell must be a *cell* struct.
  EXPECT_TRUE(SchemaRegistry::Compile(
                  "struct B {} cell struct A { [ReferencedCell: B] "
                  "List<long> L; }",
                  &registry)
                  .IsInvalidArgument());
}

TEST(SchemaTest, RejectsRecursiveNesting) {
  SchemaRegistry registry;
  EXPECT_TRUE(
      SchemaRegistry::Compile("struct A { B Inner; } struct B { A Inner; }",
                              &registry)
          .IsInvalidArgument());
}

TEST(SchemaTest, RejectsProtocolWithUnknownType) {
  SchemaRegistry registry;
  EXPECT_TRUE(SchemaRegistry::Compile(
                  "protocol P { Type: Syn; Request: Ghost; Response: void; }",
                  &registry)
                  .IsInvalidArgument());
}

class AccessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(SchemaRegistry::Compile(kMovieScript, &registry_).ok());
    movie_ = registry_.struct_schema("Movie");
  }
  SchemaRegistry registry_;
  const Schema* movie_ = nullptr;
};

TEST_F(AccessorTest, DefaultImageValidates) {
  CellAccessor cell = CellAccessor::NewDefault(movie_);
  EXPECT_TRUE(ValidateBlob(movie_, Slice(cell.blob())).ok());
  std::string name = "preset";
  ASSERT_TRUE(cell.GetString(0, &name).ok());
  EXPECT_TRUE(name.empty());
  std::size_t actors = 99;
  ASSERT_TRUE(cell.ListSize(1, &actors).ok());
  EXPECT_EQ(actors, 0u);
}

TEST_F(AccessorTest, StringAndListManipulation) {
  CellAccessor cell = CellAccessor::NewDefault(movie_);
  ASSERT_TRUE(cell.SetString(0, Slice("The Matrix")).ok());
  ASSERT_TRUE(cell.AppendListInt64(1, 101).ok());
  ASSERT_TRUE(cell.AppendListInt64(1, 102).ok());
  ASSERT_TRUE(cell.AppendListInt64(1, 103).ok());
  // Resizing the string must not corrupt the list that follows it.
  ASSERT_TRUE(cell.SetString(0, Slice("The Matrix Reloaded — longer")).ok());
  std::string name;
  ASSERT_TRUE(cell.GetString(0, &name).ok());
  EXPECT_EQ(name, "The Matrix Reloaded — longer");
  std::size_t n = 0;
  ASSERT_TRUE(cell.ListSize(1, &n).ok());
  ASSERT_EQ(n, 3u);
  std::int64_t v = 0;
  ASSERT_TRUE(cell.GetListInt64(1, 1, &v).ok());
  EXPECT_EQ(v, 102);
  ASSERT_TRUE(cell.SetListInt64(1, 1, 222).ok());
  ASSERT_TRUE(cell.GetListInt64(1, 1, &v).ok());
  EXPECT_EQ(v, 222);
  ASSERT_TRUE(cell.RemoveListElement(1, 0).ok());
  ASSERT_TRUE(cell.ListSize(1, &n).ok());
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(cell.GetListInt64(1, 0, &v).ok());
  EXPECT_EQ(v, 222);
  EXPECT_TRUE(ValidateBlob(movie_, Slice(cell.blob())).ok());
}

TEST_F(AccessorTest, TypeMismatchesRejected) {
  CellAccessor cell = CellAccessor::NewDefault(movie_);
  std::int64_t v;
  EXPECT_TRUE(cell.GetInt64(0, &v).IsInvalidArgument());  // Name is string.
  EXPECT_TRUE(cell.AppendListInt32(1, 1).IsInvalidArgument());  // long list.
  EXPECT_TRUE(cell.GetListInt64(1, 5, &v).IsInvalidArgument());  // OOB.
  std::string s;
  EXPECT_TRUE(cell.GetString(7, &s).IsInvalidArgument());  // No field 7.
}

TEST_F(AccessorTest, AllScalarKinds) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(
                  "struct S { byte B; bool F; int I; long L; float G; "
                  "double D; string T; }",
                  &registry)
                  .ok());
  CellAccessor cell = CellAccessor::NewDefault(registry.struct_schema("S"));
  ASSERT_TRUE(cell.SetByte(0, 200).ok());
  ASSERT_TRUE(cell.SetBool(1, true).ok());
  ASSERT_TRUE(cell.SetInt32(2, -5).ok());
  ASSERT_TRUE(cell.SetInt64(3, 1LL << 40).ok());
  ASSERT_TRUE(cell.SetFloat(4, 1.5f).ok());
  ASSERT_TRUE(cell.SetDouble(5, -2.25).ok());
  ASSERT_TRUE(cell.SetString(6, Slice("tail")).ok());
  std::uint8_t b;
  bool f;
  std::int32_t i;
  std::int64_t l;
  float g;
  double d;
  std::string t;
  ASSERT_TRUE(cell.GetByte(0, &b).ok());
  ASSERT_TRUE(cell.GetBool(1, &f).ok());
  ASSERT_TRUE(cell.GetInt32(2, &i).ok());
  ASSERT_TRUE(cell.GetInt64(3, &l).ok());
  ASSERT_TRUE(cell.GetFloat(4, &g).ok());
  ASSERT_TRUE(cell.GetDouble(5, &d).ok());
  ASSERT_TRUE(cell.GetString(6, &t).ok());
  EXPECT_EQ(b, 200);
  EXPECT_TRUE(f);
  EXPECT_EQ(i, -5);
  EXPECT_EQ(l, 1LL << 40);
  EXPECT_EQ(g, 1.5f);
  EXPECT_EQ(d, -2.25);
  EXPECT_EQ(t, "tail");
}

TEST_F(AccessorTest, NestedStructAccess) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(
                  "struct Inner { int A; string S; } "
                  "struct Outer { long Pre; Inner Mid; long Post; }",
                  &registry)
                  .ok());
  CellAccessor outer =
      CellAccessor::NewDefault(registry.struct_schema("Outer"));
  ASSERT_TRUE(outer.SetInt64(0, 1).ok());
  ASSERT_TRUE(outer.SetInt64(2, 3).ok());
  CellAccessor inner =
      CellAccessor::NewDefault(registry.struct_schema("Inner"));
  ASSERT_TRUE(inner.SetInt32(0, 42).ok());
  ASSERT_TRUE(inner.SetString(1, Slice("nested value")).ok());
  ASSERT_TRUE(outer.SetStruct(1, inner).ok());
  // Fields around the variable-size nested struct stay correct.
  std::int64_t v;
  ASSERT_TRUE(outer.GetInt64(0, &v).ok());
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(outer.GetInt64(2, &v).ok());
  EXPECT_EQ(v, 3);
  CellAccessor read_back;
  ASSERT_TRUE(outer.GetStruct(1, &read_back).ok());
  std::string s;
  ASSERT_TRUE(read_back.GetString(1, &s).ok());
  EXPECT_EQ(s, "nested value");
}

TEST_F(AccessorTest, StructListAccess) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(
                  "struct Hit { long Doc; double Score; string Why; } "
                  "cell struct Results { string Query; List<Hit> Hits; }",
                  &registry)
                  .ok());
  const Schema* results_schema = registry.struct_schema("Results");
  const Schema* hit_schema = registry.struct_schema("Hit");
  CellAccessor results = CellAccessor::NewDefault(results_schema);
  ASSERT_TRUE(results.SetString(0, Slice("graph engines")).ok());
  for (int i = 0; i < 3; ++i) {
    CellAccessor hit = CellAccessor::NewDefault(hit_schema);
    ASSERT_TRUE(hit.SetInt64(0, 100 + i).ok());
    ASSERT_TRUE(hit.SetDouble(1, 0.5 * i).ok());
    ASSERT_TRUE(hit.SetString(2, Slice("reason " + std::to_string(i))).ok());
    ASSERT_TRUE(results.AppendListStruct(1, hit).ok());
  }
  std::size_t n = 0;
  ASSERT_TRUE(results.ListSize(1, &n).ok());
  ASSERT_EQ(n, 3u);
  EXPECT_TRUE(ValidateBlob(results_schema, Slice(results.blob())).ok());
  // Random-access a middle (variable-size) element.
  CellAccessor hit;
  ASSERT_TRUE(results.GetListStruct(1, 1, &hit).ok());
  std::int64_t doc = 0;
  std::string why;
  ASSERT_TRUE(hit.GetInt64(0, &doc).ok());
  ASSERT_TRUE(hit.GetString(2, &why).ok());
  EXPECT_EQ(doc, 101);
  EXPECT_EQ(why, "reason 1");
  EXPECT_TRUE(
      results.GetListStruct(1, 9, &hit).IsInvalidArgument());  // OOB.
  // Schema mismatch rejected.
  CellAccessor wrong = CellAccessor::NewDefault(results_schema);
  EXPECT_TRUE(results.AppendListStruct(1, wrong).IsInvalidArgument());
}

TEST_F(AccessorTest, ValidateRejectsCorruptBlobs) {
  CellAccessor cell = CellAccessor::NewDefault(movie_);
  ASSERT_TRUE(cell.SetString(0, Slice("x")).ok());
  std::string blob = cell.blob();
  blob.resize(blob.size() - 1);  // Truncate the trailing list.
  EXPECT_TRUE(ValidateBlob(movie_, Slice(blob)).IsCorruption());
  blob = cell.blob() + "extra";
  EXPECT_TRUE(ValidateBlob(movie_, Slice(blob)).IsCorruption());
}

TEST_F(AccessorTest, DirtyFlagTracksWrites) {
  CellAccessor cell = CellAccessor::NewDefault(movie_);
  EXPECT_FALSE(cell.dirty());
  std::string s;
  ASSERT_TRUE(cell.GetString(0, &s).ok());
  EXPECT_FALSE(cell.dirty());
  ASSERT_TRUE(cell.SetString(0, Slice("w")).ok());
  EXPECT_TRUE(cell.dirty());
}

class CellIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(SchemaRegistry::Compile(kMovieScript, &registry_).ok());
    cloud::MemoryCloud::Options options;
    options.num_slaves = 2;
    options.p_bits = 3;
    options.storage.trunk.capacity = 128 * 1024;
    ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud_).ok());
  }
  SchemaRegistry registry_;
  std::unique_ptr<cloud::MemoryCloud> cloud_;
};

TEST_F(CellIoTest, ScopedCellCommitsOnDestruction) {
  const Schema* movie = registry_.struct_schema("Movie");
  ASSERT_TRUE(NewCell(cloud_.get(), cloud_->client_id(), 1, movie).ok());
  {
    ScopedCell cell;
    ASSERT_TRUE(ScopedCell::Use(cloud_.get(), cloud_->client_id(), 1, movie,
                                &cell)
                    .ok());
    ASSERT_TRUE(cell.accessor().SetString(0, Slice("Inception")).ok());
    ASSERT_TRUE(cell.accessor().AppendListInt64(1, 2).ok());
  }  // Destructor commits.
  CellAccessor reloaded;
  ASSERT_TRUE(
      LoadCell(cloud_.get(), cloud_->client_id(), 1, movie, &reloaded).ok());
  std::string name;
  ASSERT_TRUE(reloaded.GetString(0, &name).ok());
  EXPECT_EQ(name, "Inception");
}

TEST_F(CellIoTest, LoadValidatesSchema) {
  ASSERT_TRUE(cloud_->AddCell(5, Slice("not a movie at all....")).ok());
  CellAccessor cell;
  EXPECT_TRUE(LoadCell(cloud_.get(), cloud_->client_id(), 5,
                       registry_.struct_schema("Movie"), &cell)
                  .IsCorruption());
}

TEST_F(CellIoTest, EchoProtocolRoundTrip) {
  ProtocolRuntime runtime(&registry_, cloud_.get());
  // Server side: implement the handler "as if implementing a local method".
  ASSERT_TRUE(runtime
                  .RegisterSynHandler(
                      1, "Echo",
                      [](MachineId, const CellAccessor& request,
                         CellAccessor* response) {
                        std::string text;
                        Status s = request.GetString(0, &text);
                        if (!s.ok()) return s;
                        return response->SetString(0,
                                                   Slice("echo: " + text));
                      })
                  .ok());
  SchemaRegistry* reg = &registry_;
  CellAccessor request =
      CellAccessor::NewDefault(reg->struct_schema("MyMessage"));
  ASSERT_TRUE(request.SetString(0, Slice("hello")).ok());
  CellAccessor response;
  ASSERT_TRUE(runtime.Call(0, 1, "Echo", request, &response).ok());
  std::string text;
  ASSERT_TRUE(response.GetString(0, &text).ok());
  EXPECT_EQ(text, "echo: hello");
}

TEST_F(CellIoTest, ProtocolTypeEnforcement) {
  ProtocolRuntime runtime(&registry_, cloud_.get());
  CellAccessor request =
      CellAccessor::NewDefault(registry_.struct_schema("MyMessage"));
  EXPECT_TRUE(runtime.Send(0, 1, "Echo", request).IsInvalidArgument());
  EXPECT_TRUE(runtime.Call(0, 1, "Missing", request, nullptr).IsNotFound());
  EXPECT_TRUE(
      runtime
          .RegisterAsynHandler(1, "Echo", [](MachineId, const CellAccessor&) {})
          .IsInvalidArgument());
}

TEST(CodegenTest, EmitsAccessorsAndProtocolStubs) {
  SchemaRegistry registry;
  ASSERT_TRUE(SchemaRegistry::Compile(kMovieScript, &registry).ok());
  const std::string header =
      Codegen::GenerateHeader(registry, "GENERATED_MOVIE_H_");
  EXPECT_NE(header.find("class MovieAccessor"), std::string::npos);
  EXPECT_NE(header.find("class ActorAccessor"), std::string::npos);
  EXPECT_NE(header.find("UseMovieAccessor"), std::string::npos);
  EXPECT_NE(header.find("std::string Name()"), std::string::npos);
  EXPECT_NE(header.find("Status AppendActors(std::int64_t v)"),
            std::string::npos);
  EXPECT_NE(header.find("CallEcho"), std::string::npos);
  EXPECT_NE(header.find("RegisterEchoHandler"), std::string::npos);
  EXPECT_NE(header.find("#ifndef GENERATED_MOVIE_H_"), std::string::npos);
}

}  // namespace
}  // namespace trinity::tsl
