#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "query/lubm.h"
#include "query/rdf_store.h"

namespace trinity::query {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

TEST(RdfStoreTest, EntityAndTripleRoundTrip) {
  auto cloud = NewCloud();
  RdfStore store(cloud.get());
  ASSERT_TRUE(store.AddEntity(1, EntityType::kProfessor).ok());
  ASSERT_TRUE(store.AddEntity(2, EntityType::kCourse).ok());
  ASSERT_TRUE(store.AddEntity(3, EntityType::kCourse).ok());
  ASSERT_TRUE(store.AddTriple(1, Predicate::kTeacherOf, 2).ok());
  ASSERT_TRUE(store.AddTriple(1, Predicate::kTeacherOf, 3).ok());
  EntityType type;
  ASSERT_TRUE(store.GetType(1, &type).ok());
  EXPECT_EQ(type, EntityType::kProfessor);
  std::vector<CellId> courses;
  ASSERT_TRUE(store.GetObjects(1, Predicate::kTeacherOf, &courses).ok());
  EXPECT_EQ(courses, (std::vector<CellId>{2, 3}));
  std::vector<CellId> none;
  ASSERT_TRUE(store.GetObjects(1, Predicate::kAdvisor, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(RdfStoreTest, ScanLocalCoversAllEntities) {
  auto cloud = NewCloud();
  RdfStore store(cloud.get());
  for (CellId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store.AddEntity(id, EntityType::kStudent).ok());
  }
  std::size_t seen = 0;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    ASSERT_TRUE(store
                    .ScanLocal(m,
                               [&](CellId, EntityType type, const auto&) {
                                 EXPECT_EQ(type, EntityType::kStudent);
                                 ++seen;
                               })
                    .ok());
  }
  EXPECT_EQ(seen, 50u);
}

class LubmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = NewCloud(4);
    store_ = std::make_unique<RdfStore>(cloud_.get());
    LubmGenerator::Options options;
    options.universities = 2;
    options.departments_per_university = 4;
    options.professors_per_department = 3;
    options.courses_per_professor = 2;
    options.students_per_department = 20;
    options.courses_per_student = 3;
    ASSERT_TRUE(
        LubmGenerator::Generate(store_.get(), options, &dataset_).ok());
  }
  std::unique_ptr<cloud::MemoryCloud> cloud_;
  std::unique_ptr<RdfStore> store_;
  LubmGenerator::Dataset dataset_;
};

TEST_F(LubmTest, GeneratesExpectedCounts) {
  // 2 universities, 8 departments, 24 professors, 48 courses, 160 students.
  EXPECT_EQ(dataset_.entities, 2u + 8 + 24 + 48 + 160);
  // Triples: 8 subOrg + 24 worksFor + 48 teacherOf + 160*(1 member + 1
  // advisor + 3 courses).
  EXPECT_EQ(dataset_.triples, 8u + 24 + 48 + 160 * 5);
  EXPECT_EQ(cloud_->TotalCellCount(), dataset_.entities);
}

TEST_F(LubmTest, StudentsOfCourseMatchesReference) {
  SparqlQueries queries(store_.get(), net::CostModel{});
  // Reference count by direct scan.
  std::uint64_t expected = 0;
  for (MachineId m = 0; m < cloud_->num_slaves(); ++m) {
    ASSERT_TRUE(store_
                    ->ScanLocal(m,
                                [&](CellId, EntityType type,
                                    const auto& for_each_triple) {
                                  if (type != EntityType::kStudent) return;
                                  for_each_triple(
                                      [&](Predicate p, CellId o) {
                                        if (p == Predicate::kTakesCourse &&
                                            o == dataset_.first_course) {
                                          ++expected;
                                        }
                                      });
                                })
                    .ok());
  }
  SparqlQueries::QueryStats stats;
  ASSERT_TRUE(queries.StudentsOfCourse(dataset_.first_course, &stats).ok());
  EXPECT_EQ(stats.results, expected);
  EXPECT_GT(stats.modeled_millis, 0.0);
}

TEST_F(LubmTest, ProfessorsOfUniversityCountsPerUniversity) {
  SparqlQueries queries(store_.get(), net::CostModel{});
  SparqlQueries::QueryStats stats;
  ASSERT_TRUE(
      queries.ProfessorsOfUniversity(dataset_.first_university, &stats).ok());
  // 4 departments x 3 professors.
  EXPECT_EQ(stats.results, 12u);
}

TEST_F(LubmTest, AffiliationPathQuery) {
  SparqlQueries queries(store_.get(), net::CostModel{});
  SparqlQueries::QueryStats stats;
  ASSERT_TRUE(
      queries.ProfessorsAffiliatedWith(dataset_.first_university, &stats)
          .ok());
  EXPECT_EQ(stats.results, 12u);
}

TEST_F(LubmTest, TriangleQueryFindsAdvisedStudents) {
  SparqlQueries queries(store_.get(), net::CostModel{});
  SparqlQueries::QueryStats stats;
  ASSERT_TRUE(queries.StudentsAdvisedByTheirTeacher(&stats).ok());
  // Each student takes 3 of 12 department courses (6 by their advisor
  // in expectation 2/12 each): some students must match, not all.
  EXPECT_GT(stats.results, 0u);
  EXPECT_LT(stats.results, 160u);
}

TEST_F(LubmTest, MoreMachinesReduceModeledLatency) {
  // Fig 14(b): as machines grow, scan work per machine shrinks. Modeled
  // time includes *measured* CPU, which jitters under system load, so take
  // the minimum over several runs of the same query.
  auto run_with = [&](int slaves) {
    auto cloud = NewCloud(slaves);
    RdfStore store(cloud.get());
    LubmGenerator::Options options;
    options.universities = 2;
    options.students_per_department = 40;
    LubmGenerator::Dataset dataset;
    EXPECT_TRUE(LubmGenerator::Generate(&store, options, &dataset).ok());
    SparqlQueries queries(&store, net::CostModel{});
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      SparqlQueries::QueryStats stats;
      EXPECT_TRUE(
          queries.StudentsOfCourse(dataset.first_course, &stats).ok());
      best = std::min(best, stats.modeled_millis);
    }
    return best;
  };
  const double with2 = run_with(2);
  const double with8 = run_with(8);
  EXPECT_LT(with8, with2);
}

}  // namespace
}  // namespace trinity::query
