#include "graph/partition.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace trinity::graph {
namespace {

TEST(CsrTest, FromEdgesSymmetrizes) {
  Generators::EdgeList edges;
  edges.num_nodes = 4;
  edges.edges = {{0, 1}, {1, 2}, {2, 2} /* self-loop dropped */};
  const Csr csr = Csr::FromEdges(edges);
  EXPECT_EQ(csr.num_nodes, 4u);
  EXPECT_EQ(csr.Degree(0), 1u);
  EXPECT_EQ(csr.Degree(1), 2u);
  EXPECT_EQ(csr.Degree(2), 1u);
  EXPECT_EQ(csr.Degree(3), 0u);
  EXPECT_EQ(csr.Neighbors(0)[0], 1u);
}

class PartitionerTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerTest, RingGraphHasSmallCut) {
  // A ring of n nodes has an optimal k-way cut of exactly k.
  const int k = GetParam();
  Generators::EdgeList ring;
  ring.num_nodes = 1024;
  for (std::uint64_t v = 0; v < ring.num_nodes; ++v) {
    ring.edges.emplace_back(v, (v + 1) % ring.num_nodes);
  }
  const Csr csr = Csr::FromEdges(ring);
  MultilevelPartitioner::Options options;
  options.num_parts = k;
  MultilevelPartitioner partitioner(options);
  MultilevelPartitioner::Result result;
  ASSERT_TRUE(partitioner.Partition(csr, &result).ok());
  EXPECT_EQ(result.assignment.size(), ring.num_nodes);
  // Multilevel partitioning should be within a small factor of optimal.
  EXPECT_LE(result.edge_cut, static_cast<std::uint64_t>(6 * k));
  EXPECT_LE(result.balance, 1.35);
  EXPECT_GT(result.levels, 1);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionerTest, ::testing::Values(2, 4, 8));

TEST(PartitionerTest, BeatsRandomAssignmentOnRmat) {
  const auto edges = Generators::Rmat(2048, 8.0, 21);
  const Csr csr = Csr::FromEdges(edges);
  MultilevelPartitioner::Options options;
  options.num_parts = 8;
  MultilevelPartitioner partitioner(options);
  MultilevelPartitioner::Result result;
  ASSERT_TRUE(partitioner.Partition(csr, &result).ok());

  // Random baseline.
  Random rng(5);
  std::vector<std::int32_t> random_assignment(csr.num_nodes);
  for (auto& p : random_assignment) {
    p = static_cast<std::int32_t>(rng.Uniform(8));
  }
  const std::uint64_t random_cut =
      MultilevelPartitioner::EdgeCut(csr, random_assignment);
  EXPECT_LT(result.edge_cut, random_cut);
}

TEST(PartitionerTest, RespectsBalanceConstraint) {
  const auto edges = Generators::PowerLaw(4000, 6.0, 2.16, 17);
  const Csr csr = Csr::FromEdges(edges);
  MultilevelPartitioner::Options options;
  options.num_parts = 4;
  options.epsilon = 0.1;
  MultilevelPartitioner partitioner(options);
  MultilevelPartitioner::Result result;
  ASSERT_TRUE(partitioner.Partition(csr, &result).ok());
  // Graph growing + refinement keep parts roughly balanced.
  EXPECT_LE(result.balance, 1.6);
  for (std::int32_t p : result.assignment) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
  }
}

TEST(PartitionerTest, DeterministicUnderSeed) {
  const auto edges = Generators::Rmat(512, 4.0, 33);
  const Csr csr = Csr::FromEdges(edges);
  MultilevelPartitioner::Options options;
  options.num_parts = 4;
  MultilevelPartitioner partitioner(options);
  MultilevelPartitioner::Result a, b;
  ASSERT_TRUE(partitioner.Partition(csr, &a).ok());
  ASSERT_TRUE(partitioner.Partition(csr, &b).ok());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(PartitionerTest, SinglePartIsTrivial) {
  const auto edges = Generators::Rmat(128, 4.0, 1);
  const Csr csr = Csr::FromEdges(edges);
  MultilevelPartitioner::Options options;
  options.num_parts = 1;
  MultilevelPartitioner partitioner(options);
  MultilevelPartitioner::Result result;
  ASSERT_TRUE(partitioner.Partition(csr, &result).ok());
  EXPECT_EQ(result.edge_cut, 0u);
  EXPECT_DOUBLE_EQ(result.balance, 1.0);
}

TEST(PartitionerTest, EmptyGraph) {
  Csr csr;
  MultilevelPartitioner partitioner(MultilevelPartitioner::Options{});
  MultilevelPartitioner::Result result;
  ASSERT_TRUE(partitioner.Partition(csr, &result).ok());
  EXPECT_TRUE(result.assignment.empty());
}

}  // namespace
}  // namespace trinity::graph
