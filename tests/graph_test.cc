#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace trinity::graph {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

TEST(GraphTest, NodeRoundTrip) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  ASSERT_TRUE(graph.AddNode(1, Slice("Alice")).ok());
  EXPECT_TRUE(graph.HasNode(1));
  EXPECT_FALSE(graph.HasNode(2));
  std::string data;
  ASSERT_TRUE(graph.GetNodeData(1, &data).ok());
  EXPECT_EQ(data, "Alice");
}

TEST(GraphTest, DirectedEdgesWithInlinks) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  for (CellId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(graph.AddNode(id, Slice()).ok());
  }
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  ASSERT_TRUE(graph.AddEdge(1, 3).ok());
  ASSERT_TRUE(graph.AddEdge(2, 3).ok());
  std::vector<CellId> out;
  ASSERT_TRUE(graph.GetOutlinks(1, &out).ok());
  EXPECT_EQ(out, (std::vector<CellId>{2, 3}));
  std::vector<CellId> in;
  ASSERT_TRUE(graph.GetInlinks(3, &in).ok());
  std::sort(in.begin(), in.end());
  EXPECT_EQ(in, (std::vector<CellId>{1, 2}));
  std::size_t degree = 0;
  ASSERT_TRUE(graph.OutDegreeFrom(cloud->client_id(), 1, &degree).ok());
  EXPECT_EQ(degree, 2u);
}

TEST(GraphTest, UndirectedEdges) {
  auto cloud = NewCloud();
  Graph::Options options;
  options.directed = false;
  Graph graph(cloud.get(), options);
  ASSERT_TRUE(graph.AddNode(1, Slice()).ok());
  ASSERT_TRUE(graph.AddNode(2, Slice()).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  std::vector<CellId> links;
  ASSERT_TRUE(graph.GetOutlinks(1, &links).ok());
  EXPECT_EQ(links, (std::vector<CellId>{2}));
  ASSERT_TRUE(graph.GetOutlinks(2, &links).ok());
  EXPECT_EQ(links, (std::vector<CellId>{1}));
  ASSERT_TRUE(graph.GetInlinks(1, &links).ok());
  EXPECT_EQ(links, (std::vector<CellId>{2}));
}

TEST(GraphTest, InlinksOptional) {
  auto cloud = NewCloud();
  Graph::Options options;
  options.track_inlinks = false;
  Graph graph(cloud.get(), options);
  ASSERT_TRUE(graph.AddNode(1, Slice()).ok());
  ASSERT_TRUE(graph.AddNode(2, Slice()).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  std::vector<CellId> links;
  EXPECT_TRUE(graph.GetInlinks(2, &links).IsNotSupported());
  ASSERT_TRUE(graph.GetOutlinks(1, &links).ok());
  EXPECT_EQ(links.size(), 1u);
}

TEST(GraphTest, EncodeDecodeRoundTrip) {
  NodeImage node;
  node.id = 9;
  node.data = "payload";
  node.out = {1, 2, 3};
  node.in = {4, 5};
  const std::string blob = Graph::EncodeNode(node);
  NodeImage decoded;
  ASSERT_TRUE(Graph::DecodeNode(9, Slice(blob), &decoded).ok());
  EXPECT_EQ(decoded.id, 9u);
  EXPECT_EQ(decoded.data, "payload");
  EXPECT_EQ(decoded.out, node.out);
  EXPECT_EQ(decoded.in, node.in);
}

TEST(GraphTest, DecodeRejectsMalformed) {
  NodeImage decoded;
  EXPECT_TRUE(Graph::DecodeNode(1, Slice("xy"), &decoded).IsCorruption());
  EXPECT_TRUE(
      Graph::DecodeNode(1, Slice("0123456789abc"), &decoded).IsCorruption());
}

TEST(GraphTest, SetNodeDataPreservesAdjacency) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  ASSERT_TRUE(graph.AddNode(1, Slice("old")).ok());
  ASSERT_TRUE(graph.AddNode(2, Slice()).ok());
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  ASSERT_TRUE(graph.SetNodeData(1, Slice("new and different length")).ok());
  std::string data;
  ASSERT_TRUE(graph.GetNodeData(1, &data).ok());
  EXPECT_EQ(data, "new and different length");
  std::vector<CellId> out;
  ASSERT_TRUE(graph.GetOutlinks(1, &out).ok());
  EXPECT_EQ(out, (std::vector<CellId>{2}));
}

TEST(GraphTest, VisitLocalNodeZeroCopy) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  ASSERT_TRUE(graph.AddNode(1, Slice("abc")).ok());  // 3-byte data:
  ASSERT_TRUE(graph.AddNode(2, Slice()).ok());       // misaligned id array.
  ASSERT_TRUE(graph.AddEdge(1, 2).ok());
  const MachineId owner = graph.MachineOfNode(1);
  bool visited = false;
  ASSERT_TRUE(graph
                  .VisitLocalNode(owner, 1,
                                  [&](Slice data, const CellId*, std::size_t,
                                      const CellId* out, std::size_t n) {
                                    visited = true;
                                    EXPECT_EQ(data.ToString(), "abc");
                                    ASSERT_EQ(n, 1u);
                                    EXPECT_EQ(out[0], 2u);
                                  })
                  .ok());
  EXPECT_TRUE(visited);
  // Visiting from the wrong machine reports NotFound.
  const MachineId wrong = (owner + 1) % cloud->num_slaves();
  EXPECT_TRUE(graph.VisitLocalNode(wrong, 1, [](Slice, const CellId*,
                                                std::size_t, const CellId*,
                                                std::size_t) {})
                  .IsNotFound());
}

TEST(GraphTest, LocalNodesPartitionWholeGraph) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(graph.AddNode(id, Slice()).ok());
  }
  std::set<CellId> seen;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    for (CellId id : graph.LocalNodes(m)) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " seen twice";
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(graph.CountNodes(), 100u);
}

TEST(GeneratorsTest, RmatShape) {
  const auto edges = Generators::Rmat(1024, 8.0, 42);
  EXPECT_EQ(edges.num_nodes, 1024u);
  EXPECT_EQ(edges.edges.size(), 8192u);
  for (const auto& [src, dst] : edges.edges) {
    ASSERT_LT(src, 1024u);
    ASSERT_LT(dst, 1024u);
  }
  // R-MAT skew: some vertices get far more than the average degree.
  std::vector<int> degree(1024, 0);
  for (const auto& [src, dst] : edges.edges) {
    (void)dst;
    ++degree[src];
  }
  EXPECT_GT(*std::max_element(degree.begin(), degree.end()), 40);
}

TEST(GeneratorsTest, RmatDeterministic) {
  const auto a = Generators::Rmat(256, 4.0, 7);
  const auto b = Generators::Rmat(256, 4.0, 7);
  const auto c = Generators::Rmat(256, 4.0, 8);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(GeneratorsTest, AllGeneratorsDeterministicUnderSeed) {
  // Analytics snapshots are validated against naive recounts of the same
  // graph, so generator runs under one seed must agree edge-for-edge.
  const auto pl_a = Generators::PowerLaw(512, 6.0, 2.16, 21);
  const auto pl_b = Generators::PowerLaw(512, 6.0, 2.16, 21);
  EXPECT_EQ(pl_a.edges, pl_b.edges);
  EXPECT_NE(pl_a.edges, Generators::PowerLaw(512, 6.0, 2.16, 22).edges);

  const auto un_a = Generators::Uniform(512, 6.0, 21);
  EXPECT_EQ(un_a.edges, Generators::Uniform(512, 6.0, 21).edges);
  const auto co_a = Generators::Community(8, 64, 6.0, 2.0, 21);
  EXPECT_EQ(co_a.edges, Generators::Community(8, 64, 6.0, 2.0, 21).edges);
}

TEST(GeneratorsTest, DegreeDistributionsMatchShape) {
  // Skewed generators must produce heavy tails (hubs far above the mean);
  // the uniform generator must not. This is what the adaptive triangle
  // kernels key off, so the shapes are load-bearing for the benchmarks.
  const auto degrees = [](const Generators::EdgeList& list) {
    std::vector<int> d(list.num_nodes, 0);
    for (const auto& [src, dst] : list.edges) {
      ++d[src];
      ++d[dst];
    }
    std::sort(d.begin(), d.end(), std::greater<int>());
    return d;
  };
  const double avg_degree = 8.0;
  for (const bool powerlaw : {false, true}) {
    const auto list = powerlaw
                          ? Generators::PowerLaw(4096, avg_degree, 2.16, 5)
                          : Generators::Rmat(4096, avg_degree, 5);
    const std::vector<int> d = degrees(list);
    const double mean = 2.0 * list.edges.size() / list.num_nodes;
    EXPECT_GT(d[0], 8 * mean) << "powerlaw=" << powerlaw;
    // Top 1% of vertices carry a disproportionate share of the edges.
    std::uint64_t top = 0, total = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (i < d.size() / 100) top += d[i];
      total += d[i];
    }
    EXPECT_GT(top * 10, total) << "powerlaw=" << powerlaw;
  }
  const std::vector<int> uniform = degrees(Generators::Uniform(4096, 8.0, 5));
  const double mean = 2.0 * 8.0;
  EXPECT_LT(uniform[0], 4 * mean);
}

TEST(GeneratorsTest, PowerLawAverageDegree) {
  const auto edges = Generators::PowerLaw(2000, 13.0, 2.16, 11);
  const double avg =
      static_cast<double>(edges.edges.size()) / edges.num_nodes;
  EXPECT_GT(avg, 8.0);
  EXPECT_LT(avg, 20.0);
}

TEST(GeneratorsTest, PatentLikeIsAcyclicByConstruction) {
  const auto edges = Generators::PatentLike(500, 4.0, 3);
  for (const auto& [src, dst] : edges.edges) {
    ASSERT_LT(dst, src) << "citation must point backwards in time";
  }
}

TEST(GeneratorsTest, WordnetLikeIsConnectedRing) {
  const auto edges = Generators::WordnetLike(100, 5);
  // Ring lattice guarantees >= 2 out-edges per node.
  std::vector<int> degree(100, 0);
  for (const auto& [src, dst] : edges.edges) {
    (void)dst;
    ++degree[src];
  }
  for (int d : degree) EXPECT_GE(d, 2);
}

TEST(GeneratorsTest, NamePoolIncludesDavid) {
  bool found = false;
  for (CellId id = 0; id < 200 && !found; ++id) {
    found = Generators::NameFor(id, 1) == "David";
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(Generators::NameFor(5, 1), Generators::NameFor(5, 1));
}

TEST(GeneratorsTest, LoadMaterializesGraph) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  const auto edges = Generators::Rmat(512, 4.0, 9);
  ASSERT_TRUE(Generators::Load(&graph, edges, /*with_names=*/true, 1).ok());
  EXPECT_EQ(graph.CountNodes(), 512u);
  // Out-degrees must sum to the edge count.
  std::uint64_t total_out = 0;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    for (CellId v : graph.LocalNodes(m)) {
      graph.VisitLocalNode(m, v,
                           [&](Slice data, const CellId*, std::size_t,
                               const CellId*, std::size_t out_count) {
                             total_out += out_count;
                             EXPECT_FALSE(data.empty());  // Has a name.
                           });
    }
  }
  EXPECT_EQ(total_out, edges.edges.size());
}

TEST(GeneratorsTest, LoadTracksInlinksConsistently) {
  auto cloud = NewCloud();
  Graph graph(cloud.get());
  const auto edges = Generators::Uniform(256, 4.0, 13);
  ASSERT_TRUE(Generators::Load(&graph, edges, false, 0).ok());
  std::uint64_t total_in = 0, total_out = 0;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    for (CellId v : graph.LocalNodes(m)) {
      graph.VisitLocalNode(m, v,
                           [&](Slice, const CellId*, std::size_t in_count,
                               const CellId*, std::size_t out_count) {
                             total_in += in_count;
                             total_out += out_count;
                           });
    }
  }
  EXPECT_EQ(total_in, total_out);
  EXPECT_EQ(total_out, edges.edges.size());
}

}  // namespace
}  // namespace trinity::graph
