// Memory-hierarchy suite (docs/memory_hierarchy.md): the delta-varint
// adjacency codec, the trunk's transparent compressed storage, and the
// TFS-backed cold tier with clock eviction and fault-in. The chaos cases at
// the bottom derive their seeds from TRINITY_CHAOS_SEED_OFFSET exactly like
// tests/chaos_test.cc, so scripts/check.sh --chaos-sweep reruns them against
// disjoint fault schedules.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "storage/cell_codec.h"
#include "storage/cold_tier.h"
#include "storage/memory_trunk.h"
#include "tfs/tfs.h"

namespace trinity::storage {
namespace {

std::uint64_t SeedOffset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("TRINITY_CHAOS_SEED_OFFSET");
    return env == nullptr ? 0ULL : std::strtoull(env, nullptr, 10);
  }();
  return offset;
}

std::string FreshTfsRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/coldtier_" + tag + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

std::unique_ptr<tfs::Tfs> NewTfs(const std::string& tag) {
  tfs::Tfs::Options options;
  options.root = FreshTfsRoot(tag);
  std::unique_ptr<tfs::Tfs> tfs;
  EXPECT_TRUE(tfs::Tfs::Open(options, &tfs).ok());
  return tfs;
}

// A node cell whose id lists are sorted, i.e. codec-eligible.
std::string SortedNode(std::vector<CellId> in, std::vector<CellId> out,
                       std::string data = {}) {
  std::sort(in.begin(), in.end());
  std::sort(out.begin(), out.end());
  graph::NodeImage node;
  node.id = 0;
  node.data = std::move(data);
  node.in = std::move(in);
  node.out = std::move(out);
  return graph::Graph::EncodeNode(node);
}

// ------------------------------------------------------------ Codec units

TEST(CellCodecTest, VarintRoundTrip) {
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      ~static_cast<std::uint64_t>(0)};
  for (std::uint64_t v : values) {
    std::string buf;
    CellCodec::PutVarint(&buf, v);
    const char* p = buf.data();
    std::uint64_t got = 0;
    ASSERT_TRUE(CellCodec::GetVarint(&p, buf.data() + buf.size(), &got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(p, buf.data() + buf.size());
  }
}

TEST(CellCodecTest, VarintRejectsTruncationAndOverlong) {
  std::string buf;
  CellCodec::PutVarint(&buf, 300);
  const char* p = buf.data();
  std::uint64_t v = 0;
  // Truncated: continuation bit set but no next byte.
  EXPECT_FALSE(CellCodec::GetVarint(&p, buf.data() + 1, &v));
  EXPECT_EQ(p, buf.data());  // Not advanced on failure.
  // Overlong: ten 0x80 continuation bytes overflow u64.
  const std::string overlong(10, '\x80');
  p = overlong.data();
  EXPECT_FALSE(
      CellCodec::GetVarint(&p, overlong.data() + overlong.size(), &v));
}

TEST(CellCodecTest, EmptyListsRoundTrip) {
  // No neighbors at all: the 8-byte header still shrinks to four varints.
  const std::string raw = SortedNode({}, {});
  std::string enc;
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
  EXPECT_LT(enc.size(), raw.size());
  std::string dec;
  ASSERT_TRUE(CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
  EXPECT_EQ(dec, raw);
  // Empty id lists around a bulky data payload round-trip too.
  const std::string raw2 = SortedNode({}, {5, 5, 5, 5, 5, 5}, "payload");
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw2), &enc));
  ASSERT_TRUE(CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
  EXPECT_EQ(dec, raw2);
}

TEST(CellCodecTest, SingleIdRoundTrip) {
  const std::string raw = SortedNode({7}, {9});
  std::string enc;
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
  EXPECT_LT(enc.size(), raw.size());
  std::string dec;
  ASSERT_TRUE(CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
  EXPECT_EQ(dec, raw);
  std::uint64_t size = 0;
  ASSERT_TRUE(CellCodec::DecodedSize(Slice(enc), &size).ok());
  EXPECT_EQ(size, raw.size());
}

TEST(CellCodecTest, MaxGapU64RoundTrip) {
  // First id 0, second id u64 max: the gap needs the full 10-byte varint.
  const CellId top = ~static_cast<CellId>(0);
  const std::string raw = SortedNode({0, top}, {0, 1, 2, top - 1, top});
  std::string enc;
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
  std::string dec;
  ASSERT_TRUE(CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
  EXPECT_EQ(dec, raw);
}

TEST(CellCodecTest, DuplicateIdsAllowed) {
  // Parallel edges: non-decreasing, gap 0.
  const std::string raw = SortedNode({3, 3, 3}, {8, 8, 9, 9});
  std::string enc;
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
  std::string dec;
  ASSERT_TRUE(CellCodec::DecodeAdjacency(Slice(enc), &dec).ok());
  EXPECT_EQ(dec, raw);
}

TEST(CellCodecTest, UnsortedRejected) {
  graph::NodeImage node;
  node.id = 0;
  node.out = {9, 3, 7};  // Descending pair -> store raw.
  const std::string raw = graph::Graph::EncodeNode(node);
  std::string enc;
  EXPECT_FALSE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
}

TEST(CellCodecTest, NonNodePayloadRejected) {
  std::string enc;
  EXPECT_FALSE(CellCodec::EncodeAdjacency(Slice("not a node cell"), &enc));
  EXPECT_FALSE(CellCodec::EncodeAdjacency(Slice(), &enc));
  // Header promises more ids than the blob carries.
  std::string short_blob = SortedNode({1, 2, 3}, {});
  short_blob.resize(short_blob.size() - 8);
  EXPECT_FALSE(CellCodec::EncodeAdjacency(Slice(short_blob), &enc));
}

TEST(CellCodecTest, DecodeRejectsCorruptInput) {
  const std::string raw =
      SortedNode({1, 2, 3, 4}, {10, 20, 30, 40, 50, 60, 70});
  std::string enc;
  ASSERT_TRUE(CellCodec::EncodeAdjacency(Slice(raw), &enc));
  std::string dec;
  // Every truncation must fail cleanly, never read out of bounds.
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(CellCodec::DecodeAdjacency(Slice(enc.data(), len), &dec).ok())
        << "truncated to " << len;
  }
  EXPECT_TRUE(CellCodec::DecodeAdjacency(Slice(), &dec).IsCorruption());
}

// ----------------------------------------------- Compressed trunk storage

MemoryTrunk::Options CompressedTrunk() {
  MemoryTrunk::Options options;
  options.capacity = 1 << 20;
  options.compress_adjacency = true;
  return options;
}

std::unique_ptr<MemoryTrunk> NewTrunk(const MemoryTrunk::Options& options) {
  std::unique_ptr<MemoryTrunk> trunk;
  EXPECT_TRUE(MemoryTrunk::Create(options, &trunk).ok());
  return trunk;
}

TEST(CompressedTrunkTest, ReadsAreBitIdentical) {
  auto trunk = NewTrunk(CompressedTrunk());
  std::vector<std::string> raws;
  for (CellId id = 0; id < 64; ++id) {
    std::vector<CellId> in, out;
    for (CellId k = 0; k < 16; ++k) {
      in.push_back(id * 3 + k * 7);
      out.push_back(id + k * 11);
    }
    raws.push_back(SortedNode(in, out, "node"));
    ASSERT_TRUE(trunk->AddCell(id, Slice(raws.back())).ok());
  }
  const auto stats = trunk->stats();
  EXPECT_EQ(stats.compressed_cells, 64u);
  EXPECT_LT(stats.compressed_bytes, 64u * raws[0].size());
  for (CellId id = 0; id < 64; ++id) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok());
    EXPECT_EQ(out, raws[id]) << "cell " << id;
    std::uint64_t size = 0;
    ASSERT_TRUE(trunk->GetCellSize(id, &size).ok());
    EXPECT_EQ(size, raws[id].size());
    // Accessor path: compressed cells materialize into an owned buffer.
    MemoryTrunk::ConstAccessor acc;
    ASSERT_TRUE(trunk->Access(id, &acc).ok());
    ASSERT_TRUE(acc.valid());
    EXPECT_EQ(acc.data().ToString(), raws[id]);
  }
}

TEST(CompressedTrunkTest, NonCompressiblePayloadsStayRaw) {
  auto trunk = NewTrunk(CompressedTrunk());
  ASSERT_TRUE(trunk->AddCell(1, Slice("opaque blob, not a node")).ok());
  EXPECT_EQ(trunk->stats().compressed_cells, 0u);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "opaque blob, not a node");
}

TEST(CompressedTrunkTest, AppendAndWriteAtOnCompressedCell) {
  auto trunk = NewTrunk(CompressedTrunk());
  std::string raw = SortedNode({1, 2, 3, 4, 5, 6}, {10, 20, 30, 40, 50, 60});
  ASSERT_TRUE(trunk->AddCell(1, Slice(raw)).ok());
  ASSERT_EQ(trunk->stats().compressed_cells, 1u);
  // Append one more out-id (the graph layer's hot path).
  CellId extra = 70;
  char suffix[8];
  std::memcpy(suffix, &extra, 8);
  ASSERT_TRUE(trunk->AppendToCell(1, Slice(suffix, 8)).ok());
  raw += std::string(suffix, 8);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, raw);
  // Patch bytes mid-payload through the decoded view.
  ASSERT_TRUE(trunk->WriteAt(1, 8, Slice("\x2a", 1)).ok());
  raw[8] = '\x2a';
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, raw);
  // Defrag re-compresses the materialized cell when it still qualifies.
  trunk->Defragment();
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, raw);
}

TEST(CompressedTrunkTest, SerializeRoundTripsFormats) {
  auto trunk = NewTrunk(CompressedTrunk());
  const std::string adj =
      SortedNode({1, 2, 3, 4, 5, 6, 7, 8}, {2, 4, 6, 8, 10, 12, 14, 16});
  ASSERT_TRUE(trunk->AddCell(1, Slice(adj)).ok());
  ASSERT_TRUE(trunk->AddCell(2, Slice("plain raw payload")).ok());
  std::string image;
  ASSERT_TRUE(trunk->Serialize(&image).ok());
  std::unique_ptr<MemoryTrunk> copy;
  ASSERT_TRUE(
      MemoryTrunk::Deserialize(Slice(image), CompressedTrunk(), &copy).ok());
  EXPECT_EQ(copy->stats().compressed_cells, 1u);
  std::string out;
  ASSERT_TRUE(copy->GetCell(1, &out).ok());
  EXPECT_EQ(out, adj);
  ASSERT_TRUE(copy->GetCell(2, &out).ok());
  EXPECT_EQ(out, "plain raw payload");
}

// Acceptance: on a power-law graph, compressed adjacency cuts resident
// bytes by >= 30% while every read stays bit-identical to the raw config.
TEST(CompressedTrunkTest, PowerLawFootprintShrinksThirtyPercent) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 2;
  options.p_bits = 4;
  options.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> raw_cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &raw_cloud).ok());
  options.storage.trunk.compress_adjacency = true;
  std::unique_ptr<cloud::MemoryCloud> comp_cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &comp_cloud).ok());

  const auto edges = graph::Generators::PowerLaw(3000, 16.0, 2.2, 42);
  for (cloud::MemoryCloud* c : {raw_cloud.get(), comp_cloud.get()}) {
    graph::Graph g(c, graph::Graph::Options{});
    ASSERT_TRUE(graph::Generators::Load(&g, edges, /*with_names=*/false,
                                        /*seed=*/42,
                                        /*sort_adjacency=*/true)
                    .ok());
  }
  const auto raw_stats = raw_cloud->AggregateTrunkStats();
  const auto comp_stats = comp_cloud->AggregateTrunkStats();
  ASSERT_GT(raw_stats.resident_bytes, 0u);
  EXPECT_GT(comp_stats.compressed_cells, 0u);
  EXPECT_LE(static_cast<double>(comp_stats.resident_bytes),
            0.7 * static_cast<double>(raw_stats.resident_bytes))
      << "compressed resident " << comp_stats.resident_bytes << " vs raw "
      << raw_stats.resident_bytes;
  for (CellId id = 0; id < 3000; ++id) {
    std::string raw_cell, comp_cell;
    ASSERT_TRUE(raw_cloud->GetCell(id, &raw_cell).ok()) << "cell " << id;
    ASSERT_TRUE(comp_cloud->GetCell(id, &comp_cell).ok()) << "cell " << id;
    ASSERT_EQ(comp_cell, raw_cell) << "cell " << id;
  }
}

// --------------------------------------------------- Cold tier spill/fault

MemoryTrunk::Options BudgetedTrunk(tfs::Tfs* tfs,
                                   std::uint64_t budget = 64 << 10) {
  MemoryTrunk::Options options;
  options.capacity = 1 << 20;
  options.memory_budget = budget;
  options.cold_tfs = tfs;
  options.cold_page_bytes = 8 << 10;
  return options;
}

std::string Payload(CellId id, std::size_t n = 1024) {
  return std::string(n, static_cast<char>('a' + id % 26));
}

TEST(ColdTierTest, BudgetRequiresColdTfs) {
  MemoryTrunk::Options options;
  options.memory_budget = 1 << 20;
  std::unique_ptr<MemoryTrunk> trunk;
  EXPECT_TRUE(MemoryTrunk::Create(options, &trunk).IsInvalidArgument());
}

TEST(ColdTierTest, SpillsOverBudgetAndFaultsBack) {
  auto tfs = NewTfs("spill");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  const int kCells = 200;  // ~200 KB of payload against a 64 KB budget.
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  auto stats = trunk->stats();
  EXPECT_GT(stats.cells_evicted, 0u);
  EXPECT_GT(stats.spilled_cells, 0u);
  EXPECT_GT(stats.cold_bytes_written, 0u);
  EXPECT_LE(stats.used_bytes, 64u << 10);
  EXPECT_EQ(stats.live_cells, static_cast<std::uint64_t>(kCells));
  EXPECT_GT(tfs->bytes_written(), 0u);

  // Every cell — resident or spilled — must read back exactly; reads of
  // spilled cells fault them in.
  for (CellId id = 0; id < kCells; ++id) {
    EXPECT_TRUE(trunk->Contains(id));
    std::uint64_t size = 0;
    ASSERT_TRUE(trunk->GetCellSize(id, &size).ok());
    EXPECT_EQ(size, 1024u);
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, Payload(id)) << "cell " << id;
  }
  stats = trunk->stats();
  EXPECT_GT(stats.cells_faulted, 0u);
  EXPECT_GT(stats.cold_bytes_read, 0u);
  EXPECT_GT(tfs->bytes_read(), 0u);
  EXPECT_EQ(trunk->CellIds().size(), static_cast<std::size_t>(kCells));
}

TEST(ColdTierTest, GetCellSizeNeverFaults) {
  auto tfs = NewTfs("sizes");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_GT(trunk->stats().spilled_cells, 0u);
  const std::uint64_t faults_before = trunk->stats().cells_faulted;
  for (CellId id = 0; id < 200; ++id) {
    std::uint64_t size = 0;
    ASSERT_TRUE(trunk->GetCellSize(id, &size).ok());
    EXPECT_EQ(size, 1024u);
  }
  EXPECT_EQ(trunk->stats().cells_faulted, faults_before);
}

TEST(ColdTierTest, MutationsOnSpilledCells) {
  auto tfs = NewTfs("mutate");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_GT(trunk->stats().spilled_cells, 0u);
  // The clock spills from the tail, so the earliest ids are cold.
  ASSERT_TRUE(trunk->AddCell(0, Slice("dup")).IsAlreadyExists());
  ASSERT_TRUE(trunk->PutCell(1, Slice("overwrite")).ok());
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "overwrite");
  ASSERT_TRUE(trunk->AppendToCell(2, Slice("+tail")).ok());
  ASSERT_TRUE(trunk->GetCell(2, &out).ok());
  EXPECT_EQ(out, Payload(2) + "+tail");
  ASSERT_TRUE(trunk->WriteAt(3, 0, Slice("XYZ")).ok());
  ASSERT_TRUE(trunk->GetCell(3, &out).ok());
  EXPECT_EQ(out, "XYZ" + Payload(3).substr(3));
  ASSERT_TRUE(trunk->RemoveCell(4).ok());
  EXPECT_FALSE(trunk->Contains(4));
  EXPECT_TRUE(trunk->GetCell(4, &out).IsNotFound());
  EXPECT_TRUE(trunk->RemoveCell(4).IsNotFound());
}

TEST(ColdTierTest, SecondChanceKeepsHotCellsResident) {
  auto tfs = NewTfs("clock");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 40; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  // Keep touching a working set sitting at the *tail* of the ring — first
  // in line for the clock hand — while pushing past the budget. Each sweep
  // clears the second-chance bits it honors, so a genuinely hot set is one
  // that is re-read between sweeps.
  std::string out;
  for (CellId id = 40; id < 200; ++id) {
    for (CellId hot = 0; hot < 8; ++hot) {
      ASSERT_TRUE(trunk->GetCell(hot, &out).ok());
    }
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_GT(trunk->stats().spilled_cells, 0u);
  // The touched cells had the second-chance bit, so re-reading them must
  // not fault (they were skipped, not spilled).
  const std::uint64_t faults_before = trunk->stats().cells_faulted;
  for (CellId id = 0; id < 8; ++id) {
    ASSERT_TRUE(trunk->GetCell(id, &out).ok());
    EXPECT_EQ(out, Payload(id));
  }
  EXPECT_EQ(trunk->stats().cells_faulted, faults_before)
      << "hot cells were evicted despite their ref bits";
}

TEST(ColdTierTest, PinnedCellsAreNeverEvicted) {
  auto tfs = NewTfs("pinned");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  ASSERT_TRUE(trunk->AddCell(0, Slice(Payload(0))).ok());
  {
    MemoryTrunk::ConstAccessor acc;
    ASSERT_TRUE(trunk->Access(0, &acc).ok());
    const char* pinned_data = acc.data().data();
    for (CellId id = 1; id < 200; ++id) {
      ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
    }
    ASSERT_GT(trunk->stats().spilled_cells, 0u);
    // The accessor's view must still be the original mapping and bytes.
    EXPECT_EQ(acc.data().data(), pinned_data);
    EXPECT_EQ(acc.data().ToString(), Payload(0));
  }
  std::string out;
  ASSERT_TRUE(trunk->GetCell(0, &out).ok());
  EXPECT_EQ(out, Payload(0));
}

TEST(ColdTierTest, CompressedCellsSpillInStoredForm) {
  auto tfs = NewTfs("compspill");
  auto options = BudgetedTrunk(tfs.get(), 8 << 10);
  options.compress_adjacency = true;
  auto trunk = NewTrunk(options);
  std::vector<std::string> raws;
  for (CellId id = 0; id < 200; ++id) {
    std::vector<CellId> out;
    for (CellId k = 0; k < 64; ++k) out.push_back(id + k * 3);
    raws.push_back(SortedNode({}, out));
    ASSERT_TRUE(trunk->AddCell(id, Slice(raws.back())).ok());
  }
  const auto stats = trunk->stats();
  ASSERT_GT(stats.spilled_cells, 0u);
  // Spilled bytes are stored (compressed) bytes, well under the raw sizes.
  EXPECT_LT(stats.spilled_bytes, stats.spilled_cells * raws[0].size());
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok());
    ASSERT_EQ(out, raws[id]) << "cell " << id;
  }
}

TEST(ColdTierTest, SerializedImageIsSelfContained) {
  auto tfs = NewTfs("image");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_GT(trunk->stats().spilled_cells, 0u);
  std::string image;
  ASSERT_TRUE(trunk->Serialize(&image).ok());
  // The image must load into a trunk with NO cold tier at all: spilled
  // cells were folded back in.
  MemoryTrunk::Options plain;
  plain.capacity = 1 << 20;
  std::unique_ptr<MemoryTrunk> copy;
  ASSERT_TRUE(MemoryTrunk::Deserialize(Slice(image), plain, &copy).ok());
  EXPECT_EQ(copy->cell_count(), 200u);
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(copy->GetCell(id, &out).ok()) << "cell " << id;
    ASSERT_EQ(out, Payload(id));
  }
}

// ------------------------------------------- Failure windows (abort safety)

TEST(ColdTierTest, FailedSpillKeepsVictimsResident) {
  auto tfs = NewTfs("spillfail");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 40; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_EQ(trunk->stats().spilled_cells, 0u);
  // Kill every datanode: page writes now fail, so eviction must abort and
  // leave all victims resident and readable (crash-mid-eviction safety).
  for (int d = 0; d < tfs->num_datanodes(); ++d) {
    ASSERT_TRUE(tfs->KillDatanode(d).ok());
  }
  for (CellId id = 40; id < 200; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  auto stats = trunk->stats();
  EXPECT_EQ(stats.spilled_cells, 0u);
  EXPECT_EQ(stats.live_cells, 200u);
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok()) << "cell " << id;
    ASSERT_EQ(out, Payload(id));
  }
  // Storage heals: once the datanodes return, the next pass spills.
  for (int d = 0; d < tfs->num_datanodes(); ++d) {
    ASSERT_TRUE(tfs->ReviveDatanode(d).ok());
  }
  trunk->Defragment();
  EXPECT_GT(trunk->stats().spilled_cells, 0u);
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok()) << "cell " << id;
    ASSERT_EQ(out, Payload(id));
  }
}

TEST(ColdTierTest, FailedFaultInLosesNothing) {
  auto tfs = NewTfs("faultfail");
  auto trunk = NewTrunk(BudgetedTrunk(tfs.get()));
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(Payload(id))).ok());
  }
  ASSERT_GT(trunk->stats().spilled_cells, 0u);
  // With the cold store down, reads of resident cells still succeed but a
  // spilled cell's fault-in fails — and must NOT surface as NotFound or
  // drop the cell.
  for (int d = 0; d < tfs->num_datanodes(); ++d) {
    ASSERT_TRUE(tfs->KillDatanode(d).ok());
  }
  CellId spilled = kInvalidCell;
  std::string out;
  for (CellId id = 0; id < 200; ++id) {
    const Status s = trunk->GetCell(id, &out);
    if (s.ok()) continue;  // Resident.
    ASSERT_FALSE(s.IsNotFound()) << "cell " << id << " reported missing";
    spilled = id;
    break;
  }
  ASSERT_NE(spilled, kInvalidCell) << "no read hit the cold tier";
  EXPECT_TRUE(trunk->Contains(spilled));
  for (int d = 0; d < tfs->num_datanodes(); ++d) {
    ASSERT_TRUE(tfs->ReviveDatanode(d).ok());
  }
  ASSERT_TRUE(trunk->GetCell(spilled, &out).ok());
  EXPECT_EQ(out, Payload(spilled));
}

// --------------------------------------------------- Chaos (seed-swept)

// Out-of-core cloud under crash/recovery churn: a budgeted, compressed
// cluster must preserve exactly the reference map's cells across machine
// crashes that interleave with evictions and fault-ins (ISSUE 10: a crash
// mid-eviction or mid-fault-in loses no cells).
class ColdTierChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColdTierChaosTest, ChurnConservesCellsAcrossCrashes) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("seed " + std::to_string(seed));
  auto tfs = NewTfs("chaos_" + std::to_string(seed));
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 1 << 20;
  options.storage.trunk.compress_adjacency = true;
  options.storage.trunk.memory_budget = 8 << 10;
  options.storage.trunk.cold_page_bytes = 4 << 10;
  options.tfs = tfs.get();
  options.buffered_logging = true;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());

  Random rng(seed);
  std::map<CellId, std::string> reference;
  ASSERT_TRUE(cloud->SaveSnapshot().ok());
  // Mix of bulky raw payloads (fill the budget fast) and sorted adjacency
  // cells (exercise the compressed spill path).
  auto random_payload = [&](CellId id) {
    if (rng.Bernoulli(0.5)) {
      return std::string(1000 + rng.Uniform(3000),
                         static_cast<char>('a' + id % 26));
    }
    std::vector<CellId> out;
    const std::uint64_t degree = 8 + rng.Uniform(120);
    for (std::uint64_t k = 0; k < degree; ++k) out.push_back(rng.Uniform(4096));
    return SortedNode({}, out);
  };
  int crashes = 0;
  for (int op = 0; op < 1200; ++op) {
    const CellId id = rng.Uniform(192);
    switch (rng.Uniform(6)) {
      case 0: {
        const std::string payload = random_payload(id);
        if (cloud->AddCell(id, Slice(payload)).ok()) {
          ASSERT_EQ(reference.count(id), 0u);
          reference[id] = payload;
        } else {
          ASSERT_EQ(reference.count(id), 1u);
        }
        break;
      }
      case 1: {
        const std::string payload = random_payload(id);
        ASSERT_TRUE(cloud->PutCell(id, Slice(payload)).ok());
        reference[id] = payload;
        break;
      }
      case 2: {
        const Status s = cloud->RemoveCell(id);
        ASSERT_EQ(s.ok(), reference.erase(id) > 0);
        break;
      }
      case 3: {
        const std::string suffix(1 + rng.Uniform(16), 'z');
        const Status s = cloud->AppendToCell(id, Slice(suffix));
        auto it = reference.find(id);
        if (it == reference.end()) {
          ASSERT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          it->second += suffix;
        }
        break;
      }
      case 4: {
        std::string out;
        const Status s = cloud->GetCell(id, &out);
        auto it = reference.find(id);
        if (it == reference.end()) {
          ASSERT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          ASSERT_EQ(out, it->second)
              << "cell " << id << " after " << crashes << " crashes";
        }
        break;
      }
      case 5: {
        if (op % 89 != 0) break;
        if (rng.Bernoulli(0.5)) {
          ASSERT_TRUE(cloud->SaveSnapshot().ok());
        }
        const MachineId victim = static_cast<MachineId>(rng.Uniform(4));
        ASSERT_TRUE(cloud->FailMachine(victim).ok());
        ASSERT_TRUE(cloud->RecoverMachine(victim).ok());
        ASSERT_TRUE(cloud->RestartMachine(victim).ok());
        ++crashes;
        break;
      }
    }
  }
  ASSERT_GT(crashes, 0);
  // The churn must actually have exercised the hierarchy.
  const auto stats = cloud->AggregateTrunkStats();
  EXPECT_GT(stats.cells_evicted, 0u) << "budget never triggered eviction";
  // Conservation audit vs the fault-free model: nothing lost, no ghosts.
  for (const auto& [id, expected] : reference) {
    std::string out;
    ASSERT_TRUE(cloud->GetCell(id, &out).ok()) << "cell " << id;
    ASSERT_EQ(out, expected) << "cell " << id;
  }
  for (CellId id = 0; id < 192; ++id) {
    if (reference.count(id) == 0) {
      bool exists = false;
      ASSERT_TRUE(cloud->Contains(id, &exists).ok());
      ASSERT_FALSE(exists) << "ghost cell " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColdTierChaosTest,
                         ::testing::Values(11, 23, 35));

}  // namespace
}  // namespace trinity::storage
