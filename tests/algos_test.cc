#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <queue>

#include "common/random.h"

#include "algos/bfs.h"
#include "algos/graph_stats.h"
#include "algos/landmark.h"
#include "algos/pagerank.h"
#include "algos/people_search.h"
#include "algos/sssp.h"
#include "algos/subgraph_match.h"
#include "algos/wcc.h"
#include "graph/generators.h"

namespace trinity::algos {
namespace {

struct Fixture {
  std::unique_ptr<cloud::MemoryCloud> cloud;
  std::unique_ptr<graph::Graph> graph;
};

Fixture NewGraph(int slaves = 4) {
  Fixture f;
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 8 << 20;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &f.cloud).ok());
  f.graph = std::make_unique<graph::Graph>(f.cloud.get());
  return f;
}

TEST(PageRankTest, RanksSumToOne) {
  Fixture f = NewGraph();
  ASSERT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 6.0, 4).ok());
  PageRankOptions options;
  options.iterations = 8;
  PageRankResult result;
  ASSERT_TRUE(RunPageRank(f.graph.get(), options, &result).ok());
  ASSERT_EQ(result.ranks.size(), 256u);
  double sum = 0;
  for (const auto& [v, rank] : result.ranks) {
    EXPECT_GE(rank, 0.0);
    sum += rank;
  }
  // Dangling-vertex rank leaks, so the sum is <= 1 but substantial.
  EXPECT_GT(sum, 0.4);
  EXPECT_LE(sum, 1.0 + 1e-6);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
}

TEST(PageRankTest, CycleIsUniform) {
  Fixture f = NewGraph();
  const std::uint64_t n = 10;
  for (CellId v = 0; v < n; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 0; v < n; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(v, (v + 1) % n).ok());
  }
  PageRankOptions options;
  options.iterations = 30;
  PageRankResult result;
  ASSERT_TRUE(RunPageRank(f.graph.get(), options, &result).ok());
  for (const auto& [v, rank] : result.ranks) {
    EXPECT_NEAR(rank, 1.0 / n, 1e-6) << "vertex " << v;
  }
}

TEST(PageRankTest, StarCenterDominates) {
  Fixture f = NewGraph();
  const std::uint64_t n = 20;
  for (CellId v = 0; v < n; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 1; v < n; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(v, 0).ok());  // Everyone points at 0.
  }
  PageRankOptions options;
  options.iterations = 10;
  PageRankResult result;
  ASSERT_TRUE(RunPageRank(f.graph.get(), options, &result).ok());
  for (CellId v = 1; v < n; ++v) {
    EXPECT_GT(result.ranks[0], result.ranks[v] * 5);
  }
}

TEST(BfsTest, DistancesOnChain) {
  Fixture f = NewGraph();
  for (CellId v = 0; v < 6; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 0; v + 1 < 6; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(v, v + 1).ok());
  }
  BfsResult result;
  ASSERT_TRUE(
      RunBfs(f.graph.get(), 0, compute::TraversalEngine::Options{}, &result)
          .ok());
  EXPECT_EQ(result.reached, 6u);
  for (CellId v = 0; v < 6; ++v) {
    EXPECT_EQ(result.distances[v], v);
  }
}

TEST(SsspTest, MatchesDijkstraReference) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(200, 5.0, 31);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SsspOptions options;
  options.weight_range = 8;
  SsspResult result;
  ASSERT_TRUE(RunSssp(f.graph.get(), 0, options, &result).ok());

  // Dijkstra reference with identical derived weights.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<CellId>> adjacency(edges.num_nodes);
  for (const auto& [s, d] : edges.edges) adjacency[s].push_back(d);
  std::vector<double> dist(edges.num_nodes, kInf);
  using Entry = std::pair<double, CellId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[0] = 0;
  heap.push({0, 0});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (CellId u : adjacency[v]) {
      const double next = d + SsspEdgeWeight(v, u, options.weight_range);
      if (next < dist[u]) {
        dist[u] = next;
        heap.push({next, u});
      }
    }
  }
  for (CellId v = 0; v < edges.num_nodes; ++v) {
    if (dist[v] == kInf) {
      EXPECT_EQ(result.distances.count(v), 0u);
    } else {
      ASSERT_TRUE(result.distances.count(v)) << "vertex " << v;
      EXPECT_NEAR(result.distances[v], dist[v], 1e-9);
    }
  }
  EXPECT_GT(result.stats.updates, 0u);
}

TEST(DeltaPageRankTest, ReachesTheBspFixedPoint) {
  // The delta formulation's fixed point r(v) = (1-d)/n + d*sum r(u)/outdeg(u)
  // is the same one power iteration converges to — run both to convergence
  // and compare vertex by vertex.
  Fixture bsp_f = NewGraph();
  ASSERT_TRUE(
      graph::Generators::LoadRmat(bsp_f.graph.get(), 256, 6.0, 4).ok());
  PageRankOptions bsp_options;
  bsp_options.iterations = 200;
  bsp_options.convergence_epsilon = 1e-10;
  PageRankResult bsp;
  ASSERT_TRUE(RunPageRank(bsp_f.graph.get(), bsp_options, &bsp).ok());

  for (compute::SchedulerMode mode :
       {compute::SchedulerMode::kFifo, compute::SchedulerMode::kPriority,
        compute::SchedulerMode::kSweep}) {
    Fixture f = NewGraph();
    ASSERT_TRUE(graph::Generators::LoadRmat(f.graph.get(), 256, 6.0, 4).ok());
    DeltaPageRankOptions options;
    options.epsilon = 1e-12;
    options.async.scheduler = mode;
    DeltaPageRankResult delta;
    ASSERT_TRUE(RunDeltaPageRank(f.graph.get(), options, &delta).ok());
    ASSERT_EQ(delta.ranks.size(), bsp.ranks.size());
    for (const auto& [vertex, rank] : bsp.ranks) {
      auto it = delta.ranks.find(vertex);
      ASSERT_NE(it, delta.ranks.end()) << "vertex " << vertex;
      EXPECT_NEAR(it->second, rank, 1e-6)
          << "vertex " << vertex << " mode " << static_cast<int>(mode);
    }
    EXPECT_GT(delta.stats.coalesced_updates, 0u);
    EXPECT_GT(delta.stats.epsilon_dropped, 0u);
    if (mode == compute::SchedulerMode::kPriority) {
      EXPECT_GT(delta.stats.heap_ops, 0u);
    }
  }
}

TEST(SsspTest, DeltaSchedulingMatchesClassic) {
  auto run = [](bool delta, compute::SchedulerMode mode) {
    Fixture f = NewGraph();
    const auto edges = graph::Generators::Uniform(200, 5.0, 31);
    EXPECT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
    SsspOptions options;
    options.weight_range = 8;
    options.delta_scheduling = delta;
    options.async.scheduler = mode;
    SsspResult result;
    EXPECT_TRUE(RunSssp(f.graph.get(), 0, options, &result).ok());
    return result;
  };
  const SsspResult classic = run(false, compute::SchedulerMode::kFifo);
  for (compute::SchedulerMode mode :
       {compute::SchedulerMode::kFifo, compute::SchedulerMode::kPriority,
        compute::SchedulerMode::kSweep}) {
    const SsspResult delta = run(true, mode);
    ASSERT_EQ(delta.distances.size(), classic.distances.size())
        << "mode " << static_cast<int>(mode);
    for (const auto& [vertex, distance] : classic.distances) {
      auto it = delta.distances.find(vertex);
      ASSERT_NE(it, delta.distances.end()) << "vertex " << vertex;
      // Weights are small integers, so equal shortest distances are exact.
      EXPECT_EQ(it->second, distance)
          << "vertex " << vertex << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(WccTest, FindsComponents) {
  Fixture f = NewGraph();
  // Two components: {0,1,2} chained, {10,11} chained, {20} isolated.
  for (CellId v : {0, 1, 2, 10, 11, 20}) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  ASSERT_TRUE(f.graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(f.graph->AddEdge(2, 1).ok());  // Direction doesn't matter.
  ASSERT_TRUE(f.graph->AddEdge(10, 11).ok());
  WccResult result;
  ASSERT_TRUE(RunWcc(f.graph.get(), WccOptions{}, &result).ok());
  EXPECT_EQ(result.num_components, 3u);
  EXPECT_EQ(result.component[0], 0u);
  EXPECT_EQ(result.component[1], 0u);
  EXPECT_EQ(result.component[2], 0u);
  EXPECT_EQ(result.component[10], 10u);
  EXPECT_EQ(result.component[11], 10u);
  EXPECT_EQ(result.component[20], 20u);
}

TEST(PeopleSearchTest, FindsDavidWithinHops) {
  Fixture f = NewGraph();
  // user(0) - 1 - 2(David) ; user - 3(David) ; far David at 4 hops.
  ASSERT_TRUE(f.graph->AddNode(0, Slice("Alice")).ok());
  ASSERT_TRUE(f.graph->AddNode(1, Slice("Bob")).ok());
  ASSERT_TRUE(f.graph->AddNode(2, Slice("David")).ok());
  ASSERT_TRUE(f.graph->AddNode(3, Slice("David")).ok());
  ASSERT_TRUE(f.graph->AddNode(4, Slice("Carol")).ok());
  ASSERT_TRUE(f.graph->AddNode(5, Slice("Erin")).ok());
  ASSERT_TRUE(f.graph->AddNode(6, Slice("David")).ok());
  ASSERT_TRUE(f.graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(f.graph->AddEdge(1, 2).ok());
  ASSERT_TRUE(f.graph->AddEdge(0, 3).ok());
  ASSERT_TRUE(f.graph->AddEdge(0, 4).ok());
  ASSERT_TRUE(f.graph->AddEdge(4, 5).ok());
  ASSERT_TRUE(f.graph->AddEdge(5, 6).ok());  // David at depth 3.
  PeopleSearchOptions options;
  options.max_hops = 3;
  PeopleSearchResult result;
  ASSERT_TRUE(
      RunPeopleSearch(f.graph.get(), 0, "David", options, &result).ok());
  ASSERT_EQ(result.matches.size(), 3u);
  std::map<CellId, int> by_id;
  for (const auto& match : result.matches) by_id[match.person] = match.hops;
  EXPECT_EQ(by_id[3], 1);
  EXPECT_EQ(by_id[2], 2);
  EXPECT_EQ(by_id[6], 3);
  // With 2 hops, the depth-3 David is out of range.
  options.max_hops = 2;
  ASSERT_TRUE(
      RunPeopleSearch(f.graph.get(), 0, "David", options, &result).ok());
  EXPECT_EQ(result.matches.size(), 2u);
}

TEST(PeopleSearchTest, SelfIsNotAMatch) {
  Fixture f = NewGraph();
  ASSERT_TRUE(f.graph->AddNode(0, Slice("David")).ok());
  ASSERT_TRUE(f.graph->AddNode(1, Slice("David")).ok());
  ASSERT_TRUE(f.graph->AddEdge(0, 1).ok());
  PeopleSearchOptions options;
  PeopleSearchResult result;
  ASSERT_TRUE(
      RunPeopleSearch(f.graph.get(), 0, "David", options, &result).ok());
  ASSERT_EQ(result.matches.size(), 1u);  // Depth 0 excluded.
  EXPECT_EQ(result.matches[0].person, 1u);
}

TEST(PeopleSearchTest, WorksOnGeneratedSocialGraph) {
  Fixture f = NewGraph(8);
  const auto edges = graph::Generators::PowerLaw(3000, 10.0, 2.16, 9);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, true, 9).ok());
  PeopleSearchOptions options;
  options.max_hops = 3;
  PeopleSearchResult result;
  ASSERT_TRUE(
      RunPeopleSearch(f.graph.get(), 1, "David", options, &result).ok());
  // With a 32-name pool, a 3-hop ball almost surely holds a David.
  EXPECT_GT(result.matches.size(), 0u);
  for (const auto& match : result.matches) {
    EXPECT_EQ(match.name, "David");
    EXPECT_GE(match.hops, 1);
    EXPECT_LE(match.hops, 3);
  }
  EXPECT_GT(result.stats.modeled_millis, 0.0);
}

TEST(SubgraphMatchTest, TrianglePatternOnKnownGraph) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(300, 8.0, 15);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SubgraphMatcher::Options options;
  options.num_labels = 4;  // Coarse labels so matches exist.
  SubgraphMatcher matcher(f.graph.get(), options);
  // Generated queries are embedded by construction.
  SubgraphMatcher::Pattern pattern;
  ASSERT_TRUE(matcher.GenerateDfsQuery(4, 123, &pattern).ok());
  SubgraphMatcher::Result result;
  ASSERT_TRUE(matcher.Match(pattern, &result).ok());
  EXPECT_GT(result.embeddings, 0u);
  EXPECT_GT(result.modeled_millis, 0.0);
}

TEST(SubgraphMatchTest, RandomQueryHasEmbedding) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(300, 8.0, 16);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SubgraphMatcher::Options options;
  options.num_labels = 4;
  SubgraphMatcher matcher(f.graph.get(), options);
  SubgraphMatcher::Pattern pattern;
  ASSERT_TRUE(matcher.GenerateRandomQuery(5, 77, &pattern).ok());
  ASSERT_EQ(pattern.nodes.size(), 5u);
  for (std::size_t i = 1; i < pattern.nodes.size(); ++i) {
    EXPECT_FALSE(pattern.nodes[i].edges_to_earlier.empty());
  }
  SubgraphMatcher::Result result;
  ASSERT_TRUE(matcher.Match(pattern, &result).ok());
  EXPECT_GT(result.embeddings, 0u);
}

TEST(SubgraphMatchTest, ImpossiblePatternFindsNothing) {
  Fixture f = NewGraph();
  // Only a single directed chain: no triangles exist.
  for (CellId v = 0; v < 10; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 0; v + 1 < 10; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(v, v + 1).ok());
  }
  SubgraphMatcher::Options options;
  options.num_labels = 1;  // Labels always match; structure must decide.
  SubgraphMatcher matcher(f.graph.get(), options);
  SubgraphMatcher::Pattern triangle;
  triangle.nodes.resize(3);
  triangle.nodes[0].label = 0;
  triangle.nodes[1].label = 0;
  triangle.nodes[1].edges_to_earlier = {0};
  triangle.nodes[2].label = 0;
  triangle.nodes[2].edges_to_earlier = {0, 1};
  SubgraphMatcher::Result result;
  ASSERT_TRUE(matcher.Match(triangle, &result).ok());
  EXPECT_EQ(result.embeddings, 0u);
}

TEST(SubgraphMatchTest, ResultCapTruncates) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(200, 10.0, 17);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SubgraphMatcher::Options options;
  options.num_labels = 1;
  options.max_results = 5;
  SubgraphMatcher matcher(f.graph.get(), options);
  SubgraphMatcher::Pattern pattern;
  pattern.nodes.resize(2);
  pattern.nodes[1].edges_to_earlier = {0};
  SubgraphMatcher::Result result;
  ASSERT_TRUE(matcher.Match(pattern, &result).ok());
  EXPECT_EQ(result.embeddings, 5u);
  EXPECT_TRUE(result.truncated);
}

TEST(SubgraphMatchTest, OptimizedOrderExploresFewerPartials) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::PowerLaw(2000, 10.0, 2.16, 29);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SubgraphMatcher::Options options;
  options.num_labels = 8;
  options.max_results = 1ull << 40;  // Exhaustive: compare total work.
  options.max_partials = 500000;
  options.round_budget = 1ull << 40;
  SubgraphMatcher matcher(f.graph.get(), options);
  SubgraphMatcher::Pattern pattern;
  ASSERT_TRUE(matcher.GenerateDfsQuery(5, 888, &pattern).ok());
  SubgraphMatcher::Pattern optimized;
  ASSERT_TRUE(matcher.OptimizeMatchOrder(pattern, &optimized).ok());
  ASSERT_EQ(optimized.nodes.size(), pattern.nodes.size());
  for (std::size_t i = 1; i < optimized.nodes.size(); ++i) {
    ASSERT_FALSE(optimized.nodes[i].edges_to_earlier.empty());
  }
  SubgraphMatcher::Result baseline, improved;
  ASSERT_TRUE(matcher.Match(pattern, &baseline).ok());
  ASSERT_TRUE(matcher.Match(optimized, &improved).ok());
  // Exhaustive searches agree on the embedding count (order changes which
  // permutation is enumerated first, not what exists).
  if (!baseline.truncated && !improved.truncated) {
    EXPECT_EQ(improved.embeddings, baseline.embeddings);
  }
  // The selective order should not explore more partials.
  EXPECT_LE(improved.partials_expanded, baseline.partials_expanded);
}

TEST(SubgraphMatchTest, LabelFrequenciesCoverGraph) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(500, 4.0, 61);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  SubgraphMatcher::Options options;
  options.num_labels = 8;
  SubgraphMatcher matcher(f.graph.get(), options);
  const auto& freq = matcher.LabelFrequencies();
  ASSERT_EQ(freq.size(), 8u);
  std::uint64_t total = 0;
  for (std::uint64_t c : freq) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(GraphStatsTest, HistogramAndMoments) {
  Fixture f = NewGraph();
  // Star: center has out-degree 9, the rest 0.
  for (CellId v = 0; v < 10; ++v) {
    ASSERT_TRUE(f.graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 1; v < 10; ++v) {
    ASSERT_TRUE(f.graph->AddEdge(0, v).ok());
  }
  GraphStats stats;
  ASSERT_TRUE(
      ComputeGraphStats(f.graph.get(), 0, net::CostModel{}, &stats).ok());
  EXPECT_EQ(stats.num_nodes, 10u);
  EXPECT_EQ(stats.num_edges, 9u);
  EXPECT_EQ(stats.max_out_degree, 9u);
  EXPECT_NEAR(stats.avg_out_degree, 0.9, 1e-9);
  EXPECT_EQ(stats.degree_histogram[0], 9u);
  EXPECT_EQ(stats.degree_histogram[9], 1u);
}

TEST(GraphStatsTest, RecoversPowerLawExponent) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::PowerLaw(20000, 13.0, 2.16, 3);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  GraphStats stats;
  ASSERT_TRUE(
      ComputeGraphStats(f.graph.get(), 20, net::CostModel{}, &stats).ok());
  // The generator samples out-degrees from a gamma=2.16 Pareto tail; the
  // Hill estimator should land in the neighborhood.
  EXPECT_GT(stats.power_law_gamma, 1.7);
  EXPECT_LT(stats.power_law_gamma, 2.7);
  EXPECT_NEAR(stats.avg_out_degree, 13.0, 4.0);
  EXPECT_GT(stats.modeled_millis, 0.0);
}

TEST(LandmarkTest, BetweennessFindsBridge) {
  // Two cliques joined by a single bridge vertex: the bridge has by far
  // the highest betweenness.
  graph::Generators::EdgeList edges;
  edges.num_nodes = 11;
  auto clique = [&](CellId base) {
    for (CellId a = base; a < base + 5; ++a) {
      for (CellId b = a + 1; b < base + 5; ++b) {
        edges.edges.emplace_back(a, b);
      }
    }
  };
  clique(0);
  clique(5);
  const CellId bridge = 10;
  edges.edges.emplace_back(0, bridge);
  edges.edges.emplace_back(bridge, 5);
  const graph::Csr csr = graph::Csr::FromEdges(edges);
  const auto centrality = ApproxBetweenness(csr, 11, 3);
  for (CellId v = 0; v < 10; ++v) {
    EXPECT_GE(centrality[bridge], centrality[v]);
  }
}

TEST(LandmarkTest, OracleAccuracyAndStrategyOrdering) {
  Fixture f = NewGraph(4);
  const auto edges = graph::Generators::PowerLaw(1200, 8.0, 2.16, 19);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());

  auto evaluate = [&](LandmarkStrategy strategy) {
    DistanceOracle::Options options;
    options.strategy = strategy;
    options.num_landmarks = 16;
    options.betweenness_samples = 24;
    DistanceOracle oracle;
    EXPECT_TRUE(DistanceOracle::Build(f.graph.get(), options, &oracle).ok());
    EXPECT_LE(oracle.landmarks().size(), 16u);
    EXPECT_GT(oracle.landmarks().size(), 0u);
    return oracle.Evaluate(60, 5).accuracy_pct;
  };
  const double degree = evaluate(LandmarkStrategy::kLargestDegree);
  const double local = evaluate(LandmarkStrategy::kLocalBetweenness);
  const double global = evaluate(LandmarkStrategy::kGlobalBetweenness);
  // All strategies produce upper-bound estimates.
  for (double acc : {degree, local, global}) {
    EXPECT_GT(acc, 20.0);
    EXPECT_LE(acc, 100.0 + 1e-9);
  }
  // Fig 8(b) ordering, with slack for sampling noise: betweenness-based
  // selection beats plain degree.
  EXPECT_GT(global + 8.0, degree);
  EXPECT_GT(local + 10.0, degree);
}

TEST(LandmarkTest, EstimateIsUpperBound) {
  Fixture f = NewGraph();
  const auto edges = graph::Generators::Uniform(400, 6.0, 23);
  ASSERT_TRUE(graph::Generators::Load(f.graph.get(), edges, false, 0).ok());
  DistanceOracle::Options options;
  options.num_landmarks = 8;
  DistanceOracle oracle;
  ASSERT_TRUE(DistanceOracle::Build(f.graph.get(), options, &oracle).ok());
  Random rng(9);
  for (int i = 0; i < 30; ++i) {
    const CellId s = rng.Uniform(400);
    const CellId t = rng.Uniform(400);
    const std::uint32_t exact = oracle.Exact(s, t);
    const std::uint32_t estimate = oracle.Estimate(s, t);
    if (exact != ~0u && estimate != ~0u) {
      EXPECT_GE(estimate, exact);
    }
  }
}

}  // namespace
}  // namespace trinity::algos
