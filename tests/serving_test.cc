// Serving front-door suite: RetryPolicy/RetryBudget/CallContext unit tests
// plus QueryFrontend terminal-status coverage — OK, NotFound,
// DeadlineExceeded (backoff-spent and injected-straggler variants),
// ResourceExhausted (admission shed and retry-budget denial), degraded
// replica reads — and chaos tests proving that a machine killed mid-load
// leaves every in-flight request with a terminal status and that the retry
// budget bounds call amplification versus a no-budget ablation.
//
// Carries the `serving` ctest label; chaos-style cases derive their seeds
// from TRINITY_CHAOS_SEED_OFFSET exactly like tests/chaos_test.cc so
// scripts/check.sh --chaos-sweep covers them too.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/call_context.h"
#include "common/retry.h"
#include "common/status.h"
#include "graph/graph.h"
#include "net/fault_injector.h"
#include "serving/query_frontend.h"
#include "tfs/tfs.h"

namespace trinity {
namespace {

using cloud::MemoryCloud;
using serving::QueryFrontend;
using serving::ServingStats;

std::uint64_t SeedOffset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("TRINITY_CHAOS_SEED_OFFSET");
    return env == nullptr ? 0ULL : std::strtoull(env, nullptr, 10);
  }();
  return offset;
}

// --- Status ---------------------------------------------------------------

TEST(ServingStatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::TimedOut("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Aborted("fenced").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsRetryable());
}

TEST(ServingStatusTest, NewCodesRoundTrip) {
  const Status d = Status::DeadlineExceeded("too slow");
  EXPECT_TRUE(d.IsDeadlineExceeded());
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: too slow");
  const Status r = Status::ResourceExhausted("shed");
  EXPECT_TRUE(r.IsResourceExhausted());
  EXPECT_EQ(r.ToString(), "ResourceExhausted: shed");
}

// --- CallContext ----------------------------------------------------------

TEST(CallContextTest, ConsumeExpireAndCheck) {
  CallContext ctx(1000.0);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().ok());
  ctx.Consume(400.0);
  EXPECT_DOUBLE_EQ(ctx.remaining_micros(), 600.0);
  ctx.Consume(600.0);
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
}

TEST(CallContextTest, NoDeadlineNeverExpires) {
  CallContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  ctx.Consume(1e12);
  EXPECT_FALSE(ctx.expired());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(CallContextTest, CancellationWinsOverDeadline) {
  CallContext ctx(100.0);
  ctx.Cancel();
  EXPECT_TRUE(ctx.Check().IsAborted());
}

TEST(CallContextTest, ExternalCancelToken) {
  std::atomic<bool> token{false};
  CallContext ctx(1000.0);
  ctx.set_cancel_token(&token);
  EXPECT_TRUE(ctx.Check().ok());
  token.store(true);
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.Check().IsAborted());
}

// --- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicyTest, MaxAttemptsOneRunsExactlyOnce) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  int attempts = 0;
  const Status s = policy.Run({}, [&](int) {
    ++attempts;
    return Status::Unavailable("always");
  });
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(s.IsUnavailable());
}

TEST(RetryPolicyTest, ZeroBaseBackoffStillRetries) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_micros = 0.0;
  double charged = 0.0;
  RetryPolicy::RunHooks hooks;
  hooks.charge = [&](double micros) { charged += micros; };
  int attempts = 0;
  const Status s = policy.Run(hooks, [&](int) {
    return ++attempts < 3 ? Status::Unavailable("transient") : Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_DOUBLE_EQ(charged, 0.0);  // Zero base -> zero (jittered) backoff.
}

TEST(RetryPolicyTest, BudgetExhaustionMidLoop) {
  RetryBudget::Options budget_options;
  budget_options.capacity = 2.0;
  budget_options.initial = 2.0;
  budget_options.refill_per_op = 0.0;
  RetryBudget budget(budget_options);
  CallContext ctx(0.0, &budget);  // No deadline, budget only.
  RetryPolicy policy;
  policy.max_attempts = 10;
  RetryPolicy::RunHooks hooks;
  hooks.ctx = &ctx;
  int attempts = 0;
  const Status s = policy.Run(hooks, [&](int) {
    ++attempts;
    return Status::Unavailable("always");
  });
  // Initial attempt + the 2 banked retry tokens; the third retry is denied.
  EXPECT_EQ(attempts, 3);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_EQ(budget.denied(), 1u);
  EXPECT_EQ(budget.granted(), 2u);
}

TEST(RetryPolicyTest, DeadlineStopsBackoffLoop) {
  CallContext ctx(500.0);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base_micros = 400.0;
  policy.jitter_fraction = 0.0;
  RetryPolicy::RunHooks hooks;
  hooks.ctx = &ctx;
  int attempts = 0;
  const Status s = policy.Run(hooks, [&](int) {
    ++attempts;
    return Status::Unavailable("always");
  });
  // Retry 1 waits 400 (affordable); retry 2 would wait 800 > 100 left.
  EXPECT_EQ(attempts, 2);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_TRUE(ctx.expired());
}

TEST(RetryPolicyTest, NonRetryableStopsImmediately) {
  RetryPolicy policy;
  int attempts = 0;
  const Status s = policy.Run({}, [&](int) {
    ++attempts;
    return Status::Aborted("fenced");
  });
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(s.IsAborted());
}

TEST(RetryPolicyTest, KeepTryingPredicateStopsWithLastStatus) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  RetryPolicy::RunHooks hooks;
  int attempts = 0;
  hooks.keep_trying = [&] { return attempts < 2; };
  const Status s = policy.Run(hooks, [&](int) {
    ++attempts;
    return Status::Unavailable("replica dead");
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.message(), "replica dead");
}

TEST(RetryPolicyTest, JitterIsDeterministicAndSaltDecorrelated) {
  RetryPolicy policy;
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 42;
  const double a1 = policy.BackoffMicros(1, /*salt=*/7);
  const double a2 = policy.BackoffMicros(1, /*salt=*/7);
  EXPECT_DOUBLE_EQ(a1, a2);  // Pure function of (seed, salt, retry).
  // Jitter stays within +/- jitter_fraction of the base.
  EXPECT_GE(a1, policy.backoff_base_micros * 0.75);
  EXPECT_LE(a1, policy.backoff_base_micros * 1.25);
  // Different salts decorrelate (with this seed the draws differ).
  const double b1 = policy.BackoffMicros(1, /*salt=*/8);
  EXPECT_NE(a1, b1);
}

// --- QueryFrontend --------------------------------------------------------

struct ServingCluster {
  std::unique_ptr<tfs::Tfs> tfs;  // May stay null (pure in-memory).
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<MemoryCloud> cloud;
};

ServingCluster NewServingCluster(std::uint64_t seed, int slaves = 4,
                                 int replication_factor = 0,
                                 bool auto_promote = true) {
  ServingCluster c;
  c.injector = std::make_unique<net::FaultInjector>(seed);
  MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.replication_factor = replication_factor;
  options.auto_promote = auto_promote;
  EXPECT_TRUE(MemoryCloud::Create(options, &c.cloud).ok());
  c.cloud->fabric().SetFaultInjector(c.injector.get());
  return c;
}

TEST(QueryFrontendTest, OkNotFoundAndMultiGet) {
  ServingCluster c = NewServingCluster(1);
  QueryFrontend frontend(c.cloud.get(), nullptr, QueryFrontend::Options());
  ASSERT_TRUE(c.cloud->PutCell(1, Slice("alpha")).ok());
  ASSERT_TRUE(c.cloud->PutCell(2, Slice("beta")).ok());

  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 1;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).ok());
  EXPECT_EQ(response.value, "alpha");
  EXPECT_GT(response.latency_micros, 0.0);

  get.id = 999;
  EXPECT_TRUE(frontend.Execute(get, &response).IsNotFound());

  QueryFrontend::Request put;
  put.type = QueryFrontend::RequestType::kPut;
  put.id = 3;
  put.payload = "gamma";
  EXPECT_TRUE(frontend.Execute(put, &response).ok());

  QueryFrontend::Request multi;
  multi.type = QueryFrontend::RequestType::kMultiGet;
  multi.ids = {1, 2, 3, 999};
  EXPECT_TRUE(frontend.Execute(multi, &response).ok());
  ASSERT_EQ(response.values.size(), 4u);
  EXPECT_EQ(response.values[0].value, "alpha");
  EXPECT_EQ(response.values[1].value, "beta");
  EXPECT_EQ(response.values[2].value, "gamma");
  EXPECT_TRUE(response.values[3].status.IsNotFound());

  const ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.received, 4u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.not_found, 1u);
  EXPECT_EQ(stats.latency_count, 4u);
  EXPECT_GT(stats.latency_p99_micros, 0.0);
}

TEST(QueryFrontendTest, DeadlineExceededViaInjectedStraggler) {
  ServingCluster c = NewServingCluster(2);
  net::FaultInjector::Policy slow;
  slow.call_delay_prob = 1.0;
  slow.call_delay_min_micros = 50000.0;
  slow.call_delay_max_micros = 50000.0;
  c.injector->SetHandlerRangePolicy(cloud::kCellOpHandler,
                                    cloud::kCellOpHandler, slow);
  QueryFrontend frontend(c.cloud.get(), nullptr, QueryFrontend::Options());
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 1;
  get.deadline_micros = 10000.0;  // The 50 ms straggler blows this budget.
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_EQ(frontend.stats().deadline_exceeded, 1u);
}

TEST(QueryFrontendTest, DeadlineExceededViaRetryBackoff) {
  ServingCluster c = NewServingCluster(3);
  net::FaultInjector::Policy flaky;
  flaky.call_fail_prob = 1.0;  // Every op call fails; retries burn backoff.
  c.injector->SetHandlerRangePolicy(cloud::kCellOpHandler,
                                    cloud::kCellOpHandler, flaky);
  QueryFrontend frontend(c.cloud.get(), nullptr, QueryFrontend::Options());
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 7;
  // Default retry backoff is 200/400/800 µs: the deadline dies mid-loop.
  get.deadline_micros = 500.0;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).IsDeadlineExceeded())
      << response.status.ToString();
}

TEST(QueryFrontendTest, AdmissionShedsWhenQueueFull) {
  ServingCluster c = NewServingCluster(4);
  ASSERT_TRUE(c.cloud->PutCell(1, Slice("x")).ok());
  QueryFrontend::Options options;
  options.max_inflight_total = 0;  // Every request finds the queue full.
  QueryFrontend frontend(c.cloud.get(), nullptr, options);
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 1;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).IsResourceExhausted())
      << response.status.ToString();
  const ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(QueryFrontendTest, RetryBudgetDenialIsResourceExhausted) {
  ServingCluster c = NewServingCluster(5);
  net::FaultInjector::Policy flaky;
  flaky.call_fail_prob = 1.0;
  c.injector->SetHandlerRangePolicy(cloud::kCellOpHandler,
                                    cloud::kCellOpHandler, flaky);
  QueryFrontend::Options options;
  options.retry_budget.initial = 0.0;  // Not a single retry available.
  options.retry_budget.refill_per_op = 0.0;
  QueryFrontend frontend(c.cloud.get(), nullptr, options);
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 1;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).IsResourceExhausted())
      << response.status.ToString();
  const ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_GE(stats.retries_denied, 1u);
}

TEST(QueryFrontendTest, CancellationTokenAborts) {
  ServingCluster c = NewServingCluster(6);
  ASSERT_TRUE(c.cloud->PutCell(1, Slice("x")).ok());
  QueryFrontend frontend(c.cloud.get(), nullptr, QueryFrontend::Options());
  std::atomic<bool> cancel{true};  // Cancelled before it starts.
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = 1;
  get.cancel = &cancel;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).IsAborted())
      << response.status.ToString();
  EXPECT_EQ(frontend.stats().cancelled, 1u);
}

TEST(QueryFrontendTest, DegradedReadServedByReplica) {
  // k=1 hot standby, no auto-promotion: reads must fail over to replicas
  // while the primary stays dead.
  ServingCluster c = NewServingCluster(7, /*slaves=*/4,
                                       /*replication_factor=*/1,
                                       /*auto_promote=*/false);
  // Pick a cell owned by a non-leader machine so the leader survives.
  const MachineId victim = 2;
  CellId probe = 0;
  while (c.cloud->MachineOf(probe) != victim) ++probe;
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("v" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(c.cloud->FailMachine(victim).ok());

  QueryFrontend frontend(c.cloud.get(), nullptr, QueryFrontend::Options());
  QueryFrontend::Request get;
  get.type = QueryFrontend::RequestType::kGet;
  get.id = probe;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(get, &response).ok())
      << response.status.ToString();
  EXPECT_EQ(response.value, "v" + std::to_string(probe));
  const ServingStats stats = frontend.stats();
  EXPECT_GE(stats.degraded_reads, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST(QueryFrontendTest, KHopAndTqlWithDeadline) {
  ServingCluster c = NewServingCluster(8);
  graph::Graph graph(c.cloud.get());
  // A chain spanning several expansion rounds: 0 -> 1 -> 2 -> 3 -> 4.
  for (CellId v = 0; v < 5; ++v) {
    ASSERT_TRUE(graph.AddNode(v, Slice("n" + std::to_string(v))).ok());
  }
  for (CellId v = 0; v + 1 < 5; ++v) {
    ASSERT_TRUE(graph.AddEdge(v, v + 1).ok());
  }
  QueryFrontend frontend(c.cloud.get(), &graph, QueryFrontend::Options());

  QueryFrontend::Request khop;
  khop.type = QueryFrontend::RequestType::kKHop;
  khop.id = 0;
  khop.hops = 4;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(khop, &response).ok())
      << response.status.ToString();
  EXPECT_EQ(response.visited, 5u);

  // A vanishing deadline lets round 1 run (the gate re-checks between
  // rounds) but kills the query before it finishes the chain.
  khop.deadline_micros = 0.001;
  EXPECT_TRUE(frontend.Execute(khop, &response).IsDeadlineExceeded())
      << response.status.ToString();

  QueryFrontend::Request tql;
  tql.type = QueryFrontend::RequestType::kTql;
  tql.statement = "COUNT FROM 0 HOPS 1..4";
  EXPECT_TRUE(frontend.Execute(tql, &response).ok())
      << response.status.ToString();
  ASSERT_EQ(response.tql.rows.size(), 1u);
  EXPECT_EQ(response.tql.rows[0][0], "4");

  tql.deadline_micros = 0.001;
  EXPECT_TRUE(frontend.Execute(tql, &response).IsDeadlineExceeded())
      << response.status.ToString();
}

// --- Chaos ----------------------------------------------------------------

std::string FreshTfsRoot(const std::string& tag, std::uint64_t seed) {
  const std::string root = ::testing::TempDir() + "/serving_" + tag + "_" +
                           std::to_string(seed) + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

// A machine killed mid-load must leave every in-flight request with a
// terminal status — no unbounded hangs, no unexpected codes.
TEST(ServingChaosTest, KillMidLoadEveryRequestResolvesTerminal) {
  const std::uint64_t seed = 0xC0FFEE + SeedOffset();
  SCOPED_TRACE("seed=" + std::to_string(seed));

  std::unique_ptr<tfs::Tfs> tfs;
  tfs::Tfs::Options tfs_options;
  tfs_options.root = FreshTfsRoot("killmidload", seed);
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());
  auto injector = std::make_unique<net::FaultInjector>(seed);
  MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.tfs = tfs.get();
  options.replication_factor = 1;
  std::unique_ptr<MemoryCloud> cloud;
  ASSERT_TRUE(MemoryCloud::Create(options, &cloud).ok());
  cloud->fabric().SetFaultInjector(injector.get());

  constexpr int kCells = 128;
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(cloud->PutCell(id, Slice("seed" + std::to_string(id))).ok());
  }

  // The victim dies after a deterministic number of further messages —
  // mid-way through the concurrent load below.
  const MachineId victim = 1;
  injector->CrashAfter(victim, 200);

  QueryFrontend::Options frontend_options;
  frontend_options.default_deadline_micros = 100000.0;
  QueryFrontend frontend(cloud.get(), nullptr, frontend_options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> unexpected{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryFrontend::Request request;
        const CellId id = static_cast<CellId>((t * kPerThread + i) % kCells);
        if (i % 4 == 3) {
          request.type = QueryFrontend::RequestType::kPut;
          request.id = id;
          request.payload = "w" + std::to_string(t) + "_" + std::to_string(i);
        } else {
          request.type = QueryFrontend::RequestType::kGet;
          request.id = id;
        }
        QueryFrontend::Response response;
        const Status s = frontend.Execute(request, &response);
        // Terminal set: the normal answers, deadline/shed outcomes, a
        // terminal Unavailable after bounded retries, or Aborted (fencing).
        if (s.ok()) {
          ok_count.fetch_add(1);
        } else if (!s.IsNotFound() && !s.IsDeadlineExceeded() &&
                   !s.IsResourceExhausted() && !s.IsUnavailable() &&
                   !s.IsTimedOut() && !s.IsAborted()) {
          unexpected.fetch_add(1);
          ADD_FAILURE() << "unexpected terminal status: " << s.ToString();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();  // Bounded: no request hangs.

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  const ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.received, static_cast<std::uint64_t>(kThreads) *
                                static_cast<std::uint64_t>(kPerThread));
  EXPECT_EQ(stats.latency_count, stats.received);

  // The cluster heals: after a sweep the survivors serve everything again.
  cloud->DetectAndRecover();
  QueryFrontend::Request probe;
  probe.type = QueryFrontend::RequestType::kGet;
  probe.id = 5;
  QueryFrontend::Response response;
  EXPECT_TRUE(frontend.Execute(probe, &response).ok())
      << response.status.ToString();
  std::filesystem::remove_all(tfs_options.root);
}

// NetworkStats call counts prove the token bucket bounds amplification: a
// dead-path workload with the budget enabled issues a fraction of the sync
// calls the no-budget ablation issues. Single-threaded and fully seeded, so
// the counts are deterministic.
TEST(ServingChaosTest, RetryBudgetBoundsAmplification) {
  const std::uint64_t seed = 0xBAD5EED + SeedOffset();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  constexpr int kRequests = 40;

  auto run = [&](bool enable_budget) -> std::uint64_t {
    ServingCluster c = NewServingCluster(seed);
    net::FaultInjector::Policy flaky;
    flaky.call_fail_prob = 1.0;  // The op path is dead; every call fails.
    c.injector->SetHandlerRangePolicy(cloud::kCellOpHandler,
                                      cloud::kCellOpHandler, flaky);
    QueryFrontend::Options options;
    options.enable_retry_budget = enable_budget;
    options.retry_budget.capacity = 5.0;
    options.retry_budget.initial = 5.0;
    options.retry_budget.refill_per_op = 0.0;
    options.default_deadline_micros = 0.0;  // Isolate the budget effect.
    QueryFrontend frontend(c.cloud.get(), nullptr, options);
    const std::uint64_t calls_before = c.cloud->fabric().stats().sync_calls;
    for (int i = 0; i < kRequests; ++i) {
      QueryFrontend::Request get;
      get.type = QueryFrontend::RequestType::kGet;
      get.id = static_cast<CellId>(i);
      QueryFrontend::Response response;
      const Status s = frontend.Execute(get, &response);
      EXPECT_TRUE(s.IsResourceExhausted() || s.IsUnavailable())
          << s.ToString();
    }
    return c.cloud->fabric().stats().sync_calls - calls_before;
  };

  const std::uint64_t with_budget = run(true);
  const std::uint64_t without_budget = run(false);
  // Without a budget every request retries to max_attempts (4 calls each);
  // with the 5-token bucket the whole workload affords 5 retries total.
  EXPECT_EQ(without_budget, static_cast<std::uint64_t>(kRequests) * 4);
  EXPECT_EQ(with_budget, static_cast<std::uint64_t>(kRequests) + 5);
  EXPECT_LT(with_budget * 2, without_budget);
}

}  // namespace
}  // namespace trinity
