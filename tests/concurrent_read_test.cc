// Concurrent-read torture tests for the lock-free read hot path: readers
// racing Defragment(), PutCell relocations, and replica promotion. The
// interesting assertions are the implicit ones — no torn reads, no accessor
// invalidation, no data race reported under `scripts/check.sh --tsan`
// (these tests carry the `storage` ctest label the tsan preset runs).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/memory_cloud.h"
#include "common/hash.h"
#include "storage/memory_trunk.h"

namespace trinity {
namespace {

using storage::MemoryTrunk;

constexpr int kReaderThreads = 4;

MemoryTrunk::Options TortureTrunk() {
  MemoryTrunk::Options options;
  options.capacity = 4 * 1024 * 1024;
  return options;
}

std::unique_ptr<MemoryTrunk> NewTrunk() {
  std::unique_ptr<MemoryTrunk> trunk;
  EXPECT_TRUE(MemoryTrunk::Create(TortureTrunk(), &trunk).ok());
  return trunk;
}

char PatternFor(CellId id) { return static_cast<char>('a' + id % 26); }

// A value is consistent iff every byte carries the cell's pattern — a torn
// read (half old bytes, half relocated bytes) trips this immediately.
bool Consistent(CellId id, const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (data[i] != PatternFor(id)) return false;
  }
  return true;
}

// Tiny deterministic per-thread generator (no shared rand() state).
struct XorShift {
  std::uint64_t state;
  std::uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

TEST(ConcurrentReadTest, ReadersRaceDefragment) {
  auto trunk = NewTrunk();
  const int kCells = 500;
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(64, PatternFor(id)))).ok());
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      XorShift rng{0x9e3779b97f4a7c15ull + t};
      std::string out;
      while (!done.load(std::memory_order_acquire)) {
        const CellId id = rng.Next() % kCells;
        if (rng.Next() % 2 == 0) {
          if (trunk->GetCell(id, &out).ok() &&
              !Consistent(id, out.data(), out.size())) {
            torn.fetch_add(1);
          }
        } else {
          MemoryTrunk::ConstAccessor accessor;
          if (trunk->Access(id, &accessor).ok()) {
            // The accessor pins the cell against defrag relocation: the
            // slice must stay consistent for as long as it is held.
            const Slice data = accessor.data();
            if (!Consistent(id, data.data(), data.size())) torn.fetch_add(1);
          }
        }
      }
    });
  }
  // Writer: churn cells to manufacture dead space, then defragment, while
  // the readers above hammer the same trunk.
  for (int round = 0; round < 100; ++round) {
    for (CellId id = 0; id < kCells; id += 2) {
      ASSERT_TRUE(trunk->RemoveCell(id).ok());
      ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(64, PatternFor(id))))
                      .ok());
    }
    trunk->Defragment();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(trunk->stats().defrag_passes, 0u);
}

TEST(ConcurrentReadTest, ReadersRacePutCellRelocations) {
  auto trunk = NewTrunk();
  const int kCells = 200;
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(16, PatternFor(id)))).ok());
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      XorShift rng{0xdeadbeefcafef00dull + t};
      while (!done.load(std::memory_order_acquire)) {
        const CellId id = rng.Next() % kCells;
        MemoryTrunk::ConstAccessor accessor;
        if (trunk->Access(id, &accessor).ok()) {
          const Slice data = accessor.data();
          if (!Consistent(id, data.data(), data.size())) torn.fetch_add(1);
        }
      }
    });
  }
  // Writer: grow-then-shrink each cell; growth past the reservation
  // relocates the entry while readers hold accessors on its neighbors.
  for (int round = 0; round < 100; ++round) {
    const std::size_t size = 16 + (round % 8) * 96;
    for (CellId id = 0; id < kCells; ++id) {
      ASSERT_TRUE(
          trunk->PutCell(id, Slice(std::string(size, PatternFor(id)))).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(ConcurrentReadTest, ReadersRaceReplicaPromotion) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.replication_factor = 1;
  options.auto_promote = true;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());

  const int kCells = 100;
  std::vector<CellId> ids;
  for (CellId id = 0; static_cast<int>(ids.size()) < kCells; ++id) {
    ASSERT_TRUE(
        cloud->PutCell(id, Slice(std::string(32, PatternFor(id)))).ok());
    ids.push_back(id);
  }

  const MachineId victim = 1;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  // Readers issue single gets and MultiGet batches from the surviving
  // machines while the victim fails and its trunks promote underneath them.
  for (int t = 0; t < kReaderThreads; ++t) {
    const MachineId src = (t % 2 == 0) ? 0 : 2;
    readers.emplace_back([&, t, src] {
      XorShift rng{0x5eedull + t};
      std::string out;
      while (!done.load(std::memory_order_acquire)) {
        if (t == 0) {
          std::vector<cloud::MemoryCloud::MultiGetResult> results;
          if (cloud->MultiGet(src, ids, &results).ok()) {
            for (int i = 0; i < kCells; ++i) {
              if (results[i].status.ok() &&
                  !Consistent(ids[i], results[i].value.data(),
                              results[i].value.size())) {
                mismatches.fetch_add(1);
              }
            }
          }
        } else {
          const CellId id = ids[rng.Next() % kCells];
          Status s = cloud->GetCellFrom(src, id, &out);
          if (s.ok() && !Consistent(id, out.data(), out.size())) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cloud->FailMachine(victim).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // Reads during the outage were served by in-sync replicas, not promotion.
  EXPECT_GT(cloud->recovery_stats().degraded_reads, 0u);

  // A write to a trunk the victim owned forces the real promotion flip.
  CellId victim_cell = kInvalidCell;
  for (CellId id : ids) {
    if (cloud->MachineOf(id) == victim) {
      victim_cell = id;
      break;
    }
  }
  ASSERT_NE(victim_cell, kInvalidCell);
  ASSERT_TRUE(
      cloud->PutCell(victim_cell, Slice(std::string(32, PatternFor(victim_cell))))
          .ok());
  EXPECT_GT(cloud->recovery_stats().promotions, 0u);

  // Post-race ground truth: every cell is readable with the right bytes.
  std::vector<cloud::MemoryCloud::MultiGetResult> results;
  ASSERT_TRUE(cloud->MultiGet(0, ids, &results).ok());
  for (int i = 0; i < kCells; ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].status.message();
    EXPECT_TRUE(Consistent(ids[i], results[i].value.data(),
                           results[i].value.size()));
  }
}

TEST(ConcurrentReadTest, SharedReadersRecordNoExclusiveContention) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(7, Slice("payload")).ok());
  const auto before = trunk->stats();
  std::string out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(trunk->GetCell(7, &out).ok());
  }
  const auto after = trunk->stats();
  EXPECT_GE(after.shared_reads - before.shared_reads, 1000u);
  EXPECT_EQ(after.read_lock_contended, before.read_lock_contended);
}

TEST(ConcurrentReadTest, WriterContendsOnPinnedCellStripe) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(3, Slice("original")).ok());
  auto accessor = std::make_unique<MemoryTrunk::ConstAccessor>();
  ASSERT_TRUE(trunk->Access(3, accessor.get()).ok());
  // The writer must block on the accessor's stripe (and count the contended
  // acquisition) instead of relocating the pinned cell under the reader.
  std::thread writer([&] {
    ASSERT_TRUE(trunk->PutCell(3, Slice("replacement value")).ok());
  });
  // Poll the lock-free counter accessor — NOT stats(), which takes the trunk
  // read lock and would deadlock against the writer's exclusive hold while
  // this thread pins the stripe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (trunk->cell_lock_contended() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(accessor->data().ToString(), "original");
  accessor.reset();  // Destructor releases the stripe; the writer proceeds.
  writer.join();
  EXPECT_GE(trunk->stats().cell_lock_contended, 1u);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(3, &out).ok());
  EXPECT_EQ(out, "replacement value");
}

TEST(ConcurrentReadTest, AccessorReuseAcrossSameStripeReleasesFirst) {
  // Two cells hashing to the same of the 256 stripes: re-using one accessor
  // for the second cell must release the first stripe before re-acquiring
  // (the re-entrant self-deadlock the debug assert guards against).
  auto trunk = NewTrunk();
  const CellId a = 1;
  CellId b = 0;
  for (CellId id = 2; id < 100000; ++id) {
    if (InTrunkHash(id) % 256 == InTrunkHash(a) % 256) {
      b = id;
      break;
    }
  }
  ASSERT_NE(b, 0u) << "no same-stripe sibling found";
  ASSERT_TRUE(trunk->AddCell(a, Slice("cell a")).ok());
  ASSERT_TRUE(trunk->AddCell(b, Slice("cell b")).ok());
  MemoryTrunk::ConstAccessor accessor;
  ASSERT_TRUE(trunk->Access(a, &accessor).ok());
  ASSERT_TRUE(trunk->Access(b, &accessor).ok());  // Same stripe: must not hang.
  EXPECT_EQ(accessor.data().ToString(), "cell b");
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ConcurrentReadDeathTest, ReentrantStripeAcquisitionAborts) {
  // Debug builds abort instead of self-deadlocking when a thread holding an
  // accessor acquires a second accessor on the same stripe.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  auto trunk = NewTrunk();
  const CellId a = 1;
  CellId b = 0;
  for (CellId id = 2; id < 100000; ++id) {
    if (InTrunkHash(id) % 256 == InTrunkHash(a) % 256) {
      b = id;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  ASSERT_TRUE(trunk->AddCell(a, Slice("cell a")).ok());
  ASSERT_TRUE(trunk->AddCell(b, Slice("cell b")).ok());
  MemoryTrunk::ConstAccessor first;
  ASSERT_TRUE(trunk->Access(a, &first).ok());
  MemoryTrunk::ConstAccessor second;
  EXPECT_DEATH((void)trunk->Access(b, &second), "re-entrant");
}
#endif

TEST(ConcurrentReadTest, MultiGetGroupsPerOwnerAndReportsMissing) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  std::vector<CellId> ids;
  for (CellId id = 0; ids.size() < 64; ++id) {
    ASSERT_TRUE(cloud->PutCell(id, Slice(std::string(8, PatternFor(id)))).ok());
    ids.push_back(id);
  }
  const CellId missing = 1u << 20;
  ids.push_back(missing);

  const auto before = cloud->fabric().stats();
  std::vector<cloud::MemoryCloud::MultiGetResult> results;
  ASSERT_TRUE(cloud->MultiGet(0, ids, &results).ok());
  const auto after = cloud->fabric().stats();
  // One packed request per remote owner machine, not one per id.
  EXPECT_LE(after.sync_calls - before.sync_calls,
            static_cast<std::uint64_t>(options.num_slaves));
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_TRUE(Consistent(ids[i], results[i].value.data(),
                           results[i].value.size()));
  }
  EXPECT_TRUE(results.back().status.IsNotFound());

  // MultiContains mirrors the grouping with empty records.
  std::vector<cloud::MemoryCloud::MultiGetResult> contains;
  ASSERT_TRUE(cloud->MultiContains(cloud->client_id(), ids, &contains).ok());
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(contains[i].status.ok());
  }
  EXPECT_TRUE(contains.back().status.IsNotFound());
}

}  // namespace
}  // namespace trinity
