// Second wave of feature tests: data integration (§4.2), the external
// attribute store, BSP global aggregators, and convergence-driven PageRank.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "algos/pagerank.h"
#include "cloud/external_store.h"
#include "graph/generators.h"
#include "tsl/cell_io.h"
#include "tsl/data_import.h"

namespace trinity {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

// --------------------------------------------------------- Data integration

constexpr const char* kPersonScript = R"(
  [CellType: NodeCell]
  cell struct Person {
    string Name;
    int Age;
    double Score;
    List<long> Friends;
  }
)";

class DataImportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(tsl::SchemaRegistry::Compile(kPersonScript, &registry_).ok());
    cloud_ = NewCloud();
    importer_ =
        std::make_unique<tsl::DataImporter>(cloud_.get(), &registry_);
    binding_.struct_name = "Person";
    binding_.key_column = "id";
    binding_.column_to_field = {
        {"name", "Name"}, {"age", "Age"}, {"score", "Score"}};
  }
  tsl::SchemaRegistry registry_;
  std::unique_ptr<cloud::MemoryCloud> cloud_;
  std::unique_ptr<tsl::DataImporter> importer_;
  tsl::DataImporter::TableBinding binding_;
};

TEST_F(DataImportTest, ImportCreatesCells) {
  const std::string csv =
      "id,name,age,score\n"
      "1,Alice,30,2.5\n"
      "2,Bob,41,1.25\n";
  tsl::DataImporter::ImportStats stats;
  ASSERT_TRUE(importer_->ImportTable(binding_, csv, &stats).ok());
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(stats.cells_created, 2u);
  tsl::CellAccessor cell;
  ASSERT_TRUE(tsl::LoadCell(cloud_.get(), cloud_->client_id(), 1,
                            registry_.struct_schema("Person"), &cell)
                  .ok());
  std::string name;
  std::int32_t age = 0;
  double score = 0;
  ASSERT_TRUE(cell.GetString(0, &name).ok());
  ASSERT_TRUE(cell.GetInt32(1, &age).ok());
  ASSERT_TRUE(cell.GetDouble(2, &score).ok());
  EXPECT_EQ(name, "Alice");
  EXPECT_EQ(age, 30);
  EXPECT_EQ(score, 2.5);
}

TEST_F(DataImportTest, ReimportPreservesUnmappedFields) {
  // Create a person and give them friends (graph-side state), then import
  // an attribute table over the same cell — the friends must survive.
  const tsl::Schema* person = registry_.struct_schema("Person");
  ASSERT_TRUE(tsl::NewCell(cloud_.get(), cloud_->client_id(), 7, person).ok());
  {
    tsl::ScopedCell cell;
    ASSERT_TRUE(tsl::ScopedCell::Use(cloud_.get(), cloud_->client_id(), 7,
                                     person, &cell)
                    .ok());
    ASSERT_TRUE(cell.accessor().AppendListInt64(3, 100).ok());
    ASSERT_TRUE(cell.accessor().AppendListInt64(3, 200).ok());
  }
  tsl::DataImporter::ImportStats stats;
  ASSERT_TRUE(importer_
                  ->ImportTable(binding_,
                                "id,name,age,score\n7,Carol,28,9.0\n",
                                &stats)
                  .ok());
  EXPECT_EQ(stats.cells_updated, 1u);
  tsl::CellAccessor cell;
  ASSERT_TRUE(tsl::LoadCell(cloud_.get(), cloud_->client_id(), 7, person,
                            &cell)
                  .ok());
  std::string name;
  ASSERT_TRUE(cell.GetString(0, &name).ok());
  EXPECT_EQ(name, "Carol");
  std::size_t friends = 0;
  ASSERT_TRUE(cell.ListSize(3, &friends).ok());
  EXPECT_EQ(friends, 2u);  // Graph state intact.
}

TEST_F(DataImportTest, ExportRoundTrips) {
  const std::string csv =
      "id,name,age,score\n"
      "1,Alice,30,2.5\n"
      "2,Bob,41,1.25\n";
  tsl::DataImporter::ImportStats stats;
  ASSERT_TRUE(importer_->ImportTable(binding_, csv, &stats).ok());
  std::string exported;
  ASSERT_TRUE(importer_->ExportTable(binding_, {1, 2}, &exported).ok());
  EXPECT_NE(exported.find("Alice"), std::string::npos);
  EXPECT_NE(exported.find("41"), std::string::npos);
  // Re-import the export: no-ops semantically.
  ASSERT_TRUE(importer_->ImportTable(binding_, exported, &stats).ok());
  EXPECT_EQ(stats.cells_updated, 2u);
}

TEST_F(DataImportTest, ErrorsAreDiagnosed) {
  tsl::DataImporter::ImportStats stats;
  EXPECT_TRUE(importer_->ImportTable(binding_, "", &stats)
                  .IsInvalidArgument());
  EXPECT_TRUE(importer_
                  ->ImportTable(binding_, "name,age\nAlice,30\n", &stats)
                  .IsInvalidArgument());  // No key column.
  EXPECT_TRUE(importer_
                  ->ImportTable(binding_, "id,name\n1,Alice,EXTRA\n", &stats)
                  .IsInvalidArgument());  // Ragged row.
  tsl::DataImporter::TableBinding bad = binding_;
  bad.column_to_field["name"] = "NoSuchField";
  EXPECT_TRUE(importer_->ImportTable(bad, "id,name\n1,Alice\n", &stats)
                  .IsInvalidArgument());
}

// --------------------------------------------------------- External store

TEST(ExternalStoreTest, StoreFetchRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ext_store/blobs.dat";
  std::filesystem::remove_all(::testing::TempDir() + "/ext_store");
  std::unique_ptr<cloud::ExternalStore> store;
  ASSERT_TRUE(cloud::ExternalStore::Open(path, &store).ok());
  std::uint64_t h1 = 0, h2 = 0;
  ASSERT_TRUE(store->Store(Slice("a large image payload"), &h1).ok());
  ASSERT_TRUE(store->Store(Slice("another rich attribute"), &h2).ok());
  EXPECT_NE(h1, h2);
  std::string blob;
  ASSERT_TRUE(store->Fetch(h1, &blob).ok());
  EXPECT_EQ(blob, "a large image payload");
  ASSERT_TRUE(store->Fetch(h2, &blob).ok());
  EXPECT_EQ(blob, "another rich attribute");
  EXPECT_EQ(store->blob_count(), 2u);
}

TEST(ExternalStoreTest, HandlesSurviveReopen) {
  const std::string path = ::testing::TempDir() + "/ext_reopen/blobs.dat";
  std::filesystem::remove_all(::testing::TempDir() + "/ext_reopen");
  std::uint64_t handle = 0;
  {
    std::unique_ptr<cloud::ExternalStore> store;
    ASSERT_TRUE(cloud::ExternalStore::Open(path, &store).ok());
    ASSERT_TRUE(store->Store(Slice("persistent"), &handle).ok());
  }
  std::unique_ptr<cloud::ExternalStore> store;
  ASSERT_TRUE(cloud::ExternalStore::Open(path, &store).ok());
  std::string blob;
  ASSERT_TRUE(store->Fetch(handle, &blob).ok());
  EXPECT_EQ(blob, "persistent");
  std::uint64_t next = 0;
  ASSERT_TRUE(store->Store(Slice("appended after reopen"), &next).ok());
  EXPECT_GT(next, handle);
}

TEST(ExternalStoreTest, BadHandleAndCorruption) {
  const std::string path = ::testing::TempDir() + "/ext_bad/blobs.dat";
  std::filesystem::remove_all(::testing::TempDir() + "/ext_bad");
  std::unique_ptr<cloud::ExternalStore> store;
  ASSERT_TRUE(cloud::ExternalStore::Open(path, &store).ok());
  std::uint64_t handle = 0;
  ASSERT_TRUE(store->Store(Slice("victim"), &handle).ok());
  std::string blob;
  EXPECT_TRUE(store->Fetch(99999, &blob).IsNotFound());
  EXPECT_TRUE(store->Fetch(handle + 3, &blob).IsCorruption());
}

TEST(ExternalStoreTest, CellsCarryHandlesTransparently) {
  // The paper's split: topology + critical data in the memory cloud, rich
  // payloads (images) on disk, resolved through a handle in the cell.
  const std::string path = ::testing::TempDir() + "/ext_cells/blobs.dat";
  std::filesystem::remove_all(::testing::TempDir() + "/ext_cells");
  std::unique_ptr<cloud::ExternalStore> store;
  ASSERT_TRUE(cloud::ExternalStore::Open(path, &store).ok());
  tsl::SchemaRegistry registry;
  ASSERT_TRUE(tsl::SchemaRegistry::Compile(
                  "cell struct Profile { string Name; long PhotoHandle; }",
                  &registry)
                  .ok());
  auto cloud = NewCloud();
  const tsl::Schema* profile = registry.struct_schema("Profile");
  ASSERT_TRUE(
      tsl::NewCell(cloud.get(), cloud->client_id(), 1, profile).ok());
  const std::string photo(10000, 'J');  // "JPEG" bytes: too big for RAM.
  std::uint64_t handle = 0;
  ASSERT_TRUE(store->Store(Slice(photo), &handle).ok());
  {
    tsl::ScopedCell cell;
    ASSERT_TRUE(tsl::ScopedCell::Use(cloud.get(), cloud->client_id(), 1,
                                     profile, &cell)
                    .ok());
    ASSERT_TRUE(cell.accessor().SetString(0, Slice("Ada")).ok());
    ASSERT_TRUE(
        cell.accessor().SetInt64(1, static_cast<std::int64_t>(handle)).ok());
  }
  // The in-memory cell is tiny; the photo resolves through the handle.
  std::string blob;
  ASSERT_TRUE(cloud->GetCell(1, &blob).ok());
  EXPECT_LT(blob.size(), 100u);
  tsl::CellAccessor cell;
  ASSERT_TRUE(
      tsl::LoadCell(cloud.get(), cloud->client_id(), 1, profile, &cell).ok());
  std::int64_t stored_handle = 0;
  ASSERT_TRUE(cell.GetInt64(1, &stored_handle).ok());
  std::string fetched;
  ASSERT_TRUE(
      store->Fetch(static_cast<std::uint64_t>(stored_handle), &fetched).ok());
  EXPECT_EQ(fetched, photo);
}

// ----------------------------------------------------------- Aggregators

TEST(AggregatorTest, GlobalSumVisibleNextSuperstep) {
  auto cloud = NewCloud();
  graph::Graph graph(cloud.get());
  for (CellId v = 0; v < 10; ++v) {
    ASSERT_TRUE(graph.AddNode(v, Slice()).ok());
  }
  compute::BspEngine::Options options;
  options.aggregator = [](std::string* acc, Slice contribution) {
    std::int64_t a = 0, b = 0;
    std::memcpy(&a, acc->data(), 8);
    std::memcpy(&b, contribution.data(), 8);
    a += b;
    std::memcpy(acc->data(), &a, 8);
  };
  compute::BspEngine engine(&graph, options);
  compute::BspEngine::RunStats stats;
  std::int64_t seen_at_step1 = -1;
  ASSERT_TRUE(engine
                  .Run(
                      [&](compute::BspEngine::VertexContext& ctx) {
                        if (ctx.superstep() == 0) {
                          EXPECT_TRUE(ctx.aggregated().empty());
                          const std::int64_t one = 1;
                          ctx.Aggregate(
                              Slice(reinterpret_cast<const char*>(&one), 8));
                          // Stay awake one more superstep.
                          ctx.Send(ctx.vertex(), Slice("tick"));
                        } else if (ctx.superstep() == 1) {
                          std::int64_t total = 0;
                          std::memcpy(&total, ctx.aggregated().data(), 8);
                          seen_at_step1 = total;
                          ctx.VoteToHalt();
                        } else {
                          ctx.VoteToHalt();
                        }
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(seen_at_step1, 10);  // All ten vertices contributed.
  // The aggregate is per-superstep: nothing contributed in the final one.
  EXPECT_TRUE(engine.aggregated().empty());
}

TEST(AggregatorTest, ConvergentPageRankStopsEarly) {
  auto cloud = NewCloud();
  graph::Graph graph(cloud.get());
  const std::uint64_t n = 40;
  for (CellId v = 0; v < n; ++v) {
    ASSERT_TRUE(graph.AddNode(v, Slice()).ok());
  }
  for (CellId v = 0; v < n; ++v) {
    ASSERT_TRUE(graph.AddEdge(v, (v + 1) % n).ok());  // Cycle: converges fast.
  }
  algos::PageRankOptions fixed;
  fixed.iterations = 50;
  algos::PageRankResult fixed_result;
  ASSERT_TRUE(algos::RunPageRank(&graph, fixed, &fixed_result).ok());

  algos::PageRankOptions convergent;
  convergent.iterations = 50;
  convergent.convergence_epsilon = 1e-8;
  algos::PageRankResult convergent_result;
  ASSERT_TRUE(algos::RunPageRank(&graph, convergent, &convergent_result).ok());
  EXPECT_LT(convergent_result.stats.supersteps,
            fixed_result.stats.supersteps);
  for (CellId v = 0; v < n; ++v) {
    EXPECT_NEAR(convergent_result.ranks[v], fixed_result.ranks[v], 1e-6);
  }
}

}  // namespace
}  // namespace trinity
