// Chaos suite: randomized crash/recover schedules driven by the seeded
// fault injector, asserting the paper's §6.2 fault-tolerance claims end to
// end. Every test prints (via SCOPED_TRACE / assertion messages) the seed it
// ran under, and every source of randomness derives from that seed, so any
// failure replays exactly with the same seed.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "compute/async_engine.h"
#include "compute/bsp.h"
#include "graph/graph.h"
#include "net/fault_injector.h"

namespace trinity {
namespace {

// Sweep hook: scripts/check.sh --chaos-sweep N reruns the chaos label with
// TRINITY_CHAOS_SEED_OFFSET=1000, 2000, ... so the same assertions execute
// against N disjoint fault schedules. Every test derives its seed as
// GetParam() (or loop index) + SeedOffset(), keeping single-seed replay
// (offset 0 by default) byte-identical.
std::uint64_t SeedOffset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("TRINITY_CHAOS_SEED_OFFSET");
    return env == nullptr ? 0ULL : std::strtoull(env, nullptr, 10);
  }();
  return offset;
}

std::string FreshTfsRoot(const std::string& tag, std::uint64_t seed) {
  // The pid keeps roots disjoint when the suite runs concurrently from two
  // build trees (e.g. the default and TSan presets) — a shared path would
  // let one process clobber the other's snapshot and log files mid-test.
  const std::string root = ::testing::TempDir() + "/chaos_" + tag + "_" +
                           std::to_string(seed) + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

// Cluster under chaos: the injector must outlive the cloud (the fabric keeps
// a raw pointer), hence the declaration order.
struct ChaosCluster {
  std::unique_ptr<tfs::Tfs> tfs;
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<cloud::MemoryCloud> cloud;
};

ChaosCluster NewCluster(const std::string& tag, std::uint64_t seed,
                        int slaves = 4) {
  ChaosCluster c;
  tfs::Tfs::Options tfs_options;
  tfs_options.root = FreshTfsRoot(tag, seed);
  EXPECT_TRUE(tfs::Tfs::Open(tfs_options, &c.tfs).ok());
  c.injector = std::make_unique<net::FaultInjector>(seed);
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.tfs = c.tfs.get();
  options.buffered_logging = true;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &c.cloud).ok());
  c.cloud->fabric().SetFaultInjector(c.injector.get());
  return c;
}

// Drives the pending CrashAfter schedule to completion: each heartbeat is
// one logical message touching the victim, so a countdown that did not
// expire during the workload expires here, never in a later round.
void DrainCrashSchedule(ChaosCluster& c, MachineId victim) {
  for (int i = 0; i < 128 && c.cloud->fabric().IsMachineUp(victim); ++i) {
    std::string pong;
    c.cloud->fabric().Call(c.cloud->client_id(), victim,
                           cloud::kHeartbeatHandler, Slice(), &pong);
  }
}

void HealCluster(ChaosCluster& c) {
  c.cloud->DetectAndRecover();
  for (MachineId m = 0; m < c.cloud->num_slaves(); ++m) {
    if (!c.cloud->fabric().IsMachineUp(m)) {
      ASSERT_TRUE(c.cloud->RestartMachine(m).ok());
    }
  }
}

// Hot-standby variant: k in-memory replica trunks instead of buffered logs.
ChaosCluster NewReplicatedCluster(const std::string& tag, std::uint64_t seed,
                                  int replication_factor, int slaves = 4) {
  ChaosCluster c;
  tfs::Tfs::Options tfs_options;
  tfs_options.root = FreshTfsRoot(tag, seed);
  EXPECT_TRUE(tfs::Tfs::Open(tfs_options, &c.tfs).ok());
  c.injector = std::make_unique<net::FaultInjector>(seed);
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.tfs = c.tfs.get();
  options.replication_factor = replication_factor;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &c.cloud).ok());
  c.cloud->fabric().SetFaultInjector(c.injector.get());
  return c;
}

// Heal for replicated clusters, asserting the core promotion property along
// the way: failover is a metadata flip over in-memory replicas — the sweep
// must not read one byte of trunk data back from TFS.
void HealReplicated(ChaosCluster& c) {
  const tfs::Tfs::Stats before = c.tfs->stats();
  c.cloud->DetectAndRecover();
  const tfs::Tfs::Stats after = c.tfs->stats();
  EXPECT_EQ(after.files_read, before.files_read)
      << "promotion hot path read trunk data from TFS";
  for (MachineId m = 0; m < c.cloud->num_slaves(); ++m) {
    if (!c.cloud->fabric().IsMachineUp(m)) {
      ASSERT_TRUE(c.cloud->RestartMachine(m).ok());
    }
  }
  // Second sweep re-replicates onto the restarted machines.
  c.cloud->DetectAndRecover();
}

// ------------------------------------------------------------------- KV

class KvChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

// The §6.2 durability claim under buffered logging: once a write is
// acknowledged, no sequence of (sequential) machine crashes and recoveries
// may lose it — the backup's log or the committed snapshot always covers it.
TEST_P(KvChaosTest, AcknowledgedWritesSurviveCrashes) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewCluster("kv", seed);
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  net::FaultInjector::Policy wire;
  wire.call_fail_prob = 0.03;
  wire.call_timeout_prob = 0.03;
  wire.drop_prob = 0.05;       // Async traffic: table broadcasts etc.
  wire.delay_flush_prob = 0.2;

  std::map<CellId, std::string> reference;  // Acknowledged state.
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    c.injector->SetDefaultPolicy(wire);
    const MachineId victim =
        static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
    c.injector->CrashAfter(victim, 1 + rng.Uniform(60));

    for (int op = 0; op < 60; ++op) {
      const CellId id = static_cast<CellId>(rng.Uniform(64));
      if (!reference.empty() && rng.Bernoulli(0.15)) {
        auto it = reference.begin();
        std::advance(it, rng.Uniform(reference.size()));
        const CellId dead_id = it->first;
        if (c.cloud->RemoveCell(dead_id).ok()) reference.erase(dead_id);
      } else {
        const std::string value = "v" + std::to_string(id) + "." +
                                  std::to_string(round) + "." +
                                  std::to_string(op);
        if (c.cloud->PutCell(id, Slice(value)).ok()) reference[id] = value;
      }
    }

    // Calm the wire for the audit; the crash schedule stays armed and is
    // forced to fire now so failures never overlap across rounds (the §6.2
    // model recovers one machine at a time).
    c.injector->ClearPolicies();
    DrainCrashSchedule(c, victim);
    HealCluster(c);

    for (const auto& [id, value] : reference) {
      std::string out;
      ASSERT_TRUE(c.cloud->GetCell(id, &out).ok())
          << "seed " << seed << ": acknowledged cell " << id
          << " lost after crash of machine " << victim;
      ASSERT_EQ(out, value) << "seed " << seed << ": cell " << id;
    }
    ASSERT_EQ(c.cloud->TotalCellCount(), reference.size())
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------------------- BSP

constexpr int kPrVertices = 48;
constexpr int kPrSupersteps = 10;

void BuildPageRankGraph(graph::Graph* graph) {
  for (CellId v = 0; v < kPrVertices; ++v) {
    ASSERT_TRUE(graph->AddNode(v, Slice()).ok());
  }
  for (CellId v = 0; v < kPrVertices; ++v) {
    ASSERT_TRUE(graph->AddEdge(v, (v + 1) % kPrVertices).ok());
    ASSERT_TRUE(graph->AddEdge(v, (v * 7 + 3) % kPrVertices).ok());
  }
}

compute::BspEngine::Program PageRankProgram() {
  return [](compute::BspEngine::VertexContext& ctx) {
    double rank = 1.0;
    if (ctx.superstep() > 0) {
      double sum = 0;
      for (Slice m : ctx.messages()) {
        double v = 0;
        std::memcpy(&v, m.data(), 8);
        sum += v;
      }
      rank = 0.15 + 0.85 * sum;
    }
    ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
    if (ctx.out_count() > 0) {
      const double share = rank / static_cast<double>(ctx.out_count());
      char buf[8];
      std::memcpy(buf, &share, 8);
      ctx.SendToAllOut(Slice(buf, 8));
    }
    // Never halt: the superstep limit bounds the run, so every run executes
    // exactly kPrSupersteps supersteps and results are comparable.
  };
}

std::map<CellId, double> RunPageRank(graph::Graph* graph, Status* status) {
  compute::BspEngine::Options options;
  options.superstep_limit = kPrSupersteps;
  compute::BspEngine engine(graph, options);
  compute::BspEngine::RunStats stats;
  *status = engine.Run(PageRankProgram(), &stats);
  std::map<CellId, double> ranks;
  if (status->ok()) {
    engine.ForEachValue([&](CellId v, const std::string& value) {
      double r = 0;
      std::memcpy(&r, value.data(), 8);
      ranks[v] = r;
    });
  }
  return ranks;
}

class BspChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

// §6.2 for synchronous computation: a crash mid-run surfaces cleanly, the
// cloud recovers the lost partition from snapshot + buffered logs, and the
// recomputed result matches the fault-free run.
TEST_P(BspChaosTest, PageRankSurvivesMidRunCrash) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  // Fault-free baseline.
  ChaosCluster base = NewCluster("bsp_base", seed);
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph base_graph(base.cloud.get(), gopts);
  BuildPageRankGraph(&base_graph);
  Status base_status;
  const std::map<CellId, double> expected =
      RunPageRank(&base_graph, &base_status);
  ASSERT_TRUE(base_status.ok()) << base_status.message();
  ASSERT_EQ(expected.size(), static_cast<std::size_t>(kPrVertices));

  // Chaos run: same graph, one crash scheduled somewhere inside the run.
  ChaosCluster c = NewCluster("bsp", seed);
  graph::Graph graph(c.cloud.get(), gopts);
  BuildPageRankGraph(&graph);
  ASSERT_TRUE(c.cloud->SaveSnapshot().ok());
  Random rng(seed * 0x2545f4914f6cdd1dULL + 7);
  const MachineId victim =
      static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
  c.injector->CrashAfter(victim, 1 + rng.Uniform(400));

  std::map<CellId, double> got;
  bool done = false;
  for (int attempt = 0; attempt < 6 && !done; ++attempt) {
    Status s;
    got = RunPageRank(&graph, &s);
    if (s.ok()) {
      done = true;
      break;
    }
    // The only acceptable failure is the clean crash report.
    ASSERT_TRUE(s.IsUnavailable())
        << "seed " << seed << ": " << s.message();
    HealCluster(c);
  }
  ASSERT_TRUE(done) << "seed " << seed << ": run never completed";
  ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
  for (const auto& [v, rank] : expected) {
    auto it = got.find(v);
    ASSERT_NE(it, got.end()) << "seed " << seed << ": vertex " << v;
    EXPECT_NEAR(it->second, rank, 1e-9)
        << "seed " << seed << ": vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BspChaosTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------------------ Async

class AsyncChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

// The asynchronous engine's crash handling: a mid-run crash surfaces as a
// clean Unavailable at the next scheduling sweep, and a fresh run on the
// recovered cloud converges to the fault-free fixpoint (max-label
// propagation has a unique one, independent of update order).
TEST_P(AsyncChaosTest, MaxLabelPropagationSurvivesCrash) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewCluster("async", seed);
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(c.cloud.get(), gopts);
  BuildPageRankGraph(&graph);  // Ring + chords: everything reachable from 0.
  ASSERT_TRUE(c.cloud->SaveSnapshot().ok());

  Random rng(seed * 0xd1342543de82ef95ULL + 3);
  const MachineId victim =
      static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
  c.injector->CrashAfter(victim, 1 + rng.Uniform(200));

  const std::uint64_t kLabel = 1000;
  auto handler = [](compute::AsyncEngine::Context& ctx, Slice message) {
    std::uint64_t label = 0;
    std::memcpy(&label, message.data(), 8);
    std::uint64_t current = 0;
    if (ctx.value().size() == 8) {
      std::memcpy(&current, ctx.value().data(), 8);
    }
    if (label <= current) return;
    ctx.value().assign(reinterpret_cast<const char*>(&label), 8);
    char buf[8];
    std::memcpy(buf, &label, 8);
    for (std::size_t i = 0; i < ctx.out_count(); ++i) {
      ctx.Send(ctx.out()[i], Slice(buf, 8));
    }
  };

  bool done = false;
  for (int attempt = 0; attempt < 6 && !done; ++attempt) {
    compute::AsyncEngine engine(&graph, compute::AsyncEngine::Options{});
    char buf[8];
    std::memcpy(buf, &kLabel, 8);
    ASSERT_TRUE(engine.Seed(0, Slice(buf, 8)).ok());
    compute::AsyncEngine::RunStats stats;
    Status s = engine.Run(handler, &stats);
    if (s.ok()) {
      int labeled = 0;
      engine.ForEachValue([&](CellId, const std::string& value) {
        std::uint64_t label = 0;
        ASSERT_EQ(value.size(), 8u);
        std::memcpy(&label, value.data(), 8);
        if (label == kLabel) ++labeled;
      });
      EXPECT_EQ(labeled, kPrVertices) << "seed " << seed;
      done = true;
      break;
    }
    ASSERT_TRUE(s.IsUnavailable()) << "seed " << seed << ": " << s.message();
    HealCluster(c);
  }
  ASSERT_TRUE(done) << "seed " << seed << ": run never completed";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncChaosTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// Prioritized-delta crash hygiene: an aborted prioritized run leaves work
// in the delta caches / priority indexes and packed updates in the fabric
// pair buffers. The next engine's constructor must drain and Clear ALL of
// it — if any stale delta survived, the post-heal run would replay it and
// its update count would drift from the fault-free baseline pinned here
// (the engine is deterministic for a fixed seed + scheduler, so the counts
// must match exactly).
TEST_P(AsyncChaosTest, PrioritizedDeltaCrashLeavesNoStaleDeltas) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));

  const std::uint64_t kLabel = 1000;
  compute::AsyncEngine::Options aopts;
  aopts.scheduler = compute::SchedulerMode::kPriority;
  // Concurrent label candidates coalesce into the strongest one; the
  // strongest pending label is the most urgent work.
  aopts.combiner = [](std::string* accumulated, Slice message) {
    std::uint64_t acc = 0, candidate = 0;
    std::memcpy(&acc, accumulated->data(), 8);
    std::memcpy(&candidate, message.data(), 8);
    if (candidate > acc) std::memcpy(accumulated->data(), &candidate, 8);
  };
  aopts.priority = [](CellId, Slice delta, Slice) {
    std::uint64_t label = 0;
    std::memcpy(&label, delta.data(), 8);
    return static_cast<double>(label);
  };
  auto handler = [](compute::AsyncEngine::Context& ctx, Slice message) {
    std::uint64_t label = 0;
    std::memcpy(&label, message.data(), 8);
    std::uint64_t current = 0;
    if (ctx.value().size() == 8) {
      std::memcpy(&current, ctx.value().data(), 8);
    }
    if (label <= current) return;
    ctx.value().assign(reinterpret_cast<const char*>(&label), 8);
    char buf[8];
    std::memcpy(buf, &label, 8);
    for (std::size_t i = 0; i < ctx.out_count(); ++i) {
      ctx.Send(ctx.out()[i], Slice(buf, 8));
    }
  };

  // Fault-free baseline on an identical, uninjected cluster.
  compute::AsyncEngine::RunStats baseline;
  {
    ChaosCluster quiet = NewCluster("delta_base", seed);
    graph::Graph::Options gopts;
    gopts.track_inlinks = false;
    graph::Graph graph(quiet.cloud.get(), gopts);
    BuildPageRankGraph(&graph);
    compute::AsyncEngine engine(&graph, aopts);
    char buf[8];
    std::memcpy(buf, &kLabel, 8);
    ASSERT_TRUE(engine.Seed(0, Slice(buf, 8)).ok());
    ASSERT_TRUE(engine.Run(handler, &baseline).ok());
  }

  ChaosCluster c = NewCluster("delta_chaos", seed);
  graph::Graph::Options gopts;
  gopts.track_inlinks = false;
  graph::Graph graph(c.cloud.get(), gopts);
  BuildPageRankGraph(&graph);
  ASSERT_TRUE(c.cloud->SaveSnapshot().ok());

  Random rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  const MachineId victim =
      static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
  c.injector->CrashAfter(victim, 1 + rng.Uniform(60));

  bool done = false;
  for (int attempt = 0; attempt < 6 && !done; ++attempt) {
    compute::AsyncEngine engine(&graph, aopts);
    char buf[8];
    std::memcpy(buf, &kLabel, 8);
    ASSERT_TRUE(engine.Seed(0, Slice(buf, 8)).ok());
    compute::AsyncEngine::RunStats stats;
    Status s = engine.Run(handler, &stats);
    if (s.ok()) {
      int labeled = 0;
      engine.ForEachValue([&](CellId, const std::string& value) {
        std::uint64_t label = 0;
        ASSERT_EQ(value.size(), 8u);
        std::memcpy(&label, value.data(), 8);
        if (label == kLabel) ++labeled;
      });
      EXPECT_EQ(labeled, kPrVertices) << "seed " << seed;
      // Two stale-delta detectors. Conservation: every update the engine
      // processed must trace back to a message offered during THIS run — a
      // stale entry surviving the constructor's Clear would be popped
      // without ever being offered, breaking the identity. Totals: with a
      // fresh value map every vertex improves exactly once, so the offered
      // total is graph-determined (1 seed + each labeled vertex fanning out
      // once); replayed stale deltas would re-propagate and inflate it.
      // (Exact per-meter equality is deliberately NOT asserted: recovery
      // may move trunks, which legally reshapes the coalescing pattern.)
      EXPECT_EQ(stats.updates + stats.coalesced_updates +
                    stats.epsilon_dropped,
                stats.messages)
          << "seed " << seed;
      EXPECT_EQ(stats.messages, baseline.messages) << "seed " << seed;
      done = true;
      break;
    }
    ASSERT_TRUE(s.IsUnavailable()) << "seed " << seed << ": " << s.message();
    HealCluster(c);
  }
  ASSERT_TRUE(done) << "seed " << seed << ": run never completed";
}

// ------------------------------------------------------- Replication: KV

class ReplicatedKvChaosTest : public ::testing::TestWithParam<std::uint64_t> {
};

// Kill-during-replication: faults aimed squarely at the replication handler
// range (replica applies, installs, degraded reads, ISR shrinks) while a
// crash countdown runs against a random victim. Once a write is acked it
// must survive the failover — and the failover must never touch TFS.
TEST_P(ReplicatedKvChaosTest, AckedWritesSurviveKillDuringReplication) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewReplicatedCluster("rkv", seed, /*replication_factor=*/2);
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 11);

  net::FaultInjector::Policy flaky;
  flaky.call_fail_prob = 0.05;
  flaky.call_timeout_prob = 0.03;

  // Unique key per op: an unacked write's outcome is indeterminate (it may
  // have applied on the primary before the wire fault), so keys are never
  // reused and the audit only asserts on acknowledged ones.
  std::set<CellId> acked;
  CellId next_id = 0;
  const int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    c.injector->SetHandlerRangePolicy(cloud::kReplicaApplyHandler,
                                      cloud::kIsrShrinkHandler, flaky);
    const MachineId victim =
        static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
    c.injector->CrashAfter(victim, 1 + rng.Uniform(80));

    for (int op = 0; op < 60; ++op) {
      const CellId id = next_id++;
      const std::string value = "w" + std::to_string(id);
      if (c.cloud->PutCell(id, Slice(value)).ok()) acked.insert(id);
    }

    c.injector->ClearPolicies();
    DrainCrashSchedule(c, victim);
    HealReplicated(c);

    for (CellId id : acked) {
      std::string out;
      ASSERT_TRUE(c.cloud->GetCell(id, &out).ok())
          << "seed " << seed << ": acked cell " << id
          << " lost after crash of machine " << victim;
      ASSERT_EQ(out, "w" + std::to_string(id)) << "seed " << seed;
    }
  }
  // Every failover in this test was absorbed by in-memory replicas.
  EXPECT_EQ(c.cloud->recovery_stats().tfs_fallback_reloads, 0u)
      << "seed " << seed;
  EXPECT_GT(c.cloud->recovery_stats().promotions, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedKvChaosTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------- Replication: simultaneous failures

// k=2 places every trunk on three distinct machines of four, so any two
// simultaneous deaths leave at least one in-memory copy: one sweep promotes
// everything with zero TFS reads, then failback restores the full factor.
TEST(ReplicatedChaosTest, DoubleFailureThenFailbackRestoresFactor) {
  for (std::uint64_t s = 1; s <= 8; ++s) {
    const std::uint64_t seed = s + SeedOffset();
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ChaosCluster c =
        NewReplicatedCluster("double", seed, /*replication_factor=*/2);
    for (CellId id = 0; id < 96; ++id) {
      ASSERT_TRUE(c.cloud->PutCell(id, Slice("d" + std::to_string(id))).ok());
    }
    Random rng(seed * 0xd1342543de82ef95ULL + 5);
    const int n = c.cloud->num_slaves();
    const MachineId a = static_cast<MachineId>(rng.Uniform(n));
    MachineId b = static_cast<MachineId>(rng.Uniform(n - 1));
    if (b >= a) ++b;
    ASSERT_TRUE(c.cloud->FailMachine(a).ok());
    ASSERT_TRUE(c.cloud->FailMachine(b).ok());

    const tfs::Tfs::Stats before = c.tfs->stats();
    cloud::MemoryCloud::SweepReport report;
    EXPECT_EQ(c.cloud->DetectAndRecover(&report), 2) << "seed " << seed;
    EXPECT_TRUE(report.failed.empty()) << "seed " << seed;
    EXPECT_EQ(c.tfs->stats().files_read, before.files_read)
        << "seed " << seed << ": double-failure promotion read from TFS";
    EXPECT_EQ(c.cloud->recovery_stats().tfs_fallback_reloads, 0u);

    const cloud::AddressingTable& table = c.cloud->table();
    for (CellId id = 0; id < 96; ++id) {
      std::string out;
      ASSERT_TRUE(c.cloud->GetCell(id, &out).ok())
          << "seed " << seed << ": cell " << id << " lost (victims " << a
          << "," << b << ")";
      ASSERT_EQ(out, "d" + std::to_string(id));
    }
    // Two survivors can host only one replica per trunk: graceful degraded
    // factor, never zero.
    for (TrunkId t = 0; t < table.num_slots(); ++t) {
      EXPECT_EQ(table.replicas_of_trunk(t).size(), 1u) << "trunk " << t;
    }

    // Failback: the restarted machines rejoin, primaries rebalance onto
    // them, and re-replication converges the factor back to exactly k.
    ASSERT_TRUE(c.cloud->RestartMachine(a).ok());
    ASSERT_TRUE(c.cloud->RestartMachine(b).ok());
    c.cloud->RebalanceTrunks();
    c.cloud->DetectAndRecover();
    for (TrunkId t = 0; t < table.num_slots(); ++t) {
      const auto& replicas = table.replicas_of_trunk(t);
      ASSERT_EQ(replicas.size(), 2u)
          << "seed " << seed << ": trunk " << t << " not back to factor 2";
      std::set<MachineId> holders(replicas.begin(), replicas.end());
      holders.insert(table.machine_of_trunk(t));
      EXPECT_EQ(holders.size(), 3u) << "trunk " << t;
    }
    for (CellId id = 0; id < 96; ++id) {
      std::string out;
      ASSERT_TRUE(c.cloud->GetCell(id, &out).ok()) << "after failback";
      ASSERT_EQ(out, "d" + std::to_string(id));
    }
    ASSERT_TRUE(c.cloud->PutCell(0, Slice("post-failback")).ok());
  }
}

// ------------------------------------------- Replication: fencing (split)

// Split-brain: a primary partitioned away from the whole cluster is deposed
// in absentia (epoch bump). When the partition heals, the stale primary
// still holds its pre-promotion table — its next write self-routes, applies
// to its ghost image, and the replication fan-out reaches a machine with a
// newer epoch, which must fence it. The acked state of the new primary is
// never perturbed.
TEST(ReplicatedChaosTest, StalePrimaryIsFencedAfterPartitionPromotion) {
  const std::uint64_t seed = 77001 + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c =
      NewReplicatedCluster("split", seed, /*replication_factor=*/2);
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("s" + std::to_string(id))).ok());
  }
  // A non-leader victim: the leader side keeps quorum and promotes.
  const MachineId victim = 2;
  const CellId contested = [&] {
    for (CellId id = 0; id < 64; ++id) {
      if (c.cloud->MachineOf(id) == victim) return id;
    }
    ADD_FAILURE() << "no cell owned by victim";
    return CellId{0};
  }();

  std::vector<MachineId> minority{victim};
  std::vector<MachineId> majority;
  for (MachineId m = 0; m <= c.cloud->client_id(); ++m) {
    if (m != victim) majority.push_back(m);
  }
  c.injector->Partition(minority, majority);

  // The sweep cannot reach the victim and promotes its trunks. The victim's
  // endpoint never went down — it is a live, deposed zombie.
  c.cloud->DetectAndRecover();
  EXPECT_TRUE(c.cloud->fabric().IsMachineUp(victim));
  EXPECT_TRUE(c.cloud->table().trunks_of(victim).empty())
      << "victim still owns trunks after partition promotion";

  // Heal the network. The deposed primary can reach everyone again but was
  // excluded from table broadcasts while partitioned: it still believes it
  // owns its old trunks.
  c.injector->ClearPartitions();
  const std::uint64_t fenced_before = c.cloud->recovery_stats().fenced_writes;
  Status stale = c.cloud->PutCellFrom(victim, contested, Slice("split-brain"));
  EXPECT_TRUE(stale.IsAborted())
      << "stale primary acked a write after promotion: " << stale.message();
  EXPECT_GT(c.cloud->recovery_stats().fenced_writes, fenced_before);

  // The cluster's view of the contested cell is untouched.
  std::string out;
  ASSERT_TRUE(c.cloud->GetCell(contested, &out).ok());
  EXPECT_EQ(out, "s" + std::to_string(contested));

  // The fenced zombie rejoins cleanly: restart discards its ghost image,
  // re-replication folds it back in, and writes from it route correctly.
  ASSERT_TRUE(c.cloud->RestartMachine(victim).ok());
  c.cloud->DetectAndRecover();
  ASSERT_TRUE(
      c.cloud->PutCellFrom(victim, contested, Slice("rejoined")).ok());
  ASSERT_TRUE(c.cloud->GetCell(contested, &out).ok());
  EXPECT_EQ(out, "rejoined");
}

// -------------------------------------- Replication: BSP checkpoint e2e

// Integer (fixed-point) PageRank: message folding is an exact sum, so final
// ranks are reproducible bit for bit even when a failover reshuffles vertex
// ownership mid-run (message arrival order may change; their sum cannot).
compute::BspEngine::Program FixedPointPageRankProgram() {
  return [](compute::BspEngine::VertexContext& ctx) {
    std::uint64_t rank = 1000000;  // 1.0 in micro-units.
    if (ctx.superstep() > 0) {
      std::uint64_t sum = 0;
      for (Slice m : ctx.messages()) {
        std::uint64_t v = 0;
        std::memcpy(&v, m.data(), 8);
        sum += v;
      }
      rank = 150000 + (sum * 85) / 100;
    }
    ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
    if (ctx.out_count() > 0) {
      const std::uint64_t share =
          rank / static_cast<std::uint64_t>(ctx.out_count());
      char buf[8];
      std::memcpy(buf, &share, 8);
      ctx.SendToAllOut(Slice(buf, 8));
    }
  };
}

// The full robustness story end to end: a checkpointing PageRank is killed
// mid-superstep, the cloud promotes replicas (zero TFS trunk reads — only
// the checkpoint file itself is ever read back), and a fresh engine resumes
// from the last checkpoint to ranks bit-identical to a crash-free run.
TEST(ReplicatedBspCheckpointTest, CrashMidRunRestoresBitIdentical) {
  int restored_runs = 0;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    const std::uint64_t seed = s + SeedOffset();
    SCOPED_TRACE("chaos seed " + std::to_string(seed));

    compute::BspEngine::Options bopts;
    bopts.superstep_limit = kPrSupersteps;
    bopts.checkpoint_interval = 1;
    bopts.checkpoint_prefix = "ck";
    graph::Graph::Options gopts;
    gopts.track_inlinks = false;

    // Crash-free baseline, same engine configuration.
    std::map<CellId, std::string> expected;
    {
      ChaosCluster base =
          NewReplicatedCluster("bspck_base", seed, /*replication_factor=*/2);
      graph::Graph base_graph(base.cloud.get(), gopts);
      BuildPageRankGraph(&base_graph);
      compute::BspEngine::Options opts = bopts;
      opts.tfs = base.tfs.get();
      compute::BspEngine engine(&base_graph, opts);
      compute::BspEngine::RunStats stats;
      ASSERT_TRUE(engine.Run(FixedPointPageRankProgram(), &stats).ok());
      engine.ForEachValue([&](CellId v, const std::string& value) {
        expected[v] = value;
      });
    }
    ASSERT_EQ(expected.size(), static_cast<std::size_t>(kPrVertices));

    ChaosCluster c =
        NewReplicatedCluster("bspck", seed, /*replication_factor=*/2);
    graph::Graph graph(c.cloud.get(), gopts);
    BuildPageRankGraph(&graph);
    Random rng(seed * 0x2545f4914f6cdd1dULL + 13);
    const MachineId victim =
        static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
    // A full run touches each machine only ~100 times, so the countdown sits
    // in [20, 90): past the first checkpoint, before the final superstep.
    c.injector->CrashAfter(victim, 20 + rng.Uniform(70));

    bopts.tfs = c.tfs.get();
    std::map<CellId, std::string> got;
    bool done = false;
    for (int attempt = 0; attempt < 6 && !done; ++attempt) {
      const bool had_checkpoint = c.tfs->Exists("ck/state");
      // A fresh engine per attempt: ownership may have shifted under the
      // failover, and the engine snapshots the table at construction.
      compute::BspEngine engine(&graph, bopts);
      compute::BspEngine::RunStats stats;
      Status st = engine.Run(FixedPointPageRankProgram(), &stats);
      if (st.ok()) {
        if (had_checkpoint) {
          EXPECT_TRUE(stats.restored_from_checkpoint)
              << "seed " << seed
              << ": checkpoint existed but the run started from scratch";
        }
        if (stats.restored_from_checkpoint) ++restored_runs;
        engine.ForEachValue([&](CellId v, const std::string& value) {
          got[v] = value;
        });
        done = true;
        break;
      }
      ASSERT_TRUE(st.IsUnavailable()) << "seed " << seed << ": "
                                      << st.message();
      HealReplicated(c);  // Asserts zero TFS reads on the promotion path.
    }
    ASSERT_TRUE(done) << "seed " << seed << ": run never completed";
    EXPECT_EQ(got, expected)
        << "seed " << seed << ": ranks not bit-identical after recovery";
    EXPECT_EQ(c.cloud->recovery_stats().tfs_fallback_reloads, 0u)
        << "seed " << seed;
  }
  EXPECT_GT(restored_runs, 0)
      << "no seed in the sweep exercised a checkpoint restore";
}

// ------------------------------------ Replication: concurrent readers

class ReplicatedConcurrentReadChaosTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Readers hammer the lock-free hot path — shared trunk locks, RCU routing
// snapshots, and batched MultiGet — while the main thread kills and heals a
// seed-chosen victim each round. Cell values never change after the initial
// load, so every read must either return the exact loaded bytes or fail
// cleanly; a read that returns *wrong* bytes (torn copy, stale-routed ghost
// image) is precisely the bug this test exists to catch. The fault schedule
// is deterministic per seed; the reader interleaving is not, so every
// assertion is an invariant that holds under any interleaving.
TEST_P(ReplicatedConcurrentReadChaosTest, ReadersSurviveFailoverRounds) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c =
      NewReplicatedCluster("crdr", seed, /*replication_factor=*/1);

  constexpr CellId kCells = 96;
  auto value_of = [](CellId id) { return "r" + std::to_string(id); };
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice(value_of(id))).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wrong{0};
  std::atomic<std::uint64_t> ok_reads{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Random rng(seed * 0x9e3779b97f4a7c15ULL + 101 + t);
      while (!stop.load(std::memory_order_acquire)) {
        if (t == 0) {
          // Batched path: one MultiGet over a contiguous window of ids.
          std::vector<CellId> ids;
          const CellId base = static_cast<CellId>(rng.Uniform(kCells));
          for (CellId i = 0; i < 16; ++i) ids.push_back((base + i) % kCells);
          std::vector<cloud::MemoryCloud::MultiGetResult> out;
          if (!c.cloud->MultiGet(ids, &out).ok()) continue;
          for (std::size_t i = 0; i < ids.size(); ++i) {
            if (!out[i].status.ok()) continue;  // Clean miss mid-failover.
            ok_reads.fetch_add(1, std::memory_order_relaxed);
            if (out[i].value != value_of(ids[i])) {
              wrong.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          const CellId id = static_cast<CellId>(rng.Uniform(kCells));
          std::string v;
          if (!c.cloud->GetCell(id, &v).ok()) continue;
          ok_reads.fetch_add(1, std::memory_order_relaxed);
          if (v != value_of(id)) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  Random rng(seed * 0x2545f4914f6cdd1dULL + 17);
  const int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const MachineId victim =
        static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
    ASSERT_TRUE(c.cloud->FailMachine(victim).ok());
    // A degraded window: readers keep running against in-memory replicas
    // while the owner is down; the main thread joins the traffic so the
    // window is never empty even if the reader threads are descheduled.
    for (int op = 0; op < 200; ++op) {
      std::string v;
      const CellId id = static_cast<CellId>(rng.Uniform(kCells));
      if (c.cloud->GetCell(id, &v).ok()) {
        ASSERT_EQ(v, value_of(id)) << "seed " << seed << " cell " << id;
      }
    }
    HealReplicated(c);  // Asserts zero TFS reads on the promotion path.
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0u)
      << "seed " << seed << ": a concurrent reader observed wrong bytes";
  EXPECT_GT(ok_reads.load(), 0u) << "seed " << seed;
  EXPECT_GT(c.cloud->recovery_stats().degraded_reads, 0u)
      << "seed " << seed << ": no read was ever served degraded";

  // Final audit on the healed cluster: nothing lost, nothing mutated.
  for (CellId id = 0; id < kCells; ++id) {
    std::string v;
    ASSERT_TRUE(c.cloud->GetCell(id, &v).ok())
        << "seed " << seed << ": cell " << id << " lost";
    ASSERT_EQ(v, value_of(id)) << "seed " << seed;
  }
  std::vector<CellId> all;
  for (CellId id = 0; id < kCells; ++id) all.push_back(id);
  std::vector<cloud::MemoryCloud::MultiGetResult> out;
  ASSERT_TRUE(c.cloud->MultiGet(all, &out).ok());
  for (CellId id = 0; id < kCells; ++id) {
    ASSERT_TRUE(out[id].status.ok()) << "seed " << seed << " cell " << id;
    ASSERT_EQ(out[id].value, value_of(id)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatedConcurrentReadChaosTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ----------------------------------------------------------- Determinism

// The replayability contract: two clusters driven by the same seed and the
// same workload make byte-identical fault decisions — the printed seed of a
// failing chaos run is a complete reproducer.
TEST(ChaosDeterminismTest, SameSeedSameFaultSequence) {
  const std::uint64_t seed = 424242 + SeedOffset();
  auto run = [&](const std::string& tag) {
    ChaosCluster c = NewCluster(tag, seed);
    net::FaultInjector::Policy wire;
    wire.call_fail_prob = 0.1;
    wire.call_timeout_prob = 0.1;
    wire.drop_prob = 0.1;
    c.injector->SetDefaultPolicy(wire);
    c.injector->CrashAfter(2, 100);
    Random rng(seed);
    std::string acked;
    for (int op = 0; op < 250; ++op) {
      const CellId id = static_cast<CellId>(rng.Uniform(32));
      if (c.cloud->PutCell(id, Slice("x" + std::to_string(op))).ok()) {
        acked += std::to_string(op) + ",";
      }
    }
    const net::FaultInjector::Stats fs = c.injector->stats();
    const net::NetworkStats ns = c.cloud->fabric().stats();
    return std::make_tuple(acked, fs.failed_calls, fs.timed_out_calls,
                           fs.dropped, fs.crashes, ns.sync_calls,
                           ns.injected_call_failures, ns.injected_crashes);
  };
  EXPECT_EQ(run("det_a"), run("det_b"));
}

}  // namespace
}  // namespace trinity
