// Tests for the extension surfaces the paper sketches beyond the core:
// MultiOp mini-transactions (§4.4), TQL (§4.2), StructEdge/HyperEdge
// modeling (§4.1), the proxy tier (§2), and trunk-level parallelism (§3).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cloud/multiop.h"
#include "graph/generators.h"
#include "graph/rich_edges.h"
#include "query/tql.h"

namespace trinity {
namespace {

bool CellExists(cloud::MemoryCloud* cloud, CellId id) {
  bool exists = false;
  EXPECT_TRUE(cloud->Contains(id, &exists).ok());
  return exists;
}

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4,
                                             int proxies = 0) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.num_proxies = proxies;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

// ---------------------------------------------------------------- MultiOp

TEST(MultiOpTest, GuardedSwapAppliesAtomically) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("alice:100")).ok());
  ASSERT_TRUE(cloud->AddCell(2, Slice("bob:50")).ok());
  cloud::MultiOp op(cloud.get());
  op.CompareEquals(1, Slice("alice:100"))
      .CompareEquals(2, Slice("bob:50"))
      .Put(1, Slice("alice:70"))
      .Put(2, Slice("bob:80"));
  ASSERT_TRUE(op.Execute().ok());
  std::string a, b;
  ASSERT_TRUE(cloud->GetCell(1, &a).ok());
  ASSERT_TRUE(cloud->GetCell(2, &b).ok());
  EXPECT_EQ(a, "alice:70");
  EXPECT_EQ(b, "bob:80");
}

TEST(MultiOpTest, FailedGuardAppliesNothing) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("v1")).ok());
  ASSERT_TRUE(cloud->AddCell(2, Slice("v2")).ok());
  cloud::MultiOp op(cloud.get());
  op.CompareEquals(1, Slice("WRONG")).Put(1, Slice("x")).Remove(2);
  EXPECT_TRUE(op.Execute().IsAborted());
  std::string v;
  ASSERT_TRUE(cloud->GetCell(1, &v).ok());
  EXPECT_EQ(v, "v1");
  EXPECT_TRUE(CellExists(cloud.get(), 2));
}

TEST(MultiOpTest, ExistenceGuards) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("present")).ok());
  cloud::MultiOp creates(cloud.get());
  creates.CompareAbsent(5).Put(5, Slice("created"));
  ASSERT_TRUE(creates.Execute().ok());
  EXPECT_TRUE(CellExists(cloud.get(), 5));
  // Running the same guarded create again aborts.
  cloud::MultiOp again(cloud.get());
  again.CompareAbsent(5).Put(5, Slice("clobber"));
  EXPECT_TRUE(again.Execute().IsAborted());
  cloud::MultiOp needs_existing(cloud.get());
  needs_existing.CompareExists(999).Put(1, Slice("x"));
  EXPECT_TRUE(needs_existing.Execute().IsAborted());
}

TEST(MultiOpTest, AppendAndRemoveActions) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("log:")).ok());
  ASSERT_TRUE(cloud->AddCell(2, Slice("temp")).ok());
  cloud::MultiOp op(cloud.get());
  op.CompareExists(1).Append(1, Slice("entry1;")).Remove(2);
  ASSERT_TRUE(op.Execute().ok());
  std::string v;
  ASSERT_TRUE(cloud->GetCell(1, &v).ok());
  EXPECT_EQ(v, "log:entry1;");
  EXPECT_FALSE(CellExists(cloud.get(), 2));
}

TEST(MultiOpTest, CompareAndSwapHelper) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(7, Slice("old")).ok());
  ASSERT_TRUE(cloud::MultiOp::CompareAndSwap(cloud.get(), 7, Slice("old"),
                                             Slice("new"))
                  .ok());
  EXPECT_TRUE(cloud::MultiOp::CompareAndSwap(cloud.get(), 7, Slice("old"),
                                             Slice("newer"))
                  .IsAborted());
  std::string v;
  ASSERT_TRUE(cloud->GetCell(7, &v).ok());
  EXPECT_EQ(v, "new");
}

TEST(MultiOpTest, GuardFailureCarriesSubcode) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("actual")).ok());
  cloud::MultiOp op(cloud.get());
  op.CompareEquals(1, Slice("expected")).Put(1, Slice("next"));
  const Status s = op.Execute();
  EXPECT_TRUE(s.IsGuardFailed()) << s.ToString();
  EXPECT_FALSE(s.IsRetryable());  // Caller owns the re-read decision.
}

// Regression: single-cell Put/Remove used to bypass the MultiOp stripe
// table, so a racing bare write could land *between* guard evaluation and
// action apply — the guard checked "counter == 0", the racer wrote
// "poison", and the MultiOp then blindly overwrote it, violating the
// compare-and-swap contract. The phase hook below interleaves exactly that
// window deterministically: with the shared CellStripes table the racing
// Put must block until the MultiOp finishes, so it lands strictly after and
// its value wins.
TEST(MultiOpTest, SingleCellWriteCannotSplitGuardAndApply) {
  auto cloud = NewCloud();
  ASSERT_TRUE(cloud->AddCell(1, Slice("0")).ok());

  std::atomic<bool> racer_done{false};
  std::thread racer;
  cloud::MultiOp op(cloud.get());
  op.CompareEquals(1, Slice("0")).Put(1, Slice("1"));
  op.SetPhaseHookForTest([&] {
    // Guards have passed; actions not yet applied. Launch a bare Put of the
    // same cell and give it ample real time to run. Pre-fix it slipped in
    // here and was silently clobbered; post-fix it blocks on the stripe.
    racer = std::thread([&] {
      EXPECT_TRUE(cloud->PutCell(1, Slice("racer")).ok());
      racer_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(racer_done.load())
        << "bare Put overtook a MultiOp inside its critical section";
  });
  ASSERT_TRUE(op.Execute().ok());
  racer.join();

  // Serialized order: MultiOp fully first, then the racer's Put.
  std::string v;
  ASSERT_TRUE(cloud->GetCell(1, &v).ok());
  EXPECT_EQ(v, "racer");
}

TEST(MultiOpTest, ConcurrentCountersStayConsistent) {
  auto cloud = NewCloud();
  // Two counters whose sum must stay 0: concurrent +1/-1 MultiOps.
  ASSERT_TRUE(cloud->AddCell(1, Slice("0")).ok());
  ASSERT_TRUE(cloud->AddCell(2, Slice("0")).ok());
  auto read = [&](CellId id) {
    std::string v;
    EXPECT_TRUE(cloud->GetCell(id, &v).ok());
    return std::stoll(v);
  };
  std::atomic<int> applied{0};
  auto worker = [&](int delta) {
    for (int i = 0; i < 200; ++i) {
      for (;;) {
        // Optimistic read + guarded swap: retry on Aborted.
        std::string a, b;
        if (!cloud->GetCell(1, &a).ok() || !cloud->GetCell(2, &b).ok()) {
          continue;
        }
        cloud::MultiOp op(cloud.get());
        op.CompareEquals(1, Slice(a))
            .CompareEquals(2, Slice(b))
            .Put(1, Slice(std::to_string(std::stoll(a) + delta)))
            .Put(2, Slice(std::to_string(std::stoll(b) - delta)));
        if (op.Execute().ok()) {
          applied.fetch_add(1);
          break;
        }
      }
    }
  };
  std::thread plus(worker, 1), minus(worker, -1);
  plus.join();
  minus.join();
  EXPECT_EQ(applied.load(), 400);
  EXPECT_EQ(read(1) + read(2), 0);
}

// ------------------------------------------------------------------- TQL

class TqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cloud_ = NewCloud();
    graph_ = std::make_unique<graph::Graph>(cloud_.get());
    // 0 -> 1(David) -> 2(Erin) -> 3(David); 0 -> 4(Bob).
    ASSERT_TRUE(graph_->AddNode(0, Slice("Alice")).ok());
    ASSERT_TRUE(graph_->AddNode(1, Slice("David")).ok());
    ASSERT_TRUE(graph_->AddNode(2, Slice("Erin")).ok());
    ASSERT_TRUE(graph_->AddNode(3, Slice("David")).ok());
    ASSERT_TRUE(graph_->AddNode(4, Slice("Bob")).ok());
    ASSERT_TRUE(graph_->AddEdge(0, 1).ok());
    ASSERT_TRUE(graph_->AddEdge(1, 2).ok());
    ASSERT_TRUE(graph_->AddEdge(2, 3).ok());
    ASSERT_TRUE(graph_->AddEdge(0, 4).ok());
    tql_ = std::make_unique<query::Tql>(graph_.get());
  }
  std::unique_ptr<cloud::MemoryCloud> cloud_;
  std::unique_ptr<graph::Graph> graph_;
  std::unique_ptr<query::Tql> tql_;
};

TEST_F(TqlTest, ExploreWithNameFilter) {
  query::Tql::Result result;
  ASSERT_TRUE(
      tql_->Execute("EXPLORE FROM 0 HOPS 1..3 WHERE NAME = 'David'", &result)
          .ok());
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][2], "David");
  EXPECT_EQ(result.columns,
            (std::vector<std::string>{"node", "hops", "name"}));
}

TEST_F(TqlTest, MinHopsExcludesNearMatches) {
  query::Tql::Result result;
  ASSERT_TRUE(
      tql_->Execute("explore from 0 hops 2..3 where name = 'David'", &result)
          .ok());
  ASSERT_EQ(result.rows.size(), 1u);  // Only the David at depth 3.
  EXPECT_EQ(result.rows[0][0], "3");
}

TEST_F(TqlTest, CountAndLimit) {
  query::Tql::Result result;
  ASSERT_TRUE(tql_->Execute("COUNT FROM 0 HOPS 1..3", &result).ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "4");  // 1, 4, 2, 3.
  ASSERT_TRUE(tql_->Execute("EXPLORE FROM 0 HOPS 1..3 LIMIT 2", &result).ok());
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(TqlTest, NeighborsAndNode) {
  query::Tql::Result result;
  ASSERT_TRUE(tql_->Execute("NEIGHBORS OF 0 OUT", &result).ok());
  EXPECT_EQ(result.rows.size(), 2u);
  ASSERT_TRUE(tql_->Execute("NEIGHBORS OF 1 IN", &result).ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0], "0");
  ASSERT_TRUE(tql_->Execute("NODE 1", &result).ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][1], "David");
  EXPECT_EQ(result.rows[0][2], "1");  // Out-degree.
}

TEST_F(TqlTest, PathQueries) {
  query::Tql::Result result;
  ASSERT_TRUE(tql_->Execute("PATH FROM 0 TO 3", &result).ok());
  EXPECT_EQ(result.rows[0][2], "3");
  ASSERT_TRUE(tql_->Execute("PATH FROM 0 TO 3 MAXHOPS 2", &result).ok());
  EXPECT_EQ(result.rows[0][2], "unreachable");
  ASSERT_TRUE(tql_->Execute("PATH FROM 4 TO 1", &result).ok());
  EXPECT_EQ(result.rows[0][2], "unreachable");
}

TEST_F(TqlTest, SyntaxErrorsAreInvalidArgument) {
  query::Tql::Result result;
  EXPECT_TRUE(tql_->Execute("FROBNICATE 1", &result).IsInvalidArgument());
  EXPECT_TRUE(tql_->Execute("EXPLORE FROM x", &result).IsInvalidArgument());
  EXPECT_TRUE(
      tql_->Execute("EXPLORE FROM 0 HOPS 3..1", &result).IsInvalidArgument());
  EXPECT_TRUE(tql_->Execute("EXPLORE FROM 0 HOPS 1..2 WHERE NAME = David",
                            &result)
                  .IsInvalidArgument());
}

TEST_F(TqlTest, FormatRendersTable) {
  query::Tql::Result result;
  ASSERT_TRUE(tql_->Execute("NODE 1", &result).ok());
  const std::string table = query::Tql::Format(result);
  EXPECT_NE(table.find("node"), std::string::npos);
  EXPECT_NE(table.find("David"), std::string::npos);
  EXPECT_NE(table.find("1 rows"), std::string::npos);
}

// ------------------------------------------------------------- Rich edges

TEST(RichEdgesTest, StructEdgeRoundTrip) {
  auto cloud = NewCloud();
  graph::Graph graph(cloud.get());
  graph::RichEdges rich(&graph);
  ASSERT_TRUE(graph.AddNode(1, Slice("paper A")).ok());
  ASSERT_TRUE(graph.AddNode(2, Slice("paper B")).ok());
  const CellId kEdgeBase = 1ull << 32;  // Edge ids in their own range.
  ASSERT_TRUE(
      rich.AddStructEdge(kEdgeBase, 1, 2, Slice("cites, 2013")).ok());
  graph::StructEdge edge;
  ASSERT_TRUE(rich.GetStructEdge(kEdgeBase, &edge).ok());
  EXPECT_EQ(edge.from, 1u);
  EXPECT_EQ(edge.to, 2u);
  EXPECT_EQ(edge.data, "cites, 2013");
  // The node's out-list holds the edge id.
  std::vector<graph::StructEdge> out;
  ASSERT_TRUE(rich.GetStructOutEdges(1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2u);
  // Rich data is mutable.
  ASSERT_TRUE(rich.SetStructEdgeData(kEdgeBase, Slice("updated")).ok());
  ASSERT_TRUE(rich.GetStructEdge(kEdgeBase, &edge).ok());
  EXPECT_EQ(edge.data, "updated");
}

TEST(RichEdgesTest, StructEdgeValidation) {
  auto cloud = NewCloud();
  graph::Graph graph(cloud.get());
  graph::RichEdges rich(&graph);
  ASSERT_TRUE(graph.AddNode(1, Slice()).ok());
  EXPECT_TRUE(rich.AddStructEdge(100, 1, 999, Slice()).IsNotFound());
  graph::StructEdge edge;
  EXPECT_TRUE(rich.GetStructEdge(1, &edge).IsCorruption());  // A node cell.
}

TEST(RichEdgesTest, HyperEdgeRoundTripAndGrowth) {
  auto cloud = NewCloud();
  graph::Graph graph(cloud.get());
  graph::RichEdges rich(&graph);
  for (CellId v = 1; v <= 4; ++v) {
    ASSERT_TRUE(graph.AddNode(v, Slice()).ok());
  }
  const CellId kEdge = 1ull << 33;
  ASSERT_TRUE(rich.AddHyperEdge(kEdge, {1, 2, 3}, Slice("committee")).ok());
  graph::HyperEdge edge;
  ASSERT_TRUE(rich.GetHyperEdge(kEdge, &edge).ok());
  EXPECT_EQ(edge.members, (std::vector<CellId>{1, 2, 3}));
  EXPECT_EQ(edge.data, "committee");
  // Growing the hyperedge is an append on both sides.
  ASSERT_TRUE(rich.AddMemberToHyperEdge(kEdge, 4).ok());
  ASSERT_TRUE(rich.GetHyperEdge(kEdge, &edge).ok());
  EXPECT_EQ(edge.members.size(), 4u);
  std::vector<CellId> out;
  ASSERT_TRUE(graph.GetOutlinks(4, &out).ok());
  EXPECT_EQ(out, (std::vector<CellId>{kEdge}));
  EXPECT_TRUE(rich.AddHyperEdge(kEdge + 1, {}, Slice()).IsInvalidArgument());
}

// ------------------------------------------------------------ Proxy tier

TEST(ProxyTest, ProxyAggregatesFanOut) {
  // Paper §2: "a proxy may serve as an information aggregator: it
  // dispatches requests from clients to slaves and sends results back to
  // the clients after aggregating partial results."
  auto cloud = NewCloud(/*slaves=*/4, /*proxies=*/1);
  const MachineId proxy = 4;  // First id after the slaves.
  ASSERT_TRUE(cloud->IsProxy(proxy));
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(cloud->AddCell(id, Slice("x")).ok());
  }
  // Each slave answers with its local cell count; the proxy fans out,
  // aggregates, and serves the client.
  net::Fabric& fabric = cloud->fabric();
  constexpr net::HandlerId kCountCells = cloud::kUserHandlerBase + 7;
  constexpr net::HandlerId kAggregate = cloud::kUserHandlerBase + 8;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    fabric.RegisterSyncHandler(
        m, kCountCells,
        [cloud = cloud.get(), m](MachineId, Slice, std::string* response) {
          *response =
              std::to_string(cloud->storage(m)->TotalCellCount());
          return Status::OK();
        });
  }
  fabric.RegisterSyncHandler(
      proxy, kAggregate,
      [cloud = cloud.get(), proxy](MachineId, Slice, std::string* response) {
        std::uint64_t total = 0;
        for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
          std::string partial;
          Status s = cloud->fabric().Call(proxy, m,
                                          cloud::kUserHandlerBase + 7,
                                          Slice(), &partial);
          if (!s.ok()) return s;
          total += std::stoull(partial);
        }
        *response = std::to_string(total);
        return Status::OK();
      });
  std::string answer;
  ASSERT_TRUE(fabric
                  .Call(cloud->client_id(), proxy, kAggregate, Slice(),
                        &answer)
                  .ok());
  EXPECT_EQ(answer, "100");
  // Proxies own no data.
  EXPECT_EQ(cloud->storage(proxy), nullptr);
}

// -------------------------------------------------- Trunk-level parallelism

TEST(TrunkParallelismTest, ConcurrentWritesToDistinctTrunks) {
  // §3: a machine's memory is split into multiple trunks so "trunk level
  // parallelism can be achieved without any overhead of locking".
  storage::MemoryStorage::Options options;
  options.trunk.capacity = 8 << 20;
  storage::MemoryStorage storage(options);
  const int kTrunks = 8;
  for (TrunkId t = 0; t < kTrunks; ++t) {
    ASSERT_TRUE(storage.AttachTrunk(t).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTrunks; ++t) {
    threads.emplace_back([&storage, &failures, t] {
      storage::MemoryTrunk* trunk = storage.trunk(t);
      for (CellId id = 0; id < 2000; ++id) {
        if (!trunk->AddCell(id, Slice("concurrent")).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(storage.TotalCellCount(), 2000u * kTrunks);
}

TEST(TrunkParallelismTest, ConcurrentMixedOpsOnOneTrunkStayCoherent) {
  storage::MemoryStorage::Options options;
  options.trunk.capacity = 8 << 20;
  storage::MemoryStorage storage(options);
  ASSERT_TRUE(storage.AttachTrunk(0).ok());
  storage::MemoryTrunk* trunk = storage.trunk(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([trunk, t] {
      // Disjoint id ranges per thread; shared trunk structures.
      const CellId base = static_cast<CellId>(t) * 100000;
      for (CellId i = 0; i < 1000; ++i) {
        (void)trunk->AddCell(base + i, Slice("a"));
        (void)trunk->AppendToCell(base + i, Slice("b"));
        if (i % 3 == 0) (void)trunk->RemoveCell(base + i);
        if (i % 97 == 0) trunk->Defragment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Survivors hold exactly "ab".
  for (int t = 0; t < 4; ++t) {
    const CellId base = static_cast<CellId>(t) * 100000;
    for (CellId i = 0; i < 1000; ++i) {
      std::string v;
      if (trunk->GetCell(base + i, &v).ok()) {
        ASSERT_EQ(v, "ab");
      } else {
        ASSERT_EQ(i % 3, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace trinity
