// End-to-end scenarios spanning the full stack: TSL-modelled data in the
// memory cloud, analytics and online queries over generated graphs, and
// fault injection in the middle of a workload.

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/pagerank.h"
#include "algos/people_search.h"
#include "algos/wcc.h"
#include "graph/generators.h"
#include "tsl/cell_io.h"
#include "tsl/protocol.h"

namespace trinity {
namespace {

TEST(IntegrationTest, SocialNetworkWorkload) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 8;
  options.p_bits = 5;
  options.storage.trunk.capacity = 8 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  graph::Graph graph(cloud.get());
  const auto edges = graph::Generators::PowerLaw(2000, 8.0, 2.16, 99);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, true, 99).ok());

  // Online: 2-hop people search.
  algos::PeopleSearchOptions search_options;
  search_options.max_hops = 2;
  algos::PeopleSearchResult search;
  ASSERT_TRUE(
      algos::RunPeopleSearch(&graph, 0, "David", search_options, &search)
          .ok());

  // Offline: PageRank on the same deployment.
  algos::PageRankOptions pr_options;
  pr_options.iterations = 5;
  algos::PageRankResult pagerank;
  ASSERT_TRUE(algos::RunPageRank(&graph, pr_options, &pagerank).ok());
  EXPECT_EQ(pagerank.ranks.size(), 2000u);

  // Offline: connected components.
  algos::WccResult wcc;
  ASSERT_TRUE(algos::RunWcc(&graph, algos::WccOptions{}, &wcc).ok());
  EXPECT_GE(wcc.num_components, 1u);
  EXPECT_EQ(wcc.component.size(), 2000u);
}

TEST(IntegrationTest, FaultInjectionMidWorkload) {
  const std::string root = ::testing::TempDir() + "/integration_ft";
  std::filesystem::remove_all(root);
  tfs::Tfs::Options tfs_options;
  tfs_options.root = root;
  std::unique_ptr<tfs::Tfs> tfs;
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());

  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  options.tfs = tfs.get();
  options.buffered_logging = true;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  graph::Graph graph(cloud.get());
  const auto edges = graph::Generators::Rmat(500, 5.0, 7);
  ASSERT_TRUE(graph::Generators::Load(&graph, edges, true, 7).ok());
  ASSERT_TRUE(cloud->SaveSnapshot().ok());

  // Post-snapshot updates that must survive through buffered logging.
  ASSERT_TRUE(graph.AddNode(9000, Slice("late")).ok());
  ASSERT_TRUE(graph.AddEdge(9000, 0).ok());

  ASSERT_TRUE(cloud->FailMachine(1).ok());
  // Workload continues: access-triggered recovery kicks in transparently.
  std::vector<CellId> out;
  for (CellId v = 0; v < 500; ++v) {
    ASSERT_TRUE(graph.GetOutlinks(v, &out).ok()) << "vertex " << v;
  }
  ASSERT_TRUE(graph.GetOutlinks(9000, &out).ok());
  EXPECT_EQ(out, (std::vector<CellId>{0}));
  std::string data;
  ASSERT_TRUE(graph.GetNodeData(9000, &data).ok());
  EXPECT_EQ(data, "late");

  // Analytics after recovery still runs over the full graph.
  graph::Graph post_graph(cloud.get());
  algos::PageRankOptions pr_options;
  pr_options.iterations = 3;
  algos::PageRankResult pagerank;
  ASSERT_TRUE(algos::RunPageRank(&post_graph, pr_options, &pagerank).ok());
  EXPECT_EQ(pagerank.ranks.size(), 501u);
}

TEST(IntegrationTest, TslModeledMovieGraph) {
  // The paper's Fig 4 workflow end to end: declare schema in TSL, create
  // cells, manipulate through accessors, and message through a protocol.
  constexpr const char* kScript = R"(
    [CellType: NodeCell]
    cell struct Movie {
      string Name;
      [EdgeType: SimpleEdge, ReferencedCell: Actor]
      List<long> Actors;
    }
    [CellType: NodeCell]
    cell struct Actor {
      string Name;
      [EdgeType: SimpleEdge, ReferencedCell: Movie]
      List<long> Movies;
    }
    struct CountRequest { long MovieId; }
    struct CountResponse { long Actors; }
    protocol CountActors {
      Type: Syn;
      Request: CountRequest;
      Response: CountResponse;
    }
  )";
  tsl::SchemaRegistry registry;
  ASSERT_TRUE(tsl::SchemaRegistry::Compile(kScript, &registry).ok());

  cloud::MemoryCloud::Options options;
  options.num_slaves = 3;
  options.p_bits = 3;
  options.storage.trunk.capacity = 1 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  ASSERT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());

  const tsl::Schema* movie = registry.struct_schema("Movie");
  const tsl::Schema* actor = registry.struct_schema("Actor");
  const MachineId client = cloud->client_id();
  ASSERT_TRUE(tsl::NewCell(cloud.get(), client, 1, movie).ok());
  ASSERT_TRUE(tsl::NewCell(cloud.get(), client, 100, actor).ok());
  ASSERT_TRUE(tsl::NewCell(cloud.get(), client, 101, actor).ok());
  {
    tsl::ScopedCell cell;
    ASSERT_TRUE(
        tsl::ScopedCell::Use(cloud.get(), client, 1, movie, &cell).ok());
    ASSERT_TRUE(cell.accessor().SetString(0, Slice("The Matrix")).ok());
    ASSERT_TRUE(cell.accessor().AppendListInt64(1, 100).ok());
    ASSERT_TRUE(cell.accessor().AppendListInt64(1, 101).ok());
  }

  tsl::ProtocolRuntime runtime(&registry, cloud.get());
  cloud::MemoryCloud* cloud_ptr = cloud.get();
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    ASSERT_TRUE(
        runtime
            .RegisterSynHandler(
                m, "CountActors",
                [cloud_ptr, movie, m](MachineId,
                                      const tsl::CellAccessor& request,
                                      tsl::CellAccessor* response) {
                  std::int64_t movie_id = 0;
                  Status s = request.GetInt64(0, &movie_id);
                  if (!s.ok()) return s;
                  tsl::CellAccessor cell;
                  s = tsl::LoadCell(cloud_ptr, m,
                                    static_cast<CellId>(movie_id), movie,
                                    &cell);
                  if (!s.ok()) return s;
                  std::size_t n = 0;
                  s = cell.ListSize(1, &n);
                  if (!s.ok()) return s;
                  return response->SetInt64(0, static_cast<std::int64_t>(n));
                })
            .ok());
  }
  tsl::CellAccessor request = tsl::CellAccessor::NewDefault(
      registry.struct_schema("CountRequest"));
  ASSERT_TRUE(request.SetInt64(0, 1).ok());
  tsl::CellAccessor response;
  ASSERT_TRUE(runtime.Call(client, 0, "CountActors", request, &response).ok());
  std::int64_t actors = 0;
  ASSERT_TRUE(response.GetInt64(0, &actors).ok());
  EXPECT_EQ(actors, 2);
}

}  // namespace
}  // namespace trinity
