#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/serializer.h"
#include "common/slice.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/threadpool.h"

namespace trinity {
namespace {

// Prevents the optimizer from discarding busy-work loops in timing tests.
volatile double benchmarkish_sink = 0;

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing cell");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.ToString(), "NotFound: missing cell");
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::OutOfMemory("").IsOutOfMemory());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
}

TEST(SliceTest, BasicViews) {
  const std::string data = "hello world";
  Slice s(data);
  EXPECT_EQ(s.size(), data.size());
  EXPECT_EQ(s.ToString(), data);
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
  EXPECT_EQ(s[0], 'w');
}

TEST(SliceTest, Comparison) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice().Compare(Slice()), 0);
}

TEST(HashTest, TrunkHashCoversRange) {
  const int p = 6;
  std::vector<int> hits(1 << p, 0);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const std::uint32_t trunk = TrunkHash(key, p);
    ASSERT_LT(trunk, 1u << p);
    ++hits[trunk];
  }
  // Every trunk should receive a reasonable share (10000/64 ~ 156).
  for (int count : hits) {
    EXPECT_GT(count, 60);
    EXPECT_LT(count, 320);
  }
}

TEST(HashTest, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  EXPECT_NE(InTrunkHash(42), Mix64(42));
}

TEST(RandomTest, DeterministicUnderSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, PowerLawIsSkewed) {
  Random rng(3);
  const std::uint64_t max_value = 1000;
  int small = 0, large = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.PowerLaw(2.16, max_value);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, max_value);
    if (v <= 2) ++small;
    if (v >= 100) ++large;
  }
  // Power law with gamma ~2.16: most mass at the head, thin tail.
  EXPECT_GT(small, 10000);
  EXPECT_LT(large, 1500);
  EXPECT_GT(large, 0);
}

TEST(SerializerTest, RoundTripsAllTypes) {
  BinaryWriter writer;
  writer.PutU8(7);
  writer.PutU16(65535);
  writer.PutU32(123456);
  writer.PutU64(0xdeadbeefcafef00dULL);
  writer.PutI32(-42);
  writer.PutI64(-1234567890123LL);
  writer.PutDouble(3.25);
  writer.PutString("trinity");
  const std::string buffer = writer.Release();

  BinaryReader reader{Slice(buffer)};
  std::uint8_t u8;
  std::uint16_t u16;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int32_t i32;
  std::int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetU16(&u16));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI32(&i32));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetDouble(&d));
  ASSERT_TRUE(reader.GetString(&s));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "trinity");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializerTest, UnderflowFailsCleanly) {
  BinaryWriter writer;
  writer.PutU16(1);
  BinaryReader reader{Slice(writer.buffer())};
  std::uint64_t v;
  EXPECT_FALSE(reader.GetU64(&v));
  std::uint16_t u;
  EXPECT_TRUE(reader.GetU16(&u));
  EXPECT_FALSE(reader.GetU16(&u));
}

TEST(SerializerTest, BytesAreZeroCopyViews) {
  BinaryWriter writer;
  writer.PutBytes(Slice("payload"));
  const std::string buffer = writer.buffer();
  BinaryReader reader{Slice(buffer)};
  Slice view;
  ASSERT_TRUE(reader.GetBytes(&view));
  EXPECT_GE(view.data(), buffer.data());
  EXPECT_LT(view.data(), buffer.data() + buffer.size());
  EXPECT_EQ(view.ToString(), "payload");
}

TEST(SerializerTest, TruncatedLengthPrefixFails) {
  BinaryWriter writer;
  writer.PutU32(1000);  // Claims 1000 bytes; none follow.
  BinaryReader reader{Slice(writer.buffer())};
  Slice view;
  EXPECT_FALSE(reader.GetBytes(&view));
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLockTest, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  pool.ParallelFor(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&](int) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, NestedSubmitDuringWaitIdle) {
  // A task submitted from inside a task must complete before WaitIdle
  // returns — the barrier covers transitively spawned work.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      pool.Submit([&] { done.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, SplitWeightedBalancesSkewedCosts) {
  // One huge item followed by many tiny ones: equal-count chunking would
  // put the hub and half the tail in one shard. Weighted splitting must
  // isolate the hub so no shard greatly exceeds the ideal cost.
  const int n = 1000;
  const auto cost = [](int i) { return i == 0 ? 1000.0 : 1.0; };
  const auto shards = ThreadPool::SplitWeighted(n, cost, 8);
  ASSERT_GE(shards.size(), 2u);
  ASSERT_LE(shards.size(), 8u);
  // Shards tile [0, n) exactly.
  int expect_begin = 0;
  double total = 0;
  double max_shard = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_GT(s.end, s.begin);
    expect_begin = s.end;
    double c = 0;
    for (int i = s.begin; i < s.end; ++i) c += cost(i);
    total += c;
    max_shard = std::max(max_shard, c);
  }
  EXPECT_EQ(expect_begin, n);
  // The hub item is unavoidable (1000), but no shard may exceed the ideal
  // (total/8 ≈ 250) by more than that one indivisible item.
  EXPECT_LE(max_shard, total / 8 + 1000.0);
  // And the tail must actually be spread: the hub's shard is just the hub.
  double tail_max = 0;
  for (const auto& s : shards) {
    if (s.begin == 0) {
      continue;
    }
    double c = 0;
    for (int i = s.begin; i < s.end; ++i) c += cost(i);
    tail_max = std::max(tail_max, c);
  }
  EXPECT_LE(tail_max, 2 * (total - 1000.0) / 7 + 1.0);
}

TEST(ThreadPoolTest, SplitWeightedEdgeCases) {
  // Zero or negative total cost falls back to equal-count chunks.
  const auto zero = ThreadPool::SplitWeighted(10, [](int) { return 0.0; }, 4);
  int covered = 0;
  for (const auto& s : zero) covered += s.end - s.begin;
  EXPECT_EQ(covered, 10);
  EXPECT_TRUE(ThreadPool::SplitWeighted(0, [](int) { return 1.0; }, 4).empty());
  const auto one = ThreadPool::SplitWeighted(1, [](int) { return 5.0; }, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 1);
  // max_shards == 1 keeps everything together.
  const auto single =
      ThreadPool::SplitWeighted(100, [](int) { return 1.0; }, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].end, 100);
}

TEST(ThreadPoolTest, WeightedParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(
      257, [&](int i) { hits[i].fetch_add(1); },
      [](int i) { return i < 3 ? 1000.0 : 1.0; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForShardsReportsShardIndices) {
  ThreadPool pool(3);
  const std::vector<ThreadPool::Shard> shards = {{0, 5}, {5, 6}, {6, 20}};
  std::vector<std::atomic<int>> hits(20);
  std::atomic<int> shard_mask{0};
  pool.ParallelForShards(shards, [&](int shard, int begin, int end) {
    shard_mask.fetch_or(1 << shard);
    for (int i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(shard_mask.load(), 0b111);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(HistogramTest, MergeFoldsShardSamples) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
  EXPECT_NEAR(a.Percentile(50), 50.5, 0.01);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  benchmarkish_sink = sink;
  EXPECT_GT(watch.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace trinity
