#include "storage/trunk_index.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace trinity::storage {
namespace {

TEST(TrunkIndexTest, FindMissingReturnsNoOffset) {
  TrunkIndex index;
  EXPECT_EQ(index.Find(42), TrunkIndex::kNoOffset);
}

TEST(TrunkIndexTest, UpsertAndFind) {
  TrunkIndex index;
  EXPECT_TRUE(index.Upsert(1, 100));
  EXPECT_TRUE(index.Upsert(2, 200));
  EXPECT_FALSE(index.Upsert(1, 111));  // Update, not insert.
  EXPECT_EQ(index.Find(1), 111u);
  EXPECT_EQ(index.Find(2), 200u);
  EXPECT_EQ(index.size(), 2u);
}

TEST(TrunkIndexTest, EraseAndTombstoneReuse) {
  TrunkIndex index;
  index.Upsert(1, 100);
  EXPECT_TRUE(index.Erase(1));
  EXPECT_FALSE(index.Erase(1));
  EXPECT_EQ(index.Find(1), TrunkIndex::kNoOffset);
  EXPECT_EQ(index.size(), 0u);
  index.Upsert(1, 101);  // Reuses the tombstone slot.
  EXPECT_EQ(index.Find(1), 101u);
}

TEST(TrunkIndexTest, GrowsUnderLoad) {
  TrunkIndex index(8);
  const std::size_t initial = index.bucket_count();
  for (CellId id = 0; id < 1000; ++id) {
    index.Upsert(id, id * 10);
  }
  EXPECT_GT(index.bucket_count(), initial);
  for (CellId id = 0; id < 1000; ++id) {
    ASSERT_EQ(index.Find(id), id * 10);
  }
}

TEST(TrunkIndexTest, ForEachVisitsAllLive) {
  TrunkIndex index;
  for (CellId id = 0; id < 50; ++id) index.Upsert(id, id);
  for (CellId id = 0; id < 50; id += 2) index.Erase(id);
  std::size_t count = 0;
  index.ForEach([&](CellId id, std::uint64_t offset) {
    EXPECT_EQ(id % 2, 1u);
    EXPECT_EQ(id, offset);
    ++count;
  });
  EXPECT_EQ(count, 25u);
}

class TrunkIndexFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrunkIndexFuzzTest, MatchesReferenceModel) {
  Random rng(GetParam());
  TrunkIndex index;
  std::map<CellId, std::uint64_t> reference;
  for (int op = 0; op < 20000; ++op) {
    const CellId id = rng.Uniform(500);
    switch (rng.Uniform(3)) {
      case 0: {  // Upsert.
        const std::uint64_t offset = rng.Next() >> 1;
        const bool inserted = index.Upsert(id, offset);
        EXPECT_EQ(inserted, reference.count(id) == 0);
        reference[id] = offset;
        break;
      }
      case 1: {  // Erase.
        EXPECT_EQ(index.Erase(id), reference.erase(id) > 0);
        break;
      }
      case 2: {  // Find.
        auto it = reference.find(id);
        if (it == reference.end()) {
          EXPECT_EQ(index.Find(id), TrunkIndex::kNoOffset);
        } else {
          EXPECT_EQ(index.Find(id), it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index.size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrunkIndexFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace trinity::storage
