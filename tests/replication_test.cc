// Unit coverage for hot-standby trunk replication: rendezvous placement,
// the synchronous write path, degraded reads, promotion failover, epoch
// fencing, sweep reports and re-replication. Deterministic companions to
// the randomized scenarios in chaos_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "cloud/replica_placement.h"
#include "net/fault_injector.h"
#include "tfs/tfs.h"

namespace trinity {
namespace {

// ------------------------------------------------------------- placement

std::vector<MachineId> Machines(int n) {
  std::vector<MachineId> v;
  for (MachineId m = 0; m < n; ++m) v.push_back(m);
  return v;
}

TEST(ReplicaPlacementTest, DistinctMachinesAndNeverThePrimary) {
  const std::vector<MachineId> machines = Machines(8);
  for (TrunkId t = 0; t < 64; ++t) {
    for (MachineId primary = 0; primary < 8; ++primary) {
      for (int k = 1; k <= 4; ++k) {
        const std::vector<MachineId> targets =
            cloud::ReplicaTargets(t, primary, k, machines);
        ASSERT_EQ(targets.size(), static_cast<std::size_t>(k));
        std::set<MachineId> distinct(targets.begin(), targets.end());
        EXPECT_EQ(distinct.size(), targets.size())
            << "trunk " << t << " placed two replicas on one machine";
        EXPECT_EQ(distinct.count(primary), 0u)
            << "trunk " << t << " placed a replica on its primary";
      }
    }
  }
}

TEST(ReplicaPlacementTest, IndependentOfCandidateOrdering) {
  std::vector<MachineId> machines = Machines(6);
  const std::vector<MachineId> forward =
      cloud::ReplicaTargets(7, 2, 3, machines);
  std::reverse(machines.begin(), machines.end());
  EXPECT_EQ(cloud::ReplicaTargets(7, 2, 3, machines), forward);
}

// The consistent-hashing property: removing one machine re-places only the
// replicas that lived on it — survivors keep their assignments.
TEST(ReplicaPlacementTest, StableUnderMembershipChurn) {
  const std::vector<MachineId> all = Machines(8);
  const MachineId removed = 5;
  std::vector<MachineId> shrunk;
  for (MachineId m : all) {
    if (m != removed) shrunk.push_back(m);
  }
  int moved = 0, kept = 0;
  for (TrunkId t = 0; t < 128; ++t) {
    const MachineId primary = t % 8 == removed ? 0 : t % 8;
    const auto before = cloud::ReplicaTargets(t, primary, 2, all);
    const auto after = cloud::ReplicaTargets(t, primary, 2, shrunk);
    for (MachineId b : before) {
      const bool still = std::find(after.begin(), after.end(), b) !=
                         after.end();
      if (b == removed) {
        EXPECT_FALSE(still);
        ++moved;
      } else {
        EXPECT_TRUE(still) << "trunk " << t << ": survivor " << b
                           << " lost its replica to churn";
        ++kept;
      }
    }
  }
  EXPECT_GT(moved, 0);  // The removed machine did hold replicas.
  EXPECT_GT(kept, moved);
}

TEST(ReplicaPlacementTest, GracefulWhenClusterSmallerThanKPlusOne) {
  EXPECT_EQ(cloud::ReplicaTargets(3, 0, 3, Machines(2)),
            (std::vector<MachineId>{1}));
  EXPECT_TRUE(cloud::ReplicaTargets(3, 0, 2, Machines(1)).empty());
  EXPECT_TRUE(cloud::ReplicaTargets(3, 0, 0, Machines(8)).empty());
}

// ---------------------------------------------------------- cloud fixture

std::string FreshTfsRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/repl_" + tag + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

struct Cluster {
  std::unique_ptr<tfs::Tfs> tfs;
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<cloud::MemoryCloud> cloud;
};

Cluster NewReplicatedCluster(const std::string& tag, int replication_factor,
                             bool with_tfs, bool auto_promote = true,
                             int slaves = 4) {
  Cluster c;
  if (with_tfs) {
    tfs::Tfs::Options tfs_options;
    tfs_options.root = FreshTfsRoot(tag);
    EXPECT_TRUE(tfs::Tfs::Open(tfs_options, &c.tfs).ok());
  }
  c.injector = std::make_unique<net::FaultInjector>(0x5eedu);
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.tfs = c.tfs.get();
  options.replication_factor = replication_factor;
  options.auto_promote = auto_promote;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &c.cloud).ok());
  c.cloud->fabric().SetFaultInjector(c.injector.get());
  return c;
}

// First cell id hashing into a trunk owned by `machine`.
CellId CellOwnedBy(cloud::MemoryCloud* cloud, MachineId machine) {
  for (CellId id = 0; id < 100000; ++id) {
    if (cloud->MachineOf(id) == machine) return id;
  }
  ADD_FAILURE() << "no cell hashes to machine " << machine;
  return 0;
}

// ------------------------------------------------------------- protocol

TEST(ReplicationTest, CreateRejectsReplicationPlusBufferedLogging) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = 4;
  options.p_bits = 4;
  options.buffered_logging = true;
  options.replication_factor = 2;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(
      cloud::MemoryCloud::Create(options, &cloud).IsInvalidArgument());
  options.buffered_logging = false;
  options.replication_factor = -1;
  EXPECT_TRUE(
      cloud::MemoryCloud::Create(options, &cloud).IsInvalidArgument());
}

TEST(ReplicationTest, EveryTrunkSeededWithDistinctReplicas) {
  Cluster c = NewReplicatedCluster("seed", 2, /*with_tfs=*/false);
  const cloud::AddressingTable& table = c.cloud->table();
  for (TrunkId t = 0; t < table.num_slots(); ++t) {
    const auto& replicas = table.replicas_of_trunk(t);
    ASSERT_EQ(replicas.size(), 2u);
    std::set<MachineId> holders(replicas.begin(), replicas.end());
    holders.insert(table.machine_of_trunk(t));
    EXPECT_EQ(holders.size(), 3u) << "trunk " << t;
    // Each replica machine actually hosts the replica trunk.
    for (MachineId r : replicas) {
      EXPECT_NE(c.cloud->storage(r)->replica_trunk(t), nullptr);
    }
  }
}

TEST(ReplicationTest, WritesReachEveryInSyncReplica) {
  Cluster c = NewReplicatedCluster("write", 2, /*with_tfs=*/false);
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("v" + std::to_string(id))).ok());
  }
  const cloud::AddressingTable& table = c.cloud->table();
  for (CellId id = 0; id < 64; ++id) {
    const TrunkId t = c.cloud->TrunkOf(id);
    for (MachineId r : table.replicas_of_trunk(t)) {
      storage::MemoryTrunk* replica = c.cloud->storage(r)->replica_trunk(t);
      ASSERT_NE(replica, nullptr);
      std::string out;
      ASSERT_TRUE(replica->GetCell(id, &out).ok())
          << "cell " << id << " missing on replica machine " << r;
      EXPECT_EQ(out, "v" + std::to_string(id));
    }
  }
  // Removes and appends mirror too.
  ASSERT_TRUE(c.cloud->RemoveCell(7).ok());
  const TrunkId t7 = c.cloud->TrunkOf(7);
  for (MachineId r : table.replicas_of_trunk(t7)) {
    EXPECT_FALSE(c.cloud->storage(r)->replica_trunk(t7)->Contains(7));
  }
}

TEST(ReplicationTest, DegradedReadServedByReplicaWhilePrimaryDown) {
  Cluster c = NewReplicatedCluster("degraded", 2, /*with_tfs=*/false,
                                   /*auto_promote=*/false);
  const MachineId victim = 2;
  const CellId id = CellOwnedBy(c.cloud.get(), victim);
  ASSERT_TRUE(c.cloud->PutCell(id, Slice("survives")).ok());
  ASSERT_TRUE(c.cloud->FailMachine(victim).ok());

  // Reads fail over to a replica immediately — no promotion has run.
  std::string out;
  ASSERT_TRUE(c.cloud->GetCell(id, &out).ok())
      << "degraded read not served";
  EXPECT_EQ(out, "survives");
  bool exists = false;
  ASSERT_TRUE(c.cloud->Contains(id, &exists).ok());
  EXPECT_TRUE(exists);
  EXPECT_GE(c.cloud->recovery_stats().degraded_reads, 2u);
  EXPECT_EQ(c.cloud->table().machine_of_trunk(c.cloud->TrunkOf(id)), victim)
      << "promotion ran even though auto_promote is off";

  // Writes to the affected trunk stay retryable until promotion lands.
  Status ws = c.cloud->PutCell(id, Slice("blocked"));
  ASSERT_TRUE(ws.IsUnavailable()) << ws.message();

  // The sweep promotes; the same write then succeeds and the degraded value
  // was preserved through the metadata flip.
  cloud::MemoryCloud::SweepReport report;
  EXPECT_EQ(c.cloud->DetectAndRecover(&report), 1);
  ASSERT_EQ(report.recovered.size(), 1u);
  EXPECT_EQ(report.recovered[0], victim);
  ASSERT_TRUE(c.cloud->PutCell(id, Slice("after-promote")).ok());
  ASSERT_TRUE(c.cloud->GetCell(id, &out).ok());
  EXPECT_EQ(out, "after-promote");
}

TEST(ReplicationTest, PromotionIsMetadataOnlyZeroTfsReads) {
  Cluster c = NewReplicatedCluster("promote", 2, /*with_tfs=*/true);
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("p" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(c.cloud->SaveSnapshot().ok());  // Cold tier exists but is idle.
  const MachineId victim = 1;
  ASSERT_TRUE(c.cloud->FailMachine(victim).ok());

  const tfs::Tfs::Stats before = c.tfs->stats();
  // First access promotes inline (auto_promote): a pure metadata flip.
  const CellId id = CellOwnedBy(c.cloud.get(), victim);
  ASSERT_TRUE(c.cloud->PutCell(id, Slice("rewritten")).ok());
  const tfs::Tfs::Stats after = c.tfs->stats();
  EXPECT_EQ(after.files_read, before.files_read)
      << "promotion hot path read from TFS";
  EXPECT_EQ(after.blocks_read, before.blocks_read);

  const net::RecoveryStats rs = c.cloud->recovery_stats();
  EXPECT_GT(rs.promotions, 0u);
  EXPECT_EQ(rs.tfs_fallback_reloads, 0u);
  EXPECT_GT(rs.last_promote_micros, 0u);

  // Every pre-failure value survived in memory.
  for (CellId i = 0; i < 64; ++i) {
    std::string out;
    ASSERT_TRUE(c.cloud->GetCell(i, &out).ok()) << "cell " << i;
    EXPECT_EQ(out, i == id ? "rewritten" : "p" + std::to_string(i));
  }
}

TEST(ReplicationTest, TfsColdTierUsedOnlyWhenEveryReplicaIsLost) {
  Cluster c = NewReplicatedCluster("coldtier", 1, /*with_tfs=*/true);
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("c" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(c.cloud->SaveSnapshot().ok());
  // Pick a trunk and kill both its primary and its single replica.
  const TrunkId t = 0;
  const MachineId primary = c.cloud->table().machine_of_trunk(t);
  ASSERT_EQ(c.cloud->table().replicas_of_trunk(t).size(), 1u);
  const MachineId replica = c.cloud->table().replicas_of_trunk(t)[0];
  ASSERT_TRUE(c.cloud->FailMachine(primary).ok());
  ASSERT_TRUE(c.cloud->FailMachine(replica).ok());

  const tfs::Tfs::Stats before = c.tfs->stats();
  // The snapshot write above must already be metered in bytes.
  EXPECT_GT(before.bytes_written, 0u);
  cloud::MemoryCloud::SweepReport report;
  EXPECT_EQ(c.cloud->DetectAndRecover(&report), 2);
  const tfs::Tfs::Stats after = c.tfs->stats();
  EXPECT_GT(c.cloud->recovery_stats().tfs_fallback_reloads, 0u);
  EXPECT_GT(after.files_read, before.files_read)
      << "all-replicas-lost trunk was not reloaded from the cold tier";
  EXPECT_GT(after.bytes_read, before.bytes_read)
      << "trunk image reload did not meter bytes_read";
  EXPECT_EQ(after.bytes_read, c.tfs->bytes_read());  // Lock-free view agrees.

  // Snapshot-covered data is back; every cell is readable somewhere.
  for (CellId id = 0; id < 64; ++id) {
    std::string out;
    ASSERT_TRUE(c.cloud->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, "c" + std::to_string(id));
  }
}

TEST(ReplicationTest, SweepReportSurfacesUnrecoverableMachines) {
  // k=1 and no TFS: losing a trunk's primary AND its only replica is
  // unrecoverable — the sweep must say so instead of discarding the error,
  // and must leave the machine down for the next sweep to retry.
  Cluster c = NewReplicatedCluster("report", 1, /*with_tfs=*/false);
  const TrunkId t = 0;
  const MachineId primary = c.cloud->table().machine_of_trunk(t);
  const MachineId replica = c.cloud->table().replicas_of_trunk(t)[0];
  ASSERT_TRUE(c.cloud->FailMachine(primary).ok());
  ASSERT_TRUE(c.cloud->FailMachine(replica).ok());

  cloud::MemoryCloud::SweepReport report;
  c.cloud->DetectAndRecover(&report);
  ASSERT_FALSE(report.failed.empty());
  bool found = false;
  for (const auto& [machine, status] : report.failed) {
    EXPECT_TRUE(status.IsUnavailable());
    EXPECT_NE(status.message().find("lost"), std::string::npos);
    if (machine == primary || machine == replica) found = true;
    EXPECT_FALSE(c.cloud->fabric().IsMachineUp(machine))
        << "failed machine not left down for retry";
  }
  EXPECT_TRUE(found);
  // The next sweep retries and reports the same terminal condition.
  cloud::MemoryCloud::SweepReport again;
  c.cloud->DetectAndRecover(&again);
  EXPECT_FALSE(again.failed.empty());
}

TEST(ReplicationTest, ReReplicationRestoresTheFactor) {
  Cluster c = NewReplicatedCluster("rerepl", 2, /*with_tfs=*/false);
  for (CellId id = 0; id < 64; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("r" + std::to_string(id))).ok());
  }
  const MachineId victim = 3;
  ASSERT_TRUE(c.cloud->FailMachine(victim).ok());
  cloud::MemoryCloud::SweepReport report;
  EXPECT_EQ(c.cloud->DetectAndRecover(&report), 1);
  EXPECT_GT(report.rereplicated_trunks, 0);

  // With 3 survivors, every trunk supports at most 2 holders beyond its
  // primary; the factor must be fully restored across them.
  const cloud::AddressingTable& table = c.cloud->table();
  for (TrunkId t = 0; t < table.num_slots(); ++t) {
    const MachineId primary = table.machine_of_trunk(t);
    EXPECT_NE(primary, victim);
    const auto& replicas = table.replicas_of_trunk(t);
    ASSERT_EQ(replicas.size(), 2u) << "trunk " << t << " under-replicated";
    std::set<MachineId> holders(replicas.begin(), replicas.end());
    holders.insert(primary);
    EXPECT_EQ(holders.size(), 3u) << "trunk " << t;
    EXPECT_EQ(holders.count(victim), 0u) << "trunk " << t;
    for (MachineId r : replicas) {
      storage::MemoryTrunk* replica = c.cloud->storage(r)->replica_trunk(t);
      ASSERT_NE(replica, nullptr) << "trunk " << t << " on " << r;
    }
  }
  const net::RecoveryStats rs = c.cloud->recovery_stats();
  EXPECT_GT(rs.trunks_rereplicated, 0u);
  EXPECT_GT(rs.bytes_rereplicated, 0u);
  EXPECT_GE(rs.last_full_replication_micros, rs.last_promote_micros);

  // The restored replicas are in sync: writes after repair reach them.
  ASSERT_TRUE(c.cloud->PutCell(1, Slice("post-repair")).ok());
  const TrunkId t1 = c.cloud->TrunkOf(1);
  for (MachineId r : table.replicas_of_trunk(t1)) {
    std::string out;
    ASSERT_TRUE(
        c.cloud->storage(r)->replica_trunk(t1)->GetCell(1, &out).ok());
    EXPECT_EQ(out, "post-repair");
  }
}

TEST(ReplicationTest, ReplicationSurvivesFaultyReplicationWire) {
  // Target exactly the replication handler range with injected failures:
  // acked writes must survive a later failover even when the replication
  // wire was flaky while they committed.
  Cluster c = NewReplicatedCluster("wire", 2, /*with_tfs=*/false);
  net::FaultInjector::Policy flaky;
  flaky.call_fail_prob = 0.2;
  flaky.call_timeout_prob = 0.1;
  c.injector->SetHandlerRangePolicy(cloud::kReplicaApplyHandler,
                                    cloud::kIsrShrinkHandler, flaky);
  std::set<CellId> acked;
  for (CellId id = 0; id < 128; ++id) {
    if (c.cloud->PutCell(id, Slice("w" + std::to_string(id))).ok()) {
      acked.insert(id);
    }
  }
  EXPECT_GT(acked.size(), 100u) << "retries should absorb most wire faults";
  c.injector->ClearPolicies();
  // Repair any ISR shrinks the faults caused, then fail a machine.
  c.cloud->DetectAndRecover();
  ASSERT_TRUE(c.cloud->FailMachine(0).ok());
  EXPECT_EQ(c.cloud->DetectAndRecover(), 1);
  for (CellId id : acked) {
    std::string out;
    ASSERT_TRUE(c.cloud->GetCell(id, &out).ok())
        << "acked cell " << id << " lost after failover";
    EXPECT_EQ(out, "w" + std::to_string(id));
  }
}

TEST(ReplicationTest, ReplicaMemoryAccountedSeparately) {
  Cluster c = NewReplicatedCluster("mem", 2, /*with_tfs=*/false);
  for (CellId id = 0; id < 256; ++id) {
    ASSERT_TRUE(
        c.cloud->PutCell(id, Slice(std::string(128, 'x'))).ok());
  }
  EXPECT_GT(c.cloud->ReplicaMemoryBytes(), 0u);
  // k=2: replicas hold two more copies of every byte the primaries hold.
  EXPECT_GE(c.cloud->ReplicaMemoryBytes(), c.cloud->MemoryFootprintBytes());
}

TEST(ReplicationTest, MigrationMovesPrimaryOffReplicaHolder) {
  Cluster c = NewReplicatedCluster("migrate", 2, /*with_tfs=*/false);
  for (CellId id = 0; id < 32; ++id) {
    ASSERT_TRUE(c.cloud->PutCell(id, Slice("m" + std::to_string(id))).ok());
  }
  // Migrate a trunk onto one of its replica holders: the stale replica image
  // must be dropped and the machine must leave the in-sync set.
  const TrunkId t = 0;
  const MachineId dest = c.cloud->table().replicas_of_trunk(t)[0];
  ASSERT_TRUE(c.cloud->MigrateTrunk(t, dest).ok());
  EXPECT_EQ(c.cloud->table().machine_of_trunk(t), dest);
  const auto& replicas = c.cloud->table().replicas_of_trunk(t);
  EXPECT_EQ(std::find(replicas.begin(), replicas.end(), dest),
            replicas.end());
  EXPECT_EQ(c.cloud->storage(dest)->replica_trunk(t), nullptr);
  // Data still readable and writable through the new primary.
  for (CellId id = 0; id < 32; ++id) {
    std::string out;
    ASSERT_TRUE(c.cloud->GetCell(id, &out).ok());
    EXPECT_EQ(out, "m" + std::to_string(id));
  }
  ASSERT_TRUE(c.cloud->PutCell(0, Slice("post-migrate")).ok());
}

}  // namespace
}  // namespace trinity
