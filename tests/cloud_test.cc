#include "cloud/memory_cloud.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "cloud/addressing_table.h"

namespace trinity::cloud {
namespace {

TEST(AddressingTableTest, RoundRobinLayout) {
  AddressingTable table(4, 3);  // 16 trunks, 3 machines.
  EXPECT_EQ(table.num_slots(), 16);
  EXPECT_EQ(table.machine_of_trunk(0), 0);
  EXPECT_EQ(table.machine_of_trunk(1), 1);
  EXPECT_EQ(table.machine_of_trunk(2), 2);
  EXPECT_EQ(table.machine_of_trunk(3), 0);
  EXPECT_EQ(table.trunks_of(0).size(), 6u);  // ceil(16/3).
  EXPECT_EQ(table.trunks_of(1).size(), 5u);
}

TEST(AddressingTableTest, MoveBumpsVersion) {
  AddressingTable table(3, 2);
  const std::uint64_t v0 = table.version();
  table.MoveTrunk(5, 1);
  EXPECT_EQ(table.machine_of_trunk(5), 1);
  EXPECT_GT(table.version(), v0);
}

TEST(AddressingTableTest, EvacuateSpreadsTrunks) {
  AddressingTable table(4, 4);
  table.EvacuateMachine(2, {0, 1, 3});
  EXPECT_TRUE(table.trunks_of(2).empty());
  EXPECT_GT(table.trunks_of(0).size(), 4u - 1);
}

TEST(AddressingTableTest, SerializeRoundTrip) {
  AddressingTable table(5, 4);
  table.MoveTrunk(7, 2);
  AddressingTable decoded(0, 1);
  ASSERT_TRUE(
      AddressingTable::Deserialize(Slice(table.Serialize()), &decoded).ok());
  EXPECT_TRUE(decoded == table);
  EXPECT_EQ(decoded.version(), table.version());
}

TEST(AddressingTableTest, EpochsAndReplicasRoundTrip) {
  AddressingTable table(4, 4);
  table.SetReplicas(3, {1, 2});
  ASSERT_TRUE(table.AddReplica(5, 0));
  EXPECT_FALSE(table.AddReplica(5, 0));  // Already a member.
  const std::uint64_t e0 = table.epoch_of_trunk(7);
  table.MoveTrunk(7, 2);  // Promotion-style move bumps the trunk epoch.
  EXPECT_GT(table.epoch_of_trunk(7), e0);

  AddressingTable decoded(0, 1);
  ASSERT_TRUE(
      AddressingTable::Deserialize(Slice(table.Serialize()), &decoded).ok());
  EXPECT_TRUE(decoded == table);
  EXPECT_EQ(decoded.replicas_of_trunk(3),
            (std::vector<MachineId>{1, 2}));
  EXPECT_EQ(decoded.epoch_of_trunk(7), table.epoch_of_trunk(7));

  EXPECT_TRUE(decoded.RemoveReplica(3, 1));
  EXPECT_FALSE(decoded.RemoveReplica(3, 1));
  EXPECT_FALSE(decoded == table);
  EXPECT_EQ(table.RemoveReplicaEverywhere(2), 1);  // Was a replica of 3.
  EXPECT_EQ(table.replicas_of_trunk(3), (std::vector<MachineId>{1}));
}

TEST(AddressingTableTest, DeserializeRejectsGarbage) {
  AddressingTable table(0, 1);
  EXPECT_TRUE(
      AddressingTable::Deserialize(Slice("garbage"), &table).IsCorruption());
}

class MemoryCloudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryCloud::Options options;
    options.num_slaves = 4;
    options.p_bits = 4;
    options.storage.trunk.capacity = 256 * 1024;
    ASSERT_TRUE(MemoryCloud::Create(options, &cloud_).ok());
  }
  std::unique_ptr<MemoryCloud> cloud_;
};

TEST_F(MemoryCloudTest, RejectsBadOptions) {
  MemoryCloud::Options options;
  options.num_slaves = 0;
  std::unique_ptr<MemoryCloud> cloud;
  EXPECT_TRUE(MemoryCloud::Create(options, &cloud).IsInvalidArgument());
  options.num_slaves = 8;
  options.p_bits = 2;  // 4 trunks < 8 slaves.
  EXPECT_TRUE(MemoryCloud::Create(options, &cloud).IsInvalidArgument());
}

TEST_F(MemoryCloudTest, GlobalKeyValueOps) {
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("v" + std::to_string(id))).ok());
  }
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok());
    EXPECT_EQ(out, "v" + std::to_string(id));
  }
  bool exists = false;
  ASSERT_TRUE(cloud_->Contains(42, &exists).ok());
  EXPECT_TRUE(exists);
  ASSERT_TRUE(cloud_->Contains(4242, &exists).ok());
  EXPECT_FALSE(exists);
  ASSERT_TRUE(cloud_->RemoveCell(42).ok());
  ASSERT_TRUE(cloud_->Contains(42, &exists).ok());
  EXPECT_FALSE(exists);
  EXPECT_EQ(cloud_->TotalCellCount(), 199u);
}

TEST_F(MemoryCloudTest, DataSpreadsAcrossSlaves) {
  for (CellId id = 0; id < 400; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("x")).ok());
  }
  for (MachineId m = 0; m < cloud_->num_slaves(); ++m) {
    EXPECT_GT(cloud_->storage(m)->TotalCellCount(), 0u)
        << "machine " << m << " owns no data";
  }
}

TEST_F(MemoryCloudTest, AppendAndUpdate) {
  ASSERT_TRUE(cloud_->AddCell(1, Slice("head")).ok());
  ASSERT_TRUE(cloud_->AppendToCell(1, Slice("+tail")).ok());
  std::string out;
  ASSERT_TRUE(cloud_->GetCell(1, &out).ok());
  EXPECT_EQ(out, "head+tail");
  ASSERT_TRUE(cloud_->PutCell(1, Slice("replaced")).ok());
  ASSERT_TRUE(cloud_->GetCell(1, &out).ok());
  EXPECT_EQ(out, "replaced");
}

TEST_F(MemoryCloudTest, LocalAccessBypassesNetwork) {
  // Find a cell owned by slave 0 and access it from slave 0.
  CellId local_id = 0;
  while (cloud_->MachineOf(local_id) != 0) ++local_id;
  ASSERT_TRUE(cloud_->AddCellFrom(0, local_id, Slice("local")).ok());
  const auto before = cloud_->fabric().stats();
  std::string out;
  ASSERT_TRUE(cloud_->GetCellFrom(0, local_id, &out).ok());
  const auto after = cloud_->fabric().stats();
  EXPECT_EQ(after.transfers, before.transfers);
  EXPECT_EQ(out, "local");
}

TEST_F(MemoryCloudTest, RemoteAccessIsMetered) {
  CellId remote_id = 0;
  while (cloud_->MachineOf(remote_id) != 1) ++remote_id;
  ASSERT_TRUE(cloud_->AddCellFrom(0, remote_id, Slice("remote")).ok());
  const auto stats = cloud_->fabric().stats();
  EXPECT_GT(stats.transfers, 0u);
  EXPECT_GT(stats.sync_calls, 0u);
}

TEST_F(MemoryCloudTest, NoTfsMeansNoDurabilityPaths) {
  // Pure in-memory mode: persistence and recovery are explicit errors, not
  // silent no-ops.
  EXPECT_TRUE(cloud_->SaveSnapshot().IsInvalidArgument());
  ASSERT_TRUE(cloud_->AddCell(1, Slice("volatile")).ok());
  ASSERT_TRUE(cloud_->FailMachine(cloud_->MachineOf(1)).ok());
  EXPECT_TRUE(cloud_->RecoverMachine(cloud_->MachineOf(1))
                  .IsInvalidArgument());
  std::string out;
  EXPECT_TRUE(cloud_->GetCell(1, &out).IsUnavailable());
}

TEST_F(MemoryCloudTest, OnlySlavesCanFailOrRestart) {
  EXPECT_TRUE(cloud_->FailMachine(cloud_->client_id()).IsInvalidArgument());
  EXPECT_TRUE(cloud_->FailMachine(-1).IsInvalidArgument());
  EXPECT_TRUE(
      cloud_->RestartMachine(cloud_->client_id()).IsInvalidArgument());
  EXPECT_TRUE(cloud_->RestartMachine(0).IsAlreadyExists());  // Still up.
}

TEST_F(MemoryCloudTest, ElectLeaderWithoutTfs) {
  EXPECT_EQ(cloud_->leader(), 0);
  ASSERT_TRUE(cloud_->ElectLeader().ok());
  EXPECT_EQ(cloud_->leader(), 0);  // Lowest alive id.
}

class MemoryCloudFtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string root = ::testing::TempDir() + "/cloud_ft_" +
                             ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    std::filesystem::remove_all(root);
    tfs::Tfs::Options tfs_options;
    tfs_options.root = root;
    ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs_).ok());
    MemoryCloud::Options options;
    options.num_slaves = 4;
    options.p_bits = 4;
    options.storage.trunk.capacity = 256 * 1024;
    options.tfs = tfs_.get();
    options.buffered_logging = true;
    ASSERT_TRUE(MemoryCloud::Create(options, &cloud_).ok());
  }
  std::unique_ptr<tfs::Tfs> tfs_;
  std::unique_ptr<MemoryCloud> cloud_;
};

TEST_F(MemoryCloudFtTest, RecoverFromSnapshotAfterCrash) {
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("snap" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(2).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(2).ok());
  for (CellId id = 0; id < 100; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, "snap" + std::to_string(id));
  }
  // The failed machine owns nothing now.
  EXPECT_TRUE(cloud_->table().trunks_of(2).empty());
}

TEST_F(MemoryCloudFtTest, BufferedLoggingRecoversPostSnapshotWrites) {
  for (CellId id = 0; id < 50; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("base")).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  // Post-snapshot mutations live only in RAM + remote log buffers.
  for (CellId id = 50; id < 80; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("post-snap")).ok());
  }
  ASSERT_TRUE(cloud_->PutCell(0, Slice("updated")).ok());
  ASSERT_TRUE(cloud_->FailMachine(1).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(1).ok());
  for (CellId id = 50; id < 80; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, "post-snap");
  }
  std::string out;
  ASSERT_TRUE(cloud_->GetCell(0, &out).ok());
  EXPECT_EQ(out, "updated");
}

TEST_F(MemoryCloudFtTest, AccessTriggersRecovery) {
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("auto")).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(3).ok());
  // No explicit recovery: the failed access detects, recovers, retries
  // (§6.2).
  for (CellId id = 0; id < 100; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
  }
}

TEST_F(MemoryCloudFtTest, HeartbeatSweepRecovers) {
  for (CellId id = 0; id < 40; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("hb")).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(1).ok());
  EXPECT_EQ(cloud_->DetectAndRecover(), 1);
  EXPECT_EQ(cloud_->DetectAndRecover(), 0);  // Nothing left to do.
  for (CellId id = 0; id < 40; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok());
  }
}

TEST_F(MemoryCloudFtTest, LeaderFailureElectsNewLeader) {
  ASSERT_TRUE(cloud_->AddCell(1, Slice("x")).ok());
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  EXPECT_EQ(cloud_->leader(), 0);
  ASSERT_TRUE(cloud_->FailMachine(0).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(0).ok());
  EXPECT_NE(cloud_->leader(), 0);
  // The fencing flag exists on TFS.
  EXPECT_FALSE(tfs_->List("cloud/leader_epoch_").empty());
}

TEST_F(MemoryCloudFtTest, RestartedMachineRejoins) {
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(2).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(2).ok());
  ASSERT_TRUE(cloud_->RestartMachine(2).ok());
  EXPECT_TRUE(cloud_->RestartMachine(2).IsAlreadyExists());
  // The restarted machine can serve as a source endpoint again.
  ASSERT_TRUE(cloud_->AddCellFrom(2, 7777, Slice("from restarted")).ok());
  std::string out;
  ASSERT_TRUE(cloud_->GetCell(7777, &out).ok());
  EXPECT_EQ(out, "from restarted");
}

TEST_F(MemoryCloudTest, LiveTrunkMigration) {
  for (CellId id = 0; id < 200; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("m" + std::to_string(id))).ok());
  }
  // Move every trunk owned by machine 0 to machine 1.
  const std::vector<TrunkId> trunks = cloud_->table().trunks_of(0);
  ASSERT_FALSE(trunks.empty());
  const auto transfers_before = cloud_->fabric().stats().transfers;
  for (TrunkId t : trunks) {
    ASSERT_TRUE(cloud_->MigrateTrunk(t, 1).ok());
  }
  EXPECT_TRUE(cloud_->table().trunks_of(0).empty());
  // The image transfers were metered on the fabric.
  EXPECT_GT(cloud_->fabric().stats().transfers, transfers_before);
  // Every cell remains reachable through the updated addressing table.
  for (CellId id = 0; id < 200; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, "m" + std::to_string(id));
  }
  // Migrating to itself is a no-op; bad arguments are rejected.
  ASSERT_TRUE(cloud_->MigrateTrunk(cloud_->table().trunks_of(1).front(), 1)
                  .ok());
  EXPECT_TRUE(cloud_->MigrateTrunk(-1, 1).IsInvalidArgument());
  EXPECT_TRUE(cloud_->MigrateTrunk(0, 99).IsInvalidArgument());
}

TEST_F(MemoryCloudFtTest, RebalanceAfterRejoin) {
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("r")).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(2).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(2).ok());
  ASSERT_TRUE(cloud_->RestartMachine(2).ok());
  EXPECT_TRUE(cloud_->table().trunks_of(2).empty());
  const int moved = cloud_->RebalanceTrunks();
  EXPECT_GT(moved, 0);
  EXPECT_FALSE(cloud_->table().trunks_of(2).empty());
  // Ownership is balanced within one trunk across alive slaves.
  std::size_t min_count = ~std::size_t{0}, max_count = 0;
  for (MachineId m = 0; m < cloud_->num_slaves(); ++m) {
    const std::size_t count = cloud_->table().trunks_of(m).size();
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  EXPECT_LE(max_count, min_count + 1);
  for (CellId id = 0; id < 100; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
  }
}

TEST_F(MemoryCloudTest, ContainsDistinguishesAbsenceFromUnavailability) {
  ASSERT_TRUE(cloud_->AddCell(7, Slice("here")).ok());
  // Absence is a definitive answer: OK with exists=false.
  bool exists = true;
  ASSERT_TRUE(cloud_->Contains(4242, &exists).ok());
  EXPECT_FALSE(exists);
  // A down owner is NOT absence: the status must be non-OK so a caller can
  // never mistake "unreachable" for "deleted".
  const MachineId owner = cloud_->MachineOf(7);
  ASSERT_TRUE(cloud_->FailMachine(owner).ok());
  exists = true;
  const Status s = cloud_->Contains(7, &exists);
  EXPECT_TRUE(s.IsUnavailable()) << s.message();
}

TEST_F(MemoryCloudTest, StaleReplicaResyncsTransparently) {
  ASSERT_TRUE(cloud_->AddCell(11, Slice("moved")).ok());
  const TrunkId trunk = cloud_->TrunkOf(11);
  const MachineId old_owner = cloud_->MachineOf(11);
  const MachineId new_owner =
      static_cast<MachineId>((old_owner + 1) % cloud_->num_slaves());
  ASSERT_TRUE(cloud_->MigrateTrunk(trunk, new_owner).ok());
  // Roll the client's table replica back to the seed layout: it now names
  // the old owner for the migrated trunk. The first access fails over
  // there ("trunk not hosted"), re-syncs from the primary and succeeds.
  cloud_->DesyncReplicaForTest(cloud_->client_id());
  std::string out;
  ASSERT_TRUE(cloud_->GetCell(11, &out).ok());
  EXPECT_EQ(out, "moved");
}

TEST_F(MemoryCloudFtTest, RestartWithoutRecoveryIsPermanentlyStale) {
  for (CellId id = 0; id < 40; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("stale")).ok());
  }
  // Pick a cell owned by a non-leader machine, crash the owner and restart
  // it *without* running recovery: the primary table still names it for its
  // trunks, but the restarted process hosts nothing. Every retry re-syncs to
  // the same wrong answer — the terminal error names that condition, not a
  // dead owner.
  CellId probe = 0;
  while (cloud_->MachineOf(probe) == cloud_->leader()) ++probe;
  const MachineId owner = cloud_->MachineOf(probe);
  ASSERT_TRUE(cloud_->FailMachine(owner).ok());
  ASSERT_TRUE(cloud_->RestartMachine(owner).ok());
  std::string out;
  const Status s = cloud_->GetCell(probe, &out);
  ASSERT_TRUE(s.IsUnavailable()) << s.message();
  EXPECT_NE(s.message().find("permanently stale"), std::string::npos)
      << s.message();
  // Proper recovery repairs the table and the data comes back.
  ASSERT_TRUE(cloud_->FailMachine(owner).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(owner).ok());
  ASSERT_TRUE(cloud_->GetCell(probe, &out).ok());
  EXPECT_EQ(out, "stale");
}

TEST_F(MemoryCloudFtTest, SequentialFailuresSurvivable) {
  for (CellId id = 0; id < 60; ++id) {
    ASSERT_TRUE(cloud_->AddCell(id, Slice("multi")).ok());
  }
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(1).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(1).ok());
  ASSERT_TRUE(cloud_->SaveSnapshot().ok());
  ASSERT_TRUE(cloud_->FailMachine(2).ok());
  ASSERT_TRUE(cloud_->RecoverMachine(2).ok());
  for (CellId id = 0; id < 60; ++id) {
    std::string out;
    ASSERT_TRUE(cloud_->GetCell(id, &out).ok()) << "cell " << id;
    EXPECT_EQ(out, "multi");
  }
}

}  // namespace
}  // namespace trinity::cloud
