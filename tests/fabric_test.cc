#include "net/fabric.h"

#include <gtest/gtest.h>

#include "net/cost_model.h"
#include "net/fault_injector.h"

namespace trinity::net {
namespace {

// Prevents the optimizer from discarding busy-work loops in timing tests.
volatile double benchmarkish_sink = 0;

TEST(FabricTest, AsyncDeliveryAfterFlush) {
  Fabric::Params params;
  params.pack_threshold_bytes = 1 << 20;  // Never auto-flush.
  Fabric fabric(2, params);
  std::vector<std::string> received;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId src, Slice payload) {
    EXPECT_EQ(src, 0);
    received.push_back(payload.ToString());
  });
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("msg1")).ok());
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("msg2")).ok());
  EXPECT_TRUE(received.empty());  // Buffered, not yet delivered.
  fabric.FlushAll();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "msg1");
  EXPECT_EQ(received[1], "msg2");
}

TEST(FabricTest, PackingReducesTransfers) {
  Fabric fabric(2);  // Default 64 KiB pack threshold.
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("tiny")).ok());
  }
  fabric.FlushAll();
  EXPECT_EQ(count, 1000);
  const NetworkStats stats = fabric.stats();
  EXPECT_EQ(stats.messages, 1000u);
  // 1000 x 20 wire bytes ~ 20 KB: everything fits one transfer.
  EXPECT_LE(stats.transfers, 2u);
}

TEST(FabricTest, UnpackedModeIsOneTransferPerMessage) {
  Fabric::Params params;
  params.pack_messages = false;
  Fabric fabric(2, params);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("tiny")).ok());
  }
  EXPECT_EQ(count, 100);  // Immediate delivery.
  EXPECT_EQ(fabric.stats().transfers, 100u);
}

TEST(FabricTest, ThresholdTriggersAutoFlush) {
  Fabric::Params params;
  params.pack_threshold_bytes = 256;
  Fabric fabric(2, params);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  const std::string big(300, 'b');
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice(big)).ok());
  EXPECT_EQ(count, 1);  // Exceeded threshold -> flushed immediately.
}

TEST(FabricTest, LocalMessagesAreFree) {
  Fabric fabric(2);
  int count = 0;
  fabric.RegisterAsyncHandler(0, 7, [&](MachineId, Slice) { ++count; });
  ASSERT_TRUE(fabric.SendAsync(0, 0, 7, Slice("local")).ok());
  EXPECT_EQ(count, 1);
  const NetworkStats stats = fabric.stats();
  EXPECT_EQ(stats.local_messages, 1u);
  EXPECT_EQ(stats.transfers, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(FabricTest, SendPackedDeliversOnceAndCountsMessages) {
  Fabric fabric(2);
  int handler_calls = 0;
  std::string got;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId src, Slice payload) {
    EXPECT_EQ(src, 0);
    ++handler_calls;
    got = payload.ToString();
  });
  ASSERT_TRUE(fabric.SendPacked(0, 1, 7, Slice("packed-batch"), 50).ok());
  EXPECT_EQ(handler_calls, 1);  // One payload, one handler invocation.
  EXPECT_EQ(got, "packed-batch");
  const NetworkStats stats = fabric.stats();
  EXPECT_EQ(stats.messages, 50u);  // Logical messages, not payloads.
  EXPECT_EQ(stats.transfers, 1u);  // Fits in one pack-threshold transfer.
}

TEST(FabricTest, SendPackedChargesTransfersByThreshold) {
  Fabric::Params params;
  params.pack_threshold_bytes = 1024;
  Fabric fabric(2, params);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  const std::string payload(4096, 'x');
  ASSERT_TRUE(fabric.SendPacked(0, 1, 7, Slice(payload), 100).ok());
  // 4096 bytes over a 1 KiB threshold = 4 physical transfers.
  EXPECT_EQ(fabric.stats().transfers, 4u);
}

TEST(FabricTest, SendPackedUnpackedModeChargesPerMessage) {
  Fabric::Params params;
  params.pack_messages = false;
  Fabric fabric(2, params);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  ASSERT_TRUE(fabric.SendPacked(0, 1, 7, Slice("abcdef"), 3).ok());
  // Ablation baseline: one transfer per logical message.
  EXPECT_EQ(fabric.stats().transfers, 3u);
}

TEST(FabricTest, SendPackedLocalSkipsTheWire) {
  Fabric fabric(2);
  int calls = 0;
  fabric.RegisterAsyncHandler(0, 7, [&](MachineId, Slice) { ++calls; });
  ASSERT_TRUE(fabric.SendPacked(0, 0, 7, Slice("local"), 5).ok());
  EXPECT_EQ(calls, 1);
  const NetworkStats stats = fabric.stats();
  EXPECT_EQ(stats.local_messages, 5u);
  EXPECT_EQ(stats.transfers, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(FabricTest, SendPackedToDownMachineDropsWholeBatch) {
  Fabric fabric(2);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  fabric.SetMachineDown(1);
  EXPECT_TRUE(fabric.SendPacked(0, 1, 7, Slice("batch"), 7).IsUnavailable());
  const NetworkStats stats = fabric.stats();
  EXPECT_EQ(stats.dropped, 7u);
  EXPECT_EQ(stats.transfers, 0u);
}

TEST(FabricTest, SyncCallRoundTrip) {
  Fabric fabric(2);
  fabric.RegisterSyncHandler(
      1, 9, [](MachineId, Slice payload, std::string* response) {
        *response = "echo:" + payload.ToString();
        return Status::OK();
      });
  std::string response;
  ASSERT_TRUE(fabric.Call(0, 1, 9, Slice("ping"), &response).ok());
  EXPECT_EQ(response, "echo:ping");
  EXPECT_EQ(fabric.stats().sync_calls, 1u);
  EXPECT_EQ(fabric.stats().transfers, 2u);  // Request + response.
}

TEST(FabricTest, SyncCallPropagatesHandlerStatus) {
  Fabric fabric(2);
  fabric.RegisterSyncHandler(1, 9, [](MachineId, Slice, std::string*) {
    return Status::NotFound("nothing here");
  });
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).IsNotFound());
}

TEST(FabricTest, MissingHandlerIsNotFound) {
  Fabric fabric(2);
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 99, Slice(), &response).IsNotFound());
}

TEST(FabricTest, DownMachineDropsAndReports) {
  Fabric fabric(2);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  fabric.SetMachineDown(1);
  EXPECT_FALSE(fabric.IsMachineUp(1));
  EXPECT_TRUE(fabric.SendAsync(0, 1, 7, Slice("lost")).IsUnavailable());
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 7, Slice(), &response).IsUnavailable());
  fabric.FlushAll();
  EXPECT_EQ(count, 0);
  EXPECT_GT(fabric.stats().dropped, 0u);
  fabric.SetMachineUp(1);
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("back")).ok());
  fabric.FlushAll();
  EXPECT_EQ(count, 1);
}

TEST(FabricTest, HandlersCanSendRecursively) {
  Fabric fabric(3);
  std::vector<int> hops;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice payload) {
    hops.push_back(1);
    fabric.SendAsync(1, 2, 7, payload);
  });
  fabric.RegisterAsyncHandler(2, 7,
                              [&](MachineId, Slice) { hops.push_back(2); });
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("relay")).ok());
  fabric.FlushAll();  // Must drain recursively enqueued messages too.
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], 1);
  EXPECT_EQ(hops[1], 2);
}

TEST(FabricTest, MetersAccumulateAndReset) {
  Fabric fabric(2);
  fabric.AddCpuMicros(0, 150.0);
  fabric.AddCpuMicros(1, 50.0);
  EXPECT_DOUBLE_EQ(fabric.cpu_micros(0), 150.0);
  EXPECT_DOUBLE_EQ(fabric.MaxCpuMicros(), 150.0);
  fabric.ResetMeters();
  EXPECT_DOUBLE_EQ(fabric.MaxCpuMicros(), 0.0);
  EXPECT_EQ(fabric.stats().messages, 0u);
}

TEST(FabricTest, HandlerExecutionIsMetered) {
  Fabric fabric(2);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {
    double sink = 0;
    for (int i = 0; i < 200000; ++i) sink += i;
    benchmarkish_sink = sink;
  });
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("work")).ok());
  fabric.FlushAll();
  EXPECT_GT(fabric.cpu_micros(1), 0.0);
  EXPECT_DOUBLE_EQ(fabric.cpu_micros(0), 0.0);
}

TEST(FabricTest, TrafficAttribution) {
  Fabric::Params params;
  params.pack_threshold_bytes = 1;  // Flush every message.
  Fabric fabric(3, params);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  fabric.RegisterAsyncHandler(2, 7, [](MachineId, Slice) {});
  fabric.SendAsync(0, 1, 7, Slice("x"));
  fabric.SendAsync(0, 2, 7, Slice("y"));
  fabric.FlushAll();
  const PerMachineTraffic traffic = fabric.traffic();
  EXPECT_EQ(traffic.transfers_out[0], 2u);
  EXPECT_EQ(traffic.transfers_in[1], 1u);
  EXPECT_EQ(traffic.transfers_in[2], 1u);
  EXPECT_GT(traffic.bytes_out[0], 0u);
}

TEST(FabricTest, SendToDownMachineCountsDropped) {
  Fabric fabric(2);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  fabric.SetMachineDown(1);
  const std::uint64_t before = fabric.stats().dropped;
  EXPECT_TRUE(fabric.SendAsync(0, 1, 7, Slice("lost")).IsUnavailable());
  EXPECT_EQ(fabric.stats().dropped, before + 1);
  // Messages already buffered toward a machine that dies before the flush
  // are dropped (and counted) at flush time.
  fabric.SetMachineUp(1);
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("buffered")).ok());
  fabric.SetMachineDown(1);
  fabric.FlushAll();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(fabric.stats().dropped, before + 2);
}

TEST(FabricTest, DownMachineCannotOriginateTraffic) {
  Fabric fabric(2);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  fabric.RegisterSyncHandler(1, 9, [](MachineId, Slice, std::string*) {
    return Status::OK();
  });
  fabric.SetMachineDown(0);
  EXPECT_TRUE(fabric.SendAsync(0, 1, 7, Slice("x")).IsUnavailable());
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).IsUnavailable());
}

TEST(FabricTest, HandlerReregistrationAfterRestartReceivesTraffic) {
  Fabric fabric(2);
  int old_count = 0, new_count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++old_count; });
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("pre")).ok());
  fabric.FlushAll();
  EXPECT_EQ(old_count, 1);
  // Crash + restart: the restarted process registers a fresh handler, which
  // replaces the old registration and receives all subsequent traffic.
  fabric.SetMachineDown(1);
  fabric.SetMachineUp(1);
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++new_count; });
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("post")).ok());
  fabric.FlushAll();
  EXPECT_EQ(old_count, 1);
  EXPECT_EQ(new_count, 1);
}

// ----------------------------------------------------- Fault injection

TEST(FaultInjectorTest, DropNextSwallowsExactlyOneMessage) {
  Fabric fabric(2);
  FaultInjector injector(1);
  fabric.SetFaultInjector(&injector);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  injector.DropNext(0, 1);
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("eaten")).ok());  // Silent loss.
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("kept")).ok());
  fabric.FlushAll();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(injector.stats().dropped, 1u);
  EXPECT_EQ(fabric.stats().injected_drops, 1u);
}

TEST(FaultInjectorTest, CallPoliciesFailWithConfiguredStatus) {
  Fabric fabric(2);
  FaultInjector injector(2);
  fabric.SetFaultInjector(&injector);
  fabric.RegisterSyncHandler(1, 9, [](MachineId, Slice, std::string*) {
    return Status::OK();
  });
  FaultInjector::Policy policy;
  policy.call_fail_prob = 1.0;
  injector.SetDefaultPolicy(policy);
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).IsUnavailable());
  policy.call_fail_prob = 0.0;
  policy.call_timeout_prob = 1.0;
  injector.SetDefaultPolicy(policy);
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).IsTimedOut());
  const FaultInjector::Stats stats = injector.stats();
  EXPECT_EQ(stats.failed_calls, 1u);
  EXPECT_EQ(stats.timed_out_calls, 1u);
  EXPECT_EQ(fabric.stats().injected_call_failures, 2u);
  injector.ClearPolicies();
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).ok());
}

TEST(FaultInjectorTest, DuplicatePolicyDeliversTwice) {
  Fabric fabric(2);
  FaultInjector injector(3);
  fabric.SetFaultInjector(&injector);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  FaultInjector::Policy policy;
  policy.duplicate_prob = 1.0;
  injector.SetDefaultPolicy(policy);
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("twice")).ok());
  fabric.FlushAll();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(injector.stats().duplicated, 1u);
  EXPECT_EQ(fabric.stats().injected_duplicates, 1u);
}

TEST(FaultInjectorTest, PartitionBlocksBothDirectionsUntilCleared) {
  Fabric fabric(4);
  FaultInjector injector(4);
  fabric.SetFaultInjector(&injector);
  int count = 0;
  for (MachineId m = 0; m < 4; ++m) {
    fabric.RegisterAsyncHandler(m, 7, [&](MachineId, Slice) { ++count; });
    fabric.RegisterSyncHandler(m, 9, [](MachineId, Slice, std::string*) {
      return Status::OK();
    });
  }
  injector.Partition({0, 1}, {2, 3});
  std::string response;
  // Cross-cut traffic is refused in both directions.
  EXPECT_TRUE(fabric.Call(0, 2, 9, Slice(), &response).IsUnavailable());
  EXPECT_TRUE(fabric.Call(3, 1, 9, Slice(), &response).IsUnavailable());
  ASSERT_TRUE(fabric.SendAsync(1, 3, 7, Slice("cut")).ok());  // Silent drop.
  fabric.FlushAll();
  EXPECT_EQ(count, 0);
  // Same-side traffic is unaffected.
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).ok());
  EXPECT_TRUE(fabric.Call(2, 3, 9, Slice(), &response).ok());
  EXPECT_GT(injector.stats().partition_blocks, 0u);
  injector.ClearPartitions();
  EXPECT_TRUE(fabric.Call(0, 2, 9, Slice(), &response).ok());
  ASSERT_TRUE(fabric.SendAsync(1, 3, 7, Slice("healed")).ok());
  fabric.FlushAll();
  EXPECT_EQ(count, 1);
}

TEST(FaultInjectorTest, DelayedFlushHeldUntilFlushAll) {
  Fabric::Params params;
  params.pack_threshold_bytes = 1;  // Every send tries to flush immediately.
  Fabric fabric(2, params);
  FaultInjector injector(5);
  fabric.SetFaultInjector(&injector);
  int count = 0;
  fabric.RegisterAsyncHandler(1, 7, [&](MachineId, Slice) { ++count; });
  FaultInjector::Policy policy;
  policy.delay_flush_prob = 1.0;
  injector.SetDefaultPolicy(policy);
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("held")).ok());
  EXPECT_EQ(count, 0);  // Threshold flush was injected away.
  EXPECT_GT(injector.stats().delayed_flushes, 0u);
  EXPECT_GT(fabric.stats().delayed_flushes, 0u);
  fabric.FlushAll();  // The barrier overrides injected delays.
  EXPECT_EQ(count, 1);
}

TEST(FaultInjectorTest, CrashAfterTakesMachineDownAndNotifies) {
  Fabric fabric(3);
  FaultInjector injector(6);
  fabric.SetFaultInjector(&injector);
  std::vector<MachineId> crashed;
  fabric.SetCrashListener([&](MachineId m) { crashed.push_back(m); });
  fabric.RegisterSyncHandler(1, 9, [](MachineId, Slice, std::string*) {
    return Status::OK();
  });
  injector.CrashAfter(1, 2);
  std::string response;
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).ok());
  EXPECT_TRUE(fabric.IsMachineUp(1));
  // The second message touching machine 1 completes, then the crash fires.
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).ok());
  EXPECT_FALSE(fabric.IsMachineUp(1));
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], 1);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(fabric.stats().injected_crashes, 1u);
  EXPECT_TRUE(fabric.Call(0, 1, 9, Slice(), &response).IsUnavailable());
}

TEST(FaultInjectorTest, PairPolicyOverridesRangeAndDefault) {
  Fabric fabric(3);
  FaultInjector injector(7);
  fabric.SetFaultInjector(&injector);
  int count = 0;
  for (MachineId m = 0; m < 3; ++m) {
    fabric.RegisterAsyncHandler(m, 7, [&](MachineId, Slice) { ++count; });
  }
  FaultInjector::Policy drop_all;
  drop_all.drop_prob = 1.0;
  injector.SetDefaultPolicy(drop_all);
  injector.SetHandlerRangePolicy(7, 7, drop_all);
  // The pair policy (deliver everything) wins over both.
  injector.SetPairPolicy(0, 1, FaultInjector::Policy());
  ASSERT_TRUE(fabric.SendAsync(0, 1, 7, Slice("kept")).ok());
  ASSERT_TRUE(fabric.SendAsync(0, 2, 7, Slice("dropped")).ok());
  fabric.FlushAll();
  EXPECT_EQ(count, 1);
}

TEST(FaultInjectorTest, SameSeedMakesIdenticalDecisions) {
  auto run = [](std::uint64_t seed) {
    Fabric fabric(2);
    FaultInjector injector(seed);
    fabric.SetFaultInjector(&injector);
    fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
    FaultInjector::Policy policy;
    policy.drop_prob = 0.3;
    policy.duplicate_prob = 0.2;
    injector.SetDefaultPolicy(policy);
    for (int i = 0; i < 500; ++i) {
      fabric.SendAsync(0, 1, 7, Slice("m"));
    }
    fabric.FlushAll();
    const FaultInjector::Stats stats = injector.stats();
    return std::to_string(stats.dropped) + "/" +
           std::to_string(stats.duplicated);
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // Different seed, different stream.
}

TEST(CostModelTest, ComputeTermScalesWithCriticalPath) {
  Fabric fabric(4);
  CostModel::Params params;
  params.cores_per_machine = 2.0;
  CostModel model(params);
  fabric.AddCpuMicros(0, 2e6);  // 2 seconds of single-core work.
  EXPECT_NEAR(model.ComputeSeconds(fabric), 1.0, 1e-9);
  fabric.AddCpuMicros(1, 1e6);  // Below the max: no change.
  EXPECT_NEAR(model.ComputeSeconds(fabric), 1.0, 1e-9);
}

TEST(CostModelTest, CommTermScalesWithBytes) {
  Fabric::Params fparams;
  fparams.pack_threshold_bytes = 1;
  Fabric fabric(2, fparams);
  fabric.RegisterAsyncHandler(1, 7, [](MachineId, Slice) {});
  CostModel model;
  const double before = model.CommSeconds(fabric);
  fabric.SendAsync(0, 1, 7, Slice(std::string(100000, 'b')));
  fabric.FlushAll();
  EXPECT_GT(model.CommSeconds(fabric), before);
}

TEST(CostModelTest, PhaseIsComputePlusComm) {
  Fabric fabric(2);
  CostModel model;
  fabric.AddCpuMicros(0, 1e6);
  EXPECT_NEAR(model.PhaseSeconds(fabric),
              model.ComputeSeconds(fabric) + model.CommSeconds(fabric),
              1e-12);
}

// --- Straggler (injected call delay) tests --------------------------------

TEST(FaultInjectorTest, CallDelayChargesCallerCpuAndDeadline) {
  Fabric fabric(2);
  FaultInjector injector(/*seed=*/7);
  FaultInjector::Policy slow;
  slow.call_delay_prob = 1.0;
  slow.call_delay_min_micros = 500.0;
  slow.call_delay_max_micros = 500.0;
  injector.SetDefaultPolicy(slow);
  fabric.SetFaultInjector(&injector);
  bool handler_ran = false;
  fabric.RegisterSyncHandler(1, 7, [&](MachineId, Slice, std::string*) {
    handler_ran = true;
    return Status::OK();
  });
  CallContext ctx(10000.0);
  std::string response;
  ASSERT_TRUE(fabric.Call(0, 1, 7, Slice("req"), &response, &ctx).ok());
  EXPECT_TRUE(handler_ran);  // Delay slows the call, doesn't kill it.
  EXPECT_GE(fabric.cpu_micros(0), 500.0);
  EXPECT_GE(ctx.consumed_micros(), 500.0);
  EXPECT_EQ(fabric.stats().injected_call_delays, 1u);
  const FaultInjector::Stats stats = injector.stats();
  EXPECT_EQ(stats.delayed_calls, 1u);
  EXPECT_DOUBLE_EQ(stats.delay_micros_total, 500.0);
}

TEST(FaultInjectorTest, CallDelayBeyondDeadlineSkipsHandler) {
  Fabric fabric(2);
  FaultInjector injector(/*seed=*/8);
  FaultInjector::Policy slow;
  slow.call_delay_prob = 1.0;
  slow.call_delay_min_micros = 5000.0;
  slow.call_delay_max_micros = 5000.0;
  injector.SetDefaultPolicy(slow);
  fabric.SetFaultInjector(&injector);
  bool handler_ran = false;
  fabric.RegisterSyncHandler(1, 7, [&](MachineId, Slice, std::string*) {
    handler_ran = true;
    return Status::OK();
  });
  CallContext ctx(100.0);  // The 5 ms straggler dwarfs the 100 µs budget.
  std::string response;
  const Status s = fabric.Call(0, 1, 7, Slice("req"), &response, &ctx);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_FALSE(handler_ran);  // Abandoned on the wire.
  EXPECT_TRUE(ctx.expired());
}

TEST(FaultInjectorTest, CallDelaysAreDeterministicPerSeed) {
  auto total_delay = [](std::uint64_t seed) {
    Fabric fabric(2);
    FaultInjector injector(seed);
    FaultInjector::Policy slow;
    slow.call_delay_prob = 0.5;
    slow.call_delay_min_micros = 100.0;
    slow.call_delay_max_micros = 900.0;
    injector.SetDefaultPolicy(slow);
    fabric.SetFaultInjector(&injector);
    fabric.RegisterSyncHandler(
        1, 7, [](MachineId, Slice, std::string*) { return Status::OK(); });
    std::string response;
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(fabric.Call(0, 1, 7, Slice("req"), &response).ok());
    }
    return injector.stats().delay_micros_total;
  };
  const double a = total_delay(1234);
  const double b = total_delay(1234);
  const double c = total_delay(4321);
  EXPECT_DOUBLE_EQ(a, b);  // Same seed, same stragglers.
  EXPECT_NE(a, c);         // Different seed decorrelates.
  EXPECT_GT(a, 0.0);       // The 50% policy fired at least once in 64 draws.
}

TEST(FaultInjectorTest, ExpiredContextShortCircuitsBeforeTheWire) {
  Fabric fabric(2);
  bool handler_ran = false;
  fabric.RegisterSyncHandler(1, 7, [&](MachineId, Slice, std::string*) {
    handler_ran = true;
    return Status::OK();
  });
  CallContext ctx(100.0);
  ctx.Consume(100.0);  // Already spent before the call.
  std::string response;
  const Status s = fabric.Call(0, 1, 7, Slice("req"), &response, &ctx);
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_FALSE(handler_ran);
  EXPECT_EQ(fabric.stats().sync_calls, 0u);  // Never touched the wire.

  CallContext cancelled(CallContext::kNoDeadline);
  cancelled.Cancel();
  const Status a = fabric.Call(0, 1, 7, Slice("req"), &response, &cancelled);
  EXPECT_TRUE(a.IsAborted()) << a.ToString();
  EXPECT_EQ(fabric.stats().sync_calls, 0u);
}

}  // namespace
}  // namespace trinity::net
