#include "tfs/tfs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace trinity::tfs {
namespace {

class TfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/tfs_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    options_.root = root_;
    options_.num_datanodes = 3;
    options_.replication = 2;
    options_.block_size = 64;  // Small blocks to exercise splitting.
    ASSERT_TRUE(Tfs::Open(options_, &tfs_).ok());
  }

  std::string root_;
  Tfs::Options options_;
  std::unique_ptr<Tfs> tfs_;
};

TEST_F(TfsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(tfs_->WriteFile("a/b", Slice("hello tfs")).ok());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("a/b", &data).ok());
  EXPECT_EQ(data, "hello tfs");
}

TEST_F(TfsTest, MultiBlockFile) {
  std::string big(1000, 'x');
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = char('a' + i % 26);
  ASSERT_TRUE(tfs_->WriteFile("big", Slice(big)).ok());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("big", &data).ok());
  EXPECT_EQ(data, big);
  // 1000 bytes at 64-byte blocks = 16 blocks.
  EXPECT_GE(tfs_->stats().blocks_written, 16u);
}

TEST_F(TfsTest, OverwriteReplacesContent) {
  ASSERT_TRUE(tfs_->WriteFile("f", Slice("one")).ok());
  ASSERT_TRUE(tfs_->WriteFile("f", Slice("two")).ok());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("f", &data).ok());
  EXPECT_EQ(data, "two");
}

TEST_F(TfsTest, ReadMissingFileFails) {
  std::string data;
  EXPECT_TRUE(tfs_->ReadFile("nope", &data).IsNotFound());
}

TEST_F(TfsTest, DeleteRemovesFile) {
  ASSERT_TRUE(tfs_->WriteFile("f", Slice("x")).ok());
  ASSERT_TRUE(tfs_->DeleteFile("f").ok());
  EXPECT_FALSE(tfs_->Exists("f"));
  EXPECT_TRUE(tfs_->DeleteFile("f").IsNotFound());
}

TEST_F(TfsTest, CreateExclusiveIsAFence) {
  ASSERT_TRUE(tfs_->CreateExclusive("leader_flag", Slice("m0")).ok());
  EXPECT_TRUE(
      tfs_->CreateExclusive("leader_flag", Slice("m1")).IsAlreadyExists());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("leader_flag", &data).ok());
  EXPECT_EQ(data, "m0");  // First writer wins.
}

TEST_F(TfsTest, ListByPrefix) {
  ASSERT_TRUE(tfs_->WriteFile("ckpt/1", Slice("a")).ok());
  ASSERT_TRUE(tfs_->WriteFile("ckpt/2", Slice("b")).ok());
  ASSERT_TRUE(tfs_->WriteFile("other", Slice("c")).ok());
  const auto files = tfs_->List("ckpt/");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "ckpt/1");
  EXPECT_EQ(files[1], "ckpt/2");
}

TEST_F(TfsTest, SurvivesDatanodeFailure) {
  ASSERT_TRUE(tfs_->WriteFile("critical", Slice("replicated data")).ok());
  ASSERT_TRUE(tfs_->KillDatanode(0).ok());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("critical", &data).ok());
  EXPECT_EQ(data, "replicated data");
}

TEST_F(TfsTest, FailoverIsCounted) {
  // Write many files so some blocks have their first replica on dn0.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        tfs_->WriteFile("f" + std::to_string(i), Slice("payload")).ok());
  }
  ASSERT_TRUE(tfs_->KillDatanode(0).ok());
  for (int i = 0; i < 10; ++i) {
    std::string data;
    ASSERT_TRUE(tfs_->ReadFile("f" + std::to_string(i), &data).ok());
  }
  EXPECT_GT(tfs_->stats().replica_read_failovers, 0u);
}

TEST_F(TfsTest, AllReplicasDeadIsUnavailable) {
  Tfs::Options opts = options_;
  opts.root = root_ + "_solo";
  opts.num_datanodes = 1;
  opts.replication = 1;
  std::unique_ptr<Tfs> solo;
  ASSERT_TRUE(Tfs::Open(opts, &solo).ok());
  ASSERT_TRUE(solo->WriteFile("f", Slice("x")).ok());
  ASSERT_TRUE(solo->KillDatanode(0).ok());
  std::string data;
  EXPECT_TRUE(solo->ReadFile("f", &data).IsUnavailable());
  ASSERT_TRUE(solo->ReviveDatanode(0).ok());
  EXPECT_TRUE(solo->ReadFile("f", &data).ok());
}

TEST_F(TfsTest, WritesRequireAliveDatanodes) {
  for (int dn = 0; dn < options_.num_datanodes; ++dn) {
    ASSERT_TRUE(tfs_->KillDatanode(dn).ok());
  }
  EXPECT_TRUE(tfs_->WriteFile("f", Slice("x")).IsUnavailable());
}

TEST_F(TfsTest, ManifestSurvivesReopen) {
  ASSERT_TRUE(tfs_->WriteFile("persistent", Slice("still here")).ok());
  tfs_.reset();
  ASSERT_TRUE(Tfs::Open(options_, &tfs_).ok());
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("persistent", &data).ok());
  EXPECT_EQ(data, "still here");
}

TEST_F(TfsTest, CorruptReplicaFailsOver) {
  ASSERT_TRUE(tfs_->WriteFile("f", Slice("good data")).ok());
  // Tamper with every block replica on datanode 0.
  for (const auto& entry :
       std::filesystem::directory_iterator(root_ + "/dn0")) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "corrupted!";
  }
  std::string data;
  ASSERT_TRUE(tfs_->ReadFile("f", &data).ok());
  EXPECT_EQ(data, "good data");  // Checksum mismatch fell back to replica.
}

TEST_F(TfsTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(tfs_->WriteFile("empty", Slice()).ok());
  std::string data = "not empty";
  ASSERT_TRUE(tfs_->ReadFile("empty", &data).ok());
  EXPECT_TRUE(data.empty());
}

TEST(TfsOptionsTest, RejectsBadOptions) {
  std::unique_ptr<Tfs> tfs;
  Tfs::Options opts;
  opts.root = "";
  EXPECT_TRUE(Tfs::Open(opts, &tfs).IsInvalidArgument());
  opts.root = ::testing::TempDir() + "/tfs_bad";
  opts.num_datanodes = 0;
  EXPECT_TRUE(Tfs::Open(opts, &tfs).IsInvalidArgument());
  opts.num_datanodes = 2;
  opts.block_size = 0;
  EXPECT_TRUE(Tfs::Open(opts, &tfs).IsInvalidArgument());
}

TEST(TfsOptionsTest, ReplicationClampedToDatanodes) {
  std::unique_ptr<Tfs> tfs;
  Tfs::Options opts;
  opts.root = ::testing::TempDir() + "/tfs_clamp";
  std::filesystem::remove_all(opts.root);
  opts.num_datanodes = 2;
  opts.replication = 5;
  ASSERT_TRUE(Tfs::Open(opts, &tfs).ok());
  ASSERT_TRUE(tfs->WriteFile("f", Slice("x")).ok());
  std::string data;
  ASSERT_TRUE(tfs->ReadFile("f", &data).ok());
}

}  // namespace
}  // namespace trinity::tfs
