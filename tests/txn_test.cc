// Snapshot-isolation transaction suite: protocol correctness (read-your-
// writes, repeatable reads, first-committer-wins, read-set validation),
// crash-consistent intent recovery (a coordinator killed between ANY two
// commit steps leaves no torn state — the bank-transfer sum is conserved
// and one recovery sweep clears every orphaned intent), the exactly-one-
// wins decision race between a live coordinator and a presumed-abort
// helper, and chaos runs over the replicated cluster: coordinator and
// participant kills mid-commit, a partition during validation, and
// promotion failover with decided-but-unresolved commits.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "net/fault_injector.h"
#include "serving/query_frontend.h"
#include "tfs/tfs.h"
#include "txn/txn.h"

namespace trinity {
namespace {

using txn::CommitPoint;
using txn::TxnManager;

// Same sweep hook as chaos_test.cc: scripts/check.sh --chaos-sweep N reruns
// the txn label with TRINITY_CHAOS_SEED_OFFSET=1000, 2000, ...
std::uint64_t SeedOffset() {
  static const std::uint64_t offset = [] {
    const char* env = std::getenv("TRINITY_CHAOS_SEED_OFFSET");
    return env == nullptr ? 0ULL : std::strtoull(env, nullptr, 10);
  }();
  return offset;
}

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 1 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

struct ChaosCluster {
  std::unique_ptr<tfs::Tfs> tfs;
  std::unique_ptr<net::FaultInjector> injector;
  std::unique_ptr<cloud::MemoryCloud> cloud;
};

ChaosCluster NewReplicatedCluster(const std::string& tag, std::uint64_t seed,
                                  int replication_factor = 2,
                                  int slaves = 4) {
  ChaosCluster c;
  tfs::Tfs::Options tfs_options;
  tfs_options.root = ::testing::TempDir() + "/txn_" + tag + "_" +
                     std::to_string(seed) + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(tfs_options.root);
  EXPECT_TRUE(tfs::Tfs::Open(tfs_options, &c.tfs).ok());
  c.injector = std::make_unique<net::FaultInjector>(seed);
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 256 * 1024;
  options.tfs = c.tfs.get();
  options.replication_factor = replication_factor;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &c.cloud).ok());
  c.cloud->fabric().SetFaultInjector(c.injector.get());
  return c;
}

void DrainCrashSchedule(ChaosCluster& c, MachineId victim) {
  for (int i = 0; i < 128 && c.cloud->fabric().IsMachineUp(victim); ++i) {
    std::string pong;
    c.cloud->fabric().Call(c.cloud->client_id(), victim,
                           cloud::kHeartbeatHandler, Slice(), &pong);
  }
}

void HealReplicated(ChaosCluster& c) {
  c.cloud->DetectAndRecover();
  for (MachineId m = 0; m < c.cloud->num_slaves(); ++m) {
    if (!c.cloud->fabric().IsMachineUp(m)) {
      ASSERT_TRUE(c.cloud->RestartMachine(m).ok());
    }
  }
  c.cloud->DetectAndRecover();
}

// --------------------------------------------------------- bank fixtures

constexpr CellId kRateCell = 900;  ///< Read-but-never-written config cell.

void SeedAccounts(cloud::MemoryCloud* cloud, const std::vector<CellId>& ids,
                  int balance) {
  for (CellId id : ids) {
    ASSERT_TRUE(cloud->PutCell(id, Slice(std::to_string(balance))).ok());
  }
  ASSERT_TRUE(cloud->PutCell(kRateCell, Slice("rate:1")).ok());
}

long CommittedBalance(TxnManager& mgr, CellId id) {
  std::string v;
  Status s = mgr.ReadCommitted(mgr.cloud()->client_id(), id, &v);
  EXPECT_TRUE(s.ok()) << "account " << id << ": " << s.ToString();
  return s.ok() ? std::stol(v) : -1;
}

long CommittedSum(TxnManager& mgr, const std::vector<CellId>& ids) {
  long sum = 0;
  for (CellId id : ids) sum += CommittedBalance(mgr, id);
  return sum;
}

/// One bank transfer: reads the rate cell (pure read-set entry, so commit
/// exercises the validation phase) and both accounts, then rewrites the
/// accounts. Every CommitPoint of the two-phase protocol fires.
Status Transfer(TxnManager& mgr, MachineId src, CellId from, CellId to,
                long amount,
                std::function<bool(CommitPoint, int)> hook = nullptr) {
  txn::Transaction t = mgr.Begin(src);
  std::string rate, fv, tv;
  Status s = t.Get(kRateCell, &rate);
  if (!s.ok()) return s;
  s = t.Get(from, &fv);
  if (!s.ok()) return s;
  s = t.Get(to, &tv);
  if (!s.ok()) return s;
  t.Put(from, std::to_string(std::stol(fv) - amount));
  t.Put(to, std::to_string(std::stol(tv) + amount));
  if (hook) t.SetCommitHookForTest(std::move(hook));
  return t.Commit();
}

// ------------------------------------------------------------ status unit

TEST(TxnStatusTest, SubcodesDriveRetryability) {
  const Status conflict =
      Status::Aborted("lost race", Status::Subcode::kTxnConflict);
  EXPECT_TRUE(conflict.IsAborted());
  EXPECT_TRUE(conflict.IsTxnConflict());
  EXPECT_TRUE(conflict.IsRetryable());  // Contended transactions retry.
  EXPECT_NE(conflict.ToString().find("[txn-conflict]"), std::string::npos);

  const Status fenced =
      Status::Aborted("deposed", Status::Subcode::kFenced);
  EXPECT_TRUE(fenced.IsFenced());
  EXPECT_FALSE(fenced.IsRetryable());  // Fenced writes stay terminal.

  const Status guard =
      Status::Aborted("mismatch", Status::Subcode::kGuardFailed);
  EXPECT_TRUE(guard.IsGuardFailed());
  EXPECT_FALSE(guard.IsRetryable());

  EXPECT_FALSE(Status::Aborted("plain").IsTxnConflict());
}

// -------------------------------------------------------------- protocol

TEST(TxnBasicTest, CommitAppliesAllWritesAtomically) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  const std::vector<CellId> accounts = {1, 2};
  SeedAccounts(cloud.get(), accounts, 100);

  ASSERT_TRUE(Transfer(mgr, cloud->client_id(), 1, 2, 30).ok());
  EXPECT_EQ(CommittedBalance(mgr, 1), 70);
  EXPECT_EQ(CommittedBalance(mgr, 2), 130);
  EXPECT_EQ(mgr.stats().committed, 1u);

  // No intents linger after a clean commit.
  int pending = -1;
  ASSERT_TRUE(mgr.CountPendingIntents(cloud->client_id(), accounts, &pending)
                  .ok());
  EXPECT_EQ(pending, 0);
}

TEST(TxnBasicTest, ReadYourWritesAndRepeatableReads) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  ASSERT_TRUE(cloud->PutCell(1, Slice("before")).ok());

  txn::Transaction t = mgr.Begin();
  std::string v;
  ASSERT_TRUE(t.Get(1, &v).ok());
  EXPECT_EQ(v, "before");
  ASSERT_TRUE(t.Put(1, Slice("buffered")).ok());
  ASSERT_TRUE(t.Get(1, &v).ok());
  EXPECT_EQ(v, "buffered");  // Read-your-writes from the buffer.

  txn::Transaction r = mgr.Begin();
  ASSERT_TRUE(r.Get(1, &v).ok());
  EXPECT_EQ(v, "before");  // Nothing visible before commit.
  // Repeatable: the cached read-set entry answers, not the cloud.
  ASSERT_TRUE(r.Get(1, &v).ok());
  EXPECT_EQ(v, "before");

  ASSERT_TRUE(t.Commit().ok());
  ASSERT_TRUE(mgr.ReadCommitted(cloud->client_id(), 1, &v).ok());
  EXPECT_EQ(v, "buffered");
}

TEST(TxnBasicTest, RemoveCommitsTombstone) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  ASSERT_TRUE(cloud->PutCell(5, Slice("doomed")).ok());

  txn::Transaction t = mgr.Begin();
  ASSERT_TRUE(t.Remove(5).ok());
  ASSERT_TRUE(t.Commit().ok());

  std::string v;
  EXPECT_TRUE(mgr.ReadCommitted(cloud->client_id(), 5, &v).IsNotFound());
  // The tombstone keeps its commit version (anti-ABA): the raw cell still
  // exists and decodes as a versioned non-value.
  std::string raw;
  ASSERT_TRUE(cloud->GetCell(5, &raw).ok());
  txn::VersionedCell cell;
  ASSERT_TRUE(txn::CellCodec::Decode(Slice(raw), &cell).ok());
  EXPECT_FALSE(cell.exists);
  EXPECT_GT(cell.version, txn::CellCodec::kLegacyVersion);
}

TEST(TxnBasicTest, LegacyCellsInteroperate) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  ASSERT_TRUE(cloud->PutCell(9, Slice("plain-kv")).ok());

  // A transaction reads the pre-transactional payload as committed state...
  txn::Transaction t = mgr.Begin();
  std::string v;
  ASSERT_TRUE(t.Get(9, &v).ok());
  EXPECT_EQ(v, "plain-kv");
  ASSERT_TRUE(t.Put(9, Slice("upgraded")).ok());
  ASSERT_TRUE(t.Commit().ok());

  // ...and after the first transactional write the cell carries the codec;
  // raw readers must go through ReadCommitted/Decode from then on.
  std::string raw;
  ASSERT_TRUE(cloud->GetCell(9, &raw).ok());
  txn::VersionedCell cell;
  ASSERT_TRUE(txn::CellCodec::Decode(Slice(raw), &cell).ok());
  EXPECT_TRUE(cell.exists);
  EXPECT_EQ(cell.value, "upgraded");
}

TEST(TxnBasicTest, CommitTwiceIsInvalid) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  txn::Transaction t = mgr.Begin();
  ASSERT_TRUE(t.Put(1, Slice("x")).ok());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_TRUE(t.Commit().IsInvalidArgument());
  EXPECT_TRUE(t.Put(2, Slice("y")).IsInvalidArgument());
}

// -------------------------------------------------------------- conflicts

TEST(TxnConflictTest, FirstCommitterWinsOnWriteWrite) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  ASSERT_TRUE(cloud->PutCell(1, Slice("0")).ok());

  txn::Transaction t1 = mgr.Begin();
  txn::Transaction t2 = mgr.Begin();
  std::string v;
  ASSERT_TRUE(t1.Get(1, &v).ok());
  ASSERT_TRUE(t2.Get(1, &v).ok());
  ASSERT_TRUE(t1.Put(1, Slice("t1")).ok());
  ASSERT_TRUE(t2.Put(1, Slice("t2")).ok());

  ASSERT_TRUE(t1.Commit().ok());
  const Status s = t2.Commit();
  EXPECT_TRUE(s.IsTxnConflict()) << s.ToString();
  EXPECT_TRUE(s.IsRetryable());

  ASSERT_TRUE(mgr.ReadCommitted(cloud->client_id(), 1, &v).ok());
  EXPECT_EQ(v, "t1");
  EXPECT_EQ(mgr.stats().committed, 1u);
  EXPECT_EQ(mgr.stats().aborted, 1u);
}

TEST(TxnConflictTest, ReadSetValidationCatchesStaleRead) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  ASSERT_TRUE(cloud->PutCell(1, Slice("a")).ok());
  ASSERT_TRUE(cloud->PutCell(2, Slice("b")).ok());

  // t reads cell 2 but writes only cell 1; a concurrent commit to cell 2
  // must fail t's validation even though their write sets are disjoint.
  txn::Transaction t = mgr.Begin();
  std::string v;
  ASSERT_TRUE(t.Get(2, &v).ok());
  ASSERT_TRUE(t.Put(1, Slice("a2")).ok());

  txn::Transaction other = mgr.Begin();
  ASSERT_TRUE(other.Put(2, Slice("b2")).ok());
  ASSERT_TRUE(other.Commit().ok());

  EXPECT_TRUE(t.Commit().IsTxnConflict());
  ASSERT_TRUE(mgr.ReadCommitted(cloud->client_id(), 1, &v).ok());
  EXPECT_EQ(v, "a");  // t's write rolled back with the abort.
}

TEST(TxnConflictTest, LiveCoordinatorLosesDecisionRaceCleanly) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  const std::vector<CellId> accounts = {1, 2};
  SeedAccounts(cloud.get(), accounts, 100);

  // t1 pauses with its intents placed but no commit record; a full t2
  // transfer over the same accounts runs inside the pause, presumed-aborts
  // t1 (writing t1's 'A' record), and commits. When t1 resumes, its own
  // record CAS must lose and report the wound — never a double apply.
  Status t2_status = Status::NotFound("not run");
  const Status t1_status = Transfer(
      mgr, cloud->client_id(), 1, 2, 10,
      [&](CommitPoint point, int) {
        if (point == CommitPoint::kBeforeRecord && t2_status.IsNotFound()) {
          t2_status = Transfer(mgr, cloud->client_id(), 1, 2, 25);
        }
        return true;
      });
  ASSERT_TRUE(t2_status.ok()) << t2_status.ToString();
  EXPECT_TRUE(t1_status.IsTxnConflict()) << t1_status.ToString();
  EXPECT_EQ(CommittedBalance(mgr, 1), 75);   // Only t2 applied.
  EXPECT_EQ(CommittedBalance(mgr, 2), 125);
  EXPECT_GT(mgr.stats().presumed_aborts, 0u);
}

// ------------------------------------------------- crash-point sweep

// The robustness core: kill the coordinator at EVERY step boundary of both
// commit phases in turn, and after each kill assert (a) the bank sum is
// conserved — all-or-none, a half-applied transfer would break it; (b) one
// recovery sweep resolves every orphaned intent; (c) post-sweep readers see
// no intent; (d) a kill after the commit record landed yields the fully
// applied transfer (decided commits are never lost), a kill before yields
// the untouched balances (presumed abort).
TEST(TxnCrashSweepTest, CoordinatorKilledAtEveryCrashPointLeavesNoTornState) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  std::vector<CellId> accounts;
  for (CellId id = 1; id <= 8; ++id) accounts.push_back(id);
  SeedAccounts(cloud.get(), accounts, 100);
  const long kSum = 800;
  std::vector<CellId> audit = accounts;
  audit.push_back(kRateCell);

  int kill = 0;
  int swept_points = 0;
  for (;; ++kill) {
    SCOPED_TRACE("crash point " + std::to_string(kill));
    const CellId from = accounts[static_cast<std::size_t>(kill) % 8];
    const CellId to = accounts[static_cast<std::size_t>(kill + 3) % 8];
    const long from_before = CommittedBalance(mgr, from);
    const long to_before = CommittedBalance(mgr, to);

    int step = 0;
    bool fired = false;
    bool decided = false;  // Record written before the kill?
    const Status s = Transfer(
        mgr, cloud->client_id(), from, to, 5,
        [&](CommitPoint point, int) {
          if (point == CommitPoint::kAfterRecord ||
              point == CommitPoint::kAfterResolve) {
            decided = true;
          }
          if (step++ == kill) {
            fired = true;
            return false;
          }
          return true;
        });
    if (!fired) {
      // Swept past the final crash point: this run committed untouched.
      ASSERT_TRUE(s.ok()) << s.ToString();
      swept_points = kill;
      break;
    }
    ASSERT_FALSE(s.ok());

    // One recovery sweep resolves everything the kill left behind.
    int resolved = 0;
    ASSERT_TRUE(
        mgr.ResolveIntents(cloud->client_id(), audit, &resolved).ok());
    int pending = -1;
    ASSERT_TRUE(
        mgr.CountPendingIntents(cloud->client_id(), audit, &pending).ok());
    EXPECT_EQ(pending, 0) << "intents survived a full recovery sweep";

    // All-or-none, with the direction pinned by the commit record.
    const long from_after = CommittedBalance(mgr, from);
    const long to_after = CommittedBalance(mgr, to);
    EXPECT_EQ(CommittedSum(mgr, accounts), kSum);
    if (decided) {
      EXPECT_EQ(from_after, from_before - 5) << "decided commit lost";
      EXPECT_EQ(to_after, to_before + 5);
    } else {
      EXPECT_EQ(from_after, from_before) << "undecided txn partially applied";
      EXPECT_EQ(to_after, to_before);
    }
  }
  // 2 intents + 1 validation + record + 2 resolutions, with before/after
  // boundaries: the sweep must have covered both phases.
  EXPECT_GE(swept_points, 8);
  EXPECT_EQ(CommittedSum(mgr, accounts), kSum);
}

// Orphaned intents with no record are invisible to readers: the first
// ReadCommitted lazily presumed-aborts them, before any sweep runs.
TEST(TxnRecoveryTest, PostCrashReaderNeverObservesIntents) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  const std::vector<CellId> accounts = {1, 2};
  SeedAccounts(cloud.get(), accounts, 100);

  // Die with both intents placed, record absent.
  const Status s = Transfer(mgr, cloud->client_id(), 1, 2, 40,
                            [&](CommitPoint point, int) {
                              return point != CommitPoint::kBeforeRecord;
                            });
  ASSERT_FALSE(s.ok());
  int pending = -1;
  ASSERT_TRUE(
      mgr.CountPendingIntents(cloud->client_id(), accounts, &pending).ok());
  EXPECT_EQ(pending, 2);

  // Lazy resolution: plain committed reads decide abort and see the
  // pre-transfer balances, no sweep needed.
  EXPECT_EQ(CommittedBalance(mgr, 1), 100);
  EXPECT_EQ(CommittedBalance(mgr, 2), 100);
  ASSERT_TRUE(
      mgr.CountPendingIntents(cloud->client_id(), accounts, &pending).ok());
  EXPECT_EQ(pending, 0);
  EXPECT_GT(mgr.stats().presumed_aborts, 0u);
}

TEST(TxnRecoveryTest, DecidedCommitRollsForwardAfterCoordinatorDeath) {
  auto cloud = NewCloud();
  TxnManager mgr(cloud.get());
  const std::vector<CellId> accounts = {1, 2};
  SeedAccounts(cloud.get(), accounts, 100);

  // Die right after the commit record landed: intents unresolved, but the
  // transaction IS committed and every reader must roll it forward.
  const Status s = Transfer(mgr, cloud->client_id(), 1, 2, 40,
                            [&](CommitPoint point, int) {
                              return point != CommitPoint::kAfterRecord;
                            });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(CommittedBalance(mgr, 1), 60);
  EXPECT_EQ(CommittedBalance(mgr, 2), 140);
  EXPECT_GT(mgr.stats().rolled_forward, 0u);
}

// ---------------------------------------------------------------- serving

TEST(TxnFrontendTest, ContendedTransactionsRetryToCommit) {
  auto cloud = NewCloud();
  serving::QueryFrontend::Options options;
  serving::QueryFrontend frontend(cloud.get(), nullptr, options);
  ASSERT_TRUE(cloud->PutCell(1, Slice("0")).ok());

  // 4 threads × 10 increments of one hot cell through the frontend. Each
  // request retries internally on conflict; a request that still exhausts
  // its budget is re-submitted, so exactly 40 commits must land.
  constexpr int kThreads = 4, kPerThread = 10;
  std::atomic<int> resubmits{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Status s;
        do {
          s = frontend.ExecuteTransaction([](txn::Transaction& t) {
            std::string v;
            Status g = t.Get(1, &v);
            if (!g.ok()) return g;
            return t.Put(1, Slice(std::to_string(std::stol(v) + 1)));
          });
          if (!s.ok()) resubmits.fetch_add(1);
        } while (!s.ok());
      }
    });
  }
  for (auto& t : workers) t.join();

  std::string v;
  ASSERT_TRUE(frontend.txn_manager()
                  ->ReadCommitted(cloud->client_id(), 1, &v)
                  .ok());
  EXPECT_EQ(v, std::to_string(kThreads * kPerThread));
  const serving::ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.txn_committed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // Terminal outcomes partition received: committed + terminal conflicts
  // (each of which the loop above re-submitted).
  EXPECT_EQ(stats.received, stats.txn_committed + stats.txn_conflicts);
  EXPECT_EQ(stats.txn_conflicts, static_cast<std::uint64_t>(resubmits.load()));
}

// ------------------------------------------------------------------ chaos

class TxnChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

// Kills (coordinator and participant alike) + flaky replication traffic
// while transfers run from random slave coordinators. After each round the
// cluster heals, one sweep clears every orphaned intent, and the bank sum
// is conserved — regardless of where in the two-phase protocol the victim
// died.
TEST_P(TxnChaosTest, TransfersSurviveKillsMidCommit) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewReplicatedCluster("kill", seed);
  TxnManager mgr(c.cloud.get());
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 17);

  std::vector<CellId> accounts;
  for (CellId id = 1; id <= 16; ++id) accounts.push_back(id);
  SeedAccounts(c.cloud.get(), accounts, 100);
  const long kSum = 1600;
  std::vector<CellId> audit = accounts;
  audit.push_back(kRateCell);

  net::FaultInjector::Policy flaky;
  flaky.call_fail_prob = 0.05;
  flaky.call_timeout_prob = 0.03;

  const int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    c.injector->SetHandlerRangePolicy(cloud::kReplicaApplyHandler,
                                      cloud::kIsrShrinkHandler, flaky);
    const MachineId victim =
        static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
    c.injector->CrashAfter(victim, 1 + rng.Uniform(60));

    for (int op = 0; op < 20; ++op) {
      // Coordinator = a random slave: when the victim's countdown expires
      // under it this is a coordinator kill, when the victim owns one of
      // the cells it is a participant kill — both happen across seeds.
      const MachineId src =
          static_cast<MachineId>(rng.Uniform(c.cloud->num_slaves()));
      const CellId from = accounts[rng.Uniform(accounts.size())];
      CellId to = accounts[rng.Uniform(accounts.size())];
      if (to == from) to = accounts[(from % accounts.size())];
      if (to == from) continue;
      (void)Transfer(mgr, src, from, to, 1 + rng.Uniform(5));
    }

    c.injector->ClearPolicies();
    DrainCrashSchedule(c, victim);
    HealReplicated(c);

    int resolved = 0;
    ASSERT_TRUE(
        mgr.ResolveIntents(c.cloud->client_id(), audit, &resolved).ok());
    int pending = -1;
    ASSERT_TRUE(
        mgr.CountPendingIntents(c.cloud->client_id(), audit, &pending).ok());
    ASSERT_EQ(pending, 0)
        << "seed " << seed << ": intents survived a full recovery sweep";
    ASSERT_EQ(CommittedSum(mgr, accounts), kSum)
        << "seed " << seed << ": transfer torn by crash of " << victim;
  }
  // Failovers were absorbed by in-memory replicas, not TFS reloads.
  EXPECT_EQ(c.cloud->recovery_stats().tfs_fallback_reloads, 0u);
}

// Partition mid-validation: after the coordinator's reads validate, its
// machine is cut off and deposed (trunks promoted away, epochs bumped).
// The stale coordinator's commit must land in the write fence or die
// Unavailable — terminal either way — while replica reads stay available
// to everyone else; after the cut heals, one sweep restores a clean state.
TEST_P(TxnChaosTest, PartitionMidValidationFencesStaleCoordinator) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewReplicatedCluster("part", seed);
  TxnManager mgr(c.cloud.get());

  std::vector<CellId> accounts;
  for (CellId id = 1; id <= 8; ++id) accounts.push_back(id);
  SeedAccounts(c.cloud.get(), accounts, 100);
  const long kSum = 800;
  std::vector<CellId> audit = accounts;
  audit.push_back(kRateCell);

  // Coordinator 2 (never the leader, machine 0, so the leader keeps
  // serving promotions from the majority side).
  const MachineId coord = 2;
  std::vector<MachineId> minority = {coord};
  std::vector<MachineId> majority;
  for (MachineId m = 0; m < c.cloud->num_endpoints(); ++m) {
    if (m != coord) majority.push_back(m);
  }

  bool cut = false;
  const Status s = Transfer(
      mgr, coord, 1, 2, 10, [&](CommitPoint point, int) {
        if (point == CommitPoint::kAfterValidate && !cut) {
          cut = true;
          c.injector->Partition(minority, majority);
          // The majority deposes the unreachable coordinator: its trunks
          // promote away and every epoch bump fences its write path.
          c.cloud->DetectAndRecover();
          // Degraded mode on the majority side: committed reads still work
          // while the partition is up.
          std::string v;
          EXPECT_TRUE(
              mgr.ReadCommitted(c.cloud->client_id(), kRateCell, &v).ok());
        }
        return true;
      });
  ASSERT_TRUE(cut);
  ASSERT_FALSE(s.ok()) << "stale coordinator committed through a partition";
  EXPECT_TRUE(s.IsFenced() || s.IsUnavailable() || s.IsTimedOut() ||
              s.IsTxnConflict())
      << s.ToString();

  c.injector->ClearPartitions();
  c.cloud->DetectAndRecover();
  int resolved = 0;
  ASSERT_TRUE(
      mgr.ResolveIntents(c.cloud->client_id(), audit, &resolved).ok());
  int pending = -1;
  ASSERT_TRUE(
      mgr.CountPendingIntents(c.cloud->client_id(), audit, &pending).ok());
  EXPECT_EQ(pending, 0);
  EXPECT_EQ(CommittedSum(mgr, accounts), kSum) << "seed " << seed;
}

// Promotion mid-resolution: the coordinator dies AFTER the commit record
// landed but before resolving intents, then the machine holding an intent
// cell fails and a replica is promoted. The decided commit must survive
// the failover: the promoted replica serves the intent, readers roll it
// forward from the record, and the transfer is fully applied.
TEST_P(TxnChaosTest, DecidedCommitsSurvivePromotionFailover) {
  const std::uint64_t seed = GetParam() + SeedOffset();
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  ChaosCluster c = NewReplicatedCluster("promote", seed);
  TxnManager mgr(c.cloud.get());

  std::vector<CellId> accounts = {1, 2};
  SeedAccounts(c.cloud.get(), accounts, 100);

  const Status s = Transfer(mgr, c.cloud->client_id(), 1, 2, 40,
                            [&](CommitPoint point, int) {
                              return point != CommitPoint::kAfterRecord;
                            });
  ASSERT_FALSE(s.ok());

  // Fail the machine holding account 1's intent; promotion is a metadata
  // flip over the in-memory replica (no TFS reads).
  const MachineId owner = c.cloud->MachineOf(1);
  ASSERT_TRUE(c.cloud->FailMachine(owner).ok());
  const tfs::Tfs::Stats before = c.tfs->stats();
  ASSERT_GE(c.cloud->DetectAndRecover(), 1);
  EXPECT_EQ(c.tfs->stats().files_read, before.files_read)
      << "promotion read trunk data from TFS";

  EXPECT_EQ(CommittedBalance(mgr, 1), 60) << "decided commit lost, seed "
                                          << seed;
  EXPECT_EQ(CommittedBalance(mgr, 2), 140);
  int pending = -1;
  ASSERT_TRUE(
      mgr.CountPendingIntents(c.cloud->client_id(), accounts, &pending).ok());
  EXPECT_EQ(pending, 0);
  EXPECT_GT(c.cloud->recovery_stats().promotions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnChaosTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace trinity
