#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "analytics/graph_snapshot.h"
#include "analytics/intersect.h"
#include "analytics/ktruss.h"
#include "analytics/triangles.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace trinity::analytics {
namespace {

std::unique_ptr<cloud::MemoryCloud> NewCloud(int slaves = 4) {
  cloud::MemoryCloud::Options options;
  options.num_slaves = slaves;
  options.p_bits = 4;
  options.storage.trunk.capacity = 4 << 20;
  std::unique_ptr<cloud::MemoryCloud> cloud;
  EXPECT_TRUE(cloud::MemoryCloud::Create(options, &cloud).ok());
  return cloud;
}

void LoadEdges(graph::Graph* graph,
               const std::vector<std::pair<CellId, CellId>>& edges) {
  graph::Generators::EdgeList list;
  for (const auto& [a, b] : edges) {
    list.num_nodes = std::max({list.num_nodes, a + 1, b + 1});
  }
  list.edges = edges;
  ASSERT_TRUE(graph::Generators::Load(graph, list, false).ok());
}

// ---------------------------------------------------------------------------
// Intersection kernels
// ---------------------------------------------------------------------------

TEST(IntersectTest, KernelsAgreeOnRandomSets) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t na = rng() % 60;
    const std::size_t nb = rng() % 200;
    std::set<std::uint32_t> sa;
    std::set<std::uint32_t> sb;
    while (sa.size() < na) sa.insert(static_cast<std::uint32_t>(rng() % 256));
    while (sb.size() < nb) sb.insert(static_cast<std::uint32_t>(rng() % 256));
    const std::vector<std::uint32_t> a(sa.begin(), sa.end());
    const std::vector<std::uint32_t> b(sb.begin(), sb.end());
    std::vector<std::uint32_t> expect;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));

    std::uint64_t cmp = 0;
    EXPECT_EQ(IntersectMerge(a.data(), a.size(), b.data(), b.size(), &cmp),
              expect.size());
    EXPECT_EQ(IntersectGalloping(a.data(), a.size(), b.data(), b.size(), &cmp),
              expect.size());
    std::vector<std::uint64_t> bitmap(4, 0);  // 256 bits.
    for (std::uint32_t x : b) bitmap[x >> 6] |= 1ull << (x & 63);
    EXPECT_EQ(IntersectBitmapProbe(a.data(), a.size(), bitmap.data(), &cmp),
              expect.size());
    std::vector<std::uint64_t> bitmap_a(4, 0);
    for (std::uint32_t x : a) bitmap_a[x >> 6] |= 1ull << (x & 63);
    EXPECT_EQ(IntersectBitmapWords(bitmap_a.data(), bitmap.data(), 4, &cmp),
              expect.size());
  }
}

TEST(IntersectTest, GallopingBeatsMergeOnSkew) {
  // 8-element list intersecting a 100k-element list: galloping's probe count
  // must be far below merge's linear walk.
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::uint32_t i = 0; i < 100000; ++i) large.push_back(i * 2);
  for (std::uint32_t i = 0; i < 8; ++i) small.push_back(i * 24000);
  std::uint64_t merge_cmp = 0;
  std::uint64_t gallop_cmp = 0;
  const std::uint64_t hits_merge = IntersectMerge(
      small.data(), small.size(), large.data(), large.size(), &merge_cmp);
  const std::uint64_t hits_gallop = IntersectGalloping(
      small.data(), small.size(), large.data(), large.size(), &gallop_cmp);
  EXPECT_EQ(hits_merge, hits_gallop);
  EXPECT_LT(gallop_cmp * 10, merge_cmp);
}

TEST(IntersectTest, DispatchedPopcountMatchesScalar) {
  // Whatever body IntersectBitmapWords picked at startup (AVX2 when the CPU
  // has it) must agree with the scalar reference on every width incl. tails.
  std::mt19937_64 rng(13);
  for (std::size_t words = 0; words <= 19; ++words) {
    std::vector<std::uint64_t> a(words + 1);
    std::vector<std::uint64_t> b(words + 1);
    for (std::size_t i = 0; i < words; ++i) {
      a[i] = rng();
      b[i] = rng();
    }
    std::uint64_t cmp = 0;
    EXPECT_EQ(IntersectBitmapWords(a.data(), b.data(), words, &cmp),
              AndPopcountScalar(a.data(), b.data(), words))
        << "words=" << words << " avx2=" << BitmapKernelUsesAvx2();
  }
}

// ---------------------------------------------------------------------------
// GraphSnapshot
// ---------------------------------------------------------------------------

TEST(GraphSnapshotTest, DegreeOrderedOrientedCsr) {
  auto cloud = NewCloud(2);
  graph::Graph graph(cloud.get());
  // Star around 10 plus a triangle 1-2-3: degrees 10:4, 1:3, 2:3, 3:2, 4:1.
  LoadEdges(&graph,
            {{10, 1}, {10, 2}, {10, 3}, {10, 4}, {1, 2}, {2, 3}, {3, 1}});
  std::vector<GraphSnapshot> views;
  ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
  ASSERT_EQ(views.size(), 2u);
  for (const GraphSnapshot& view : views) {
    ASSERT_TRUE(view.Validate().ok());
    // Load materializes every id in [0, 11): 5 connected + 6 isolated nodes.
    ASSERT_EQ(view.num_vertices(), 11u);
    // Rank order: degree desc, id asc. Degrees: 10→4, 1→3, 2→3, 3→3, 4→1.
    EXPECT_EQ(view.id_by_rank[0], 10u);
    EXPECT_EQ(view.degree_by_rank[0], 4u);
    EXPECT_EQ(view.id_by_rank[1], 1u);
    EXPECT_EQ(view.id_by_rank[2], 2u);
    EXPECT_EQ(view.id_by_rank[3], 3u);
    EXPECT_EQ(view.id_by_rank[4], 4u);
    // Global tables identical across views.
    EXPECT_EQ(view.id_by_rank, views[0].id_by_rank);
    EXPECT_EQ(view.degree_by_rank, views[0].degree_by_rank);
    EXPECT_EQ(view.owner_by_rank, views[0].owner_by_rank);
  }
  // Each undirected edge appears exactly once across all views.
  std::uint64_t oriented = 0;
  for (const GraphSnapshot& view : views) oriented += view.oriented_edges();
  EXPECT_EQ(oriented, 7u);
}

TEST(GraphSnapshotTest, GlobalGatherCoversEveryVertex) {
  auto cloud = NewCloud(4);
  graph::Graph graph(cloud.get());
  ASSERT_TRUE(graph::Generators::LoadRmat(&graph, 300, 4.0, 11).ok());
  GraphSnapshot snapshot;
  ASSERT_TRUE(SnapshotBuilder::BuildGlobal(&graph, &snapshot).ok());
  ASSERT_TRUE(snapshot.Validate().ok());
  EXPECT_EQ(snapshot.num_local(), snapshot.num_vertices());
  std::vector<GraphSnapshot> views;
  ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
  std::uint64_t distributed_edges = 0;
  for (const GraphSnapshot& view : views) {
    distributed_edges += view.oriented_edges();
  }
  EXPECT_EQ(snapshot.oriented_edges(), distributed_edges);
}

TEST(GraphSnapshotTest, RequiresInlinkTracking) {
  auto cloud = NewCloud(2);
  graph::Graph::Options options;
  options.track_inlinks = false;
  graph::Graph graph(cloud.get(), options);
  ASSERT_TRUE(graph.AddNode(1, Slice()).ok());
  std::vector<GraphSnapshot> views;
  EXPECT_TRUE(SnapshotBuilder::Build(&graph, &views).IsInvalidArgument());
}

TEST(GraphSnapshotTest, ImmutableUnderConcurrentWriters) {
  auto cloud = NewCloud(4);
  graph::Graph graph(cloud.get());
  const std::uint64_t base_nodes = 200;
  ASSERT_TRUE(graph::Generators::LoadRmat(&graph, base_nodes, 3.0, 5).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937_64 rng(99);
    CellId next = base_nodes;
    while (!stop.load(std::memory_order_relaxed)) {
      const CellId id = next++;
      (void)graph.AddNode(id, Slice("w"));
      (void)graph.AddEdge(id, rng() % base_nodes);
      (void)graph.AddEdge(rng() % base_nodes, id);
    }
  });

  // Views built *while* the writer mutates cells must still be internally
  // consistent, and rebuilding from a frozen view must not observe later
  // writes (the vectors are plain data; nothing aliases trunk memory).
  for (int round = 0; round < 5; ++round) {
    std::vector<GraphSnapshot> views;
    ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
    for (const GraphSnapshot& view : views) {
      ASSERT_TRUE(view.Validate().ok());
    }
    const std::uint64_t before = views[0].num_vertices();
    TriangleCounter counter(&graph, TriangleOptions{});
    TriangleStats stats;
    ASSERT_TRUE(counter.Count(views, &stats).ok());
    EXPECT_EQ(views[0].num_vertices(), before);
  }
  stop.store(true);
  writer.join();

  // Quiescent rebuild agrees with the naive anchor.
  std::vector<GraphSnapshot> views;
  ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
  TriangleCounter counter(&graph, TriangleOptions{});
  TriangleStats stats;
  ASSERT_TRUE(counter.Count(views, &stats).ok());
  std::uint64_t naive = 0;
  ASSERT_TRUE(CountTrianglesNaive(&graph, &naive).ok());
  EXPECT_EQ(stats.triangles, naive);
}

// ---------------------------------------------------------------------------
// Triangle counting
// ---------------------------------------------------------------------------

TEST(TriangleTest, KnownSmallGraphs) {
  struct Case {
    std::vector<std::pair<CellId, CellId>> edges;
    std::uint64_t triangles;
  };
  const std::vector<Case> cases = {
      {{{1, 2}, {2, 3}}, 0},                              // Path.
      {{{1, 2}, {2, 3}, {3, 1}}, 1},                      // Triangle.
      {{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}, 4},  // K4.
      {{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}, {5, 3}}, 2},  // Two joined.
  };
  for (const Case& c : cases) {
    for (int slaves : {1, 3}) {
      auto cloud = NewCloud(slaves);
      graph::Graph graph(cloud.get());
      LoadEdges(&graph, c.edges);
      TriangleCounter counter(&graph, TriangleOptions{});
      TriangleStats stats;
      ASSERT_TRUE(counter.CountFromCells(&stats).ok());
      EXPECT_EQ(stats.triangles, c.triangles) << "slaves=" << slaves;
    }
  }
}

TEST(TriangleTest, AllKernelsMatchNaiveOnRmatAndPowerLaw) {
  // The acceptance gate: adaptive (and every fixed kernel) bit-matches the
  // cell-at-a-time naive counter on skewed graphs, on 1 and 8 machines.
  for (const std::uint64_t seed : {3u, 17u}) {
    for (const int slaves : {1, 8}) {
      for (const bool powerlaw : {false, true}) {
        auto cloud = NewCloud(slaves);
        graph::Graph graph(cloud.get());
        graph::Generators::EdgeList list =
            powerlaw ? graph::Generators::PowerLaw(400, 5.0, 2.2, seed)
                     : graph::Generators::Rmat(400, 5.0, seed);
        ASSERT_TRUE(graph::Generators::Load(&graph, list, false).ok());
        std::uint64_t naive = 0;
        std::uint64_t fetched = 0;
        ASSERT_TRUE(CountTrianglesNaive(&graph, &naive, &fetched).ok());
        EXPECT_GT(fetched, 0u);

        std::vector<GraphSnapshot> views;
        ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
        for (const IntersectKernel kernel :
             {IntersectKernel::kMerge, IntersectKernel::kGalloping,
              IntersectKernel::kBitmap, IntersectKernel::kAdaptive}) {
          TriangleOptions options;
          options.kernel = kernel;
          options.hub_ranks = 64;  // Force mixed resident/non-resident pairs.
          TriangleCounter counter(&graph, options);
          TriangleStats stats;
          ASSERT_TRUE(counter.Count(views, &stats).ok());
          EXPECT_EQ(stats.triangles, naive)
              << "kernel=" << static_cast<int>(kernel) << " slaves=" << slaves
              << " seed=" << seed << " powerlaw=" << powerlaw;
        }
      }
    }
  }
}

TEST(TriangleTest, AdaptiveBeatsMergeOnSkewedGraph) {
  auto cloud = NewCloud(1);
  graph::Graph graph(cloud.get());
  ASSERT_TRUE(graph::Generators::Load(
                  &graph, graph::Generators::PowerLaw(2000, 8.0, 2.1, 42),
                  false)
                  .ok());
  GraphSnapshot snapshot;
  ASSERT_TRUE(SnapshotBuilder::BuildGlobal(&graph, &snapshot).ok());

  TriangleOptions merge_only;
  merge_only.kernel = IntersectKernel::kMerge;
  TriangleCounter merge_counter(&graph, merge_only);
  TriangleStats merge_stats;
  ASSERT_TRUE(merge_counter.CountLocal(snapshot, &merge_stats).ok());

  TriangleCounter adaptive_counter(&graph, TriangleOptions{});
  TriangleStats adaptive_stats;
  ASSERT_TRUE(adaptive_counter.CountLocal(snapshot, &adaptive_stats).ok());

  EXPECT_EQ(adaptive_stats.triangles, merge_stats.triangles);
  // Comparisons are the hardware-independent scoreboard (1-core CI box):
  // bitmap builds included, adaptive must still do strictly less work.
  EXPECT_LT(adaptive_stats.total_comparisons(),
            merge_stats.total_comparisons());
  // And it actually routed pairs away from merge.
  EXPECT_GT(adaptive_stats.bitmap_and.intersections +
                adaptive_stats.probe.intersections +
                adaptive_stats.gallop.intersections,
            0u);
}

TEST(TriangleTest, BoundaryAdjacencyShippedOncePerMachinePair) {
  const int slaves = 4;
  auto cloud = NewCloud(slaves);
  graph::Graph graph(cloud.get());
  ASSERT_TRUE(graph::Generators::LoadRmat(&graph, 500, 6.0, 23).ok());
  std::vector<GraphSnapshot> views;
  ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());

  TriangleCounter counter(&graph, TriangleOptions{});
  const std::uint64_t sync_before = cloud->fabric().stats().sync_calls;
  TriangleStats stats;
  ASSERT_TRUE(counter.Count(views, &stats).ok());
  const std::uint64_t sync_after = cloud->fabric().stats().sync_calls;

  // At most one pull per ordered machine pair, and the fabric agrees the
  // count() pass issued exactly those calls.
  EXPECT_LE(stats.boundary_calls,
            static_cast<std::uint64_t>(slaves) * (slaves - 1));
  EXPECT_EQ(sync_after - sync_before, stats.boundary_calls);
  EXPECT_GT(stats.boundary_bytes, 0u);

  // Re-running over the same frozen views ships exactly the same bytes —
  // nothing is re-fetched incrementally or cached stalely.
  TriangleStats stats2;
  ASSERT_TRUE(counter.Count(views, &stats2).ok());
  EXPECT_EQ(stats2.boundary_calls, stats.boundary_calls);
  EXPECT_EQ(stats2.boundary_bytes, stats.boundary_bytes);
  EXPECT_EQ(stats2.triangles, stats.triangles);
}

// ---------------------------------------------------------------------------
// k-truss
// ---------------------------------------------------------------------------

/// Brute-force reference: for each k, iteratively delete edges whose
/// remaining support is below k-2; survivors have trussness >= k.
std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
ReferenceTruss(const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                   undirected_edges) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (auto [a, b] : undirected_edges) {
    if (a == b) continue;
    edges.insert({std::min(a, b), std::max(a, b)});
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> truss;
  for (const auto& e : edges) truss[e] = 2;
  for (std::uint32_t k = 3; !edges.empty(); ++k) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> current = edges;
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = current.begin(); it != current.end();) {
        std::uint32_t support = 0;
        for (const auto& other : current) {
          // Count w adjacent to both endpoints of *it.
          const auto [a, b] = *it;
          const auto [c, d] = other;
          std::uint32_t w = 0;
          bool adjacent = false;
          if (c == a) {
            w = d;
            adjacent = true;
          } else if (d == a) {
            w = c;
            adjacent = true;
          }
          if (adjacent && w != b &&
              current.count({std::min(w, b), std::max(w, b)}) > 0) {
            ++support;
          }
        }
        if (support < k - 2) {
          it = current.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    for (const auto& e : current) truss[e] = k;
    edges = current;
  }
  return truss;
}

TEST(KTrussTest, KnownSmallGraphs) {
  // K4: every edge in the 4-truss. Appended pendant edge stays at 2.
  auto cloud = NewCloud(2);
  graph::Graph graph(cloud.get());
  LoadEdges(&graph,
            {{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5}});
  GraphSnapshot snapshot;
  ASSERT_TRUE(SnapshotBuilder::BuildGlobal(&graph, &snapshot).ok());
  KTrussResult result;
  ASSERT_TRUE(KTrussDecompose(snapshot, &result).ok());
  EXPECT_EQ(result.num_edges(), 7u);
  EXPECT_EQ(result.max_trussness, 4u);
  EXPECT_EQ(result.triangles, 4u);

  std::map<CellId, std::uint32_t> rank_of;
  for (std::uint32_t r = 0; r < snapshot.num_vertices(); ++r) {
    rank_of[snapshot.id_by_rank[r]] = r;
  }
  for (auto [a, b] : std::vector<std::pair<CellId, CellId>>{
           {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}) {
    EXPECT_EQ(result.TrussnessOf(rank_of[a], rank_of[b]), 4u)
        << a << "-" << b;
  }
  EXPECT_EQ(result.TrussnessOf(rank_of[4], rank_of[5]), 2u);
}

TEST(KTrussTest, MatchesBruteForceReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto cloud = NewCloud(2);
    graph::Graph graph(cloud.get());
    graph::Generators::EdgeList list = graph::Generators::Rmat(40, 3.0, seed);
    ASSERT_TRUE(graph::Generators::Load(&graph, list, false).ok());
    GraphSnapshot snapshot;
    ASSERT_TRUE(SnapshotBuilder::BuildGlobal(&graph, &snapshot).ok());
    KTrussResult result;
    ASSERT_TRUE(KTrussDecompose(snapshot, &result).ok());

    // Reference works on ranks so the edge keys line up.
    std::map<CellId, std::uint32_t> rank_of;
    for (std::uint32_t r = 0; r < snapshot.num_vertices(); ++r) {
      rank_of[snapshot.id_by_rank[r]] = r;
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (std::size_t e = 0; e < result.num_edges(); ++e) {
      edges.push_back({result.src[e], result.dst[e]});
    }
    const auto reference = ReferenceTruss(edges);
    ASSERT_EQ(reference.size(), result.num_edges()) << "seed=" << seed;
    for (std::size_t e = 0; e < result.num_edges(); ++e) {
      const auto key = std::make_pair(std::min(result.src[e], result.dst[e]),
                                      std::max(result.src[e], result.dst[e]));
      EXPECT_EQ(result.trussness[e], reference.at(key))
          << "seed=" << seed << " edge " << result.src[e] << "-"
          << result.dst[e];
    }
  }
}

TEST(KTrussTest, RejectsPartialView) {
  auto cloud = NewCloud(2);
  graph::Graph graph(cloud.get());
  LoadEdges(&graph, {{1, 2}, {2, 3}, {3, 1}});
  std::vector<GraphSnapshot> views;
  ASSERT_TRUE(SnapshotBuilder::Build(&graph, &views).ok());
  bool any_partial = false;
  for (const GraphSnapshot& view : views) {
    if (view.num_local() < view.num_vertices()) {
      any_partial = true;
      KTrussResult result;
      EXPECT_TRUE(KTrussDecompose(view, &result).IsInvalidArgument());
    }
  }
  EXPECT_TRUE(any_partial);
}

}  // namespace
}  // namespace trinity::analytics
