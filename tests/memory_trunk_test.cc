#include "storage/memory_trunk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>

#include "common/random.h"
#include "storage/memory_storage.h"
#include "tfs/tfs.h"

namespace trinity::storage {
namespace {

MemoryTrunk::Options SmallTrunk() {
  MemoryTrunk::Options options;
  options.capacity = 256 * 1024;
  return options;
}

std::unique_ptr<MemoryTrunk> NewTrunk(
    MemoryTrunk::Options options = SmallTrunk()) {
  std::unique_ptr<MemoryTrunk> trunk;
  EXPECT_TRUE(MemoryTrunk::Create(options, &trunk).ok());
  return trunk;
}

TEST(MemoryTrunkTest, AddGetRoundTrip) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("payload one")).ok());
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "payload one");
  EXPECT_TRUE(trunk->Contains(1));
  EXPECT_FALSE(trunk->Contains(2));
}

TEST(MemoryTrunkTest, AddDuplicateFails) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("a")).ok());
  EXPECT_TRUE(trunk->AddCell(1, Slice("b")).IsAlreadyExists());
}

TEST(MemoryTrunkTest, ReservedIdsRejected) {
  auto trunk = NewTrunk();
  EXPECT_TRUE(trunk->AddCell(~static_cast<CellId>(0), Slice("x"))
                  .IsInvalidArgument());
  EXPECT_TRUE(trunk->PutCell(~static_cast<CellId>(0) - 1, Slice("x"))
                  .IsInvalidArgument());
}

TEST(MemoryTrunkTest, PutInsertsAndReplaces) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->PutCell(1, Slice("first")).ok());
  ASSERT_TRUE(trunk->PutCell(1, Slice("x")).ok());  // Shrink in place.
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "x");
  ASSERT_TRUE(trunk->PutCell(1, Slice("much longer payload")).ok());
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "much longer payload");
}

TEST(MemoryTrunkTest, RemoveFreesLogically) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("gone soon")).ok());
  ASSERT_TRUE(trunk->RemoveCell(1).ok());
  EXPECT_FALSE(trunk->Contains(1));
  EXPECT_TRUE(trunk->RemoveCell(1).IsNotFound());
  EXPECT_GT(trunk->stats().dead_bytes, 0u);
}

TEST(MemoryTrunkTest, GetCellSize) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(5, Slice("12345")).ok());
  std::uint64_t size = 0;
  ASSERT_TRUE(trunk->GetCellSize(5, &size).ok());
  EXPECT_EQ(size, 5u);
  EXPECT_TRUE(trunk->GetCellSize(6, &size).IsNotFound());
}

TEST(MemoryTrunkTest, AppendUsesReservation) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("ab")).ok());
  // First append relocates (capacity == size initially) and reserves slack.
  ASSERT_TRUE(trunk->AppendToCell(1, Slice("cd")).ok());
  const auto stats1 = trunk->stats();
  EXPECT_EQ(stats1.expansions_relocated, 1u);
  EXPECT_GT(stats1.reserved_slack, 0u);
  // Small follow-up append should land inside the reservation.
  ASSERT_TRUE(trunk->AppendToCell(1, Slice("e")).ok());
  const auto stats2 = trunk->stats();
  EXPECT_EQ(stats2.expansions_in_place, 1u);
  EXPECT_EQ(stats2.expansions_relocated, 1u);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "abcde");
}

TEST(MemoryTrunkTest, RepeatedAppendsAreMostlyInPlace) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice()).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(trunk->AppendToCell(1, Slice("12345678")).ok());
  }
  const auto stats = trunk->stats();
  // With 50% reservations, relocations are logarithmic-ish, not linear.
  EXPECT_LT(stats.expansions_relocated, 30u);
  EXPECT_GT(stats.expansions_in_place, 150u);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out.size(), 1600u);
}

TEST(MemoryTrunkTest, DefragReclaimsDeadBytes) {
  auto trunk = NewTrunk();
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(100, 'x'))).ok());
  }
  for (CellId id = 0; id < 100; id += 2) {
    ASSERT_TRUE(trunk->RemoveCell(id).ok());
  }
  const auto before = trunk->stats();
  EXPECT_GT(before.dead_bytes, 0u);
  const std::uint64_t reclaimed = trunk->Defragment();
  EXPECT_GT(reclaimed, 0u);
  const auto after = trunk->stats();
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_LT(after.used_bytes, before.used_bytes);
  // Surviving cells still readable.
  for (CellId id = 1; id < 100; id += 2) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok());
    EXPECT_EQ(out.size(), 100u);
  }
}

TEST(MemoryTrunkTest, DefragTrimsReservations) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("ab")).ok());
  ASSERT_TRUE(trunk->AppendToCell(1, Slice("cd")).ok());
  ASSERT_GT(trunk->stats().reserved_slack, 0u);
  trunk->Defragment();
  // Short-lived reservation released by the pass (§6.1).
  EXPECT_EQ(trunk->stats().reserved_slack, 0u);
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "abcd");
}

TEST(MemoryTrunkTest, DefragReleasesCommittedPages) {
  MemoryTrunk::Options options;
  options.capacity = 1 << 20;
  auto trunk = NewTrunk(options);
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(4096, 'p'))).ok());
  }
  const std::uint64_t committed_full = trunk->stats().committed_bytes;
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(trunk->RemoveCell(id).ok());
  }
  trunk->Defragment();
  EXPECT_LT(trunk->stats().committed_bytes, committed_full);
}

TEST(MemoryTrunkTest, CircularWraparound) {
  // Fill / delete / refill several times the trunk capacity so the heads
  // wrap around the ring repeatedly.
  MemoryTrunk::Options options;
  options.capacity = 64 * 1024;
  auto trunk = NewTrunk(options);
  const std::string payload(1000, 'w');
  CellId next = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::vector<CellId> batch;
    for (int i = 0; i < 30; ++i) {
      const CellId id = next++;
      ASSERT_TRUE(trunk->AddCell(id, Slice(payload)).ok()) << "cycle " << cycle;
      batch.push_back(id);
    }
    for (CellId id : batch) {
      std::string out;
      ASSERT_TRUE(trunk->GetCell(id, &out).ok());
      ASSERT_EQ(out, payload);
      ASSERT_TRUE(trunk->RemoveCell(id).ok());
    }
  }
  EXPECT_EQ(trunk->cell_count(), 0u);
}

TEST(MemoryTrunkTest, FullTrunkReportsOutOfMemory) {
  MemoryTrunk::Options options;
  options.capacity = 8 * 1024;
  auto trunk = NewTrunk(options);
  Status s;
  CellId id = 0;
  while ((s = trunk->AddCell(id, Slice(std::string(512, 'f')))).ok()) {
    ++id;
    ASSERT_LT(id, 1000u);
  }
  EXPECT_TRUE(s.IsOutOfMemory());
  // Existing data is intact.
  std::string out;
  ASSERT_TRUE(trunk->GetCell(0, &out).ok());
  EXPECT_EQ(out.size(), 512u);
}

TEST(MemoryTrunkTest, OversizedCellRejected) {
  MemoryTrunk::Options options;
  options.capacity = 8 * 1024;
  auto trunk = NewTrunk(options);
  EXPECT_FALSE(trunk->AddCell(1, Slice(std::string(32 * 1024, 'x'))).ok());
}

TEST(MemoryTrunkTest, WriteAtUpdatesInPlace) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("hello world")).ok());
  ASSERT_TRUE(trunk->WriteAt(1, 6, Slice("WORLD")).ok());
  std::string out;
  ASSERT_TRUE(trunk->GetCell(1, &out).ok());
  EXPECT_EQ(out, "hello WORLD");
  EXPECT_TRUE(trunk->WriteAt(1, 8, Slice("TOOLONG")).IsInvalidArgument());
  EXPECT_TRUE(trunk->WriteAt(9, 0, Slice("x")).IsNotFound());
}

TEST(MemoryTrunkTest, AccessorPinsAgainstDefrag) {
  auto trunk = NewTrunk();
  ASSERT_TRUE(trunk->AddCell(1, Slice("victim")).ok());
  ASSERT_TRUE(trunk->AddCell(2, Slice("pinned cell")).ok());
  ASSERT_TRUE(trunk->RemoveCell(1).ok());
  MemoryTrunk::ConstAccessor accessor;
  ASSERT_TRUE(trunk->Access(2, &accessor).ok());
  EXPECT_EQ(accessor.data().ToString(), "pinned cell");
  const char* pinned_ptr = accessor.data().data();
  trunk->Defragment();  // Must not move the pinned cell.
  EXPECT_EQ(accessor.data().data(), pinned_ptr);
  EXPECT_EQ(accessor.data().ToString(), "pinned cell");
  accessor = MemoryTrunk::ConstAccessor();  // Unpin.
  trunk->Defragment();
  std::string out;
  ASSERT_TRUE(trunk->GetCell(2, &out).ok());
  EXPECT_EQ(out, "pinned cell");
}

TEST(MemoryTrunkTest, SerializeDeserializeRoundTrip) {
  auto trunk = NewTrunk();
  for (CellId id = 0; id < 50; ++id) {
    ASSERT_TRUE(
        trunk->AddCell(id, Slice("value " + std::to_string(id))).ok());
  }
  std::string image;
  ASSERT_TRUE(trunk->Serialize(&image).ok());
  std::unique_ptr<MemoryTrunk> restored;
  ASSERT_TRUE(
      MemoryTrunk::Deserialize(Slice(image), SmallTrunk(), &restored).ok());
  EXPECT_EQ(restored->cell_count(), 50u);
  for (CellId id = 0; id < 50; ++id) {
    std::string out;
    ASSERT_TRUE(restored->GetCell(id, &out).ok());
    EXPECT_EQ(out, "value " + std::to_string(id));
  }
}

TEST(MemoryTrunkTest, DeserializeRejectsGarbage) {
  std::unique_ptr<MemoryTrunk> trunk;
  EXPECT_TRUE(MemoryTrunk::Deserialize(Slice("nonsense"), SmallTrunk(),
                                       &trunk)
                  .IsCorruption());
}

TEST(MemoryTrunkTest, CellIdsListsLiveCells) {
  auto trunk = NewTrunk();
  for (CellId id = 0; id < 10; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice("x")).ok());
  }
  ASSERT_TRUE(trunk->RemoveCell(3).ok());
  auto ids = trunk->CellIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 3), 0);
}

TEST(MemoryTrunkTest, StatsInvariants) {
  auto trunk = NewTrunk();
  for (CellId id = 0; id < 20; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(64, 'a'))).ok());
  }
  auto stats = trunk->stats();
  EXPECT_EQ(stats.live_cells, 20u);
  EXPECT_EQ(stats.live_bytes, 20u * 64);
  EXPECT_LE(stats.live_bytes, stats.used_bytes);
  EXPECT_LE(stats.used_bytes, stats.committed_bytes);
  EXPECT_LE(stats.committed_bytes, stats.capacity);
}

// Property test: a random op sequence against a std::map reference model,
// across several seeds, with periodic defragmentation thrown in.
class MemoryTrunkFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryTrunkFuzzTest, MatchesReferenceModel) {
  Random rng(GetParam());
  MemoryTrunk::Options options;
  options.capacity = 512 * 1024;
  auto trunk = NewTrunk(options);
  std::map<CellId, std::string> reference;
  for (int op = 0; op < 4000; ++op) {
    const CellId id = rng.Uniform(64);
    switch (rng.Uniform(6)) {
      case 0: {
        const std::string payload(rng.Uniform(300), 'a' + id % 26);
        const Status s = trunk->AddCell(id, Slice(payload));
        if (reference.count(id) != 0) {
          EXPECT_TRUE(s.IsAlreadyExists());
        } else if (s.ok()) {
          reference[id] = payload;
        }
        break;
      }
      case 1: {
        const std::string payload(rng.Uniform(300), 'A' + id % 26);
        if (trunk->PutCell(id, Slice(payload)).ok()) {
          reference[id] = payload;
        }
        break;
      }
      case 2: {
        const Status s = trunk->RemoveCell(id);
        EXPECT_EQ(s.ok(), reference.erase(id) > 0);
        break;
      }
      case 3: {
        const std::string suffix(1 + rng.Uniform(40), 'z');
        const Status s = trunk->AppendToCell(id, Slice(suffix));
        auto it = reference.find(id);
        if (it == reference.end()) {
          EXPECT_TRUE(s.IsNotFound());
        } else if (s.ok()) {
          it->second += suffix;
        }
        break;
      }
      case 4: {
        std::string out;
        const Status s = trunk->GetCell(id, &out);
        auto it = reference.find(id);
        if (it == reference.end()) {
          EXPECT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          EXPECT_EQ(out, it->second);
        }
        break;
      }
      case 5: {
        if (op % 37 == 0) trunk->Defragment();
        break;
      }
    }
  }
  // Full final sweep.
  EXPECT_EQ(trunk->cell_count(), reference.size());
  trunk->Defragment();
  for (const auto& [id, expected] : reference) {
    std::string out;
    ASSERT_TRUE(trunk->GetCell(id, &out).ok());
    EXPECT_EQ(out, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryTrunkFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(MemoryStorageTest, AttachDetachTrunks) {
  MemoryStorage::Options options;
  options.trunk = SmallTrunk();
  MemoryStorage storage(options);
  ASSERT_TRUE(storage.AttachTrunk(0).ok());
  ASSERT_TRUE(storage.AttachTrunk(1).ok());
  EXPECT_TRUE(storage.AttachTrunk(0).IsAlreadyExists());
  EXPECT_NE(storage.trunk(0), nullptr);
  EXPECT_EQ(storage.trunk(9), nullptr);
  EXPECT_EQ(storage.trunk_ids().size(), 2u);
  ASSERT_TRUE(storage.DetachTrunk(0).ok());
  EXPECT_TRUE(storage.DetachTrunk(0).IsNotFound());
}

TEST(MemoryStorageTest, SaveAndLoadViaTfs) {
  const std::string root = ::testing::TempDir() + "/storage_tfs";
  std::filesystem::remove_all(root);
  tfs::Tfs::Options tfs_options;
  tfs_options.root = root;
  std::unique_ptr<tfs::Tfs> tfs;
  ASSERT_TRUE(tfs::Tfs::Open(tfs_options, &tfs).ok());

  MemoryStorage::Options options;
  options.trunk = SmallTrunk();
  MemoryStorage storage(options);
  ASSERT_TRUE(storage.AttachTrunk(3).ok());
  ASSERT_TRUE(storage.trunk(3)->AddCell(7, Slice("persist me")).ok());
  ASSERT_TRUE(storage.SaveToTfs(tfs.get(), "m0").ok());

  std::unique_ptr<MemoryTrunk> restored;
  ASSERT_TRUE(MemoryStorage::LoadTrunkFromTfs(tfs.get(), "m0", 3,
                                              SmallTrunk(), &restored)
                  .ok());
  std::string out;
  ASSERT_TRUE(restored->GetCell(7, &out).ok());
  EXPECT_EQ(out, "persist me");
}

TEST(MemoryStorageTest, DefragDaemonSweeps) {
  MemoryStorage::Options options;
  options.trunk = SmallTrunk();
  options.defrag_threshold = 0.01;
  MemoryStorage storage(options);
  ASSERT_TRUE(storage.AttachTrunk(0).ok());
  MemoryTrunk* trunk = storage.trunk(0);
  for (CellId id = 0; id < 100; ++id) {
    ASSERT_TRUE(trunk->AddCell(id, Slice(std::string(64, 'd'))).ok());
  }
  for (CellId id = 0; id < 100; id += 2) {
    ASSERT_TRUE(trunk->RemoveCell(id).ok());
  }
  storage.StartDefragDaemon(std::chrono::milliseconds(5));
  // Give the daemon a few periods to run.
  for (int i = 0; i < 200 && trunk->stats().dead_bytes > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  storage.StopDefragDaemon();
  EXPECT_EQ(trunk->stats().dead_bytes, 0u);
  EXPECT_GT(trunk->stats().defrag_passes, 0u);
}

}  // namespace
}  // namespace trinity::storage
