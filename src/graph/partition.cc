#include "graph/partition.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/random.h"

namespace trinity::graph {

Csr Csr::FromEdges(const Generators::EdgeList& edges) {
  Csr csr;
  csr.num_nodes = edges.num_nodes;
  std::vector<std::uint64_t> degree(edges.num_nodes, 0);
  for (const auto& [a, b] : edges.edges) {
    if (a == b) continue;
    ++degree[a];
    ++degree[b];
  }
  csr.offsets.resize(edges.num_nodes + 1, 0);
  for (std::uint64_t v = 0; v < edges.num_nodes; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + degree[v];
  }
  csr.neighbors.resize(csr.offsets.back());
  std::vector<std::uint64_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (const auto& [a, b] : edges.edges) {
    if (a == b) continue;
    csr.neighbors[cursor[a]++] = static_cast<std::uint32_t>(b);
    csr.neighbors[cursor[b]++] = static_cast<std::uint32_t>(a);
  }
  return csr;
}

std::uint64_t MultilevelPartitioner::EdgeCut(
    const Csr& graph, const std::vector<std::int32_t>& assignment) {
  std::uint64_t cut = 0;
  for (std::uint64_t v = 0; v < graph.num_nodes; ++v) {
    for (std::size_t i = 0; i < graph.Degree(v); ++i) {
      const std::uint32_t u = graph.Neighbors(v)[i];
      if (assignment[v] != assignment[u]) ++cut;
    }
  }
  return cut / 2;  // Symmetric CSR counts each edge twice.
}

double MultilevelPartitioner::Balance(
    std::uint64_t num_nodes, int num_parts,
    const std::vector<std::int32_t>& assignment) {
  std::vector<std::uint64_t> sizes(num_parts, 0);
  for (std::int32_t p : assignment) ++sizes[p];
  const double ideal =
      static_cast<double>(num_nodes) / static_cast<double>(num_parts);
  const std::uint64_t largest = *std::max_element(sizes.begin(), sizes.end());
  return static_cast<double>(largest) / ideal;
}

MultilevelPartitioner::CoarseGraph MultilevelPartitioner::Coarsen(
    const CoarseGraph& fine, std::uint64_t seed) const {
  const std::uint64_t n = fine.csr.num_nodes;
  Random rng(seed);
  // Heavy-edge matching: visit nodes in random order; match each unmatched
  // node to its unmatched neighbor with the heaviest connecting edge.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  constexpr std::uint32_t kUnmatched = ~0u;
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    std::uint64_t best_weight = 0;
    for (std::size_t i = fine.csr.offsets[v]; i < fine.csr.offsets[v + 1];
         ++i) {
      const std::uint32_t u = fine.csr.neighbors[i];
      if (u == v || match[u] != kUnmatched) continue;
      const std::uint64_t w = fine.edge_weight[i];
      if (best == kUnmatched || w > best_weight) {
        best = u;
        best_weight = w;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // Stays single this level.
    }
  }
  // Assign coarse ids (matched pair -> one coarse node).
  CoarseGraph coarse;
  coarse.fine_to_coarse.assign(n, 0);
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (match[v] >= v) {  // v is the representative of (v, match[v]).
      coarse.fine_to_coarse[v] = next;
      if (match[v] != v) coarse.fine_to_coarse[match[v]] = next;
      ++next;
    }
  }
  const std::uint32_t cn = next;
  coarse.node_weight.assign(cn, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    coarse.node_weight[coarse.fine_to_coarse[v]] += fine.node_weight[v];
  }
  // Aggregate edges between coarse nodes.
  std::vector<std::map<std::uint32_t, std::uint64_t>> adj(cn);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = coarse.fine_to_coarse[v];
    for (std::size_t i = fine.csr.offsets[v]; i < fine.csr.offsets[v + 1];
         ++i) {
      const std::uint32_t cu = coarse.fine_to_coarse[fine.csr.neighbors[i]];
      if (cu == cv) continue;  // Internalized edge disappears.
      adj[cv][cu] += fine.edge_weight[i];
    }
  }
  coarse.csr.num_nodes = cn;
  coarse.csr.offsets.resize(cn + 1, 0);
  for (std::uint32_t v = 0; v < cn; ++v) {
    coarse.csr.offsets[v + 1] = coarse.csr.offsets[v] + adj[v].size();
  }
  coarse.csr.neighbors.resize(coarse.csr.offsets.back());
  coarse.edge_weight.resize(coarse.csr.offsets.back());
  for (std::uint32_t v = 0; v < cn; ++v) {
    std::size_t i = coarse.csr.offsets[v];
    for (const auto& [u, w] : adj[v]) {
      coarse.csr.neighbors[i] = u;
      coarse.edge_weight[i] = w;
      ++i;
    }
  }
  return coarse;
}

std::vector<std::int32_t> MultilevelPartitioner::InitialPartition(
    const CoarseGraph& graph, std::uint64_t seed) const {
  // Greedy graph growing: grow each part by BFS from a random unassigned
  // seed until it reaches its weight budget.
  const std::uint64_t n = graph.csr.num_nodes;
  const std::uint64_t total_weight =
      std::accumulate(graph.node_weight.begin(), graph.node_weight.end(),
                      std::uint64_t{0});
  const double budget = static_cast<double>(total_weight) /
                        static_cast<double>(options_.num_parts);
  std::vector<std::int32_t> assignment(n, -1);
  Random rng(seed);
  std::vector<std::uint32_t> frontier;
  for (int part = 0; part < options_.num_parts; ++part) {
    double weight = 0;
    frontier.clear();
    // Find an unassigned seed.
    for (std::uint64_t tries = 0; tries < n; ++tries) {
      const std::uint32_t candidate =
          static_cast<std::uint32_t>(rng.Uniform(n));
      if (assignment[candidate] < 0) {
        frontier.push_back(candidate);
        break;
      }
    }
    while (!frontier.empty() &&
           (weight < budget || part == options_.num_parts - 1)) {
      const std::uint32_t v = frontier.back();
      frontier.pop_back();
      if (assignment[v] >= 0) continue;
      assignment[v] = part;
      weight += static_cast<double>(graph.node_weight[v]);
      for (std::size_t i = graph.csr.offsets[v];
           i < graph.csr.offsets[v + 1]; ++i) {
        const std::uint32_t u = graph.csr.neighbors[i];
        if (assignment[u] < 0) frontier.push_back(u);
      }
    }
  }
  // Any node the growth never reached goes to the lightest part.
  std::vector<double> weights(options_.num_parts, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (assignment[v] >= 0) {
      weights[assignment[v]] += static_cast<double>(graph.node_weight[v]);
    }
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    if (assignment[v] < 0) {
      const int lightest = static_cast<int>(
          std::min_element(weights.begin(), weights.end()) - weights.begin());
      assignment[v] = lightest;
      weights[lightest] += static_cast<double>(graph.node_weight[v]);
    }
  }
  return assignment;
}

void MultilevelPartitioner::Refine(const CoarseGraph& graph,
                                   std::vector<std::int32_t>* assignment)
    const {
  // Boundary FM-style refinement: move a node to the neighboring part with
  // the largest positive gain, respecting the balance constraint.
  const std::uint64_t n = graph.csr.num_nodes;
  const std::uint64_t total_weight =
      std::accumulate(graph.node_weight.begin(), graph.node_weight.end(),
                      std::uint64_t{0});
  const double limit = (1.0 + options_.epsilon) *
                       static_cast<double>(total_weight) /
                       static_cast<double>(options_.num_parts);
  std::vector<double> part_weight(options_.num_parts, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    part_weight[(*assignment)[v]] += static_cast<double>(graph.node_weight[v]);
  }
  for (int pass = 0; pass < options_.refine_passes; ++pass) {
    bool moved = false;
    std::vector<std::int64_t> gain(options_.num_parts);
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::int32_t from = (*assignment)[v];
      std::fill(gain.begin(), gain.end(), 0);
      bool boundary = false;
      for (std::size_t i = graph.csr.offsets[v];
           i < graph.csr.offsets[v + 1]; ++i) {
        const std::int32_t p = (*assignment)[graph.csr.neighbors[i]];
        gain[p] += static_cast<std::int64_t>(graph.edge_weight[i]);
        if (p != from) boundary = true;
      }
      if (!boundary) continue;
      std::int32_t best = from;
      std::int64_t best_gain = gain[from];
      for (std::int32_t p = 0; p < options_.num_parts; ++p) {
        if (p == from) continue;
        if (part_weight[p] + static_cast<double>(graph.node_weight[v]) >
            limit) {
          continue;
        }
        if (gain[p] > best_gain) {
          best = p;
          best_gain = gain[p];
        }
      }
      if (best != from) {
        (*assignment)[v] = best;
        part_weight[from] -= static_cast<double>(graph.node_weight[v]);
        part_weight[best] += static_cast<double>(graph.node_weight[v]);
        moved = true;
      }
    }
    if (!moved) break;
  }
}

Status MultilevelPartitioner::Partition(const Csr& graph,
                                        Result* result) const {
  if (options_.num_parts < 1) {
    return Status::InvalidArgument("num_parts must be >= 1");
  }
  if (graph.num_nodes == 0) {
    result->assignment.clear();
    result->edge_cut = 0;
    result->balance = 0;
    result->levels = 0;
    return Status::OK();
  }
  // Level 0 wraps the input with unit weights.
  std::vector<CoarseGraph> levels(1);
  levels[0].csr = graph;
  levels[0].node_weight.assign(graph.num_nodes, 1);
  levels[0].edge_weight.assign(graph.neighbors.size(), 1);
  // Coarsening phase.
  while (levels.back().csr.num_nodes > options_.coarsen_target) {
    CoarseGraph next =
        Coarsen(levels.back(), options_.seed + levels.size());
    if (next.csr.num_nodes >= levels.back().csr.num_nodes) break;  // Stuck.
    levels.push_back(std::move(next));
  }
  // Initial partition on the coarsest graph, then project + refine upward.
  std::vector<std::int32_t> assignment =
      InitialPartition(levels.back(), options_.seed);
  Refine(levels.back(), &assignment);
  for (std::size_t level = levels.size() - 1; level > 0; --level) {
    const CoarseGraph& coarse = levels[level];
    const CoarseGraph& fine = levels[level - 1];
    std::vector<std::int32_t> projected(fine.csr.num_nodes);
    for (std::uint64_t v = 0; v < fine.csr.num_nodes; ++v) {
      projected[v] = assignment[coarse.fine_to_coarse[v]];
    }
    assignment = std::move(projected);
    Refine(fine, &assignment);
  }
  result->assignment = std::move(assignment);
  result->edge_cut = EdgeCut(graph, result->assignment);
  result->balance =
      Balance(graph.num_nodes, options_.num_parts, result->assignment);
  result->levels = static_cast<int>(levels.size());
  return Status::OK();
}

}  // namespace trinity::graph
