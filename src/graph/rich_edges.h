#ifndef TRINITY_GRAPH_RICH_EDGES_H_
#define TRINITY_GRAPH_RICH_EDGES_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace trinity::graph {

/// Rich edge modeling (paper §4.1): besides SimpleEdge (a bare neighbor
/// cellid inside the node cell), Trinity supports **StructEdge** — "when
/// edges are associated with rich information, we may represent edges using
/// cells, and store the rich information associated with the edges in the
/// edge cells. Correspondingly, a node will store a set of edge cellids" —
/// and **HyperEdge** — "we can also model hypergraphs in this way, as we can
/// easily store a set of node cellids in an edge cell."
///
/// Edge cells live in the same memory cloud as node cells; callers keep
/// edge-cell ids in a distinct id range from node ids (the TSL layer's
/// ReferencedCell attribute is the schema-level expression of the same
/// convention).

/// A materialized struct edge.
struct StructEdge {
  CellId id = kInvalidCell;
  CellId from = kInvalidCell;
  CellId to = kInvalidCell;
  std::string data;
};

/// A materialized hyperedge: one edge joining any number of nodes.
struct HyperEdge {
  CellId id = kInvalidCell;
  std::vector<CellId> members;
  std::string data;
};

class RichEdges {
 public:
  explicit RichEdges(Graph* graph) : graph_(graph) {}

  RichEdges(const RichEdges&) = delete;
  RichEdges& operator=(const RichEdges&) = delete;

  /// Creates an edge cell for (from -> to) carrying `data`, and appends the
  /// *edge id* to from's out-list (and to's in-list when tracked). Both
  /// endpoints must exist; the edge id must be fresh.
  Status AddStructEdge(CellId edge_id, CellId from, CellId to, Slice data);

  Status GetStructEdge(CellId edge_id, StructEdge* out);

  /// Replaces the payload of an existing struct edge.
  Status SetStructEdgeData(CellId edge_id, Slice data);

  /// Resolves a node's out-list of edge ids into (edge, target) pairs.
  Status GetStructOutEdges(CellId node, std::vector<StructEdge>* out);

  /// Creates a hyperedge cell over `members` and appends the edge id to
  /// every member's out-list.
  Status AddHyperEdge(CellId edge_id, const std::vector<CellId>& members,
                      Slice data);

  Status GetHyperEdge(CellId edge_id, HyperEdge* out);

  /// Adds one more node to an existing hyperedge (append path on both the
  /// edge cell and the node cell).
  Status AddMemberToHyperEdge(CellId edge_id, CellId node);

 private:
  static std::string EncodeStructEdge(CellId from, CellId to, Slice data);
  static std::string EncodeHyperEdge(const std::vector<CellId>& members,
                                     Slice data);

  Graph* graph_;
};

}  // namespace trinity::graph

#endif  // TRINITY_GRAPH_RICH_EDGES_H_
