#ifndef TRINITY_GRAPH_PARTITION_H_
#define TRINITY_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"

namespace trinity::graph {

/// Compressed sparse row view of an undirected graph used by the
/// partitioner and several analytics kernels.
struct Csr {
  std::uint64_t num_nodes = 0;
  std::vector<std::uint64_t> offsets;  ///< num_nodes + 1 entries.
  std::vector<std::uint32_t> neighbors;

  std::size_t Degree(std::uint64_t v) const {
    return offsets[v + 1] - offsets[v];
  }
  const std::uint32_t* Neighbors(std::uint64_t v) const {
    return neighbors.data() + offsets[v];
  }

  /// Builds a symmetrized CSR from a directed edge list (self-loops
  /// dropped, duplicates kept — matching typical multilevel inputs).
  static Csr FromEdges(const Generators::EdgeList& edges);
};

/// Multilevel k-way graph partitioner (paper §5.3: "Trinity can partition
/// billion-node graphs within a few hours using a multi-level partitioning
/// algorithm [6]; the quality ... is comparable to ... METIS").
///
/// Classic three-phase structure:
///   1. coarsen — heavy-edge matching collapses matched pairs until the
///      graph is small;
///   2. initial partition — greedy graph-growing on the coarsest graph;
///   3. uncoarsen + refine — project back up, with a boundary
///      Kernighan-Lin/FM-style gain pass at every level.
class MultilevelPartitioner {
 public:
  struct Options {
    int num_parts = 8;
    /// Stop coarsening when the graph has at most this many nodes.
    std::uint64_t coarsen_target = 256;
    /// Max imbalance: largest part <= (1 + epsilon) * (n / k).
    double epsilon = 0.1;
    /// Refinement passes per level.
    int refine_passes = 2;
    std::uint64_t seed = 42;
  };

  struct Result {
    std::vector<std::int32_t> assignment;  ///< Part per node.
    std::uint64_t edge_cut = 0;
    double balance = 0.0;  ///< max part size / ideal part size.
    int levels = 0;        ///< Coarsening levels used.
  };

  explicit MultilevelPartitioner(Options options) : options_(options) {}

  Status Partition(const Csr& graph, Result* result) const;

  /// Edge cut of an assignment (each cut edge counted once).
  static std::uint64_t EdgeCut(const Csr& graph,
                               const std::vector<std::int32_t>& assignment);
  static double Balance(std::uint64_t num_nodes, int num_parts,
                        const std::vector<std::int32_t>& assignment);

 private:
  struct CoarseGraph {
    Csr csr;
    std::vector<std::uint64_t> node_weight;
    std::vector<std::uint64_t> edge_weight;  ///< Parallel to csr.neighbors.
    std::vector<std::uint32_t> fine_to_coarse;
  };

  CoarseGraph Coarsen(const CoarseGraph& fine, std::uint64_t seed) const;
  std::vector<std::int32_t> InitialPartition(const CoarseGraph& graph,
                                             std::uint64_t seed) const;
  void Refine(const CoarseGraph& graph,
              std::vector<std::int32_t>* assignment) const;

  Options options_;
};

}  // namespace trinity::graph

#endif  // TRINITY_GRAPH_PARTITION_H_
