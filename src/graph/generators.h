#ifndef TRINITY_GRAPH_GENERATORS_H_
#define TRINITY_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace trinity::graph {

/// Synthetic graph generators standing in for the paper's workloads: R-MAT
/// web graphs (Fig 12b/c/d, Fig 13), power-law Facebook-like social graphs
/// (§5.1, Fig 12a), and the real graphs of Fig 14a (Wordnet, US patents)
/// replaced by synthetic graphs with matching shape. All generators are
/// deterministic under a seed.
class Generators {
 public:
  struct EdgeList {
    std::uint64_t num_nodes = 0;
    std::vector<std::pair<CellId, CellId>> edges;
  };

  /// R-MAT recursive-matrix generator [Chakrabarti et al., SDM'04] with the
  /// usual (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) skew. Produces
  /// num_nodes * avg_degree directed edges over ids [0, num_nodes).
  static EdgeList Rmat(std::uint64_t num_nodes, double avg_degree,
                       std::uint64_t seed);

  /// Scale-free graph by degree sampling P(k) ~ c k^-gamma (paper §5.4 uses
  /// c=1.16, gamma=2.16): out-degrees are power-law samples, targets chosen
  /// preferentially toward low ids (hubs).
  static EdgeList PowerLaw(std::uint64_t num_nodes, double avg_degree,
                           double gamma, std::uint64_t seed);

  /// Erdos-Renyi-style uniform random directed graph.
  static EdgeList Uniform(std::uint64_t num_nodes, double avg_degree,
                          std::uint64_t seed);

  /// Community-structured graph: dense hub-biased communities arranged in a
  /// ring, linked by a few mid-degree bridge vertices. High betweenness and
  /// high degree deliberately do NOT coincide here (the structure the
  /// Fig 8(b) landmark comparison needs).
  static EdgeList Community(std::uint64_t num_communities,
                            std::uint64_t nodes_per_community,
                            double intra_degree,
                            double inter_links_per_community,
                            std::uint64_t seed);

  /// Wordnet-like lexical graph: strong local clustering (ring lattice) plus
  /// random long-range semantic links.
  static EdgeList WordnetLike(std::uint64_t num_nodes, std::uint64_t seed);

  /// US-patent-like citation DAG: node i cites earlier nodes with
  /// recency-biased preference.
  static EdgeList PatentLike(std::uint64_t num_nodes, double avg_degree,
                             std::uint64_t seed);

  /// A first name for node `id`: drawn from a fixed pool ("David" included —
  /// §5.1's people-search query looks for him). Deterministic per (id,seed).
  static std::string NameFor(CellId id, std::uint64_t seed);

  /// Materializes an edge list into the graph via bulk loading: builds each
  /// node's full adjacency in memory, then writes one cell per node. Loading
  /// is issued round-robin from every slave so build-time metering spreads.
  /// `with_names` stores NameFor(id) as node data (people search).
  /// `sort_adjacency` sorts each node's neighbor lists before writing —
  /// opt-in because it changes list order for algorithms that care; sorted
  /// lists are what the trunk's delta-varint codec can compress
  /// (Options::compress_adjacency), so out-of-core benchmarks load with it.
  static Status Load(Graph* graph, const EdgeList& edges, bool with_names,
                     std::uint64_t seed = 0, bool sort_adjacency = false);

  /// Convenience: generate + load an R-MAT graph.
  static Status LoadRmat(Graph* graph, std::uint64_t num_nodes,
                         double avg_degree, std::uint64_t seed);
};

}  // namespace trinity::graph

#endif  // TRINITY_GRAPH_GENERATORS_H_
