#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace trinity::graph {

namespace {

/// Fixed pool of first names for the social-graph experiments. "David" is
/// deliberately common (a popular first name, §5.1).
constexpr const char* kFirstNames[] = {
    "David",  "Alice",  "Bob",    "Carol", "Erin",   "Frank", "Grace",
    "Heidi",  "Ivan",   "Judy",   "Ken",   "Laura",  "Mallory", "Niaj",
    "Olivia", "Peggy",  "Quentin", "Rupert", "Sybil", "Trent", "Uma",
    "Victor", "Wendy",  "Xavier", "Yolanda", "Zach",  "David", "Maria",
    "James",  "Linda",  "Robert", "Susan",
};
constexpr std::size_t kNumNames = sizeof(kFirstNames) / sizeof(kFirstNames[0]);

}  // namespace

Generators::EdgeList Generators::Rmat(std::uint64_t num_nodes,
                                      double avg_degree, std::uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes == 0) return list;
  std::uint64_t scale = 0;
  while ((1ull << scale) < num_nodes) ++scale;
  const std::uint64_t num_edges =
      static_cast<std::uint64_t>(static_cast<double>(num_nodes) * avg_degree);
  list.edges.reserve(num_edges);
  Random rng(seed);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    // Descend the recursive matrix: pick a quadrant per level.
    std::uint64_t src = 0, dst = 0;
    for (std::uint64_t level = 0; level < scale; ++level) {
      const double r = rng.NextDouble();
      std::uint64_t sbit, dbit;
      if (r < 0.57) {
        sbit = 0;
        dbit = 0;
      } else if (r < 0.76) {
        sbit = 0;
        dbit = 1;
      } else if (r < 0.95) {
        sbit = 1;
        dbit = 0;
      } else {
        sbit = 1;
        dbit = 1;
      }
      src = (src << 1) | sbit;
      dst = (dst << 1) | dbit;
    }
    src %= num_nodes;
    dst %= num_nodes;
    list.edges.emplace_back(src, dst);
  }
  return list;
}

Generators::EdgeList Generators::PowerLaw(std::uint64_t num_nodes,
                                          double avg_degree, double gamma,
                                          std::uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes == 0) return list;
  Random rng(seed);
  const double max_degree =
      std::max(4.0, static_cast<double>(num_nodes) / 10.0);
  list.edges.reserve(static_cast<std::size_t>(
      static_cast<double>(num_nodes) * avg_degree * 1.05));
  // Sample out-degrees from a Pareto tail P(k) ~ k^-gamma whose minimum is
  // chosen so the mean hits avg_degree (for gamma > 2 the mean of a Pareto
  // is xmin (gamma-1)/(gamma-2)). This preserves the heavy hub tail the
  // paper's §5.4 analysis relies on ("2% hub vertices are sending messages
  // to 80% of vertices").
  const double xmin = gamma > 2.05
                          ? avg_degree * (gamma - 2.0) / (gamma - 1.0)
                          : 1.0;
  for (std::uint64_t v = 0; v < num_nodes; ++v) {
    const double u = std::max(rng.NextDouble(), 1e-12);
    double d = xmin * std::pow(u, -1.0 / (gamma - 1.0));
    d = std::min(d, max_degree);
    const auto degree = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(d + rng.NextDouble()));
    for (std::uint64_t k = 0; k < degree; ++k) {
      // Preferential targets: low ids are hubs (power-law in-degree too).
      const double t = rng.NextDouble();
      const auto target = static_cast<std::uint64_t>(
          static_cast<double>(num_nodes) * t * t);
      list.edges.emplace_back(v, std::min(target, num_nodes - 1));
    }
  }
  return list;
}

Generators::EdgeList Generators::Community(std::uint64_t num_communities,
                                           std::uint64_t nodes_per_community,
                                           double intra_degree,
                                           double inter_links_per_community,
                                           std::uint64_t seed) {
  EdgeList list;
  const std::uint64_t n = num_communities * nodes_per_community;
  list.num_nodes = n;
  if (n == 0) return list;
  Random rng(seed);
  for (std::uint64_t c = 0; c < num_communities; ++c) {
    const std::uint64_t base = c * nodes_per_community;
    // Dense intra-community edges with a hub bias toward low local ids.
    const auto intra_edges = static_cast<std::uint64_t>(
        static_cast<double>(nodes_per_community) * intra_degree);
    for (std::uint64_t e = 0; e < intra_edges; ++e) {
      const std::uint64_t src = base + rng.Uniform(nodes_per_community);
      const double u = rng.NextDouble();
      const auto local = static_cast<std::uint64_t>(
          static_cast<double>(nodes_per_community) * u * u);
      list.edges.emplace_back(
          src, base + std::min(local, nodes_per_community - 1));
    }
    // Sparse bridges to the next community (ring of communities). The
    // bridge endpoints are mid-rank vertices, so high betweenness does NOT
    // coincide with high degree — the structure Fig 8(b) needs.
    const std::uint64_t next_base =
        ((c + 1) % num_communities) * nodes_per_community;
    const auto bridges = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(inter_links_per_community));
    for (std::uint64_t b = 0; b < bridges; ++b) {
      const std::uint64_t src =
          base + nodes_per_community / 2 + b % (nodes_per_community / 2);
      const std::uint64_t dst =
          next_base + nodes_per_community / 2 +
          (b * 7) % (nodes_per_community / 2);
      list.edges.emplace_back(src, dst);
    }
  }
  return list;
}

Generators::EdgeList Generators::Uniform(std::uint64_t num_nodes,
                                         double avg_degree,
                                         std::uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes == 0) return list;
  Random rng(seed);
  const std::uint64_t num_edges =
      static_cast<std::uint64_t>(static_cast<double>(num_nodes) * avg_degree);
  list.edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    list.edges.emplace_back(rng.Uniform(num_nodes), rng.Uniform(num_nodes));
  }
  return list;
}

Generators::EdgeList Generators::WordnetLike(std::uint64_t num_nodes,
                                             std::uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes < 3) return list;
  Random rng(seed);
  // Ring lattice (synonym clusters) + ~20% random semantic shortcuts.
  for (std::uint64_t v = 0; v < num_nodes; ++v) {
    list.edges.emplace_back(v, (v + 1) % num_nodes);
    list.edges.emplace_back(v, (v + 2) % num_nodes);
    if (rng.Bernoulli(0.4)) {
      list.edges.emplace_back(v, rng.Uniform(num_nodes));
    }
  }
  return list;
}

Generators::EdgeList Generators::PatentLike(std::uint64_t num_nodes,
                                            double avg_degree,
                                            std::uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes < 2) return list;
  Random rng(seed);
  for (std::uint64_t v = 1; v < num_nodes; ++v) {
    const std::uint64_t cites = 1 + rng.Uniform(
        static_cast<std::uint64_t>(avg_degree * 2));
    for (std::uint64_t k = 0; k < cites; ++k) {
      // Recency bias: recent patents are cited more.
      const double u = rng.NextDouble();
      const auto back = static_cast<std::uint64_t>(
          static_cast<double>(v) * u * u);
      list.edges.emplace_back(v, v - 1 - std::min(back, v - 1));
    }
  }
  return list;
}

std::string Generators::NameFor(CellId id, std::uint64_t seed) {
  return kFirstNames[Mix64(id ^ seed) % kNumNames];
}

Status Generators::Load(Graph* graph, const EdgeList& edges, bool with_names,
                        std::uint64_t seed, bool sort_adjacency) {
  // Build the full adjacency in memory, then bulk-write one cell per node.
  std::vector<std::vector<CellId>> out(edges.num_nodes);
  std::vector<std::vector<CellId>> in;
  const bool directed = graph->options().directed;
  const bool track_in = directed && graph->options().track_inlinks;
  if (track_in) in.resize(edges.num_nodes);
  for (const auto& [src, dst] : edges.edges) {
    out[src].push_back(dst);
    if (!directed) {
      out[dst].push_back(src);
    } else if (track_in) {
      in[dst].push_back(src);
    }
  }
  cloud::MemoryCloud* cloud = graph->cloud();
  const int slaves = cloud->num_slaves();
  for (std::uint64_t v = 0; v < edges.num_nodes; ++v) {
    NodeImage node;
    node.id = v;
    if (with_names) node.data = NameFor(v, seed);
    node.out = std::move(out[v]);
    if (track_in) node.in = std::move(in[v]);
    if (sort_adjacency) {
      std::sort(node.out.begin(), node.out.end());
      std::sort(node.in.begin(), node.in.end());
    }
    // Issue from the slave that owns the node so bulk load is local.
    MachineId src = cloud->MachineOf(v);
    if (src < 0 || src >= slaves) src = cloud->client_id();
    Status s = graph->BulkAddNode(src, node);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Generators::LoadRmat(Graph* graph, std::uint64_t num_nodes,
                            double avg_degree, std::uint64_t seed) {
  return Load(graph, Rmat(num_nodes, avg_degree, seed), /*with_names=*/false,
              seed);
}

}  // namespace trinity::graph
