#include "graph/rich_edges.h"

#include <cstring>

#include "common/serializer.h"

namespace trinity::graph {

namespace {

constexpr std::uint8_t kStructEdgeTag = 1;
constexpr std::uint8_t kHyperEdgeTag = 2;

}  // namespace

std::string RichEdges::EncodeStructEdge(CellId from, CellId to, Slice data) {
  BinaryWriter writer;
  writer.PutU8(kStructEdgeTag);
  writer.PutU64(from);
  writer.PutU64(to);
  writer.PutBytes(data);
  return writer.Release();
}

std::string RichEdges::EncodeHyperEdge(const std::vector<CellId>& members,
                                       Slice data) {
  // Members sit at the *end* so AddMemberToHyperEdge is a trunk append.
  BinaryWriter writer;
  writer.PutU8(kHyperEdgeTag);
  writer.PutBytes(data);
  for (CellId m : members) writer.PutU64(m);
  return writer.Release();
}

Status RichEdges::AddStructEdge(CellId edge_id, CellId from, CellId to,
                                Slice data) {
  if (!graph_->HasNode(from) || !graph_->HasNode(to)) {
    return Status::NotFound("edge endpoint missing");
  }
  Status s = graph_->cloud()->AddCell(edge_id,
                                      Slice(EncodeStructEdge(from, to, data)));
  if (!s.ok()) return s;
  s = graph_->AppendRawOutEntry(from, edge_id);
  if (!s.ok()) return s;
  if (graph_->options().directed && graph_->options().track_inlinks) {
    return graph_->InsertRawInEntry(to, edge_id);
  }
  if (!graph_->options().directed) {
    return graph_->AppendRawOutEntry(to, edge_id);
  }
  return Status::OK();
}

Status RichEdges::GetStructEdge(CellId edge_id, StructEdge* out) {
  std::string blob;
  Status s = graph_->cloud()->GetCell(edge_id, &blob);
  if (!s.ok()) return s;
  BinaryReader reader{Slice(blob)};
  std::uint8_t tag = 0;
  Slice data;
  if (!reader.GetU8(&tag) || tag != kStructEdgeTag ||
      !reader.GetU64(&out->from) || !reader.GetU64(&out->to) ||
      !reader.GetBytes(&data) || !reader.AtEnd()) {
    return Status::Corruption("not a struct-edge cell");
  }
  out->id = edge_id;
  out->data = data.ToString();
  return Status::OK();
}

Status RichEdges::SetStructEdgeData(CellId edge_id, Slice data) {
  StructEdge edge;
  Status s = GetStructEdge(edge_id, &edge);
  if (!s.ok()) return s;
  return graph_->cloud()->PutCell(
      edge_id, Slice(EncodeStructEdge(edge.from, edge.to, data)));
}

Status RichEdges::GetStructOutEdges(CellId node,
                                    std::vector<StructEdge>* out) {
  out->clear();
  std::vector<CellId> edge_ids;
  Status s = graph_->GetOutlinks(node, &edge_ids);
  if (!s.ok()) return s;
  for (CellId edge_id : edge_ids) {
    StructEdge edge;
    s = GetStructEdge(edge_id, &edge);
    if (!s.ok()) return s;
    out->push_back(std::move(edge));
  }
  return Status::OK();
}

Status RichEdges::AddHyperEdge(CellId edge_id,
                               const std::vector<CellId>& members,
                               Slice data) {
  if (members.empty()) return Status::InvalidArgument("empty hyperedge");
  for (CellId m : members) {
    if (!graph_->HasNode(m)) return Status::NotFound("hyperedge member missing");
  }
  Status s = graph_->cloud()->AddCell(edge_id,
                                      Slice(EncodeHyperEdge(members, data)));
  if (!s.ok()) return s;
  for (CellId m : members) {
    s = graph_->AppendRawOutEntry(m, edge_id);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status RichEdges::GetHyperEdge(CellId edge_id, HyperEdge* out) {
  std::string blob;
  Status s = graph_->cloud()->GetCell(edge_id, &blob);
  if (!s.ok()) return s;
  BinaryReader reader{Slice(blob)};
  std::uint8_t tag = 0;
  Slice data;
  if (!reader.GetU8(&tag) || tag != kHyperEdgeTag || !reader.GetBytes(&data)) {
    return Status::Corruption("not a hyperedge cell");
  }
  if (reader.remaining() % 8 != 0) {
    return Status::Corruption("malformed hyperedge member list");
  }
  out->id = edge_id;
  out->data = data.ToString();
  out->members.resize(reader.remaining() / 8);
  for (CellId& m : out->members) {
    if (!reader.GetU64(&m)) return Status::Corruption("hyperedge member");
  }
  return Status::OK();
}

Status RichEdges::AddMemberToHyperEdge(CellId edge_id, CellId node) {
  if (!graph_->HasNode(node)) return Status::NotFound("member missing");
  // Validate the edge cell before blindly appending.
  HyperEdge edge;
  Status s = GetHyperEdge(edge_id, &edge);
  if (!s.ok()) return s;
  char raw[8];
  std::memcpy(raw, &node, 8);
  s = graph_->cloud()->AppendToCell(edge_id, Slice(raw, 8));
  if (!s.ok()) return s;
  return graph_->AppendRawOutEntry(node, edge_id);
}

}  // namespace trinity::graph
