#include "graph/graph.h"

#include <cstring>

#include "common/serializer.h"

namespace trinity::graph {

Graph::Graph(cloud::MemoryCloud* cloud, Options options)
    : cloud_(cloud), options_(options) {}

Graph::Graph(cloud::MemoryCloud* cloud) : Graph(cloud, Options()) {}

std::string Graph::EncodeNode(const NodeImage& node) {
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(node.in.size()));
  writer.PutU32(static_cast<std::uint32_t>(node.data.size()));
  writer.PutRaw(node.data.data(), node.data.size());
  for (CellId v : node.in) writer.PutU64(v);
  for (CellId v : node.out) writer.PutU64(v);
  return writer.Release();
}

bool Graph::ParseHeader(Slice blob, std::uint32_t* in_count,
                        std::uint32_t* data_len, std::size_t* in_begin,
                        std::size_t* out_begin, std::size_t* out_count) {
  if (blob.size() < 8) return false;
  std::memcpy(in_count, blob.data(), 4);
  std::memcpy(data_len, blob.data() + 4, 4);
  *in_begin = 8 + *data_len;
  *out_begin = *in_begin + static_cast<std::size_t>(*in_count) * 8;
  if (*out_begin > blob.size()) return false;
  const std::size_t tail = blob.size() - *out_begin;
  if (tail % 8 != 0) return false;
  *out_count = tail / 8;
  return true;
}

Status Graph::DecodeNode(CellId id, Slice blob, NodeImage* out) {
  std::uint32_t in_count = 0, data_len = 0;
  std::size_t in_begin = 0, out_begin = 0, out_count = 0;
  if (!ParseHeader(blob, &in_count, &data_len, &in_begin, &out_begin,
                   &out_count)) {
    return Status::Corruption("malformed node cell");
  }
  out->id = id;
  out->data.assign(blob.data() + 8, data_len);
  out->in.resize(in_count);
  if (in_count > 0) {
    std::memcpy(out->in.data(), blob.data() + in_begin, in_count * 8);
  }
  out->out.resize(out_count);
  if (out_count > 0) {
    std::memcpy(out->out.data(), blob.data() + out_begin, out_count * 8);
  }
  return Status::OK();
}

Status Graph::AddNode(CellId id, Slice data) {
  return AddNodeFrom(cloud_->client_id(), id, data);
}

Status Graph::AddNodeFrom(MachineId src, CellId id, Slice data) {
  NodeImage node;
  node.id = id;
  node.data = data.ToString();
  return cloud_->AddCellFrom(src, id, Slice(EncodeNode(node)));
}

Status Graph::BulkAddNode(MachineId src, const NodeImage& node) {
  return cloud_->AddCellFrom(src, node.id, Slice(EncodeNode(node)));
}

Status Graph::AddEdge(CellId from, CellId to) {
  return AddEdgeFrom(cloud_->client_id(), from, to);
}

Status Graph::AddEdgeFrom(MachineId src, CellId from, CellId to) {
  // Appending to the out-list is the fast path: the out ids live at the end
  // of the blob, so this is a trunk append that exploits reservations.
  char raw[8];
  std::memcpy(raw, &to, 8);
  Status s = cloud_->AppendToCellFrom(src, from, Slice(raw, 8));
  if (!s.ok()) return s;
  if (!options_.directed) {
    std::memcpy(raw, &from, 8);
    return cloud_->AppendToCellFrom(src, to, Slice(raw, 8));
  }
  if (options_.track_inlinks) {
    return InsertInlink(src, to, from);
  }
  return Status::OK();
}

Status Graph::AppendRawOutEntry(CellId node, CellId value) {
  char raw[8];
  std::memcpy(raw, &value, 8);
  return cloud_->AppendToCellFrom(cloud_->client_id(), node, Slice(raw, 8));
}

Status Graph::InsertRawInEntry(CellId node, CellId value) {
  return InsertInlink(cloud_->client_id(), node, value);
}

Status Graph::InsertInlink(MachineId src, CellId node, CellId from) {
  // In-links sit in the middle of the blob: read-modify-write.
  std::string blob;
  Status s = cloud_->GetCellFrom(src, node, &blob);
  if (!s.ok()) return s;
  std::uint32_t in_count = 0, data_len = 0;
  std::size_t in_begin = 0, out_begin = 0, out_count = 0;
  if (!ParseHeader(Slice(blob), &in_count, &data_len, &in_begin, &out_begin,
                   &out_count)) {
    return Status::Corruption("malformed node cell");
  }
  ++in_count;
  std::memcpy(blob.data(), &in_count, 4);
  char raw[8];
  std::memcpy(raw, &from, 8);
  blob.insert(out_begin, raw, 8);  // New in-id goes after existing in-ids.
  return cloud_->PutCellFrom(src, node, Slice(blob));
}

bool Graph::HasNode(CellId id) {
  bool exists = false;
  return cloud_->Contains(id, &exists).ok() && exists;
}

Status Graph::GetOutlinks(CellId id, std::vector<CellId>* out) {
  return GetOutlinksFrom(cloud_->client_id(), id, out);
}

Status Graph::GetOutlinksFrom(MachineId src, CellId id,
                              std::vector<CellId>* out) {
  std::string blob;
  Status s = cloud_->GetCellFrom(src, id, &blob);
  if (!s.ok()) return s;
  NodeImage node;
  s = DecodeNode(id, Slice(blob), &node);
  if (!s.ok()) return s;
  *out = std::move(node.out);
  return Status::OK();
}

Status Graph::GetInlinks(CellId id, std::vector<CellId>* out) {
  return GetInlinksFrom(cloud_->client_id(), id, out);
}

Status Graph::GetInlinksFrom(MachineId src, CellId id,
                             std::vector<CellId>* out) {
  if (options_.directed && !options_.track_inlinks) {
    return Status::NotSupported("in-links not tracked");
  }
  std::string blob;
  Status s = cloud_->GetCellFrom(src, id, &blob);
  if (!s.ok()) return s;
  NodeImage node;
  s = DecodeNode(id, Slice(blob), &node);
  if (!s.ok()) return s;
  // Undirected graphs store all adjacency in the out-list.
  *out = options_.directed ? std::move(node.in) : std::move(node.out);
  return Status::OK();
}

Status Graph::GetNodeData(CellId id, std::string* out) {
  return GetNodeDataFrom(cloud_->client_id(), id, out);
}

Status Graph::GetNodeDataFrom(MachineId src, CellId id, std::string* out) {
  std::string blob;
  Status s = cloud_->GetCellFrom(src, id, &blob);
  if (!s.ok()) return s;
  NodeImage node;
  s = DecodeNode(id, Slice(blob), &node);
  if (!s.ok()) return s;
  *out = std::move(node.data);
  return Status::OK();
}

Status Graph::SetNodeData(CellId id, Slice data) {
  std::string blob;
  Status s = cloud_->GetCell(id, &blob);
  if (!s.ok()) return s;
  NodeImage node;
  s = DecodeNode(id, Slice(blob), &node);
  if (!s.ok()) return s;
  node.data = data.ToString();
  return cloud_->PutCell(id, Slice(EncodeNode(node)));
}

Status Graph::OutDegreeFrom(MachineId src, CellId id, std::size_t* out) {
  std::string blob;
  Status s = cloud_->GetCellFrom(src, id, &blob);
  if (!s.ok()) return s;
  std::uint32_t in_count = 0, data_len = 0;
  std::size_t in_begin = 0, out_begin = 0, out_count = 0;
  if (!ParseHeader(Slice(blob), &in_count, &data_len, &in_begin, &out_begin,
                   &out_count)) {
    return Status::Corruption("malformed node cell");
  }
  *out = out_count;
  return Status::OK();
}

Status Graph::VisitLocalNode(MachineId machine, CellId id,
                             const LocalVisitor& fn) const {
  storage::MemoryStorage* store = cloud_->storage(machine);
  if (store == nullptr) return Status::NotFound("not a slave");
  return VisitLocalNode(store, id, fn);
}

Status Graph::VisitLocalNode(storage::MemoryStorage* store, CellId id,
                             const LocalVisitor& fn) const {
  if (store == nullptr) return Status::NotFound("not a slave");
  storage::MemoryTrunk* trunk = store->trunk(cloud_->TrunkOf(id));
  if (trunk == nullptr) return Status::NotFound("node not local");
  storage::MemoryTrunk::ConstAccessor accessor;
  Status s = trunk->Access(id, &accessor);
  if (!s.ok()) return s;
  const Slice blob = accessor.data();
  std::uint32_t in_count = 0, data_len = 0;
  std::size_t in_begin = 0, out_begin = 0, out_count = 0;
  if (!ParseHeader(blob, &in_count, &data_len, &in_begin, &out_begin,
                   &out_count)) {
    return Status::Corruption("malformed node cell");
  }
  // CellId arrays are 8-byte values at arbitrary alignment; the blob offsets
  // are not guaranteed 8-aligned, so expose via pointer into a local copy
  // only when misaligned. In practice in_begin/out_begin are 8-aligned when
  // data_len % 8 == 0; generators pad names, but be defensive:
  if ((reinterpret_cast<std::uintptr_t>(blob.data() + in_begin) & 7) == 0) {
    fn(Slice(blob.data() + 8, data_len),
       reinterpret_cast<const CellId*>(blob.data() + in_begin), in_count,
       reinterpret_cast<const CellId*>(blob.data() + out_begin), out_count);
    return Status::OK();
  }
  std::vector<CellId> copy(in_count + out_count);
  if (in_count + out_count > 0) {
    std::memcpy(copy.data(), blob.data() + in_begin,
                (in_count + out_count) * 8);
  }
  fn(Slice(blob.data() + 8, data_len), copy.data(), in_count,
     copy.data() + in_count, out_count);
  return Status::OK();
}

std::vector<CellId> Graph::LocalNodes(MachineId machine) const {
  std::vector<CellId> result;
  storage::MemoryStorage* store = cloud_->storage(machine);
  if (store == nullptr) return result;
  for (TrunkId t : store->trunk_ids()) {
    storage::MemoryTrunk* trunk = store->trunk(t);
    if (trunk == nullptr) continue;
    std::vector<CellId> ids = trunk->CellIds();
    result.insert(result.end(), ids.begin(), ids.end());
  }
  return result;
}

std::uint64_t Graph::CountNodes() const {
  return cloud_->TotalCellCount();
}

}  // namespace trinity::graph
