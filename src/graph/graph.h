#ifndef TRINITY_GRAPH_GRAPH_H_
#define TRINITY_GRAPH_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/status.h"
#include "common/types.h"

namespace trinity::graph {

/// Fully materialized image of one graph node, used for bulk loading and for
/// round-tripping cells.
struct NodeImage {
  CellId id = kInvalidCell;
  std::string data;           ///< Opaque node payload (e.g. a name).
  std::vector<CellId> out;    ///< Outgoing neighbors (SimpleEdge cell ids).
  std::vector<CellId> in;     ///< Incoming neighbors (directed graphs).
};

/// Trinity's graph model on top of the memory cloud (paper §4.1): a node is
/// a cell; SimpleEdges are the cellids of the neighbors stored inside the
/// node cell. Rich-edge (StructEdge/HyperEdge) modeling is done at the TSL
/// layer by storing edge-cell ids here and materializing edge cells
/// separately (see examples/knowledge_graph.cc).
///
/// Node cell layout (byte-compatible with the TSL encoding of
///   `cell struct Node { int InCount; string Data; /* raw ids */ }`):
///
///   [u32 in_count][u32 data_len][data][in ids (8B)...][out ids (8B)...]
///
/// The out-list deliberately sits at the *end* of the blob so that the hot
/// mutation — adding an outgoing edge — is a pure AppendToCell, which rides
/// the memory trunk's short-lived reservation mechanism (§6.1). The
/// out-degree is derived from the cell size, so appends touch no header.
class Graph {
 public:
  struct Options {
    bool directed = true;
    /// Maintain incoming adjacency. In-link inserts are read-modify-write
    /// (they land in the middle of the blob), so analytics-only graphs that
    /// push along out-edges can turn this off.
    bool track_inlinks = true;
  };

  Graph(cloud::MemoryCloud* cloud, Options options);
  /// Directed graph with in-link tracking.
  explicit Graph(cloud::MemoryCloud* cloud);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  const Options& options() const { return options_; }
  cloud::MemoryCloud* cloud() { return cloud_; }

  // --- Construction -------------------------------------------------------
  /// Adds an isolated node carrying `data`.
  Status AddNode(CellId id, Slice data);
  Status AddNodeFrom(MachineId src, CellId id, Slice data);

  /// Adds an edge. Directed: appends `to` to from's out-list (and `from` to
  /// to's in-list when tracked). Undirected: appends each endpoint to the
  /// other's out-list. Both endpoints must exist.
  Status AddEdge(CellId from, CellId to);
  Status AddEdgeFrom(MachineId src, CellId from, CellId to);

  /// Writes a fully-formed node in one cell store — the bulk-load path used
  /// by the graph generators.
  Status BulkAddNode(MachineId src, const NodeImage& node);

  /// Low-level adjacency editing for rich-edge modeling (StructEdge /
  /// HyperEdge cells store *edge* ids in the adjacency lists): appends
  /// `value` to node's out-list, or inserts it into the in-list, without
  /// interpreting it as a node id.
  Status AppendRawOutEntry(CellId node, CellId value);
  Status InsertRawInEntry(CellId node, CellId value);

  /// Encodes a NodeImage into the cell blob layout (exposed for tests and
  /// for engines that build cells directly).
  static std::string EncodeNode(const NodeImage& node);
  /// Decodes a cell blob; returns Corruption on malformed input.
  static Status DecodeNode(CellId id, Slice blob, NodeImage* out);

  // --- Queries ------------------------------------------------------------
  bool HasNode(CellId id);
  Status GetOutlinks(CellId id, std::vector<CellId>* out);
  Status GetOutlinksFrom(MachineId src, CellId id, std::vector<CellId>* out);
  Status GetInlinks(CellId id, std::vector<CellId>* out);
  Status GetInlinksFrom(MachineId src, CellId id, std::vector<CellId>* out);
  Status GetNodeData(CellId id, std::string* out);
  Status GetNodeDataFrom(MachineId src, CellId id, std::string* out);
  Status SetNodeData(CellId id, Slice data);
  Status OutDegreeFrom(MachineId src, CellId id, std::size_t* out);

  /// Zero-copy visit of a node hosted on `machine`: fn receives the node's
  /// in/out adjacency and data directly over trunk memory (the cell stays
  /// pinned for the duration). Returns NotFound when the node is not local.
  using LocalVisitor = std::function<void(Slice data, const CellId* in,
                                          std::size_t in_count,
                                          const CellId* out,
                                          std::size_t out_count)>;
  Status VisitLocalNode(MachineId machine, CellId id,
                        const LocalVisitor& fn) const;

  /// Same, against an already-resolved storage snapshot. Compute engines
  /// resolve `cloud()->storage(m)` once per superstep and use this overload
  /// from worker threads so the per-vertex hot path never touches the cloud
  /// membership mutex. Concurrent const access is safe: the trunk pins the
  /// cell under its striped spinlock for the visit.
  Status VisitLocalNode(storage::MemoryStorage* store, CellId id,
                        const LocalVisitor& fn) const;

  /// Node ids hosted on `machine` (scans its trunks).
  std::vector<CellId> LocalNodes(MachineId machine) const;

  /// Owner machine of a node, per the primary addressing table.
  MachineId MachineOfNode(CellId id) const { return cloud_->MachineOf(id); }

  /// Total node count across the cloud (full scan; cache if hot).
  std::uint64_t CountNodes() const;

 private:
  /// Parses the fixed header. Returns false on malformed blobs.
  static bool ParseHeader(Slice blob, std::uint32_t* in_count,
                          std::uint32_t* data_len, std::size_t* in_begin,
                          std::size_t* out_begin, std::size_t* out_count);

  Status InsertInlink(MachineId src, CellId node, CellId from);

  cloud::MemoryCloud* cloud_;
  const Options options_;
};

}  // namespace trinity::graph

#endif  // TRINITY_GRAPH_GRAPH_H_
