#ifndef TRINITY_ALGOS_LANDMARK_H_
#define TRINITY_ALGOS_LANDMARK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace trinity::algos {

/// Landmark selection strategies for the distance oracle (paper §5.5,
/// Fig 8b, after Orion [37]).
enum class LandmarkStrategy {
  /// Vertices with the largest degree — the paper's worst performer.
  kLargestDegree,
  /// Vertices with the highest betweenness computed *locally* on each
  /// machine's partition — Trinity's new offline paradigm: derive a global
  /// answer from per-machine samples with almost no communication. Nearly
  /// matches global betweenness at a fraction of the cost.
  kLocalBetweenness,
  /// Highest betweenness on the whole graph — best accuracy, most costly.
  kGlobalBetweenness,
};

/// Landmark-based shortest-distance estimation: precompute exact BFS
/// distances from each landmark; estimate d(s,t) as min over landmarks of
/// d(s,l) + d(l,t).
class DistanceOracle {
 public:
  struct Options {
    LandmarkStrategy strategy = LandmarkStrategy::kLocalBetweenness;
    int num_landmarks = 20;
    /// Betweenness is approximated by Brandes accumulation from this many
    /// sampled sources.
    int betweenness_samples = 32;
    std::uint64_t seed = 7;
  };

  struct EvalReport {
    /// Mean of exact/estimated over sampled query pairs, in percent
    /// (estimates are upper bounds, so 100 means perfect).
    double accuracy_pct = 0;
    int pairs_evaluated = 0;
    std::vector<CellId> landmarks;
  };

  /// Builds the oracle over the (symmetrized) distributed graph. For
  /// kLocalBetweenness, betweenness is computed on each machine's local
  /// induced subgraph and the landmark budget is split across machines.
  static Status Build(graph::Graph* graph, const Options& options,
                      DistanceOracle* oracle);

  /// Estimated distance (upper bound); returns infinity-like large value
  /// when no landmark reaches both endpoints.
  std::uint32_t Estimate(CellId s, CellId t) const;

  /// Exact BFS distance on the symmetrized graph (for evaluation).
  std::uint32_t Exact(CellId s, CellId t) const;

  /// Samples `pairs` random connected (s, t) pairs and reports accuracy.
  EvalReport Evaluate(int pairs, std::uint64_t seed) const;

  const std::vector<CellId>& landmarks() const { return landmarks_; }

 private:
  static constexpr std::uint32_t kUnreachable = ~0u;

  /// BFS distances from `source` over the in-memory CSR.
  std::vector<std::uint32_t> BfsFrom(std::uint32_t source) const;

  graph::Csr csr_;
  std::vector<CellId> node_ids_;            ///< Dense index -> CellId.
  std::vector<std::uint32_t> dense_of_;     ///< CellId -> dense (ids dense).
  std::vector<CellId> landmarks_;
  /// distances_[l][v]: distance from landmark l to dense vertex v.
  std::vector<std::vector<std::uint32_t>> distances_;
};

/// Approximate betweenness centrality by sampled Brandes accumulation.
/// Exposed for tests and for the Fig 8(b) bench.
std::vector<double> ApproxBetweenness(const graph::Csr& csr, int samples,
                                      std::uint64_t seed);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_LANDMARK_H_
