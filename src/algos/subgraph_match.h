#ifndef TRINITY_ALGOS_SUBGRAPH_MATCH_H_
#define TRINITY_ALGOS_SUBGRAPH_MATCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "net/cost_model.h"

namespace trinity::algos {

/// Exploration-based subgraph matching without any structure index (paper
/// §5.2, Fig 8a, Fig 14a; after [32]). Queries are small labeled patterns;
/// matching proceeds by distributed graph exploration: partial embeddings
/// are routed to the machine owning the next candidate vertex, which
/// verifies edges against its local adjacency and extends. "The combination
/// of fast random access and parallel computing offers a new paradigm."
///
/// Vertex labels are virtual: label(v) = Mix64(v ^ label_seed) % num_labels,
/// so no storage is touched and the same labeling is visible on every
/// machine.
class SubgraphMatcher {
 public:
  /// A query pattern in match order: node i must carry `label` and be
  /// adjacent (either direction) to every earlier node listed in
  /// `edges_to_earlier`; the first entry is the *anchor* whose neighborhood
  /// supplies the candidates.
  struct PatternNode {
    std::uint32_t label = 0;
    std::vector<int> edges_to_earlier;
  };
  struct Pattern {
    std::vector<PatternNode> nodes;
  };

  struct Options {
    std::uint32_t num_labels = 32;
    std::uint64_t label_seed = 99;
    std::uint64_t max_results = 1024;
    std::uint64_t max_partials = 2'000'000;  ///< Work cap per query.
    /// Tasks a machine processes per communication round. Combined with the
    /// LIFO (depth-first) order, a small budget makes exploration complete
    /// embeddings early instead of flooding breadth-first.
    std::uint64_t round_budget = 4096;
    net::CostModel cost_model;
  };

  struct Result {
    std::uint64_t embeddings = 0;
    std::uint64_t partials_expanded = 0;
    double modeled_millis = 0;
    int rounds = 0;
    bool truncated = false;  ///< Hit a result/work cap.
  };

  SubgraphMatcher(graph::Graph* graph, Options options);

  SubgraphMatcher(const SubgraphMatcher&) = delete;
  SubgraphMatcher& operator=(const SubgraphMatcher&) = delete;

  std::uint32_t LabelOf(CellId v) const;

  /// Runs a query across the cluster.
  Status Match(const Pattern& pattern, Result* result);

  /// Generates a pattern guaranteed to have at least one embedding, by
  /// walking the data graph depth-first from a random node (the DFS query
  /// generator of [32]).
  Status GenerateDfsQuery(int size, std::uint64_t seed, Pattern* out);

  /// RANDOM generator of [32]: grows a random connected subgraph by picking
  /// random frontier edges.
  Status GenerateRandomQuery(int size, std::uint64_t seed, Pattern* out);

  /// Reorders the pattern's match order for selectivity, in the spirit of
  /// the STwig ordering of [32]: the first node is the one with the rarest
  /// label in the data graph, and each subsequent node maximizes the number
  /// of edges back to already-ordered nodes (more edges = more pruning at
  /// Verify time), breaking ties toward rarer labels. The reordered pattern
  /// matches the same embeddings; the exploration visits fewer partials.
  Status OptimizeMatchOrder(const Pattern& pattern, Pattern* optimized);

  /// Data-graph frequency of each label (one metered distributed scan);
  /// cached after the first call.
  const std::vector<std::uint64_t>& LabelFrequencies();

 private:
  struct Embedding {
    std::vector<CellId> matched;
  };

  MachineId OwnerOf(CellId v) const;
  /// Extracts a pattern from concrete data-graph vertices.
  Pattern PatternFromVertices(const std::vector<CellId>& vertices);
  /// Collects a connected vertex set by exploration; used by both query
  /// generators.
  Status SampleConnectedVertices(int size, std::uint64_t seed, bool dfs,
                                 std::vector<CellId>* out);

  graph::Graph* graph_;
  Options options_;
  std::vector<MachineId> trunk_owner_;
  std::vector<std::uint64_t> label_frequencies_;
  int num_slaves_;
};

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_SUBGRAPH_MATCH_H_
