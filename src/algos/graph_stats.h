#ifndef TRINITY_ALGOS_GRAPH_STATS_H_
#define TRINITY_ALGOS_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "net/cost_model.h"

namespace trinity::algos {

/// Distributed structural statistics over a memory-cloud graph: degree
/// histogram, moments, and a Hill-style tail-exponent estimate. Runs as a
/// machine-parallel scan over local trunks (metered), the access pattern
/// the paper's §5.5 "new offline paradigm" builds on — each machine
/// derives statistics from its own partition, and the client folds them.
struct GraphStats {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;  ///< Out-edges.
  double avg_out_degree = 0;
  std::uint64_t max_out_degree = 0;
  /// Out-degree histogram (degree -> count).
  std::map<std::uint64_t, std::uint64_t> degree_histogram;
  /// Hill estimator of the power-law tail exponent gamma over degrees >=
  /// tail_cutoff (0 when the tail is too small to estimate).
  double power_law_gamma = 0;
  double modeled_millis = 0;  ///< Modeled scan time.
};

/// Computes stats with one distributed scan. `tail_cutoff` sets the Hill
/// estimator's threshold (degrees >= cutoff are "the tail").
Status ComputeGraphStats(graph::Graph* graph, std::uint64_t tail_cutoff,
                         const net::CostModel& cost_model, GraphStats* out);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_GRAPH_STATS_H_
