#ifndef TRINITY_ALGOS_BFS_H_
#define TRINITY_ALGOS_BFS_H_

#include <unordered_map>

#include "compute/traversal.h"
#include "graph/graph.h"

namespace trinity::algos {

/// Distributed breadth-first search (paper §7, Fig 12c / Fig 13; the
/// Graph500 kernel). Runs on the traversal engine: per level, machines
/// expand their local frontier zero-copy and ship discovered remote vertices
/// as packed one-sided messages.
struct BfsResult {
  std::unordered_map<CellId, std::uint32_t> distances;
  compute::TraversalEngine::QueryStats stats;
  double modeled_seconds = 0;
  std::uint64_t reached = 0;
};

Status RunBfs(graph::Graph* graph, CellId start,
              const compute::TraversalEngine::Options& options,
              BfsResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_BFS_H_
