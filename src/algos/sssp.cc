#include "algos/sssp.h"

#include <cstring>
#include <limits>

#include "common/hash.h"

namespace trinity::algos {

double SsspEdgeWeight(CellId u, CellId v, std::uint64_t weight_range) {
  if (weight_range <= 1) return 1.0;
  return 1.0 + static_cast<double>(Mix64(u ^ (v * 0x9e3779b97f4a7c15ULL)) %
                                   weight_range);
}

Status RunSssp(graph::Graph* graph, CellId source, const SsspOptions& options,
               SsspResult* result) {
  compute::AsyncEngine::Options async = options.async;
  if (options.delta_scheduling) {
    // Tentative distances coalesce by min — the only candidate worth
    // relaxing is the best one seen so far.
    async.combiner = [](std::string* accumulated, Slice message) {
      double acc = 0, candidate = 0;
      std::memcpy(&acc, accumulated->data(), 8);
      std::memcpy(&candidate, message.data(), 8);
      if (candidate < acc) {
        std::memcpy(accumulated->data(), &candidate, 8);
      }
    };
    // Priority = how much this candidate improves the settled distance;
    // unreached vertices are infinitely urgent. Non-improving candidates
    // score <= 0, so any epsilon > 0 drops them at the queue door instead
    // of spending an update to discard them as stale.
    async.priority = [](CellId, Slice delta, Slice value) {
      double candidate = 0;
      std::memcpy(&candidate, delta.data(), 8);
      if (value.size() != 8) {
        return std::numeric_limits<double>::infinity();
      }
      double current = 0;
      std::memcpy(&current, value.data(), 8);
      return current - candidate;
    };
    if (async.priority_epsilon <= 0) async.priority_epsilon = 1e-12;
  }
  compute::AsyncEngine engine(graph, async);
  const double zero = 0.0;
  Status s = engine.Seed(source,
                         Slice(reinterpret_cast<const char*>(&zero), 8));
  if (!s.ok()) return s;
  const std::uint64_t range = options.weight_range;
  s = engine.Run(
      [range](compute::AsyncEngine::Context& ctx, Slice message) {
        double candidate = 0;
        std::memcpy(&candidate, message.data(), 8);
        double current = std::numeric_limits<double>::infinity();
        if (ctx.value().size() == 8) {
          std::memcpy(&current, ctx.value().data(), 8);
        }
        if (candidate >= current) return;  // Stale relaxation.
        ctx.value().assign(reinterpret_cast<const char*>(&candidate), 8);
        for (std::size_t i = 0; i < ctx.out_count(); ++i) {
          const CellId neighbor = ctx.out()[i];
          const double next =
              candidate + SsspEdgeWeight(ctx.vertex(), neighbor, range);
          ctx.Send(neighbor, Slice(reinterpret_cast<const char*>(&next), 8));
        }
      },
      &result->stats);
  if (!s.ok()) return s;
  result->distances.clear();
  engine.ForEachValue([&](CellId vertex, const std::string& value) {
    double d = 0;
    if (value.size() == 8) std::memcpy(&d, value.data(), 8);
    result->distances[vertex] = d;
  });
  return Status::OK();
}

}  // namespace trinity::algos
