#ifndef TRINITY_ALGOS_WCC_H_
#define TRINITY_ALGOS_WCC_H_

#include <unordered_map>

#include "compute/bsp.h"
#include "graph/graph.h"

namespace trinity::algos {

/// Weakly connected components by min-label propagation on the BSP engine.
/// Labels travel across both edge directions (weak connectivity), which
/// exercises the general — not just restrictive — messaging model.
struct WccResult {
  std::unordered_map<CellId, CellId> component;  ///< Vertex -> min label.
  std::uint64_t num_components = 0;
  compute::BspEngine::RunStats stats;
};

struct WccOptions {
  compute::BspEngine::Options bsp;
};

Status RunWcc(graph::Graph* graph, const WccOptions& options,
              WccResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_WCC_H_
