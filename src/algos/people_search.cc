#include "algos/people_search.h"

namespace trinity::algos {

Status RunPeopleSearch(graph::Graph* graph, CellId user,
                       const std::string& name,
                       const PeopleSearchOptions& options,
                       PeopleSearchResult* result) {
  result->matches.clear();
  compute::TraversalEngine engine(graph, options.traversal);
  const std::size_t limit = options.max_matches;
  return engine.KHopExplore(
      user, options.max_hops,
      [&](CellId vertex, int depth, Slice data) {
        if (depth > 0 && data.size() == name.size() &&
            std::memcmp(data.data(), name.data(), name.size()) == 0) {
          if (limit == 0 || result->matches.size() < limit) {
            result->matches.push_back(
                PersonMatch{vertex, depth, data.ToString()});
          }
        }
        // Keep expanding until the hop budget runs out (the engine enforces
        // max_hops); stop expanding once enough matches were collected.
        return limit == 0 || result->matches.size() < limit;
      },
      &result->stats);
}

}  // namespace trinity::algos
