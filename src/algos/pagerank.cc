#include "algos/pagerank.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace trinity::algos {

namespace {

double DecodeDouble(Slice s) {
  double v = 0;
  if (s.size() == 8) std::memcpy(&v, s.data(), 8);
  return v;
}

Slice EncodeDouble(const double& v) {
  return Slice(reinterpret_cast<const char*>(&v), 8);
}

}  // namespace

Status RunPageRank(graph::Graph* graph, const PageRankOptions& options,
                   PageRankResult* result) {
  const double n = static_cast<double>(graph->CountNodes());
  if (n == 0) return Status::InvalidArgument("empty graph");
  compute::BspEngine::Options bsp = options.bsp;
  // Incoming rank contributions sum — inboxes stay O(V).
  bsp.combiner = [](std::string* accumulator, Slice message) {
    double acc = 0;
    std::memcpy(&acc, accumulator->data(), 8);
    acc += DecodeDouble(message);
    std::memcpy(accumulator->data(), &acc, 8);
  };
  if (bsp.superstep_limit < options.iterations + 1) {
    bsp.superstep_limit = options.iterations + 1;
  }
  const double epsilon = options.convergence_epsilon;
  if (epsilon > 0) {
    // Global L1 residual through the BSP aggregator (sum of doubles).
    bsp.aggregator = [](std::string* accumulator, Slice contribution) {
      double acc = 0;
      std::memcpy(&acc, accumulator->data(), 8);
      acc += DecodeDouble(contribution);
      std::memcpy(accumulator->data(), &acc, 8);
    };
  }
  compute::BspEngine engine(graph, bsp);
  const int iterations = options.iterations;
  const double damping = options.damping;
  Status s = engine.Run(
      [n, iterations, damping,
       epsilon](compute::BspEngine::VertexContext& ctx) {
        double rank;
        double previous = 0;
        if (ctx.superstep() == 0) {
          rank = 1.0 / n;
        } else {
          previous = DecodeDouble(Slice(ctx.value()));
          double incoming = 0;
          for (Slice msg : ctx.messages()) {
            incoming += DecodeDouble(msg);
          }
          rank = (1.0 - damping) / n + damping * incoming;
        }
        ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
        bool stop = ctx.superstep() >= iterations;
        if (epsilon > 0) {
          const double residual = std::abs(rank - previous);
          ctx.Aggregate(EncodeDouble(residual));
          // aggregated() holds the previous superstep's global residual.
          if (ctx.superstep() >= 2 &&
              DecodeDouble(ctx.aggregated()) < epsilon) {
            stop = true;
          }
        }
        if (!stop) {
          if (ctx.out_count() > 0) {
            const double share = rank / static_cast<double>(ctx.out_count());
            ctx.SendToAllOut(EncodeDouble(share));
          }
        } else {
          ctx.VoteToHalt();
        }
      },
      &result->stats);
  if (!s.ok()) return s;
  result->ranks.clear();
  engine.ForEachValue([&](CellId vertex, const std::string& value) {
    result->ranks[vertex] = DecodeDouble(Slice(value));
  });
  result->seconds_per_iteration =
      result->stats.supersteps > 0
          ? result->stats.modeled_seconds / result->stats.supersteps
          : 0;
  return Status::OK();
}

Status RunDeltaPageRank(graph::Graph* graph,
                        const DeltaPageRankOptions& options,
                        DeltaPageRankResult* result) {
  const double n = static_cast<double>(graph->CountNodes());
  if (n == 0) return Status::InvalidArgument("empty graph");
  compute::AsyncEngine::Options async = options.async;
  if (async.priority_epsilon <= 0) async.priority_epsilon = options.epsilon;
  if (async.priority_epsilon <= 0) {
    return Status::InvalidArgument(
        "delta pagerank needs epsilon > 0: the residual push is geometric "
        "and only the drop threshold terminates it");
  }
  // Residuals sum; the fold order is canonical (deterministic) and the sum
  // is commutative, so every scheduler mode reaches the same fixed point.
  async.combiner = [](std::string* accumulated, Slice message) {
    double acc = 0;
    std::memcpy(&acc, accumulated->data(), 8);
    acc += DecodeDouble(message);
    std::memcpy(accumulated->data(), &acc, 8);
  };
  // GraphLab's delta-PageRank priority: the magnitude of the pending
  // residual — exactly the rank mass this update would move.
  async.priority = [](CellId, Slice delta, Slice) {
    return std::fabs(DecodeDouble(delta));
  };
  compute::AsyncEngine engine(graph, async);
  // Seed every vertex with the teleport residual in canonical
  // (machine, ascending id) order so runs are deterministic.
  const double seed_residual = (1.0 - options.damping) / n;
  const int slaves = graph->cloud()->num_slaves();
  for (MachineId m = 0; m < slaves; ++m) {
    std::vector<CellId> ids = graph->LocalNodes(m);
    std::sort(ids.begin(), ids.end());
    for (CellId v : ids) {
      Status s = engine.Seed(v, EncodeDouble(seed_residual));
      if (!s.ok()) return s;
    }
  }
  const double damping = options.damping;
  Status s = engine.Run(
      [damping](compute::AsyncEngine::Context& ctx, Slice message) {
        const double delta = DecodeDouble(message);
        double rank = 0;
        if (ctx.value().size() == 8) {
          std::memcpy(&rank, ctx.value().data(), 8);
        }
        rank += delta;
        ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
        if (ctx.out_count() == 0) return;
        const double share =
            damping * delta / static_cast<double>(ctx.out_count());
        for (std::size_t i = 0; i < ctx.out_count(); ++i) {
          ctx.Send(ctx.out()[i], EncodeDouble(share));
        }
      },
      &result->stats);
  if (!s.ok()) return s;
  result->ranks.clear();
  engine.ForEachValue([&](CellId vertex, const std::string& value) {
    result->ranks[vertex] = DecodeDouble(Slice(value));
  });
  return Status::OK();
}

}  // namespace trinity::algos
