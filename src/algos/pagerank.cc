#include "algos/pagerank.h"

#include <cmath>
#include <cstring>

namespace trinity::algos {

namespace {

double DecodeDouble(Slice s) {
  double v = 0;
  if (s.size() == 8) std::memcpy(&v, s.data(), 8);
  return v;
}

Slice EncodeDouble(const double& v) {
  return Slice(reinterpret_cast<const char*>(&v), 8);
}

}  // namespace

Status RunPageRank(graph::Graph* graph, const PageRankOptions& options,
                   PageRankResult* result) {
  const double n = static_cast<double>(graph->CountNodes());
  if (n == 0) return Status::InvalidArgument("empty graph");
  compute::BspEngine::Options bsp = options.bsp;
  // Incoming rank contributions sum — inboxes stay O(V).
  bsp.combiner = [](std::string* accumulator, Slice message) {
    double acc = 0;
    std::memcpy(&acc, accumulator->data(), 8);
    acc += DecodeDouble(message);
    std::memcpy(accumulator->data(), &acc, 8);
  };
  if (bsp.superstep_limit < options.iterations + 1) {
    bsp.superstep_limit = options.iterations + 1;
  }
  const double epsilon = options.convergence_epsilon;
  if (epsilon > 0) {
    // Global L1 residual through the BSP aggregator (sum of doubles).
    bsp.aggregator = [](std::string* accumulator, Slice contribution) {
      double acc = 0;
      std::memcpy(&acc, accumulator->data(), 8);
      acc += DecodeDouble(contribution);
      std::memcpy(accumulator->data(), &acc, 8);
    };
  }
  compute::BspEngine engine(graph, bsp);
  const int iterations = options.iterations;
  const double damping = options.damping;
  Status s = engine.Run(
      [n, iterations, damping,
       epsilon](compute::BspEngine::VertexContext& ctx) {
        double rank;
        double previous = 0;
        if (ctx.superstep() == 0) {
          rank = 1.0 / n;
        } else {
          previous = DecodeDouble(Slice(ctx.value()));
          double incoming = 0;
          for (Slice msg : ctx.messages()) {
            incoming += DecodeDouble(msg);
          }
          rank = (1.0 - damping) / n + damping * incoming;
        }
        ctx.value().assign(reinterpret_cast<const char*>(&rank), 8);
        bool stop = ctx.superstep() >= iterations;
        if (epsilon > 0) {
          const double residual = std::abs(rank - previous);
          ctx.Aggregate(EncodeDouble(residual));
          // aggregated() holds the previous superstep's global residual.
          if (ctx.superstep() >= 2 &&
              DecodeDouble(ctx.aggregated()) < epsilon) {
            stop = true;
          }
        }
        if (!stop) {
          if (ctx.out_count() > 0) {
            const double share = rank / static_cast<double>(ctx.out_count());
            ctx.SendToAllOut(EncodeDouble(share));
          }
        } else {
          ctx.VoteToHalt();
        }
      },
      &result->stats);
  if (!s.ok()) return s;
  result->ranks.clear();
  engine.ForEachValue([&](CellId vertex, const std::string& value) {
    result->ranks[vertex] = DecodeDouble(Slice(value));
  });
  result->seconds_per_iteration =
      result->stats.supersteps > 0
          ? result->stats.modeled_seconds / result->stats.supersteps
          : 0;
  return Status::OK();
}

}  // namespace trinity::algos
