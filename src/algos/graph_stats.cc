#include "algos/graph_stats.h"

#include <algorithm>
#include <cmath>

namespace trinity::algos {

Status ComputeGraphStats(graph::Graph* graph, std::uint64_t tail_cutoff,
                         const net::CostModel& cost_model, GraphStats* out) {
  *out = GraphStats();
  cloud::MemoryCloud* cloud = graph->cloud();
  net::Fabric& fabric = cloud->fabric();
  fabric.ResetMeters();
  // Per-machine partial histograms, folded client-side (the per-partition
  // sampling paradigm of §5.5 — no cross-machine traffic beyond the fold).
  std::vector<std::map<std::uint64_t, std::uint64_t>> partials(
      cloud->num_slaves());
  Status failure;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    for (CellId v : graph->LocalNodes(m)) {
      Status s = graph->VisitLocalNode(
          m, v,
          [&](Slice, const CellId*, std::size_t, const CellId*,
              std::size_t out_count) {
            ++partials[m][out_count];
          });
      if (!s.ok()) failure = s;
    }
  }
  if (!failure.ok()) return failure;
  for (const auto& partial : partials) {
    for (const auto& [degree, count] : partial) {
      out->degree_histogram[degree] += count;
    }
  }
  double degree_sum = 0;
  for (const auto& [degree, count] : out->degree_histogram) {
    out->num_nodes += count;
    out->num_edges += degree * count;
    degree_sum += static_cast<double>(degree) * static_cast<double>(count);
    out->max_out_degree = std::max(out->max_out_degree, degree);
  }
  if (out->num_nodes > 0) {
    out->avg_out_degree = degree_sum / static_cast<double>(out->num_nodes);
  }
  // Hill estimator: gamma = 1 + n_tail / sum(ln(d_i / cutoff)), d_i >=
  // cutoff.
  if (tail_cutoff >= 1) {
    double log_sum = 0;
    std::uint64_t tail = 0;
    for (const auto& [degree, count] : out->degree_histogram) {
      if (degree < tail_cutoff) continue;
      log_sum += static_cast<double>(count) *
                 std::log(static_cast<double>(degree) /
                          static_cast<double>(tail_cutoff));
      tail += count;
    }
    if (tail >= 10 && log_sum > 0) {
      out->power_law_gamma = 1.0 + static_cast<double>(tail) / log_sum;
    }
  }
  out->modeled_millis = cost_model.PhaseSeconds(fabric) * 1000.0;
  return Status::OK();
}

}  // namespace trinity::algos
