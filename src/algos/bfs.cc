#include "algos/bfs.h"

namespace trinity::algos {

Status RunBfs(graph::Graph* graph, CellId start,
              const compute::TraversalEngine::Options& options,
              BfsResult* result) {
  compute::TraversalEngine engine(graph, options);
  Status s = engine.Bfs(start, &result->distances, &result->stats);
  if (!s.ok()) return s;
  result->modeled_seconds = result->stats.modeled_millis / 1000.0;
  result->reached = result->distances.size();
  return Status::OK();
}

}  // namespace trinity::algos
