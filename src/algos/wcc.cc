#include "algos/wcc.h"

#include <cstring>
#include <unordered_set>

namespace trinity::algos {

namespace {

CellId DecodeId(Slice s) {
  CellId v = 0;
  if (s.size() == 8) std::memcpy(&v, s.data(), 8);
  return v;
}

}  // namespace

Status RunWcc(graph::Graph* graph, const WccOptions& options,
              WccResult* result) {
  compute::BspEngine::Options bsp = options.bsp;
  // Min-combiner keeps one candidate label per vertex.
  bsp.combiner = [](std::string* accumulator, Slice message) {
    CellId acc = 0, incoming = 0;
    std::memcpy(&acc, accumulator->data(), 8);
    std::memcpy(&incoming, message.data(), 8);
    if (incoming < acc) std::memcpy(accumulator->data(), &incoming, 8);
  };
  compute::BspEngine engine(graph, bsp);
  Status s = engine.Run(
      [](compute::BspEngine::VertexContext& ctx) {
        CellId label;
        bool changed = false;
        if (ctx.superstep() == 0) {
          label = ctx.vertex();
          changed = true;
        } else {
          label = DecodeId(Slice(ctx.value()));
          for (Slice msg : ctx.messages()) {
            const CellId candidate = DecodeId(msg);
            if (candidate < label) {
              label = candidate;
              changed = true;
            }
          }
        }
        if (changed) {
          ctx.value().assign(reinterpret_cast<const char*>(&label), 8);
          const Slice msg(reinterpret_cast<const char*>(&label), 8);
          // Weak connectivity: labels flow along both directions.
          for (std::size_t i = 0; i < ctx.out_count(); ++i) {
            ctx.Send(ctx.out()[i], msg);
          }
          for (std::size_t i = 0; i < ctx.in_count(); ++i) {
            ctx.Send(ctx.in()[i], msg);
          }
        }
        ctx.VoteToHalt();
      },
      &result->stats);
  if (!s.ok()) return s;
  result->component.clear();
  std::unordered_set<CellId> roots;
  engine.ForEachValue([&](CellId vertex, const std::string& value) {
    const CellId label = DecodeId(Slice(value));
    result->component[vertex] = label;
    roots.insert(label);
  });
  result->num_components = roots.size();
  return Status::OK();
}

}  // namespace trinity::algos
