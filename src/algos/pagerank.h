#ifndef TRINITY_ALGOS_PAGERANK_H_
#define TRINITY_ALGOS_PAGERANK_H_

#include <unordered_map>

#include "compute/bsp.h"
#include "graph/graph.h"

namespace trinity::algos {

/// PageRank on the BSP engine (paper §7, Fig 12b/12d): the canonical
/// restrictive vertex-centric computation — every vertex talks only to its
/// out-neighbors, so messages combine at delivery and pack on the wire.
struct PageRankOptions {
  int iterations = 10;
  double damping = 0.85;
  /// When > 0, stop as soon as the global L1 residual (sum of per-vertex
  /// rank changes, folded through the BSP aggregator) drops below this;
  /// `iterations` then acts as an upper bound.
  double convergence_epsilon = 0.0;
  compute::BspEngine::Options bsp;
};

struct PageRankResult {
  std::unordered_map<CellId, double> ranks;
  compute::BspEngine::RunStats stats;
  /// Modeled seconds for one iteration (total / iterations) — the quantity
  /// Fig 12(b) plots.
  double seconds_per_iteration = 0;
};

Status RunPageRank(graph::Graph* graph, const PageRankOptions& options,
                   PageRankResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_PAGERANK_H_
