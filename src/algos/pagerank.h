#ifndef TRINITY_ALGOS_PAGERANK_H_
#define TRINITY_ALGOS_PAGERANK_H_

#include <unordered_map>

#include "compute/async_engine.h"
#include "compute/bsp.h"
#include "graph/graph.h"

namespace trinity::algos {

/// PageRank on the BSP engine (paper §7, Fig 12b/12d): the canonical
/// restrictive vertex-centric computation — every vertex talks only to its
/// out-neighbors, so messages combine at delivery and pack on the wire.
struct PageRankOptions {
  int iterations = 10;
  double damping = 0.85;
  /// When > 0, stop as soon as the global L1 residual (sum of per-vertex
  /// rank changes, folded through the BSP aggregator) drops below this;
  /// `iterations` then acts as an upper bound.
  double convergence_epsilon = 0.0;
  compute::BspEngine::Options bsp;
};

struct PageRankResult {
  std::unordered_map<CellId, double> ranks;
  compute::BspEngine::RunStats stats;
  /// Modeled seconds for one iteration (total / iterations) — the quantity
  /// Fig 12(b) plots.
  double seconds_per_iteration = 0;
};

Status RunPageRank(graph::Graph* graph, const PageRankOptions& options,
                   PageRankResult* result);

/// Delta (residual-push) PageRank on the AsyncEngine's delta cache — the
/// GraphLab-style formulation the prioritized scheduler exists for. Every
/// vertex is seeded with residual (1-d)/n; processing a vertex adds its
/// accumulated residual to its rank and pushes d*delta/outdeg to each
/// out-neighbor; the engine folds concurrent residuals through a sum
/// combiner, orders work by |residual|, and drops residuals below `epsilon`
/// instead of queueing them (the truncation is what terminates the
/// otherwise-geometric push). Converges to the fixed point
/// r(v) = (1-d)/n + d * sum_{u->v} r(u)/outdeg(u) — the same one
/// RunPageRank reaches when run to convergence.
struct DeltaPageRankOptions {
  double damping = 0.85;
  /// Residual drop threshold; must be > 0. Copied into
  /// async.priority_epsilon when that is unset.
  double epsilon = 1e-9;
  /// Scheduler mode, thread count, max_updates... The combiner, priority
  /// function, and (if unset) priority_epsilon are installed here.
  compute::AsyncEngine::Options async;
};

struct DeltaPageRankResult {
  std::unordered_map<CellId, double> ranks;
  compute::AsyncEngine::RunStats stats;
};

Status RunDeltaPageRank(graph::Graph* graph,
                        const DeltaPageRankOptions& options,
                        DeltaPageRankResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_PAGERANK_H_
