#ifndef TRINITY_ALGOS_PEOPLE_SEARCH_H_
#define TRINITY_ALGOS_PEOPLE_SEARCH_H_

#include <string>
#include <vector>

#include "compute/traversal.h"
#include "graph/graph.h"

namespace trinity::algos {

/// The "David problem" (paper §5.1, Fig 7, Fig 12a): on a social network,
/// find anyone with a given first name among a user's friends, friends'
/// friends, and friends' friends' friends. Unindexable at web scale; Trinity
/// answers it by raw memory-speed k-hop exploration.
struct PeopleSearchOptions {
  int max_hops = 3;
  compute::TraversalEngine::Options traversal;
  /// Stop after this many matches (0 = find all in range).
  std::size_t max_matches = 0;
};

struct PersonMatch {
  CellId person = kInvalidCell;
  int hops = 0;
  std::string name;
};

struct PeopleSearchResult {
  std::vector<PersonMatch> matches;
  compute::TraversalEngine::QueryStats stats;
};

/// Searches `name` within `options.max_hops` hops of `user`. Node data is
/// interpreted as the person's first name (see Generators::NameFor).
Status RunPeopleSearch(graph::Graph* graph, CellId user,
                       const std::string& name,
                       const PeopleSearchOptions& options,
                       PeopleSearchResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_PEOPLE_SEARCH_H_
