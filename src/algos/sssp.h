#ifndef TRINITY_ALGOS_SSSP_H_
#define TRINITY_ALGOS_SSSP_H_

#include <unordered_map>

#include "compute/async_engine.h"
#include "graph/graph.h"

namespace trinity::algos {

/// Single-source shortest paths by asynchronous relaxation on the
/// AsyncEngine — the paper's example of a computation that fits the
/// asynchronous model (a vertex can act on partially updated information
/// from its in-links, §8). Edge weights are derived deterministically from
/// the endpoint ids so the experiment needs no stored weights.
struct SsspOptions {
  compute::AsyncEngine::Options async;
  /// Weights are 1 + Mix64(u^v) % weight_range (1 = unweighted BFS).
  std::uint64_t weight_range = 8;
  /// Delta scheduling (docs/async_scheduling.md): install a min-combiner —
  /// concurrent candidate distances for a vertex coalesce into the best one
  /// — and an improvement priority (current distance minus candidate, +inf
  /// for unreached vertices), enabling priority/sweep modes and epsilon
  /// dropping of non-improving relaxations. Off by default: the classic
  /// one-message-per-relaxation fifo behavior is kept bit-identical.
  bool delta_scheduling = false;
};

struct SsspResult {
  std::unordered_map<CellId, double> distances;
  compute::AsyncEngine::RunStats stats;
};

/// Deterministic weight of edge (u, v).
double SsspEdgeWeight(CellId u, CellId v, std::uint64_t weight_range);

Status RunSssp(graph::Graph* graph, CellId source, const SsspOptions& options,
               SsspResult* result);

}  // namespace trinity::algos

#endif  // TRINITY_ALGOS_SSSP_H_
