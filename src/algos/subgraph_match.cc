#include "algos/subgraph_match.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"
#include "common/serializer.h"

namespace trinity::algos {

namespace {

enum class Op : std::uint8_t { kExpand = 1, kVerify = 2 };

struct Task {
  Op op;
  std::uint32_t query_index;
  std::vector<CellId> matched;
};

std::string EncodeTask(const Task& task) {
  BinaryWriter writer;
  writer.PutU8(static_cast<std::uint8_t>(task.op));
  writer.PutU32(task.query_index);
  writer.PutU32(static_cast<std::uint32_t>(task.matched.size()));
  for (CellId v : task.matched) writer.PutU64(v);
  return writer.Release();
}

bool DecodeTask(Slice payload, Task* task) {
  BinaryReader reader(payload);
  std::uint8_t op = 0;
  std::uint32_t count = 0;
  if (!reader.GetU8(&op) || !reader.GetU32(&task->query_index) ||
      !reader.GetU32(&count)) {
    return false;
  }
  task->op = static_cast<Op>(op);
  task->matched.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!reader.GetU64(&task->matched[i])) return false;
  }
  return true;
}

}  // namespace

SubgraphMatcher::SubgraphMatcher(graph::Graph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  trunk_owner_.resize(cloud->table().num_slots());
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
  }
}

std::uint32_t SubgraphMatcher::LabelOf(CellId v) const {
  return static_cast<std::uint32_t>(Mix64(v ^ options_.label_seed) %
                                    options_.num_labels);
}

MachineId SubgraphMatcher::OwnerOf(CellId v) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(v)];
}

Status SubgraphMatcher::Match(const Pattern& pattern, Result* result) {
  *result = Result();
  if (pattern.nodes.empty()) return Status::InvalidArgument("empty pattern");
  if (graph_->options().directed && !graph_->options().track_inlinks) {
    return Status::InvalidArgument(
        "subgraph matching needs in-links on directed graphs");
  }
  for (std::size_t i = 1; i < pattern.nodes.size(); ++i) {
    if (pattern.nodes[i].edges_to_earlier.empty()) {
      return Status::InvalidArgument("pattern not connected in match order");
    }
  }
  net::Fabric& fabric = graph_->cloud()->fabric();
  std::vector<std::deque<Task>> queues(num_slaves_);
  for (MachineId m = 0; m < num_slaves_; ++m) {
    fabric.RegisterAsyncHandler(
        m, cloud::kSubgraphMatchHandler,
        [m, &queues](MachineId, Slice payload) {
          Task task;
          if (DecodeTask(payload, &task)) queues[m].push_back(std::move(task));
        });
  }
  auto route = [&](MachineId src, const Task& task, CellId target_vertex) {
    const MachineId dst = OwnerOf(target_vertex);
    if (dst == src) {
      queues[dst].push_back(task);
    } else {
      const std::string encoded = EncodeTask(task);
      fabric.SendAsync(src, dst, cloud::kSubgraphMatchHandler,
                       Slice(encoded));
    }
  };

  // Checks locally whether `v` (hosted on machine m) is adjacent to `w` in
  // either direction.
  auto adjacent_local = [&](MachineId m, CellId v, CellId w) {
    bool found = false;
    graph_->VisitLocalNode(
        m, v,
        [&](Slice, const CellId* in, std::size_t in_count, const CellId* out,
            std::size_t out_count) {
          for (std::size_t i = 0; i < out_count && !found; ++i) {
            if (out[i] == w) found = true;
          }
          for (std::size_t i = 0; i < in_count && !found; ++i) {
            if (in[i] == w) found = true;
          }
        });
    return found;
  };

  // Seed: every machine scans its local vertices for label-0 candidates.
  // (A production system scans lazily; the work cap bounds this too.)
  const std::uint32_t first_label = pattern.nodes[0].label;
  fabric.ResetMeters();
  bool done = false;
  for (MachineId m = 0; m < num_slaves_ && !done; ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    for (CellId v : graph_->LocalNodes(m)) {
      if (LabelOf(v) != first_label) continue;
      Task task;
      task.op = pattern.nodes.size() == 1 ? Op::kVerify : Op::kExpand;
      task.query_index = pattern.nodes.size() == 1 ? 0 : 1;
      task.matched = {v};
      if (pattern.nodes.size() == 1) {
        ++result->embeddings;  // Single-node pattern matches directly.
        if (result->embeddings >= options_.max_results) {
          result->truncated = true;
          done = true;
          break;
        }
      } else {
        queues[m].push_back(std::move(task));
      }
    }
  }
  result->modeled_millis +=
      options_.cost_model.PhaseSeconds(fabric) * 1000.0;
  ++result->rounds;

  while (!done) {
    bool any = false;
    fabric.ResetMeters();
    for (MachineId m = 0; m < num_slaves_ && !done; ++m) {
      net::Fabric::MeterScope meter(fabric, m);
      std::uint64_t processed_this_round = 0;
      while (!queues[m].empty() &&
             processed_this_round < options_.round_budget && !done) {
        any = true;
        ++processed_this_round;
        // Depth-first order (newly produced tasks are processed first):
        // completing embeddings early lets the max_results cap stop the
        // exploration long before the work cap.
        Task task = std::move(queues[m].back());
        queues[m].pop_back();
        if (++result->partials_expanded > options_.max_partials) {
          result->truncated = true;
          done = true;
          break;
        }
        const PatternNode& qnode = pattern.nodes[task.query_index];
        if (task.op == Op::kExpand) {
          // Enumerate candidates from the anchor's neighborhood.
          const int anchor = qnode.edges_to_earlier.front();
          const CellId anchor_vertex = task.matched[anchor];
          graph_->VisitLocalNode(
              m, anchor_vertex,
              [&](Slice, const CellId* in, std::size_t in_count,
                  const CellId* out, std::size_t out_count) {
                auto consider = [&](CellId u) {
                  if (LabelOf(u) != qnode.label) return;
                  if (std::find(task.matched.begin(), task.matched.end(),
                                u) != task.matched.end()) {
                    return;
                  }
                  Task verify;
                  verify.op = Op::kVerify;
                  verify.query_index = task.query_index;
                  verify.matched = task.matched;
                  verify.matched.push_back(u);
                  route(m, verify, u);
                };
                for (std::size_t i = 0; i < out_count; ++i) consider(out[i]);
                for (std::size_t i = 0; i < in_count; ++i) consider(in[i]);
              });
        } else {
          // Verify the candidate's remaining pattern edges locally.
          const CellId u = task.matched.back();
          bool ok = true;
          for (std::size_t e = 1; e < qnode.edges_to_earlier.size() && ok;
               ++e) {
            ok = adjacent_local(m, u,
                                task.matched[qnode.edges_to_earlier[e]]);
          }
          if (!ok) continue;
          if (task.query_index + 1 == pattern.nodes.size()) {
            ++result->embeddings;
            if (result->embeddings >= options_.max_results) {
              result->truncated = true;
              done = true;
            }
            continue;
          }
          Task expand;
          expand.op = Op::kExpand;
          expand.query_index = task.query_index + 1;
          expand.matched = std::move(task.matched);
          const int next_anchor =
              pattern.nodes[expand.query_index].edges_to_earlier.front();
          route(m, expand, expand.matched[next_anchor]);
        }
      }
    }
    fabric.FlushAll();
    for (MachineId m = 0; m < num_slaves_; ++m) {
      if (!queues[m].empty()) any = true;
    }
    result->modeled_millis +=
        options_.cost_model.PhaseSeconds(fabric) * 1000.0;
    ++result->rounds;
    if (!any) break;
  }
  return Status::OK();
}

Status SubgraphMatcher::SampleConnectedVertices(int size, std::uint64_t seed,
                                                bool dfs,
                                                std::vector<CellId>* out) {
  Random rng(seed);
  cloud::MemoryCloud* cloud = graph_->cloud();
  const std::uint64_t n = graph_->CountNodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  auto neighbors = [&](CellId v, std::vector<CellId>* result) {
    result->clear();
    std::vector<CellId> links;
    if (graph_->GetOutlinks(v, &links).ok()) {
      result->insert(result->end(), links.begin(), links.end());
    }
    if (graph_->options().directed && graph_->options().track_inlinks &&
        graph_->GetInlinks(v, &links).ok()) {
      result->insert(result->end(), links.begin(), links.end());
    }
  };
  for (int attempt = 0; attempt < 64; ++attempt) {
    const CellId start = rng.Uniform(n);
    bool start_exists = false;
    if (!cloud->Contains(start, &start_exists).ok() || !start_exists) {
      continue;
    }
    std::vector<CellId> sample{start};
    std::unordered_set<CellId> in_sample{start};
    std::vector<CellId> nbrs;
    while (static_cast<int>(sample.size()) < size) {
      // DFS grows from the most recent vertex; RANDOM from a random one.
      bool extended = false;
      const std::size_t base = dfs ? sample.size() : 0;
      for (std::size_t k = 0; k < sample.size() && !extended; ++k) {
        const std::size_t idx =
            dfs ? (base - 1 - k) : rng.Uniform(sample.size());
        neighbors(sample[idx], &nbrs);
        // Random starting offset so we don't always take the first edge.
        if (nbrs.empty()) continue;
        const std::size_t offset = rng.Uniform(nbrs.size());
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const CellId u = nbrs[(i + offset) % nbrs.size()];
          if (in_sample.insert(u).second) {
            sample.push_back(u);
            extended = true;
            break;
          }
        }
      }
      if (!extended) break;  // Trapped; retry from another start.
    }
    if (static_cast<int>(sample.size()) == size) {
      *out = std::move(sample);
      return Status::OK();
    }
  }
  return Status::NotFound("could not sample a connected subgraph");
}

SubgraphMatcher::Pattern SubgraphMatcher::PatternFromVertices(
    const std::vector<CellId>& vertices) {
  Pattern pattern;
  pattern.nodes.resize(vertices.size());
  // Materialize each sampled vertex's neighbor set once.
  std::vector<std::unordered_set<CellId>> adjacency(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    std::vector<CellId> links;
    if (graph_->GetOutlinks(vertices[i], &links).ok()) {
      adjacency[i].insert(links.begin(), links.end());
    }
    if (graph_->options().directed && graph_->options().track_inlinks &&
        graph_->GetInlinks(vertices[i], &links).ok()) {
      adjacency[i].insert(links.begin(), links.end());
    }
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    pattern.nodes[i].label = LabelOf(vertices[i]);
    for (std::size_t j = 0; j < i; ++j) {
      if (adjacency[i].count(vertices[j]) != 0 ||
          adjacency[j].count(vertices[i]) != 0) {
        pattern.nodes[i].edges_to_earlier.push_back(static_cast<int>(j));
      }
    }
  }
  return pattern;
}

const std::vector<std::uint64_t>& SubgraphMatcher::LabelFrequencies() {
  if (!label_frequencies_.empty()) return label_frequencies_;
  label_frequencies_.assign(options_.num_labels, 0);
  net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    for (CellId v : graph_->LocalNodes(m)) {
      ++label_frequencies_[LabelOf(v)];
    }
  }
  return label_frequencies_;
}

Status SubgraphMatcher::OptimizeMatchOrder(const Pattern& pattern,
                                           Pattern* optimized) {
  const std::size_t n = pattern.nodes.size();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  const std::vector<std::uint64_t>& freq = LabelFrequencies();
  // Reconstruct the full adjacency of the pattern from edges_to_earlier.
  std::vector<std::vector<int>> adjacency(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int j : pattern.nodes[i].edges_to_earlier) {
      adjacency[i].push_back(j);
      adjacency[j].push_back(static_cast<int>(i));
    }
  }
  auto label_freq = [&](std::size_t i) {
    const std::uint32_t label = pattern.nodes[i].label;
    return label < freq.size() ? freq[label] : 0;
  };
  std::vector<int> order;
  std::vector<bool> placed(n, false);
  // Seed: the rarest label.
  std::size_t seed = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (label_freq(i) < label_freq(seed)) seed = i;
  }
  order.push_back(static_cast<int>(seed));
  placed[seed] = true;
  while (order.size() < n) {
    int best = -1;
    std::size_t best_back_edges = 0;
    std::uint64_t best_freq = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      std::size_t back_edges = 0;
      for (int j : adjacency[i]) {
        if (placed[j]) ++back_edges;
      }
      if (back_edges == 0) continue;  // Keep the order connected.
      if (best < 0 || back_edges > best_back_edges ||
          (back_edges == best_back_edges && label_freq(i) < best_freq)) {
        best = static_cast<int>(i);
        best_back_edges = back_edges;
        best_freq = label_freq(i);
      }
    }
    if (best < 0) {
      return Status::InvalidArgument("pattern is not connected");
    }
    order.push_back(best);
    placed[best] = true;
  }
  // Rewrite the pattern in the new order.
  std::vector<int> position(n);
  for (std::size_t p = 0; p < n; ++p) {
    position[order[p]] = static_cast<int>(p);
  }
  optimized->nodes.assign(n, PatternNode{});
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t original = order[p];
    optimized->nodes[p].label = pattern.nodes[original].label;
    for (int neighbor : adjacency[original]) {
      const int neighbor_pos = position[neighbor];
      if (neighbor_pos < static_cast<int>(p)) {
        optimized->nodes[p].edges_to_earlier.push_back(neighbor_pos);
      }
    }
    std::sort(optimized->nodes[p].edges_to_earlier.begin(),
              optimized->nodes[p].edges_to_earlier.end());
    optimized->nodes[p].edges_to_earlier.erase(
        std::unique(optimized->nodes[p].edges_to_earlier.begin(),
                    optimized->nodes[p].edges_to_earlier.end()),
        optimized->nodes[p].edges_to_earlier.end());
  }
  return Status::OK();
}

Status SubgraphMatcher::GenerateDfsQuery(int size, std::uint64_t seed,
                                         Pattern* out) {
  std::vector<CellId> vertices;
  Status s = SampleConnectedVertices(size, seed, /*dfs=*/true, &vertices);
  if (!s.ok()) return s;
  *out = PatternFromVertices(vertices);
  return Status::OK();
}

Status SubgraphMatcher::GenerateRandomQuery(int size, std::uint64_t seed,
                                            Pattern* out) {
  std::vector<CellId> vertices;
  Status s = SampleConnectedVertices(size, seed, /*dfs=*/false, &vertices);
  if (!s.ok()) return s;
  *out = PatternFromVertices(vertices);
  return Status::OK();
}

}  // namespace trinity::algos
