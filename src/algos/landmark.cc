#include "algos/landmark.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "common/random.h"

namespace trinity::algos {

std::vector<double> ApproxBetweenness(const graph::Csr& csr, int samples,
                                      std::uint64_t seed) {
  // Brandes' algorithm from sampled sources (unweighted): forward BFS
  // collecting shortest-path counts sigma, then reverse dependency
  // accumulation.
  const std::uint64_t n = csr.num_nodes;
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;
  Random rng(seed);
  std::vector<std::int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::uint32_t> order;  // BFS visitation order.
  order.reserve(n);
  const int rounds = std::min<std::uint64_t>(samples, n);
  for (int round = 0; round < rounds; ++round) {
    const std::uint32_t source =
        static_cast<std::uint32_t>(rng.Uniform(n));
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[source] = 0;
    sigma[source] = 1.0;
    std::deque<std::uint32_t> queue{source};
    while (!queue.empty()) {
      const std::uint32_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (std::size_t i = 0; i < csr.Degree(v); ++i) {
        const std::uint32_t u = csr.Neighbors(v)[i];
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
        if (dist[u] == dist[v] + 1) sigma[u] += sigma[v];
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t u = *it;
      for (std::size_t i = 0; i < csr.Degree(u); ++i) {
        const std::uint32_t w = csr.Neighbors(u)[i];
        if (dist[w] == dist[u] + 1 && sigma[w] > 0) {
          delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (u != source) centrality[u] += delta[u];
    }
  }
  return centrality;
}

namespace {

/// Extracts a symmetrized CSR plus the dense id mapping from the
/// distributed graph.
Status ExtractCsr(graph::Graph* graph, graph::Csr* csr,
                  std::vector<CellId>* node_ids,
                  std::vector<std::vector<CellId>>* local_sets) {
  cloud::MemoryCloud* cloud = graph->cloud();
  graph::Generators::EdgeList edges;
  std::vector<CellId> ids;
  local_sets->assign(cloud->num_slaves(), {});
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    for (CellId v : graph->LocalNodes(m)) {
      ids.push_back(v);
      (*local_sets)[m].push_back(v);
    }
  }
  std::sort(ids.begin(), ids.end());
  // Generators use dense ids; verify and rely on identity mapping.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != static_cast<CellId>(i)) {
      return Status::InvalidArgument(
          "distance oracle requires dense node ids [0, n)");
    }
  }
  edges.num_nodes = ids.size();
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    for (CellId v : (*local_sets)[m]) {
      Status s = graph->VisitLocalNode(
          m, v,
          [&](Slice, const CellId*, std::size_t, const CellId* out,
              std::size_t out_count) {
            for (std::size_t i = 0; i < out_count; ++i) {
              edges.edges.emplace_back(v, out[i]);
            }
          });
      if (!s.ok()) return s;
    }
  }
  *csr = graph::Csr::FromEdges(edges);
  *node_ids = std::move(ids);
  return Status::OK();
}

std::vector<CellId> TopK(const std::vector<double>& score,
                         const std::vector<CellId>& ids, int k) {
  std::vector<std::uint32_t> idx(score.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(),
                    idx.begin() + std::min<std::size_t>(k, idx.size()),
                    idx.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return score[a] > score[b];
                    });
  std::vector<CellId> out;
  for (std::size_t i = 0; i < std::min<std::size_t>(k, idx.size()); ++i) {
    out.push_back(ids[idx[i]]);
  }
  return out;
}

}  // namespace

Status DistanceOracle::Build(graph::Graph* graph, const Options& options,
                             DistanceOracle* oracle) {
  std::vector<std::vector<CellId>> local_sets;
  Status s = ExtractCsr(graph, &oracle->csr_, &oracle->node_ids_,
                        &local_sets);
  if (!s.ok()) return s;
  const std::uint64_t n = oracle->csr_.num_nodes;
  if (n == 0) return Status::InvalidArgument("empty graph");
  oracle->dense_of_.resize(n);
  std::iota(oracle->dense_of_.begin(), oracle->dense_of_.end(), 0);

  switch (options.strategy) {
    case LandmarkStrategy::kLargestDegree: {
      std::vector<double> degree(n);
      for (std::uint64_t v = 0; v < n; ++v) {
        degree[v] = static_cast<double>(oracle->csr_.Degree(v));
      }
      oracle->landmarks_ =
          TopK(degree, oracle->node_ids_, options.num_landmarks);
      break;
    }
    case LandmarkStrategy::kGlobalBetweenness: {
      const std::vector<double> centrality = ApproxBetweenness(
          oracle->csr_, options.betweenness_samples, options.seed);
      oracle->landmarks_ =
          TopK(centrality, oracle->node_ids_, options.num_landmarks);
      break;
    }
    case LandmarkStrategy::kLocalBetweenness: {
      // Per-machine: betweenness on the locally induced subgraph only —
      // no cross-machine communication. Budget split proportionally.
      oracle->landmarks_.clear();
      for (const std::vector<CellId>& local : local_sets) {
        if (local.empty()) continue;
        // Dense ids within the local subgraph.
        std::unordered_map<CellId, std::uint32_t> local_index;
        for (std::size_t i = 0; i < local.size(); ++i) {
          local_index.emplace(local[i], static_cast<std::uint32_t>(i));
        }
        graph::Generators::EdgeList sub;
        sub.num_nodes = local.size();
        for (CellId v : local) {
          const std::uint32_t dv = local_index[v];
          const std::uint64_t global = v;
          for (std::size_t i = oracle->csr_.offsets[global];
               i < oracle->csr_.offsets[global + 1]; ++i) {
            auto it = local_index.find(oracle->csr_.neighbors[i]);
            if (it != local_index.end() && it->second > dv) {
              sub.edges.emplace_back(dv, it->second);
            }
          }
        }
        const graph::Csr sub_csr = graph::Csr::FromEdges(sub);
        const std::vector<double> centrality = ApproxBetweenness(
            sub_csr, options.betweenness_samples, options.seed);
        const int budget = std::max<int>(
            1, static_cast<int>(options.num_landmarks * local.size() / n));
        for (CellId id : TopK(centrality, local, budget)) {
          oracle->landmarks_.push_back(id);
        }
      }
      // Trim/merge to the requested count.
      if (oracle->landmarks_.size() >
          static_cast<std::size_t>(options.num_landmarks)) {
        oracle->landmarks_.resize(options.num_landmarks);
      }
      break;
    }
  }

  oracle->distances_.clear();
  for (CellId landmark : oracle->landmarks_) {
    oracle->distances_.push_back(
        oracle->BfsFrom(static_cast<std::uint32_t>(landmark)));
  }
  return Status::OK();
}

std::vector<std::uint32_t> DistanceOracle::BfsFrom(
    std::uint32_t source) const {
  std::vector<std::uint32_t> dist(csr_.num_nodes, kUnreachable);
  std::deque<std::uint32_t> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (std::size_t i = 0; i < csr_.Degree(v); ++i) {
      const std::uint32_t u = csr_.Neighbors(v)[i];
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::uint32_t DistanceOracle::Estimate(CellId s, CellId t) const {
  std::uint32_t best = kUnreachable;
  for (const auto& dist : distances_) {
    const std::uint32_t ds = dist[s];
    const std::uint32_t dt = dist[t];
    if (ds == kUnreachable || dt == kUnreachable) continue;
    best = std::min(best, ds + dt);
  }
  return best;
}

std::uint32_t DistanceOracle::Exact(CellId s, CellId t) const {
  const std::vector<std::uint32_t> dist =
      BfsFrom(static_cast<std::uint32_t>(s));
  return dist[t];
}

DistanceOracle::EvalReport DistanceOracle::Evaluate(
    int pairs, std::uint64_t seed) const {
  EvalReport report;
  report.landmarks = landmarks_;
  Random rng(seed);
  double total = 0;
  int used = 0;
  for (int i = 0; i < pairs * 4 && used < pairs; ++i) {
    const CellId s = rng.Uniform(csr_.num_nodes);
    const CellId t = rng.Uniform(csr_.num_nodes);
    if (s == t) continue;
    const std::uint32_t exact = Exact(s, t);
    if (exact == kUnreachable || exact == 0) continue;
    const std::uint32_t estimate = Estimate(s, t);
    if (estimate == kUnreachable) continue;
    // Estimates are upper bounds: accuracy = exact / estimate.
    total += static_cast<double>(exact) / static_cast<double>(estimate);
    ++used;
  }
  report.pairs_evaluated = used;
  report.accuracy_pct = used == 0 ? 0 : 100.0 * total / used;
  return report;
}

}  // namespace trinity::algos
