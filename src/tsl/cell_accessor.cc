#include "tsl/cell_accessor.h"

#include <cstring>

namespace trinity::tsl {

namespace {

/// Advances *pos past one value of the given field type. Returns false on
/// bounds violation.
bool SkipValue(const Schema::FieldMeta& field, Slice data, std::size_t* pos);

bool SkipStruct(const Schema* schema, Slice data, std::size_t* pos) {
  if (schema->fixed_size()) {
    if (*pos + schema->fixed_width() > data.size()) return false;
    *pos += schema->fixed_width();
    return true;
  }
  for (int i = 0; i < schema->num_fields(); ++i) {
    if (!SkipValue(schema->field(i), data, pos)) return false;
  }
  return true;
}

bool ReadU32At(Slice data, std::size_t pos, std::uint32_t* out) {
  if (pos + 4 > data.size()) return false;
  std::memcpy(out, data.data() + pos, 4);
  return true;
}

bool SkipValue(const Schema::FieldMeta& field, Slice data, std::size_t* pos) {
  const TypeRef& type = field.decl.type;
  if (field.fixed) {
    if (*pos + field.width > data.size()) return false;
    *pos += field.width;
    return true;
  }
  switch (type.kind) {
    case TypeKind::kString: {
      std::uint32_t len = 0;
      if (!ReadU32At(data, *pos, &len)) return false;
      if (*pos + 4 + len > data.size()) return false;
      *pos += 4 + len;
      return true;
    }
    case TypeKind::kList: {
      std::uint32_t count = 0;
      if (!ReadU32At(data, *pos, &count)) return false;
      *pos += 4;
      if (type.element_kind == TypeKind::kStruct) {
        if (field.nested->fixed_size()) {
          const std::size_t bytes =
              static_cast<std::size_t>(count) * field.nested->fixed_width();
          if (*pos + bytes > data.size()) return false;
          *pos += bytes;
          return true;
        }
        for (std::uint32_t i = 0; i < count; ++i) {
          if (!SkipStruct(field.nested, data, pos)) return false;
        }
        return true;
      }
      const std::size_t bytes =
          static_cast<std::size_t>(count) * FixedSizeOf(type.element_kind);
      if (*pos + bytes > data.size()) return false;
      *pos += bytes;
      return true;
    }
    case TypeKind::kStruct:
      return SkipStruct(field.nested, data, pos);
    default:
      return false;
  }
}

}  // namespace

Status ValidateBlob(const Schema* schema, Slice blob) {
  std::size_t pos = 0;
  for (int i = 0; i < schema->num_fields(); ++i) {
    if (!SkipValue(schema->field(i), blob, &pos)) {
      return Status::Corruption("blob does not match schema '" +
                                schema->name() + "' at field '" +
                                schema->field(i).decl.name + "'");
    }
  }
  if (pos != blob.size()) {
    return Status::Corruption("trailing bytes after schema '" +
                              schema->name() + "'");
  }
  return Status::OK();
}

CellAccessor CellAccessor::NewDefault(const Schema* schema) {
  return CellAccessor(schema, schema->BuildDefault());
}

Status CellAccessor::FromBlob(const Schema* schema, Slice blob,
                              CellAccessor* out) {
  Status s = ValidateBlob(schema, blob);
  if (!s.ok()) return s;
  *out = CellAccessor(schema, blob.ToString());
  return Status::OK();
}

Status CellAccessor::FieldRange(int field, std::size_t* begin,
                                std::size_t* end) const {
  if (schema_ == nullptr) return Status::InvalidArgument("empty accessor");
  if (field < 0 || field >= schema_->num_fields()) {
    return Status::InvalidArgument("no such field");
  }
  const Slice data(buffer_);
  std::size_t pos = 0;
  for (int i = 0; i < field; ++i) {
    if (!SkipValue(schema_->field(i), data, &pos)) {
      return Status::Corruption("cell blob shorter than schema");
    }
  }
  *begin = pos;
  if (!SkipValue(schema_->field(field), data, &pos)) {
    return Status::Corruption("cell blob shorter than schema");
  }
  *end = pos;
  return Status::OK();
}

Status CellAccessor::CheckKind(int field, TypeKind kind) const {
  if (schema_ == nullptr) return Status::InvalidArgument("empty accessor");
  if (field < 0 || field >= schema_->num_fields()) {
    return Status::InvalidArgument("no such field");
  }
  if (schema_->field(field).decl.type.kind != kind) {
    return Status::InvalidArgument("field type mismatch");
  }
  return Status::OK();
}

Status CellAccessor::CheckListElem(int field, TypeKind elem) const {
  Status s = CheckKind(field, TypeKind::kList);
  if (!s.ok()) return s;
  if (schema_->field(field).decl.type.element_kind != elem) {
    return Status::InvalidArgument("list element type mismatch");
  }
  return Status::OK();
}

Status CellAccessor::FixedRead(int field, TypeKind kind, void* out,
                               std::size_t width) const {
  Status s = CheckKind(field, kind);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::memcpy(out, buffer_.data() + begin, width);
  return Status::OK();
}

Status CellAccessor::FixedWrite(int field, TypeKind kind, const void* value,
                                std::size_t width) {
  Status s = CheckKind(field, kind);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::memcpy(buffer_.data() + begin, value, width);
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::GetByte(int field, std::uint8_t* out) const {
  return FixedRead(field, TypeKind::kByte, out, 1);
}
Status CellAccessor::GetBool(int field, bool* out) const {
  std::uint8_t raw = 0;
  Status s = FixedRead(field, TypeKind::kBool, &raw, 1);
  if (s.ok()) *out = raw != 0;
  return s;
}
Status CellAccessor::GetInt32(int field, std::int32_t* out) const {
  return FixedRead(field, TypeKind::kInt32, out, 4);
}
Status CellAccessor::GetInt64(int field, std::int64_t* out) const {
  return FixedRead(field, TypeKind::kInt64, out, 8);
}
Status CellAccessor::GetFloat(int field, float* out) const {
  return FixedRead(field, TypeKind::kFloat, out, 4);
}
Status CellAccessor::GetDouble(int field, double* out) const {
  return FixedRead(field, TypeKind::kDouble, out, 8);
}

Status CellAccessor::SetByte(int field, std::uint8_t value) {
  return FixedWrite(field, TypeKind::kByte, &value, 1);
}
Status CellAccessor::SetBool(int field, bool value) {
  const std::uint8_t raw = value ? 1 : 0;
  return FixedWrite(field, TypeKind::kBool, &raw, 1);
}
Status CellAccessor::SetInt32(int field, std::int32_t value) {
  return FixedWrite(field, TypeKind::kInt32, &value, 4);
}
Status CellAccessor::SetInt64(int field, std::int64_t value) {
  return FixedWrite(field, TypeKind::kInt64, &value, 8);
}
Status CellAccessor::SetFloat(int field, float value) {
  return FixedWrite(field, TypeKind::kFloat, &value, 4);
}
Status CellAccessor::SetDouble(int field, double value) {
  return FixedWrite(field, TypeKind::kDouble, &value, 8);
}

Status CellAccessor::GetString(int field, std::string* out) const {
  Status s = CheckKind(field, TypeKind::kString);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  out->assign(buffer_.data() + begin + 4, end - begin - 4);
  return Status::OK();
}

Status CellAccessor::SetString(int field, Slice value) {
  Status s = CheckKind(field, TypeKind::kString);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::string encoded;
  const std::uint32_t len = static_cast<std::uint32_t>(value.size());
  encoded.append(reinterpret_cast<const char*>(&len), 4);
  encoded.append(value.data(), value.size());
  buffer_.replace(begin, end - begin, encoded);
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::ListSize(int field, std::size_t* out) const {
  Status s = CheckKind(field, TypeKind::kList);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + begin, 4);
  *out = count;
  return Status::OK();
}

Status CellAccessor::ListElemRange(int field, std::size_t index,
                                   std::size_t elem_width,
                                   std::size_t* begin) const {
  std::size_t field_begin = 0, field_end = 0;
  Status s = FieldRange(field, &field_begin, &field_end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + field_begin, 4);
  if (index >= count) return Status::InvalidArgument("list index out of range");
  *begin = field_begin + 4 + index * elem_width;
  return Status::OK();
}

Status CellAccessor::AppendListRaw(int field, TypeKind elem,
                                   const void* value, std::size_t width) {
  Status s = CheckListElem(field, elem);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + begin, 4);
  ++count;
  std::memcpy(buffer_.data() + begin, &count, 4);
  buffer_.insert(end, reinterpret_cast<const char*>(value), width);
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::GetListInt64(int field, std::size_t index,
                                  std::int64_t* out) const {
  Status s = CheckListElem(field, TypeKind::kInt64);
  if (!s.ok()) return s;
  std::size_t begin = 0;
  s = ListElemRange(field, index, 8, &begin);
  if (!s.ok()) return s;
  std::memcpy(out, buffer_.data() + begin, 8);
  return Status::OK();
}

Status CellAccessor::SetListInt64(int field, std::size_t index,
                                  std::int64_t value) {
  Status s = CheckListElem(field, TypeKind::kInt64);
  if (!s.ok()) return s;
  std::size_t begin = 0;
  s = ListElemRange(field, index, 8, &begin);
  if (!s.ok()) return s;
  std::memcpy(buffer_.data() + begin, &value, 8);
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::AppendListInt64(int field, std::int64_t value) {
  return AppendListRaw(field, TypeKind::kInt64, &value, 8);
}

Status CellAccessor::GetListInt32(int field, std::size_t index,
                                  std::int32_t* out) const {
  Status s = CheckListElem(field, TypeKind::kInt32);
  if (!s.ok()) return s;
  std::size_t begin = 0;
  s = ListElemRange(field, index, 4, &begin);
  if (!s.ok()) return s;
  std::memcpy(out, buffer_.data() + begin, 4);
  return Status::OK();
}

Status CellAccessor::AppendListInt32(int field, std::int32_t value) {
  return AppendListRaw(field, TypeKind::kInt32, &value, 4);
}

Status CellAccessor::GetListDouble(int field, std::size_t index,
                                   double* out) const {
  Status s = CheckListElem(field, TypeKind::kDouble);
  if (!s.ok()) return s;
  std::size_t begin = 0;
  s = ListElemRange(field, index, 8, &begin);
  if (!s.ok()) return s;
  std::memcpy(out, buffer_.data() + begin, 8);
  return Status::OK();
}

Status CellAccessor::AppendListDouble(int field, double value) {
  return AppendListRaw(field, TypeKind::kDouble, &value, 8);
}

Status CellAccessor::RemoveListElement(int field, std::size_t index) {
  Status s = CheckKind(field, TypeKind::kList);
  if (!s.ok()) return s;
  const TypeRef& type = schema_->field(field).decl.type;
  if (type.element_kind == TypeKind::kStruct &&
      !schema_->field(field).nested->fixed_size()) {
    return Status::NotSupported("remove from variable-element list");
  }
  const std::size_t width =
      type.element_kind == TypeKind::kStruct
          ? schema_->field(field).nested->fixed_width()
          : FixedSizeOf(type.element_kind);
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + begin, 4);
  if (index >= count) return Status::InvalidArgument("list index out of range");
  --count;
  std::memcpy(buffer_.data() + begin, &count, 4);
  buffer_.erase(begin + 4 + index * width, width);
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::GetListStruct(int field, std::size_t index,
                                   CellAccessor* out) const {
  Status s = CheckListElem(field, TypeKind::kStruct);
  if (!s.ok()) return s;
  const Schema* element = schema_->field(field).nested;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + begin, 4);
  if (index >= count) return Status::InvalidArgument("list index out of range");
  const Slice data(buffer_);
  std::size_t pos = begin + 4;
  if (element->fixed_size()) {
    pos += index * element->fixed_width();
    return FromBlob(element,
                    Slice(buffer_.data() + pos, element->fixed_width()), out);
  }
  for (std::size_t i = 0; i < index; ++i) {
    if (!SkipStruct(element, data, &pos)) {
      return Status::Corruption("malformed struct list");
    }
  }
  std::size_t element_end = pos;
  if (!SkipStruct(element, data, &element_end)) {
    return Status::Corruption("malformed struct list");
  }
  return FromBlob(element, Slice(buffer_.data() + pos, element_end - pos),
                  out);
}

Status CellAccessor::AppendListStruct(int field, const CellAccessor& value) {
  Status s = CheckListElem(field, TypeKind::kStruct);
  if (!s.ok()) return s;
  if (value.schema() != schema_->field(field).nested) {
    return Status::InvalidArgument("list element schema mismatch");
  }
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  std::uint32_t count = 0;
  std::memcpy(&count, buffer_.data() + begin, 4);
  ++count;
  std::memcpy(buffer_.data() + begin, &count, 4);
  buffer_.insert(end, value.blob());
  dirty_ = true;
  return Status::OK();
}

Status CellAccessor::ListRaw(int field, Slice* out) const {
  Status s = CheckKind(field, TypeKind::kList);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  *out = Slice(buffer_.data() + begin + 4, end - begin - 4);
  return Status::OK();
}

Status CellAccessor::GetStruct(int field, CellAccessor* out) const {
  Status s = CheckKind(field, TypeKind::kStruct);
  if (!s.ok()) return s;
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  return FromBlob(schema_->field(field).nested,
                  Slice(buffer_.data() + begin, end - begin), out);
}

Status CellAccessor::SetStruct(int field, const CellAccessor& value) {
  Status s = CheckKind(field, TypeKind::kStruct);
  if (!s.ok()) return s;
  if (value.schema() != schema_->field(field).nested) {
    return Status::InvalidArgument("struct schema mismatch");
  }
  std::size_t begin = 0, end = 0;
  s = FieldRange(field, &begin, &end);
  if (!s.ok()) return s;
  buffer_.replace(begin, end - begin, value.blob());
  dirty_ = true;
  return Status::OK();
}

}  // namespace trinity::tsl
