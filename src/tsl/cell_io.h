#ifndef TRINITY_TSL_CELL_IO_H_
#define TRINITY_TSL_CELL_IO_H_

#include <string>

#include "cloud/memory_cloud.h"
#include "tsl/cell_accessor.h"

namespace trinity::tsl {

/// Creates a cell with the schema's default image in the memory cloud.
Status NewCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
               const Schema* schema);

/// Loads a cell into an accessor (validating it against the schema).
Status LoadCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                const Schema* schema, CellAccessor* out);

/// Stores an accessor's blob back into the cloud and clears its dirty flag.
Status SaveCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                CellAccessor* accessor);

/// RAII counterpart of the generated `using (var cell =
/// UseMyCellAccessor(cellId))` pattern (paper Fig 6): loads the cell on
/// Use(), exposes the accessor, and writes the blob back on destruction if
/// any setter ran. In the real system the accessor maps fields directly onto
/// trunk memory; in this simulation the load/commit pair stands in for that
/// mapping while preserving the programming model.
class ScopedCell {
 public:
  static Status Use(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                    const Schema* schema, ScopedCell* out);

  ScopedCell() = default;
  ~ScopedCell() { Commit(); }

  ScopedCell(ScopedCell&&) = default;
  ScopedCell& operator=(ScopedCell&&) = default;
  ScopedCell(const ScopedCell&) = delete;
  ScopedCell& operator=(const ScopedCell&) = delete;

  CellAccessor& accessor() { return accessor_; }
  const CellAccessor& accessor() const { return accessor_; }

  /// Writes back now (idempotent; no-op when clean). The destructor calls
  /// this and ignores the status — call explicitly when you must observe it.
  Status Commit();

 private:
  cloud::MemoryCloud* cloud_ = nullptr;
  MachineId src_ = kInvalidMachine;
  CellId id_ = kInvalidCell;
  CellAccessor accessor_;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_CELL_IO_H_
