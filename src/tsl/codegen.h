#ifndef TRINITY_TSL_CODEGEN_H_
#define TRINITY_TSL_CODEGEN_H_

#include <string>

#include "common/status.h"
#include "tsl/schema.h"

namespace trinity::tsl {

/// The code-generation half of the TSL compiler (paper §4.2: "the TSL
/// compiler generates highly efficient and powerful source code for data
/// manipulation and communication").
///
/// Emits a self-contained C++ header with one typed wrapper class per cell
/// struct (strongly-typed getters/setters over CellAccessor, e.g.
/// `UseMovieAccessor`) and one stub per protocol (a `CallEcho` helper plus a
/// `RegisterEchoHandler` hook). The output is ordinary source a user checks
/// into their application — see examples/quickstart.cc for the hand-written
/// equivalent of what this generates.
class Codegen {
 public:
  /// Generates the header text for every struct and protocol in `registry`.
  /// `guard` is used for the include guard macro.
  static std::string GenerateHeader(const SchemaRegistry& registry,
                                    const std::string& guard);

 private:
  static void EmitStruct(const Schema& schema, std::string* out);
  static void EmitProtocol(const ProtocolDecl& protocol, std::string* out);
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_CODEGEN_H_
