#ifndef TRINITY_TSL_DATA_IMPORT_H_
#define TRINITY_TSL_DATA_IMPORT_H_

#include <map>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "tsl/schema.h"

namespace trinity::tsl {

/// Data integration between the memory cloud and external relational data
/// (paper §4.2): "TSL facilitates data integration. It defines an interface
/// between graphs and external data (e.g., data in an RDBMS). Through TSL,
/// we can specify how nodes in a graph are associated with records in a
/// relational table ... and automatic data conversion between memory cloud
/// and external data sources."
///
/// A TableBinding names the cell struct, the key column that becomes the
/// cell id, and the column → field mapping. ImportTable converts rows into
/// cells; ExportTable converts cells back into rows. Rows are modeled as
/// CSV text (header + comma-separated lines) — the format any RDBMS dump or
/// ODBC bridge produces.
class DataImporter {
 public:
  struct TableBinding {
    std::string struct_name;  ///< Target cell struct.
    std::string key_column;   ///< Column whose integer value is the CellId.
    /// column name -> field name. Unmapped columns are ignored. Mapped
    /// fields must be scalar (string or numeric).
    std::map<std::string, std::string> column_to_field;
  };

  struct ImportStats {
    std::uint64_t rows = 0;
    std::uint64_t cells_created = 0;
    std::uint64_t cells_updated = 0;
  };

  DataImporter(cloud::MemoryCloud* cloud, const SchemaRegistry* registry)
      : cloud_(cloud), registry_(registry) {}

  DataImporter(const DataImporter&) = delete;
  DataImporter& operator=(const DataImporter&) = delete;

  /// Parses the CSV (first line = header) and upserts one cell per row.
  /// Existing cells keep their unmapped fields (e.g. adjacency lists built
  /// by the graph layer survive re-imports of attribute tables).
  Status ImportTable(const TableBinding& binding, const std::string& csv,
                     ImportStats* stats);

  /// Renders the given cells back to CSV in the binding's column order
  /// (key column first).
  Status ExportTable(const TableBinding& binding,
                     const std::vector<CellId>& ids, std::string* csv);

 private:
  Status ApplyColumn(class CellAccessor* accessor, int field,
                     const std::string& value);

  cloud::MemoryCloud* cloud_;
  const SchemaRegistry* registry_;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_DATA_IMPORT_H_
