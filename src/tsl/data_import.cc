#include "tsl/data_import.h"

#include <cstdlib>
#include <sstream>

#include "tsl/cell_accessor.h"
#include "tsl/cell_io.h"

namespace trinity::tsl {

namespace {

/// Splits one CSV line (no quoted-comma support; RDBMS exports of graph
/// attribute tables are simple).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Status DataImporter::ApplyColumn(CellAccessor* accessor, int field,
                                 const std::string& value) {
  const Schema::FieldMeta& meta = accessor->schema()->field(field);
  switch (meta.decl.type.kind) {
    case TypeKind::kString:
      return accessor->SetString(field, Slice(value));
    case TypeKind::kInt32:
      return accessor->SetInt32(field,
                                static_cast<std::int32_t>(std::stol(value)));
    case TypeKind::kInt64:
      return accessor->SetInt64(field, std::stoll(value));
    case TypeKind::kDouble:
      return accessor->SetDouble(field, std::stod(value));
    case TypeKind::kFloat:
      return accessor->SetFloat(field, std::stof(value));
    case TypeKind::kBool:
      return accessor->SetBool(field, value == "1" || value == "true");
    case TypeKind::kByte:
      return accessor->SetByte(
          field, static_cast<std::uint8_t>(std::stoul(value)));
    default:
      return Status::InvalidArgument("column maps to non-scalar field");
  }
}

Status DataImporter::ImportTable(const TableBinding& binding,
                                 const std::string& csv,
                                 ImportStats* stats) {
  *stats = ImportStats();
  const Schema* schema = registry_->struct_schema(binding.struct_name);
  if (schema == nullptr) {
    return Status::InvalidArgument("unknown struct '" + binding.struct_name +
                                   "'");
  }
  std::istringstream input(csv);
  std::string line;
  if (!std::getline(input, line)) {
    return Status::InvalidArgument("empty CSV");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  // Resolve column positions.
  int key_index = -1;
  std::vector<std::pair<int, int>> column_field;  // (column idx, field idx).
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == binding.key_column) key_index = static_cast<int>(c);
    auto it = binding.column_to_field.find(header[c]);
    if (it == binding.column_to_field.end()) continue;
    const int field = schema->FieldIndex(it->second);
    if (field < 0) {
      return Status::InvalidArgument("binding maps to unknown field '" +
                                     it->second + "'");
    }
    column_field.emplace_back(static_cast<int>(c), field);
  }
  if (key_index < 0) {
    return Status::InvalidArgument("key column '" + binding.key_column +
                                   "' not in CSV header");
  }

  const MachineId src = cloud_->client_id();
  while (std::getline(input, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> row = SplitCsvLine(line);
    if (row.size() != header.size()) {
      return Status::InvalidArgument("ragged CSV row");
    }
    ++stats->rows;
    const CellId id = std::stoull(row[key_index]);
    CellAccessor accessor;
    Status s = LoadCell(cloud_, src, id, schema, &accessor);
    if (s.IsNotFound()) {
      accessor = CellAccessor::NewDefault(schema);
      ++stats->cells_created;
    } else if (!s.ok()) {
      return s;
    } else {
      ++stats->cells_updated;
    }
    for (const auto& [column, field] : column_field) {
      s = ApplyColumn(&accessor, field, row[column]);
      if (!s.ok()) return s;
    }
    s = cloud_->PutCellFrom(src, id, Slice(accessor.blob()));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status DataImporter::ExportTable(const TableBinding& binding,
                                 const std::vector<CellId>& ids,
                                 std::string* csv) {
  const Schema* schema = registry_->struct_schema(binding.struct_name);
  if (schema == nullptr) {
    return Status::InvalidArgument("unknown struct '" + binding.struct_name +
                                   "'");
  }
  std::string out = binding.key_column;
  std::vector<std::pair<std::string, int>> columns;
  for (const auto& [column, field_name] : binding.column_to_field) {
    const int field = schema->FieldIndex(field_name);
    if (field < 0) {
      return Status::InvalidArgument("binding maps to unknown field '" +
                                     field_name + "'");
    }
    columns.emplace_back(column, field);
    out += "," + column;
  }
  out += "\n";
  const MachineId src = cloud_->client_id();
  for (CellId id : ids) {
    CellAccessor accessor;
    Status s = LoadCell(cloud_, src, id, schema, &accessor);
    if (!s.ok()) return s;
    out += std::to_string(id);
    for (const auto& [column, field] : columns) {
      (void)column;
      out += ",";
      const Schema::FieldMeta& meta = schema->field(field);
      switch (meta.decl.type.kind) {
        case TypeKind::kString: {
          std::string v;
          (void)accessor.GetString(field, &v);
          out += v;
          break;
        }
        case TypeKind::kInt32: {
          std::int32_t v = 0;
          (void)accessor.GetInt32(field, &v);
          out += std::to_string(v);
          break;
        }
        case TypeKind::kInt64: {
          std::int64_t v = 0;
          (void)accessor.GetInt64(field, &v);
          out += std::to_string(v);
          break;
        }
        case TypeKind::kDouble: {
          double v = 0;
          (void)accessor.GetDouble(field, &v);
          out += std::to_string(v);
          break;
        }
        case TypeKind::kFloat: {
          float v = 0;
          (void)accessor.GetFloat(field, &v);
          out += std::to_string(v);
          break;
        }
        case TypeKind::kBool: {
          bool v = false;
          (void)accessor.GetBool(field, &v);
          out += v ? "true" : "false";
          break;
        }
        case TypeKind::kByte: {
          std::uint8_t v = 0;
          (void)accessor.GetByte(field, &v);
          out += std::to_string(v);
          break;
        }
        default:
          return Status::InvalidArgument("column maps to non-scalar field");
      }
    }
    out += "\n";
  }
  *csv = std::move(out);
  return Status::OK();
}

}  // namespace trinity::tsl
