#include "tsl/ast.h"

#include "common/logging.h"

namespace trinity::tsl {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kByte:
      return "byte";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kInt32:
      return "int";
    case TypeKind::kInt64:
      return "long";
    case TypeKind::kFloat:
      return "float";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kList:
      return "List";
    case TypeKind::kStruct:
      return "struct";
  }
  return "?";
}

bool IsFixedSize(TypeKind kind) {
  switch (kind) {
    case TypeKind::kByte:
    case TypeKind::kBool:
    case TypeKind::kInt32:
    case TypeKind::kInt64:
    case TypeKind::kFloat:
    case TypeKind::kDouble:
      return true;
    default:
      return false;
  }
}

std::size_t FixedSizeOf(TypeKind kind) {
  switch (kind) {
    case TypeKind::kByte:
    case TypeKind::kBool:
      return 1;
    case TypeKind::kInt32:
    case TypeKind::kFloat:
      return 4;
    case TypeKind::kInt64:
    case TypeKind::kDouble:
      return 8;
    default:
      TRINITY_CHECK(false, "not a fixed-size kind");
      return 0;
  }
}

}  // namespace trinity::tsl
