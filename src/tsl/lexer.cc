#include "tsl/lexer.h"

#include <cctype>

namespace trinity::tsl {

Status Lexer::Tokenize(const std::string& input, std::vector<Token>* out) {
  out->clear();
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::InvalidArgument("unterminated block comment at line " +
                                       std::to_string(line));
      }
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      out->push_back(
          Token{TokenKind::kIdentifier, input.substr(start, i - start), line});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case '[':
        kind = TokenKind::kLBracket;
        break;
      case ']':
        kind = TokenKind::kRBracket;
        break;
      case '<':
        kind = TokenKind::kLAngle;
        break;
      case '>':
        kind = TokenKind::kRAngle;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at line " +
                                       std::to_string(line));
    }
    out->push_back(Token{kind, std::string(1, c), line});
    ++i;
  }
  out->push_back(Token{TokenKind::kEnd, "", line});
  return Status::OK();
}

}  // namespace trinity::tsl
