#ifndef TRINITY_TSL_SCHEMA_H_
#define TRINITY_TSL_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tsl/ast.h"

namespace trinity::tsl {

class SchemaRegistry;

/// Compiled layout metadata for one TSL struct. The blob encoding is the
/// declaration order of the fields:
///   * fixed-size primitives — raw little-endian bytes;
///   * string               — u32 length + bytes;
///   * List<T>              — u32 element count + encoded elements;
///   * nested struct        — its fields, recursively.
/// A struct whose fields are all fixed-size has a fixed total width, which
/// accessors exploit to skip it in O(1).
class Schema {
 public:
  struct FieldMeta {
    FieldDecl decl;
    const Schema* nested = nullptr;  ///< For struct / List<struct> fields.
    bool fixed = false;              ///< Whole field has fixed width.
    std::size_t width = 0;           ///< Valid when fixed.
  };

  const std::string& name() const { return name_; }
  bool is_cell() const { return is_cell_; }
  const AttributeMap& attributes() const { return attributes_; }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const FieldMeta& field(int index) const { return fields_[index]; }

  /// Index of the named field, or -1.
  int FieldIndex(const std::string& field_name) const;

  /// True when every field is fixed-size.
  bool fixed_size() const { return fixed_size_; }
  /// Total encoded width when fixed_size().
  std::size_t fixed_width() const { return fixed_width_; }

  /// Builds the default blob image: zeros for primitives, empty strings and
  /// lists, defaults recursively for nested structs.
  std::string BuildDefault() const;

 private:
  friend class SchemaRegistry;

  std::string name_;
  bool is_cell_ = false;
  AttributeMap attributes_;
  std::vector<FieldMeta> fields_;
  std::map<std::string, int> field_index_;
  bool fixed_size_ = false;
  std::size_t fixed_width_ = 0;
};

/// Registry of all structs and protocols compiled from one TSL script —
/// what the paper's TSL compiler produces, minus the generated C# (our
/// Codegen emits the equivalent C++ separately).
class SchemaRegistry {
 public:
  SchemaRegistry() = default;
  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;
  SchemaRegistry(SchemaRegistry&&) = default;
  SchemaRegistry& operator=(SchemaRegistry&&) = default;

  /// Parses and validates a TSL script: duplicate declarations, unknown type
  /// references, ReferencedCell targets, recursive struct nesting, and
  /// protocol request/response types are all checked here.
  static Status Compile(const std::string& script_text,
                        SchemaRegistry* registry);

  const Schema* struct_schema(const std::string& name) const;
  const ProtocolDecl* protocol(const std::string& name) const;

  std::vector<const Schema*> cell_schemas() const;
  std::vector<const ProtocolDecl*> protocols() const;

 private:
  Status Build(const Script& script);
  /// Resolves nested references and computes fixed widths; detects cycles.
  Status ResolveStruct(Schema* schema, std::vector<std::string>* stack);

  std::map<std::string, std::unique_ptr<Schema>> structs_;
  std::map<std::string, ProtocolDecl> protocols_;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_SCHEMA_H_
