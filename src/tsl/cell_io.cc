#include "tsl/cell_io.h"

namespace trinity::tsl {

Status NewCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
               const Schema* schema) {
  return cloud->AddCellFrom(src, id, Slice(schema->BuildDefault()));
}

Status LoadCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                const Schema* schema, CellAccessor* out) {
  std::string blob;
  Status s = cloud->GetCellFrom(src, id, &blob);
  if (!s.ok()) return s;
  return CellAccessor::FromBlob(schema, Slice(blob), out);
}

Status SaveCell(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                CellAccessor* accessor) {
  Status s = cloud->PutCellFrom(src, id, Slice(accessor->blob()));
  if (s.ok()) accessor->ClearDirty();
  return s;
}

Status ScopedCell::Use(cloud::MemoryCloud* cloud, MachineId src, CellId id,
                       const Schema* schema, ScopedCell* out) {
  Status s = LoadCell(cloud, src, id, schema, &out->accessor_);
  if (!s.ok()) return s;
  out->cloud_ = cloud;
  out->src_ = src;
  out->id_ = id;
  return Status::OK();
}

Status ScopedCell::Commit() {
  if (cloud_ == nullptr || !accessor_.dirty()) return Status::OK();
  return SaveCell(cloud_, src_, id_, &accessor_);
}

}  // namespace trinity::tsl
