#ifndef TRINITY_TSL_PARSER_H_
#define TRINITY_TSL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tsl/ast.h"
#include "tsl/lexer.h"

namespace trinity::tsl {

/// Recursive-descent parser for TSL scripts (paper §4.2). Accepts cell
/// structs, plain structs and protocol declarations:
///
///   [CellType: NodeCell]
///   cell struct Movie {
///     string Name;
///     [EdgeType: SimpleEdge, ReferencedCell: Actor]
///     List<long> Actors;
///   }
///
///   struct MyMessage { string Text; }
///   protocol Echo { Type: Syn; Request: MyMessage; Response: MyMessage; }
class Parser {
 public:
  /// Parses a whole script. Error statuses carry a line number.
  static Status Parse(const std::string& input, Script* out);

 private:
  Parser(std::vector<Token> tokens, Script* out)
      : tokens_(std::move(tokens)), out_(out) {}

  Status Run();
  Status ParseAttributes(AttributeMap* attributes);
  Status ParseStruct(bool is_cell, AttributeMap attributes);
  Status ParseProtocol();
  Status ParseType(TypeRef* type);

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind);
  Status Expect(TokenKind kind, const char* what, Token* token = nullptr);
  Status ErrorHere(const std::string& message) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Script* out_;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_PARSER_H_
