#include "tsl/parser.h"

namespace trinity::tsl {

namespace {

bool PrimitiveKindFromName(const std::string& name, TypeKind* kind) {
  if (name == "byte") {
    *kind = TypeKind::kByte;
  } else if (name == "bool") {
    *kind = TypeKind::kBool;
  } else if (name == "int") {
    *kind = TypeKind::kInt32;
  } else if (name == "long" || name == "CellId") {
    *kind = TypeKind::kInt64;
  } else if (name == "float") {
    *kind = TypeKind::kFloat;
  } else if (name == "double") {
    *kind = TypeKind::kDouble;
  } else if (name == "string") {
    *kind = TypeKind::kString;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Status Parser::Parse(const std::string& input, Script* out) {
  std::vector<Token> tokens;
  Status s = Lexer::Tokenize(input, &tokens);
  if (!s.ok()) return s;
  Parser parser(std::move(tokens), out);
  return parser.Run();
}

bool Parser::Accept(TokenKind kind) {
  if (Peek().kind == kind) {
    ++pos_;
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, const char* what, Token* token) {
  if (Peek().kind != kind) {
    return ErrorHere(std::string("expected ") + what);
  }
  if (token != nullptr) *token = Peek();
  ++pos_;
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  return Status::InvalidArgument(message + " at line " +
                                 std::to_string(Peek().line) + " near '" +
                                 Peek().text + "'");
}

Status Parser::Run() {
  while (Peek().kind != TokenKind::kEnd) {
    AttributeMap attributes;
    if (Peek().kind == TokenKind::kLBracket) {
      Status s = ParseAttributes(&attributes);
      if (!s.ok()) return s;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected declaration");
    }
    const std::string keyword = Peek().text;
    if (keyword == "cell") {
      Next();
      if (Peek().kind != TokenKind::kIdentifier || Peek().text != "struct") {
        return ErrorHere("expected 'struct' after 'cell'");
      }
      Next();
      Status s = ParseStruct(/*is_cell=*/true, std::move(attributes));
      if (!s.ok()) return s;
    } else if (keyword == "struct") {
      Next();
      Status s = ParseStruct(/*is_cell=*/false, std::move(attributes));
      if (!s.ok()) return s;
    } else if (keyword == "protocol") {
      if (!attributes.empty()) {
        return ErrorHere("protocols cannot carry attributes");
      }
      Next();
      Status s = ParseProtocol();
      if (!s.ok()) return s;
    } else {
      return ErrorHere("expected 'cell', 'struct' or 'protocol'");
    }
  }
  return Status::OK();
}

Status Parser::ParseAttributes(AttributeMap* attributes) {
  Status s = Expect(TokenKind::kLBracket, "'['");
  if (!s.ok()) return s;
  for (;;) {
    Token key;
    s = Expect(TokenKind::kIdentifier, "attribute name", &key);
    if (!s.ok()) return s;
    s = Expect(TokenKind::kColon, "':'");
    if (!s.ok()) return s;
    Token value;
    s = Expect(TokenKind::kIdentifier, "attribute value", &value);
    if (!s.ok()) return s;
    (*attributes)[key.text] = value.text;
    if (Accept(TokenKind::kComma)) continue;
    return Expect(TokenKind::kRBracket, "']'");
  }
}

Status Parser::ParseType(TypeRef* type) {
  Token name;
  Status s = Expect(TokenKind::kIdentifier, "type name", &name);
  if (!s.ok()) return s;
  if (name.text == "List") {
    type->kind = TypeKind::kList;
    s = Expect(TokenKind::kLAngle, "'<'");
    if (!s.ok()) return s;
    Token element;
    s = Expect(TokenKind::kIdentifier, "list element type", &element);
    if (!s.ok()) return s;
    TypeKind element_kind;
    if (PrimitiveKindFromName(element.text, &element_kind)) {
      if (element_kind == TypeKind::kString) {
        return ErrorHere("List<string> is not supported");
      }
      type->element_kind = element_kind;
    } else {
      type->element_kind = TypeKind::kStruct;
      type->struct_name = element.text;
    }
    return Expect(TokenKind::kRAngle, "'>'");
  }
  TypeKind kind;
  if (PrimitiveKindFromName(name.text, &kind)) {
    type->kind = kind;
    return Status::OK();
  }
  type->kind = TypeKind::kStruct;
  type->struct_name = name.text;
  return Status::OK();
}

Status Parser::ParseStruct(bool is_cell, AttributeMap attributes) {
  StructDecl decl;
  decl.is_cell = is_cell;
  decl.attributes = std::move(attributes);
  Token name;
  Status s = Expect(TokenKind::kIdentifier, "struct name", &name);
  if (!s.ok()) return s;
  decl.name = name.text;
  s = Expect(TokenKind::kLBrace, "'{'");
  if (!s.ok()) return s;
  while (!Accept(TokenKind::kRBrace)) {
    FieldDecl field;
    if (Peek().kind == TokenKind::kLBracket) {
      s = ParseAttributes(&field.attributes);
      if (!s.ok()) return s;
    }
    s = ParseType(&field.type);
    if (!s.ok()) return s;
    Token field_name;
    s = Expect(TokenKind::kIdentifier, "field name", &field_name);
    if (!s.ok()) return s;
    field.name = field_name.text;
    s = Expect(TokenKind::kSemicolon, "';'");
    if (!s.ok()) return s;
    decl.fields.push_back(std::move(field));
  }
  out_->structs.push_back(std::move(decl));
  return Status::OK();
}

Status Parser::ParseProtocol() {
  ProtocolDecl decl;
  Token name;
  Status s = Expect(TokenKind::kIdentifier, "protocol name", &name);
  if (!s.ok()) return s;
  decl.name = name.text;
  s = Expect(TokenKind::kLBrace, "'{'");
  if (!s.ok()) return s;
  while (!Accept(TokenKind::kRBrace)) {
    Token key;
    s = Expect(TokenKind::kIdentifier, "protocol property", &key);
    if (!s.ok()) return s;
    s = Expect(TokenKind::kColon, "':'");
    if (!s.ok()) return s;
    Token value;
    s = Expect(TokenKind::kIdentifier, "property value", &value);
    if (!s.ok()) return s;
    s = Expect(TokenKind::kSemicolon, "';'");
    if (!s.ok()) return s;
    if (key.text == "Type") {
      if (value.text == "Syn") {
        decl.synchronous = true;
      } else if (value.text == "Asyn") {
        decl.synchronous = false;
      } else {
        return ErrorHere("protocol Type must be Syn or Asyn");
      }
    } else if (key.text == "Request") {
      decl.request_type = value.text == "void" ? "" : value.text;
    } else if (key.text == "Response") {
      decl.response_type = value.text == "void" ? "" : value.text;
    } else {
      return ErrorHere("unknown protocol property '" + key.text + "'");
    }
  }
  out_->protocols.push_back(std::move(decl));
  return Status::OK();
}

}  // namespace trinity::tsl
