#ifndef TRINITY_TSL_PROTOCOL_H_
#define TRINITY_TSL_PROTOCOL_H_

#include <functional>
#include <map>
#include <string>

#include "cloud/memory_cloud.h"
#include "tsl/cell_accessor.h"
#include "tsl/schema.h"

namespace trinity::tsl {

/// Runtime for protocols declared in TSL (paper §4.2, Fig 5). A `protocol`
/// declaration compiles into:
///   * a stable fabric handler id (assigned deterministically from the
///     registry so every machine agrees),
///   * an empty handler slot the user fills with the algorithm logic —
///     "the user only needs to implement the algorithm logic for the handler
///     as if implementing a local method",
///   * a Call / Send entry point — "calling a protocol defined in the TSL is
///     also like calling a local method. Trinity takes care of message
///     dispatching, packing, etc."
///
/// Syn protocols are request-response over Fabric::Call; Asyn protocols ride
/// the one-sided SendAsync path, where the fabric transparently packs small
/// messages into shared physical transfers.
class ProtocolRuntime {
 public:
  /// Handler for a Syn protocol: fill *response (pre-initialized to the
  /// response schema's default image when the protocol declares one).
  using SynHandler = std::function<Status(MachineId src,
                                          const CellAccessor& request,
                                          CellAccessor* response)>;
  /// Handler for an Asyn protocol.
  using AsynHandler =
      std::function<void(MachineId src, const CellAccessor& request)>;

  /// The registry and cloud must outlive the runtime.
  ProtocolRuntime(const SchemaRegistry* registry, cloud::MemoryCloud* cloud);

  ProtocolRuntime(const ProtocolRuntime&) = delete;
  ProtocolRuntime& operator=(const ProtocolRuntime&) = delete;

  /// Installs the handler for `protocol` on `machine`.
  Status RegisterSynHandler(MachineId machine, const std::string& protocol,
                            SynHandler handler);
  Status RegisterAsynHandler(MachineId machine, const std::string& protocol,
                             AsynHandler handler);

  /// Synchronous request-response call. `response` may be null when the
  /// protocol declares no response type.
  Status Call(MachineId src, MachineId dst, const std::string& protocol,
              const CellAccessor& request, CellAccessor* response);

  /// One-sided asynchronous send (packed automatically by the fabric).
  Status Send(MachineId src, MachineId dst, const std::string& protocol,
              const CellAccessor& request);

  /// Fabric handler id assigned to a protocol (deterministic; >=
  /// cloud::kUserHandlerBase).
  Status HandlerIdFor(const std::string& protocol, net::HandlerId* id) const;

 private:
  const SchemaRegistry* registry_;
  cloud::MemoryCloud* cloud_;
  std::map<std::string, net::HandlerId> handler_ids_;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_PROTOCOL_H_
