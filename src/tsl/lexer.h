#ifndef TRINITY_TSL_LEXER_H_
#define TRINITY_TSL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace trinity::tsl {

enum class TokenKind {
  kIdentifier,
  kLBrace,     // {
  kRBrace,     // }
  kLBracket,   // [
  kRBracket,   // ]
  kLAngle,     // <
  kRAngle,     // >
  kColon,      // :
  kSemicolon,  // ;
  kComma,      // ,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
};

/// Tokenizes a TSL script. Supports `//` line comments and `/* */` block
/// comments (C# convention, which TSL follows).
class Lexer {
 public:
  /// Tokenizes the whole input. On error, returns InvalidArgument with the
  /// offending line number in the message.
  static Status Tokenize(const std::string& input, std::vector<Token>* out);
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_LEXER_H_
