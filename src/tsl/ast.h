#ifndef TRINITY_TSL_AST_H_
#define TRINITY_TSL_AST_H_

#include <map>
#include <string>
#include <vector>

namespace trinity::tsl {

/// Scalar/field type kinds supported by TSL (paper §4.2: primitive data
/// types, data container types, and user-defined structs).
enum class TypeKind {
  kByte,
  kBool,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
  kString,
  kList,    ///< List<element>; element described by `element_kind` / name.
  kStruct,  ///< User-defined struct, by name.
};

/// A (possibly nested) type reference as written in the script.
struct TypeRef {
  TypeKind kind = TypeKind::kInt32;
  /// For kList: the element type.
  TypeKind element_kind = TypeKind::kInt32;
  /// For kStruct (or kList of structs): referenced struct name.
  std::string struct_name;
};

/// `[Key: Value, ...]` attribute list. TSL uses attributes to annotate cell
/// types ([CellType: NodeCell]) and edge fields
/// ([EdgeType: SimpleEdge, ReferencedCell: Actor]).
using AttributeMap = std::map<std::string, std::string>;

struct FieldDecl {
  std::string name;
  TypeRef type;
  AttributeMap attributes;
};

struct StructDecl {
  std::string name;
  bool is_cell = false;  ///< Declared with `cell struct`.
  AttributeMap attributes;
  std::vector<FieldDecl> fields;
};

/// `protocol Name { Type: Syn|Asyn; Request: T|void; Response: T|void; }`
struct ProtocolDecl {
  std::string name;
  bool synchronous = true;
  std::string request_type;   ///< Empty means void.
  std::string response_type;  ///< Empty means void.
};

/// A fully parsed TSL script.
struct Script {
  std::vector<StructDecl> structs;
  std::vector<ProtocolDecl> protocols;
};

/// Human-readable name of a type kind (diagnostics and codegen).
const char* TypeKindName(TypeKind kind);

/// True for types whose encoding has a fixed byte width.
bool IsFixedSize(TypeKind kind);

/// Encoded width of a fixed-size kind, in bytes.
std::size_t FixedSizeOf(TypeKind kind);

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_AST_H_
