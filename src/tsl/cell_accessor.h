#ifndef TRINITY_TSL_CELL_ACCESSOR_H_
#define TRINITY_TSL_CELL_ACCESSOR_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "tsl/schema.h"

namespace trinity::tsl {

/// Validates that `blob` is a well-formed encoding of `schema` (every length
/// prefix in bounds, nothing left over). Corrupted cells surface here rather
/// than as wild reads.
Status ValidateBlob(const Schema* schema, Slice blob);

/// The cell accessor mechanism (paper §4.3, Fig 6): object-oriented access
/// to a cell stored as a blob. "A cell accessor is not a data container, but
/// a data mapper: it maps the fields declared in the data structure to the
/// correct memory locations in the blob."
///
/// CellAccessor owns a mutable byte buffer (typically loaded from the memory
/// cloud and stored back on commit — see UseCellAccessor in
/// tsl/cell_io.h). Fixed-size field updates are in-place writes; updates to
/// variable-length fields (strings, lists) splice the buffer. Reads never
/// copy field bytes beyond the returned value itself.
///
/// Field lookup by index is the fast path; FieldIndex() resolves names once.
class CellAccessor {
 public:
  /// An accessor over the schema's default image.
  static CellAccessor NewDefault(const Schema* schema);

  /// Wraps an existing blob (validated). The blob is copied into the
  /// accessor's owned buffer.
  static Status FromBlob(const Schema* schema, Slice blob,
                         CellAccessor* out);

  CellAccessor() = default;

  const Schema* schema() const { return schema_; }
  const std::string& blob() const { return buffer_; }
  std::string ReleaseBlob() { return std::move(buffer_); }
  bool dirty() const { return dirty_; }
  void ClearDirty() { dirty_ = false; }

  int FieldIndex(const std::string& name) const {
    return schema_->FieldIndex(name);
  }

  // --- Scalar access ------------------------------------------------------
  Status GetByte(int field, std::uint8_t* out) const;
  Status GetBool(int field, bool* out) const;
  Status GetInt32(int field, std::int32_t* out) const;
  Status GetInt64(int field, std::int64_t* out) const;
  Status GetFloat(int field, float* out) const;
  Status GetDouble(int field, double* out) const;
  Status GetString(int field, std::string* out) const;

  Status SetByte(int field, std::uint8_t value);
  Status SetBool(int field, bool value);
  Status SetInt32(int field, std::int32_t value);
  Status SetInt64(int field, std::int64_t value);
  Status SetFloat(int field, float value);
  Status SetDouble(int field, double value);
  Status SetString(int field, Slice value);

  // --- List access --------------------------------------------------------
  Status ListSize(int field, std::size_t* out) const;
  Status GetListInt64(int field, std::size_t index, std::int64_t* out) const;
  Status SetListInt64(int field, std::size_t index, std::int64_t value);
  Status AppendListInt64(int field, std::int64_t value);
  Status GetListInt32(int field, std::size_t index, std::int32_t* out) const;
  Status AppendListInt32(int field, std::int32_t value);
  Status GetListDouble(int field, std::size_t index, double* out) const;
  Status AppendListDouble(int field, double value);
  /// Removes one element from a fixed-element list.
  Status RemoveListElement(int field, std::size_t index);

  /// List<struct> access: copies element `index` out as a detached accessor
  /// over the element schema.
  Status GetListStruct(int field, std::size_t index, CellAccessor* out) const;
  /// Appends a struct element (its schema must match the list's element).
  Status AppendListStruct(int field, const CellAccessor& value);

  /// Zero-copy view of a whole fixed-element list (e.g. a List<long>
  /// adjacency field) as raw bytes; reinterpret on the caller side.
  Status ListRaw(int field, Slice* out) const;

  // --- Nested structs -----------------------------------------------------
  /// Copies a nested struct field out as its own accessor (detached: writing
  /// to it does not affect this cell).
  Status GetStruct(int field, CellAccessor* out) const;
  /// Overwrites a nested struct field from another accessor's blob.
  Status SetStruct(int field, const CellAccessor& value);

 private:
  CellAccessor(const Schema* schema, std::string buffer)
      : schema_(schema), buffer_(std::move(buffer)) {}

  /// Byte range [begin, end) of field `field` inside the buffer.
  Status FieldRange(int field, std::size_t* begin, std::size_t* end) const;
  Status CheckKind(int field, TypeKind kind) const;
  Status CheckListElem(int field, TypeKind elem) const;
  Status FixedRead(int field, TypeKind kind, void* out,
                   std::size_t width) const;
  Status FixedWrite(int field, TypeKind kind, const void* value,
                    std::size_t width);
  Status ListElemRange(int field, std::size_t index, std::size_t elem_width,
                       std::size_t* begin) const;
  Status AppendListRaw(int field, TypeKind elem, const void* value,
                       std::size_t width);

  const Schema* schema_ = nullptr;
  std::string buffer_;
  bool dirty_ = false;
};

}  // namespace trinity::tsl

#endif  // TRINITY_TSL_CELL_ACCESSOR_H_
