#include "tsl/protocol.h"

#include <algorithm>

namespace trinity::tsl {

ProtocolRuntime::ProtocolRuntime(const SchemaRegistry* registry,
                                 cloud::MemoryCloud* cloud)
    : registry_(registry), cloud_(cloud) {
  // Assign handler ids by sorted protocol name so every machine (and every
  // runtime instance over the same registry) agrees without negotiation.
  std::vector<const ProtocolDecl*> protocols = registry_->protocols();
  std::sort(protocols.begin(), protocols.end(),
            [](const ProtocolDecl* a, const ProtocolDecl* b) {
              return a->name < b->name;
            });
  net::HandlerId next = cloud::kUserHandlerBase;
  for (const ProtocolDecl* protocol : protocols) {
    handler_ids_[protocol->name] = next++;
  }
}

Status ProtocolRuntime::HandlerIdFor(const std::string& protocol,
                                     net::HandlerId* id) const {
  auto it = handler_ids_.find(protocol);
  if (it == handler_ids_.end()) {
    return Status::NotFound("no protocol '" + protocol + "'");
  }
  *id = it->second;
  return Status::OK();
}

Status ProtocolRuntime::RegisterSynHandler(MachineId machine,
                                           const std::string& protocol,
                                           SynHandler handler) {
  const ProtocolDecl* decl = registry_->protocol(protocol);
  if (decl == nullptr) return Status::NotFound("no protocol '" + protocol + "'");
  if (!decl->synchronous) {
    return Status::InvalidArgument("protocol '" + protocol + "' is Asyn");
  }
  net::HandlerId id = 0;
  Status s = HandlerIdFor(protocol, &id);
  if (!s.ok()) return s;
  const Schema* request_schema =
      decl->request_type.empty() ? nullptr
                                 : registry_->struct_schema(decl->request_type);
  const Schema* response_schema =
      decl->response_type.empty()
          ? nullptr
          : registry_->struct_schema(decl->response_type);
  cloud_->fabric().RegisterSyncHandler(
      machine, id,
      [handler = std::move(handler), request_schema, response_schema](
          MachineId src, Slice payload, std::string* response) {
        CellAccessor request;
        if (request_schema != nullptr) {
          Status vs = CellAccessor::FromBlob(request_schema, payload, &request);
          if (!vs.ok()) return vs;
        }
        CellAccessor response_accessor;
        if (response_schema != nullptr) {
          response_accessor = CellAccessor::NewDefault(response_schema);
        }
        Status hs = handler(src, request,
                            response_schema != nullptr ? &response_accessor
                                                       : nullptr);
        if (!hs.ok()) return hs;
        if (response_schema != nullptr && response != nullptr) {
          *response = response_accessor.ReleaseBlob();
        }
        return Status::OK();
      });
  return Status::OK();
}

Status ProtocolRuntime::RegisterAsynHandler(MachineId machine,
                                            const std::string& protocol,
                                            AsynHandler handler) {
  const ProtocolDecl* decl = registry_->protocol(protocol);
  if (decl == nullptr) return Status::NotFound("no protocol '" + protocol + "'");
  if (decl->synchronous) {
    return Status::InvalidArgument("protocol '" + protocol + "' is Syn");
  }
  net::HandlerId id = 0;
  Status s = HandlerIdFor(protocol, &id);
  if (!s.ok()) return s;
  const Schema* request_schema =
      decl->request_type.empty() ? nullptr
                                 : registry_->struct_schema(decl->request_type);
  cloud_->fabric().RegisterAsyncHandler(
      machine, id,
      [handler = std::move(handler), request_schema](MachineId src,
                                                     Slice payload) {
        CellAccessor request;
        if (request_schema != nullptr &&
            !CellAccessor::FromBlob(request_schema, payload, &request).ok()) {
          return;  // Malformed message; drop (one-sided semantics).
        }
        handler(src, request);
      });
  return Status::OK();
}

Status ProtocolRuntime::Call(MachineId src, MachineId dst,
                             const std::string& protocol,
                             const CellAccessor& request,
                             CellAccessor* response) {
  const ProtocolDecl* decl = registry_->protocol(protocol);
  if (decl == nullptr) return Status::NotFound("no protocol '" + protocol + "'");
  if (!decl->synchronous) {
    return Status::InvalidArgument("use Send for Asyn protocols");
  }
  net::HandlerId id = 0;
  Status s = HandlerIdFor(protocol, &id);
  if (!s.ok()) return s;
  std::string raw_response;
  s = cloud_->fabric().Call(src, dst, id, Slice(request.blob()),
                            &raw_response);
  if (!s.ok()) return s;
  if (!decl->response_type.empty() && response != nullptr) {
    const Schema* response_schema =
        registry_->struct_schema(decl->response_type);
    return CellAccessor::FromBlob(response_schema, Slice(raw_response),
                                  response);
  }
  return Status::OK();
}

Status ProtocolRuntime::Send(MachineId src, MachineId dst,
                             const std::string& protocol,
                             const CellAccessor& request) {
  const ProtocolDecl* decl = registry_->protocol(protocol);
  if (decl == nullptr) return Status::NotFound("no protocol '" + protocol + "'");
  if (decl->synchronous) {
    return Status::InvalidArgument("use Call for Syn protocols");
  }
  net::HandlerId id = 0;
  Status s = HandlerIdFor(protocol, &id);
  if (!s.ok()) return s;
  return cloud_->fabric().SendAsync(src, dst, id, Slice(request.blob()));
}

}  // namespace trinity::tsl
