#include "tsl/schema.h"

#include <algorithm>

#include "common/serializer.h"
#include "tsl/parser.h"

namespace trinity::tsl {

int Schema::FieldIndex(const std::string& field_name) const {
  auto it = field_index_.find(field_name);
  return it == field_index_.end() ? -1 : it->second;
}

std::string Schema::BuildDefault() const {
  BinaryWriter writer;
  for (const FieldMeta& field : fields_) {
    switch (field.decl.type.kind) {
      case TypeKind::kByte:
      case TypeKind::kBool:
        writer.PutU8(0);
        break;
      case TypeKind::kInt32:
        writer.PutI32(0);
        break;
      case TypeKind::kFloat: {
        writer.PutU32(0);
        break;
      }
      case TypeKind::kInt64:
        writer.PutI64(0);
        break;
      case TypeKind::kDouble:
        writer.PutDouble(0.0);
        break;
      case TypeKind::kString:
      case TypeKind::kList:
        writer.PutU32(0);  // Empty string / zero elements.
        break;
      case TypeKind::kStruct: {
        const std::string nested = field.nested->BuildDefault();
        writer.PutRaw(nested.data(), nested.size());
        break;
      }
    }
  }
  return writer.Release();
}

Status SchemaRegistry::Compile(const std::string& script_text,
                               SchemaRegistry* registry) {
  Script script;
  Status s = Parser::Parse(script_text, &script);
  if (!s.ok()) return s;
  return registry->Build(script);
}

Status SchemaRegistry::Build(const Script& script) {
  structs_.clear();
  protocols_.clear();
  for (const StructDecl& decl : script.structs) {
    if (structs_.count(decl.name) != 0) {
      return Status::InvalidArgument("duplicate struct '" + decl.name + "'");
    }
    auto schema = std::make_unique<Schema>();
    schema->name_ = decl.name;
    schema->is_cell_ = decl.is_cell;
    schema->attributes_ = decl.attributes;
    for (const FieldDecl& field : decl.fields) {
      if (schema->field_index_.count(field.name) != 0) {
        return Status::InvalidArgument("duplicate field '" + field.name +
                                       "' in struct '" + decl.name + "'");
      }
      Schema::FieldMeta meta;
      meta.decl = field;
      schema->field_index_[field.name] =
          static_cast<int>(schema->fields_.size());
      schema->fields_.push_back(std::move(meta));
    }
    structs_.emplace(decl.name, std::move(schema));
  }
  // Resolve nested references and compute widths (cycle-safe).
  for (auto& [name, schema] : structs_) {
    (void)name;
    std::vector<std::string> stack;
    Status s = ResolveStruct(schema.get(), &stack);
    if (!s.ok()) return s;
  }
  // Validate edge attributes: ReferencedCell must name a cell struct.
  for (const auto& [name, schema] : structs_) {
    (void)name;
    for (int i = 0; i < schema->num_fields(); ++i) {
      const auto& attrs = schema->field(i).decl.attributes;
      auto it = attrs.find("ReferencedCell");
      if (it == attrs.end()) continue;
      const Schema* target = struct_schema(it->second);
      if (target == nullptr || !target->is_cell()) {
        return Status::InvalidArgument("ReferencedCell '" + it->second +
                                       "' is not a cell struct");
      }
    }
  }
  for (const ProtocolDecl& decl : script.protocols) {
    if (protocols_.count(decl.name) != 0) {
      return Status::InvalidArgument("duplicate protocol '" + decl.name +
                                     "'");
    }
    for (const std::string* type :
         {&decl.request_type, &decl.response_type}) {
      if (!type->empty() && structs_.count(*type) == 0) {
        return Status::InvalidArgument("protocol '" + decl.name +
                                       "' references unknown type '" + *type +
                                       "'");
      }
    }
    protocols_.emplace(decl.name, decl);
  }
  return Status::OK();
}

Status SchemaRegistry::ResolveStruct(Schema* schema,
                                     std::vector<std::string>* stack) {
  if (std::find(stack->begin(), stack->end(), schema->name_) !=
      stack->end()) {
    return Status::InvalidArgument("recursive struct nesting involving '" +
                                   schema->name_ + "'");
  }
  stack->push_back(schema->name_);
  bool all_fixed = true;
  std::size_t total = 0;
  for (Schema::FieldMeta& field : schema->fields_) {
    const TypeRef& type = field.decl.type;
    if (type.kind == TypeKind::kStruct ||
        (type.kind == TypeKind::kList &&
         type.element_kind == TypeKind::kStruct)) {
      auto it = structs_.find(type.struct_name);
      if (it == structs_.end()) {
        return Status::InvalidArgument("unknown struct '" + type.struct_name +
                                       "' referenced by field '" +
                                       field.decl.name + "'");
      }
      Status s = ResolveStruct(it->second.get(), stack);
      if (!s.ok()) return s;
      field.nested = it->second.get();
    }
    switch (type.kind) {
      case TypeKind::kString:
      case TypeKind::kList:
        field.fixed = false;
        all_fixed = false;
        break;
      case TypeKind::kStruct:
        field.fixed = field.nested->fixed_size();
        field.width = field.nested->fixed_width();
        all_fixed = all_fixed && field.fixed;
        break;
      default:
        field.fixed = true;
        field.width = FixedSizeOf(type.kind);
        break;
    }
    if (field.fixed) total += field.width;
  }
  schema->fixed_size_ = all_fixed;
  schema->fixed_width_ = all_fixed ? total : 0;
  stack->pop_back();
  return Status::OK();
}

const Schema* SchemaRegistry::struct_schema(const std::string& name) const {
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : it->second.get();
}

const ProtocolDecl* SchemaRegistry::protocol(const std::string& name) const {
  auto it = protocols_.find(name);
  return it == protocols_.end() ? nullptr : &it->second;
}

std::vector<const Schema*> SchemaRegistry::cell_schemas() const {
  std::vector<const Schema*> result;
  for (const auto& [name, schema] : structs_) {
    (void)name;
    if (schema->is_cell()) result.push_back(schema.get());
  }
  return result;
}

std::vector<const ProtocolDecl*> SchemaRegistry::protocols() const {
  std::vector<const ProtocolDecl*> result;
  for (const auto& [name, decl] : protocols_) {
    (void)name;
    result.push_back(&decl);
  }
  return result;
}

}  // namespace trinity::tsl
