#ifndef TRINITY_CLOUD_CELL_STRIPES_H_
#define TRINITY_CLOUD_CELL_STRIPES_H_

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/spinlock.h"
#include "common/types.h"

namespace trinity::cloud {

/// Process-wide striped lock table serializing guarded multi-cell operations
/// (MultiOp, the transaction layer's intent CAS) against each other AND
/// against single-cell mutations of the same cells.
///
/// Historically the stripes lived inside multiop.cc and only MultiOps took
/// them, which left a race: a plain PutCell/RemoveCell could land between a
/// MultiOp's guard evaluation and its action apply, silently invalidating
/// the guard it had just checked. Now every single-cell *mutation* entry
/// point in MemoryCloud acquires its cell's stripe too, so a guarded apply
/// and a bare write serialize — one fully before the other.
///
/// Re-entrancy: MultiOp holds its stripes while applying actions through the
/// very same MemoryCloud entry points, on the same thread (the fabric runs
/// handlers synchronously on the caller's thread). A per-thread held-stripe
/// list lets nested acquisitions skip stripes the thread already owns
/// instead of self-deadlocking on the non-recursive spin locks.
class CellStripes {
 public:
  static constexpr int kStripes = 1024;

  static int StripeOf(CellId id) {
    return static_cast<int>(InTrunkHash(id ^ 0x517cc1b727220a95ULL) %
                            kStripes);
  }

  /// RAII multi-stripe acquisition. `stripes` must be sorted and unique
  /// (deadlock-free global order); stripes already held by this thread are
  /// skipped and stay held by the outer guard.
  class Guard {
   public:
    explicit Guard(const std::vector<int>& stripes) {
      for (int s : stripes) Acquire(s);
    }
    /// Single-cell convenience used by the plain mutation entry points.
    explicit Guard(CellId id) { Acquire(StripeOf(id)); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    ~Guard() {
      std::vector<int>& held = HeldByThread();
      for (auto it = acquired_.rbegin(); it != acquired_.rend(); ++it) {
        Table()[*it].Unlock();
        held.erase(std::find(held.begin(), held.end(), *it));
      }
    }

   private:
    void Acquire(int stripe) {
      std::vector<int>& held = HeldByThread();
      if (std::find(held.begin(), held.end(), stripe) != held.end()) {
        return;  // Re-entrant: the outer guard on this thread owns it.
      }
      Table()[stripe].Lock();
      held.push_back(stripe);
      acquired_.push_back(stripe);
    }

    std::vector<int> acquired_;  ///< Stripes this guard must release.
  };

 private:
  static SpinLock* Table() {
    static SpinLock* stripes = new SpinLock[kStripes];
    return stripes;
  }

  static std::vector<int>& HeldByThread() {
    thread_local std::vector<int> held;
    return held;
  }
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_CELL_STRIPES_H_
