#ifndef TRINITY_CLOUD_MULTIOP_H_
#define TRINITY_CLOUD_MULTIOP_H_

#include <functional>
#include <string>
#include <vector>

#include "cloud/memory_cloud.h"
#include "common/call_context.h"

namespace trinity::cloud {

/// Light-weight atomic multi-cell primitives (paper §4.4): "For
/// applications that need transaction support, we can implement
/// light-weight atomic operation primitives that span multiple cells, such
/// as MultiOp primitives [13] and Mini-transaction primitives [7], on top
/// of the atomic cell operation primitives."
///
/// A MultiOp is a Sinfonia-style mini-transaction: a set of *compare*
/// guards and a set of *write/append/remove* actions. Execution takes the
/// cells' locks in global id order (two-phase, deadlock-free), evaluates
/// every guard, and applies the actions only if all guards hold. This is
/// not full ACID — there is no redo log beyond the cloud's buffered
/// logging, and isolation is only against other MultiOps and single-cell
/// operations on the same cells — exactly the "light-weight" level the
/// paper positions above raw cells and below transactions.
class MultiOp {
 public:
  explicit MultiOp(MemoryCloud* cloud) : cloud_(cloud) {}

  /// Guard: the cell must exist and its payload equal `expected`.
  MultiOp& CompareEquals(CellId id, Slice expected);
  /// Guard: the cell must exist.
  MultiOp& CompareExists(CellId id);
  /// Guard: the cell must not exist.
  MultiOp& CompareAbsent(CellId id);

  /// Action: put (insert or replace) the cell.
  MultiOp& Put(CellId id, Slice payload);
  /// Action: append to an existing cell.
  MultiOp& Append(CellId id, Slice suffix);
  /// Action: remove the cell.
  MultiOp& Remove(CellId id);

  /// Borrows a per-request deadline/retry-budget context for every cloud
  /// call Execute makes (guard reads and action writes). The context must
  /// outlive Execute.
  MultiOp& WithContext(CallContext* ctx) {
    ctx_ = ctx;
    return *this;
  }

  /// Executes atomically from `src`'s perspective. Returns
  /// Aborted[guard-failed] when a guard fails (no action applied); other
  /// statuses indicate infrastructure errors. The builder can be reused
  /// after Execute.
  Status Execute(MachineId src);
  Status Execute() { return Execute(cloud_->client_id()); }

  /// Test hook: invoked after all guards passed, before the first action is
  /// applied — i.e. inside the critical section. Regression tests use it to
  /// try to interleave a racing single-cell write between guard evaluation
  /// and action apply.
  void SetPhaseHookForTest(std::function<void()> hook) {
    phase_hook_ = std::move(hook);
  }

  /// Convenience: classic compare-and-swap of one cell's payload.
  static Status CompareAndSwap(MemoryCloud* cloud, CellId id, Slice expected,
                               Slice replacement);

 private:
  enum class GuardKind { kEquals, kExists, kAbsent };
  enum class ActionKind { kPut, kAppend, kRemove };

  struct Guard {
    GuardKind kind;
    CellId id;
    std::string expected;
  };
  struct Action {
    ActionKind kind;
    CellId id;
    std::string payload;
  };

  MemoryCloud* cloud_;
  CallContext* ctx_ = nullptr;
  std::function<void()> phase_hook_;
  std::vector<Guard> guards_;
  std::vector<Action> actions_;
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_MULTIOP_H_
