#ifndef TRINITY_CLOUD_REPLICA_PLACEMENT_H_
#define TRINITY_CLOUD_REPLICA_PLACEMENT_H_

#include <vector>

#include "common/types.h"

namespace trinity::cloud {

/// Rendezvous (highest-random-weight) hashing for replica placement: every
/// (trunk, machine) pair gets a pseudo-random score and the k highest-scoring
/// machines other than the primary host the trunk's replicas.
///
/// Properties the replication layer relies on:
///  - replicas land on k *distinct* machines, never on the primary;
///  - the choice is a pure function of (trunk, primary, candidate set), so
///    every machine computes the same placement without coordination;
///  - membership churn is minimal: removing one machine only re-places the
///    replicas that lived on it — the relative order of the survivors'
///    scores is unchanged (the consistent-hashing property);
///  - k is clamped to candidates-1, so a cluster smaller than k+1 machines
///    degrades gracefully to fewer replicas instead of failing.
///
/// `candidates` is the set of machines eligible to host replicas (typically
/// the alive slaves, including the primary — it is skipped internally).
/// Returns the chosen machines in descending score order; deterministic for
/// a given input regardless of candidate ordering.
std::vector<MachineId> ReplicaTargets(TrunkId trunk, MachineId primary,
                                      int replication_factor,
                                      const std::vector<MachineId>& candidates);

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_REPLICA_PLACEMENT_H_
