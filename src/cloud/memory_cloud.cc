#include "cloud/memory_cloud.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::cloud {

namespace {

std::string EncodeCellOp(std::uint8_t op, CellId id, Slice payload) {
  BinaryWriter writer;
  writer.PutU8(op);
  writer.PutU64(id);
  writer.PutBytes(payload);
  return writer.Release();
}

bool DecodeCellOp(Slice data, std::uint8_t* op, CellId* id, Slice* payload) {
  BinaryReader reader(data);
  return reader.GetU8(op) && reader.GetU64(id) && reader.GetBytes(payload);
}

}  // namespace

MemoryCloud::MemoryCloud(const Options& options) : options_(options) {}

Status MemoryCloud::Create(const Options& options,
                           std::unique_ptr<MemoryCloud>* out) {
  if (options.num_slaves < 1) {
    return Status::InvalidArgument("need at least one slave");
  }
  if ((1 << options.p_bits) < options.num_slaves) {
    return Status::InvalidArgument("need 2^p_bits >= num_slaves");
  }
  if (options.buffered_logging && options.num_slaves < 2) {
    return Status::InvalidArgument("buffered logging needs a backup slave");
  }
  std::unique_ptr<MemoryCloud> cloud(new MemoryCloud(options));
  Status s = cloud->Init();
  if (!s.ok()) return s;
  *out = std::move(cloud);
  return Status::OK();
}

Status MemoryCloud::Init() {
  fabric_ = std::make_unique<net::Fabric>(num_endpoints(), options_.fabric);
  primary_table_ = AddressingTable(options_.p_bits, options_.num_slaves);
  machines_.resize(num_endpoints());
  alive_.assign(num_endpoints(), true);
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    machines_[m].table_replica = primary_table_;
    if (m < options_.num_slaves) {
      machines_[m].storage =
          std::make_unique<storage::MemoryStorage>(options_.storage);
      for (TrunkId t : primary_table_.trunks_of(m)) {
        Status s = machines_[m].storage->AttachTrunk(t);
        if (!s.ok()) return s;
      }
    }
    RegisterHandlers(m);
  }
  leader_ = 0;
  return Status::OK();
}

void MemoryCloud::RegisterHandlers(MachineId m) {
  // Addressing-table broadcast: every endpoint keeps a replica (§3).
  fabric_->RegisterAsyncHandler(
      m, kTableUpdateHandler, [this, m](MachineId, Slice payload) {
        AddressingTable table(0, 1);
        if (AddressingTable::Deserialize(payload, &table).ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          if (table.version() > machines_[m].table_replica.version()) {
            machines_[m].table_replica = table;
          }
        }
      });
  if (m >= options_.num_slaves) return;  // Proxies/client carry no data.

  fabric_->RegisterSyncHandler(
      m, kCellOpHandler,
      [this, m](MachineId, Slice request, std::string* response) {
        std::uint8_t op = 0;
        CellId id = 0;
        Slice payload;
        if (!DecodeCellOp(request, &op, &id, &payload)) {
          return Status::Corruption("bad cell op request");
        }
        return ExecuteLocal(m, static_cast<CellOp>(op), id, payload,
                            response);
      });
  fabric_->RegisterSyncHandler(
      m, kHeartbeatHandler,
      [](MachineId, Slice, std::string* response) {
        if (response != nullptr) *response = "pong";
        return Status::OK();
      });
  fabric_->RegisterSyncHandler(
      m, kLogRecordHandler,
      [this, m](MachineId src, Slice request, std::string*) {
        BinaryReader reader(request);
        LogRecord record;
        std::uint8_t op = 0;
        Slice payload;
        if (!reader.GetU64(&record.seq) || !reader.GetU8(&op) ||
            !reader.GetU64(&record.id) || !reader.GetBytes(&payload)) {
          return Status::Corruption("bad log record");
        }
        record.op = static_cast<CellOp>(op);
        record.payload = payload.ToString();
        std::lock_guard<std::mutex> lock(mu_);
        machines_[m].backup_logs[src].push_back(std::move(record));
        return Status::OK();
      });
  fabric_->RegisterAsyncHandler(
      m, kLogTruncateHandler, [this, m](MachineId src, Slice) {
        std::lock_guard<std::mutex> lock(mu_);
        machines_[m].backup_logs[src].clear();
      });
  fabric_->RegisterSyncHandler(
      m, kTrunkMigrateHandler,
      [this, m](MachineId, Slice request, std::string*) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        Slice image;
        if (!reader.GetI32(&trunk_id) || !reader.GetBytes(&image)) {
          return Status::Corruption("bad trunk migration request");
        }
        std::unique_ptr<storage::MemoryTrunk> trunk;
        Status s = storage::MemoryTrunk::Deserialize(
            image, options_.storage.trunk, &trunk);
        if (!s.ok()) return s;
        if (machines_[m].storage == nullptr) {
          return Status::Unavailable("not a slave");
        }
        return machines_[m].storage->AttachTrunk(trunk_id, std::move(trunk));
      });
}

MachineId MemoryCloud::MachineOf(CellId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_table_.machine_of_trunk(TrunkOf(id));
}

storage::MemoryStorage* MemoryCloud::storage(MachineId m) {
  return machines_[m].storage.get();
}

const AddressingTable& MemoryCloud::table() const { return primary_table_; }

std::uint64_t MemoryCloud::MemoryFootprintBytes() const {
  std::uint64_t total = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (machines_[m].storage != nullptr) {
      total += machines_[m].storage->MemoryFootprintBytes();
    }
  }
  return total;
}

std::uint64_t MemoryCloud::TotalCellCount() const {
  std::uint64_t total = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (machines_[m].storage != nullptr) {
      total += machines_[m].storage->TotalCellCount();
    }
  }
  return total;
}

Status MemoryCloud::ExecuteLocal(MachineId m, CellOp op, CellId id,
                                 Slice payload, std::string* response) {
  storage::MemoryStorage* store = machines_[m].storage.get();
  if (store == nullptr) return Status::Unavailable("not a slave");
  storage::MemoryTrunk* trunk = store->trunk(TrunkOf(id));
  if (trunk == nullptr) {
    // The caller's addressing-table replica is stale.
    return Status::Unavailable("trunk not hosted");
  }
  const bool mutating = op == CellOp::kAdd || op == CellOp::kPut ||
                        op == CellOp::kRemove || op == CellOp::kAppend;
  Status result;
  switch (op) {
    case CellOp::kAdd:
      result = trunk->AddCell(id, payload);
      break;
    case CellOp::kPut:
      result = trunk->PutCell(id, payload);
      break;
    case CellOp::kGet: {
      if (response == nullptr) return Status::InvalidArgument("no response");
      return trunk->GetCell(id, response);
    }
    case CellOp::kRemove:
      result = trunk->RemoveCell(id);
      break;
    case CellOp::kAppend:
      result = trunk->AppendToCell(id, payload);
      break;
    case CellOp::kContains:
      return trunk->Contains(id) ? Status::OK() : Status::NotFound("");
    default:
      return Status::InvalidArgument("unknown op");
  }
  // Only *successful* mutations reach the backup's log buffer — a rejected
  // op (e.g. AddCell on an existing id) must not be replayed at recovery.
  // (The coarse crash model here — failures happen between operations —
  // makes log-after-apply equivalent to RAMCloud's log-before-commit.)
  if (result.ok() && mutating && options_.buffered_logging &&
      options_.tfs != nullptr) {
    LogToBackup(m, op, id, payload);
  }
  return result;
}

void MemoryCloud::LogToBackup(MachineId primary, CellOp op, CellId id,
                              Slice payload) {
  MachineId backup = BackupOf(primary);
  if (backup == kInvalidMachine) return;
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = machines_[primary].next_log_seq++;
  }
  BinaryWriter writer;
  writer.PutU64(seq);
  writer.PutU8(static_cast<std::uint8_t>(op));
  writer.PutU64(id);
  writer.PutBytes(payload);
  // Synchronous: the record must reach the backup's memory *before* the
  // mutation commits locally (RAMCloud buffered logging).
  std::string unused;
  fabric_->Call(primary, backup, kLogRecordHandler, Slice(writer.buffer()),
                &unused);
}

MachineId MemoryCloud::BackupOf(MachineId m) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int step = 1; step < options_.num_slaves; ++step) {
    const MachineId candidate = (m + step) % options_.num_slaves;
    if (alive_[candidate]) return candidate;
  }
  return kInvalidMachine;
}

Status MemoryCloud::RouteOp(MachineId src, CellOp op, CellId id,
                            Slice payload, std::string* response) {
  Status last = Status::Unavailable("unroutable");
  for (int attempt = 0; attempt < 3; ++attempt) {
    MachineId dst;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dst = machines_[src].table_replica.machine_of_trunk(TrunkOf(id));
    }
    if (dst == src && machines_[src].storage != nullptr) {
      net::Fabric::MeterScope meter(*fabric_, src);
      last = ExecuteLocal(src, op, id, payload, response);
    } else {
      const std::string request =
          EncodeCellOp(static_cast<std::uint8_t>(op), id, payload);
      last = fabric_->Call(src, dst, kCellOpHandler, Slice(request),
                           response);
    }
    if (!last.IsUnavailable()) return last;
    // Unavailable: either our table replica is stale ("trunk not hosted")
    // or the owner crashed. Recover / re-sync and retry (§6.2: "machine A
    // will wait for the addressing table to be updated, and attempt to
    // access the item again").
    if (!fabric_->IsMachineUp(dst)) {
      if (options_.tfs == nullptr) return last;  // No recovery path.
      Status rs = RecoverMachine(dst);
      if (!rs.ok()) return rs;
    }
    std::lock_guard<std::mutex> lock(mu_);
    machines_[src].table_replica = primary_table_;
  }
  return last;
}

Status MemoryCloud::AddCellFrom(MachineId src, CellId id, Slice payload) {
  return RouteOp(src, CellOp::kAdd, id, payload, nullptr);
}

Status MemoryCloud::PutCellFrom(MachineId src, CellId id, Slice payload) {
  return RouteOp(src, CellOp::kPut, id, payload, nullptr);
}

Status MemoryCloud::GetCellFrom(MachineId src, CellId id, std::string* out) {
  return RouteOp(src, CellOp::kGet, id, Slice(), out);
}

Status MemoryCloud::RemoveCellFrom(MachineId src, CellId id) {
  return RouteOp(src, CellOp::kRemove, id, Slice(), nullptr);
}

Status MemoryCloud::AppendToCellFrom(MachineId src, CellId id, Slice suffix) {
  return RouteOp(src, CellOp::kAppend, id, suffix, nullptr);
}

bool MemoryCloud::Contains(CellId id) {
  return RouteOp(client_id(), CellOp::kContains, id, Slice(), nullptr).ok();
}

Status MemoryCloud::PersistTableLocked() {
  if (options_.tfs == nullptr) return Status::OK();
  // "An update to the primary table must be applied to the persistent
  // replica before committing" (§6.2).
  return options_.tfs->WriteFile(options_.tfs_prefix + "/addressing_table",
                                 Slice(primary_table_.Serialize()));
}

void MemoryCloud::BroadcastTableLocked() {
  const std::string image = primary_table_.Serialize();
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    if (m == leader_) {
      machines_[m].table_replica = primary_table_;
      continue;
    }
    if (!alive_[m]) continue;
    // Direct replica install; losing the broadcast is tolerated because a
    // stale machine re-syncs on its next failed access.
    AddressingTable table(0, 1);
    if (AddressingTable::Deserialize(Slice(image), &table).ok()) {
      machines_[m].table_replica = table;
    }
  }
}

Status MemoryCloud::SaveSnapshot() {
  if (options_.tfs == nullptr) {
    return Status::InvalidArgument("no TFS configured");
  }
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (!alive_[m] || machines_[m].storage == nullptr) continue;
    Status s = machines_[m].storage->SaveToTfs(options_.tfs,
                                               options_.tfs_prefix);
    if (!s.ok()) return s;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot makes buffered log records redundant; truncate them all.
  for (auto& machine : machines_) {
    machine.backup_logs.clear();
  }
  return PersistTableLocked();
}

Status MemoryCloud::FailMachine(MachineId m) {
  if (m < 0 || m >= options_.num_slaves) {
    return Status::InvalidArgument("can only fail slaves");
  }
  fabric_->SetMachineDown(m);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[m] = false;
  machines_[m].storage.reset();     // RAM contents are gone.
  machines_[m].backup_logs.clear();  // So are the logs it held as backup.
  return Status::OK();
}

std::vector<MachineId> MemoryCloud::AliveSlavesLocked() const {
  std::vector<MachineId> result;
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (alive_[m]) result.push_back(m);
  }
  return result;
}

Status MemoryCloud::ElectLeader() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<MachineId> alive = AliveSlavesLocked();
  if (alive.empty()) return Status::Unavailable("no alive slaves");
  const MachineId candidate = alive.front();
  if (options_.tfs != nullptr) {
    // Fence through TFS so two partitions cannot both elect a leader
    // (§6.2: "the new leader marks a flag on the shared distributed
    // fault-tolerant file system").
    for (int tries = 0; tries < 1000; ++tries) {
      ++leader_epoch_;
      const std::string flag = options_.tfs_prefix + "/leader_epoch_" +
                               std::to_string(leader_epoch_);
      Status s = options_.tfs->CreateExclusive(
          flag, Slice(std::to_string(candidate)));
      if (s.ok()) break;
      if (!s.IsAlreadyExists()) return s;
    }
  }
  leader_ = candidate;
  return Status::OK();
}

Status MemoryCloud::RecoverMachine(MachineId failed) {
  if (options_.tfs == nullptr) {
    return Status::InvalidArgument("recovery requires TFS");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (alive_[failed]) {
    alive_[failed] = false;
    fabric_->SetMachineDown(failed);
    machines_[failed].storage.reset();
  }
  if (leader_ == failed || !alive_[leader_]) {
    // Leader is gone; elect a new one (inline, we already hold the state).
    const std::vector<MachineId> alive = AliveSlavesLocked();
    if (alive.empty()) return Status::Unavailable("no alive slaves");
    leader_ = alive.front();
    if (options_.tfs != nullptr) {
      ++leader_epoch_;
      options_.tfs->CreateExclusive(
          options_.tfs_prefix + "/leader_epoch_" +
              std::to_string(leader_epoch_),
          Slice(std::to_string(leader_)));
    }
  }
  const std::vector<MachineId> targets = AliveSlavesLocked();
  if (targets.empty()) return Status::Unavailable("no recovery targets");
  const std::vector<TrunkId> trunks = primary_table_.trunks_of(failed);
  if (trunks.empty()) return Status::OK();  // Already recovered.

  // "During recovery, the leader reloads data owned by the failed machine
  // to other alive machines, updates the primary addressing table and
  // broadcasts it" (§6.2).
  std::size_t next = 0;
  for (TrunkId t : trunks) {
    const MachineId target = targets[next++ % targets.size()];
    std::unique_ptr<storage::MemoryTrunk> trunk;
    Status s = storage::MemoryStorage::LoadTrunkFromTfs(
        options_.tfs, options_.tfs_prefix, t, options_.storage.trunk, &trunk);
    if (s.IsNotFound()) {
      // Never snapshotted: recover an empty trunk (plus log replay below).
      s = storage::MemoryTrunk::Create(options_.storage.trunk, &trunk);
    }
    if (!s.ok()) return s;
    s = machines_[target].storage->AttachTrunk(t, std::move(trunk));
    if (!s.ok()) return s;
    primary_table_.MoveTrunk(t, target);
  }

  // Replay buffered log records held for the failed primary by its backup.
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (!alive_[m]) continue;
    auto it = machines_[m].backup_logs.find(failed);
    if (it == machines_[m].backup_logs.end()) continue;
    for (const LogRecord& record : it->second) {
      const TrunkId t = TrunkOf(record.id);
      const MachineId owner = primary_table_.machine_of_trunk(t);
      storage::MemoryTrunk* trunk = machines_[owner].storage->trunk(t);
      if (trunk == nullptr) continue;
      switch (record.op) {
        case CellOp::kAdd:
        case CellOp::kPut:
          trunk->PutCell(record.id, Slice(record.payload));
          break;
        case CellOp::kRemove:
          trunk->RemoveCell(record.id);
          break;
        case CellOp::kAppend:
          trunk->AppendToCell(record.id, Slice(record.payload));
          break;
        default:
          break;
      }
    }
    machines_[m].backup_logs.erase(it);
  }

  Status s = PersistTableLocked();
  if (!s.ok()) return s;
  BroadcastTableLocked();
  return Status::OK();
}

int MemoryCloud::DetectAndRecover() {
  int recovered = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!alive_[m]) {
        if (!primary_table_.trunks_of(m).empty()) {
          // Known dead but not yet recovered.
        } else {
          continue;
        }
      }
    }
    // Heartbeat from the leader (§6.2: "Trinity uses heartbeat messages to
    // proactively detect machine failures").
    std::string pong;
    Status s = fabric_->Call(leader_, m, kHeartbeatHandler, Slice(), &pong);
    if (s.IsUnavailable()) {
      if (RecoverMachine(m).ok()) ++recovered;
    }
  }
  return recovered;
}

Status MemoryCloud::MigrateTrunk(TrunkId trunk, MachineId to) {
  MachineId from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (trunk < 0 || trunk >= primary_table_.num_slots()) {
      return Status::InvalidArgument("trunk out of range");
    }
    if (to < 0 || to >= options_.num_slaves || !alive_[to]) {
      return Status::InvalidArgument("destination is not an alive slave");
    }
    from = primary_table_.machine_of_trunk(trunk);
    if (from == to) return Status::OK();
    if (!alive_[from] || machines_[from].storage == nullptr) {
      return Status::Unavailable("source machine is down");
    }
  }
  // 1. Serialize the trunk at the source (metered as its CPU work).
  storage::MemoryTrunk* source = machines_[from].storage->trunk(trunk);
  if (source == nullptr) return Status::NotFound("trunk not hosted at source");
  std::string image;
  {
    net::Fabric::MeterScope meter(*fabric_, from);
    Status s = source->Serialize(&image);
    if (!s.ok()) return s;
  }
  // 2. Ship the image to the destination over the fabric.
  BinaryWriter writer;
  writer.PutI32(trunk);
  writer.PutBytes(Slice(image));
  std::string unused;
  Status s = fabric_->Call(from, to, kTrunkMigrateHandler,
                           Slice(writer.buffer()), &unused);
  if (!s.ok()) return s;
  // 3. Drop the source copy and commit the new ownership.
  s = machines_[from].storage->DetachTrunk(trunk);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  primary_table_.MoveTrunk(trunk, to);
  Status ps = PersistTableLocked();
  if (!ps.ok()) return ps;
  BroadcastTableLocked();
  return Status::OK();
}

int MemoryCloud::RebalanceTrunks() {
  int moved = 0;
  for (;;) {
    TrunkId candidate = -1;
    MachineId from = kInvalidMachine, to = kInvalidMachine;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Find the most- and least-loaded alive slaves.
      std::size_t max_count = 0, min_count = ~std::size_t{0};
      for (MachineId m = 0; m < options_.num_slaves; ++m) {
        if (!alive_[m] || machines_[m].storage == nullptr) continue;
        const std::size_t count = primary_table_.trunks_of(m).size();
        if (count > max_count) {
          max_count = count;
          from = m;
        }
        if (count < min_count) {
          min_count = count;
          to = m;
        }
      }
      if (from == kInvalidMachine || to == kInvalidMachine ||
          max_count <= min_count + 1) {
        break;  // Balanced within one trunk.
      }
      candidate = primary_table_.trunks_of(from).front();
    }
    if (!MigrateTrunk(candidate, to).ok()) break;
    ++moved;
  }
  return moved;
}

Status MemoryCloud::RestartMachine(MachineId m) {
  if (m < 0 || m >= options_.num_slaves) {
    return Status::InvalidArgument("can only restart slaves");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (alive_[m]) return Status::AlreadyExists("machine is up");
  machines_[m].storage =
      std::make_unique<storage::MemoryStorage>(options_.storage);
  machines_[m].table_replica = primary_table_;
  machines_[m].next_log_seq = 1;
  alive_[m] = true;
  fabric_->SetMachineUp(m);
  RegisterHandlers(m);
  return Status::OK();
}

}  // namespace trinity::cloud
