#include "cloud/memory_cloud.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "cloud/cell_stripes.h"
#include "cloud/replica_placement.h"
#include "common/logging.h"
#include "common/serializer.h"
#include "common/threadpool.h"
// Header-only [id][len][bytes] record helpers shared with the compute
// engines' outboxes; MultiGet responses reuse the same wire shape.
#include "compute/packed_messages.h"

namespace trinity::cloud {

namespace {

std::string EncodeCellOp(std::uint8_t op, CellId id, Slice payload) {
  BinaryWriter writer;
  writer.PutU8(op);
  writer.PutU64(id);
  writer.PutBytes(payload);
  return writer.Release();
}

bool DecodeCellOp(Slice data, std::uint8_t* op, CellId* id, Slice* payload) {
  BinaryReader reader(data);
  return reader.GetU8(op) && reader.GetU64(id) && reader.GetBytes(payload);
}

}  // namespace

MemoryCloud::MemoryCloud(const Options& options) : options_(options) {}

Status MemoryCloud::Create(const Options& options,
                           std::unique_ptr<MemoryCloud>* out) {
  if (options.num_slaves < 1) {
    return Status::InvalidArgument("need at least one slave");
  }
  if ((1 << options.p_bits) < options.num_slaves) {
    return Status::InvalidArgument("need 2^p_bits >= num_slaves");
  }
  if (options.buffered_logging && options.num_slaves < 2) {
    return Status::InvalidArgument("buffered logging needs a backup slave");
  }
  if (options.replication_factor < 0) {
    return Status::InvalidArgument("replication_factor must be >= 0");
  }
  if (options.replication_factor > 0 && options.buffered_logging) {
    return Status::InvalidArgument(
        "replication subsumes buffered logging; enable only one");
  }
  Options resolved = options;
  if (resolved.storage.trunk.memory_budget > 0 &&
      resolved.storage.trunk.cold_tfs == nullptr) {
    // Auto-wire the cold tier onto the cloud's TFS: every trunk spills
    // under <tfs_prefix>/cold (each gets a unique sub-prefix on its own).
    if (resolved.tfs == nullptr) {
      return Status::InvalidArgument("trunk memory budget requires a tfs");
    }
    resolved.storage.trunk.cold_tfs = resolved.tfs;
    resolved.storage.trunk.cold_prefix = resolved.tfs_prefix + "/cold";
  }
  std::unique_ptr<MemoryCloud> cloud(new MemoryCloud(resolved));
  Status s = cloud->Init();
  if (!s.ok()) return s;
  *out = std::move(cloud);
  return Status::OK();
}

Status MemoryCloud::Init() {
  fabric_ = std::make_unique<net::Fabric>(num_endpoints(), options_.fabric);
  // Injected crashes (FaultInjector::CrashAfter) must mirror FailMachine:
  // the fabric marks the endpoint down and we drop its volatile state.
  fabric_->SetCrashListener([this](MachineId m) { OnInjectedCrash(m); });
  if (options_.tfs != nullptr) {
    // Resume from the last committed snapshot epoch, if any.
    std::string epoch;
    if (options_.tfs->ReadFile(options_.tfs_prefix + "/snapshot_current",
                               &epoch).ok()) {
      snapshot_epoch_ = std::strtoull(epoch.c_str(), nullptr, 10);
    }
  }
  primary_table_ = AddressingTable(options_.p_bits, options_.num_slaves);
  if (replicated()) {
    // Seed the in-sync replica sets: rendezvous hashing over the slaves,
    // always on machines distinct from the primary (and from each other).
    std::vector<MachineId> slaves;
    for (MachineId m = 0; m < options_.num_slaves; ++m) slaves.push_back(m);
    for (TrunkId t = 0; t < primary_table_.num_slots(); ++t) {
      primary_table_.SetReplicas(
          t, ReplicaTargets(t, primary_table_.machine_of_trunk(t),
                            options_.replication_factor, slaves));
    }
  }
  machines_ = std::make_unique<MachineState[]>(num_endpoints());
  alive_ = std::make_unique<std::atomic<bool>[]>(num_endpoints());
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    alive_[m].store(true, std::memory_order_relaxed);
  }
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    machines_[m].table_replica = primary_table_;
    if (m < options_.num_slaves) {
      auto store = std::make_shared<storage::MemoryStorage>(options_.storage);
      for (TrunkId t : primary_table_.trunks_of(m)) {
        Status s = store->AttachTrunk(t);
        if (!s.ok()) return s;
      }
      machines_[m].storage.store(std::move(store),
                                 std::memory_order_release);
    }
    RegisterHandlers(m);
  }
  if (replicated()) {
    for (TrunkId t = 0; t < primary_table_.num_slots(); ++t) {
      for (MachineId r : primary_table_.replicas_of_trunk(t)) {
        Status s = StorageOf(r)->AttachReplicaTrunk(t);
        if (!s.ok()) return s;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (MachineId m = 0; m < num_endpoints(); ++m) RefreshRoutingLocked(m);
    RefreshPrimaryRoutingLocked();
  }
  leader_ = 0;
  return Status::OK();
}

void MemoryCloud::RegisterHandlers(MachineId m) {
  // Addressing-table broadcast: every endpoint keeps a replica (§3).
  fabric_->RegisterAsyncHandler(
      m, kTableUpdateHandler, [this, m](MachineId, Slice payload) {
        AddressingTable table(0, 1);
        if (AddressingTable::Deserialize(payload, &table).ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          if (table.version() > machines_[m].table_replica.version()) {
            machines_[m].table_replica = table;
            RefreshRoutingLocked(m);
          }
        }
      });
  if (m >= options_.num_slaves) return;  // Proxies/client carry no data.

  fabric_->RegisterSyncHandler(
      m, kCellOpHandler,
      [this, m](MachineId, Slice request, std::string* response) {
        std::uint8_t op = 0;
        CellId id = 0;
        Slice payload;
        if (!DecodeCellOp(request, &op, &id, &payload)) {
          return Status::Corruption("bad cell op request");
        }
        return ExecuteLocal(m, static_cast<CellOp>(op), id, payload,
                            response);
      });
  fabric_->RegisterSyncHandler(
      m, kMultiGetHandler,
      [this, m](MachineId, Slice request, std::string* response) {
        BinaryReader reader(request);
        std::uint8_t op = 0;
        std::uint32_t count = 0;
        if (!reader.GetU8(&op) || !reader.GetU32(&count)) {
          return Status::Corruption("bad multi-get request");
        }
        if (response == nullptr) return Status::InvalidArgument("no response");
        auto store = StorageOf(m);
        if (store == nullptr) return Status::Unavailable("not a slave");
        for (std::uint32_t i = 0; i < count; ++i) {
          CellId id = 0;
          if (!reader.GetU64(&id)) {
            return Status::Corruption("bad multi-get request");
          }
          storage::MemoryTrunk* trunk = store->trunk(TrunkOf(id));
          if (trunk == nullptr) {
            // The caller's routing snapshot is stale for this id. Fail the
            // whole batch so the caller re-routes each id individually —
            // partial answers must not masquerade as NotFound.
            return Status::Unavailable("trunk not hosted");
          }
          if (static_cast<CellOp>(op) == CellOp::kContains) {
            // Present ids answer with an empty record; absent ids are
            // simply omitted from the response.
            if (trunk->Contains(id)) {
              compute::AppendPackedRecord(response, id, Slice());
            }
            continue;
          }
          storage::MemoryTrunk::ConstAccessor accessor;
          if (trunk->Access(id, &accessor).ok()) {
            compute::AppendPackedRecord(response, id, accessor.data());
          }
        }
        return Status::OK();
      });
  fabric_->RegisterSyncHandler(
      m, kHeartbeatHandler,
      [](MachineId, Slice, std::string* response) {
        if (response != nullptr) *response = "pong";
        return Status::OK();
      });
  fabric_->RegisterSyncHandler(
      m, kLogRecordHandler,
      [this, m](MachineId src, Slice request, std::string*) {
        BinaryReader reader(request);
        LogRecord record;
        std::uint8_t op = 0;
        Slice payload;
        if (!reader.GetU64(&record.seq) || !reader.GetU8(&op) ||
            !reader.GetU64(&record.id) || !reader.GetBytes(&payload)) {
          return Status::Corruption("bad log record");
        }
        record.op = static_cast<CellOp>(op);
        record.payload = payload.ToString();
        std::lock_guard<std::mutex> lock(mu_);
        machines_[m].backup_logs[src].push_back(std::move(record));
        return Status::OK();
      });
  fabric_->RegisterAsyncHandler(
      m, kLogTruncateHandler, [this, m](MachineId src, Slice) {
        std::lock_guard<std::mutex> lock(mu_);
        machines_[m].backup_logs[src].clear();
      });
  fabric_->RegisterSyncHandler(
      m, kTrunkMigrateHandler,
      [this, m](MachineId, Slice request, std::string*) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        Slice image;
        if (!reader.GetI32(&trunk_id) || !reader.GetBytes(&image)) {
          return Status::Corruption("bad trunk migration request");
        }
        std::unique_ptr<storage::MemoryTrunk> trunk;
        Status s = storage::MemoryTrunk::Deserialize(
            image, options_.storage.trunk, &trunk);
        if (!s.ok()) return s;
        auto store = StorageOf(m);
        if (store == nullptr) return Status::Unavailable("not a slave");
        return store->AttachTrunk(trunk_id, std::move(trunk));
      });
  fabric_->RegisterSyncHandler(
      m, kReplicaApplyHandler,
      [this, m](MachineId, Slice request, std::string*) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        std::uint64_t epoch = 0;
        std::uint8_t op = 0;
        CellId id = 0;
        Slice payload;
        if (!reader.GetI32(&trunk_id) || !reader.GetU64(&epoch) ||
            !reader.GetU8(&op) || !reader.GetU64(&id) ||
            !reader.GetBytes(&payload)) {
          return Status::Corruption("bad replica apply request");
        }
        {
          // Fencing: a mutation stamped with an epoch older than this
          // machine's view of the trunk's fencing token comes from a
          // primary that was deposed by a promotion it never heard about.
          // Aborted is terminal for the sender — the write is never acked.
          std::lock_guard<std::mutex> lock(mu_);
          if (trunk_id < 0 ||
              trunk_id >= machines_[m].table_replica.num_slots()) {
            return Status::Corruption("replica apply trunk out of range");
          }
          if (epoch < machines_[m].table_replica.epoch_of_trunk(trunk_id)) {
            recovery_stats_.fenced_writes.fetch_add(
                1, std::memory_order_relaxed);
            return Status::Aborted(
                "fenced: replication epoch " + std::to_string(epoch) +
                    " is stale for trunk " + std::to_string(trunk_id),
                Status::Subcode::kFenced);
          }
        }
        auto store = StorageOf(m);
        if (store == nullptr) return Status::Unavailable("not a slave");
        storage::MemoryTrunk* replica = store->replica_trunk(trunk_id);
        if (replica == nullptr) {
          return Status::Unavailable("no replica trunk hosted");
        }
        // Mirror the primary's *successful* apply. Add mirrors as Put and
        // Remove tolerates NotFound so a retried/duplicated ship converges
        // to the primary's state instead of erroring.
        switch (static_cast<CellOp>(op)) {
          case CellOp::kAdd:
          case CellOp::kPut:
            return replica->PutCell(id, payload);
          case CellOp::kRemove: {
            Status rs = replica->RemoveCell(id);
            return rs.IsNotFound() ? Status::OK() : rs;
          }
          case CellOp::kAppend:
            return replica->AppendToCell(id, payload);
          default:
            return Status::InvalidArgument("non-mutating replica apply");
        }
      });
  fabric_->RegisterSyncHandler(
      m, kReplicaInstallHandler,
      [this, m](MachineId, Slice request, std::string*) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        Slice image;
        if (!reader.GetI32(&trunk_id) || !reader.GetBytes(&image)) {
          return Status::Corruption("bad replica install request");
        }
        std::unique_ptr<storage::MemoryTrunk> trunk;
        Status s = storage::MemoryTrunk::Deserialize(
            image, options_.storage.trunk, &trunk);
        if (!s.ok()) return s;
        auto store = StorageOf(m);
        if (store == nullptr) return Status::Unavailable("not a slave");
        return store->AttachReplicaTrunk(trunk_id, std::move(trunk));
      });
  fabric_->RegisterSyncHandler(
      m, kReplicaReadHandler,
      [this, m](MachineId, Slice request, std::string* response) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        std::uint8_t op = 0;
        CellId id = 0;
        if (!reader.GetI32(&trunk_id) || !reader.GetU8(&op) ||
            !reader.GetU64(&id)) {
          return Status::Corruption("bad replica read request");
        }
        auto store = StorageOf(m);
        if (store == nullptr) return Status::Unavailable("not a slave");
        storage::MemoryTrunk* replica = store->replica_trunk(trunk_id);
        if (replica == nullptr) {
          return Status::Unavailable("no replica trunk hosted");
        }
        switch (static_cast<CellOp>(op)) {
          case CellOp::kGet:
            if (response == nullptr) {
              return Status::InvalidArgument("no response");
            }
            return replica->GetCell(id, response);
          case CellOp::kContains:
            return replica->Contains(id) ? Status::OK()
                                         : Status::NotFound("");
          default:
            return Status::InvalidArgument("mutating replica read");
        }
      });
  fabric_->RegisterSyncHandler(
      m, kIsrShrinkHandler,
      [this, m](MachineId src, Slice request, std::string*) {
        BinaryReader reader(request);
        std::int32_t trunk_id = 0;
        std::uint64_t epoch = 0;
        std::int32_t replica = 0;
        if (!reader.GetI32(&trunk_id) || !reader.GetU64(&epoch) ||
            !reader.GetI32(&replica)) {
          return Status::Corruption("bad ISR shrink request");
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (m != leader_) {
          // Caller's leader view is stale; retryable once it re-learns.
          return Status::Unavailable("not the leader");
        }
        if (trunk_id < 0 || trunk_id >= primary_table_.num_slots()) {
          return Status::Corruption("ISR shrink trunk out of range");
        }
        if (primary_table_.machine_of_trunk(trunk_id) != src ||
            epoch < primary_table_.epoch_of_trunk(trunk_id)) {
          // The caller was deposed: a promotion moved the trunk (bumping
          // its epoch) after the caller last synced. It must not be allowed
          // to establish ack authority by shrinking the in-sync set.
          recovery_stats_.fenced_writes.fetch_add(1,
                                                  std::memory_order_relaxed);
          return Status::Aborted("fenced: shrink from deposed primary",
                                 Status::Subcode::kFenced);
        }
        primary_table_.RemoveReplica(trunk_id, replica);
        Status ps = PersistTableLocked();
        if (!ps.ok()) return ps;
        BroadcastTableLocked();
        return Status::OK();
      });
}

MachineId MemoryCloud::MachineOf(CellId id) const {
  std::shared_ptr<const RoutingView> view =
      primary_routing_.load(std::memory_order_acquire);
  if (view != nullptr &&
      view->stamp == routing_stamp_.load(std::memory_order_acquire)) {
    return view->owner[TrunkOf(id)];
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefreshPrimaryRoutingLocked();
  return primary_table_.machine_of_trunk(TrunkOf(id));
}

storage::MemoryStorage* MemoryCloud::storage(MachineId m) {
  // Lock-free: liveness and the storage pointer are both atomics. A crashed
  // machine's memory image may linger until recovery (see OnInjectedCrash)
  // but must never be readable.
  if (!alive_[m].load(std::memory_order_acquire)) return nullptr;
  return StorageOf(m).get();
}

const AddressingTable& MemoryCloud::table() const { return primary_table_; }

std::uint64_t MemoryCloud::MemoryFootprintBytes() const {
  std::uint64_t total = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    auto store = StorageOf(m);
    if (alive_[m].load(std::memory_order_acquire) && store != nullptr) {
      total += store->MemoryFootprintBytes();
    }
  }
  return total;
}

std::uint64_t MemoryCloud::TotalCellCount() const {
  std::uint64_t total = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    auto store = StorageOf(m);
    if (alive_[m].load(std::memory_order_acquire) && store != nullptr) {
      total += store->TotalCellCount();
    }
  }
  return total;
}

storage::MemoryTrunk::Stats MemoryCloud::AggregateTrunkStats() const {
  storage::MemoryTrunk::Stats total;
  for (int m = 0; m < options_.num_slaves; ++m) {
    auto store = StorageOf(m);
    if (!alive_[m].load(std::memory_order_acquire) || store == nullptr) {
      continue;
    }
    const storage::MemoryTrunk::Stats s = store->AggregateTrunkStats();
    total.live_cells += s.live_cells;
    total.live_bytes += s.live_bytes;
    total.reserved_slack += s.reserved_slack;
    total.dead_bytes += s.dead_bytes;
    total.used_bytes += s.used_bytes;
    total.resident_bytes += s.resident_bytes;
    total.committed_bytes += s.committed_bytes;
    total.capacity += s.capacity;
    total.defrag_passes += s.defrag_passes;
    total.cells_moved += s.cells_moved;
    total.expansions_in_place += s.expansions_in_place;
    total.expansions_relocated += s.expansions_relocated;
    total.compressed_cells += s.compressed_cells;
    total.compressed_bytes += s.compressed_bytes;
    total.spilled_cells += s.spilled_cells;
    total.spilled_bytes += s.spilled_bytes;
    total.cells_evicted += s.cells_evicted;
    total.cells_faulted += s.cells_faulted;
    total.cold_bytes_written += s.cold_bytes_written;
    total.cold_bytes_read += s.cold_bytes_read;
    total.shared_reads += s.shared_reads;
    total.read_lock_contended += s.read_lock_contended;
    total.write_lock_contended += s.write_lock_contended;
    total.cell_lock_contended += s.cell_lock_contended;
  }
  return total;
}

Status MemoryCloud::ExecuteLocal(MachineId m, CellOp op, CellId id,
                                 Slice payload, std::string* response) {
  auto store = StorageOf(m);
  if (store == nullptr) return Status::Unavailable("not a slave");
  storage::MemoryTrunk* trunk = store->trunk(TrunkOf(id));
  if (trunk == nullptr) {
    // The caller's addressing-table replica is stale.
    return Status::Unavailable("trunk not hosted");
  }
  const bool mutating = op == CellOp::kAdd || op == CellOp::kPut ||
                        op == CellOp::kRemove || op == CellOp::kAppend;
  Status result;
  switch (op) {
    case CellOp::kAdd:
      result = trunk->AddCell(id, payload);
      break;
    case CellOp::kPut:
      result = trunk->PutCell(id, payload);
      break;
    case CellOp::kGet: {
      if (response == nullptr) return Status::InvalidArgument("no response");
      return trunk->GetCell(id, response);
    }
    case CellOp::kRemove:
      result = trunk->RemoveCell(id);
      break;
    case CellOp::kAppend:
      result = trunk->AppendToCell(id, payload);
      break;
    case CellOp::kContains:
      return trunk->Contains(id) ? Status::OK() : Status::NotFound("");
    default:
      return Status::InvalidArgument("unknown op");
  }
  // Only *successful* mutations reach the backup's log buffer — a rejected
  // op (e.g. AddCell on an existing id) must not be replayed at recovery.
  // (The coarse crash model here — failures happen between operations —
  // makes log-after-apply equivalent to RAMCloud's log-before-commit.)
  if (result.ok() && mutating && options_.buffered_logging &&
      options_.tfs != nullptr) {
    if (!LogToBackup(m, op, id, payload)) {
      // The machine crashed while logging and no live backup holds the
      // record: the local apply above is now a ghost image that recovery
      // will discard. Acking would lose the write — fail instead, and let
      // the caller's retry re-apply on the recovered owner.
      return Status::Unavailable("machine crashed before logging completed");
    }
  }
  if (result.ok() && mutating && replicated()) {
    // Synchronous primary/backup replication: the ack goes out only after
    // every in-sync replica applied the mutation (or the leader confirmed
    // shrinking it out). Like the logging path above, a non-OK here after a
    // successful local apply leaves a ghost the healthy cluster never
    // reads; callers retry against the (possibly promoted) owner, so
    // mutations are at-least-once — Put/Remove are idempotent.
    Status rs = ReplicateMutation(m, op, id, payload);
    if (!rs.ok()) return rs;
  }
  return result;
}

Status MemoryCloud::ReplicateMutation(MachineId primary, CellOp op, CellId id,
                                      Slice payload) {
  const TrunkId t = TrunkOf(id);
  std::uint64_t epoch = 0;
  std::vector<MachineId> replicas;
  {
    // The primary's *own* table replica drives its write path. This is the
    // fencing linchpin: a deposed primary (partitioned away before a
    // promotion it never heard about) still advertises its old epoch and
    // still targets its old in-sync set, so its traffic reaches a machine
    // holding a newer table and dies with Aborted — it cannot consult some
    // post-promotion global state and quietly ack against an empty set.
    std::lock_guard<std::mutex> lock(mu_);
    epoch = machines_[primary].table_replica.epoch_of_trunk(t);
    replicas = machines_[primary].table_replica.replicas_of_trunk(t);
  }
  BinaryWriter writer;
  writer.PutI32(t);
  writer.PutU64(epoch);
  writer.PutU8(static_cast<std::uint8_t>(op));
  writer.PutU64(id);
  writer.PutBytes(payload);
  for (MachineId r : replicas) {
    RetryPolicy::RunHooks hooks;
    hooks.salt = Mix64(id) ^ Mix64(static_cast<std::uint64_t>(r) + 1);
    hooks.charge = [&](double micros) {
      fabric_->AddCpuMicros(primary, micros);
    };
    // Dead replica — shrink it out of the in-sync set, don't retry.
    hooks.keep_trying = [&] { return fabric_->IsMachineUp(r); };
    Status s = options_.retry.Run(hooks, [&](int) -> Status {
      std::string unused;
      Status as = fabric_->Call(primary, r, kReplicaApplyHandler,
                                Slice(writer.buffer()), &unused);
      if (as.ok() && !fabric_->IsMachineUp(r)) {
        // The replica crashed right after applying; its copy is a ghost
        // and protects nothing.
        as = Status::Unavailable("replica crashed after apply");
      }
      return as;
    });
    if (s.ok()) continue;  // Replicated.
    if (s.IsAborted()) {
      // The replica holds a newer fencing epoch: we were deposed. Terminal.
      return Status::Aborted("fenced: trunk " + std::to_string(t) +
                                 " has a newer primary (" + s.message() + ")",
                             Status::Subcode::kFenced);
    }
    // Replica dead or unreachable. Ask the current leader to shrink it out
    // of the in-sync set before acking without it — the leader knows the
    // real epoch, so a deposed primary is fenced on this path too.
    Status cs = ConfirmShrink(primary, t, epoch, r);
    if (cs.IsAborted()) return cs;
    if (!cs.ok()) {
      // No confirmation (leader unreachable / partitioned): acking a write
      // the in-sync set did not see could lose it at the next promotion.
      return Status::Unavailable("replica " + std::to_string(r) +
                                 " unreachable and in-sync shrink "
                                 "unconfirmed: " + cs.message());
    }
  }
  if (!fabric_->IsMachineUp(primary)) {
    // Injected crash took the primary down mid-replication; its local apply
    // is a ghost image that the promotion path discards.
    return Status::Unavailable("primary crashed during replication");
  }
  return Status::OK();
}

Status MemoryCloud::ConfirmShrink(MachineId primary, TrunkId trunk,
                                  std::uint64_t epoch, MachineId replica) {
  BinaryWriter writer;
  writer.PutI32(trunk);
  writer.PutU64(epoch);
  writer.PutI32(replica);
  RetryPolicy::RunHooks hooks;
  hooks.salt = Mix64(static_cast<std::uint64_t>(trunk)) ^
               Mix64(static_cast<std::uint64_t>(replica) + 2);
  hooks.charge = [&](double micros) {
    fabric_->AddCpuMicros(primary, micros);
  };
  return options_.retry.Run(hooks, [&](int) -> Status {
    MachineId leader;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leader = leader_;
    }
    // Self-calls (primary == leader) still route through the fabric and
    // run the same fencing check, keeping one code path.
    std::string unused;
    return fabric_->Call(primary, leader, kIsrShrinkHandler,
                         Slice(writer.buffer()), &unused);
  });
}

Status MemoryCloud::TryReplicaRead(MachineId src, CellOp op, CellId id,
                                   std::string* response, bool* served,
                                   CallContext* ctx) {
  *served = false;
  const TrunkId t = TrunkOf(id);
  std::vector<MachineId> replicas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    replicas = primary_table_.replicas_of_trunk(t);
  }
  BinaryWriter writer;
  writer.PutI32(t);
  writer.PutU8(static_cast<std::uint8_t>(op));
  writer.PutU64(id);
  for (MachineId r : replicas) {
    if (!fabric_->IsMachineUp(r)) continue;
    std::string resp;
    Status s = fabric_->Call(src, r, kReplicaReadHandler,
                             Slice(writer.buffer()), &resp, ctx);
    if (s.IsRetryable()) continue;  // Next replica.
    // Definitive answer (OK / NotFound / error): the read was served.
    *served = true;
    recovery_stats_.degraded_reads.fetch_add(1, std::memory_order_relaxed);
    if (s.ok() && response != nullptr) *response = std::move(resp);
    return s;
  }
  return Status::Unavailable("no in-sync replica served the read");
}

bool MemoryCloud::LogToBackup(MachineId primary, CellOp op, CellId id,
                              Slice payload) {
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = machines_[primary].next_log_seq++;
  }
  BinaryWriter writer;
  writer.PutU64(seq);
  writer.PutU8(static_cast<std::uint8_t>(op));
  writer.PutU64(id);
  writer.PutBytes(payload);
  // Synchronous: the record must reach *some* backup's memory before the
  // mutation commits locally (RAMCloud buffered logging). A backup crashing
  // mid-call or a transient injected failure must not leave the mutation
  // unlogged — that is exactly the window where an acknowledged write could
  // be lost — so keep trying surviving backups. BackupOf re-evaluates
  // liveness on every attempt, skipping backups that just died.
  for (int attempt = 0; attempt < 2 * options_.num_slaves; ++attempt) {
    const MachineId backup = BackupOf(primary);
    if (backup == kInvalidMachine) break;  // No surviving backup at all.
    std::string unused;
    Status s = fabric_->Call(primary, backup, kLogRecordHandler,
                             Slice(writer.buffer()), &unused);
    if (s.ok()) {
      // The backup may have crashed the instant after buffering the record
      // (its log died with it); an ack from a now-dead backup protects
      // nothing, so re-log to the next survivor.
      if (fabric_->IsMachineUp(backup)) return true;
      continue;
    }
    fabric_->AddCpuMicros(primary, options_.retry.backoff_base_micros);
  }
  // Retries exhausted (or no backup exists). If the primary is still up the
  // write stays durable-in-RAM under the best-effort semantics of a cluster
  // with no reachable backup; but if an injected crash took the primary down
  // *mid-logging*, the record protects nothing and the ack must not go out.
  return fabric_->IsMachineUp(primary);
}

void MemoryCloud::OnInjectedCrash(MachineId m) {
  if (m < 0 || m >= num_endpoints()) return;
  std::lock_guard<std::mutex> lock(mu_);
  alive_[m].store(false, std::memory_order_release);
  // Membership changed: lazily invalidate every routing snapshot.
  routing_stamp_.fetch_add(1, std::memory_order_acq_rel);
  if (m >= options_.num_slaves) return;  // Proxies/client carry no state.
  machines_[m].backup_logs.clear();  // The logs it held as backup are gone.
  // Re-protection snapshots only matter when buffered logs exist; in
  // replicated mode the sweep would otherwise never converge to "handled".
  if (options_.buffered_logging) reprotect_pending_ = true;
  // Unlike FailMachine we keep the storage object itself: an injected crash
  // can fire mid-protocol while a caller (e.g. a vertex program) still holds
  // zero-copy slices into this machine's trunk memory. The machine is
  // unreachable — storage() hides dead machines' state and the fabric
  // rejects their traffic — and the stale image is discarded by
  // RecoverMachine/RestartMachine.
}

MachineId MemoryCloud::BackupOf(MachineId m) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int step = 1; step < options_.num_slaves; ++step) {
    const MachineId candidate = (m + step) % options_.num_slaves;
    if (alive_[candidate].load(std::memory_order_acquire)) return candidate;
  }
  return kInvalidMachine;
}

void MemoryCloud::RefreshRoutingLocked(MachineId m) {
  auto view = std::make_shared<RoutingView>();
  view->stamp = routing_stamp_.load(std::memory_order_acquire);
  const AddressingTable& table = machines_[m].table_replica;
  view->owner.resize(static_cast<std::size_t>(table.num_slots()));
  for (TrunkId t = 0; t < table.num_slots(); ++t) {
    view->owner[static_cast<std::size_t>(t)] = table.machine_of_trunk(t);
  }
  machines_[m].routing.store(std::move(view), std::memory_order_release);
}

void MemoryCloud::RefreshPrimaryRoutingLocked() const {
  auto view = std::make_shared<RoutingView>();
  view->stamp = routing_stamp_.load(std::memory_order_acquire);
  view->owner.resize(static_cast<std::size_t>(primary_table_.num_slots()));
  for (TrunkId t = 0; t < primary_table_.num_slots(); ++t) {
    view->owner[static_cast<std::size_t>(t)] =
        primary_table_.machine_of_trunk(t);
  }
  primary_routing_.store(std::move(view), std::memory_order_release);
}

MachineId MemoryCloud::RouteDst(MachineId src, CellId id) {
  const TrunkId t = TrunkOf(id);
  // RCU fast path: route against this machine's immutable snapshot with no
  // lock taken. The stamp check bounds staleness to the last membership or
  // table change; correctness never depends on it because a wrong owner
  // answers Unavailable and RouteOp re-syncs and retries.
  std::shared_ptr<const RoutingView> view =
      machines_[src].routing.load(std::memory_order_acquire);
  if (view != nullptr &&
      view->stamp == routing_stamp_.load(std::memory_order_acquire)) {
    return view->owner[static_cast<std::size_t>(t)];
  }
  // Slow path: rebuild the snapshot under the lock from the (possibly still
  // stale) table replica — re-sync with the primary stays RouteOp's job.
  std::lock_guard<std::mutex> lock(mu_);
  RefreshRoutingLocked(src);
  return machines_[src].table_replica.machine_of_trunk(t);
}

Status MemoryCloud::RouteOp(MachineId src, CellOp op, CellId id,
                            Slice payload, std::string* response,
                            CallContext* ctx) {
  const RetryPolicy& retry = options_.retry;
  if (!fabric_->IsMachineUp(src)) {
    // A dead machine cannot issue operations — this also keeps the local
    // fast path below from reading a crashed machine's lingering image.
    return Status::Unavailable("source machine is down");
  }
  bool owner_down = false;
  bool src_down = false;
  RetryPolicy::RunHooks hooks;
  hooks.ctx = ctx;
  hooks.salt = Mix64(id) ^ static_cast<std::uint64_t>(src);
  // Exponential backoff in simulated time: the stall is charged to the
  // retrying endpoint's CPU meter so the cost model sees it, and every run
  // of a given seed waits the exact same (jittered) amount.
  hooks.charge = [&](double micros) { fabric_->AddCpuMicros(src, micros); };
  hooks.keep_trying = [&] {
    if (!fabric_->IsMachineUp(src)) {
      // The source crashed between attempts; its ghost image must not
      // serve the local fast path below.
      src_down = true;
      return false;
    }
    return true;
  };
  Status last = retry.Run(hooks, [&](int) -> Status {
    const MachineId dst = RouteDst(src, id);
    Status s;
    if (dst == src && StorageOf(src) != nullptr) {
      net::Fabric::MeterScope meter(*fabric_, src);
      s = ExecuteLocal(src, op, id, payload, response);
    } else {
      const std::string request =
          EncodeCellOp(static_cast<std::uint8_t>(op), id, payload);
      s = fabric_->Call(src, dst, kCellOpHandler, Slice(request),
                        response, ctx);
    }
    // Unavailable: our table replica is stale ("trunk not hosted"), the
    // owner crashed, or a fault was injected on the wire. TimedOut is the
    // injected lost-response case — equally retriable. Everything else is a
    // definitive answer (including Aborted: the source is a fenced, deposed
    // primary and must not spin).
    if (!s.IsRetryable()) return s;
    // Degraded-read failover: a read blocked by a dead *or partitioned*
    // owner is served by any in-sync replica immediately, before (and
    // without) any promotion work.
    if (replicated() &&
        (op == CellOp::kGet || op == CellOp::kContains)) {
      bool served = false;
      Status rs = TryReplicaRead(src, op, id, response, &served, ctx);
      if (served) return rs;
    }
    owner_down = !fabric_->IsMachineUp(dst);
    if (owner_down) {
      if (replicated()) {
        if (options_.auto_promote) {
          // Promotion failover: a metadata flip (epoch bump + table move),
          // no TFS reads unless every replica of a trunk died with the
          // owner. The retry below routes to the promoted primary.
          Status rs = RecoverMachine(dst);
          if (!rs.ok()) return rs;
        } else {
          // Writes stay retryable until the sweep promotes.
          return Status::Unavailable(
              "owner down; promotion pending for trunk " +
              std::to_string(TrunkOf(id)) + " (retry)");
        }
      } else if (options_.tfs != nullptr) {
        Status rs = RecoverMachine(dst);
        if (!rs.ok()) return rs;
      } else {
        // Pure in-memory mode: no recovery path exists, but the replica can
        // still be merely stale — MigrateTrunk/RebalanceTrunks move trunks
        // without any crash. Re-sync from the primary table and retry only
        // if it names a different (live) owner.
        std::lock_guard<std::mutex> lock(mu_);
        if (primary_table_.machine_of_trunk(TrunkOf(id)) == dst) {
          return Status::Unavailable(
              "owner unrecoverable: machine " + std::to_string(dst) +
              " is down and no TFS is configured for recovery");
        }
      }
    }
    // §6.2: "machine A will wait for the addressing table to be updated,
    // and attempt to access the item again."
    std::lock_guard<std::mutex> lock(mu_);
    machines_[src].table_replica = primary_table_;
    RefreshRoutingLocked(src);
    return s;
  });
  if (src_down) return Status::Unavailable("source machine is down");
  if (!last.IsRetryable()) return last;
  // Bounded attempts exhausted — name the terminal condition precisely so
  // callers can tell a dead owner from a table that never converges.
  if (owner_down) {
    return Status::Unavailable("owner unrecoverable after " +
                               std::to_string(retry.max_attempts) +
                               " attempts: " + last.message());
  }
  return Status::Unavailable("addressing table permanently stale after " +
                             std::to_string(retry.max_attempts) +
                             " attempts: " + last.message());
}

// Single-cell *mutations* acquire the cell's stripe in the shared
// CellStripes table so they serialize against in-flight guarded operations
// (MultiOp, transaction intent CAS) touching the same cell — a bare write
// can no longer land between a guard's evaluation and its action apply.
// Reads stay lock-free: they cannot invalidate a guard, and the guarded
// paths hold the stripes across their own reads. Re-entrant acquisitions
// from MultiOp's action phase are skipped by the per-thread held list.

Status MemoryCloud::AddCellFrom(MachineId src, CellId id, Slice payload,
                                CallContext* ctx) {
  CellStripes::Guard guard(id);
  return RouteOp(src, CellOp::kAdd, id, payload, nullptr, ctx);
}

Status MemoryCloud::PutCellFrom(MachineId src, CellId id, Slice payload,
                                CallContext* ctx) {
  CellStripes::Guard guard(id);
  return RouteOp(src, CellOp::kPut, id, payload, nullptr, ctx);
}

Status MemoryCloud::GetCellFrom(MachineId src, CellId id, std::string* out,
                                CallContext* ctx) {
  return RouteOp(src, CellOp::kGet, id, Slice(), out, ctx);
}

Status MemoryCloud::RemoveCellFrom(MachineId src, CellId id,
                                   CallContext* ctx) {
  CellStripes::Guard guard(id);
  return RouteOp(src, CellOp::kRemove, id, Slice(), nullptr, ctx);
}

Status MemoryCloud::AppendToCellFrom(MachineId src, CellId id, Slice suffix,
                                     CallContext* ctx) {
  CellStripes::Guard guard(id);
  return RouteOp(src, CellOp::kAppend, id, suffix, nullptr, ctx);
}

Status MemoryCloud::MultiOp(MachineId src, CellOp op,
                            std::span<const CellId> ids,
                            std::vector<MultiGetResult>* out,
                            CallContext* ctx) {
  if (out == nullptr) return Status::InvalidArgument("no output vector");
  out->assign(ids.size(), MultiGetResult{});
  if (ids.empty()) return Status::OK();
  if (!fabric_->IsMachineUp(src)) {
    return Status::Unavailable("source machine is down");
  }
  // Group the batch by owner via the lock-free snapshot. std::map keeps the
  // per-machine call order deterministic for the fault injector.
  std::map<MachineId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    groups[RouteDst(src, ids[i])].push_back(i);
  }
  // Ids whose batched path failed retriably fall back to the single-id
  // RouteOp, which owns re-sync, degraded reads, and promotion failover.
  std::vector<std::size_t> fallback;
  for (const auto& [dst, indices] : groups) {
    auto store = StorageOf(src);
    if (dst == src && store != nullptr) {
      // Local group: answer straight from the trunks, one accessor per id.
      net::Fabric::MeterScope meter(*fabric_, src);
      for (std::size_t i : indices) {
        storage::MemoryTrunk* trunk = store->trunk(TrunkOf(ids[i]));
        if (trunk == nullptr) {
          fallback.push_back(i);  // Snapshot was stale for this id.
          continue;
        }
        if (op == CellOp::kContains) {
          if (trunk->Contains(ids[i])) (*out)[i].status = Status::OK();
          continue;
        }
        storage::MemoryTrunk::ConstAccessor accessor;
        Status s = trunk->Access(ids[i], &accessor);
        if (s.ok()) {
          (*out)[i].value.assign(accessor.data().data(),
                                 accessor.data().size());
          (*out)[i].status = Status::OK();
        }
      }
      continue;
    }
    // Remote group: one packed request for the whole machine.
    BinaryWriter writer;
    writer.PutU8(static_cast<std::uint8_t>(op));
    writer.PutU32(static_cast<std::uint32_t>(indices.size()));
    for (std::size_t i : indices) writer.PutU64(ids[i]);
    const std::string request = writer.Release();
    std::string response;
    Status s = fabric_->Call(src, dst, kMultiGetHandler, Slice(request),
                             &response, ctx);
    if (!s.ok()) {
      // Stale routing, dead owner, or injected fault: every id in the group
      // retries individually so failover semantics match GetCellFrom.
      fallback.insert(fallback.end(), indices.begin(), indices.end());
      continue;
    }
    // The response holds one packed record per *found* id; ids the owner did
    // not report keep their NotFound default.
    std::map<CellId, std::vector<std::size_t>> by_id;
    for (std::size_t i : indices) by_id[ids[i]].push_back(i);
    compute::ForEachPackedRecord(Slice(response),
                                 [&](CellId id, Slice bytes) {
      auto it = by_id.find(id);
      if (it == by_id.end()) return;
      for (std::size_t i : it->second) {
        (*out)[i].status = Status::OK();
        if (op == CellOp::kGet) {
          (*out)[i].value.assign(bytes.data(), bytes.size());
        }
      }
    });
  }
  for (std::size_t i : fallback) {
    std::string value;
    Status s = RouteOp(src, op, ids[i], Slice(),
                       op == CellOp::kGet ? &value : nullptr, ctx);
    (*out)[i].status = s;
    if (s.ok() && op == CellOp::kGet) (*out)[i].value = std::move(value);
  }
  return Status::OK();
}

Status MemoryCloud::MultiGet(MachineId src, std::span<const CellId> ids,
                             std::vector<MultiGetResult>* out,
                             CallContext* ctx) {
  return MultiOp(src, CellOp::kGet, ids, out, ctx);
}

Status MemoryCloud::MultiContains(MachineId src, std::span<const CellId> ids,
                                  std::vector<MultiGetResult>* out,
                                  CallContext* ctx) {
  return MultiOp(src, CellOp::kContains, ids, out, ctx);
}

Status MemoryCloud::Contains(CellId id, bool* exists) {
  *exists = false;
  Status s = RouteOp(client_id(), CellOp::kContains, id, Slice(), nullptr);
  if (s.ok()) {
    *exists = true;
    return Status::OK();
  }
  if (s.IsNotFound()) return Status::OK();
  return s;  // Unavailable etc. — absence was NOT established.
}

Status MemoryCloud::PersistTableLocked() {
  if (options_.tfs == nullptr) return Status::OK();
  // "An update to the primary table must be applied to the persistent
  // replica before committing" (§6.2).
  return options_.tfs->WriteFile(options_.tfs_prefix + "/addressing_table",
                                 Slice(primary_table_.Serialize()));
}

void MemoryCloud::BroadcastTableLocked() {
  const std::string image = primary_table_.Serialize();
  // New table generation: retire every routing snapshot built before this
  // broadcast, then rebuild the views of the machines the broadcast reaches
  // so their fast paths resume immediately. Machines the broadcast skips
  // (dead ones) rebuild lazily on their first post-restart read.
  routing_stamp_.fetch_add(1, std::memory_order_acq_rel);
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    if (m == leader_) {
      machines_[m].table_replica = primary_table_;
      RefreshRoutingLocked(m);
      continue;
    }
    if (!alive_[m].load(std::memory_order_acquire)) continue;
    // Direct replica install; losing the broadcast is tolerated because a
    // stale machine re-syncs on its next failed access.
    AddressingTable table(0, 1);
    if (AddressingTable::Deserialize(Slice(image), &table).ok()) {
      machines_[m].table_replica = table;
      RefreshRoutingLocked(m);
    }
  }
  RefreshPrimaryRoutingLocked();
}

std::string MemoryCloud::SnapshotPrefixLocked() const {
  if (snapshot_epoch_ == 0) return "";  // Nothing committed yet.
  return options_.tfs_prefix + "/snap_" + std::to_string(snapshot_epoch_);
}

Status MemoryCloud::SnapshotAllLocked() {
  // A dead machine whose trunks have not been reassigned yet is represented
  // only by the *old* epoch plus buffered logs; committing a new epoch now
  // would truncate both and lose its data. Recovery moves the trunks to
  // survivors first and then calls back in here.
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (!alive_[m].load(std::memory_order_acquire) &&
        !primary_table_.trunks_of(m).empty()) {
      return Status::Unavailable("machine " + std::to_string(m) +
                                 " awaits recovery; snapshot deferred");
    }
  }
  // Stage the new epoch next to the committed one; nothing below touches
  // the previous epoch's files until the pointer flip succeeds.
  const std::uint64_t epoch = snapshot_epoch_ + 1;
  const std::string snap_prefix =
      options_.tfs_prefix + "/snap_" + std::to_string(epoch);
  for (int m = 0; m < options_.num_slaves; ++m) {
    auto store = StorageOf(m);
    if (!alive_[m].load(std::memory_order_acquire) || store == nullptr) {
      continue;
    }
    Status s = store->SaveToTfs(options_.tfs, snap_prefix);
    // A failure here abandons the staging files: the previous snapshot and
    // every buffered log record stay intact, so no recovery path ever sees
    // a truncated snapshot.
    if (!s.ok()) return s;
  }
  Status s = PersistTableLocked();
  if (!s.ok()) return s;
  // Commit point: an atomic pointer flip, the TFS analog of rename(2).
  s = options_.tfs->WriteFile(options_.tfs_prefix + "/snapshot_current",
                              Slice(std::to_string(epoch)));
  if (!s.ok()) return s;
  snapshot_epoch_ = epoch;
  // Only a *committed* snapshot makes the buffered log records redundant.
  for (MachineId m = 0; m < num_endpoints(); ++m) {
    machines_[m].backup_logs.clear();
  }
  reprotect_pending_ = false;  // Every acked write is in this epoch.
  // Garbage-collect superseded epochs (and abandoned staging attempts).
  const std::string keep = snap_prefix + "/";
  for (const std::string& path :
       options_.tfs->List(options_.tfs_prefix + "/snap_")) {
    if (path.compare(0, keep.size(), keep) != 0) {
      options_.tfs->DeleteFile(path);
    }
  }
  return Status::OK();
}

Status MemoryCloud::SaveSnapshot() {
  if (options_.tfs == nullptr) {
    return Status::InvalidArgument("no TFS configured");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotAllLocked();
}

Status MemoryCloud::FailMachine(MachineId m) {
  if (m < 0 || m >= options_.num_slaves) {
    return Status::InvalidArgument("can only fail slaves");
  }
  fabric_->SetMachineDown(m);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[m].store(false, std::memory_order_release);
  routing_stamp_.fetch_add(1, std::memory_order_acq_rel);
  machines_[m].storage.store(nullptr);  // RAM contents are gone.
  machines_[m].backup_logs.clear();  // So are the logs it held as backup.
  // The wiped logs may have been the only copies protecting other
  // primaries' recent writes; the next recovery snapshot re-protects them.
  if (options_.buffered_logging) reprotect_pending_ = true;
  return Status::OK();
}

std::vector<MachineId> MemoryCloud::AliveSlavesLocked() const {
  std::vector<MachineId> result;
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (alive_[m].load(std::memory_order_acquire)) result.push_back(m);
  }
  return result;
}

Status MemoryCloud::ElectLeader() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<MachineId> alive = AliveSlavesLocked();
  if (alive.empty()) return Status::Unavailable("no alive slaves");
  const MachineId candidate = alive.front();
  if (options_.tfs != nullptr) {
    // Fence through TFS so two partitions cannot both elect a leader
    // (§6.2: "the new leader marks a flag on the shared distributed
    // fault-tolerant file system").
    for (int tries = 0; tries < 1000; ++tries) {
      ++leader_epoch_;
      const std::string flag = options_.tfs_prefix + "/leader_epoch_" +
                               std::to_string(leader_epoch_);
      Status s = options_.tfs->CreateExclusive(
          flag, Slice(std::to_string(candidate)));
      if (s.ok()) break;
      if (!s.IsAlreadyExists()) return s;
    }
  }
  leader_ = candidate;
  return Status::OK();
}

Status MemoryCloud::RecoverMachine(MachineId failed) {
  if (options_.tfs == nullptr && !replicated()) {
    return Status::InvalidArgument("recovery requires TFS or replication");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (replicated()) return PromoteReplicasLocked(failed);
  if (alive_[failed].load(std::memory_order_acquire)) {
    alive_[failed].store(false, std::memory_order_release);
    fabric_->SetMachineDown(failed);
  }
  // Covers both the explicit-failure path and an injected crash whose stale
  // memory image was deliberately kept alive until now (see OnInjectedCrash).
  machines_[failed].storage.store(nullptr);
  if (leader_ == failed || !alive_[leader_].load(std::memory_order_acquire)) {
    // Leader is gone; elect a new one (inline, we already hold the state).
    const std::vector<MachineId> alive = AliveSlavesLocked();
    if (alive.empty()) return Status::Unavailable("no alive slaves");
    leader_ = alive.front();
    if (options_.tfs != nullptr) {
      ++leader_epoch_;
      options_.tfs->CreateExclusive(
          options_.tfs_prefix + "/leader_epoch_" +
              std::to_string(leader_epoch_),
          Slice(std::to_string(leader_)));
    }
  }
  const std::vector<MachineId> targets = AliveSlavesLocked();
  if (targets.empty()) return Status::Unavailable("no recovery targets");
  const std::vector<TrunkId> trunks = primary_table_.trunks_of(failed);
  if (trunks.empty()) {
    // Nothing to reload — but the dead machine still took its backup-log
    // buffers with it, so the survivors' recent writes may have lost their
    // only log copies. Cut the re-protection snapshot before declaring the
    // crash handled (a trunkless machine can die holding logs: it was
    // restarted empty after an earlier failure, yet served as backup).
    if (reprotect_pending_) {
      Status s = SnapshotAllLocked();
      if (!s.ok() && !s.IsUnavailable()) return s;
    }
    return Status::OK();
  }

  // "During recovery, the leader reloads data owned by the failed machine
  // to other alive machines, updates the primary addressing table and
  // broadcasts it" (§6.2). Trunks load from the last *committed* snapshot
  // epoch; a half-written staging epoch is invisible here.
  const std::string snap_prefix = SnapshotPrefixLocked();
  std::size_t next = 0;
  for (TrunkId t : trunks) {
    const MachineId target = targets[next++ % targets.size()];
    auto target_store = StorageOf(target);
    if (target_store == nullptr) {
      return Status::Unavailable("recovery target lost its storage");
    }
    std::unique_ptr<storage::MemoryTrunk> trunk;
    Status s = snap_prefix.empty()
                   ? Status::NotFound("no committed snapshot")
                   : storage::MemoryStorage::LoadTrunkFromTfs(
                         options_.tfs, snap_prefix, t,
                         options_.storage.trunk, &trunk);
    if (s.IsNotFound()) {
      // Never snapshotted: recover an empty trunk (plus log replay below).
      s = storage::MemoryTrunk::Create(options_.storage.trunk, &trunk);
    }
    if (!s.ok()) return s;
    s = target_store->AttachTrunk(t, std::move(trunk));
    if (!s.ok()) return s;
    primary_table_.MoveTrunk(t, target);
  }

  // Replay buffered log records held for the failed primary. Records may be
  // spread over several backups (the backup choice follows liveness) and a
  // retried log call can deposit the same record twice, so gather them all,
  // order by sequence number and replay each seq exactly once.
  std::vector<LogRecord> replay;
  for (int m = 0; m < options_.num_slaves; ++m) {
    if (!alive_[m]) continue;
    auto it = machines_[m].backup_logs.find(failed);
    if (it == machines_[m].backup_logs.end()) continue;
    for (LogRecord& record : it->second) replay.push_back(std::move(record));
    machines_[m].backup_logs.erase(it);
  }
  std::sort(replay.begin(), replay.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.seq < b.seq;
            });
  std::uint64_t last_seq = 0;
  for (const LogRecord& record : replay) {
    if (record.seq == last_seq) continue;  // Duplicate from a retried call.
    last_seq = record.seq;
    const TrunkId t = TrunkOf(record.id);
    const MachineId owner = primary_table_.machine_of_trunk(t);
    auto owner_store = StorageOf(owner);
    if (owner_store == nullptr) continue;
    storage::MemoryTrunk* trunk = owner_store->trunk(t);
    if (trunk == nullptr) continue;
    switch (record.op) {
      case CellOp::kAdd:
      case CellOp::kPut:
        trunk->PutCell(record.id, Slice(record.payload));
        break;
      case CellOp::kRemove:
        trunk->RemoveCell(record.id);
        break;
      case CellOp::kAppend:
        trunk->AppendToCell(record.id, Slice(record.payload));
        break;
      default:
        break;
    }
  }

  // Re-protect the survivors: the failed machine may have held the only
  // backup log copies for other primaries, and those records died with it.
  // Cutting a fresh snapshot (which also persists the updated table)
  // restores full durability — the equivalent of RAMCloud re-replicating a
  // dead backup's log segments. Unavailable means another machine is down
  // with trunks still unassigned; its recovery will cut the snapshot.
  Status s = SnapshotAllLocked();
  if (!s.ok() && !s.IsUnavailable()) return s;
  if (!s.ok()) {
    // The table moved trunks even though the snapshot was deferred.
    Status ps = PersistTableLocked();
    if (!ps.ok()) return ps;
  }
  BroadcastTableLocked();
  return Status::OK();
}

Status MemoryCloud::PromoteReplicasLocked(MachineId failed) {
  // Classify the failure. A fabric endpoint that is still up but failed its
  // heartbeats is partitioned, not crashed: depose it (promote its trunks
  // away, fence its epoch) but keep its endpoint and memory image — the
  // stale primary the split-brain tests aim at. A down endpoint is a real
  // crash: its lingering image (kept by OnInjectedCrash for zero-copy
  // safety) is a ghost and is discarded here.
  if (alive_[failed].load(std::memory_order_acquire)) {
    if (!fabric_->IsMachineUp(failed)) machines_[failed].storage.store(nullptr);
    alive_[failed].store(false, std::memory_order_release);
  } else if (!fabric_->IsMachineUp(failed)) {
    machines_[failed].storage.store(nullptr);
  }
  routing_stamp_.fetch_add(1, std::memory_order_acq_rel);
  machines_[failed].backup_logs.clear();
  if (leader_ == failed || !alive_[leader_].load(std::memory_order_acquire)) {
    const std::vector<MachineId> alive = AliveSlavesLocked();
    if (alive.empty()) return Status::Unavailable("no alive slaves");
    leader_ = alive.front();
    if (options_.tfs != nullptr) {
      ++leader_epoch_;
      options_.tfs->CreateExclusive(
          options_.tfs_prefix + "/leader_epoch_" +
              std::to_string(leader_epoch_),
          Slice(std::to_string(leader_)));
    }
  }
  // The failed machine's replica trunks are ghosts (crash) or unreachable
  // behind a partition; drop it from every in-sync set.
  primary_table_.RemoveReplicaEverywhere(failed);
  const std::vector<TrunkId> owned = primary_table_.trunks_of(failed);
  if (owned.empty()) {
    Status ps = PersistTableLocked();
    if (!ps.ok()) return ps;
    BroadcastTableLocked();
    return Status::OK();
  }
  const std::vector<MachineId> survivors = AliveSlavesLocked();
  if (survivors.empty()) return Status::Unavailable("no alive slaves");
  const std::string snap_prefix =
      options_.tfs == nullptr ? std::string() : SnapshotPrefixLocked();
  int promoted = 0;
  int reloaded = 0;
  std::size_t rr = 0;
  for (TrunkId t : owned) {
    MachineId target = kInvalidMachine;
    std::shared_ptr<storage::MemoryStorage> target_store;
    for (MachineId r : primary_table_.replicas_of_trunk(t)) {
      auto store = StorageOf(r);
      if (alive_[r].load(std::memory_order_acquire) && store != nullptr &&
          store->replica_trunk(t) != nullptr) {
        target = r;
        target_store = std::move(store);
        break;
      }
    }
    if (target != kInvalidMachine) {
      // The hot path: an O(1) ownership flip. No trunk bytes move and no
      // TFS file is read — the acceptance criterion the chaos tests assert
      // via the TFS read counters.
      Status s = target_store->PromoteReplicaTrunk(t);
      if (!s.ok()) return s;
      primary_table_.MoveTrunk(t, target);  // Bumps the fencing epoch.
      primary_table_.RemoveReplica(t, target);  // Promoted: now primary.
      ++promoted;
      continue;
    }
    // Every in-memory replica of this trunk died with its primary — the
    // one case where the TFS cold tier is consulted.
    if (options_.tfs == nullptr) {
      return Status::Unavailable("trunk " + std::to_string(t) +
                                 " lost: all replicas dead and no TFS "
                                 "cold tier configured");
    }
    const MachineId tgt = survivors[rr++ % survivors.size()];
    auto tgt_store = StorageOf(tgt);
    if (tgt_store == nullptr) {
      return Status::Unavailable("recovery target lost its storage");
    }
    std::unique_ptr<storage::MemoryTrunk> trunk;
    Status s = snap_prefix.empty()
                   ? Status::NotFound("no committed snapshot")
                   : storage::MemoryStorage::LoadTrunkFromTfs(
                         options_.tfs, snap_prefix, t,
                         options_.storage.trunk, &trunk);
    if (s.IsNotFound()) {
      // Never snapshotted: writes since creation are lost with the last
      // replica; restart the trunk empty so the cluster keeps serving.
      s = storage::MemoryTrunk::Create(options_.storage.trunk, &trunk);
    }
    if (!s.ok()) return s;
    if (tgt_store->replica_trunk(t) != nullptr) {
      // A stale (not in-sync) replica image is superseded by the reload.
      tgt_store->DetachReplicaTrunk(t);
    }
    s = tgt_store->AttachTrunk(t, std::move(trunk));
    if (!s.ok()) return s;
    primary_table_.MoveTrunk(t, tgt);
    primary_table_.RemoveReplica(t, tgt);
    ++reloaded;
  }
  // Simulated time-to-promote: per-trunk metadata flips plus the broadcast
  // fan-out, charged to the leader so the cost model sees the stall. Cold
  // reloads are orders of magnitude slower (disk + deserialize).
  const double promote_micros = 10.0 * static_cast<double>(owned.size()) +
                                5.0 * static_cast<double>(survivors.size()) +
                                500.0 * static_cast<double>(reloaded);
  fabric_->AddCpuMicros(leader_, promote_micros);
  recovery_stats_.promotions.fetch_add(promoted, std::memory_order_relaxed);
  recovery_stats_.tfs_fallback_reloads.fetch_add(reloaded,
                                                 std::memory_order_relaxed);
  recovery_stats_.last_promote_micros.store(
      static_cast<std::uint64_t>(promote_micros), std::memory_order_relaxed);
  // Until re-replication runs, promotion is all the recovery there is.
  recovery_stats_.last_full_replication_micros.store(
      static_cast<std::uint64_t>(promote_micros), std::memory_order_relaxed);
  Status ps = PersistTableLocked();
  if (!ps.ok()) return ps;
  BroadcastTableLocked();
  return Status::OK();
}

int MemoryCloud::DetectAndRecover(SweepReport* report) {
  int recovered = 0;
  const auto record = [&](MachineId m, const Status& rs) {
    if (rs.ok()) {
      ++recovered;
      if (report != nullptr) report->recovered.push_back(m);
    } else if (report != nullptr) {
      // The machine stays marked down (RecoverMachine flips alive_ before
      // doing any fallible work), so the next sweep retries it; surface
      // the error instead of discarding it.
      report->failed.emplace_back(m, rs);
    }
  };
  // A dead leader cannot probe anyone (the fabric rejects traffic from down
  // machines), so first recover the leader itself — which elects a live
  // successor — before sweeping the cluster with heartbeats.
  MachineId leader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leader = leader_;
  }
  if (!fabric_->IsMachineUp(leader)) {
    record(leader, RecoverMachine(leader));
  }
  for (int m = 0; m < options_.num_slaves; ++m) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!alive_[m].load(std::memory_order_acquire)) {
        // Known dead. Recover if it still owns trunks, or if its death took
        // backup-log copies that have not been re-protected yet; otherwise
        // the crash is fully handled.
        if (primary_table_.trunks_of(m).empty() && !reprotect_pending_) {
          continue;
        }
      }
    }
    // Heartbeat from the leader (§6.2: "Trinity uses heartbeat messages to
    // proactively detect machine failures"). Retried under the same policy
    // as routing: a single injected call failure or lost response must not
    // condemn a healthy machine to a (costly) false recovery.
    RetryPolicy::RunHooks hooks;
    hooks.salt = Mix64(static_cast<std::uint64_t>(m) + 3);
    hooks.charge = [&](double micros) {
      fabric_->AddCpuMicros(leader_, micros);
    };
    Status s = options_.retry.Run(hooks, [&](int) -> Status {
      std::string pong;
      return fabric_->Call(leader_, m, kHeartbeatHandler, Slice(), &pong);
    });
    if (s.IsRetryable()) {
      record(m, RecoverMachine(m));
    }
  }
  // Background repair: restore the replication factor across the survivors
  // once promotions have drained.
  if (replicated() && options_.rereplicate_on_recover) {
    const int repaired = ReReplicate();
    if (report != nullptr) report->rereplicated_trunks = repaired;
  }
  return recovered;
}

std::uint64_t MemoryCloud::ReplicaMemoryBytes() const {
  std::uint64_t total = 0;
  for (int m = 0; m < options_.num_slaves; ++m) {
    auto store = StorageOf(m);
    if (alive_[m].load(std::memory_order_acquire) && store != nullptr) {
      total += store->ReplicaFootprintBytes();
    }
  }
  return total;
}

net::RecoveryStats MemoryCloud::recovery_stats() const {
  // Lock-free snapshot of the relaxed counters; fields may be mutually
  // inconsistent for an instant, which is fine for observability data.
  net::RecoveryStats out;
  out.promotions = recovery_stats_.promotions.load(std::memory_order_relaxed);
  out.last_promote_micros =
      recovery_stats_.last_promote_micros.load(std::memory_order_relaxed);
  out.last_full_replication_micros =
      recovery_stats_.last_full_replication_micros.load(
          std::memory_order_relaxed);
  out.bytes_rereplicated =
      recovery_stats_.bytes_rereplicated.load(std::memory_order_relaxed);
  out.trunks_rereplicated =
      recovery_stats_.trunks_rereplicated.load(std::memory_order_relaxed);
  out.degraded_reads =
      recovery_stats_.degraded_reads.load(std::memory_order_relaxed);
  out.fenced_writes =
      recovery_stats_.fenced_writes.load(std::memory_order_relaxed);
  out.tfs_fallback_reloads =
      recovery_stats_.tfs_fallback_reloads.load(std::memory_order_relaxed);
  return out;
}

int MemoryCloud::ReReplicate() {
  if (!replicated()) return 0;
  struct Job {
    TrunkId trunk;
    MachineId primary;
    MachineId target;
  };
  std::vector<Job> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<MachineId> alive = AliveSlavesLocked();
    if (alive.size() < 2) return 0;
    for (TrunkId t = 0; t < primary_table_.num_slots(); ++t) {
      const MachineId primary = primary_table_.machine_of_trunk(t);
      if (!alive_[primary].load(std::memory_order_acquire) ||
          StorageOf(primary) == nullptr) {
        continue;  // Awaiting promotion; not repairable yet.
      }
      // Desired placement under the current membership. Rendezvous scores
      // of the survivors are unchanged by the departure, so only the lost
      // replicas re-place (consistent-hashing stability); extra holders are
      // trimmed below, but only after the desired set is fully present.
      const std::vector<MachineId> want = ReplicaTargets(
          t, primary, options_.replication_factor, alive);
      const std::vector<MachineId>& have = primary_table_.replicas_of_trunk(t);
      for (MachineId w : want) {
        if (std::find(have.begin(), have.end(), w) == have.end()) {
          jobs.push_back(Job{t, primary, w});
        }
      }
    }
  }
  if (jobs.empty()) return 0;
  // Canonical order: injected faults must hit the same calls run after run.
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.trunk != b.trunk) return a.trunk < b.trunk;
    return a.target < b.target;
  });
  // Parallel partitioned serialization: the source images are built
  // concurrently on the pool (the expensive, CPU-bound half), then shipped
  // *sequentially* in canonical order so the fault injector's PRNG — and
  // therefore every chaos seed's behavior — is consumed identically run to
  // run. Mirrors the BSP engine's parallel-compute/sequential-traffic
  // determinism pattern.
  std::vector<std::string> images(jobs.size());
  std::vector<Status> serialize_status(jobs.size(), Status::OK());
  ThreadPool pool(0);
  pool.ParallelFor(static_cast<int>(jobs.size()), [&](int i) {
    auto store = StorageOf(jobs[i].primary);
    storage::MemoryTrunk* source =
        store == nullptr ? nullptr : store->trunk(jobs[i].trunk);
    if (source == nullptr) {
      serialize_status[i] = Status::Unavailable("source trunk vanished");
      return;
    }
    serialize_status[i] = source->Serialize(&images[i]);
  });
  int installed = 0;
  std::uint64_t shipped_bytes = 0;
  std::map<MachineId, double> per_target_micros;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    if (!serialize_status[i].ok()) continue;
    if (!fabric_->IsMachineUp(job.primary) ||
        !fabric_->IsMachineUp(job.target)) {
      continue;  // A crash got here first; the next sweep retries.
    }
    // Charge the serialization to the source machine's CPU meter.
    fabric_->AddCpuMicros(job.primary,
                          static_cast<double>(images[i].size()) * 0.0005);
    BinaryWriter writer;
    writer.PutI32(job.trunk);
    writer.PutBytes(Slice(images[i]));
    std::string unused;
    Status s = fabric_->Call(job.primary, job.target, kReplicaInstallHandler,
                             Slice(writer.buffer()), &unused);
    if (!s.ok() || !fabric_->IsMachineUp(job.target)) continue;
    std::lock_guard<std::mutex> lock(mu_);
    // Commit only if the world did not shift underneath the transfer (an
    // injected crash during the Call can trigger promotions).
    if (primary_table_.machine_of_trunk(job.trunk) == job.primary &&
        alive_[job.target].load(std::memory_order_acquire)) {
      primary_table_.AddReplica(job.trunk, job.target);
      ++installed;
      shipped_bytes += images[i].size();
      per_target_micros[job.target] +=
          50.0 + static_cast<double>(images[i].size()) * 0.001;
    }
  }
  if (installed > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    recovery_stats_.trunks_rereplicated.fetch_add(installed,
                                                  std::memory_order_relaxed);
    recovery_stats_.bytes_rereplicated.fetch_add(shipped_bytes,
                                                 std::memory_order_relaxed);
    // Modeled wall time of the parallel transfer: each destination installs
    // its images serially, destinations proceed in parallel — the slowest
    // destination bounds time-to-full-replication.
    double slowest = 0;
    for (const auto& [target, micros] : per_target_micros) {
      (void)target;
      slowest = std::max(slowest, micros);
    }
    recovery_stats_.last_full_replication_micros.store(
        recovery_stats_.last_promote_micros.load(std::memory_order_relaxed) +
            static_cast<std::uint64_t>(slowest),
        std::memory_order_relaxed);
    Status ps = PersistTableLocked();
    (void)ps;  // Best effort: the next sweep re-persists.
    BroadcastTableLocked();
  }
  // Convergence: once a trunk's desired placement is fully in sync, holders
  // outside it (membership-churn leftovers, e.g. after failback or a trunk
  // migration) are detached so the factor is exactly k — bounding replica
  // memory and write fan-out. A trunk with a missing install keeps its
  // surplus stand-ins; trimming never drops the copy count below target.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::vector<MachineId> alive = AliveSlavesLocked();
    int trimmed = 0;
    for (TrunkId t = 0;
         alive.size() >= 2 && t < primary_table_.num_slots(); ++t) {
      const MachineId primary = primary_table_.machine_of_trunk(t);
      if (!alive_[primary].load(std::memory_order_acquire)) continue;
      const std::vector<MachineId> want = ReplicaTargets(
          t, primary, options_.replication_factor, alive);
      // Copied: RemoveReplica below mutates the table's vector.
      const std::vector<MachineId> have = primary_table_.replicas_of_trunk(t);
      bool complete = true;
      for (MachineId w : want) {
        if (std::find(have.begin(), have.end(), w) == have.end()) {
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      for (MachineId h : have) {
        if (std::find(want.begin(), want.end(), h) != want.end()) continue;
        primary_table_.RemoveReplica(t, h);
        auto holder = StorageOf(h);
        if (alive_[h].load(std::memory_order_acquire) && holder != nullptr) {
          holder->DetachReplicaTrunk(t);
        }
        ++trimmed;
      }
    }
    if (trimmed > 0) {
      Status ps = PersistTableLocked();
      (void)ps;
      BroadcastTableLocked();
    }
  }
  return installed;
}

Status MemoryCloud::MigrateTrunk(TrunkId trunk, MachineId to) {
  MachineId from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (trunk < 0 || trunk >= primary_table_.num_slots()) {
      return Status::InvalidArgument("trunk out of range");
    }
    if (to < 0 || to >= options_.num_slaves ||
        !alive_[to].load(std::memory_order_acquire)) {
      return Status::InvalidArgument("destination is not an alive slave");
    }
    from = primary_table_.machine_of_trunk(trunk);
    if (from == to) return Status::OK();
    if (!alive_[from].load(std::memory_order_acquire) ||
        StorageOf(from) == nullptr) {
      return Status::Unavailable("source machine is down");
    }
  }
  // 1. Serialize the trunk at the source (metered as its CPU work).
  auto from_store = StorageOf(from);
  if (from_store == nullptr) {
    return Status::Unavailable("source machine is down");
  }
  storage::MemoryTrunk* source = from_store->trunk(trunk);
  if (source == nullptr) return Status::NotFound("trunk not hosted at source");
  std::string image;
  {
    net::Fabric::MeterScope meter(*fabric_, from);
    Status s = source->Serialize(&image);
    if (!s.ok()) return s;
  }
  // 2. Ship the image to the destination over the fabric.
  BinaryWriter writer;
  writer.PutI32(trunk);
  writer.PutBytes(Slice(image));
  std::string unused;
  Status s = fabric_->Call(from, to, kTrunkMigrateHandler,
                           Slice(writer.buffer()), &unused);
  if (!s.ok() || !fabric_->IsMachineUp(to)) {
    // Roll back: nothing was committed — the source still owns the trunk
    // and the addressing table is untouched. If the destination managed to
    // attach the image before the failure surfaced, detach it so exactly
    // one replica stays authoritative.
    std::lock_guard<std::mutex> lock(mu_);
    auto to_store = StorageOf(to);
    if (alive_[to].load(std::memory_order_acquire) && to_store != nullptr) {
      to_store->DetachTrunk(trunk);  // NotFound is fine.
    }
    return s.ok() ? Status::Unavailable(
                        "destination crashed during trunk migration")
                  : s;
  }
  // 3. Drop the source copy and commit the new ownership. The source may
  // have crashed after the hand-off (its copy died with it); the commit
  // still proceeds — the destination now holds the only live replica, which
  // is exactly the re-drive a leader performs for a half-finished migration.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_[from].load(std::memory_order_acquire) &&
        StorageOf(from) != nullptr) {
      Status ds = StorageOf(from)->DetachTrunk(trunk);
      if (!ds.ok()) return ds;
    }
    if (replicated()) {
      // The destination may have held a replica of this trunk; the primary
      // image it just received supersedes it, and a machine never appears
      // in its own trunk's in-sync set.
      auto to_store = StorageOf(to);
      if (to_store != nullptr &&
          to_store->replica_trunk(trunk) != nullptr) {
        to_store->DetachReplicaTrunk(trunk);
      }
      primary_table_.RemoveReplica(trunk, to);
    }
    primary_table_.MoveTrunk(trunk, to);
    Status ps = PersistTableLocked();
    if (!ps.ok()) return ps;
    BroadcastTableLocked();
  }
  return Status::OK();
}

int MemoryCloud::RebalanceTrunks() {
  int moved = 0;
  for (;;) {
    TrunkId candidate = -1;
    MachineId from = kInvalidMachine, to = kInvalidMachine;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Find the most- and least-loaded alive slaves.
      std::size_t max_count = 0, min_count = ~std::size_t{0};
      for (MachineId m = 0; m < options_.num_slaves; ++m) {
        if (!alive_[m].load(std::memory_order_acquire) ||
            StorageOf(m) == nullptr) {
          continue;
        }
        const std::size_t count = primary_table_.trunks_of(m).size();
        if (count > max_count) {
          max_count = count;
          from = m;
        }
        if (count < min_count) {
          min_count = count;
          to = m;
        }
      }
      if (from == kInvalidMachine || to == kInvalidMachine ||
          max_count <= min_count + 1) {
        break;  // Balanced within one trunk.
      }
      candidate = primary_table_.trunks_of(from).front();
    }
    if (!MigrateTrunk(candidate, to).ok()) break;
    ++moved;
  }
  return moved;
}

void MemoryCloud::DesyncReplicaForTest(MachineId m) {
  std::lock_guard<std::mutex> lock(mu_);
  machines_[m].table_replica =
      AddressingTable(options_.p_bits, options_.num_slaves);
  // Install a snapshot of the *stale* table: the fast path must route per
  // the desynced view so RouteOp's transparent re-sync is exercised.
  RefreshRoutingLocked(m);
}

Status MemoryCloud::RestartMachine(MachineId m) {
  if (m < 0 || m >= options_.num_slaves) {
    return Status::InvalidArgument("can only restart slaves");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (alive_[m].load(std::memory_order_acquire)) {
    return Status::AlreadyExists("machine is up");
  }
  machines_[m].storage.store(
      std::make_shared<storage::MemoryStorage>(options_.storage),
      std::memory_order_release);
  machines_[m].table_replica = primary_table_;
  machines_[m].next_log_seq = 1;
  alive_[m].store(true, std::memory_order_release);
  RefreshRoutingLocked(m);
  fabric_->SetMachineUp(m);
  RegisterHandlers(m);
  return Status::OK();
}

}  // namespace trinity::cloud
