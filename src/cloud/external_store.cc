#include "cloud/external_store.h"

#include <filesystem>

#include "common/hash.h"

namespace trinity::cloud {

namespace {
// Record layout at each handle offset: [u32 length][u64 checksum][bytes].
constexpr std::uint64_t kRecordHeader = 12;
}  // namespace

Status ExternalStore::Open(const std::string& path,
                           std::unique_ptr<ExternalStore>* out) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::unique_ptr<ExternalStore> store(new ExternalStore(path));
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  if (!std::filesystem::exists(path)) {
    std::ofstream create(path, std::ios::binary);  // Touch.
    if (!create) return Status::IOError("cannot create " + path);
  }
  store->end_offset_ = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  *out = std::move(store);
  return Status::OK();
}

Status ExternalStore::Store(Slice blob, std::uint64_t* handle) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open " + path_);
  const std::uint32_t length = static_cast<std::uint32_t>(blob.size());
  const std::uint64_t checksum = HashSlice(blob);
  out.write(reinterpret_cast<const char*>(&length), 4);
  out.write(reinterpret_cast<const char*>(&checksum), 8);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return Status::IOError("short write to " + path_);
  *handle = end_offset_;
  end_offset_ += kRecordHeader + blob.size();
  ++blob_count_;
  byte_count_ += blob.size();
  return Status::OK();
}

Status ExternalStore::Fetch(std::uint64_t handle, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle + kRecordHeader > end_offset_) {
    return Status::NotFound("handle beyond store");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path_);
  in.seekg(static_cast<std::streamoff>(handle));
  std::uint32_t length = 0;
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&length), 4);
  in.read(reinterpret_cast<char*>(&checksum), 8);
  if (!in || handle + kRecordHeader + length > end_offset_) {
    return Status::Corruption("bad external record header");
  }
  out->resize(length);
  in.read(out->data(), length);
  if (!in) return Status::Corruption("short external record");
  if (HashSlice(Slice(*out)) != checksum) {
    return Status::Corruption("external record checksum mismatch");
  }
  return Status::OK();
}

}  // namespace trinity::cloud
