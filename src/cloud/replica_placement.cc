#include "cloud/replica_placement.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/hash.h"

namespace trinity::cloud {

namespace {

/// Pseudo-random rendezvous weight for hosting `trunk` on `machine`.
/// Distinct stream from TrunkHash/InTrunkHash so placement is independent of
/// key routing. +1 offsets keep trunk 0 / machine 0 away from the Mix64
/// fixed-point-ish small inputs.
std::uint64_t PlacementScore(TrunkId trunk, MachineId machine) {
  const std::uint64_t t = static_cast<std::uint64_t>(trunk) + 1;
  const std::uint64_t m = static_cast<std::uint64_t>(machine) + 1;
  return Mix64(t * 0x9ddfea08eb382d69ULL ^ Mix64(m * 0xc2b2ae3d27d4eb4fULL));
}

}  // namespace

std::vector<MachineId> ReplicaTargets(
    TrunkId trunk, MachineId primary, int replication_factor,
    const std::vector<MachineId>& candidates) {
  std::vector<std::pair<std::uint64_t, MachineId>> scored;
  scored.reserve(candidates.size());
  for (MachineId m : candidates) {
    if (m == primary) continue;
    scored.emplace_back(PlacementScore(trunk, m), m);
  }
  // Descending score; machine id breaks (astronomically unlikely) ties so
  // the result is independent of the candidate ordering.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const std::size_t k = std::min<std::size_t>(
      replication_factor < 0 ? 0 : static_cast<std::size_t>(replication_factor),
      scored.size());
  std::vector<MachineId> result;
  result.reserve(k);
  for (std::size_t i = 0; i < k; ++i) result.push_back(scored[i].second);
  return result;
}

}  // namespace trinity::cloud
