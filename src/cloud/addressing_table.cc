#include "cloud/addressing_table.h"

#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::cloud {

AddressingTable::AddressingTable(int p_bits, int num_machines)
    : p_bits_(p_bits), version_(1) {
  TRINITY_CHECK(p_bits >= 0 && p_bits <= 20, "unreasonable p_bits");
  TRINITY_CHECK(num_machines >= 1, "need at least one machine");
  const int slots = 1 << p_bits;
  TRINITY_CHECK(slots >= num_machines,
                "need 2^p >= machine count (paper: 2^p > m)");
  slots_.resize(slots);
  for (int i = 0; i < slots; ++i) {
    slots_[i] = static_cast<MachineId>(i % num_machines);
  }
}

std::vector<TrunkId> AddressingTable::trunks_of(MachineId machine) const {
  std::vector<TrunkId> result;
  for (int i = 0; i < num_slots(); ++i) {
    if (slots_[i] == machine) result.push_back(i);
  }
  return result;
}

void AddressingTable::MoveTrunk(TrunkId trunk, MachineId to) {
  TRINITY_CHECK(trunk >= 0 && trunk < num_slots(), "trunk out of range");
  slots_[trunk] = to;
  ++version_;
}

void AddressingTable::EvacuateMachine(MachineId from,
                                      const std::vector<MachineId>& targets) {
  TRINITY_CHECK(!targets.empty(), "no evacuation targets");
  std::size_t next = 0;
  for (int i = 0; i < num_slots(); ++i) {
    if (slots_[i] == from) {
      slots_[i] = targets[next % targets.size()];
      ++next;
    }
  }
  ++version_;
}

std::string AddressingTable::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(p_bits_));
  writer.PutU64(version_);
  writer.PutU32(static_cast<std::uint32_t>(slots_.size()));
  for (MachineId m : slots_) writer.PutI32(m);
  return writer.Release();
}

Status AddressingTable::Deserialize(Slice data, AddressingTable* out) {
  BinaryReader reader(data);
  std::uint32_t p_bits = 0;
  std::uint64_t version = 0;
  std::uint32_t count = 0;
  if (!reader.GetU32(&p_bits) || !reader.GetU64(&version) ||
      !reader.GetU32(&count)) {
    return Status::Corruption("addressing table header");
  }
  if (count != (1u << p_bits)) {
    return Status::Corruption("addressing table slot count mismatch");
  }
  AddressingTable table;
  table.p_bits_ = static_cast<int>(p_bits);
  table.version_ = version;
  table.slots_.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!reader.GetI32(&table.slots_[i])) {
      return Status::Corruption("addressing table slot");
    }
  }
  *out = table;
  return Status::OK();
}

}  // namespace trinity::cloud
