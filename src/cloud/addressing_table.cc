#include "cloud/addressing_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::cloud {

AddressingTable::AddressingTable(int p_bits, int num_machines)
    : p_bits_(p_bits), version_(1) {
  TRINITY_CHECK(p_bits >= 0 && p_bits <= 20, "unreasonable p_bits");
  TRINITY_CHECK(num_machines >= 1, "need at least one machine");
  const int slots = 1 << p_bits;
  TRINITY_CHECK(slots >= num_machines,
                "need 2^p >= machine count (paper: 2^p > m)");
  slots_.resize(slots);
  for (int i = 0; i < slots; ++i) {
    slots_[i] = static_cast<MachineId>(i % num_machines);
  }
  epochs_.assign(slots, 1);
  replicas_.resize(slots);
}

std::vector<TrunkId> AddressingTable::trunks_of(MachineId machine) const {
  std::vector<TrunkId> result;
  for (int i = 0; i < num_slots(); ++i) {
    if (slots_[i] == machine) result.push_back(i);
  }
  return result;
}

void AddressingTable::MoveTrunk(TrunkId trunk, MachineId to) {
  TRINITY_CHECK(trunk >= 0 && trunk < num_slots(), "trunk out of range");
  slots_[trunk] = to;
  ++epochs_[trunk];
  ++version_;
}

void AddressingTable::EvacuateMachine(MachineId from,
                                      const std::vector<MachineId>& targets) {
  TRINITY_CHECK(!targets.empty(), "no evacuation targets");
  std::size_t next = 0;
  for (int i = 0; i < num_slots(); ++i) {
    if (slots_[i] == from) {
      slots_[i] = targets[next % targets.size()];
      ++epochs_[i];
      ++next;
    }
  }
  ++version_;
}

void AddressingTable::SetReplicas(TrunkId trunk,
                                  std::vector<MachineId> replicas) {
  TRINITY_CHECK(trunk >= 0 && trunk < num_slots(), "trunk out of range");
  replicas_[trunk] = std::move(replicas);
  ++version_;
}

bool AddressingTable::AddReplica(TrunkId trunk, MachineId machine) {
  TRINITY_CHECK(trunk >= 0 && trunk < num_slots(), "trunk out of range");
  auto& set = replicas_[trunk];
  if (std::find(set.begin(), set.end(), machine) != set.end()) return false;
  set.push_back(machine);
  ++version_;
  return true;
}

bool AddressingTable::RemoveReplica(TrunkId trunk, MachineId machine) {
  TRINITY_CHECK(trunk >= 0 && trunk < num_slots(), "trunk out of range");
  auto& set = replicas_[trunk];
  auto it = std::find(set.begin(), set.end(), machine);
  if (it == set.end()) return false;
  set.erase(it);
  ++version_;
  return true;
}

int AddressingTable::RemoveReplicaEverywhere(MachineId machine) {
  int removed = 0;
  for (int i = 0; i < num_slots(); ++i) {
    auto& set = replicas_[i];
    auto it = std::find(set.begin(), set.end(), machine);
    if (it != set.end()) {
      set.erase(it);
      ++removed;
    }
  }
  if (removed > 0) ++version_;
  return removed;
}

std::string AddressingTable::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(p_bits_));
  writer.PutU64(version_);
  writer.PutU32(static_cast<std::uint32_t>(slots_.size()));
  for (int i = 0; i < num_slots(); ++i) {
    writer.PutI32(slots_[i]);
    writer.PutU64(epochs_[i]);
    writer.PutU32(static_cast<std::uint32_t>(replicas_[i].size()));
    for (MachineId r : replicas_[i]) writer.PutI32(r);
  }
  return writer.Release();
}

Status AddressingTable::Deserialize(Slice data, AddressingTable* out) {
  BinaryReader reader(data);
  std::uint32_t p_bits = 0;
  std::uint64_t version = 0;
  std::uint32_t count = 0;
  if (!reader.GetU32(&p_bits) || !reader.GetU64(&version) ||
      !reader.GetU32(&count)) {
    return Status::Corruption("addressing table header");
  }
  if (p_bits > 20 || count != (1u << p_bits)) {
    return Status::Corruption("addressing table slot count mismatch");
  }
  AddressingTable table;
  table.p_bits_ = static_cast<int>(p_bits);
  table.version_ = version;
  table.slots_.resize(count);
  table.epochs_.resize(count);
  table.replicas_.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t replica_count = 0;
    if (!reader.GetI32(&table.slots_[i]) || !reader.GetU64(&table.epochs_[i]) ||
        !reader.GetU32(&replica_count)) {
      return Status::Corruption("addressing table slot");
    }
    if (replica_count > count) {
      return Status::Corruption("addressing table replica count");
    }
    table.replicas_[i].resize(replica_count);
    for (std::uint32_t r = 0; r < replica_count; ++r) {
      if (!reader.GetI32(&table.replicas_[i][r])) {
        return Status::Corruption("addressing table replica");
      }
    }
  }
  *out = table;
  return Status::OK();
}

}  // namespace trinity::cloud
