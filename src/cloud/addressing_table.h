#ifndef TRINITY_CLOUD_ADDRESSING_TABLE_H_
#define TRINITY_CLOUD_ADDRESSING_TABLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace trinity::cloud {

/// The shared addressing table (paper §3, Fig 3): 2^p slots, one per memory
/// trunk, each holding the id of the machine currently hosting that trunk.
/// Every machine keeps a replica; the primary lives on the leader and is
/// persisted to TFS before any update commits (§6.2).
///
/// The table is what makes the memory cloud's hashing *consistent*: machines
/// join/leave by reassigning slots, never by rehashing keys.
class AddressingTable {
 public:
  /// Builds a table with 2^p_bits slots spread round-robin over
  /// `num_machines` machines.
  AddressingTable(int p_bits, int num_machines);

  AddressingTable(const AddressingTable&) = default;
  AddressingTable& operator=(const AddressingTable&) = default;

  int p_bits() const { return p_bits_; }
  int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Monotonic version; bumped on every mutation so replicas can detect
  /// staleness.
  std::uint64_t version() const { return version_; }

  MachineId machine_of_trunk(TrunkId trunk) const { return slots_[trunk]; }

  /// All trunks currently assigned to `machine`.
  std::vector<TrunkId> trunks_of(MachineId machine) const;

  /// Reassigns one trunk. Bumps the version.
  void MoveTrunk(TrunkId trunk, MachineId to);

  /// Reassigns every trunk owned by `from` across `targets` round-robin
  /// (failure recovery / machine departure). Bumps the version once.
  void EvacuateMachine(MachineId from, const std::vector<MachineId>& targets);

  /// Serialized image for TFS persistence and broadcast to replicas.
  std::string Serialize() const;
  static Status Deserialize(Slice data, AddressingTable* out);

  bool operator==(const AddressingTable& other) const {
    return p_bits_ == other.p_bits_ && slots_ == other.slots_;
  }

 private:
  AddressingTable() = default;

  int p_bits_ = 0;
  std::uint64_t version_ = 0;
  std::vector<MachineId> slots_;
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_ADDRESSING_TABLE_H_
