#ifndef TRINITY_CLOUD_ADDRESSING_TABLE_H_
#define TRINITY_CLOUD_ADDRESSING_TABLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace trinity::cloud {

/// The shared addressing table (paper §3, Fig 3): 2^p slots, one per memory
/// trunk, each holding the id of the machine currently hosting that trunk.
/// Every machine keeps a replica; the primary lives on the leader and is
/// persisted to TFS before any update commits (§6.2).
///
/// The table is what makes the memory cloud's hashing *consistent*: machines
/// join/leave by reassigning slots, never by rehashing keys.
///
/// With hot-standby replication each slot additionally carries a *fencing
/// epoch* (bumped on every primary change, so a deposed primary's replication
/// traffic is rejected by replicas holding a newer table) and the in-sync
/// replica set — the machines whose replica trunk has applied every
/// acknowledged write and is therefore eligible for promotion or degraded
/// reads.
class AddressingTable {
 public:
  /// Builds a table with 2^p_bits slots spread round-robin over
  /// `num_machines` machines.
  AddressingTable(int p_bits, int num_machines);

  AddressingTable(const AddressingTable&) = default;
  AddressingTable& operator=(const AddressingTable&) = default;

  int p_bits() const { return p_bits_; }
  int num_slots() const { return static_cast<int>(slots_.size()); }

  /// Monotonic version; bumped on every mutation so replicas can detect
  /// staleness.
  std::uint64_t version() const { return version_; }

  MachineId machine_of_trunk(TrunkId trunk) const { return slots_[trunk]; }

  /// Fencing token for one trunk: monotonically bumped whenever the trunk's
  /// primary changes (promotion or migration). Replication messages stamped
  /// with an older epoch are rejected with Aborted.
  std::uint64_t epoch_of_trunk(TrunkId trunk) const { return epochs_[trunk]; }

  /// In-sync replica holders for one trunk (never contains the primary).
  const std::vector<MachineId>& replicas_of_trunk(TrunkId trunk) const {
    return replicas_[trunk];
  }

  /// All trunks currently assigned to `machine`.
  std::vector<TrunkId> trunks_of(MachineId machine) const;

  /// Reassigns one trunk. Bumps the version and the trunk's fencing epoch.
  void MoveTrunk(TrunkId trunk, MachineId to);

  /// Reassigns every trunk owned by `from` across `targets` round-robin
  /// (failure recovery / machine departure). Bumps the version once and the
  /// fencing epoch of every moved trunk.
  void EvacuateMachine(MachineId from, const std::vector<MachineId>& targets);

  /// Replaces the in-sync replica set for one trunk. Bumps the version.
  void SetReplicas(TrunkId trunk, std::vector<MachineId> replicas);

  /// Adds `machine` to the trunk's in-sync set if absent. Returns whether
  /// the set changed (version bumped only then).
  bool AddReplica(TrunkId trunk, MachineId machine);

  /// Drops `machine` from the trunk's in-sync set. Returns whether it was
  /// present (version bumped only then).
  bool RemoveReplica(TrunkId trunk, MachineId machine);

  /// Drops `machine` from every trunk's in-sync set (machine failure).
  /// Returns the number of sets it was removed from.
  int RemoveReplicaEverywhere(MachineId machine);

  /// Serialized image for TFS persistence and broadcast to replicas.
  std::string Serialize() const;
  static Status Deserialize(Slice data, AddressingTable* out);

  bool operator==(const AddressingTable& other) const {
    return p_bits_ == other.p_bits_ && slots_ == other.slots_ &&
           epochs_ == other.epochs_ && replicas_ == other.replicas_;
  }

 private:
  AddressingTable() = default;

  int p_bits_ = 0;
  std::uint64_t version_ = 0;
  std::vector<MachineId> slots_;
  std::vector<std::uint64_t> epochs_;
  std::vector<std::vector<MachineId>> replicas_;
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_ADDRESSING_TABLE_H_
