#ifndef TRINITY_CLOUD_EXTERNAL_STORE_H_
#define TRINITY_CLOUD_EXTERNAL_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace trinity::cloud {

/// Disk-resident store for rich payloads that should not live in RAM
/// (paper §1 note 1: "Trinity usually makes the graph topology and
/// frequently used information of the graph memory-resident. Trinity
/// provides transparent access to other information associated with the
/// graph in DBMSs"; §4.2: "store graph topology and some critical data in
/// Trinity's memory cloud, while leaving other rich information (such as
/// images) on disk").
///
/// The store is an append-only file of checksummed records. Store() returns
/// an 8-byte handle the caller embeds in a cell (e.g. a TSL `long` field);
/// Fetch() resolves it back. Handles stay valid across reopen.
class ExternalStore {
 public:
  static Status Open(const std::string& path,
                     std::unique_ptr<ExternalStore>* out);

  ~ExternalStore() = default;
  ExternalStore(const ExternalStore&) = delete;
  ExternalStore& operator=(const ExternalStore&) = delete;

  /// Appends a blob; *handle identifies it forever.
  Status Store(Slice blob, std::uint64_t* handle);

  /// Reads a blob back; verifies its checksum.
  Status Fetch(std::uint64_t handle, std::string* out);

  std::uint64_t blob_count() const { return blob_count_; }
  std::uint64_t byte_count() const { return byte_count_; }

 private:
  explicit ExternalStore(std::string path) : path_(std::move(path)) {}

  const std::string path_;
  std::mutex mu_;
  std::uint64_t end_offset_ = 0;
  std::uint64_t blob_count_ = 0;
  std::uint64_t byte_count_ = 0;
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_EXTERNAL_STORE_H_
