#ifndef TRINITY_CLOUD_MEMORY_CLOUD_H_
#define TRINITY_CLOUD_MEMORY_CLOUD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cloud/addressing_table.h"
#include "common/call_context.h"
#include "common/hash.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/types.h"
#include "net/fabric.h"
#include "net/network_stats.h"
#include "storage/memory_storage.h"
#include "tfs/tfs.h"

namespace trinity::cloud {

/// Handler-id ranges on the fabric. User/compute protocols must register at
/// kUserHandlerBase or above.
enum CloudHandlerIds : net::HandlerId {
  kCellOpHandler = 1,        ///< Sync KV operation dispatch.
  kMultiGetHandler = 2,      ///< Batched read dispatch (MultiGet/Contains).
  kHeartbeatHandler = 50,    ///< Leader ping.
  kTableUpdateHandler = 51,  ///< Addressing-table broadcast.
  kLogRecordHandler = 52,    ///< Buffered-logging append to a backup.
  kLogTruncateHandler = 53,  ///< Backup log truncation after a snapshot.
  kTrunkMigrateHandler = 54,  ///< Live trunk migration (image transfer).
  // Hot-standby replication handlers (55..58). Chaos tests target exactly
  // this range with FaultInjector::SetHandlerRangePolicy to fault the
  // replication traffic without touching the client-facing protocol.
  kReplicaApplyHandler = 55,    ///< Primary → replica synchronous mutation.
  kReplicaInstallHandler = 56,  ///< Full trunk-image install (re-replication).
  kReplicaReadHandler = 57,     ///< Degraded read served by a replica trunk.
  kIsrShrinkHandler = 58,       ///< Leader-confirmed in-sync-set shrink.
  // Compute-engine handlers (60..99).
  kBspMessageHandler = 60,       ///< BSP vertex messages.
  kTraversalExpandHandler = 61,  ///< Online traversal frontier expansion.
  kAsyncUpdateHandler = 62,      ///< Asynchronous-engine update messages.
  kSafraTokenHandler = 63,       ///< Safra termination-detection token.
  kGhostSyncHandler = 64,        ///< PBGL-baseline ghost-cell refresh.
  kSubgraphMatchHandler = 65,    ///< Embedding routing for subgraph match.
  kRdfQueryHandler = 66,         ///< SPARQL-lite distributed scans.
  // Analytics snapshot protocol (67..69): degree-ordered CSR build + the
  // one-shot boundary-adjacency exchange for distributed triangle counting.
  kSnapshotDegreeHandler = 67,   ///< (id, degree) gather to the coordinator.
  kSnapshotRankHandler = 68,     ///< Rank-table broadcast from coordinator.
  kSnapshotAdjHandler = 69,      ///< Boundary adjacency pull (sync, once/pair).
  kUserHandlerBase = 100,        ///< TSL protocols start here.
};

/// Trinity's memory cloud (paper §3): a distributed in-memory key-value
/// store globally addressable through a two-level hash — key → trunk
/// (TrunkHash) and trunk → machine (the addressing table).
///
/// The cloud hosts a simulated cluster: `num_slaves` slave machines (each
/// owning a MemoryStorage with its share of the 2^p trunks), optional
/// proxies (message-only, no data), and one implicit client endpoint. All
/// remote operations travel through the net::Fabric so traffic and handler
/// CPU time are metered.
///
/// Fault tolerance follows §6.2: every machine keeps an addressing-table
/// replica; the primary replica lives on the leader and is persisted to TFS
/// before updates commit; failures are detected by heartbeat or on access;
/// recovery reloads the failed machine's trunks from TFS onto survivors,
/// replays RAMCloud-style buffered log records held by backups, and
/// rebroadcasts the table.
class MemoryCloud {
 public:
  /// Governs every retry loop that faces transient Unavailable/TimedOut
  /// failures (routing, replica ship, ISR shrink, heartbeats). Backoff is
  /// *simulated* time: each wait is charged to the retrying machine's CPU
  /// meter so the cost model sees the stall, without the test suite
  /// actually sleeping. All four loops run through the shared
  /// trinity::RetryPolicy::Run helper with deterministic seeded jitter.
  using RetryPolicy = trinity::RetryPolicy;

  struct Options {
    int num_slaves = 4;
    int num_proxies = 0;
    int p_bits = 6;  ///< 2^p memory trunks; must satisfy 2^p >= num_slaves.
    storage::MemoryStorage::Options storage;
    net::Fabric::Params fabric;
    /// Borrowed TFS instance; may be null, which disables persistence,
    /// recovery and leader fencing (pure in-memory mode).
    tfs::Tfs* tfs = nullptr;
    std::string tfs_prefix = "cloud";
    /// Log mutations to a remote backup's memory before applying (RAMCloud
    /// buffered logging, §6.2) so recovery loses nothing since the snapshot.
    bool buffered_logging = false;
    /// Hot-standby replication: number of synchronous in-memory replicas
    /// per trunk (0 = off). Every acknowledged mutation applies on the
    /// primary and ships to k replica trunks placed by rendezvous hashing
    /// on distinct machines; failover *promotes* a replica (an
    /// addressing-table metadata flip, no TFS read) and TFS becomes the
    /// cold tier consulted only when every replica of a trunk is lost.
    /// Subsumes buffered_logging — the two are mutually exclusive. Values
    /// larger than num_slaves-1 degrade gracefully to fewer replicas.
    int replication_factor = 0;
    /// Promote replicas inline when routing detects a dead owner. When
    /// false, reads still fail over to replicas but writes to affected
    /// trunks return retryable Unavailable until DetectAndRecover runs —
    /// tests use this to hold the cluster in the degraded window.
    bool auto_promote = true;
    /// Restore the replication factor during DetectAndRecover sweeps after
    /// promotions dropped it (background parallel re-replication).
    bool rereplicate_on_recover = true;
    RetryPolicy retry;
  };

  static Status Create(const Options& options,
                       std::unique_ptr<MemoryCloud>* out);

  ~MemoryCloud() = default;
  MemoryCloud(const MemoryCloud&) = delete;
  MemoryCloud& operator=(const MemoryCloud&) = delete;

  // --- Topology ---------------------------------------------------------
  int num_slaves() const { return options_.num_slaves; }
  int num_proxies() const { return options_.num_proxies; }
  /// Total fabric endpoints: slaves + proxies + 1 client.
  int num_endpoints() const { return options_.num_slaves +
                                     options_.num_proxies + 1; }
  /// The implicit client endpoint id (last endpoint).
  MachineId client_id() const { return num_endpoints() - 1; }
  bool IsProxy(MachineId m) const {
    return m >= options_.num_slaves && m < client_id();
  }

  TrunkId TrunkOf(CellId id) const {
    return static_cast<TrunkId>(TrunkHash(id, options_.p_bits));
  }
  /// Owner machine according to the leader's primary table.
  MachineId MachineOf(CellId id) const;

  // --- Key-value operations (from the client endpoint) -------------------
  Status AddCell(CellId id, Slice payload) {
    return AddCellFrom(client_id(), id, payload);
  }
  Status PutCell(CellId id, Slice payload) {
    return PutCellFrom(client_id(), id, payload);
  }
  Status GetCell(CellId id, std::string* out) {
    return GetCellFrom(client_id(), id, out);
  }
  Status RemoveCell(CellId id) { return RemoveCellFrom(client_id(), id); }
  Status AppendToCell(CellId id, Slice suffix) {
    return AppendToCellFrom(client_id(), id, suffix);
  }
  /// Existence check that distinguishes "cell absent" (OK, *exists=false)
  /// from "owner unavailable" (non-OK status): a down machine must not be
  /// mistaken for a missing cell.
  Status Contains(CellId id, bool* exists);

  /// Per-id outcome of a MultiGet/MultiContains batch. `status` is OK when
  /// the cell was read (value filled for MultiGet), NotFound when the owner
  /// definitively answered that the cell is absent, and any other status
  /// when the id could not be resolved (e.g. its owner is unrecoverable).
  struct MultiGetResult {
    Status status = Status::NotFound("no such cell");
    std::string value;
  };

  /// Batched read: groups `ids` per owner machine using the lock-free
  /// routing snapshot, answers ids owned by `src` straight from trunk
  /// accessors, and ships ONE packed request per remote owner (response
  /// records reuse the compute engines' [id][len][bytes] wire shape). A
  /// whole-batch failure against one owner (crash, stale routing) falls
  /// back to per-id routed reads for that group, so replica failover and
  /// promotion semantics are exactly those of GetCellFrom. `out` is resized
  /// to ids.size(); ids may repeat. Returns non-OK only when the batch as a
  /// whole could not be attempted (e.g. `src` is down) — per-id outcomes
  /// are reported through `out`.
  Status MultiGet(MachineId src, std::span<const CellId> ids,
                  std::vector<MultiGetResult>* out,
                  CallContext* ctx = nullptr);
  Status MultiGet(std::span<const CellId> ids,
                  std::vector<MultiGetResult>* out) {
    return MultiGet(client_id(), ids, out);
  }
  /// Batched existence check with the same routing/fallback semantics;
  /// out[i].status is OK (present), NotFound (definitively absent), or an
  /// error (unknown — the owner could not be reached). Values stay empty.
  Status MultiContains(MachineId src, std::span<const CellId> ids,
                       std::vector<MultiGetResult>* out,
                       CallContext* ctx = nullptr);

  // --- Key-value operations from an arbitrary endpoint. Local accesses on
  // the owning slave bypass the network; remote ones are metered sync calls.
  // The optional CallContext carries a per-request deadline + retry budget
  // down through RouteOp and Fabric::Call: retries stop with
  // DeadlineExceeded (or ResourceExhausted when the cluster-wide retry
  // budget is drained) instead of hanging through a failover.
  Status AddCellFrom(MachineId src, CellId id, Slice payload,
                     CallContext* ctx = nullptr);
  Status PutCellFrom(MachineId src, CellId id, Slice payload,
                     CallContext* ctx = nullptr);
  Status GetCellFrom(MachineId src, CellId id, std::string* out,
                     CallContext* ctx = nullptr);
  Status RemoveCellFrom(MachineId src, CellId id,
                        CallContext* ctx = nullptr);
  Status AppendToCellFrom(MachineId src, CellId id, Slice suffix,
                          CallContext* ctx = nullptr);

  /// Direct pointer to the local storage of a slave (engines use this for
  /// partition-local scans; access is expected to be metered by the caller).
  storage::MemoryStorage* storage(MachineId m);

  net::Fabric& fabric() { return *fabric_; }
  const AddressingTable& table() const;

  /// Sum of committed trunk bytes over all slaves.
  std::uint64_t MemoryFootprintBytes() const;
  std::uint64_t TotalCellCount() const;

  /// Memory-hierarchy meters summed over every alive slave's primary
  /// trunks: resident/compressed/spilled bytes, faults, evictions (see
  /// MemoryTrunk::Stats). Benchmarks and capacity dashboards read this to
  /// watch the compressed + out-of-core footprint cloud-wide.
  storage::MemoryTrunk::Stats AggregateTrunkStats() const;

  // --- Fault tolerance ----------------------------------------------------
  /// Persists all trunks and the primary addressing table to TFS and
  /// truncates buffered logs. Requires options.tfs.
  ///
  /// Crash-safe in the atomic-rename style: trunks are written under a fresh
  /// epoch directory and the `snapshot_current` pointer file flips only
  /// after every write succeeded. A failure mid-snapshot leaves the previous
  /// epoch live and the buffered logs untouched, so recovery never sees a
  /// truncated snapshot.
  Status SaveSnapshot();

  /// Simulates a machine crash: storage dropped, endpoint marked down.
  Status FailMachine(MachineId m);

  /// Per-machine outcome of one DetectAndRecover sweep. Machines whose
  /// recovery failed stay marked down so the next sweep retries them.
  struct SweepReport {
    std::vector<MachineId> recovered;
    std::vector<std::pair<MachineId, Status>> failed;
    int rereplicated_trunks = 0;  ///< Replication-factor repairs shipped.
  };

  /// Leader heartbeat sweep; recovers every failed slave found (promotion
  /// failover in replicated mode, TFS reload otherwise) and, in replicated
  /// mode, runs background re-replication afterwards. Returns the number of
  /// machines recovered; `report` (may be null) receives the per-machine
  /// status summary instead of errors being silently discarded.
  int DetectAndRecover(SweepReport* report);
  int DetectAndRecover() { return DetectAndRecover(nullptr); }

  /// Recovers one known-failed slave (reload from TFS + log replay +
  /// table rebroadcast). The machine stays down; its data moves elsewhere.
  Status RecoverMachine(MachineId failed);

  /// Restarts a previously failed machine as an empty slave that can take
  /// trunk assignments again.
  Status RestartMachine(MachineId m);

  /// Live trunk relocation (§3: "when new machines join the memory cloud,
  /// we relocate some memory trunks to those new machines and update the
  /// addressing table accordingly"). The trunk image travels over the
  /// fabric (metered); the primary table updates and rebroadcasts after the
  /// hand-off. Migration is leader-coordinated and assumes no concurrent
  /// writes to the trunk being moved.
  Status MigrateTrunk(TrunkId trunk, MachineId to);

  /// Evens out trunk ownership across alive slaves by migrating trunks from
  /// the most- to the least-loaded machines (run after a machine rejoins).
  /// Returns the number of trunks moved.
  int RebalanceTrunks();

  /// Test hook: rolls machine m's addressing-table replica back to the seed
  /// layout, simulating an endpoint that missed every broadcast. RouteOp must
  /// transparently re-sync it from the primary on the first failed access.
  void DesyncReplicaForTest(MachineId m);

  MachineId leader() const { return leader_; }
  /// Elects the lowest-id alive slave, fencing through a TFS flag file when
  /// TFS is configured.
  Status ElectLeader();

  /// Cumulative failover/recovery counters (replicated mode). All times are
  /// simulated microseconds, deterministic per fault-injector seed.
  net::RecoveryStats recovery_stats() const;

  /// Committed bytes held in replica trunks across alive slaves — the
  /// memory overhead of the replication factor.
  std::uint64_t ReplicaMemoryBytes() const;

  /// Restores the replication factor after failures: computes the missing
  /// (trunk, replica) pairs under the current membership, serializes the
  /// source trunks in parallel on a thread pool, and ships the images
  /// sequentially in canonical (trunk, target) order — parallel CPU work,
  /// deterministic fabric traffic. Returns the number of replicas
  /// installed. Run automatically by DetectAndRecover sweeps when
  /// options.rereplicate_on_recover is set.
  int ReReplicate();

 private:
  enum class CellOp : std::uint8_t {
    kAdd = 1,
    kPut = 2,
    kGet = 3,
    kRemove = 4,
    kAppend = 5,
    kContains = 6,
  };

  struct LogRecord {
    std::uint64_t seq;
    CellOp op;
    CellId id;
    std::string payload;
  };

  /// Immutable trunk→owner snapshot derived from one machine's addressing-
  /// table replica (RCU-style): the read path loads it with a single atomic
  /// operation and routes without taking mu_. `stamp` is the value of
  /// routing_stamp_ when the view was built; a mismatch means membership or
  /// table state changed since, and the reader falls back to the locked
  /// path (which rebuilds the view). Correctness never depends on freshness
  /// — a stale owner answers Unavailable("trunk not hosted") and the retry
  /// loop re-syncs — the stamp only bounds how long readers chase stale
  /// routes.
  struct RoutingView {
    std::uint64_t stamp = 0;
    std::vector<MachineId> owner;  ///< Indexed by TrunkId.
  };

  struct MachineState {
    /// Atomic shared_ptr so lock-free readers (ExecuteLocal, the batched
    /// read handler, the RouteOp fast path) can pin the storage object
    /// across an operation while FailMachine/promotion swap it out.
    std::atomic<std::shared_ptr<storage::MemoryStorage>> storage;
    AddressingTable table_replica{0, 1};
    /// This machine's lock-free routing snapshot (see RoutingView).
    std::atomic<std::shared_ptr<const RoutingView>> routing;
    /// Buffered log records this machine holds as backup, keyed by primary.
    std::map<MachineId, std::vector<LogRecord>> backup_logs;
    std::uint64_t next_log_seq = 1;
  };

  /// Relaxed-atomic mirror of net::RecoveryStats: hot read paths (degraded
  /// reads, fencing rejections) bump counters without touching mu_ and
  /// recovery_stats() snapshots without blocking writers.
  struct AtomicRecoveryStats {
    std::atomic<std::uint64_t> promotions{0};
    std::atomic<std::uint64_t> last_promote_micros{0};
    std::atomic<std::uint64_t> last_full_replication_micros{0};
    std::atomic<std::uint64_t> bytes_rereplicated{0};
    std::atomic<std::uint64_t> trunks_rereplicated{0};
    std::atomic<std::uint64_t> degraded_reads{0};
    std::atomic<std::uint64_t> fenced_writes{0};
    std::atomic<std::uint64_t> tfs_fallback_reloads{0};
  };

  explicit MemoryCloud(const Options& options);
  Status Init();
  void RegisterHandlers(MachineId m);

  /// Executes an op against machine m's local storage. Called both by the
  /// local fast path and by the remote sync handler.
  Status ExecuteLocal(MachineId m, CellOp op, CellId id, Slice payload,
                      std::string* response);

  /// Encodes and routes an op from src to the owner of id, handling stale
  /// table replicas and machine failures with one retry after re-sync.
  Status RouteOp(MachineId src, CellOp op, CellId id, Slice payload,
                 std::string* response, CallContext* ctx = nullptr);

  /// Shared body of MultiGet/MultiContains (op is kGet or kContains).
  Status MultiOp(MachineId src, CellOp op, std::span<const CellId> ids,
                 std::vector<MultiGetResult>* out,
                 CallContext* ctx = nullptr);

  /// Loads machine m's storage with acquire semantics; the returned
  /// shared_ptr keeps the storage alive for the duration of the caller's
  /// operation even if a concurrent failure path swaps it out.
  std::shared_ptr<storage::MemoryStorage> StorageOf(MachineId m) const {
    return machines_[m].storage.load(std::memory_order_acquire);
  }

  /// Resolves the owner of `id` as seen from `src`: lock-free against the
  /// routing snapshot when its stamp is current, else the slow locked path
  /// (which also rebuilds the snapshot).
  MachineId RouteDst(MachineId src, CellId id);

  /// Rebuilds machine m's routing snapshot from its table replica. Caller
  /// holds mu_.
  void RefreshRoutingLocked(MachineId m);
  /// Rebuilds the leader-view snapshot used by MachineOf. Caller holds mu_.
  void RefreshPrimaryRoutingLocked() const;

  /// Sends the mutation to the primary's backup before it applies locally.
  /// Retries across surviving backups so a backup crash (or injected call
  /// failure) cannot leave an acknowledged mutation unlogged. Returns false
  /// when the record is NOT safely held and the primary itself is down —
  /// the one case where acking would lose the write (the primary's local
  /// apply is a ghost image that recovery discards).
  bool LogToBackup(MachineId primary, CellOp op, CellId id, Slice payload);

  /// Reacts to a fabric-injected crash: same state transition as
  /// FailMachine, driven by the fault injector's crash schedules.
  void OnInjectedCrash(MachineId m);

  bool replicated() const { return options_.replication_factor > 0; }

  /// Ships one applied mutation synchronously to every in-sync replica,
  /// stamped with the fencing epoch from the *primary's own* table replica.
  /// A deposed primary therefore advertises its stale epoch and is rejected
  /// (Aborted) by any replica that heard the promotion broadcast — the
  /// split-brain guard. Unreachable replicas are dropped from the in-sync
  /// set only after the current leader confirms the shrink; with no
  /// confirmation the write is NOT acknowledged.
  Status ReplicateMutation(MachineId primary, CellOp op, CellId id,
                           Slice payload);

  /// Degraded-read failover: serves a Get/Contains from any in-sync replica
  /// of the cell's trunk while the primary is unreachable. Sets *served
  /// when some replica produced a definitive answer (incl. NotFound).
  Status TryReplicaRead(MachineId src, CellOp op, CellId id,
                        std::string* response, bool* served,
                        CallContext* ctx = nullptr);

  /// Asks the current leader to drop `replica` from the trunk's in-sync
  /// set. The leader verifies the caller is still the trunk's primary at
  /// the claimed epoch — a deposed primary gets Aborted here instead of
  /// acking writes against a unilaterally shrunken set.
  Status ConfirmShrink(MachineId primary, TrunkId trunk, std::uint64_t epoch,
                       MachineId replica);

  /// Replicated-mode body of RecoverMachine: promotes an in-sync replica of
  /// each trunk the failed machine owned (metadata flip, zero TFS reads),
  /// falling back to a TFS cold-tier reload only when every replica of a
  /// trunk is lost. A machine whose fabric endpoint is still up (heartbeats
  /// failed ⇒ partition, not crash) is *deposed*: its trunks are promoted
  /// away and every epoch bump fences its stale write path, but its
  /// endpoint and memory image stay so split-brain behavior is observable.
  Status PromoteReplicasLocked(MachineId failed);

  /// TFS directory of the last *committed* snapshot epoch; empty when no
  /// snapshot has committed yet.
  std::string SnapshotPrefixLocked() const;

  /// Writes all alive slaves' trunks + the table under a fresh epoch, flips
  /// the commit pointer, truncates buffered logs and GCs old epochs. The
  /// body of SaveSnapshot; also run at the end of recovery to re-protect
  /// primaries whose backup log copies died with the failed machine.
  Status SnapshotAllLocked();

  Status PersistTableLocked();
  void BroadcastTableLocked();
  MachineId BackupOf(MachineId m) const;
  std::vector<MachineId> AliveSlavesLocked() const;

  const Options options_;
  std::unique_ptr<net::Fabric> fabric_;
  /// One per endpoint (incl. client). A raw array (not std::vector) because
  /// MachineState holds atomics and is therefore not movable; the size is
  /// fixed at num_endpoints() after Init.
  std::unique_ptr<MachineState[]> machines_;
  /// Slave liveness (proxies too); atomic so storage() and the fast read
  /// path can check it without mu_.
  std::unique_ptr<std::atomic<bool>[]> alive_;

  /// Generation counter for the routing snapshots: bumped (under mu_) on
  /// every membership/table change, which lazily invalidates every
  /// RoutingView built before the change.
  std::atomic<std::uint64_t> routing_stamp_{1};
  /// Snapshot of the primary table's ownership map for lock-free MachineOf.
  mutable std::atomic<std::shared_ptr<const RoutingView>> primary_routing_;

  mutable std::mutex mu_;  ///< Guards table/membership/leader state.
  AddressingTable primary_table_{0, 1};
  MachineId leader_ = 0;
  std::uint64_t leader_epoch_ = 0;
  std::uint64_t snapshot_epoch_ = 0;  ///< Last committed snapshot epoch.
  /// True when a machine died holding backup-log buffers whose records have
  /// not been covered by a committed snapshot yet. Cleared by the next
  /// successful SnapshotAllLocked (the re-protection point).
  bool reprotect_pending_ = false;
  mutable AtomicRecoveryStats recovery_stats_;  ///< Relaxed atomics.
};

}  // namespace trinity::cloud

#endif  // TRINITY_CLOUD_MEMORY_CLOUD_H_
