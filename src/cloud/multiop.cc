#include "cloud/multiop.h"

#include <algorithm>

#include "common/hash.h"
#include "common/spinlock.h"

namespace trinity::cloud {

namespace {

/// Striped lock table for MultiOp isolation. MultiOps lock the stripes of
/// every touched cell in stripe order (deadlock-free); single-cell cloud
/// operations remain atomic on their own via the trunk locks, so the
/// isolation MultiOp adds is against *other MultiOps* — the light-weight
/// level §4.4 describes.
constexpr int kStripes = 1024;

SpinLock* Stripes() {
  static SpinLock* stripes = new SpinLock[kStripes];
  return stripes;
}

int StripeOf(CellId id) {
  return static_cast<int>(InTrunkHash(id ^ 0x517cc1b727220a95ULL) % kStripes);
}

}  // namespace

MultiOp& MultiOp::CompareEquals(CellId id, Slice expected) {
  guards_.push_back(Guard{GuardKind::kEquals, id, expected.ToString()});
  return *this;
}

MultiOp& MultiOp::CompareExists(CellId id) {
  guards_.push_back(Guard{GuardKind::kExists, id, ""});
  return *this;
}

MultiOp& MultiOp::CompareAbsent(CellId id) {
  guards_.push_back(Guard{GuardKind::kAbsent, id, ""});
  return *this;
}

MultiOp& MultiOp::Put(CellId id, Slice payload) {
  actions_.push_back(Action{ActionKind::kPut, id, payload.ToString()});
  return *this;
}

MultiOp& MultiOp::Append(CellId id, Slice suffix) {
  actions_.push_back(Action{ActionKind::kAppend, id, suffix.ToString()});
  return *this;
}

MultiOp& MultiOp::Remove(CellId id) {
  actions_.push_back(Action{ActionKind::kRemove, id, ""});
  return *this;
}

Status MultiOp::Execute(MachineId src) {
  // Collect the distinct stripes of every touched cell and lock them in
  // ascending order.
  std::vector<int> stripes;
  stripes.reserve(guards_.size() + actions_.size());
  for (const Guard& guard : guards_) stripes.push_back(StripeOf(guard.id));
  for (const Action& action : actions_) {
    stripes.push_back(StripeOf(action.id));
  }
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  for (int s : stripes) Stripes()[s].Lock();
  struct Unlocker {
    const std::vector<int>& stripes;
    ~Unlocker() {
      for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
        Stripes()[*it].Unlock();
      }
    }
  } unlocker{stripes};

  // Phase 1: evaluate every guard.
  for (const Guard& guard : guards_) {
    std::string current;
    const Status s = cloud_->GetCellFrom(src, guard.id, &current);
    switch (guard.kind) {
      case GuardKind::kEquals:
        if (!s.ok()) return Status::Aborted("guard cell missing");
        if (current != guard.expected) {
          return Status::Aborted("guard value mismatch");
        }
        break;
      case GuardKind::kExists:
        if (!s.ok()) return Status::Aborted("guard cell missing");
        break;
      case GuardKind::kAbsent:
        if (s.ok()) return Status::Aborted("guard cell present");
        if (!s.IsNotFound()) return s;
        break;
    }
  }
  // Phase 2: apply every action. Infrastructure failures here can leave a
  // partially applied MultiOp (no undo log) — the documented light-weight
  // semantics.
  for (const Action& action : actions_) {
    Status s;
    switch (action.kind) {
      case ActionKind::kPut:
        s = cloud_->PutCellFrom(src, action.id, Slice(action.payload));
        break;
      case ActionKind::kAppend:
        s = cloud_->AppendToCellFrom(src, action.id, Slice(action.payload));
        break;
      case ActionKind::kRemove:
        s = cloud_->RemoveCellFrom(src, action.id);
        break;
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MultiOp::CompareAndSwap(MemoryCloud* cloud, CellId id, Slice expected,
                               Slice replacement) {
  MultiOp op(cloud);
  op.CompareEquals(id, expected).Put(id, replacement);
  return op.Execute();
}

}  // namespace trinity::cloud
