#include "cloud/multiop.h"

#include <algorithm>

#include "cloud/cell_stripes.h"

namespace trinity::cloud {

MultiOp& MultiOp::CompareEquals(CellId id, Slice expected) {
  guards_.push_back(Guard{GuardKind::kEquals, id, expected.ToString()});
  return *this;
}

MultiOp& MultiOp::CompareExists(CellId id) {
  guards_.push_back(Guard{GuardKind::kExists, id, ""});
  return *this;
}

MultiOp& MultiOp::CompareAbsent(CellId id) {
  guards_.push_back(Guard{GuardKind::kAbsent, id, ""});
  return *this;
}

MultiOp& MultiOp::Put(CellId id, Slice payload) {
  actions_.push_back(Action{ActionKind::kPut, id, payload.ToString()});
  return *this;
}

MultiOp& MultiOp::Append(CellId id, Slice suffix) {
  actions_.push_back(Action{ActionKind::kAppend, id, suffix.ToString()});
  return *this;
}

MultiOp& MultiOp::Remove(CellId id) {
  actions_.push_back(Action{ActionKind::kRemove, id, ""});
  return *this;
}

Status MultiOp::Execute(MachineId src) {
  // Collect the distinct stripes of every touched cell and lock them in
  // ascending order through the shared CellStripes table — the same table
  // single-cell mutations acquire, so a bare Put/Remove can no longer land
  // between guard evaluation and action apply.
  std::vector<int> stripes;
  stripes.reserve(guards_.size() + actions_.size());
  for (const Guard& guard : guards_) {
    stripes.push_back(CellStripes::StripeOf(guard.id));
  }
  for (const Action& action : actions_) {
    stripes.push_back(CellStripes::StripeOf(action.id));
  }
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  CellStripes::Guard lock(stripes);

  // Phase 1: evaluate every guard.
  for (const Guard& guard : guards_) {
    std::string current;
    const Status s = cloud_->GetCellFrom(src, guard.id, &current, ctx_);
    switch (guard.kind) {
      case GuardKind::kEquals:
        if (s.IsNotFound()) {
          return Status::Aborted("guard cell missing",
                                 Status::Subcode::kGuardFailed);
        }
        if (!s.ok()) return s;
        if (current != guard.expected) {
          return Status::Aborted("guard value mismatch",
                                 Status::Subcode::kGuardFailed);
        }
        break;
      case GuardKind::kExists:
        if (s.IsNotFound()) {
          return Status::Aborted("guard cell missing",
                                 Status::Subcode::kGuardFailed);
        }
        if (!s.ok()) return s;
        break;
      case GuardKind::kAbsent:
        if (s.ok()) {
          return Status::Aborted("guard cell present",
                                 Status::Subcode::kGuardFailed);
        }
        if (!s.IsNotFound()) return s;
        break;
    }
  }
  if (phase_hook_) phase_hook_();
  // Phase 2: apply every action. Infrastructure failures here can leave a
  // partially applied MultiOp (no undo log) — the documented light-weight
  // semantics.
  for (const Action& action : actions_) {
    Status s;
    switch (action.kind) {
      case ActionKind::kPut:
        s = cloud_->PutCellFrom(src, action.id, Slice(action.payload), ctx_);
        break;
      case ActionKind::kAppend:
        s = cloud_->AppendToCellFrom(src, action.id, Slice(action.payload),
                                     ctx_);
        break;
      case ActionKind::kRemove:
        s = cloud_->RemoveCellFrom(src, action.id, ctx_);
        break;
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MultiOp::CompareAndSwap(MemoryCloud* cloud, CellId id, Slice expected,
                               Slice replacement) {
  MultiOp op(cloud);
  op.CompareEquals(id, expected).Put(id, replacement);
  return op.Execute();
}

}  // namespace trinity::cloud
