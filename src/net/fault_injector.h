#ifndef TRINITY_NET_FAULT_INJECTOR_H_
#define TRINITY_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace trinity::net {

using HandlerId = std::uint32_t;

/// Deterministic fault-injection policy for the simulated interconnect.
///
/// The injector is consulted by the Fabric on every logical message event and
/// decides — from a seeded PRNG plus an explicit script — whether to drop an
/// async message, deliver it twice, fail a sync Call, hold a packed flush
/// back until the next FlushAll, or crash a machine outright. Every decision
/// draws from the same seeded stream, so a chaos run is fully replayable from
/// its seed: no wall clock, no unseeded randomness.
///
/// Two complementary interfaces:
///  * Probabilistic policies — a Policy can be installed as the default, for
///    one (src,dst) pair, or for a half-open handler-id range. Lookup order
///    is pair > handler range > default (the first match wins, so a pair
///    policy completely overrides the others for that pair).
///  * Script API — one-shot, exactly-scheduled events: CrashAfter(m, n)
///    crashes machine m once n further messages have touched it, DropNext
///    swallows exactly the next async message on a pair, Partition splits the
///    cluster so nothing crosses the cut until ClearPartitions.
///
/// The injector is passive: it never calls into the Fabric. The Fabric asks
/// (OnAsyncMessage / OnCall / DelayFlush / NoteMessage) and executes the
/// verdicts itself, which keeps the locking one-directional.
class FaultInjector {
 public:
  struct Policy {
    double drop_prob = 0.0;          ///< Async message silently lost.
    double duplicate_prob = 0.0;     ///< Async message delivered twice.
    double call_fail_prob = 0.0;     ///< Sync Call fails with Unavailable.
    double call_timeout_prob = 0.0;  ///< Sync Call fails with TimedOut.
    double delay_flush_prob = 0.0;   ///< Packed flush deferred to FlushAll.
    /// Straggler injection: with probability call_delay_prob a sync Call is
    /// slowed by a simulated delay drawn uniformly from
    /// [call_delay_min_micros, call_delay_max_micros]. The Fabric charges
    /// the delay to the caller's CPU meter and to the request's
    /// CallContext deadline budget — the call still runs unless the delay
    /// alone blows the deadline, in which case the caller gets
    /// DeadlineExceeded without invoking the handler.
    double call_delay_prob = 0.0;
    double call_delay_min_micros = 0.0;
    double call_delay_max_micros = 0.0;
  };

  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t failed_calls = 0;
    std::uint64_t timed_out_calls = 0;
    std::uint64_t delayed_flushes = 0;
    std::uint64_t crashes = 0;
    std::uint64_t partition_blocks = 0;  ///< Messages refused by a partition.
    std::uint64_t delayed_calls = 0;     ///< Sync Calls slowed by a delay.
    double delay_micros_total = 0.0;     ///< Sum of injected call delays.
  };

  /// Verdict for one async message.
  enum class AsyncAction { kDeliver, kDrop, kDuplicate };

  explicit FaultInjector(std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  std::uint64_t seed() const { return seed_; }

  // --- Policy configuration ----------------------------------------------
  void SetDefaultPolicy(const Policy& policy);
  void SetPairPolicy(MachineId src, MachineId dst, const Policy& policy);
  /// Applies to handler ids in [lo, hi] inclusive. Later registrations win
  /// over earlier ones when ranges overlap.
  void SetHandlerRangePolicy(HandlerId lo, HandlerId hi,
                             const Policy& policy);
  /// Removes all probabilistic policies (the script state stays).
  void ClearPolicies();

  // --- Script API ---------------------------------------------------------
  /// Crashes `machine` once `n_messages` further logical messages (sent or
  /// received by it, async or sync) have completed. The Fabric executes the
  /// crash and notifies its crash listener.
  void CrashAfter(MachineId machine, std::uint64_t n_messages);
  /// Swallows exactly the next async message from src to dst. Calls stack:
  /// invoking it twice drops the next two messages.
  void DropNext(MachineId src, MachineId dst);
  /// Installs a network partition: any message between a machine in `a` and
  /// a machine in `b` is refused (async dropped, Call returns Unavailable)
  /// until ClearPartitions(). Multiple partitions may be active at once.
  void Partition(std::vector<MachineId> a, std::vector<MachineId> b);
  void ClearPartitions();

  Stats stats() const;

  // --- Fabric-facing hooks ------------------------------------------------
  /// Verdict for an async message about to enter the fabric.
  AsyncAction OnAsyncMessage(MachineId src, MachineId dst, HandlerId id);
  /// Verdict for a sync call: OK means proceed; Unavailable / TimedOut is
  /// returned to the caller without invoking the handler.
  Status OnCall(MachineId src, MachineId dst, HandlerId id);
  /// Simulated straggler delay (micros) for a sync call about to run, or 0.
  /// Drawn from the same seeded stream as every other verdict.
  double CallDelayMicros(MachineId src, MachineId dst, HandlerId id);
  /// Whether a non-forced flush of the (src,dst) pack buffer should be held
  /// back (delivered by the next FlushAll instead).
  bool DelayFlush(MachineId src, MachineId dst);
  /// Accounts one completed logical message against the crash schedules of
  /// src and dst; returns the machines whose schedule just expired (the
  /// Fabric takes them down and fires its crash listener).
  std::vector<MachineId> NoteMessage(MachineId src, MachineId dst);

 private:
  struct HandlerRangePolicy {
    HandlerId lo;
    HandlerId hi;
    Policy policy;
  };

  struct PartitionRule {
    std::vector<MachineId> a;
    std::vector<MachineId> b;
  };

  /// Pair > handler range > default; nullptr when nothing matches.
  const Policy* FindPolicyLocked(MachineId src, MachineId dst,
                                 HandlerId id) const;
  bool PartitionedLocked(MachineId src, MachineId dst) const;
  bool RollLocked(double prob);

  const std::uint64_t seed_;
  mutable std::mutex mu_;
  Random rng_;
  bool has_default_policy_ = false;
  Policy default_policy_;
  std::map<std::pair<MachineId, MachineId>, Policy> pair_policies_;
  std::vector<HandlerRangePolicy> range_policies_;
  std::map<std::pair<MachineId, MachineId>, int> drop_next_;
  std::map<MachineId, std::uint64_t> crash_countdown_;
  std::vector<PartitionRule> partitions_;
  Stats stats_;
};

}  // namespace trinity::net

#endif  // TRINITY_NET_FAULT_INJECTOR_H_
