#include "net/fabric.h"

#include <utility>

#include "common/logging.h"

namespace trinity::net {

Fabric::Fabric(int num_machines) : Fabric(num_machines, Params()) {}

Fabric::Fabric(int num_machines, Params params)
    : num_machines_(num_machines), params_(params) {
  TRINITY_CHECK(num_machines >= 1, "fabric needs at least one machine");
  async_handlers_.resize(num_machines_);
  sync_handlers_.resize(num_machines_);
  pair_buffers_.resize(static_cast<std::size_t>(num_machines_) *
                       num_machines_);
  machine_up_.assign(num_machines_, true);
  cpu_micros_.assign(num_machines_, 0.0);
  traffic_.bytes_in.assign(num_machines_, 0);
  traffic_.bytes_out.assign(num_machines_, 0);
  traffic_.transfers_in.assign(num_machines_, 0);
  traffic_.transfers_out.assign(num_machines_, 0);
}

void Fabric::RegisterAsyncHandler(MachineId machine, HandlerId id,
                                  AsyncHandler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  async_handlers_[machine][id] = std::move(fn);
}

void Fabric::RegisterSyncHandler(MachineId machine, HandlerId id,
                                 SyncHandler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_handlers_[machine][id] = std::move(fn);
}

Status Fabric::SendAsync(MachineId src, MachineId dst, HandlerId id,
                         Slice payload) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.messages;
    if (src >= 0 && src < num_machines_ && !machine_up_[src]) {
      // A crashed machine cannot originate traffic; callers still running on
      // its behalf (e.g. a vertex program mid-superstep) see the failure.
      ++stats_.dropped;
      return Status::Unavailable("source machine is down");
    }
    if (!machine_up_[dst]) {
      ++stats_.dropped;
      return Status::Unavailable("destination machine is down");
    }
    if (src == dst) {
      ++stats_.local_messages;
    }
  }
  int copies = 1;
  if (injector_ != nullptr) {
    switch (injector_->OnAsyncMessage(src, dst, id)) {
      case FaultInjector::AsyncAction::kDrop: {
        // Silent loss: the sender believes the send succeeded — that is the
        // fault being modeled.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.dropped;
        ++stats_.injected_drops;
      }
        MaybeTriggerCrashes(src, dst);
        return Status::OK();
      case FaultInjector::AsyncAction::kDuplicate: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.injected_duplicates;
        copies = 2;
        break;
      }
      case FaultInjector::AsyncAction::kDeliver:
        break;
    }
  }
  if (src == dst) {
    // Local delivery never touches the wire.
    for (int c = 0; c < copies; ++c) Deliver(src, dst, id, payload);
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  if (!params_.pack_messages) {
    // Ablation mode: every message is its own physical transfer.
    for (int c = 0; c < copies; ++c) {
      AccountTransfer(src, dst, payload.size() + params_.frame_overhead_bytes,
                      1);
      Deliver(src, dst, id, payload);
    }
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PairBuffer& buf = pair_buffers_[PairIndex(src, dst)];
    for (int c = 0; c < copies; ++c) {
      buf.messages.push_back(PackedMessage{id, payload.ToString()});
      buf.bytes += payload.size() + params_.frame_overhead_bytes;
    }
    flush_now = buf.bytes >= params_.pack_threshold_bytes;
  }
  if (flush_now) {
    std::unique_lock<std::mutex> lock(mu_);
    FlushPairLocked(src, dst, /*force=*/false);
  }
  MaybeTriggerCrashes(src, dst);
  return Status::OK();
}

Status Fabric::SendPacked(MachineId src, MachineId dst, HandlerId id,
                          Slice payload, std::uint64_t message_count) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.messages += message_count;
    if (src >= 0 && src < num_machines_ && !machine_up_[src]) {
      stats_.dropped += message_count;
      return Status::Unavailable("source machine is down");
    }
    if (!machine_up_[dst]) {
      stats_.dropped += message_count;
      return Status::Unavailable("destination machine is down");
    }
    if (src == dst) {
      stats_.local_messages += message_count;
    }
  }
  int copies = 1;
  if (injector_ != nullptr) {
    // The injector sees the packed payload as one message event: a drop
    // loses the whole batch (the unit that actually crosses the wire).
    switch (injector_->OnAsyncMessage(src, dst, id)) {
      case FaultInjector::AsyncAction::kDrop: {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.dropped += message_count;
        ++stats_.injected_drops;
      }
        MaybeTriggerCrashes(src, dst);
        return Status::OK();
      case FaultInjector::AsyncAction::kDuplicate: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.injected_duplicates;
        copies = 2;
        break;
      }
      case FaultInjector::AsyncAction::kDeliver:
        break;
    }
  }
  if (src == dst) {
    for (int c = 0; c < copies; ++c) Deliver(src, dst, id, payload);
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  std::size_t transfers;
  std::size_t wire_bytes;
  if (params_.pack_messages) {
    transfers = payload.empty()
                    ? 1
                    : (payload.size() + params_.pack_threshold_bytes - 1) /
                          params_.pack_threshold_bytes;
    wire_bytes = payload.size() + transfers * params_.frame_overhead_bytes;
  } else {
    // Ablation baseline: the caller packed in vain — meter it as if every
    // logical message went out framed on its own.
    transfers = message_count > 0 ? message_count : 1;
    wire_bytes = payload.size() + transfers * params_.frame_overhead_bytes;
  }
  for (int c = 0; c < copies; ++c) {
    AccountTransfer(src, dst, wire_bytes, transfers);
    Deliver(src, dst, id, payload);
  }
  MaybeTriggerCrashes(src, dst);
  return Status::OK();
}

Status Fabric::Call(MachineId src, MachineId dst, HandlerId id, Slice payload,
                    std::string* response) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sync_calls;
    if (src >= 0 && src < num_machines_ && !machine_up_[src]) {
      ++stats_.dropped;
      return Status::Unavailable("source machine is down");
    }
    if (!machine_up_[dst]) {
      ++stats_.dropped;
      return Status::Unavailable("destination machine is down");
    }
  }
  if (injector_ != nullptr) {
    // An injected failure happens "on the wire": the handler never runs,
    // exactly as if the request (or its response) was lost.
    Status injected = injector_->OnCall(src, dst, id);
    if (!injected.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.injected_call_failures;
      }
      MaybeTriggerCrashes(src, dst);
      return injected;
    }
  }
  SyncHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sync_handlers_[dst].find(id);
    if (it == sync_handlers_[dst].end()) {
      return Status::NotFound("no sync handler registered");
    }
    handler = it->second;
  }
  if (src != dst) {
    // Request + response are two physical transfers.
    AccountTransfer(src, dst, payload.size() + params_.frame_overhead_bytes,
                    1);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.local_messages;
  }
  Status s;
  {
    MeterScope meter(*this, dst);
    s = handler(src, payload, response);
  }
  if (src != dst && response != nullptr) {
    AccountTransfer(dst, src, response->size() + params_.frame_overhead_bytes,
                    1);
  }
  MaybeTriggerCrashes(src, dst);
  return s;
}

void Fabric::Flush(MachineId src) {
  std::unique_lock<std::mutex> lock(mu_);
  for (MachineId dst = 0; dst < num_machines_; ++dst) {
    FlushPairLocked(src, dst, /*force=*/false);
  }
}

void Fabric::FlushAll() {
  // Delivering packed messages can enqueue new ones (recursive algorithms),
  // so iterate until the whole fabric drains. FlushAll overrides injected
  // flush delays — it is the fabric-wide barrier.
  for (;;) {
    bool any = false;
    for (MachineId src = 0; src < num_machines_; ++src) {
      for (MachineId dst = 0; dst < num_machines_; ++dst) {
        std::unique_lock<std::mutex> lock(mu_);
        if (!pair_buffers_[PairIndex(src, dst)].messages.empty()) {
          any = true;
          FlushPairLocked(src, dst, /*force=*/true);
        }
      }
    }
    if (!any) return;
  }
}

void Fabric::FlushPairLocked(MachineId src, MachineId dst, bool force) {
  // Precondition: mu_ held by the caller's unique_lock. We move the buffer
  // out, release the lock, and deliver — handlers may legally re-enter
  // SendAsync on this pair.
  PairBuffer& buf = pair_buffers_[PairIndex(src, dst)];
  if (buf.messages.empty()) return;
  if (!force && injector_ != nullptr && injector_->DelayFlush(src, dst)) {
    // Injected delay: the buffer stays queued until the next FlushAll.
    ++stats_.delayed_flushes;
    return;
  }
  std::vector<PackedMessage> batch = std::move(buf.messages);
  std::size_t bytes = buf.bytes;
  buf.messages.clear();
  buf.bytes = 0;
  const bool alive = machine_up_[dst];
  if (!alive) {
    stats_.dropped += batch.size();
    return;
  }
  mu_.unlock();
  AccountTransfer(src, dst, bytes, 1);
  for (const auto& msg : batch) {
    Deliver(src, dst, msg.handler, Slice(msg.payload));
  }
  mu_.lock();
}

void Fabric::Deliver(MachineId src, MachineId dst, HandlerId id,
                     Slice payload) {
  AsyncHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!machine_up_[dst]) {
      ++stats_.dropped;
      return;
    }
    auto it = async_handlers_[dst].find(id);
    if (it == async_handlers_[dst].end()) {
      TRINITY_WARN("no async handler %u on machine %d", id, dst);
      return;
    }
    handler = it->second;
  }
  MeterScope meter(*this, dst);
  handler(src, payload);
}

void Fabric::AccountTransfer(MachineId src, MachineId dst, std::size_t bytes,
                             std::size_t transfer_count) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.transfers += transfer_count;
  stats_.bytes += bytes;
  traffic_.bytes_out[src] += bytes;
  traffic_.bytes_in[dst] += bytes;
  traffic_.transfers_out[src] += transfer_count;
  traffic_.transfers_in[dst] += transfer_count;
}

void Fabric::SetFaultInjector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

void Fabric::SetCrashListener(std::function<void(MachineId)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_listener_ = std::move(listener);
}

void Fabric::MaybeTriggerCrashes(MachineId src, MachineId dst) {
  if (injector_ == nullptr) return;
  for (MachineId m : injector_->NoteMessage(src, dst)) {
    bool fired = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (machine_up_[m]) {
        machine_up_[m] = false;
        ++stats_.injected_crashes;
        fired = true;
      }
    }
    // The listener runs outside mu_ so it may call back into the fabric
    // (e.g. the memory cloud dropping the crashed machine's storage).
    if (fired && crash_listener_) crash_listener_(m);
  }
}

void Fabric::SetMachineDown(MachineId machine) {
  std::lock_guard<std::mutex> lock(mu_);
  machine_up_[machine] = false;
  // Messages already queued toward a dead machine will be dropped at flush.
}

void Fabric::SetMachineUp(MachineId machine) {
  std::lock_guard<std::mutex> lock(mu_);
  machine_up_[machine] = true;
}

bool Fabric::IsMachineUp(MachineId machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (machine < 0 || machine >= num_machines_) return false;
  return machine_up_[machine];
}

void Fabric::AddCpuMicros(MachineId machine, double micros) {
  std::lock_guard<std::mutex> lock(mu_);
  cpu_micros_[machine] += micros;
}

double Fabric::cpu_micros(MachineId machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cpu_micros_[machine];
}

double Fabric::MaxCpuMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  double max = 0.0;
  for (double v : cpu_micros_) max = std::max(max, v);
  return max;
}

NetworkStats Fabric::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PerMachineTraffic Fabric::traffic() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traffic_;
}

void Fabric::ResetMeters() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = NetworkStats();
  cpu_micros_.assign(num_machines_, 0.0);
  traffic_.bytes_in.assign(num_machines_, 0);
  traffic_.bytes_out.assign(num_machines_, 0);
  traffic_.transfers_in.assign(num_machines_, 0);
  traffic_.transfers_out.assign(num_machines_, 0);
}

}  // namespace trinity::net
