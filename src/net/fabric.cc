#include "net/fabric.h"

#include <utility>

#include "common/logging.h"

namespace trinity::net {

Fabric::Fabric(int num_machines) : Fabric(num_machines, Params()) {}

Fabric::Fabric(int num_machines, Params params)
    : num_machines_(num_machines), params_(params) {
  TRINITY_CHECK(num_machines >= 1, "fabric needs at least one machine");
  async_handlers_.resize(num_machines_);
  sync_handlers_.resize(num_machines_);
  pair_buffers_.resize(static_cast<std::size_t>(num_machines_) *
                       num_machines_);
  const std::size_t n = static_cast<std::size_t>(num_machines_);
  machine_up_ = std::make_unique<std::atomic<bool>[]>(n);
  cpu_micros_ = std::make_unique<std::atomic<double>[]>(n);
  traffic_bytes_in_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  traffic_bytes_out_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  traffic_transfers_in_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  traffic_transfers_out_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    machine_up_[i].store(true, std::memory_order_relaxed);
    cpu_micros_[i].store(0.0, std::memory_order_relaxed);
    traffic_bytes_in_[i].store(0, std::memory_order_relaxed);
    traffic_bytes_out_[i].store(0, std::memory_order_relaxed);
    traffic_transfers_in_[i].store(0, std::memory_order_relaxed);
    traffic_transfers_out_[i].store(0, std::memory_order_relaxed);
  }
}

void Fabric::RegisterAsyncHandler(MachineId machine, HandlerId id,
                                  AsyncHandler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  async_handlers_[machine][id] = std::move(fn);
}

void Fabric::RegisterSyncHandler(MachineId machine, HandlerId id,
                                 SyncHandler fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_handlers_[machine][id] = std::move(fn);
}

Status Fabric::SendAsync(MachineId src, MachineId dst, HandlerId id,
                         Slice payload) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  stats_.messages.fetch_add(1, std::memory_order_relaxed);
  if (src >= 0 && src < num_machines_ &&
      !machine_up_[src].load(std::memory_order_acquire)) {
    // A crashed machine cannot originate traffic; callers still running on
    // its behalf (e.g. a vertex program mid-superstep) see the failure.
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("source machine is down");
  }
  if (!machine_up_[dst].load(std::memory_order_acquire)) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("destination machine is down");
  }
  if (src == dst) {
    stats_.local_messages.fetch_add(1, std::memory_order_relaxed);
  }
  int copies = 1;
  if (injector_ != nullptr) {
    switch (injector_->OnAsyncMessage(src, dst, id)) {
      case FaultInjector::AsyncAction::kDrop:
        // Silent loss: the sender believes the send succeeded — that is the
        // fault being modeled.
        stats_.dropped.fetch_add(1, std::memory_order_relaxed);
        stats_.injected_drops.fetch_add(1, std::memory_order_relaxed);
        MaybeTriggerCrashes(src, dst);
        return Status::OK();
      case FaultInjector::AsyncAction::kDuplicate:
        stats_.injected_duplicates.fetch_add(1, std::memory_order_relaxed);
        copies = 2;
        break;
      case FaultInjector::AsyncAction::kDeliver:
        break;
    }
  }
  if (src == dst) {
    // Local delivery never touches the wire.
    for (int c = 0; c < copies; ++c) Deliver(src, dst, id, payload);
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  if (!params_.pack_messages) {
    // Ablation mode: every message is its own physical transfer.
    for (int c = 0; c < copies; ++c) {
      AccountTransfer(src, dst, payload.size() + params_.frame_overhead_bytes,
                      1);
      Deliver(src, dst, id, payload);
    }
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  bool flush_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PairBuffer& buf = pair_buffers_[PairIndex(src, dst)];
    for (int c = 0; c < copies; ++c) {
      buf.messages.push_back(PackedMessage{id, payload.ToString()});
      buf.bytes += payload.size() + params_.frame_overhead_bytes;
    }
    flush_now = buf.bytes >= params_.pack_threshold_bytes;
  }
  if (flush_now) {
    std::unique_lock<std::mutex> lock(mu_);
    FlushPairLocked(src, dst, /*force=*/false);
  }
  MaybeTriggerCrashes(src, dst);
  return Status::OK();
}

Status Fabric::SendPacked(MachineId src, MachineId dst, HandlerId id,
                          Slice payload, std::uint64_t message_count) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  stats_.messages.fetch_add(message_count, std::memory_order_relaxed);
  if (src >= 0 && src < num_machines_ &&
      !machine_up_[src].load(std::memory_order_acquire)) {
    stats_.dropped.fetch_add(message_count, std::memory_order_relaxed);
    return Status::Unavailable("source machine is down");
  }
  if (!machine_up_[dst].load(std::memory_order_acquire)) {
    stats_.dropped.fetch_add(message_count, std::memory_order_relaxed);
    return Status::Unavailable("destination machine is down");
  }
  if (src == dst) {
    stats_.local_messages.fetch_add(message_count, std::memory_order_relaxed);
  }
  int copies = 1;
  if (injector_ != nullptr) {
    // The injector sees the packed payload as one message event: a drop
    // loses the whole batch (the unit that actually crosses the wire).
    switch (injector_->OnAsyncMessage(src, dst, id)) {
      case FaultInjector::AsyncAction::kDrop:
        stats_.dropped.fetch_add(message_count, std::memory_order_relaxed);
        stats_.injected_drops.fetch_add(1, std::memory_order_relaxed);
        MaybeTriggerCrashes(src, dst);
        return Status::OK();
      case FaultInjector::AsyncAction::kDuplicate:
        stats_.injected_duplicates.fetch_add(1, std::memory_order_relaxed);
        copies = 2;
        break;
      case FaultInjector::AsyncAction::kDeliver:
        break;
    }
  }
  if (src == dst) {
    for (int c = 0; c < copies; ++c) Deliver(src, dst, id, payload);
    MaybeTriggerCrashes(src, dst);
    return Status::OK();
  }
  std::size_t transfers;
  std::size_t wire_bytes;
  if (params_.pack_messages) {
    transfers = payload.empty()
                    ? 1
                    : (payload.size() + params_.pack_threshold_bytes - 1) /
                          params_.pack_threshold_bytes;
    wire_bytes = payload.size() + transfers * params_.frame_overhead_bytes;
  } else {
    // Ablation baseline: the caller packed in vain — meter it as if every
    // logical message went out framed on its own.
    transfers = message_count > 0 ? message_count : 1;
    wire_bytes = payload.size() + transfers * params_.frame_overhead_bytes;
  }
  for (int c = 0; c < copies; ++c) {
    AccountTransfer(src, dst, wire_bytes, transfers);
    Deliver(src, dst, id, payload);
  }
  MaybeTriggerCrashes(src, dst);
  return Status::OK();
}

Status Fabric::Call(MachineId src, MachineId dst, HandlerId id, Slice payload,
                    std::string* response, CallContext* ctx) {
  if (dst < 0 || dst >= num_machines_) {
    return Status::InvalidArgument("bad destination machine");
  }
  if (ctx != nullptr) {
    // A cancelled or already-expired request never touches the wire.
    Status gate = ctx->Check();
    if (!gate.ok()) return gate;
  }
  stats_.sync_calls.fetch_add(1, std::memory_order_relaxed);
  if (src >= 0 && src < num_machines_ &&
      !machine_up_[src].load(std::memory_order_acquire)) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("source machine is down");
  }
  if (!machine_up_[dst].load(std::memory_order_acquire)) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("destination machine is down");
  }
  if (injector_ != nullptr) {
    // An injected failure happens "on the wire": the handler never runs,
    // exactly as if the request (or its response) was lost.
    Status injected = injector_->OnCall(src, dst, id);
    if (!injected.ok()) {
      stats_.injected_call_failures.fetch_add(1, std::memory_order_relaxed);
      MaybeTriggerCrashes(src, dst);
      return injected;
    }
    const double delay = injector_->CallDelayMicros(src, dst, id);
    if (delay > 0.0) {
      // A straggler call: the caller blocks for `delay` simulated micros
      // before the handler runs. Charge the wait to the caller's CPU meter
      // and to the request's deadline budget.
      stats_.injected_call_delays.fetch_add(1, std::memory_order_relaxed);
      if (src >= 0 && src < num_machines_) AddCpuMicros(src, delay);
      if (ctx != nullptr) {
        if (ctx->has_deadline() && delay >= ctx->remaining_micros()) {
          // The deadline fires mid-wait; abandon the straggler.
          ctx->Consume(ctx->remaining_micros());
          MaybeTriggerCrashes(src, dst);
          return Status::DeadlineExceeded(
              "injected straggler delay outlived the request deadline");
        }
        ctx->Consume(delay);
      }
    }
  }
  SyncHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sync_handlers_[dst].find(id);
    if (it == sync_handlers_[dst].end()) {
      return Status::NotFound("no sync handler registered");
    }
    handler = it->second;
  }
  if (src != dst) {
    // Request + response are two physical transfers.
    AccountTransfer(src, dst, payload.size() + params_.frame_overhead_bytes,
                    1);
  } else {
    stats_.local_messages.fetch_add(1, std::memory_order_relaxed);
  }
  Status s;
  {
    MeterScope meter(*this, dst);
    s = handler(src, payload, response);
  }
  if (src != dst && response != nullptr) {
    AccountTransfer(dst, src, response->size() + params_.frame_overhead_bytes,
                    1);
  }
  MaybeTriggerCrashes(src, dst);
  return s;
}

void Fabric::Flush(MachineId src) {
  std::unique_lock<std::mutex> lock(mu_);
  for (MachineId dst = 0; dst < num_machines_; ++dst) {
    FlushPairLocked(src, dst, /*force=*/false);
  }
}

void Fabric::FlushAll() {
  // Delivering packed messages can enqueue new ones (recursive algorithms),
  // so iterate until the whole fabric drains. FlushAll overrides injected
  // flush delays — it is the fabric-wide barrier.
  for (;;) {
    bool any = false;
    for (MachineId src = 0; src < num_machines_; ++src) {
      for (MachineId dst = 0; dst < num_machines_; ++dst) {
        std::unique_lock<std::mutex> lock(mu_);
        if (!pair_buffers_[PairIndex(src, dst)].messages.empty()) {
          any = true;
          FlushPairLocked(src, dst, /*force=*/true);
        }
      }
    }
    if (!any) return;
  }
}

void Fabric::FlushPairLocked(MachineId src, MachineId dst, bool force) {
  // Precondition: mu_ held by the caller's unique_lock. We move the buffer
  // out, release the lock, and deliver — handlers may legally re-enter
  // SendAsync on this pair.
  PairBuffer& buf = pair_buffers_[PairIndex(src, dst)];
  if (buf.messages.empty()) return;
  if (!force && injector_ != nullptr && injector_->DelayFlush(src, dst)) {
    // Injected delay: the buffer stays queued until the next FlushAll.
    stats_.delayed_flushes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<PackedMessage> batch = std::move(buf.messages);
  std::size_t bytes = buf.bytes;
  buf.messages.clear();
  buf.bytes = 0;
  const bool alive = machine_up_[dst].load(std::memory_order_acquire);
  if (!alive) {
    stats_.dropped.fetch_add(batch.size(), std::memory_order_relaxed);
    return;
  }
  mu_.unlock();
  AccountTransfer(src, dst, bytes, 1);
  for (const auto& msg : batch) {
    Deliver(src, dst, msg.handler, Slice(msg.payload));
  }
  mu_.lock();
}

void Fabric::Deliver(MachineId src, MachineId dst, HandlerId id,
                     Slice payload) {
  AsyncHandler handler;
  {
    if (!machine_up_[dst].load(std::memory_order_acquire)) {
      stats_.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = async_handlers_[dst].find(id);
    if (it == async_handlers_[dst].end()) {
      TRINITY_WARN("no async handler %u on machine %d", id, dst);
      return;
    }
    handler = it->second;
  }
  MeterScope meter(*this, dst);
  handler(src, payload);
}

void Fabric::AccountTransfer(MachineId src, MachineId dst, std::size_t bytes,
                             std::size_t transfer_count) {
  stats_.transfers.fetch_add(transfer_count, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  traffic_bytes_out_[src].fetch_add(bytes, std::memory_order_relaxed);
  traffic_bytes_in_[dst].fetch_add(bytes, std::memory_order_relaxed);
  traffic_transfers_out_[src].fetch_add(transfer_count,
                                        std::memory_order_relaxed);
  traffic_transfers_in_[dst].fetch_add(transfer_count,
                                       std::memory_order_relaxed);
}

void Fabric::SetFaultInjector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

void Fabric::SetCrashListener(std::function<void(MachineId)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_listener_ = std::move(listener);
}

void Fabric::MaybeTriggerCrashes(MachineId src, MachineId dst) {
  if (injector_ == nullptr) return;
  for (MachineId m : injector_->NoteMessage(src, dst)) {
    // exchange() makes the down-transition race-free: exactly one caller
    // observes true→false and fires the listener.
    const bool fired = machine_up_[m].exchange(false, std::memory_order_acq_rel);
    if (fired) stats_.injected_crashes.fetch_add(1, std::memory_order_relaxed);
    // The listener runs outside mu_ so it may call back into the fabric
    // (e.g. the memory cloud dropping the crashed machine's storage).
    if (fired && crash_listener_) crash_listener_(m);
  }
}

void Fabric::SetMachineDown(MachineId machine) {
  machine_up_[machine].store(false, std::memory_order_release);
  // Messages already queued toward a dead machine will be dropped at flush.
}

void Fabric::SetMachineUp(MachineId machine) {
  machine_up_[machine].store(true, std::memory_order_release);
}

bool Fabric::IsMachineUp(MachineId machine) const {
  if (machine < 0 || machine >= num_machines_) return false;
  return machine_up_[machine].load(std::memory_order_acquire);
}

void Fabric::AddCpuMicros(MachineId machine, double micros) {
  cpu_micros_[machine].fetch_add(micros, std::memory_order_relaxed);
}

double Fabric::cpu_micros(MachineId machine) const {
  return cpu_micros_[machine].load(std::memory_order_relaxed);
}

double Fabric::MaxCpuMicros() const {
  double max = 0.0;
  for (int m = 0; m < num_machines_; ++m) {
    max = std::max(max, cpu_micros_[m].load(std::memory_order_relaxed));
  }
  return max;
}

NetworkStats Fabric::stats() const {
  // Lock-free snapshot; fields may be mutually inconsistent for an instant,
  // which is fine for meters read at phase boundaries.
  NetworkStats out;
  out.messages = stats_.messages.load(std::memory_order_relaxed);
  out.transfers = stats_.transfers.load(std::memory_order_relaxed);
  out.bytes = stats_.bytes.load(std::memory_order_relaxed);
  out.sync_calls = stats_.sync_calls.load(std::memory_order_relaxed);
  out.local_messages = stats_.local_messages.load(std::memory_order_relaxed);
  out.dropped = stats_.dropped.load(std::memory_order_relaxed);
  out.injected_drops = stats_.injected_drops.load(std::memory_order_relaxed);
  out.injected_duplicates =
      stats_.injected_duplicates.load(std::memory_order_relaxed);
  out.injected_call_failures =
      stats_.injected_call_failures.load(std::memory_order_relaxed);
  out.injected_crashes =
      stats_.injected_crashes.load(std::memory_order_relaxed);
  out.delayed_flushes =
      stats_.delayed_flushes.load(std::memory_order_relaxed);
  out.injected_call_delays =
      stats_.injected_call_delays.load(std::memory_order_relaxed);
  return out;
}

PerMachineTraffic Fabric::traffic() const {
  PerMachineTraffic out;
  const std::size_t n = static_cast<std::size_t>(num_machines_);
  out.bytes_in.resize(n);
  out.bytes_out.resize(n);
  out.transfers_in.resize(n);
  out.transfers_out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.bytes_in[i] = traffic_bytes_in_[i].load(std::memory_order_relaxed);
    out.bytes_out[i] = traffic_bytes_out_[i].load(std::memory_order_relaxed);
    out.transfers_in[i] =
        traffic_transfers_in_[i].load(std::memory_order_relaxed);
    out.transfers_out[i] =
        traffic_transfers_out_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Fabric::ResetMeters() {
  stats_.messages.store(0, std::memory_order_relaxed);
  stats_.transfers.store(0, std::memory_order_relaxed);
  stats_.bytes.store(0, std::memory_order_relaxed);
  stats_.sync_calls.store(0, std::memory_order_relaxed);
  stats_.local_messages.store(0, std::memory_order_relaxed);
  stats_.dropped.store(0, std::memory_order_relaxed);
  stats_.injected_drops.store(0, std::memory_order_relaxed);
  stats_.injected_duplicates.store(0, std::memory_order_relaxed);
  stats_.injected_call_failures.store(0, std::memory_order_relaxed);
  stats_.injected_crashes.store(0, std::memory_order_relaxed);
  stats_.delayed_flushes.store(0, std::memory_order_relaxed);
  stats_.injected_call_delays.store(0, std::memory_order_relaxed);
  for (int m = 0; m < num_machines_; ++m) {
    cpu_micros_[m].store(0.0, std::memory_order_relaxed);
    traffic_bytes_in_[m].store(0, std::memory_order_relaxed);
    traffic_bytes_out_[m].store(0, std::memory_order_relaxed);
    traffic_transfers_in_[m].store(0, std::memory_order_relaxed);
    traffic_transfers_out_[m].store(0, std::memory_order_relaxed);
  }
}

}  // namespace trinity::net
