#ifndef TRINITY_NET_COST_MODEL_H_
#define TRINITY_NET_COST_MODEL_H_

#include "net/fabric.h"

namespace trinity::net {

/// Converts one metered phase (CPU microseconds per machine + per-machine
/// NIC traffic) into the wall-clock seconds an m-machine cluster would take.
///
/// All machines of the simulated cluster execute on this single host, so raw
/// wall time says nothing about cluster scaling. Instead the engines meter
/// real work per simulated machine, and this model recombines it:
///
///   phase_time = max_m cpu(m) / cores
///              + max_m (bytes_in(m) + bytes_out(m)) / bandwidth
///              + max_m (transfers_in(m) + transfers_out(m)) * latency / overlap
///
/// The first term is the compute critical path (machines run in parallel,
/// each with `cores` worker threads). The second is NIC serialization on the
/// busiest machine. The third charges per-transfer latency, damped by
/// `overlap` concurrent requests in flight (one-sided async messaging keeps
/// many transfers outstanding). Defaults approximate the paper's testbed
/// (40 Gbps IPoIB, ~100 us round trips, dual 6-core Xeons).
class CostModel {
 public:
  struct Params {
    double cores_per_machine = 8.0;      ///< Parallel handler threads.
    double bandwidth_bytes_per_us = 500.0;  ///< ~4 Gbps effective.
    double transfer_latency_us = 100.0;
    double transfer_overlap = 16.0;      ///< Concurrent in-flight transfers.
  };

  CostModel() : params_() {}
  explicit CostModel(const Params& params) : params_(params) {}

  /// Modeled seconds for the phase currently metered in `fabric`.
  double PhaseSeconds(const Fabric& fabric) const;

  /// Modeled compute-only seconds (critical-path CPU / cores).
  double ComputeSeconds(const Fabric& fabric) const;

  /// Modeled communication-only seconds.
  double CommSeconds(const Fabric& fabric) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace trinity::net

#endif  // TRINITY_NET_COST_MODEL_H_
