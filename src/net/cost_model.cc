#include "net/cost_model.h"

#include <algorithm>

namespace trinity::net {

double CostModel::ComputeSeconds(const Fabric& fabric) const {
  return fabric.MaxCpuMicros() / params_.cores_per_machine / 1e6;
}

double CostModel::CommSeconds(const Fabric& fabric) const {
  const PerMachineTraffic traffic = fabric.traffic();
  double max_bytes = 0.0;
  double max_transfers = 0.0;
  for (int m = 0; m < fabric.num_machines(); ++m) {
    const double bytes = static_cast<double>(traffic.bytes_in[m]) +
                         static_cast<double>(traffic.bytes_out[m]);
    const double transfers = static_cast<double>(traffic.transfers_in[m]) +
                             static_cast<double>(traffic.transfers_out[m]);
    max_bytes = std::max(max_bytes, bytes);
    max_transfers = std::max(max_transfers, transfers);
  }
  const double serialization_us = max_bytes / params_.bandwidth_bytes_per_us;
  const double latency_us = max_transfers * params_.transfer_latency_us /
                            params_.transfer_overlap;
  return (serialization_us + latency_us) / 1e6;
}

double CostModel::PhaseSeconds(const Fabric& fabric) const {
  return ComputeSeconds(fabric) + CommSeconds(fabric);
}

}  // namespace trinity::net
