#include "net/fault_injector.h"

#include <algorithm>

namespace trinity::net {

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultInjector::SetDefaultPolicy(const Policy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  default_policy_ = policy;
  has_default_policy_ = true;
}

void FaultInjector::SetPairPolicy(MachineId src, MachineId dst,
                                  const Policy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  pair_policies_[{src, dst}] = policy;
}

void FaultInjector::SetHandlerRangePolicy(HandlerId lo, HandlerId hi,
                                          const Policy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  range_policies_.push_back(HandlerRangePolicy{lo, hi, policy});
}

void FaultInjector::ClearPolicies() {
  std::lock_guard<std::mutex> lock(mu_);
  has_default_policy_ = false;
  default_policy_ = Policy();
  pair_policies_.clear();
  range_policies_.clear();
}

void FaultInjector::CrashAfter(MachineId machine, std::uint64_t n_messages) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_countdown_[machine] = n_messages;
}

void FaultInjector::DropNext(MachineId src, MachineId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  ++drop_next_[{src, dst}];
}

void FaultInjector::Partition(std::vector<MachineId> a,
                              std::vector<MachineId> b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.push_back(PartitionRule{std::move(a), std::move(b)});
}

void FaultInjector::ClearPartitions() {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.clear();
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

const FaultInjector::Policy* FaultInjector::FindPolicyLocked(
    MachineId src, MachineId dst, HandlerId id) const {
  auto pair_it = pair_policies_.find({src, dst});
  if (pair_it != pair_policies_.end()) return &pair_it->second;
  // Later registrations win over earlier ones.
  for (auto it = range_policies_.rbegin(); it != range_policies_.rend();
       ++it) {
    if (id >= it->lo && id <= it->hi) return &it->policy;
  }
  if (has_default_policy_) return &default_policy_;
  return nullptr;
}

bool FaultInjector::PartitionedLocked(MachineId src, MachineId dst) const {
  auto in = [](const std::vector<MachineId>& side, MachineId m) {
    return std::find(side.begin(), side.end(), m) != side.end();
  };
  for (const PartitionRule& rule : partitions_) {
    if ((in(rule.a, src) && in(rule.b, dst)) ||
        (in(rule.b, src) && in(rule.a, dst))) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::RollLocked(double prob) {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return rng_.Bernoulli(prob);
}

FaultInjector::AsyncAction FaultInjector::OnAsyncMessage(MachineId src,
                                                         MachineId dst,
                                                         HandlerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (PartitionedLocked(src, dst)) {
    ++stats_.partition_blocks;
    ++stats_.dropped;
    return AsyncAction::kDrop;
  }
  auto drop_it = drop_next_.find({src, dst});
  if (drop_it != drop_next_.end() && drop_it->second > 0) {
    if (--drop_it->second == 0) drop_next_.erase(drop_it);
    ++stats_.dropped;
    return AsyncAction::kDrop;
  }
  const Policy* policy = FindPolicyLocked(src, dst, id);
  if (policy == nullptr) return AsyncAction::kDeliver;
  if (RollLocked(policy->drop_prob)) {
    ++stats_.dropped;
    return AsyncAction::kDrop;
  }
  if (RollLocked(policy->duplicate_prob)) {
    ++stats_.duplicated;
    return AsyncAction::kDuplicate;
  }
  return AsyncAction::kDeliver;
}

Status FaultInjector::OnCall(MachineId src, MachineId dst, HandlerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (PartitionedLocked(src, dst)) {
    ++stats_.partition_blocks;
    ++stats_.failed_calls;
    return Status::Unavailable("injected: network partition");
  }
  const Policy* policy = FindPolicyLocked(src, dst, id);
  if (policy == nullptr) return Status::OK();
  if (RollLocked(policy->call_fail_prob)) {
    ++stats_.failed_calls;
    return Status::Unavailable("injected: call failure");
  }
  if (RollLocked(policy->call_timeout_prob)) {
    ++stats_.timed_out_calls;
    return Status::TimedOut("injected: call timeout");
  }
  return Status::OK();
}

double FaultInjector::CallDelayMicros(MachineId src, MachineId dst,
                                      HandlerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const Policy* policy = FindPolicyLocked(src, dst, id);
  if (policy == nullptr) return 0.0;
  if (!RollLocked(policy->call_delay_prob)) return 0.0;
  const double lo = policy->call_delay_min_micros;
  const double hi = policy->call_delay_max_micros;
  double delay = lo;
  if (hi > lo) delay = lo + (hi - lo) * rng_.NextDouble();
  if (delay <= 0.0) return 0.0;
  ++stats_.delayed_calls;
  stats_.delay_micros_total += delay;
  return delay;
}

bool FaultInjector::DelayFlush(MachineId src, MachineId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  // Flushes are pair-level events, not handler-level; only pair and default
  // policies apply.
  const Policy* policy = FindPolicyLocked(src, dst, 0);
  if (policy == nullptr) return false;
  if (RollLocked(policy->delay_flush_prob)) {
    ++stats_.delayed_flushes;
    return true;
  }
  return false;
}

std::vector<MachineId> FaultInjector::NoteMessage(MachineId src,
                                                  MachineId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MachineId> expired;
  for (MachineId m : {src, dst}) {
    auto it = crash_countdown_.find(m);
    if (it == crash_countdown_.end()) continue;
    if (it->second > 0) --it->second;
    if (it->second == 0) {
      expired.push_back(m);
      crash_countdown_.erase(it);
      ++stats_.crashes;
    }
    if (src == dst) break;  // A self-message counts once.
  }
  return expired;
}

}  // namespace trinity::net
