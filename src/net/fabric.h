#ifndef TRINITY_NET_FABRIC_H_
#define TRINITY_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/call_context.h"
#include "common/histogram.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "net/fault_injector.h"
#include "net/network_stats.h"

namespace trinity::net {

/// The simulated cluster interconnect: Trinity's message passing framework
/// ("an efficient, one-sided, machine-to-machine message passing
/// infrastructure", §2).
///
/// All machines live in one process; a "send" is a function call into the
/// destination machine's registered handler. What makes the simulation
/// faithful is the accounting: every logical message, every physical transfer
/// after packing, every byte and every CPU microsecond spent inside a
/// machine's handlers is metered per machine, and the CostModel converts the
/// meters into the time an m-machine cluster would have taken. The *relative*
/// results (scaling curves, packing wins, baseline gaps) carry over even
/// though the process runs on one box.
///
/// Two delivery styles mirror the paper:
///  * SendAsync — one-sided fire-and-forget. Small messages to the same
///    destination are queued per (src,dst) pair and packed into a single
///    transfer when the buffer reaches `pack_threshold_bytes` or on Flush.
///  * Call — one-sided request-response (synchronous protocols in TSL).
class Fabric {
 public:
  struct Params {
    /// Pack buffer per (src,dst) pair; a flush emits one physical transfer.
    std::size_t pack_threshold_bytes = 64 * 1024;
    /// Disable packing entirely (ablation baseline: one transfer per msg).
    bool pack_messages = true;
    /// Per-message framing overhead counted on the wire.
    std::size_t frame_overhead_bytes = 16;
  };

  /// Fire-and-forget handler: (source machine, payload).
  using AsyncHandler = std::function<void(MachineId, Slice)>;
  /// Request-response handler: fills *response.
  using SyncHandler =
      std::function<Status(MachineId, Slice, std::string* response)>;

  explicit Fabric(int num_machines);
  Fabric(int num_machines, Params params);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_machines() const { return num_machines_; }

  /// Registers the handler for (machine, handler_id). Re-registration
  /// replaces the previous handler (used when a machine restarts).
  void RegisterAsyncHandler(MachineId machine, HandlerId id, AsyncHandler fn);
  void RegisterSyncHandler(MachineId machine, HandlerId id, SyncHandler fn);

  /// One-sided asynchronous message. May be buffered; delivery is guaranteed
  /// by the time Flush(src) / FlushAll() returns. Messages to dead machines
  /// are dropped and counted.
  Status SendAsync(MachineId src, MachineId dst, HandlerId id, Slice payload);

  /// One-sided delivery of a payload that already packs `message_count`
  /// logical messages (the compute engines' per-(src,dst) outboxes, §4.2).
  /// Unlike SendAsync the payload is never buffered: the caller has already
  /// done the packing, so the fabric charges `message_count` logical messages
  /// plus ceil(payload / pack_threshold_bytes) physical transfers (one per
  /// message when packing is ablated away) and delivers immediately. The
  /// attached injector sees one message event per packed payload.
  Status SendPacked(MachineId src, MachineId dst, HandlerId id, Slice payload,
                    std::uint64_t message_count);

  /// One-sided synchronous request-response. Returns Unavailable when the
  /// destination machine is down — callers use this to detect failures
  /// (paper §6.2: "machine A ... can detect the failure of machine B").
  ///
  /// `ctx`, when non-null, carries the request's deadline: a cancelled or
  /// expired context short-circuits before touching the wire, and injected
  /// straggler delays (FaultInjector call_delay) are charged against the
  /// remaining budget — a delay the budget cannot afford abandons the call
  /// with DeadlineExceeded instead of waiting out the straggler.
  Status Call(MachineId src, MachineId dst, HandlerId id, Slice payload,
              std::string* response, CallContext* ctx = nullptr);

  /// Delivers every buffered async message from `src` (all destinations).
  void Flush(MachineId src);
  /// Delivers every buffered async message in the fabric. BSP engines call
  /// this at the superstep barrier.
  void FlushAll();

  /// Simulated machine failure / restart.
  void SetMachineDown(MachineId machine);
  void SetMachineUp(MachineId machine);
  bool IsMachineUp(MachineId machine) const;

  /// Attaches a fault-injection policy (borrowed; may be null to detach).
  /// Every subsequent message event consults it: async messages can be
  /// dropped or duplicated, sync calls can fail without reaching the
  /// destination, pack-buffer flushes can be held back until FlushAll, and
  /// scripted crashes take machines down mid-protocol. All injector
  /// decisions derive from its seed, so runs are replayable.
  void SetFaultInjector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  /// Called (outside the fabric lock) whenever an injected crash schedule
  /// fires, after the machine has been marked down. The memory cloud hooks
  /// this to drop the crashed machine's storage, mirroring FailMachine.
  void SetCrashListener(std::function<void(MachineId)> listener);

  /// Adds measured CPU time to a machine's meter. Handler execution is
  /// metered automatically; compute engines additionally meter their local
  /// per-partition work through this.
  void AddCpuMicros(MachineId machine, double micros);
  double cpu_micros(MachineId machine) const;
  /// Max CPU meter across machines — the modeled critical path.
  double MaxCpuMicros() const;

  NetworkStats stats() const;
  PerMachineTraffic traffic() const;

  /// Clears the traffic + CPU meters (not the handlers). Engines call this
  /// at phase boundaries so the cost model sees one phase at a time.
  void ResetMeters();

  /// RAII CPU meter: measures the enclosed scope and charges it to machine.
  class MeterScope {
   public:
    MeterScope(Fabric& fabric, MachineId machine)
        : fabric_(fabric), machine_(machine) {}
    ~MeterScope() { fabric_.AddCpuMicros(machine_, watch_.ElapsedMicros()); }
    MeterScope(const MeterScope&) = delete;
    MeterScope& operator=(const MeterScope&) = delete;

   private:
    Fabric& fabric_;
    MachineId machine_;
    Stopwatch watch_;
  };

 private:
  struct PackedMessage {
    HandlerId handler;
    std::string payload;
  };

  struct PairBuffer {
    std::vector<PackedMessage> messages;
    std::size_t bytes = 0;
  };

  int PairIndex(MachineId src, MachineId dst) const {
    return src * num_machines_ + dst;
  }

  /// Delivers one pair buffer as a single physical transfer. When `force` is
  /// false the attached injector may hold the buffer back (delayed flush);
  /// FlushAll forces delivery.
  void FlushPairLocked(MachineId src, MachineId dst, bool force);
  void Deliver(MachineId src, MachineId dst, HandlerId id, Slice payload);
  /// Charges `transfer_count` physical transfers totalling `bytes` on the
  /// src→dst wire.
  void AccountTransfer(MachineId src, MachineId dst, std::size_t bytes,
                       std::size_t transfer_count);
  /// Charges one completed message against the injector's crash schedules
  /// and executes any crash that fires. Must be called without mu_ held.
  void MaybeTriggerCrashes(MachineId src, MachineId dst);

  /// Internal atomic mirror of NetworkStats: every hot-path send bumps these
  /// with relaxed ops instead of taking mu_, so instrumentation no longer
  /// serializes concurrent readers. stats() snapshots them into the plain
  /// struct callers already consume.
  struct AtomicNetworkStats {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> transfers{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> sync_calls{0};
    std::atomic<std::uint64_t> local_messages{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> injected_drops{0};
    std::atomic<std::uint64_t> injected_duplicates{0};
    std::atomic<std::uint64_t> injected_call_failures{0};
    std::atomic<std::uint64_t> injected_crashes{0};
    std::atomic<std::uint64_t> delayed_flushes{0};
    std::atomic<std::uint64_t> injected_call_delays{0};
  };

  const int num_machines_;
  const Params params_;
  FaultInjector* injector_ = nullptr;
  std::function<void(MachineId)> crash_listener_;

  /// mu_ still guards the structural state: handler maps, pack buffers, and
  /// the injector/listener hooks. Liveness flags and all meters are atomics.
  mutable std::mutex mu_;
  std::vector<std::unordered_map<HandlerId, AsyncHandler>> async_handlers_;
  std::vector<std::unordered_map<HandlerId, SyncHandler>> sync_handlers_;
  std::vector<PairBuffer> pair_buffers_;
  std::unique_ptr<std::atomic<bool>[]> machine_up_;
  std::unique_ptr<std::atomic<double>[]> cpu_micros_;
  AtomicNetworkStats stats_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> traffic_bytes_in_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> traffic_bytes_out_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> traffic_transfers_in_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> traffic_transfers_out_;
};

}  // namespace trinity::net

#endif  // TRINITY_NET_FABRIC_H_
