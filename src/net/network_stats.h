#ifndef TRINITY_NET_NETWORK_STATS_H_
#define TRINITY_NET_NETWORK_STATS_H_

#include <cstdint>
#include <vector>

namespace trinity::net {

/// Aggregate traffic counters for the simulated interconnect.
///
/// `messages` counts logical one-sided messages; `transfers` counts physical
/// wire transfers after the batcher packed small messages together (paper
/// §4.2: "the system ... automatically pack[s] small messages between two
/// machines into a single transfer"). The gap between the two is exactly the
/// packing win the ablation benchmark measures.
struct NetworkStats {
  std::uint64_t messages = 0;      ///< Logical messages sent.
  std::uint64_t transfers = 0;     ///< Physical transfers on the wire.
  std::uint64_t bytes = 0;         ///< Payload + framing bytes moved.
  std::uint64_t sync_calls = 0;    ///< Request-response round trips.
  std::uint64_t local_messages = 0;  ///< Same-machine deliveries (free).
  std::uint64_t dropped = 0;       ///< Messages to dead machines.

  // Faults manufactured by an attached FaultInjector (all deterministic
  // given the injector's seed). `dropped` above also counts injected drops,
  // so the meters stay comparable with and without an injector.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_call_failures = 0;
  std::uint64_t injected_crashes = 0;
  std::uint64_t delayed_flushes = 0;
};

/// Per-machine traffic view used by the cost model: a machine's modeled
/// communication time depends on the bytes and transfers crossing *its* NIC.
struct PerMachineTraffic {
  std::vector<std::uint64_t> bytes_in;
  std::vector<std::uint64_t> bytes_out;
  std::vector<std::uint64_t> transfers_in;
  std::vector<std::uint64_t> transfers_out;
};

}  // namespace trinity::net

#endif  // TRINITY_NET_NETWORK_STATS_H_
