#ifndef TRINITY_NET_NETWORK_STATS_H_
#define TRINITY_NET_NETWORK_STATS_H_

#include <cstdint>
#include <vector>

namespace trinity::net {

/// Aggregate traffic counters for the simulated interconnect.
///
/// `messages` counts logical one-sided messages; `transfers` counts physical
/// wire transfers after the batcher packed small messages together (paper
/// §4.2: "the system ... automatically pack[s] small messages between two
/// machines into a single transfer"). The gap between the two is exactly the
/// packing win the ablation benchmark measures.
struct NetworkStats {
  std::uint64_t messages = 0;      ///< Logical messages sent.
  std::uint64_t transfers = 0;     ///< Physical transfers on the wire.
  std::uint64_t bytes = 0;         ///< Payload + framing bytes moved.
  std::uint64_t sync_calls = 0;    ///< Request-response round trips.
  std::uint64_t local_messages = 0;  ///< Same-machine deliveries (free).
  std::uint64_t dropped = 0;       ///< Messages to dead machines.

  // Faults manufactured by an attached FaultInjector (all deterministic
  // given the injector's seed). `dropped` above also counts injected drops,
  // so the meters stay comparable with and without an injector.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_duplicates = 0;
  std::uint64_t injected_call_failures = 0;
  std::uint64_t injected_crashes = 0;
  std::uint64_t delayed_flushes = 0;
  std::uint64_t injected_call_delays = 0;  ///< Sync calls slowed in flight.
};

/// Failover/recovery observability for the replicated memory cloud. All
/// times are *simulated* microseconds (the fabric's CPU meter), so they are
/// deterministic for a given fault-injector seed. Cumulative since the cloud
/// was created; read through MemoryCloud::recovery_stats().
struct RecoveryStats {
  std::uint64_t promotions = 0;  ///< Replica trunks promoted to primary.
  /// Simulated µs from failure detection to the addressing-table epoch bump
  /// that completes the most recent promotion (metadata flip only).
  std::uint64_t last_promote_micros = 0;
  /// Simulated µs from failure detection until the replication factor was
  /// fully restored by re-replication (includes last_promote_micros).
  std::uint64_t last_full_replication_micros = 0;
  std::uint64_t bytes_rereplicated = 0;  ///< Trunk-image bytes re-shipped.
  std::uint64_t trunks_rereplicated = 0;
  std::uint64_t degraded_reads = 0;  ///< Reads served by a replica trunk.
  /// Writes rejected because the sender's fencing epoch was stale — the
  /// split-brain counter; a stale primary's ack path shows up here.
  std::uint64_t fenced_writes = 0;
  /// Trunks reloaded from TFS because *every* in-memory replica was lost.
  std::uint64_t tfs_fallback_reloads = 0;
};

/// Per-machine traffic view used by the cost model: a machine's modeled
/// communication time depends on the bytes and transfers crossing *its* NIC.
struct PerMachineTraffic {
  std::vector<std::uint64_t> bytes_in;
  std::vector<std::uint64_t> bytes_out;
  std::vector<std::uint64_t> transfers_in;
  std::vector<std::uint64_t> transfers_out;
};

}  // namespace trinity::net

#endif  // TRINITY_NET_NETWORK_STATS_H_
