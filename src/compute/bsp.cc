#include "compute/bsp.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::compute {

void BspEngine::VertexContext::Send(CellId target, Slice message) {
  engine_->SendMessage(machine_, target, message);
}

void BspEngine::VertexContext::SendToAllOut(Slice message) {
  for (std::size_t i = 0; i < out_count_; ++i) {
    engine_->SendMessage(machine_, out_[i], message);
  }
}

void BspEngine::VertexContext::Aggregate(Slice contribution) {
  engine_->AggregateLocal(machine_, contribution);
}

void BspEngine::AggregateLocal(MachineId machine, Slice contribution) {
  if (!options_.aggregator) return;
  MachineState& state = machines_[machine];
  if (!state.has_partial_aggregate) {
    state.partial_aggregate = contribution.ToString();
    state.has_partial_aggregate = true;
  } else {
    options_.aggregator(&state.partial_aggregate, contribution);
  }
}

BspEngine::BspEngine(graph::Graph* graph, Options options)
    : graph_(graph),
      options_(std::move(options)),
      handler_id_(cloud::kBspMessageHandler) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  machines_.resize(num_slaves_);
  // Snapshot trunk ownership so per-message routing is lock-free. BSP runs
  // assume stable membership for their duration.
  trunk_owner_.resize(cloud->table().num_slots());
  owns_trunks_.assign(num_slaves_, false);
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
    if (trunk_owner_[t] >= 0 && trunk_owner_[t] < num_slaves_) {
      owns_trunks_[trunk_owner_[t]] = true;
    }
  }
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  pool_ = std::make_unique<ThreadPool>(threads);
  for (MachineId m = 0; m < num_slaves_; ++m) {
    machines_[m].vertices = graph_->LocalNodes(m);
    machines_[m].outboxes.resize(num_slaves_);
    cloud->fabric().RegisterAsyncHandler(
        m, handler_id_, [this, m](MachineId, Slice payload) {
          ReceivePacked(m, payload);
        });
  }
}

MachineId BspEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status BspEngine::CheckClusterHealthy() const {
  const net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    if (owns_trunks_[m] && !fabric.IsMachineUp(m)) {
      return Status::Unavailable("machine " + std::to_string(m) +
                                 " crashed during the BSP run");
    }
  }
  return Status::OK();
}

void BspEngine::SendMessage(MachineId src, CellId target, Slice message) {
  // Append-only into src's outbox — no locks, no fabric until the barrier.
  machines_[src].outboxes[OwnerOf(target)].Add(target, message);
}

void BspEngine::DeliverLocal(MachineId machine, CellId target,
                             Slice message) {
  MachineState& state = machines_[machine];
  if (options_.combiner) {
    auto it = state.next_acc.find(target);
    if (it == state.next_acc.end()) {
      state.next_acc.emplace(target, message.ToString());
      state.next_acc_order.push_back(target);
    } else {
      options_.combiner(&it->second, message);
    }
  } else {
    state.next_records.push_back(
        InboxRecord{target, state.next_arena.size(),
                    static_cast<std::uint32_t>(message.size())});
    state.next_arena.append(message.data(), message.size());
  }
}

void BspEngine::ReceivePacked(MachineId machine, Slice payload) {
  // Handlers fire on the driver thread while outboxes drain in canonical
  // order; just stash the packed bytes. Unpacking (and the combiner fold)
  // is per-destination work and runs in parallel inside FinalizeInboxes.
  machines_[machine].pending.emplace_back(payload.ToString());
}

void BspEngine::FlushOutboxes() {
  net::Fabric& fabric = graph_->cloud()->fabric();
  // Canonical drain order — src asc, dst asc, arrival order within a pair —
  // is what makes parallel and sequential runs deliver identical inboxes.
  for (MachineId src = 0; src < num_slaves_; ++src) {
    for (MachineId dst = 0; dst < num_slaves_; ++dst) {
      Outbox& outbox = machines_[src].outboxes[dst];
      if (outbox.empty()) continue;
      if (src == dst) {
        // Local messages bypass the fabric and its meters — the superstep
        // MeterScope already covered this work.
        ReceivePacked(src, Slice(outbox.bytes));
      } else {
        // Dead endpoints drop the batch inside the fabric (counted); the
        // post-superstep health check surfaces the crash.
        fabric.SendPacked(src, dst, handler_id_, Slice(outbox.bytes),
                          outbox.count);
      }
      outbox.Clear();
    }
  }
}

void BspEngine::FinalizeInboxes(bool* any_messages) {
  // Second parallel half of the barrier: each destination unpacks its own
  // pending payloads, folds combiners, and sorts its inbox — no machine
  // touches another's staging state, so the fan-out is lock-free.
  pool_->ParallelFor(num_slaves_, [&](int mi) {
    MachineState& state = machines_[mi];
    for (const std::string& payload : state.pending) {
      const bool ok = ForEachPackedRecord(
          Slice(payload), [this, mi](CellId target, Slice message) {
            DeliverLocal(mi, target, message);
          });
      if (!ok) {
        TRINITY_WARN("malformed packed BSP payload on machine %d", mi);
      }
    }
    state.pending.clear();
    if (options_.combiner) {
      // Materialize the folded accumulators in first-arrival order.
      state.next_arena.clear();
      state.next_records.clear();
      for (CellId target : state.next_acc_order) {
        const std::string& acc = state.next_acc[target];
        state.next_records.push_back(
            InboxRecord{target, state.next_arena.size(),
                        static_cast<std::uint32_t>(acc.size())});
        state.next_arena.append(acc);
      }
      state.next_acc.clear();
      state.next_acc_order.clear();
    }
    // Stable by target: each vertex's messages keep canonical arrival order.
    std::stable_sort(state.next_records.begin(), state.next_records.end(),
                     [](const InboxRecord& a, const InboxRecord& b) {
                       return a.target < b.target;
                     });
    state.arena.swap(state.next_arena);
    state.records.swap(state.next_records);
    state.next_arena.clear();
    state.next_records.clear();
  });
  *any_messages = false;
  for (const MachineState& state : machines_) {
    if (!state.records.empty()) *any_messages = true;
  }
}

Status BspEngine::RunSuperstep(const Program& program, int superstep,
                               bool* all_quiet) {
  net::Fabric& fabric = graph_->cloud()->fabric();
  cloud::MemoryCloud* cloud = graph_->cloud();
  // Machine-level parallelism (§5.3): each simulated slave's vertex loop
  // runs on a pool worker. A worker only touches its machine's state and
  // outboxes, so the loop is lock-free; the ParallelFor join is the first
  // half of the superstep barrier.
  pool_->ParallelFor(num_slaves_, [&](int mi) {
    const MachineId m = mi;
    MachineState& state = machines_[m];
    state.step_status = Status::OK();
    state.any_active = false;
    net::Fabric::MeterScope meter(fabric, m);
    // One storage resolution per machine per superstep; vertices then read
    // trunk memory without the cloud membership mutex.
    storage::MemoryStorage* store = cloud->storage(m);
    for (CellId v : state.vertices) {
      auto lo = std::lower_bound(
          state.records.begin(), state.records.end(), v,
          [](const InboxRecord& r, CellId id) { return r.target < id; });
      const bool has_messages =
          lo != state.records.end() && lo->target == v;
      const bool is_halted = state.halted.count(v) != 0;
      // A vertex runs if it has messages, or has not halted (superstep 0
      // activates everyone).
      if (is_halted && !has_messages) continue;
      state.any_active = true;
      state.msg_scratch.clear();
      for (auto it = lo; it != state.records.end() && it->target == v;
           ++it) {
        state.msg_scratch.emplace_back(state.arena.data() + it->offset,
                                       it->len);
      }
      VertexContext ctx;
      ctx.engine_ = this;
      ctx.machine_ = m;
      ctx.vertex_ = v;
      ctx.superstep_ = superstep;
      ctx.messages_ = &state.msg_scratch;
      ctx.value_ = &state.values[v];
      ctx.aggregated_ = Slice(aggregated_);
      Status vs = graph_->VisitLocalNode(
          store, v,
          [&](Slice data, const CellId* in, std::size_t in_count,
              const CellId* out, std::size_t out_count) {
            ctx.data_ = data;
            ctx.in_ = in;
            ctx.in_count_ = in_count;
            ctx.out_ = out;
            ctx.out_count_ = out_count;
            program(ctx);
          });
      if (!vs.ok()) {
        // A machine that crashed makes its local reads fail with NotFound;
        // report the crash, not the symptom.
        state.step_status =
            !fabric.IsMachineUp(m)
                ? Status::Unavailable("machine " + std::to_string(m) +
                                      " crashed during the BSP run")
                : vs;
        return;
      }
      if (ctx.halt_) {
        state.halted.insert(v);
      } else {
        state.halted.erase(v);
      }
    }
  });
  bool any_active = false;
  for (MachineState& state : machines_) {
    if (!state.step_status.ok()) return state.step_status;
    any_active = any_active || state.any_active;
  }
  // Second half of the barrier: drain the packed outboxes through the
  // fabric (O(machines²) sends), then anything non-engine traffic buffered.
  FlushOutboxes();
  fabric.FlushAll();
  // Fold the per-machine partial aggregates (in a real deployment each
  // machine ships one small value to the master here — negligible traffic).
  if (options_.aggregator) {
    aggregated_.clear();
    bool first = true;
    for (MachineState& state : machines_) {
      if (!state.has_partial_aggregate) continue;
      if (first) {
        aggregated_ = std::move(state.partial_aggregate);
        first = false;
      } else {
        options_.aggregator(&aggregated_, Slice(state.partial_aggregate));
      }
      state.partial_aggregate.clear();
      state.has_partial_aggregate = false;
    }
  }
  bool any_messages = false;
  FinalizeInboxes(&any_messages);
  *all_quiet = !any_messages && !any_active;
  return Status::OK();
}

Status BspEngine::Run(const Program& program, RunStats* stats) {
  *stats = RunStats();
  net::Fabric& fabric = graph_->cloud()->fabric();
  // A previous run aborted by a crash can leave messages stranded in the
  // fabric's pair buffers or in our outboxes; the first barrier of this run
  // would deliver them and corrupt superstep sums. Drain and discard.
  fabric.FlushAll();
  for (MachineState& state : machines_) {
    state.arena.clear();
    state.records.clear();
    state.pending.clear();
    state.next_arena.clear();
    state.next_records.clear();
    state.next_acc.clear();
    state.next_acc_order.clear();
    for (Outbox& outbox : state.outboxes) outbox.Clear();
  }
  int superstep = 0;
  if (options_.checkpoint_interval > 0 && options_.tfs != nullptr) {
    Status rs = TryRestoreCheckpoint(&superstep);
    if (rs.ok() && superstep > 0) stats->restored_from_checkpoint = true;
  }
  for (; superstep < options_.superstep_limit; ++superstep) {
    fabric.ResetMeters();
    Status healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    bool all_quiet = false;
    Status s = RunSuperstep(program, superstep, &all_quiet);
    if (!s.ok()) return s;
    // A machine lost mid-superstep dropped its vertices' work and any
    // messages in flight to it; surface the failure at the barrier rather
    // than computing onward with partial state.
    healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    const double step_seconds = options_.cost_model.PhaseSeconds(fabric);
    stats->superstep_seconds.push_back(step_seconds);
    stats->modeled_seconds += step_seconds;
    const net::NetworkStats net = fabric.stats();
    stats->messages += net.messages + net.local_messages;
    stats->transfers += net.transfers;
    stats->bytes += net.bytes;
    ++stats->supersteps;
    if (options_.checkpoint_interval > 0 && options_.tfs != nullptr &&
        (superstep + 1) % options_.checkpoint_interval == 0) {
      Status cs = WriteCheckpoint(superstep + 1);
      if (!cs.ok()) return cs;
      ++stats->checkpoints_written;
    }
    if (all_quiet) break;
  }
  return Status::OK();
}

Status BspEngine::GetValue(CellId vertex, std::string* out) const {
  const MachineId m = OwnerOf(vertex);
  if (m < 0 || m >= num_slaves_) return Status::NotFound("no such vertex");
  auto it = machines_[m].values.find(vertex);
  if (it == machines_[m].values.end()) {
    return Status::NotFound("no value for vertex");
  }
  *out = it->second;
  return Status::OK();
}

void BspEngine::ForEachValue(
    const std::function<void(CellId, const std::string&)>& fn) const {
  for (const MachineState& state : machines_) {
    for (const auto& [vertex, value] : state.values) {
      fn(vertex, value);
    }
  }
}

Status BspEngine::WriteCheckpoint(int superstep) {
  // Every container is serialized in sorted vertex order so two checkpoints
  // of identical state are byte-identical (unordered_map iteration order is
  // not deterministic across processes).
  BinaryWriter writer;
  writer.PutI32(superstep);
  writer.PutI32(num_slaves_);
  std::vector<CellId> ids;
  for (const MachineState& state : machines_) {
    ids.clear();
    ids.reserve(state.values.size());
    for (const auto& [vertex, value] : state.values) ids.push_back(vertex);
    std::sort(ids.begin(), ids.end());
    writer.PutU32(static_cast<std::uint32_t>(ids.size()));
    for (CellId v : ids) {
      writer.PutU64(v);
      writer.PutString(state.values.at(v));
    }
    ids.assign(state.halted.begin(), state.halted.end());
    std::sort(ids.begin(), ids.end());
    writer.PutU32(static_cast<std::uint32_t>(ids.size()));
    for (CellId v : ids) writer.PutU64(v);
    // Inbox records are sorted by target, so the groups stream out in
    // ascending vertex order — already deterministic.
    std::uint32_t groups = 0;
    for (std::size_t i = 0; i < state.records.size();) {
      std::size_t j = i;
      while (j < state.records.size() &&
             state.records[j].target == state.records[i].target) {
        ++j;
      }
      ++groups;
      i = j;
    }
    writer.PutU32(groups);
    for (std::size_t i = 0; i < state.records.size();) {
      const CellId target = state.records[i].target;
      std::size_t j = i;
      while (j < state.records.size() && state.records[j].target == target) {
        ++j;
      }
      writer.PutU64(target);
      writer.PutU32(static_cast<std::uint32_t>(j - i));
      for (std::size_t k = i; k < j; ++k) {
        writer.PutBytes(Slice(state.arena.data() + state.records[k].offset,
                              state.records[k].len));
      }
      i = j;
    }
  }
  return options_.tfs->WriteFile(options_.checkpoint_prefix + "/state",
                                 Slice(writer.buffer()));
}

Status BspEngine::TryRestoreCheckpoint(int* superstep) {
  std::string image;
  Status s =
      options_.tfs->ReadFile(options_.checkpoint_prefix + "/state", &image);
  if (!s.ok()) return s;
  BinaryReader reader{Slice(image)};
  std::int32_t step = 0, slaves = 0;
  if (!reader.GetI32(&step) || !reader.GetI32(&slaves) ||
      slaves != num_slaves_) {
    return Status::Corruption("checkpoint header mismatch");
  }
  for (MachineState& state : machines_) {
    state.values.clear();
    state.halted.clear();
    state.arena.clear();
    state.records.clear();
    state.pending.clear();
    state.next_arena.clear();
    state.next_records.clear();
    state.next_acc.clear();
    state.next_acc_order.clear();
  }
  // Each entry re-buckets through OwnerOf rather than landing on the
  // machine whose section it was written in: trunk ownership may have
  // changed between checkpoint and restore (a failover promoted replicas
  // onto survivors), and the restored state must follow the vertices to
  // their new owners. A target's messages sit contiguously in exactly one
  // section, so appending them in file order keeps their canonical arrival
  // order — the final stable sort then reproduces the exact inbox a
  // crash-free run would have had, which is what keeps restored runs
  // bit-identical.
  for (std::int32_t section = 0; section < slaves; ++section) {
    std::uint32_t count = 0;
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt values");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      std::string value;
      if (!reader.GetU64(&v) || !reader.GetString(&value)) {
        return Status::Corruption("ckpt value entry");
      }
      const MachineId owner = OwnerOf(v);
      if (owner < 0 || owner >= num_slaves_) {
        return Status::Corruption("ckpt vertex without owner");
      }
      machines_[owner].values.emplace(v, std::move(value));
    }
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt halted");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      if (!reader.GetU64(&v)) return Status::Corruption("ckpt halted entry");
      const MachineId owner = OwnerOf(v);
      if (owner < 0 || owner >= num_slaves_) {
        return Status::Corruption("ckpt vertex without owner");
      }
      machines_[owner].halted.insert(v);
    }
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt inbox");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      std::uint32_t msgs = 0;
      if (!reader.GetU64(&v) || !reader.GetU32(&msgs)) {
        return Status::Corruption("ckpt inbox entry");
      }
      const MachineId owner = OwnerOf(v);
      if (owner < 0 || owner >= num_slaves_) {
        return Status::Corruption("ckpt vertex without owner");
      }
      MachineState& dest = machines_[owner];
      for (std::uint32_t k = 0; k < msgs; ++k) {
        Slice msg;
        if (!reader.GetBytes(&msg)) return Status::Corruption("ckpt msg");
        dest.records.push_back(
            InboxRecord{v, dest.arena.size(),
                        static_cast<std::uint32_t>(msg.size())});
        dest.arena.append(msg.data(), msg.size());
      }
    }
  }
  // Batched existence check over the restored vertex set: ownership may have
  // moved since the checkpoint, and a vertex deleted from the graph in the
  // meantime must not be resurrected as ghost state. One MultiContains ships
  // one packed probe per owner machine instead of a sync call per vertex;
  // state is dropped only on a definitive NotFound — errors (owner dead,
  // promotion pending) conservatively keep the state, matching the retry
  // semantics of the superstep loop that follows.
  std::vector<CellId> restored;
  for (const MachineState& state : machines_) {
    for (const auto& [v, value] : state.values) restored.push_back(v);
  }
  std::sort(restored.begin(), restored.end());
  if (!restored.empty()) {
    cloud::MemoryCloud* cloud = graph_->cloud();
    std::vector<cloud::MemoryCloud::MultiGetResult> present;
    if (cloud->MultiContains(cloud->client_id(), restored, &present).ok()) {
      std::unordered_set<CellId> gone;
      for (std::size_t i = 0; i < restored.size(); ++i) {
        if (present[i].status.IsNotFound()) gone.insert(restored[i]);
      }
      if (!gone.empty()) {
        for (MachineState& state : machines_) {
          for (CellId v : gone) {
            state.values.erase(v);
            state.halted.erase(v);
          }
          state.records.erase(
              std::remove_if(state.records.begin(), state.records.end(),
                             [&](const InboxRecord& r) {
                               return gone.count(r.target) != 0;
                             }),
              state.records.end());
        }
      }
    }
  }
  for (MachineState& state : machines_) {
    // Normalize so the vertex loop's binary search always holds.
    std::stable_sort(state.records.begin(), state.records.end(),
                     [](const InboxRecord& a, const InboxRecord& b) {
                       return a.target < b.target;
                     });
  }
  *superstep = step;
  return Status::OK();
}

}  // namespace trinity::compute
