#include "compute/bsp.h"

#include "common/logging.h"
#include "common/serializer.h"

namespace trinity::compute {

void BspEngine::VertexContext::Send(CellId target, Slice message) {
  engine_->SendMessage(machine_, target, message);
}

void BspEngine::VertexContext::SendToAllOut(Slice message) {
  for (std::size_t i = 0; i < out_count_; ++i) {
    engine_->SendMessage(machine_, out_[i], message);
  }
}

void BspEngine::VertexContext::Aggregate(Slice contribution) {
  engine_->AggregateLocal(machine_, contribution);
}

void BspEngine::AggregateLocal(MachineId machine, Slice contribution) {
  if (!options_.aggregator) return;
  MachineState& state = machines_[machine];
  if (!state.has_partial_aggregate) {
    state.partial_aggregate = contribution.ToString();
    state.has_partial_aggregate = true;
  } else {
    options_.aggregator(&state.partial_aggregate, contribution);
  }
}

BspEngine::BspEngine(graph::Graph* graph, Options options)
    : graph_(graph),
      options_(std::move(options)),
      handler_id_(cloud::kBspMessageHandler) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  machines_.resize(num_slaves_);
  // Snapshot trunk ownership so per-message routing is lock-free. BSP runs
  // assume stable membership for their duration.
  trunk_owner_.resize(cloud->table().num_slots());
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
  }
  for (MachineId m = 0; m < num_slaves_; ++m) {
    machines_[m].vertices = graph_->LocalNodes(m);
    cloud->fabric().RegisterAsyncHandler(
        m, handler_id_, [this, m](MachineId, Slice payload) {
          BinaryReader reader(payload);
          CellId target = 0;
          Slice message;
          if (reader.GetU64(&target) && reader.GetBytes(&message)) {
            DeliverLocal(m, target, message);
          }
        });
  }
}

MachineId BspEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status BspEngine::CheckClusterHealthy() const {
  const net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    bool owns_trunks = false;
    for (MachineId owner : trunk_owner_) {
      if (owner == m) {
        owns_trunks = true;
        break;
      }
    }
    if (owns_trunks && !fabric.IsMachineUp(m)) {
      return Status::Unavailable("machine " + std::to_string(m) +
                                 " crashed during the BSP run");
    }
  }
  return Status::OK();
}

void BspEngine::SendMessage(MachineId src, CellId target, Slice message) {
  const MachineId dst = OwnerOf(target);
  if (dst == src) {
    // Local messages bypass the fabric entirely (and its CPU meter — the
    // surrounding superstep MeterScope already covers this work).
    DeliverLocal(dst, target, message);
    return;
  }
  BinaryWriter writer;
  writer.PutU64(target);
  writer.PutBytes(message);
  graph_->cloud()->fabric().SendAsync(src, dst, handler_id_,
                                      Slice(writer.buffer()));
}

void BspEngine::DeliverLocal(MachineId machine, CellId target,
                             Slice message) {
  MachineState& state = machines_[machine];
  auto& slot = state.next_inbox[target];
  if (options_.combiner) {
    if (slot.empty()) {
      slot.emplace_back(message.ToString());
    } else {
      options_.combiner(&slot.front(), message);
    }
  } else {
    slot.emplace_back(message.ToString());
  }
  state.halted.erase(target);  // A message reawakens a halted vertex.
}

Status BspEngine::RunSuperstep(const Program& program, int superstep,
                               bool* all_quiet) {
  net::Fabric& fabric = graph_->cloud()->fabric();
  bool any_active = false;
  static const std::vector<std::string> kNoMessages;
  for (MachineId m = 0; m < num_slaves_; ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    MachineState& state = machines_[m];
    for (CellId v : state.vertices) {
      auto msg_it = state.inbox.find(v);
      const bool has_messages = msg_it != state.inbox.end();
      const bool is_halted = state.halted.count(v) != 0;
      // A vertex runs if it has messages, or has not halted (superstep 0
      // activates everyone).
      if (is_halted && !has_messages) continue;
      any_active = true;
      VertexContext ctx;
      ctx.engine_ = this;
      ctx.machine_ = m;
      ctx.vertex_ = v;
      ctx.superstep_ = superstep;
      ctx.messages_ = has_messages ? &msg_it->second : &kNoMessages;
      ctx.value_ = &state.values[v];
      ctx.aggregated_ = Slice(aggregated_);
      Status vs = graph_->VisitLocalNode(
          m, v,
          [&](Slice data, const CellId* in, std::size_t in_count,
              const CellId* out, std::size_t out_count) {
            ctx.data_ = data;
            ctx.in_ = in;
            ctx.in_count_ = in_count;
            ctx.out_ = out;
            ctx.out_count_ = out_count;
            program(ctx);
          });
      if (!vs.ok()) {
        // A machine that crashed mid-superstep makes its local reads fail
        // with NotFound; report the crash, not the symptom.
        if (!fabric.IsMachineUp(m)) {
          return Status::Unavailable("machine " + std::to_string(m) +
                                     " crashed during the BSP run");
        }
        return vs;
      }
      if (ctx.halt_) {
        state.halted.insert(v);
      } else {
        state.halted.erase(v);
      }
    }
  }
  // Superstep barrier: deliver all in-flight messages.
  fabric.FlushAll();
  // Fold the per-machine partial aggregates (in a real deployment each
  // machine ships one small value to the master here — negligible traffic).
  if (options_.aggregator) {
    aggregated_.clear();
    bool first = true;
    for (MachineState& state : machines_) {
      if (!state.has_partial_aggregate) continue;
      if (first) {
        aggregated_ = std::move(state.partial_aggregate);
        first = false;
      } else {
        options_.aggregator(&aggregated_, Slice(state.partial_aggregate));
      }
      state.partial_aggregate.clear();
      state.has_partial_aggregate = false;
    }
  }
  // Swap inboxes and decide quiescence.
  bool any_messages = false;
  for (MachineState& state : machines_) {
    state.inbox = std::move(state.next_inbox);
    state.next_inbox.clear();
    if (!state.inbox.empty()) any_messages = true;
  }
  *all_quiet = !any_messages && !any_active;
  return Status::OK();
}

Status BspEngine::Run(const Program& program, RunStats* stats) {
  *stats = RunStats();
  net::Fabric& fabric = graph_->cloud()->fabric();
  // A previous run aborted by a crash leaves packed vertex messages stranded
  // in the fabric's pair buffers; the first barrier of this run would deliver
  // them and corrupt superstep sums. Drain them into our (freshly
  // re-registered) handlers and discard.
  fabric.FlushAll();
  for (MachineState& state : machines_) {
    state.inbox.clear();
    state.next_inbox.clear();
  }
  int superstep = 0;
  if (options_.checkpoint_interval > 0 && options_.tfs != nullptr) {
    Status rs = TryRestoreCheckpoint(&superstep);
    if (rs.ok() && superstep > 0) stats->restored_from_checkpoint = true;
  }
  for (; superstep < options_.superstep_limit; ++superstep) {
    fabric.ResetMeters();
    Status healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    bool all_quiet = false;
    Status s = RunSuperstep(program, superstep, &all_quiet);
    if (!s.ok()) return s;
    // A machine lost mid-superstep dropped its vertices' work and any
    // messages in flight to it; surface the failure at the barrier rather
    // than computing onward with partial state.
    healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    const double step_seconds = options_.cost_model.PhaseSeconds(fabric);
    stats->superstep_seconds.push_back(step_seconds);
    stats->modeled_seconds += step_seconds;
    const net::NetworkStats net = fabric.stats();
    stats->messages += net.messages + net.local_messages;
    stats->transfers += net.transfers;
    stats->bytes += net.bytes;
    ++stats->supersteps;
    if (options_.checkpoint_interval > 0 && options_.tfs != nullptr &&
        (superstep + 1) % options_.checkpoint_interval == 0) {
      Status cs = WriteCheckpoint(superstep + 1);
      if (!cs.ok()) return cs;
      ++stats->checkpoints_written;
    }
    if (all_quiet) break;
  }
  return Status::OK();
}

Status BspEngine::GetValue(CellId vertex, std::string* out) const {
  const MachineId m = OwnerOf(vertex);
  if (m < 0 || m >= num_slaves_) return Status::NotFound("no such vertex");
  auto it = machines_[m].values.find(vertex);
  if (it == machines_[m].values.end()) {
    return Status::NotFound("no value for vertex");
  }
  *out = it->second;
  return Status::OK();
}

void BspEngine::ForEachValue(
    const std::function<void(CellId, const std::string&)>& fn) const {
  for (const MachineState& state : machines_) {
    for (const auto& [vertex, value] : state.values) {
      fn(vertex, value);
    }
  }
}

Status BspEngine::WriteCheckpoint(int superstep) {
  BinaryWriter writer;
  writer.PutI32(superstep);
  writer.PutI32(num_slaves_);
  for (const MachineState& state : machines_) {
    writer.PutU32(static_cast<std::uint32_t>(state.values.size()));
    for (const auto& [vertex, value] : state.values) {
      writer.PutU64(vertex);
      writer.PutString(value);
    }
    writer.PutU32(static_cast<std::uint32_t>(state.halted.size()));
    for (CellId v : state.halted) writer.PutU64(v);
    writer.PutU32(static_cast<std::uint32_t>(state.inbox.size()));
    for (const auto& [vertex, messages] : state.inbox) {
      writer.PutU64(vertex);
      writer.PutU32(static_cast<std::uint32_t>(messages.size()));
      for (const std::string& msg : messages) writer.PutString(msg);
    }
  }
  return options_.tfs->WriteFile(options_.checkpoint_prefix + "/state",
                                 Slice(writer.buffer()));
}

Status BspEngine::TryRestoreCheckpoint(int* superstep) {
  std::string image;
  Status s =
      options_.tfs->ReadFile(options_.checkpoint_prefix + "/state", &image);
  if (!s.ok()) return s;
  BinaryReader reader{Slice(image)};
  std::int32_t step = 0, slaves = 0;
  if (!reader.GetI32(&step) || !reader.GetI32(&slaves) ||
      slaves != num_slaves_) {
    return Status::Corruption("checkpoint header mismatch");
  }
  for (MachineState& state : machines_) {
    state.values.clear();
    state.halted.clear();
    state.inbox.clear();
    state.next_inbox.clear();
    std::uint32_t count = 0;
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt values");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      std::string value;
      if (!reader.GetU64(&v) || !reader.GetString(&value)) {
        return Status::Corruption("ckpt value entry");
      }
      state.values.emplace(v, std::move(value));
    }
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt halted");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      if (!reader.GetU64(&v)) return Status::Corruption("ckpt halted entry");
      state.halted.insert(v);
    }
    if (!reader.GetU32(&count)) return Status::Corruption("ckpt inbox");
    for (std::uint32_t i = 0; i < count; ++i) {
      CellId v = 0;
      std::uint32_t msgs = 0;
      if (!reader.GetU64(&v) || !reader.GetU32(&msgs)) {
        return Status::Corruption("ckpt inbox entry");
      }
      auto& slot = state.inbox[v];
      for (std::uint32_t k = 0; k < msgs; ++k) {
        std::string msg;
        if (!reader.GetString(&msg)) return Status::Corruption("ckpt msg");
        slot.push_back(std::move(msg));
      }
    }
  }
  *superstep = step;
  return Status::OK();
}

}  // namespace trinity::compute
