#ifndef TRINITY_COMPUTE_PACKED_MESSAGES_H_
#define TRINITY_COMPUTE_PACKED_MESSAGES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/types.h"

namespace trinity::compute {

/// Flat wire format shared by the compute engines' per-(src,dst) outboxes
/// (paper §4.2 message packing, done explicitly at the engine layer):
///
///   record := [target u64][len u32][len bytes]
///
/// A vertex send appends one record to the outbox owned by the sending
/// machine's worker thread; the whole buffer travels through the fabric as a
/// single packed payload at the superstep barrier, so the fabric mutex is
/// taken O(machines^2) times per superstep instead of once per message.
inline void AppendPackedRecord(std::string* buf, CellId target, Slice msg) {
  const std::uint32_t len = static_cast<std::uint32_t>(msg.size());
  char header[12];
  std::memcpy(header, &target, 8);
  std::memcpy(header + 8, &len, 4);
  buf->append(header, 12);
  buf->append(msg.data(), msg.size());
}

/// Iterates the records of one packed payload in arrival order. Returns
/// false on a malformed buffer (truncated record).
template <typename Fn>
inline bool ForEachPackedRecord(Slice payload, const Fn& fn) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    if (pos + 12 > payload.size()) return false;
    CellId target = 0;
    std::uint32_t len = 0;
    std::memcpy(&target, payload.data() + pos, 8);
    std::memcpy(&len, payload.data() + pos + 8, 4);
    pos += 12;
    if (pos + len > payload.size()) return false;
    fn(target, Slice(payload.data() + pos, len));
    pos += len;
  }
  return true;
}

/// One machine's outgoing buffer toward a single destination machine.
/// Append-only during a superstep (touched by exactly one worker thread),
/// flushed and cleared at the barrier.
struct Outbox {
  std::string bytes;
  std::uint64_t count = 0;

  void Add(CellId target, Slice msg) {
    AppendPackedRecord(&bytes, target, msg);
    ++count;
  }
  bool empty() const { return count == 0; }
  void Clear() {
    bytes.clear();
    count = 0;
  }
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_PACKED_MESSAGES_H_
