#ifndef TRINITY_COMPUTE_MESSAGE_OPTIMIZER_H_
#define TRINITY_COMPUTE_MESSAGE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace trinity::compute {

/// Message delivery policies for the restrictive vertex-centric model
/// (paper §5.4). From the local machine's bipartite view (local vertices on
/// one side, the remote vertices that message them on the other):
enum class DeliveryPolicy {
  /// Buffer every remote message for the whole iteration ("one naive
  /// approach": huge memory; every message delivered once).
  kBufferAll,
  /// No buffering: fetch a vertex's messages when it is scheduled, discard
  /// after use ("another naive approach": minimal memory; a remote sender
  /// shared by k local vertices is delivered k times).
  kOnDemand,
  /// Buffer only messages from hub vertices (high-degree remote senders)
  /// for the whole iteration; everything else on demand.
  kHubBuffered,
  /// Hubs buffered + local vertices partitioned (bipartite partition, Fig
  /// 9b); non-hub messages are delivered once per partition that needs
  /// them, ordered by per-machine action scripts.
  kHubPlusPartition,
};

/// Outcome of analyzing one machine's message plan for one iteration of the
/// restrictive model (every local vertex needs one message from each of its
/// in-neighbors).
struct MessagePlanReport {
  std::uint64_t local_vertices = 0;
  std::uint64_t logical_messages = 0;    ///< Messages vertices consume.
  std::uint64_t delivered_messages = 0;  ///< Wire deliveries under policy.
  std::uint64_t peak_buffer_bytes = 0;   ///< High-water buffered bytes.
  std::uint64_t hub_count = 0;           ///< Remote senders classified hub.
  double hub_coverage = 0.0;  ///< Fraction of needs served by hub buffer.
};

/// Memory-residency estimate from the paper's Type A/B analysis (§5.4,
/// Fig 10): S = V(16+k+l+m) + 8E when everything is resident versus
/// S' = pS + (1-p) V (16+m) when only the scheduled partition keeps full
/// cell structure.
struct ResidencyReport {
  double full_bytes = 0;      ///< S.
  double offline_bytes = 0;   ///< S'.
  double saved_bytes = 0;     ///< S - S'.
};

/// Analyzer for Trinity's message-passing optimization. Works on the real
/// distributed graph: for a given machine it derives the bipartite view and
/// computes delivery counts and buffer high-water marks under each policy —
/// the quantities the §5.4 ablation benchmark sweeps.
class MessageOptimizer {
 public:
  struct Options {
    DeliveryPolicy policy = DeliveryPolicy::kHubPlusPartition;
    /// Remote senders in the top `hub_fraction` by local fan-out are hubs.
    double hub_fraction = 0.01;
    /// Number of bipartite partitions of the local vertex set.
    int num_partitions = 8;
    /// Message payload size (bytes) used for buffer accounting.
    std::size_t message_bytes = 8;
    /// Partition local vertices with the multilevel partitioner over the
    /// shared-sender graph (two receivers connect when a remote sender
    /// feeds both), instead of naive contiguous ranges. Groups co-fed
    /// receivers together, so senders hit fewer partitions — the paper's
    /// "bipartite partition" done properly (Fig 9b).
    bool use_multilevel_partition = false;
  };

  /// Analyzes machine `m`'s plan for one restrictive-model iteration.
  static Status Analyze(graph::Graph* graph, MachineId machine,
                        const Options& options, MessagePlanReport* report);

  /// Paper formula evaluation with measured V, E and the given per-vertex
  /// attribute/local/message sizes (defaults k=l=m=8 as in §5.4).
  static ResidencyReport Residency(std::uint64_t num_vertices,
                                   std::uint64_t num_edges,
                                   double attr_bytes = 8,
                                   double local_bytes = 8,
                                   double message_bytes = 8,
                                   double scheduled_fraction = 0.1);
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_MESSAGE_OPTIMIZER_H_
