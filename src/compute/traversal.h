#ifndef TRINITY_COMPUTE_TRAVERSAL_H_
#define TRINITY_COMPUTE_TRAVERSAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/call_context.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/graph.h"
#include "net/cost_model.h"

namespace trinity::compute {

/// Traversal-based online query engine (paper §5.1): the substrate for
/// people search and other k-hop exploration queries. "The algorithm simply
/// sends asynchronous requests recursively to remote machines, and the
/// performance is achieved by efficient memory access and optimization of
/// network communication."
///
/// The engine runs a level-synchronous distributed expansion: each machine
/// expands the frontier vertices it owns against its local trunks
/// (zero-copy), and forwards newly discovered remote vertices as packed
/// one-sided payloads — one per (src,dst) machine pair per round (§4.2).
/// With num_threads > 1 the per-machine expansions of one round run on pool
/// workers. Query latency is modeled per round — exactly the round-trip
/// structure a real deployment would see — and summed into
/// QueryStats::modeled_millis, the number Fig 12(a) plots.
class TraversalEngine {
 public:
  struct Options {
    net::CostModel cost_model;
    /// Worker threads for the per-machine frontier expansion. Defaults to 1
    /// (sequential) because the Visitor runs on the worker that owns the
    /// vertex: with num_threads > 1 the visitor MUST be safe to call
    /// concurrently from different machines' workers. Bfs() is internally
    /// parallel-safe. 0 = one thread per hardware thread.
    int num_threads = 1;
  };

  struct QueryStats {
    double modeled_millis = 0;
    std::uint64_t visited = 0;
    int rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t transfers = 0;
  };

  /// Visitor invoked once per visited vertex, on the machine that owns it.
  /// `data` is the node payload (e.g. the person's name). Returning false
  /// prunes expansion below this vertex (its neighbors are not enqueued).
  /// See Options::num_threads for the concurrency contract.
  using Visitor = std::function<bool(CellId vertex, int depth, Slice data)>;

  TraversalEngine(graph::Graph* graph, Options options);
  explicit TraversalEngine(graph::Graph* graph);

  TraversalEngine(const TraversalEngine&) = delete;
  TraversalEngine& operator=(const TraversalEngine&) = delete;

  /// Explores the out-neighborhood of `start` up to `max_depth` hops,
  /// invoking `visit` for every distinct vertex reached (including the
  /// start at depth 0). Each vertex is visited exactly once.
  ///
  /// `ctx`, when non-null, bounds the query: the deadline is checked at
  /// every round barrier and each round's modeled latency is charged
  /// against the budget, so a query that cannot finish in time returns
  /// DeadlineExceeded (or Aborted when cancelled) with the rounds it
  /// completed already reflected in `stats`.
  Status KHopExplore(CellId start, int max_depth, const Visitor& visit,
                     QueryStats* stats, CallContext* ctx = nullptr);

  /// Distributed BFS from `start` over the whole graph; returns the hop
  /// distance per reached vertex. This is the Fig 12(c)/Fig 13 kernel.
  /// Parallel-safe regardless of num_threads (distances are collected per
  /// owning machine and merged after the run).
  Status Bfs(CellId start,
             std::unordered_map<CellId, std::uint32_t>* distances,
             QueryStats* stats, CallContext* ctx = nullptr);

 private:
  MachineId OwnerOf(CellId vertex) const;

  graph::Graph* graph_;
  Options options_;
  std::vector<MachineId> trunk_owner_;
  std::unique_ptr<ThreadPool> pool_;
  int num_slaves_;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_TRAVERSAL_H_
