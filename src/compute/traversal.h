#ifndef TRINITY_COMPUTE_TRAVERSAL_H_
#define TRINITY_COMPUTE_TRAVERSAL_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "net/cost_model.h"

namespace trinity::compute {

/// Traversal-based online query engine (paper §5.1): the substrate for
/// people search and other k-hop exploration queries. "The algorithm simply
/// sends asynchronous requests recursively to remote machines, and the
/// performance is achieved by efficient memory access and optimization of
/// network communication."
///
/// The engine runs a level-synchronous distributed expansion: each machine
/// expands the frontier vertices it owns against its local trunks
/// (zero-copy), and forwards newly discovered remote vertices as packed
/// one-sided messages. Query latency is modeled per round — exactly the
/// round-trip structure a real deployment would see — and summed into
/// QueryStats::modeled_millis, the number Fig 12(a) plots.
class TraversalEngine {
 public:
  struct Options {
    net::CostModel cost_model;
  };

  struct QueryStats {
    double modeled_millis = 0;
    std::uint64_t visited = 0;
    int rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t transfers = 0;
  };

  /// Visitor invoked once per visited vertex, on the machine that owns it.
  /// `data` is the node payload (e.g. the person's name). Returning false
  /// prunes expansion below this vertex (its neighbors are not enqueued).
  using Visitor = std::function<bool(CellId vertex, int depth, Slice data)>;

  TraversalEngine(graph::Graph* graph, Options options);
  explicit TraversalEngine(graph::Graph* graph);

  TraversalEngine(const TraversalEngine&) = delete;
  TraversalEngine& operator=(const TraversalEngine&) = delete;

  /// Explores the out-neighborhood of `start` up to `max_depth` hops,
  /// invoking `visit` for every distinct vertex reached (including the
  /// start at depth 0). Each vertex is visited exactly once.
  Status KHopExplore(CellId start, int max_depth, const Visitor& visit,
                     QueryStats* stats);

  /// Distributed BFS from `start` over the whole graph; returns the hop
  /// distance per reached vertex. This is the Fig 12(c)/Fig 13 kernel.
  Status Bfs(CellId start,
             std::unordered_map<CellId, std::uint32_t>* distances,
             QueryStats* stats);

 private:
  MachineId OwnerOf(CellId vertex) const;

  graph::Graph* graph_;
  Options options_;
  std::vector<MachineId> trunk_owner_;
  int num_slaves_;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_TRAVERSAL_H_
