#include "compute/message_optimizer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/partition.h"

namespace trinity::compute {

Status MessageOptimizer::Analyze(graph::Graph* graph, MachineId machine,
                                 const Options& options,
                                 MessagePlanReport* report) {
  *report = MessagePlanReport();
  // Build the local machine's bipartite view (Fig 9a): for every local
  // vertex, the remote senders it needs a message from. In the restrictive
  // model a vertex's senders are exactly its in-neighbors (undirected
  // graphs: its neighbors).
  const std::vector<CellId> local = graph->LocalNodes(machine);
  report->local_vertices = local.size();
  if (local.empty()) return Status::OK();

  // remote sender -> local receivers (as indices into `local`).
  std::unordered_map<CellId, std::vector<std::uint32_t>> senders;
  std::uint64_t logical = 0;
  const bool directed = graph->options().directed;
  // Resolve the machine's storage once; the per-vertex scan below then never
  // touches the cloud membership mutex.
  storage::MemoryStorage* store = graph->cloud()->storage(machine);
  if (store == nullptr) return Status::NotFound("not a slave");
  for (std::uint32_t idx = 0; idx < local.size(); ++idx) {
    Status s = graph->VisitLocalNode(
        store, local[idx],
        [&](Slice, const CellId* in, std::size_t in_count, const CellId* out,
            std::size_t out_count) {
          const CellId* from = directed ? in : out;
          const std::size_t count = directed ? in_count : out_count;
          for (std::size_t i = 0; i < count; ++i) {
            ++logical;
            if (graph->MachineOfNode(from[i]) == machine) continue;
            senders[from[i]].push_back(idx);
          }
        });
    if (!s.ok()) return s;
  }
  report->logical_messages = logical;

  // Classify hubs: the top hub_fraction remote senders by local fan-out
  // (§5.4: "vertices having a large degree and connecting to a great
  // percentage of local vertices").
  std::vector<std::pair<std::uint64_t, CellId>> fanout;
  fanout.reserve(senders.size());
  std::uint64_t remote_needs = 0;
  for (const auto& [sender, receivers] : senders) {
    fanout.emplace_back(receivers.size(), sender);
    remote_needs += receivers.size();
  }
  std::sort(fanout.rbegin(), fanout.rend());
  const std::size_t hub_count =
      options.policy == DeliveryPolicy::kHubBuffered ||
              options.policy == DeliveryPolicy::kHubPlusPartition
          ? static_cast<std::size_t>(
                static_cast<double>(fanout.size()) * options.hub_fraction)
          : 0;
  std::unordered_set<CellId> hubs;
  std::uint64_t hub_served = 0;
  for (std::size_t i = 0; i < hub_count && i < fanout.size(); ++i) {
    hubs.insert(fanout[i].second);
    hub_served += fanout[i].first;
  }
  report->hub_count = hubs.size();
  report->hub_coverage =
      remote_needs == 0
          ? 0.0
          : static_cast<double>(hub_served) / static_cast<double>(remote_needs);

  // Partition the local vertices (Fig 9b): either naive contiguous ranges,
  // or a real multilevel partition of the shared-sender graph (receivers
  // fed by the same sender attract each other into one partition).
  const int parts =
      options.policy == DeliveryPolicy::kHubPlusPartition
          ? std::max(1, options.num_partitions)
          : 1;
  std::vector<std::int32_t> assignment;
  if (options.use_multilevel_partition && parts > 1) {
    graph::Generators::EdgeList shared;
    shared.num_nodes = local.size();
    for (const auto& [sender, receivers] : senders) {
      if (hubs.count(sender) != 0) continue;  // Hubs bypass partitioning.
      // Chain this sender's receivers so the partitioner pulls them
      // together (a clique would be quadratic; a path carries the signal).
      for (std::size_t i = 1; i < receivers.size(); ++i) {
        shared.edges.emplace_back(receivers[i - 1], receivers[i]);
      }
    }
    graph::MultilevelPartitioner::Options popts;
    popts.num_parts = parts;
    graph::MultilevelPartitioner partitioner(popts);
    graph::MultilevelPartitioner::Result presult;
    Status ps = partitioner.Partition(graph::Csr::FromEdges(shared),
                                      &presult);
    if (!ps.ok()) return ps;
    assignment = std::move(presult.assignment);
  }
  auto partition_of = [&](std::uint32_t local_idx) {
    if (!assignment.empty()) return static_cast<int>(assignment[local_idx]);
    return static_cast<int>((static_cast<std::uint64_t>(local_idx) * parts) /
                            local.size());
  };

  const std::uint64_t msg = options.message_bytes;
  std::uint64_t delivered = 0;
  const std::uint64_t hub_buffer_bytes = hubs.size() * msg;
  std::vector<std::uint64_t> partition_buffer(parts, 0);
  std::uint64_t on_demand_deliveries = 0;

  for (const auto& [sender, receivers] : senders) {
    if (hubs.count(sender) != 0) {
      // Buffered for the entire iteration: delivered exactly once.
      delivered += 1;
      continue;
    }
    switch (options.policy) {
      case DeliveryPolicy::kBufferAll:
        delivered += 1;  // One delivery, buffered all iteration.
        break;
      case DeliveryPolicy::kOnDemand:
        // Re-fetched for every receiver (§5.4: "a single message needed to
        // be delivered multiple times").
        delivered += receivers.size();
        on_demand_deliveries += receivers.size();
        break;
      case DeliveryPolicy::kHubBuffered:
        delivered += receivers.size();
        on_demand_deliveries += receivers.size();
        break;
      case DeliveryPolicy::kHubPlusPartition: {
        // Delivered once per distinct partition containing a receiver —
        // the action script orders messages partition by partition.
        std::uint64_t mask = 0;
        int distinct = 0;
        for (std::uint32_t r : receivers) {
          const int p = partition_of(r);
          if ((mask & (1ull << (p % 64))) == 0) {
            mask |= 1ull << (p % 64);
            ++distinct;
            partition_buffer[p] += msg;
          }
        }
        delivered += distinct;
        break;
      }
    }
  }
  report->delivered_messages = delivered;

  // Peak buffer: hub buffer persists all iteration; partitions are resident
  // one at a time; buffer-all holds every sender's message at once.
  switch (options.policy) {
    case DeliveryPolicy::kBufferAll:
      report->peak_buffer_bytes = senders.size() * msg;
      break;
    case DeliveryPolicy::kOnDemand:
      report->peak_buffer_bytes = msg;  // One message in hand at a time.
      break;
    case DeliveryPolicy::kHubBuffered:
      report->peak_buffer_bytes = hub_buffer_bytes + msg;
      break;
    case DeliveryPolicy::kHubPlusPartition: {
      const std::uint64_t max_partition =
          partition_buffer.empty()
              ? 0
              : *std::max_element(partition_buffer.begin(),
                                  partition_buffer.end());
      report->peak_buffer_bytes = hub_buffer_bytes + max_partition;
      break;
    }
  }
  (void)on_demand_deliveries;
  return Status::OK();
}

ResidencyReport MessageOptimizer::Residency(
    std::uint64_t num_vertices, std::uint64_t num_edges, double attr_bytes,
    double local_bytes, double message_bytes, double scheduled_fraction) {
  // S = |V| (16 + k + l + m) + 8 |E|       (everything memory resident)
  // S' = p S + (1 - p) |V| (16 + m)        (Type A scheduled, Type B mailbox)
  ResidencyReport report;
  const double v = static_cast<double>(num_vertices);
  const double e = static_cast<double>(num_edges);
  report.full_bytes =
      v * (16.0 + attr_bytes + local_bytes + message_bytes) + 8.0 * e;
  report.offline_bytes = scheduled_fraction * report.full_bytes +
                         (1.0 - scheduled_fraction) * v * (16.0 + message_bytes);
  report.saved_bytes = report.full_bytes - report.offline_bytes;
  return report;
}

}  // namespace trinity::compute
