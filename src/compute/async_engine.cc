#include "compute/async_engine.h"

#include <algorithm>
#include <thread>

#include "common/serializer.h"

namespace trinity::compute {

void AsyncEngine::Context::Send(CellId target, Slice message) {
  engine_->SendUpdate(machine_, target, message);
}

AsyncEngine::AsyncEngine(graph::Graph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {
  if (options_.scheduler != SchedulerMode::kFifo && !options_.combiner) {
    config_error_ = Status::InvalidArgument(
        "priority/sweep scheduling requires a combiner (delta cache)");
  } else if (options_.scheduler == SchedulerMode::kPriority &&
             !options_.priority) {
    config_error_ = Status::InvalidArgument(
        "priority scheduling requires a priority function");
  } else if (options_.priority_epsilon > 0 && !options_.priority) {
    config_error_ = Status::InvalidArgument(
        "priority_epsilon requires a priority function");
  }
  if (!config_error_.ok()) {
    // Degrade to a safe raw fifo so Seed()-before-Run() cannot trip over
    // the inconsistent combination; Run() reports the error.
    options_.scheduler = SchedulerMode::kFifo;
    options_.combiner = nullptr;
    options_.priority = nullptr;
    options_.priority_epsilon = 0;
  }
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  machines_.resize(num_slaves_);
  trunk_owner_.resize(cloud->table().num_slots());
  owns_trunks_.assign(num_slaves_, false);
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
    if (trunk_owner_[t] >= 0 && trunk_owner_[t] < num_slaves_) {
      owns_trunks_[trunk_owner_[t]] = true;
    }
  }
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  pool_ = std::make_unique<ThreadPool>(threads);
  VertexScheduler::Options sched;
  sched.mode = options_.scheduler;
  sched.combiner = options_.combiner;
  sched.priority = options_.priority;
  sched.priority_epsilon = options_.priority_epsilon;
  net::Fabric& fabric = cloud->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    machines_[m].scheduler.Configure(sched);
    machines_[m].outboxes.resize(num_slaves_);
    fabric.RegisterAsyncHandler(
        m, cloud::kAsyncUpdateHandler, [this, m](MachineId, Slice payload) {
          // One payload packs many updates. Each record makes the machine
          // black (Safra) and settles one unit of the sender's deficit —
          // before the scheduler coalesces or epsilon-drops it, so retired
          // messages count as settled and never skew termination detection.
          ForEachPackedRecord(payload,
                              [this, m](CellId target, Slice message) {
                                machines_[m].black = true;
                                --machines_[m].deficit;
                                EnqueueLocal(m, target, message);
                              });
        });
  }
  // Discard updates stranded in the fabric's pair buffers by a previous
  // engine's aborted run: they drain into the handlers just registered, and
  // replaying that stale work would skew the Safra deficit counters. The
  // scheduler Clear() covers the raw queue AND the delta cache / priority
  // index / sweep cursor, so no stale delta survives into this run. This
  // runs before Seed() so seeded updates are never touched.
  fabric.FlushAll();
  for (MachineState& state : machines_) {
    state.scheduler.Clear();
    state.deficit = 0;
    state.black = false;
  }
}

MachineId AsyncEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status AsyncEngine::CheckClusterHealthy() const {
  const net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    if (owns_trunks_[m] && !fabric.IsMachineUp(m)) {
      return Status::Unavailable("machine " + std::to_string(m) +
                                 " crashed during the async run");
    }
  }
  return Status::OK();
}

void AsyncEngine::EnqueueLocal(MachineId machine, CellId target,
                               Slice message) {
  MachineState& state = machines_[machine];
  Slice value;
  if (options_.priority) {
    auto it = state.values.find(target);
    // Lookup only — inserting here would materialize empty values for
    // vertices that were queued but never processed (visible through
    // ForEachValue and snapshots).
    if (it != state.values.end()) value = Slice(it->second);
  }
  state.scheduler.Offer(target, message, value);
}

void AsyncEngine::SendUpdate(MachineId src, CellId target, Slice message) {
  const MachineId dst = OwnerOf(target);
  if (dst == src) {
    EnqueueLocal(dst, target, message);
    return;
  }
  // Append-only into src's outbox (no fabric, no locks mid-sweep); the
  // deficit rises now and settles when the packed payload is unpacked on
  // the destination at the sweep barrier.
  ++machines_[src].deficit;
  machines_[src].outboxes[dst].Add(target, message);
}

void AsyncEngine::FlushOutboxes() {
  net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId src = 0; src < num_slaves_; ++src) {
    for (MachineId dst = 0; dst < num_slaves_; ++dst) {
      Outbox& outbox = machines_[src].outboxes[dst];
      if (outbox.empty()) continue;
      // A batch dropped on a dead endpoint is counted by the fabric; the
      // next sweep's health check surfaces the crash itself.
      fabric.SendPacked(src, dst, cloud::kAsyncUpdateHandler,
                        Slice(outbox.bytes), outbox.count);
      outbox.Clear();
    }
  }
}

Status AsyncEngine::Seed(CellId vertex, Slice message) {
  const MachineId owner = OwnerOf(vertex);
  if (owner < 0 || owner >= num_slaves_) {
    return Status::NotFound("vertex unroutable");
  }
  EnqueueLocal(owner, vertex, message);
  return Status::OK();
}

bool AsyncEngine::SafraProbe(bool require_idle_queues) {
  // Safra's version of the Dijkstra termination-detection token [16]:
  // machine 0 launches a white token with count 0 around the ring; each
  // passive machine adds its deficit and blackens the token if it is black,
  // then whitens itself. Termination is certified when the token returns
  // white with a zero total and machine 0 is passive and white.
  std::int64_t token_count = 0;
  bool token_black = false;
  for (MachineId m = 0; m < num_slaves_; ++m) {
    MachineState& state = machines_[m];
    if (require_idle_queues && !state.scheduler.empty()) {
      return false;  // Active machine: abort probe.
    }
    token_count += state.deficit;
    if (state.black) token_black = true;
    state.black = false;
  }
  return !token_black && token_count == 0;
}

Status AsyncEngine::Run(const Handler& handler, RunStats* stats) {
  *stats = RunStats();
  if (!config_error_.ok()) return config_error_;
  net::Fabric& fabric = graph_->cloud()->fabric();
  fabric.ResetMeters();
  const Status result = RunLoop(handler, stats);
  // Fold the per-machine scheduler counters and the fabric meters into the
  // stats on every exit path, so aborted runs stay explainable too.
  for (const MachineState& state : machines_) {
    const VertexScheduler::Stats& s = state.scheduler.stats();
    stats->messages += s.offered;
    stats->coalesced_updates += s.coalesced;
    stats->epsilon_dropped += s.dropped;
    stats->heap_ops += state.scheduler.heap_ops();
  }
  const net::NetworkStats net = fabric.stats();
  stats->wire_bytes = net.bytes;
  stats->wire_transfers = net.transfers;
  stats->modeled_seconds = options_.cost_model.PhaseSeconds(fabric);
  return result;
}

Status AsyncEngine::RunLoop(const Handler& handler, RunStats* stats) {
  net::Fabric& fabric = graph_->cloud()->fabric();
  std::uint64_t since_snapshot = 0;
  Status failure;
  for (;;) {
    // A crashed machine's local visits degrade to NotFound (its storage is
    // gone), which the update loop tolerates for individual vertices — so
    // detect the crash itself here, once per scheduling sweep.
    Status healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    // Per-update max_updates enforcement: carve this sweep's per-machine
    // budgets out of the remaining allowance serially (machine 0 first) so
    // the valve can never overshoot and budgeting stays deterministic.
    std::uint64_t allowance = options_.max_updates > stats->updates
                                  ? options_.max_updates - stats->updates
                                  : 0;
    const std::uint64_t full_batch =
        static_cast<std::uint64_t>(options_.batch_size);
    if (allowance / full_batch >= static_cast<std::uint64_t>(num_slaves_)) {
      // The limit cannot bind this sweep: every machine gets a full batch.
      // (This is also the pre-scheduler engine's sweep shape — a machine may
      // process work enqueued locally *during* the sweep, which a
      // size-capped budget would forbid — so the fifo bit-identical
      // guarantee rides on this branch.)
      for (MachineState& state : machines_) state.sweep_budget = full_batch;
    } else {
      // Scarce allowance: carve it serially (machine 0 first) against each
      // machine's actual pending count — an idle machine must not swallow
      // allowance and starve the machines that hold work. Processed counts
      // never exceed the budgets, so the valve cannot overshoot, and both
      // inputs are deterministic, so truncation is too.
      for (MachineState& state : machines_) {
        state.sweep_budget = std::min<std::uint64_t>(
            std::min<std::uint64_t>(full_batch, state.scheduler.size()),
            allowance);
        allowance -= state.sweep_budget;
      }
    }
    // Parallel scheduling sweep: every machine drains up to its budget from
    // its own scheduler on a pool worker. Workers touch only their
    // machine's state and outboxes, so the sweep is lock-free; the
    // ParallelFor join is the sweep barrier.
    pool_->ParallelFor(num_slaves_, [&](int mi) {
      const MachineId m = mi;
      MachineState& state = machines_[m];
      state.sweep_status = Status::OK();
      state.sweep_updates = 0;
      net::Fabric::MeterScope meter(fabric, m);
      storage::MemoryStorage* store = graph_->cloud()->storage(m);
      CellId vertex = kInvalidCell;
      std::string delta;
      for (std::uint64_t i = 0; i < state.sweep_budget; ++i) {
        if (!state.scheduler.Pop(&vertex, &delta)) break;
        Context ctx;
        ctx.engine_ = this;
        ctx.machine_ = m;
        ctx.vertex_ = vertex;
        ctx.value_ = &state.values[vertex];
        Status vs = graph_->VisitLocalNode(
            store, vertex,
            [&](Slice data, const CellId*, std::size_t, const CellId* out,
                std::size_t out_count) {
              ctx.data_ = data;
              ctx.out_ = out;
              ctx.out_count_ = out_count;
              handler(ctx, Slice(delta));
            });
        if (!vs.ok() && !vs.IsNotFound()) state.sweep_status = vs;
        ++state.sweep_updates;
      }
    });
    bool processed_any = false;
    for (const MachineState& state : machines_) {
      if (!state.sweep_status.ok()) failure = state.sweep_status;
      stats->updates += state.sweep_updates;
      since_snapshot += state.sweep_updates;
      processed_any = processed_any || state.sweep_updates > 0;
    }
    if (!failure.ok()) return failure;
    // Asynchronous delivery: drain the packed outboxes, then anything the
    // fabric still buffers.
    FlushOutboxes();
    fabric.FlushAll();
    // The safety valve fires only when the limit is spent AND work remains
    // (all in-flight messages just drained into the schedulers, so scheduler
    // emptiness is the complete picture). A run that finishes exactly at
    // the limit is left to Safra to certify as a normal termination.
    if (stats->updates >= options_.max_updates) {
      for (const MachineState& state : machines_) {
        if (!state.scheduler.empty()) {
          return Status::ResourceExhausted(
              "async max_updates limit (" +
              std::to_string(options_.max_updates) +
              ") reached with work still pending");
        }
      }
    }
    // Periodic interruption + snapshot (§6.2).
    if (options_.snapshot_interval > 0 && options_.tfs != nullptr &&
        since_snapshot >= options_.snapshot_interval) {
      since_snapshot = 0;
      // All machines have paused after the update in hand; Safra's token
      // must certify that no messages are in flight before the snapshot is
      // cut (§6.2: "a snapshot is written ... once the system ceases").
      // One token round whitens the machines it visits, so while the system
      // stays paused the detection converges within two rounds.
      bool quiesced = false;
      for (int round = 0; round < 2 && !quiesced; ++round) {
        ++stats->safra_probes;
        quiesced = SafraProbe(/*require_idle_queues=*/false);
        if (!quiesced) ++stats->safra_rejections;
      }
      if (quiesced) {
        Status ss = WriteSnapshot(stats->snapshots);
        if (!ss.ok()) return ss;
        ++stats->snapshots;
      }
    }
    if (!processed_any) {
      ++stats->safra_probes;
      if (SafraProbe(/*require_idle_queues=*/true)) break;
      ++stats->safra_rejections;
    }
  }
  return Status::OK();
}

Status AsyncEngine::WriteSnapshot(int index) {
  // Sorted per machine so two snapshots of identical state are
  // byte-identical (unordered_map iteration order is not deterministic).
  BinaryWriter writer;
  std::uint64_t total = 0;
  for (const MachineState& state : machines_) {
    total += state.values.size();
  }
  writer.PutU64(total);
  std::vector<CellId> ids;
  for (const MachineState& state : machines_) {
    ids.clear();
    ids.reserve(state.values.size());
    for (const auto& [vertex, value] : state.values) ids.push_back(vertex);
    std::sort(ids.begin(), ids.end());
    for (CellId v : ids) {
      writer.PutU64(v);
      writer.PutString(state.values.at(v));
    }
  }
  return options_.tfs->WriteFile(
      options_.snapshot_prefix + "/snap_" + std::to_string(index),
      Slice(writer.buffer()));
}

Status AsyncEngine::GetValue(CellId vertex, std::string* out) const {
  const MachineId m = OwnerOf(vertex);
  if (m < 0 || m >= num_slaves_) return Status::NotFound("no such vertex");
  auto it = machines_[m].values.find(vertex);
  if (it == machines_[m].values.end()) return Status::NotFound("no value");
  *out = it->second;
  return Status::OK();
}

void AsyncEngine::ForEachValue(
    const std::function<void(CellId, const std::string&)>& fn) const {
  for (const MachineState& state : machines_) {
    for (const auto& [vertex, value] : state.values) fn(vertex, value);
  }
}

}  // namespace trinity::compute
