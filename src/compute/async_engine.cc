#include "compute/async_engine.h"

#include "common/serializer.h"

namespace trinity::compute {

void AsyncEngine::Context::Send(CellId target, Slice message) {
  engine_->SendUpdate(machine_, target, message);
}

AsyncEngine::AsyncEngine(graph::Graph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  machines_.resize(num_slaves_);
  trunk_owner_.resize(cloud->table().num_slots());
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
  }
  net::Fabric& fabric = cloud->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    fabric.RegisterAsyncHandler(
        m, cloud::kAsyncUpdateHandler, [this, m](MachineId, Slice payload) {
          BinaryReader reader(payload);
          CellId target = 0;
          Slice message;
          if (reader.GetU64(&target) && reader.GetBytes(&message)) {
            // Receiving a message makes the machine black (Safra) and
            // settles one unit of the sender's deficit on our side.
            machines_[m].black = true;
            --machines_[m].deficit;
            EnqueueLocal(m, target, message);
          }
        });
  }
  // Discard updates stranded in the fabric's pair buffers by a previous
  // engine's aborted run: they drain into the handlers just registered, and
  // replaying that stale work would skew the Safra deficit counters. This
  // runs before Seed() so seeded updates are never touched.
  fabric.FlushAll();
  for (MachineState& state : machines_) {
    state.queue.clear();
    state.deficit = 0;
    state.black = false;
  }
}

MachineId AsyncEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status AsyncEngine::CheckClusterHealthy() const {
  const net::Fabric& fabric = graph_->cloud()->fabric();
  for (MachineId m = 0; m < num_slaves_; ++m) {
    bool owns_trunks = false;
    for (MachineId owner : trunk_owner_) {
      if (owner == m) {
        owns_trunks = true;
        break;
      }
    }
    if (owns_trunks && !fabric.IsMachineUp(m)) {
      return Status::Unavailable("machine " + std::to_string(m) +
                                 " crashed during the async run");
    }
  }
  return Status::OK();
}

void AsyncEngine::EnqueueLocal(MachineId machine, CellId target,
                               Slice message) {
  machines_[machine].queue.push_back(Update{target, message.ToString()});
}

void AsyncEngine::SendUpdate(MachineId src, CellId target, Slice message) {
  const MachineId dst = OwnerOf(target);
  if (dst == src) {
    EnqueueLocal(dst, target, message);
    return;
  }
  ++machines_[src].deficit;
  BinaryWriter writer;
  writer.PutU64(target);
  writer.PutBytes(message);
  graph_->cloud()->fabric().SendAsync(src, dst, cloud::kAsyncUpdateHandler,
                                      Slice(writer.buffer()));
}

Status AsyncEngine::Seed(CellId vertex, Slice message) {
  const MachineId owner = OwnerOf(vertex);
  if (owner < 0 || owner >= num_slaves_) {
    return Status::NotFound("vertex unroutable");
  }
  EnqueueLocal(owner, vertex, message);
  return Status::OK();
}

bool AsyncEngine::SafraProbe(bool require_idle_queues) {
  // Safra's version of the Dijkstra termination-detection token [16]:
  // machine 0 launches a white token with count 0 around the ring; each
  // passive machine adds its deficit and blackens the token if it is black,
  // then whitens itself. Termination is certified when the token returns
  // white with a zero total and machine 0 is passive and white.
  std::int64_t token_count = 0;
  bool token_black = false;
  for (MachineId m = 0; m < num_slaves_; ++m) {
    MachineState& state = machines_[m];
    if (require_idle_queues && !state.queue.empty()) {
      return false;  // Active machine: abort probe.
    }
    token_count += state.deficit;
    if (state.black) token_black = true;
    state.black = false;
  }
  return !token_black && token_count == 0;
}

Status AsyncEngine::Run(const Handler& handler, RunStats* stats) {
  *stats = RunStats();
  net::Fabric& fabric = graph_->cloud()->fabric();
  fabric.ResetMeters();
  std::uint64_t since_snapshot = 0;
  Status failure;
  for (;;) {
    // A crashed machine's local visits degrade to NotFound (its storage is
    // gone), which the update loop tolerates for individual vertices — so
    // detect the crash itself here, once per scheduling sweep.
    Status healthy = CheckClusterHealthy();
    if (!healthy.ok()) return healthy;
    bool processed_any = false;
    for (MachineId m = 0; m < num_slaves_; ++m) {
      net::Fabric::MeterScope meter(fabric, m);
      MachineState& state = machines_[m];
      for (int i = 0; i < options_.batch_size && !state.queue.empty(); ++i) {
        Update update = std::move(state.queue.front());
        state.queue.pop_front();
        Context ctx;
        ctx.engine_ = this;
        ctx.machine_ = m;
        ctx.vertex_ = update.vertex;
        ctx.value_ = &state.values[update.vertex];
        Status vs = graph_->VisitLocalNode(
            m, update.vertex,
            [&](Slice data, const CellId*, std::size_t, const CellId* out,
                std::size_t out_count) {
              ctx.data_ = data;
              ctx.out_ = out;
              ctx.out_count_ = out_count;
              handler(ctx, Slice(update.message));
            });
        if (!vs.ok() && !vs.IsNotFound()) failure = vs;
        ++stats->updates;
        ++since_snapshot;
        processed_any = true;
        if (stats->updates >= options_.max_updates) {
          return Status::Aborted("async update limit reached");
        }
      }
    }
    if (!failure.ok()) return failure;
    // Asynchronous delivery: drain in-flight messages opportunistically.
    fabric.FlushAll();
    // Periodic interruption + snapshot (§6.2).
    if (options_.snapshot_interval > 0 && options_.tfs != nullptr &&
        since_snapshot >= options_.snapshot_interval) {
      since_snapshot = 0;
      // All machines have paused after the update in hand; Safra's token
      // must certify that no messages are in flight before the snapshot is
      // cut (§6.2: "a snapshot is written ... once the system ceases").
      // One token round whitens the machines it visits, so while the system
      // stays paused the detection converges within two rounds.
      bool quiesced = false;
      for (int round = 0; round < 2 && !quiesced; ++round) {
        ++stats->safra_probes;
        quiesced = SafraProbe(/*require_idle_queues=*/false);
        if (!quiesced) ++stats->safra_rejections;
      }
      if (quiesced) {
        Status ss = WriteSnapshot(stats->snapshots);
        if (!ss.ok()) return ss;
        ++stats->snapshots;
      }
    }
    if (!processed_any) {
      ++stats->safra_probes;
      if (SafraProbe(/*require_idle_queues=*/true)) break;
      ++stats->safra_rejections;
    }
  }
  stats->modeled_seconds = options_.cost_model.PhaseSeconds(fabric);
  return Status::OK();
}

Status AsyncEngine::WriteSnapshot(int index) {
  BinaryWriter writer;
  std::uint64_t total = 0;
  for (const MachineState& state : machines_) {
    total += state.values.size();
  }
  writer.PutU64(total);
  for (const MachineState& state : machines_) {
    for (const auto& [vertex, value] : state.values) {
      writer.PutU64(vertex);
      writer.PutString(value);
    }
  }
  return options_.tfs->WriteFile(
      options_.snapshot_prefix + "/snap_" + std::to_string(index),
      Slice(writer.buffer()));
}

Status AsyncEngine::GetValue(CellId vertex, std::string* out) const {
  const MachineId m = OwnerOf(vertex);
  if (m < 0 || m >= num_slaves_) return Status::NotFound("no such vertex");
  auto it = machines_[m].values.find(vertex);
  if (it == machines_[m].values.end()) return Status::NotFound("no value");
  *out = it->second;
  return Status::OK();
}

void AsyncEngine::ForEachValue(
    const std::function<void(CellId, const std::string&)>& fn) const {
  for (const MachineState& state : machines_) {
    for (const auto& [vertex, value] : state.values) fn(vertex, value);
  }
}

}  // namespace trinity::compute
