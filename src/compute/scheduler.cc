#include "compute/scheduler.h"

#include <utility>

namespace trinity::compute {

// ---------------------------------------------------------- PriorityIndex

void PriorityIndex::Place(std::size_t i, Entry entry) {
  pos_[entry.vertex] = i;
  heap_[i] = std::move(entry);
}

void PriorityIndex::SiftUp(std::size_t i) {
  Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(entry, heap_[parent])) break;
    Place(i, std::move(heap_[parent]));
    ++ops_;
    i = parent;
  }
  Place(i, std::move(entry));
}

void PriorityIndex::SiftDown(std::size_t i) {
  Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = 2 * i + 1;
    if (best >= n) break;
    if (best + 1 < n && Before(heap_[best + 1], heap_[best])) ++best;
    if (!Before(heap_[best], entry)) break;
    Place(i, std::move(heap_[best]));
    ++ops_;
    i = best;
  }
  Place(i, std::move(entry));
}

void PriorityIndex::PushOrUpdate(CellId vertex, double priority) {
  auto it = pos_.find(vertex);
  if (it == pos_.end()) {
    heap_.push_back(Entry{vertex, priority});
    pos_[vertex] = heap_.size() - 1;
    ++ops_;
    SiftUp(heap_.size() - 1);
    return;
  }
  const std::size_t i = it->second;
  const double old = heap_[i].priority;
  heap_[i].priority = priority;
  ++ops_;
  if (priority > old) {
    SiftUp(i);
  } else if (priority < old) {
    SiftDown(i);
  }
}

CellId PriorityIndex::PopTop(double* priority) {
  const Entry top = heap_.front();
  if (priority != nullptr) *priority = top.priority;
  pos_.erase(top.vertex);
  ++ops_;
  Entry last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    Place(0, std::move(last));
    SiftDown(0);
  }
  return top.vertex;
}

bool PriorityIndex::Remove(CellId vertex) {
  auto it = pos_.find(vertex);
  if (it == pos_.end()) return false;
  const std::size_t i = it->second;
  pos_.erase(it);
  ++ops_;
  Entry last = std::move(heap_.back());
  heap_.pop_back();
  if (i < heap_.size()) {
    // The displaced tail element can violate either direction: sift it up,
    // then down from wherever it settled (one of the two is a no-op).
    const CellId moved = last.vertex;
    Place(i, std::move(last));
    SiftUp(i);
    SiftDown(pos_.at(moved));
  }
  return true;
}

double PriorityIndex::PriorityOf(CellId vertex) const {
  return heap_[pos_.at(vertex)].priority;
}

void PriorityIndex::Clear() {
  heap_.clear();
  pos_.clear();
  ops_ = 0;
}

// --------------------------------------------------------- VertexScheduler

void VertexScheduler::Configure(Options options) {
  options_ = std::move(options);
  delta_mode_ = static_cast<bool>(options_.combiner);
}

bool VertexScheduler::AboveEpsilon(CellId vertex, Slice delta, Slice value) {
  if (options_.priority_epsilon <= 0 || !options_.priority) return true;
  return options_.priority(vertex, delta, value) >= options_.priority_epsilon;
}

void VertexScheduler::Offer(CellId vertex, Slice message, Slice value) {
  ++stats_.offered;
  if (!delta_mode_) {
    // Pre-scheduler discipline: one queue entry per message, epsilon
    // filtering (when configured) applied to the raw message.
    if (!AboveEpsilon(vertex, message, value)) {
      ++stats_.dropped;
      return;
    }
    raw_.push_back(RawUpdate{vertex, message.ToString()});
    return;
  }
  auto it = delta_.find(vertex);
  if (it != delta_.end()) {
    // Coalesce: fold into the one pending entry. The message's Safra
    // deficit was already settled at unpack time, so folding it away here
    // cannot skew termination detection.
    options_.combiner(&it->second, message);
    ++stats_.coalesced;
    if (!AboveEpsilon(vertex, Slice(it->second), value)) {
      // The folded delta sank below the threshold (e.g. cancelling
      // residuals): retire the entry entirely.
      ++stats_.dropped;
      delta_.erase(it);
      if (options_.mode == SchedulerMode::kPriority) heap_.Remove(vertex);
      if (options_.mode == SchedulerMode::kSweep) sweep_.erase(vertex);
      // kFifo leaves its stale fifo_order_ entry for Pop() to skip.
      return;
    }
    if (options_.mode == SchedulerMode::kPriority) {
      heap_.PushOrUpdate(vertex,
                         options_.priority(vertex, Slice(it->second), value));
    }
    return;
  }
  if (!AboveEpsilon(vertex, message, value)) {
    ++stats_.dropped;
    return;
  }
  auto [slot, inserted] = delta_.emplace(vertex, message.ToString());
  (void)inserted;
  switch (options_.mode) {
    case SchedulerMode::kFifo:
      fifo_order_.push_back(vertex);
      break;
    case SchedulerMode::kPriority:
      heap_.PushOrUpdate(
          vertex, options_.priority(vertex, Slice(slot->second), value));
      break;
    case SchedulerMode::kSweep:
      sweep_.insert(vertex);
      break;
  }
}

bool VertexScheduler::Pop(CellId* vertex, std::string* delta) {
  if (!delta_mode_) {
    if (raw_.empty()) return false;
    *vertex = raw_.front().vertex;
    *delta = std::move(raw_.front().message);
    raw_.pop_front();
    return true;
  }
  CellId v = kInvalidCell;
  switch (options_.mode) {
    case SchedulerMode::kFifo: {
      // Skip ids whose delta was epsilon-retired after enqueue.
      for (;;) {
        if (fifo_order_.empty()) return false;
        v = fifo_order_.front();
        fifo_order_.pop_front();
        if (delta_.count(v) > 0) break;
      }
      break;
    }
    case SchedulerMode::kPriority: {
      if (heap_.empty()) return false;
      v = heap_.PopTop();
      break;
    }
    case SchedulerMode::kSweep: {
      if (sweep_.empty()) return false;
      auto it = sweep_.lower_bound(sweep_cursor_);
      if (it == sweep_.end()) it = sweep_.begin();  // Wrap the sweep.
      v = *it;
      sweep_.erase(it);
      sweep_cursor_ = v + 1;
      break;
    }
  }
  auto it = delta_.find(v);
  *vertex = v;
  *delta = std::move(it->second);
  delta_.erase(it);
  return true;
}

void VertexScheduler::Clear() {
  raw_.clear();
  delta_.clear();
  fifo_order_.clear();
  heap_.Clear();
  sweep_.clear();
  sweep_cursor_ = 0;
  stats_ = Stats();
}

}  // namespace trinity::compute
