#ifndef TRINITY_COMPUTE_SCHEDULER_H_
#define TRINITY_COMPUTE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/types.h"

namespace trinity::compute {

/// Work-queue policy for the AsyncEngine (GraphLab-style schedulers; see
/// docs/async_scheduling.md):
///  * kFifo     — first-come-first-served. Without a combiner this is the
///                classic per-machine message deque (one entry per message);
///                with one, vertices keep their first-arrival position while
///                later messages fold into the pending delta.
///  * kPriority — highest-priority pending delta first, via an indexed
///                binary heap with change-key. Requires combiner + priority.
///  * kSweep    — round-robin over pending vertex ids in ascending order,
///                resuming after the last popped id. Requires a combiner.
enum class SchedulerMode { kFifo = 0, kPriority = 1, kSweep = 2 };

/// Folds one incoming message into a vertex's accumulated delta. The first
/// message for a vertex is copied in verbatim; the combiner sees every
/// subsequent one. Folds happen in canonical arrival order (deterministic),
/// but programs should use commutative/associative folds (sum, min, max) so
/// every scheduler mode converges to the same answer.
using DeltaCombiner = std::function<void(std::string* accumulated,
                                         Slice message)>;

/// Scheduling priority of a vertex's pending delta — bigger runs sooner
/// (e.g. PageRank residual magnitude, SSSP tentative-distance improvement).
/// `value` is the vertex's current value, empty if never processed.
using PriorityFn = std::function<double(CellId vertex, Slice delta,
                                        Slice value)>;

/// Indexed binary max-heap over (priority, vertex) with change-key: the
/// position map makes PushOrUpdate / Remove O(log n). Ties break toward the
/// smaller vertex id so pop order is a pure function of content — the
/// determinism anchor for priority-mode runs.
class PriorityIndex {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool Contains(CellId vertex) const { return pos_.count(vertex) > 0; }

  /// Inserts `vertex`, or re-keys it if already present (both increases and
  /// decreases restore the heap invariant).
  void PushOrUpdate(CellId vertex, double priority);

  /// Removes and returns the highest-priority vertex. Precondition: !empty().
  CellId PopTop(double* priority = nullptr);

  /// Removes `vertex` if present; returns whether it was.
  bool Remove(CellId vertex);

  /// Priority of a contained vertex. Precondition: Contains(vertex).
  double PriorityOf(CellId vertex) const;

  /// Element moves performed by sift-up/sift-down since construction or
  /// Clear() — the heap-maintenance cost counter surfaced in RunStats.
  std::uint64_t ops() const { return ops_; }

  void Clear();

 private:
  struct Entry {
    CellId vertex;
    double priority;
  };

  /// Strict ordering: higher priority first, then smaller id.
  bool Before(const Entry& a, const Entry& b) const {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.vertex < b.vertex;
  }
  void Place(std::size_t i, Entry entry);
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::vector<Entry> heap_;
  std::unordered_map<CellId, std::size_t> pos_;
  std::uint64_t ops_ = 0;
};

/// One machine's pending-work structure for the AsyncEngine: a pluggable
/// queue discipline plus an optional delta cache. With a combiner, incoming
/// messages for a vertex fold into a single accumulated delta, so each
/// vertex holds at most one pending entry; with a priority function, work
/// whose priority falls below `priority_epsilon` is dropped instead of
/// queued (the GraphLab convergence-threshold trick).
///
/// Not thread-safe by design: the engine gives each simulated machine its
/// own scheduler, touched only by that machine's sweep worker and the
/// (serial) packed-payload drain — the same isolation contract as the rest
/// of MachineState.
class VertexScheduler {
 public:
  struct Options {
    SchedulerMode mode = SchedulerMode::kFifo;
    DeltaCombiner combiner;  ///< Empty => raw per-message fifo.
    PriorityFn priority;     ///< Required for kPriority / epsilon dropping.
    double priority_epsilon = 0;
  };

  struct Stats {
    std::uint64_t offered = 0;    ///< Messages delivered to this scheduler.
    std::uint64_t coalesced = 0;  ///< Folded into an existing pending delta.
    std::uint64_t dropped = 0;    ///< Discarded below priority_epsilon.
  };

  /// (Re)configures the discipline. Must be called while empty.
  void Configure(Options options);

  /// Delivers one message for `vertex`. `value` is the vertex's current
  /// value (empty Slice if never processed) — consulted only by the
  /// priority function.
  void Offer(CellId vertex, Slice message, Slice value);

  /// Takes the next unit of work per the configured discipline: the message
  /// (raw fifo) or the accumulated delta (delta cache). Returns false when
  /// no work is pending.
  bool Pop(CellId* vertex, std::string* delta);

  bool empty() const {
    return delta_mode_ ? delta_.empty() : raw_.empty();
  }
  std::size_t size() const {
    return delta_mode_ ? delta_.size() : raw_.size();
  }

  /// Crash-path reset: discards every pending message, accumulated delta,
  /// priority-index entry, sweep cursor, and counter. The engine calls this
  /// when discarding stale work drained from a previous run's fabric
  /// buffers, so no stale delta can replay into a fresh run.
  void Clear();

  const Stats& stats() const { return stats_; }
  std::uint64_t heap_ops() const { return heap_.ops(); }

 private:
  struct RawUpdate {
    CellId vertex;
    std::string message;
  };

  /// Applies the epsilon threshold; true = keep, false = dropped (counted).
  bool AboveEpsilon(CellId vertex, Slice delta, Slice value);

  Options options_;
  bool delta_mode_ = false;
  Stats stats_;

  /// kFifo without combiner: the pre-scheduler engine's exact discipline.
  std::deque<RawUpdate> raw_;

  /// Delta cache (any mode with a combiner): at most one entry per vertex.
  std::unordered_map<CellId, std::string> delta_;
  /// kFifo + combiner: first-arrival order. May hold stale ids for vertices
  /// whose delta was since dropped — Pop() skips entries absent from the
  /// delta cache, so removal stays O(1).
  std::deque<CellId> fifo_order_;
  /// kPriority: indexed heap keyed by the priority function.
  PriorityIndex heap_;
  /// kSweep: ordered pending set + resume cursor.
  std::set<CellId> sweep_;
  CellId sweep_cursor_ = 0;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_SCHEDULER_H_
