#ifndef TRINITY_COMPUTE_BSP_H_
#define TRINITY_COMPUTE_BSP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "compute/packed_messages.h"
#include "graph/graph.h"
#include "net/cost_model.h"
#include "tfs/tfs.h"

namespace trinity::compute {

/// Trinity's vertex-centric bulk-synchronous engine (paper §5.3): a
/// computation is a sequence of supersteps; in each superstep every active
/// vertex receives the messages sent to it in the previous superstep, runs
/// the vertex program, sends messages (usually to its out-neighbors — the
/// *restrictive* model), and may vote to halt. A halted vertex is reawakened
/// by an incoming message.
///
/// Execution is parallel at machine granularity (each simulated slave runs
/// its vertex loop on a pool worker, like the paper's slaves running vertex
/// programs on all cores); the superstep barrier is the ParallelFor join.
/// Vertex sends append to per-(src,dst) outbox buffers that reach the fabric
/// as one packed payload per pair at the barrier (§4.2 message packing done
/// explicitly), so fabric-mutex traffic is O(machines²) per superstep, not
/// O(messages). Inboxes are merged at the barrier in canonical (source
/// machine, arrival order) order, which makes a parallel run bit-identical
/// to a sequential one for deterministic programs — see
/// docs/parallel_execution.md.
///
/// The engine reports both measured meter totals and the CostModel's modeled
/// cluster seconds — the number the Fig 12(b)/(c) benchmarks plot.
/// Each engine binds the cloud's BSP message handler at construction, so at
/// most one BspEngine may be *running* on a given MemoryCloud at a time
/// (constructing a new engine retargets the handler, which is fine once the
/// previous run has finished).
class BspEngine {
 public:
  struct Options {
    int superstep_limit = 64;
    net::CostModel cost_model;
    /// Worker threads for the per-machine vertex loops. 0 = one per
    /// hardware thread; 1 = sequential execution (identical results either
    /// way — see the determinism note above).
    int num_threads = 0;
    /// Optional associative combiner: incoming messages for one vertex are
    /// folded into a single accumulator at the barrier (PageRank's sum),
    /// keeping inboxes O(V) instead of O(E).
    std::function<void(std::string* accumulator, Slice message)> combiner;
    /// Checkpoint every N supersteps to TFS (0 = off). See §6.2: "For BSP
    /// based synchronous computation, we make check points every a few
    /// supersteps."
    int checkpoint_interval = 0;
    tfs::Tfs* tfs = nullptr;
    std::string checkpoint_prefix = "bsp_ckpt";
    /// Optional global aggregator (Pregel-style): per-machine partial
    /// aggregates fold through this associative function at the barrier;
    /// the result is visible to every vertex in the next superstep.
    /// Convergence tests (e.g. PageRank residuals) use this.
    std::function<void(std::string* accumulator, Slice contribution)>
        aggregator;
  };

  /// Execution context handed to the vertex program. The program runs on a
  /// pool worker; everything reachable through the context is owned by the
  /// vertex's machine, so programs need no locking as long as they only
  /// touch state through the context.
  class VertexContext {
   public:
    CellId vertex() const { return vertex_; }
    int superstep() const { return superstep_; }
    /// Node payload and adjacency, zero-copy over trunk memory.
    Slice data() const { return data_; }
    const CellId* out() const { return out_; }
    std::size_t out_count() const { return out_count_; }
    const CellId* in() const { return in_; }
    std::size_t in_count() const { return in_count_; }
    /// Combined/collected messages delivered to this vertex this superstep.
    /// Slices point into the machine's inbox arena; they are valid only for
    /// the duration of the vertex program.
    const std::vector<Slice>& messages() const { return *messages_; }
    /// Mutable per-vertex state ("local variables" in Fig 10).
    std::string& value() { return *value_; }

    /// Sends a message for delivery at the next superstep.
    void Send(CellId target, Slice message);
    /// Restrictive-model convenience: message to every out-neighbor.
    void SendToAllOut(Slice message);
    /// Votes to halt; the vertex stays inactive until a message arrives.
    void VoteToHalt() { halt_ = true; }

    /// Contributes to the global aggregator (folded at the barrier).
    void Aggregate(Slice contribution);
    /// The aggregated value from the *previous* superstep (empty at
    /// superstep 0 or when no aggregator is configured).
    Slice aggregated() const { return aggregated_; }

   private:
    friend class BspEngine;
    BspEngine* engine_ = nullptr;
    MachineId machine_ = kInvalidMachine;
    CellId vertex_ = kInvalidCell;
    int superstep_ = 0;
    Slice data_;
    const CellId* out_ = nullptr;
    std::size_t out_count_ = 0;
    const CellId* in_ = nullptr;
    std::size_t in_count_ = 0;
    const std::vector<Slice>* messages_ = nullptr;
    std::string* value_ = nullptr;
    Slice aggregated_;
    bool halt_ = false;
  };

  using Program = std::function<void(VertexContext&)>;

  struct RunStats {
    int supersteps = 0;
    double modeled_seconds = 0;  ///< Sum of per-superstep modeled times.
    std::vector<double> superstep_seconds;
    std::uint64_t messages = 0;
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    int checkpoints_written = 0;
    bool restored_from_checkpoint = false;
  };

  BspEngine(graph::Graph* graph, Options options);

  BspEngine(const BspEngine&) = delete;
  BspEngine& operator=(const BspEngine&) = delete;

  /// Runs the program to quiescence (all vertices halted, no messages in
  /// flight) or to the superstep limit. If checkpointing is enabled and a
  /// checkpoint exists under the prefix, execution resumes from it.
  Status Run(const Program& program, RunStats* stats);

  /// Final value of a vertex after Run().
  Status GetValue(CellId vertex, std::string* out) const;

  /// Iterates (vertex, value) over all vertices.
  void ForEachValue(
      const std::function<void(CellId, const std::string&)>& fn) const;

  /// The aggregated value after the last completed superstep.
  const std::string& aggregated() const { return aggregated_; }

 private:
  /// One delivered message: `len` bytes at `offset` into the inbox arena,
  /// destined for vertex `target`.
  struct InboxRecord {
    CellId target;
    std::uint64_t offset;
    std::uint32_t len;
  };

  struct MachineState {
    std::vector<CellId> vertices;
    std::unordered_map<CellId, std::string> values;
    std::unordered_set<CellId> halted;

    /// Current-superstep inbox: one contiguous arena plus records sorted by
    /// target (stable, so each vertex sees its messages in canonical
    /// arrival order). No per-message heap allocations.
    std::string arena;
    std::vector<InboxRecord> records;

    /// Packed payloads received at the barrier, in canonical (source
    /// machine asc, arrival order) order. Unpacking them is per-destination
    /// work, so it is deferred to the parallel half of FinalizeInboxes.
    std::vector<std::string> pending;

    /// Next-superstep staging, filled while unpacking `pending`.
    std::string next_arena;
    std::vector<InboxRecord> next_records;
    /// Combiner mode folds into one accumulator per target instead;
    /// next_acc_order remembers first-arrival order for determinism.
    std::unordered_map<CellId, std::string> next_acc;
    std::vector<CellId> next_acc_order;

    /// Per-destination outboxes. Only this machine's worker thread appends
    /// during a superstep; the barrier drains them sequentially.
    std::vector<Outbox> outboxes;

    /// Reused messages() view for the running vertex.
    std::vector<Slice> msg_scratch;

    /// Per-machine partial aggregate for the current superstep. In a real
    /// cluster each machine folds locally and ships one value to the
    /// master at the barrier; the fold function is associative so the
    /// result is identical.
    std::string partial_aggregate;
    bool has_partial_aggregate = false;

    /// Per-machine outcome of the parallel vertex loop.
    Status step_status;
    bool any_active = false;
  };

  /// Owner machine of a vertex (lock-free snapshot of the addressing table
  /// taken at engine construction; BSP runs assume stable membership).
  MachineId OwnerOf(CellId vertex) const;
  /// Verifies every machine that owns a trunk is still up. A crash mid-run
  /// surfaces as a clean Unavailable instead of the engine silently
  /// computing on a shrunken cluster; the caller recovers the cloud and
  /// re-runs (restoring from the last checkpoint when configured).
  Status CheckClusterHealthy() const;
  /// Appends the message to machine src's outbox toward the target's owner.
  void SendMessage(MachineId src, CellId target, Slice message);
  /// Stages one message into machine's next-superstep inbox (barrier only).
  void DeliverLocal(MachineId machine, CellId target, Slice message);
  /// Stashes one packed payload for machine (fabric handler; unpacked later
  /// by FinalizeInboxes).
  void ReceivePacked(MachineId machine, Slice payload);
  /// Runs the per-machine vertex loops in parallel, drains the outboxes
  /// through the fabric, folds aggregates and swaps inboxes.
  Status RunSuperstep(const Program& program, int superstep,
                      bool* all_quiet);
  /// Drains every (src,dst) outbox: local pairs stage directly, remote
  /// pairs go through Fabric::SendPacked. Canonical order: src asc, dst asc.
  void FlushOutboxes();
  /// Unpacks pending payloads (in parallel, one worker per destination),
  /// sorts staged records by target, and swaps them in as the new inbox.
  void FinalizeInboxes(bool* any_messages);
  Status WriteCheckpoint(int superstep);
  Status TryRestoreCheckpoint(int* superstep);

  /// Folds a contribution into machine's partial aggregate.
  void AggregateLocal(MachineId machine, Slice contribution);

  graph::Graph* graph_;
  Options options_;
  net::HandlerId handler_id_;
  std::vector<MachineState> machines_;
  std::vector<MachineId> trunk_owner_;
  /// owns_trunks_[m]: machine m hosts at least one trunk (precomputed so
  /// CheckClusterHealthy is O(machines), not O(machines × trunks)).
  std::vector<bool> owns_trunks_;
  std::unique_ptr<ThreadPool> pool_;
  std::string aggregated_;
  int num_slaves_;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_BSP_H_
