#ifndef TRINITY_COMPUTE_BSP_H_
#define TRINITY_COMPUTE_BSP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "net/cost_model.h"
#include "tfs/tfs.h"

namespace trinity::compute {

/// Trinity's vertex-centric bulk-synchronous engine (paper §5.3): a
/// computation is a sequence of supersteps; in each superstep every active
/// vertex receives the messages sent to it in the previous superstep, runs
/// the vertex program, sends messages (usually to its out-neighbors — the
/// *restrictive* model), and may vote to halt. A halted vertex is reawakened
/// by an incoming message.
///
/// Messages travel through the fabric's one-sided async path, so small
/// per-vertex messages are automatically packed into few physical transfers
/// (§4.2), and per-superstep CPU + traffic are metered per machine. The
/// engine reports both measured meter totals and the CostModel's modeled
/// cluster seconds — the number the Fig 12(b)/(c) benchmarks plot.
/// Each engine binds the cloud's BSP message handler at construction, so at
/// most one BspEngine may be *running* on a given MemoryCloud at a time
/// (constructing a new engine retargets the handler, which is fine once the
/// previous run has finished).
class BspEngine {
 public:
  struct Options {
    int superstep_limit = 64;
    net::CostModel cost_model;
    /// Optional associative combiner: incoming messages for one vertex are
    /// folded into a single accumulator at delivery time (PageRank's sum),
    /// keeping inboxes O(V) instead of O(E).
    std::function<void(std::string* accumulator, Slice message)> combiner;
    /// Checkpoint every N supersteps to TFS (0 = off). See §6.2: "For BSP
    /// based synchronous computation, we make check points every a few
    /// supersteps."
    int checkpoint_interval = 0;
    tfs::Tfs* tfs = nullptr;
    std::string checkpoint_prefix = "bsp_ckpt";
    /// Optional global aggregator (Pregel-style): per-machine partial
    /// aggregates fold through this associative function at the barrier;
    /// the result is visible to every vertex in the next superstep.
    /// Convergence tests (e.g. PageRank residuals) use this.
    std::function<void(std::string* accumulator, Slice contribution)>
        aggregator;
  };

  /// Execution context handed to the vertex program.
  class VertexContext {
   public:
    CellId vertex() const { return vertex_; }
    int superstep() const { return superstep_; }
    /// Node payload and adjacency, zero-copy over trunk memory.
    Slice data() const { return data_; }
    const CellId* out() const { return out_; }
    std::size_t out_count() const { return out_count_; }
    const CellId* in() const { return in_; }
    std::size_t in_count() const { return in_count_; }
    /// Combined/collected messages delivered to this vertex this superstep.
    const std::vector<std::string>& messages() const { return *messages_; }
    /// Mutable per-vertex state ("local variables" in Fig 10).
    std::string& value() { return *value_; }

    /// Sends a message for delivery at the next superstep.
    void Send(CellId target, Slice message);
    /// Restrictive-model convenience: message to every out-neighbor.
    void SendToAllOut(Slice message);
    /// Votes to halt; the vertex stays inactive until a message arrives.
    void VoteToHalt() { halt_ = true; }

    /// Contributes to the global aggregator (folded at the barrier).
    void Aggregate(Slice contribution);
    /// The aggregated value from the *previous* superstep (empty at
    /// superstep 0 or when no aggregator is configured).
    Slice aggregated() const { return aggregated_; }

   private:
    friend class BspEngine;
    BspEngine* engine_ = nullptr;
    MachineId machine_ = kInvalidMachine;
    CellId vertex_ = kInvalidCell;
    int superstep_ = 0;
    Slice data_;
    const CellId* out_ = nullptr;
    std::size_t out_count_ = 0;
    const CellId* in_ = nullptr;
    std::size_t in_count_ = 0;
    const std::vector<std::string>* messages_ = nullptr;
    std::string* value_ = nullptr;
    Slice aggregated_;
    bool halt_ = false;
  };

  using Program = std::function<void(VertexContext&)>;

  struct RunStats {
    int supersteps = 0;
    double modeled_seconds = 0;  ///< Sum of per-superstep modeled times.
    std::vector<double> superstep_seconds;
    std::uint64_t messages = 0;
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    int checkpoints_written = 0;
    bool restored_from_checkpoint = false;
  };

  BspEngine(graph::Graph* graph, Options options);

  BspEngine(const BspEngine&) = delete;
  BspEngine& operator=(const BspEngine&) = delete;

  /// Runs the program to quiescence (all vertices halted, no messages in
  /// flight) or to the superstep limit. If checkpointing is enabled and a
  /// checkpoint exists under the prefix, execution resumes from it.
  Status Run(const Program& program, RunStats* stats);

  /// Final value of a vertex after Run().
  Status GetValue(CellId vertex, std::string* out) const;

  /// Iterates (vertex, value) over all vertices.
  void ForEachValue(
      const std::function<void(CellId, const std::string&)>& fn) const;

  /// The aggregated value after the last completed superstep.
  const std::string& aggregated() const { return aggregated_; }

 private:
  struct MachineState {
    std::vector<CellId> vertices;
    std::unordered_map<CellId, std::string> values;
    std::unordered_set<CellId> halted;
    /// Messages for the next superstep, keyed by target vertex.
    std::unordered_map<CellId, std::vector<std::string>> inbox;
    std::unordered_map<CellId, std::vector<std::string>> next_inbox;
    /// Per-machine partial aggregate for the current superstep. In a real
    /// cluster each machine folds locally and ships one value to the
    /// master at the barrier; the fold function is associative so the
    /// result is identical.
    std::string partial_aggregate;
    bool has_partial_aggregate = false;
  };

  /// Owner machine of a vertex (lock-free snapshot of the addressing table
  /// taken at engine construction; BSP runs assume stable membership).
  MachineId OwnerOf(CellId vertex) const;
  /// Verifies every machine that owns a trunk is still up. A crash mid-run
  /// surfaces as a clean Unavailable instead of the engine silently
  /// computing on a shrunken cluster; the caller recovers the cloud and
  /// re-runs (restoring from the last checkpoint when configured).
  Status CheckClusterHealthy() const;
  /// Routes a message: local targets are delivered directly; remote targets
  /// ride the fabric's packed one-sided path.
  void SendMessage(MachineId src, CellId target, Slice message);
  void DeliverLocal(MachineId machine, CellId target, Slice message);
  Status RunSuperstep(const Program& program, int superstep,
                      bool* all_quiet);
  Status WriteCheckpoint(int superstep);
  Status TryRestoreCheckpoint(int* superstep);

  /// Folds a contribution into machine's partial aggregate.
  void AggregateLocal(MachineId machine, Slice contribution);

  graph::Graph* graph_;
  Options options_;
  net::HandlerId handler_id_;
  std::vector<MachineState> machines_;
  std::vector<MachineId> trunk_owner_;
  std::string aggregated_;
  int num_slaves_;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_BSP_H_
