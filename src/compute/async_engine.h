#ifndef TRINITY_COMPUTE_ASYNC_ENGINE_H_
#define TRINITY_COMPUTE_ASYNC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "compute/packed_messages.h"
#include "compute/scheduler.h"
#include "graph/graph.h"
#include "net/cost_model.h"
#include "tfs/tfs.h"

namespace trinity::compute {

/// Asynchronous vertex computation (paper §5.3/§6.2): updates are processed
/// as they arrive with no superstep barrier — the model GraphChi supports
/// and Trinity also offers ("Trinity can adopt any computation model").
/// Classic uses: delta-PageRank, asynchronous SSSP relaxation.
///
/// The work queue is a pluggable per-machine `VertexScheduler`
/// (docs/async_scheduling.md): fifo replays the classic message deque, while
/// priority / sweep modes add GraphLab-style delta caching — incoming
/// messages fold into one accumulated delta per vertex via a user combiner,
/// ordered by a user priority function, with sub-`priority_epsilon` work
/// dropped instead of queued.
///
/// Fault tolerance follows §6.2's asynchronous path exactly: checkpoints
/// cannot be cut mid-flight, so the engine periodically issues an
/// interruption signal; every machine pauses after finishing the update in
/// hand; the engine then runs **Safra's termination-detection algorithm**
/// around the machine ring to confirm the system has ceased (no queued work,
/// no in-flight messages), writes a snapshot to TFS, and resumes.
///
/// Safra's algorithm is also what detects the natural end of the run.
class AsyncEngine {
 public:
  struct Options {
    net::CostModel cost_model;
    /// Issue an interruption + snapshot every N processed updates (0 = no
    /// snapshots). Requires tfs.
    std::uint64_t snapshot_interval = 0;
    tfs::Tfs* tfs = nullptr;
    std::string snapshot_prefix = "async_snap";
    /// Updates a machine processes per scheduling slice.
    int batch_size = 256;
    /// Worker threads for the per-machine update sweeps. 0 = one per
    /// hardware thread; 1 = sequential. Results are identical either way:
    /// remote updates travel as packed payloads drained at the sweep
    /// barrier in canonical (source machine, arrival order) order.
    int num_threads = 0;
    /// Safety valve against non-terminating programs. Enforced per update:
    /// each sweep's per-machine budgets are carved out of the remaining
    /// allowance up front (machine 0 first), so a run never processes more
    /// than this many updates. Hitting the valve with work still pending
    /// returns ResourceExhausted naming the limit.
    std::uint64_t max_updates = 100'000'000;
    /// Work-queue discipline. kPriority and kSweep require `combiner`;
    /// kPriority also requires `priority`.
    SchedulerMode scheduler = SchedulerMode::kFifo;
    /// Delta caching: fold all pending messages for a vertex into one
    /// accumulated delta (at most one queue entry per vertex). The handler
    /// then receives the folded delta instead of individual messages.
    DeltaCombiner combiner;
    /// Priority of a pending delta (bigger runs sooner). Used for ordering
    /// in kPriority mode and for epsilon dropping in every mode.
    PriorityFn priority;
    /// With a priority function, pending work whose priority falls below
    /// this threshold is dropped instead of queued (GraphLab's convergence
    /// threshold). 0 disables dropping.
    double priority_epsilon = 0;
  };

  /// Context handed to the update handler.
  class Context {
   public:
    CellId vertex() const { return vertex_; }
    MachineId machine() const { return machine_; }
    Slice data() const { return data_; }
    const CellId* out() const { return out_; }
    std::size_t out_count() const { return out_count_; }
    std::string& value() { return *value_; }

    /// Emits an update for another vertex (processed asynchronously).
    void Send(CellId target, Slice message);

   private:
    friend class AsyncEngine;
    AsyncEngine* engine_ = nullptr;
    MachineId machine_ = kInvalidMachine;
    CellId vertex_ = kInvalidCell;
    Slice data_;
    const CellId* out_ = nullptr;
    std::size_t out_count_ = 0;
    std::string* value_ = nullptr;
  };

  /// Processes one update for one vertex: an individual message (no
  /// combiner) or the vertex's accumulated delta (with one).
  using Handler = std::function<void(Context&, Slice message)>;

  struct RunStats {
    std::uint64_t updates = 0;  ///< Handler invocations.
    /// Logical messages delivered to the schedulers (local + remote),
    /// including those later coalesced or dropped.
    std::uint64_t messages = 0;
    /// Messages folded into an already-pending delta — work the scheduler
    /// retired without a handler invocation.
    std::uint64_t coalesced_updates = 0;
    /// Pending work dropped below priority_epsilon.
    std::uint64_t epsilon_dropped = 0;
    /// Priority-index element moves (heap maintenance cost).
    std::uint64_t heap_ops = 0;
    std::uint64_t wire_bytes = 0;      ///< Fabric payload bytes (remote).
    std::uint64_t wire_transfers = 0;  ///< Fabric physical transfers.
    int safra_probes = 0;        ///< Token rounds launched.
    int safra_rejections = 0;    ///< Probes that found residual activity.
    int snapshots = 0;
    double modeled_seconds = 0;
  };

  AsyncEngine(graph::Graph* graph, Options options);

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Enqueues an initial update before Run().
  Status Seed(CellId vertex, Slice message);

  /// Processes updates until Safra's algorithm certifies termination.
  Status Run(const Handler& handler, RunStats* stats);

  Status GetValue(CellId vertex, std::string* out) const;
  void ForEachValue(
      const std::function<void(CellId, const std::string&)>& fn) const;

 private:
  struct MachineState {
    VertexScheduler scheduler;
    std::unordered_map<CellId, std::string> values;
    /// Safra bookkeeping: message deficit (sent - received) and color.
    std::int64_t deficit = 0;
    bool black = false;
    /// Per-destination outboxes; only this machine's worker appends during
    /// a sweep, the barrier drains them as packed payloads.
    std::vector<Outbox> outboxes;
    /// Per-machine outcome of the parallel sweep.
    Status sweep_status;
    std::uint64_t sweep_updates = 0;
    /// This sweep's update allowance (≤ batch_size; ≤ the global
    /// max_updates remainder).
    std::uint64_t sweep_budget = 0;
  };

  MachineId OwnerOf(CellId vertex) const;
  /// Verifies every trunk-owning machine is still up; a crash mid-run
  /// surfaces as a clean Unavailable at the next scheduling sweep instead
  /// of updates silently vanishing on a shrunken cluster.
  Status CheckClusterHealthy() const;
  void SendUpdate(MachineId src, CellId target, Slice message);
  void EnqueueLocal(MachineId machine, CellId target, Slice message);
  /// Drains every (src,dst) outbox through Fabric::SendPacked in canonical
  /// src-asc, dst-asc order (sweep barrier).
  void FlushOutboxes();
  /// One pass of Safra's token around the ring. With `require_idle_queues`
  /// the token certifies global termination (no work, no in-flight
  /// messages); without, it certifies only transport quiescence — the
  /// condition the snapshot path needs while work is merely paused.
  bool SafraProbe(bool require_idle_queues);
  Status WriteSnapshot(int index);
  /// The scheduling loop; Run() wraps it so scheduler counters and fabric
  /// meters land in `stats` on every exit path.
  Status RunLoop(const Handler& handler, RunStats* stats);

  graph::Graph* graph_;
  Options options_;
  /// Set when the Options combination is inconsistent (e.g. priority mode
  /// without a combiner); reported by Run().
  Status config_error_;
  std::vector<MachineState> machines_;
  std::vector<MachineId> trunk_owner_;
  /// owns_trunks_[m]: machine m hosts at least one trunk (precomputed so
  /// the per-sweep health check is O(machines)).
  std::vector<bool> owns_trunks_;
  std::unique_ptr<ThreadPool> pool_;
  int num_slaves_;
};

}  // namespace trinity::compute

#endif  // TRINITY_COMPUTE_ASYNC_ENGINE_H_
