#include "compute/traversal.h"

#include <cstring>
#include <limits>
#include <thread>

#include "common/serializer.h"
#include "compute/packed_messages.h"

namespace trinity::compute {

TraversalEngine::TraversalEngine(graph::Graph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  trunk_owner_.resize(cloud->table().num_slots());
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
  }
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  pool_ = std::make_unique<ThreadPool>(threads);
}

TraversalEngine::TraversalEngine(graph::Graph* graph)
    : TraversalEngine(graph, Options()) {}

MachineId TraversalEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status TraversalEngine::KHopExplore(CellId start, int max_depth,
                                    const Visitor& visit, QueryStats* stats,
                                    CallContext* ctx) {
  *stats = QueryStats();
  net::Fabric& fabric = graph_->cloud()->fabric();
  cloud::MemoryCloud* cloud = graph_->cloud();
  struct FrontierEntry {
    CellId vertex;
    std::uint32_t depth;
  };
  /// Per-machine round state; a pool worker touches only its own slot.
  struct MachineRound {
    std::vector<FrontierEntry> frontier;
    std::vector<FrontierEntry> incoming;
    std::unordered_set<CellId> visited;
    std::vector<Outbox> outboxes;  ///< One per destination machine.
    std::uint64_t visited_count = 0;
    Status status;
  };
  std::vector<MachineRound> rounds(num_slaves_);
  for (MachineRound& r : rounds) r.outboxes.resize(num_slaves_);

  // Frontier-forwarding handler: a machine receives a packed payload of the
  // vertices it owns that a remote machine just discovered. Record payload
  // is the 4-byte hop depth. Handlers only run at the round barrier (the
  // expansion loop never touches the fabric), so `rounds` needs no lock.
  for (MachineId m = 0; m < num_slaves_; ++m) {
    fabric.RegisterAsyncHandler(
        m, cloud::kTraversalExpandHandler,
        [m, &rounds](MachineId, Slice payload) {
          ForEachPackedRecord(payload, [m, &rounds](CellId vertex,
                                                    Slice depth_bytes) {
            if (depth_bytes.size() != 4) return;
            std::uint32_t depth = 0;
            std::memcpy(&depth, depth_bytes.data(), 4);
            rounds[m].incoming.push_back({vertex, depth});
          });
        });
  }

  const MachineId start_owner = OwnerOf(start);
  if (start_owner < 0 || start_owner >= num_slaves_) {
    return Status::NotFound("start vertex unroutable");
  }
  rounds[start_owner].frontier.push_back({start, 0});

  for (;;) {
    bool any = false;
    for (const MachineRound& r : rounds) {
      if (!r.frontier.empty()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    if (ctx != nullptr) {
      // Deadline/cancellation boundary: the frontier for the next round is
      // intact, but a spent budget stops the query here rather than paying
      // for another full expansion round.
      Status gate = ctx->Check();
      if (!gate.ok()) return gate;
    }
    fabric.ResetMeters();
    // One round: every machine expands its frontier slice on a pool worker
    // (lock-free — remote discoveries go into per-destination outboxes).
    pool_->ParallelFor(num_slaves_, [&](int mi) {
      const MachineId m = mi;
      MachineRound& round = rounds[m];
      round.status = Status::OK();
      net::Fabric::MeterScope meter(fabric, m);
      storage::MemoryStorage* store = cloud->storage(m);
      // Shared expansion body: runs the user visitor and buckets neighbors,
      // identical for locally-visited and batch-fetched vertices.
      const auto expand_node = [&](const FrontierEntry& entry, Slice data,
                                   const CellId* out, std::size_t out_count) {
        const bool expand =
            visit(entry.vertex, static_cast<int>(entry.depth), data);
        if (!expand || entry.depth >= static_cast<std::uint32_t>(max_depth)) {
          return;
        }
        const std::uint32_t next_depth = entry.depth + 1;
        for (std::size_t i = 0; i < out_count; ++i) {
          const CellId neighbor = out[i];
          const MachineId owner = OwnerOf(neighbor);
          if (owner == m) {
            if (round.visited.count(neighbor) == 0) {
              round.incoming.push_back({neighbor, next_depth});
            }
          } else {
            round.outboxes[owner].Add(
                neighbor,
                Slice(reinterpret_cast<const char*>(&next_depth), 4));
          }
        }
      };
      // Vertices this round's owner snapshot misrouted to us (the engine's
      // trunk→owner map is frozen at construction; migration or failover can
      // strand a vertex elsewhere). Batched into one MultiGet per round.
      std::vector<FrontierEntry> misses;
      for (const FrontierEntry& entry : round.frontier) {
        if (!round.visited.insert(entry.vertex).second) continue;
        ++round.visited_count;
        Status vs = graph_->VisitLocalNode(
            store, entry.vertex,
            [&](Slice data, const CellId*, std::size_t, const CellId* out,
                std::size_t out_count) {
              expand_node(entry, data, out, out_count);
            });
        if (vs.IsNotFound()) {
          misses.push_back(entry);
        } else if (!vs.ok()) {
          round.status = vs;
        }
      }
      if (!misses.empty() && round.status.ok()) {
        // Healthy runs never reach here (every frontier vertex is local), so
        // the fast path issues zero extra calls. On a stale snapshot the
        // stranded vertices are fetched with one packed request per owner;
        // ids the cloud cannot serve (owner dead, promotion pending) are
        // skipped exactly as the silent NotFound skip above always did.
        std::vector<CellId> ids;
        ids.reserve(misses.size());
        for (const FrontierEntry& entry : misses) ids.push_back(entry.vertex);
        std::vector<cloud::MemoryCloud::MultiGetResult> fetched;
        Status ms = cloud->MultiGet(m, ids, &fetched);
        if (ms.ok()) {
          for (std::size_t i = 0; i < misses.size(); ++i) {
            if (!fetched[i].status.ok()) continue;
            graph::NodeImage node;
            if (!graph::Graph::DecodeNode(ids[i], Slice(fetched[i].value),
                                          &node)
                     .ok()) {
              continue;
            }
            expand_node(misses[i], Slice(node.data), node.out.data(),
                        node.out.size());
          }
        }
      }
      round.frontier.clear();
    });
    for (MachineRound& round : rounds) {
      if (!round.status.ok()) return round.status;
      stats->visited += round.visited_count;
      round.visited_count = 0;
    }
    // Round barrier: one packed payload per (src,dst) pair with traffic in
    // flight, drained in canonical src-asc, dst-asc order.
    for (MachineId src = 0; src < num_slaves_; ++src) {
      for (MachineId dst = 0; dst < num_slaves_; ++dst) {
        Outbox& outbox = rounds[src].outboxes[dst];
        if (outbox.empty()) continue;
        fabric.SendPacked(src, dst, cloud::kTraversalExpandHandler,
                          Slice(outbox.bytes), outbox.count);
        outbox.Clear();
      }
    }
    fabric.FlushAll();  // One communication round.
    for (MachineRound& round : rounds) {
      round.frontier = std::move(round.incoming);
      round.incoming.clear();
    }
    const net::NetworkStats net = fabric.stats();
    stats->messages += net.messages;
    stats->transfers += net.transfers;
    const double round_millis =
        options_.cost_model.PhaseSeconds(fabric) * 1000.0;
    stats->modeled_millis += round_millis;
    ++stats->rounds;
    // The round's modeled latency is time the caller waited: charge it to
    // the deadline budget (simulated micros, like every other layer).
    if (ctx != nullptr) ctx->Consume(round_millis * 1000.0);
  }
  return Status::OK();
}

Status TraversalEngine::Bfs(
    CellId start, std::unordered_map<CellId, std::uint32_t>* distances,
    QueryStats* stats, CallContext* ctx) {
  distances->clear();
  // The visitor runs on the worker that owns the vertex; collect into a
  // per-owner map so concurrent expansion never shares a container, then
  // merge after the run.
  std::vector<std::unordered_map<CellId, std::uint32_t>> per_machine(
      num_slaves_);
  Status s = KHopExplore(
      start, std::numeric_limits<int>::max() - 1,
      [this, &per_machine](CellId vertex, int depth, Slice) {
        per_machine[OwnerOf(vertex)].emplace(
            vertex, static_cast<std::uint32_t>(depth));
        return true;
      },
      stats, ctx);
  if (!s.ok()) return s;
  for (auto& partial : per_machine) {
    for (const auto& [vertex, depth] : partial) {
      distances->emplace(vertex, depth);
    }
  }
  return Status::OK();
}

}  // namespace trinity::compute
