#include "compute/traversal.h"

#include <limits>

#include "common/serializer.h"

namespace trinity::compute {

TraversalEngine::TraversalEngine(graph::Graph* graph, Options options)
    : graph_(graph), options_(std::move(options)) {
  cloud::MemoryCloud* cloud = graph_->cloud();
  num_slaves_ = cloud->num_slaves();
  trunk_owner_.resize(cloud->table().num_slots());
  for (int t = 0; t < cloud->table().num_slots(); ++t) {
    trunk_owner_[t] = cloud->table().machine_of_trunk(t);
  }
}

TraversalEngine::TraversalEngine(graph::Graph* graph)
    : TraversalEngine(graph, Options()) {}

MachineId TraversalEngine::OwnerOf(CellId vertex) const {
  return trunk_owner_[graph_->cloud()->TrunkOf(vertex)];
}

Status TraversalEngine::KHopExplore(CellId start, int max_depth,
                                    const Visitor& visit, QueryStats* stats) {
  *stats = QueryStats();
  net::Fabric& fabric = graph_->cloud()->fabric();
  struct FrontierEntry {
    CellId vertex;
    std::uint32_t depth;
  };
  std::vector<std::vector<FrontierEntry>> frontier(num_slaves_);
  std::vector<std::vector<FrontierEntry>> incoming(num_slaves_);
  std::vector<std::unordered_set<CellId>> visited(num_slaves_);

  // Frontier-forwarding handler: a machine receives the vertices it owns
  // that a remote machine just discovered.
  for (MachineId m = 0; m < num_slaves_; ++m) {
    fabric.RegisterAsyncHandler(
        m, cloud::kTraversalExpandHandler,
        [m, &incoming](MachineId, Slice payload) {
          BinaryReader reader(payload);
          CellId vertex = 0;
          std::uint32_t depth = 0;
          if (reader.GetU64(&vertex) && reader.GetU32(&depth)) {
            incoming[m].push_back({vertex, depth});
          }
        });
  }

  const MachineId start_owner = OwnerOf(start);
  if (start_owner < 0 || start_owner >= num_slaves_) {
    return Status::NotFound("start vertex unroutable");
  }
  frontier[start_owner].push_back({start, 0});

  Status failure;
  for (;;) {
    bool any = false;
    for (const auto& f : frontier) {
      if (!f.empty()) {
        any = true;
        break;
      }
    }
    if (!any) break;
    fabric.ResetMeters();
    for (MachineId m = 0; m < num_slaves_; ++m) {
      net::Fabric::MeterScope meter(fabric, m);
      for (const FrontierEntry& entry : frontier[m]) {
        if (!visited[m].insert(entry.vertex).second) continue;
        ++stats->visited;
        bool expand = false;
        Status vs = graph_->VisitLocalNode(
            m, entry.vertex,
            [&](Slice data, const CellId*, std::size_t, const CellId* out,
                std::size_t out_count) {
              expand = visit(entry.vertex, static_cast<int>(entry.depth),
                             data);
              if (!expand ||
                  entry.depth >= static_cast<std::uint32_t>(max_depth)) {
                return;
              }
              const std::uint32_t next_depth = entry.depth + 1;
              for (std::size_t i = 0; i < out_count; ++i) {
                const CellId neighbor = out[i];
                const MachineId owner = OwnerOf(neighbor);
                if (owner == m) {
                  if (visited[m].count(neighbor) == 0) {
                    incoming[m].push_back({neighbor, next_depth});
                  }
                } else {
                  BinaryWriter writer;
                  writer.PutU64(neighbor);
                  writer.PutU32(next_depth);
                  fabric.SendAsync(m, owner, cloud::kTraversalExpandHandler,
                                   Slice(writer.buffer()));
                }
              }
            });
        if (!vs.ok() && !vs.IsNotFound()) failure = vs;
      }
      frontier[m].clear();
    }
    if (!failure.ok()) return failure;
    fabric.FlushAll();  // One communication round.
    for (MachineId m = 0; m < num_slaves_; ++m) {
      frontier[m] = std::move(incoming[m]);
      incoming[m].clear();
    }
    const net::NetworkStats net = fabric.stats();
    stats->messages += net.messages;
    stats->transfers += net.transfers;
    stats->modeled_millis +=
        options_.cost_model.PhaseSeconds(fabric) * 1000.0;
    ++stats->rounds;
  }
  return Status::OK();
}

Status TraversalEngine::Bfs(
    CellId start, std::unordered_map<CellId, std::uint32_t>* distances,
    QueryStats* stats) {
  distances->clear();
  return KHopExplore(
      start, std::numeric_limits<int>::max() - 1,
      [distances](CellId vertex, int depth, Slice) {
        distances->emplace(vertex, static_cast<std::uint32_t>(depth));
        return true;
      },
      stats);
}

}  // namespace trinity::compute
