#include "baseline/ghost_engine.h"

#include "cloud/memory_cloud.h"
#include "common/histogram.h"
#include "common/serializer.h"

namespace trinity::baseline {

GhostEngine::GhostEngine(Options options) : options_(std::move(options)) {
  net::Fabric::Params params;
  params.pack_messages = false;  // Fine-grained two-sided messaging.
  fabric_ = std::make_unique<net::Fabric>(options_.num_machines, params);
  machines_.resize(options_.num_machines);
}

Status GhostEngine::LoadGraph(const graph::Generators::EdgeList& edges,
                              LoadStats* stats) {
  *stats = LoadStats();
  num_nodes_ = edges.num_nodes;
  for (auto& machine : machines_) {
    machine.adjacency.clear();
    machine.ghosts.clear();
    machine.distance.clear();
  }
  for (CellId v = 0; v < edges.num_nodes; ++v) {
    machines_[OwnerOf(v)].adjacency[v];  // Materialize isolated vertices.
  }
  std::uint64_t num_edges = 0;
  for (const auto& [src, dst] : edges.edges) {
    machines_[OwnerOf(src)].adjacency[src].push_back(dst);
    ++num_edges;
  }
  // Ghost tables: one replica per (machine, referenced remote vertex).
  for (MachineId m = 0; m < options_.num_machines; ++m) {
    Machine& machine = machines_[m];
    for (const auto& [v, neighbors] : machine.adjacency) {
      (void)v;
      for (CellId u : neighbors) {
        if (OwnerOf(u) != m) machine.ghosts.emplace(u, ~0u);
      }
    }
    stats->ghost_cells += machine.ghosts.size();
    stats->memory_bytes +=
        machine.adjacency.size() * options_.per_vertex_bytes +
        machine.ghosts.size() * options_.per_ghost_bytes;
  }
  stats->memory_bytes += num_edges * options_.per_edge_bytes;
  return Status::OK();
}

Status GhostEngine::RunBfs(CellId start, BfsStats* stats) {
  *stats = BfsStats();
  if (num_nodes_ == 0) return Status::InvalidArgument("no graph loaded");
  for (auto& machine : machines_) {
    machine.distance.clear();
    for (auto& [v, d] : machine.ghosts) {
      (void)v;
      d = ~0u;
    }
  }
  net::CostModel cost_model(options_.cost);

  // Incoming distance updates per machine (two-sided receives).
  std::vector<std::vector<std::pair<CellId, std::uint32_t>>> incoming(
      options_.num_machines);
  for (MachineId m = 0; m < options_.num_machines; ++m) {
    fabric_->RegisterAsyncHandler(
        m, cloud::kGhostSyncHandler, [m, &incoming](MachineId, Slice payload) {
          BinaryReader reader(payload);
          CellId vertex = 0;
          std::uint32_t dist = 0;
          if (reader.GetU64(&vertex) && reader.GetU32(&dist)) {
            incoming[m].emplace_back(vertex, dist);
          }
        });
  }

  std::vector<std::vector<std::pair<CellId, std::uint32_t>>> frontier(
      options_.num_machines);
  frontier[OwnerOf(start)].emplace_back(start, 0);
  for (;;) {
    bool any = false;
    for (const auto& f : frontier) {
      if (!f.empty()) any = true;
    }
    if (!any) break;
    fabric_->ResetMeters();
    for (MachineId m = 0; m < options_.num_machines; ++m) {
      Machine& machine = machines_[m];
      Stopwatch watch;
      for (const auto& [v, d] : frontier[m]) {
        auto [it, inserted] = machine.distance.emplace(v, d);
        if (!inserted) continue;  // Already settled.
        ++stats->reached;
        auto adj = machine.adjacency.find(v);
        if (adj == machine.adjacency.end()) continue;
        for (CellId u : adj->second) {
          const MachineId owner = OwnerOf(u);
          if (owner == m) {
            if (machine.distance.count(u) == 0) {
              incoming[m].emplace_back(u, d + 1);
            }
          } else {
            // Ghost update: check the replica to suppress re-sends, then
            // push one fine-grained (unpacked) message to the owner.
            auto ghost = machine.ghosts.find(u);
            if (ghost != machine.ghosts.end() && ghost->second <= d + 1) {
              continue;
            }
            if (ghost != machine.ghosts.end()) ghost->second = d + 1;
            BinaryWriter writer;
            writer.PutU64(u);
            writer.PutU32(d + 1);
            fabric_->SendAsync(m, owner, cloud::kGhostSyncHandler,
                               Slice(writer.buffer()));
          }
        }
      }
      frontier[m].clear();
      // Measured frontier work, scaled by the heap-object traversal
      // penalty relative to Trinity's contiguous blob scans.
      fabric_->AddCpuMicros(m, watch.ElapsedMicros() * options_.cpu_factor);
    }
    fabric_->FlushAll();
    for (MachineId m = 0; m < options_.num_machines; ++m) {
      frontier[m] = std::move(incoming[m]);
      incoming[m].clear();
    }
    const net::NetworkStats net = fabric_->stats();
    stats->messages += net.messages;
    stats->transfers += net.transfers;
    stats->modeled_seconds += cost_model.PhaseSeconds(*fabric_);
    ++stats->rounds;
  }
  return Status::OK();
}

}  // namespace trinity::baseline
