#include "baseline/diskstream_engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace trinity::baseline {

DiskStreamEngine::DiskStreamEngine(Options options)
    : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
}

DiskStreamEngine::~DiskStreamEngine() {
  std::error_code ec;
  std::filesystem::remove_all(options_.scratch_dir, ec);
}

std::string DiskStreamEngine::ShardPath(int shard) const {
  return options_.scratch_dir + "/shard_" + std::to_string(shard) + ".bin";
}

int DiskStreamEngine::IntervalOf(std::uint64_t v) const {
  const int interval = static_cast<int>(v / interval_size_);
  return std::min(interval, options_.num_shards - 1);
}

Status DiskStreamEngine::LoadGraph(const graph::Generators::EdgeList& edges) {
  num_nodes_ = edges.num_nodes;
  if (num_nodes_ == 0) return Status::InvalidArgument("empty graph");
  interval_size_ =
      (num_nodes_ + options_.num_shards - 1) / options_.num_shards;
  std::error_code ec;
  std::filesystem::remove_all(options_.scratch_dir, ec);
  std::filesystem::create_directories(options_.scratch_dir, ec);
  if (ec) return Status::IOError("cannot create scratch dir");

  out_degree_.assign(num_nodes_, 0);
  std::vector<std::vector<ShardEdge>> shards(options_.num_shards);
  for (const auto& [src, dst] : edges.edges) {
    ++out_degree_[src];
    shards[IntervalOf(dst)].push_back(
        ShardEdge{static_cast<std::uint32_t>(src),
                  static_cast<std::uint32_t>(dst)});
  }
  shard_sizes_.assign(options_.num_shards, 0);
  for (int s = 0; s < options_.num_shards; ++s) {
    // PSW layout: edges within a shard sorted by source vertex.
    std::sort(shards[s].begin(), shards[s].end(),
              [](const ShardEdge& a, const ShardEdge& b) {
                return a.src < b.src;
              });
    std::ofstream out(ShardPath(s), std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write shard");
    out.write(reinterpret_cast<const char*>(shards[s].data()),
              static_cast<std::streamsize>(shards[s].size() *
                                           sizeof(ShardEdge)));
    if (!out) return Status::IOError("short shard write");
    shard_sizes_[s] = shards[s].size() * sizeof(ShardEdge);
  }
  values_.assign(num_nodes_, 1.0 / static_cast<double>(num_nodes_));
  return Status::OK();
}

Status DiskStreamEngine::RunPageRank(int iterations, double damping,
                                     RunStats* stats) {
  *stats = RunStats();
  if (num_nodes_ == 0) return Status::InvalidArgument("no graph loaded");
  for (std::uint64_t s = 0; s < shard_sizes_.size(); ++s) {
    stats->shard_bytes += shard_sizes_[s];
  }
  const double n = static_cast<double>(num_nodes_);
  std::vector<double> interval_sum(interval_size_);
  std::vector<ShardEdge> buffer;
  for (int iteration = 0; iteration < iterations; ++iteration) {
    IterationStats iter;
    for (int s = 0; s < options_.num_shards; ++s) {
      // Sequentially stream the interval's in-edge shard from disk.
      std::ifstream in(ShardPath(s), std::ios::binary);
      if (!in) return Status::IOError("cannot read shard");
      buffer.resize(shard_sizes_[s] / sizeof(ShardEdge));
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(shard_sizes_[s]));
      if (!in && shard_sizes_[s] != 0) {
        return Status::IOError("short shard read");
      }
      iter.bytes_read += shard_sizes_[s];
      ++iter.windows;

      const std::uint64_t base =
          static_cast<std::uint64_t>(s) * interval_size_;
      const std::uint64_t limit =
          std::min(num_nodes_, base + interval_size_);
      std::fill(interval_sum.begin(), interval_sum.end(), 0.0);
      for (const ShardEdge& edge : buffer) {
        // Asynchronous: values_ holds the freshest ranks, including ones
        // updated earlier in this very sweep.
        if (out_degree_[edge.src] == 0) continue;
        interval_sum[edge.dst - base] +=
            values_[edge.src] / static_cast<double>(out_degree_[edge.src]);
      }
      for (std::uint64_t v = base; v < limit; ++v) {
        values_[v] = (1.0 - damping) / n + damping * interval_sum[v - base];
      }
    }
    iter.modeled_seconds =
        static_cast<double>(iter.bytes_read) /
            (options_.disk_mb_per_sec * 1e6) +
        static_cast<double>(iter.windows) * options_.seek_millis / 1e3;
    stats->modeled_seconds += iter.modeled_seconds;
    stats->total_bytes_read += iter.bytes_read;
    ++stats->iterations;
  }
  stats->seconds_per_iteration =
      stats->iterations > 0 ? stats->modeled_seconds / stats->iterations : 0;
  return Status::OK();
}

}  // namespace trinity::baseline
