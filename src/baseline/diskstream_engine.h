#ifndef TRINITY_BASELINE_DISKSTREAM_ENGINE_H_
#define TRINITY_BASELINE_DISKSTREAM_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"

namespace trinity::baseline {

/// GraphChi-like out-of-core vertex-centric engine (paper §5.3/§8):
/// "GraphChi can perform efficient disk based graph computation under an
/// assumption that current computation has an asynchronous vertex centric
/// solution ... it inherently cannot support traversal based graph
/// computation and synchronous graph computation efficiently."
///
/// A single-machine Parallel-Sliding-Windows reproduction: the vertex range
/// splits into P intervals; each interval owns a shard file holding its
/// in-edges sorted by source. One iteration sweeps the intervals; for each,
/// the engine sequentially reads the interval's shard plus the sliding
/// window of every other shard, updating vertex values *asynchronously*
/// (later intervals see values already updated this iteration).
///
/// The shards are real temp files and every byte is actually read/written;
/// modeled time charges those bytes at `disk_bandwidth` plus one seek per
/// window — GraphChi's trade: sequential disk I/O instead of a cluster's
/// RAM.
class DiskStreamEngine {
 public:
  struct Options {
    int num_shards = 8;
    std::string scratch_dir = "/tmp/trinity_diskstream";
    double disk_mb_per_sec = 120.0;   ///< Sequential throughput.
    double seek_millis = 8.0;         ///< Per window reposition.
  };

  struct IterationStats {
    std::uint64_t bytes_read = 0;
    std::uint64_t windows = 0;
    double modeled_seconds = 0;
  };

  struct RunStats {
    int iterations = 0;
    double modeled_seconds = 0;
    double seconds_per_iteration = 0;
    std::uint64_t total_bytes_read = 0;
    std::uint64_t shard_bytes = 0;  ///< On-disk footprint.
  };

  explicit DiskStreamEngine(Options options);
  ~DiskStreamEngine();

  DiskStreamEngine(const DiskStreamEngine&) = delete;
  DiskStreamEngine& operator=(const DiskStreamEngine&) = delete;

  /// Shards the edge list onto disk (the "preprocessing" phase).
  Status LoadGraph(const graph::Generators::EdgeList& edges);

  /// Asynchronous PageRank: each interval update uses the freshest
  /// neighbor values (GraphChi's selling point — converges in fewer
  /// sweeps than synchronous iteration).
  Status RunPageRank(int iterations, double damping, RunStats* stats);

  /// Final value per vertex (valid after RunPageRank).
  const std::vector<double>& values() const { return values_; }

 private:
  struct ShardEdge {
    std::uint32_t src;
    std::uint32_t dst;
  };

  std::string ShardPath(int shard) const;
  int IntervalOf(std::uint64_t v) const;

  Options options_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t interval_size_ = 0;
  std::vector<std::uint64_t> shard_sizes_;  ///< Bytes per shard file.
  std::vector<std::uint32_t> out_degree_;
  std::vector<double> values_;
};

}  // namespace trinity::baseline

#endif  // TRINITY_BASELINE_DISKSTREAM_ENGINE_H_
