#ifndef TRINITY_BASELINE_HEAP_ENGINE_H_
#define TRINITY_BASELINE_HEAP_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"
#include "net/cost_model.h"
#include "net/fabric.h"

namespace trinity::baseline {

/// Giraph-like vertex-centric PageRank baseline for the Fig 12(d)
/// comparison.
///
/// Giraph keeps every vertex, edge and message as a JVM runtime object.
/// Paper §7: "graph nodes exist as runtime objects in memory. They take
/// much more memory than Trinity's plain blobs", and the engine pays
/// serialization, boxing and GC on every superstep. This baseline runs the
/// same BSP PageRank as Trinity but with Giraph's representation
/// mechanisms:
///  * vertices/edges/messages carry per-object header overheads in the
///    memory accounting;
///  * every message really is an individually heap-allocated object
///    (std::unique_ptr<double>), so allocator pressure is measured, not
///    assumed;
///  * a GC/serialization CPU factor scales the measured superstep time;
///  * message envelopes on the wire carry Writable-style framing bytes.
class HeapEngine {
 public:
  struct Options {
    int num_machines = 16;
    int iterations = 5;
    double damping = 0.85;
    net::CostModel::Params cost;
    /// JVM-ish overheads (bytes).
    std::size_t object_header_bytes = 16;
    std::size_t per_vertex_object_bytes = 80;   ///< Vertex + value + arrays.
    std::size_t per_edge_object_bytes = 24;     ///< Edge object + boxed id.
    std::size_t per_message_wire_bytes = 80;    ///< Writable envelope.
    /// GC + boxing + (de)serialization multiplier on measured CPU. JVM
    /// vertex-centric frameworks routinely spend an order of magnitude more
    /// CPU per edge than a blob-scanning C++/C# engine.
    double cpu_factor = 12.0;
    /// Fixed per-superstep coordination cost (Hadoop task scheduling +
    /// ZooKeeper barrier), in seconds at paper scale; scaled by graph size
    /// is not appropriate, so it is charged per superstep.
    double superstep_overhead_seconds = 0.05;
  };

  struct RunStats {
    double seconds_per_iteration = 0;  ///< The Fig 12(d) quantity.
    double modeled_seconds = 0;
    std::uint64_t memory_bytes = 0;
    std::uint64_t messages = 0;
    int supersteps = 0;
  };

  explicit HeapEngine(Options options);

  HeapEngine(const HeapEngine&) = delete;
  HeapEngine& operator=(const HeapEngine&) = delete;

  Status LoadGraph(const graph::Generators::EdgeList& edges);

  Status RunPageRank(RunStats* stats);

 private:
  /// Vertices as heap objects with individually allocated values —
  /// deliberately the representation the paper criticizes.
  struct VertexObject {
    std::unique_ptr<double> rank;
    std::vector<CellId> edges;
    std::vector<std::unique_ptr<double>> inbox;
  };

  struct Machine {
    std::unordered_map<CellId, std::unique_ptr<VertexObject>> vertices;
  };

  MachineId OwnerOf(CellId v) const {
    return static_cast<MachineId>(Mix64(v) % options_.num_machines);
  }

  Options options_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<Machine> machines_;
  std::uint64_t num_nodes_ = 0;
  std::uint64_t num_edges_ = 0;
};

}  // namespace trinity::baseline

#endif  // TRINITY_BASELINE_HEAP_ENGINE_H_
