#include "baseline/heap_engine.h"

#include "cloud/memory_cloud.h"
#include "common/histogram.h"
#include "common/serializer.h"

namespace trinity::baseline {

HeapEngine::HeapEngine(Options options) : options_(std::move(options)) {
  // Giraph's netty transport does aggregate buffers, so packing stays on;
  // the envelope overhead per message is what differs.
  fabric_ = std::make_unique<net::Fabric>(options_.num_machines);
  machines_.resize(options_.num_machines);
}

Status HeapEngine::LoadGraph(const graph::Generators::EdgeList& edges) {
  num_nodes_ = edges.num_nodes;
  num_edges_ = edges.edges.size();
  for (auto& machine : machines_) machine.vertices.clear();
  for (CellId v = 0; v < edges.num_nodes; ++v) {
    auto vertex = std::make_unique<VertexObject>();
    vertex->rank = std::make_unique<double>(0.0);
    machines_[OwnerOf(v)].vertices.emplace(v, std::move(vertex));
  }
  for (const auto& [src, dst] : edges.edges) {
    machines_[OwnerOf(src)].vertices[src]->edges.push_back(dst);
  }
  return Status::OK();
}

Status HeapEngine::RunPageRank(RunStats* stats) {
  *stats = RunStats();
  if (num_nodes_ == 0) return Status::InvalidArgument("no graph loaded");
  net::CostModel cost_model(options_.cost);
  const double n = static_cast<double>(num_nodes_);

  for (MachineId m = 0; m < options_.num_machines; ++m) {
    fabric_->RegisterAsyncHandler(
        m, cloud::kBspMessageHandler, [this, m](MachineId, Slice payload) {
          BinaryReader reader(payload);
          CellId target = 0;
          double value = 0;
          if (reader.GetU64(&target) && reader.GetDouble(&value)) {
            auto it = machines_[m].vertices.find(target);
            if (it != machines_[m].vertices.end()) {
              // A fresh message object per delivery — no combiner.
              it->second->inbox.push_back(std::make_unique<double>(value));
            }
          }
        });
  }

  // Wire framing: Writable envelope emulated by padding the payload.
  const std::string padding(options_.per_message_wire_bytes, '\0');

  for (int step = 0; step <= options_.iterations; ++step) {
    fabric_->ResetMeters();
    for (MachineId m = 0; m < options_.num_machines; ++m) {
      Stopwatch watch;
      Machine& machine = machines_[m];
      for (auto& [v, vertex] : machine.vertices) {
        double rank;
        if (step == 0) {
          rank = 1.0 / n;
        } else {
          double incoming = 0;
          for (const auto& msg : vertex->inbox) incoming += *msg;
          rank = (1.0 - options_.damping) / n + options_.damping * incoming;
        }
        vertex->inbox.clear();
        *vertex->rank = rank;
        if (step == options_.iterations) continue;
        if (vertex->edges.empty()) continue;
        const double share =
            rank / static_cast<double>(vertex->edges.size());
        for (CellId u : vertex->edges) {
          const MachineId owner = OwnerOf(u);
          BinaryWriter writer;
          writer.PutU64(u);
          writer.PutDouble(share);
          writer.PutRaw(padding.data(), padding.size());
          if (owner == m) {
            auto it = machine.vertices.find(u);
            if (it != machine.vertices.end()) {
              it->second->inbox.push_back(std::make_unique<double>(share));
            }
          } else {
            fabric_->SendAsync(m, owner, cloud::kBspMessageHandler,
                               Slice(writer.buffer()));
          }
          ++stats->messages;
        }
      }
      // GC + serialization penalty on the measured superstep time.
      fabric_->AddCpuMicros(m, watch.ElapsedMicros() * options_.cpu_factor);
    }
    fabric_->FlushAll();
    stats->modeled_seconds += cost_model.PhaseSeconds(*fabric_) +
                              options_.superstep_overhead_seconds;
    ++stats->supersteps;
  }
  stats->seconds_per_iteration =
      stats->supersteps > 1
          ? stats->modeled_seconds / (stats->supersteps - 1)
          : stats->modeled_seconds;
  // JVM-object memory accounting (Fig 12d's OOM behaviour comes from here).
  stats->memory_bytes =
      num_nodes_ * (options_.object_header_bytes +
                    options_.per_vertex_object_bytes) +
      num_edges_ * options_.per_edge_object_bytes;
  return Status::OK();
}

}  // namespace trinity::baseline
