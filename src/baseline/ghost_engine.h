#ifndef TRINITY_BASELINE_GHOST_ENGINE_H_
#define TRINITY_BASELINE_GHOST_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/generators.h"
#include "net/cost_model.h"
#include "net/fabric.h"

namespace trinity::baseline {

/// PBGL-like distributed BFS baseline for the Fig 13 comparison.
///
/// The Parallel Boost Graph Library keeps a *ghost cell* — a local replica —
/// for every remote vertex referenced by local adjacency, and exchanges
/// fine-grained two-sided messages (MPI) without Trinity's transparent
/// message packing. Paper §8: "the ghost cell mechanism only works well for
/// well-partitioned graphs. Great memory overhead would be incurred for
/// not-well-partitioned large graphs" — and hash partitioning (what both
/// systems use here) is exactly that worst case.
///
/// The engine runs a real level-synchronous BFS over a hash-partitioned
/// in-memory graph; what makes it a *baseline model* is the representation
/// and communication overheads, which follow PBGL's mechanisms:
///  * per-vertex / per-edge / per-ghost object overheads (adjacency as
///    pointer-based property-mapped structures, not blobs);
///  * one unpacked message per ghost update (two-sided, fine-grained);
///  * a CPU factor for pointer-chasing over heap objects vs. scanning
///    contiguous blobs.
class GhostEngine {
 public:
  struct Options {
    int num_machines = 16;
    net::CostModel::Params cost;
    /// Representation overheads (bytes). Defaults approximate PBGL's
    /// distributed adjacency_list: vertex objects with property maps,
    /// per-edge objects (descriptor + stored target + properties), and
    /// ghost cells holding the replicated remote vertex state.
    std::size_t per_vertex_bytes = 88;
    std::size_t per_edge_bytes = 40;
    std::size_t per_ghost_bytes = 64;
    /// CPU multiplier for heap-object traversal vs. Trinity's blob scan.
    double cpu_factor = 2.0;
  };

  struct LoadStats {
    std::uint64_t ghost_cells = 0;
    std::uint64_t memory_bytes = 0;  ///< The Fig 13(c) quantity.
  };

  struct BfsStats {
    double modeled_seconds = 0;  ///< The Fig 13(a) quantity.
    std::uint64_t reached = 0;
    int rounds = 0;
    std::uint64_t messages = 0;
    std::uint64_t transfers = 0;
  };

  explicit GhostEngine(Options options);

  GhostEngine(const GhostEngine&) = delete;
  GhostEngine& operator=(const GhostEngine&) = delete;

  /// Hash-partitions the edge list, builds per-machine adjacency and the
  /// ghost-cell tables.
  Status LoadGraph(const graph::Generators::EdgeList& edges,
                   LoadStats* stats);

  Status RunBfs(CellId start, BfsStats* stats);

 private:
  struct Machine {
    /// Local vertex -> adjacency (global ids).
    std::unordered_map<CellId, std::vector<CellId>> adjacency;
    /// Ghost cells: remote vertex -> last known distance.
    std::unordered_map<CellId, std::uint32_t> ghosts;
    std::unordered_map<CellId, std::uint32_t> distance;
  };

  MachineId OwnerOf(CellId v) const {
    return static_cast<MachineId>(Mix64(v) % options_.num_machines);
  }

  Options options_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<Machine> machines_;
  std::uint64_t num_nodes_ = 0;
};

}  // namespace trinity::baseline

#endif  // TRINITY_BASELINE_GHOST_ENGINE_H_
