#include "analytics/graph_snapshot.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cloud/memory_cloud.h"
#include "common/histogram.h"
#include "compute/packed_messages.h"
#include "net/fabric.h"

namespace trinity::analytics {

Status GraphSnapshot::Validate() const {
  const std::size_t n = id_by_rank.size();
  if (degree_by_rank.size() != n || owner_by_rank.size() != n ||
      local_index.size() != n) {
    return Status::Corruption("snapshot global tables disagree on size");
  }
  if (offsets.size() != local_ranks.size() + 1 || offsets.front() != 0 ||
      offsets.back() != adjacency.size()) {
    return Status::Corruption("snapshot CSR offsets malformed");
  }
  for (std::size_t r = 1; r < n; ++r) {
    if (degree_by_rank[r] > degree_by_rank[r - 1]) {
      return Status::Corruption("snapshot ranks not degree-ordered");
    }
    if (degree_by_rank[r] == degree_by_rank[r - 1] &&
        id_by_rank[r] <= id_by_rank[r - 1]) {
      return Status::Corruption("snapshot rank ties not id-ordered");
    }
  }
  std::size_t locals_seen = 0;
  for (std::size_t i = 0; i < local_ranks.size(); ++i) {
    const std::uint32_t rank = local_ranks[i];
    if (rank >= n) return Status::Corruption("local rank out of range");
    if (i > 0 && rank <= local_ranks[i - 1]) {
      return Status::Corruption("local ranks not ascending");
    }
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("snapshot CSR offsets not monotone");
    }
    if (local_index[rank] != i) {
      return Status::Corruption("local_index disagrees with local_ranks");
    }
    ++locals_seen;
    std::uint32_t prev = 0;
    for (std::uint64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const std::uint32_t nb = adjacency[k];
      if (nb >= rank) {
        return Status::Corruption("oriented edge does not point down-rank");
      }
      if (k > offsets[i] && nb <= prev) {
        return Status::Corruption("oriented list not strictly ascending");
      }
      prev = nb;
    }
  }
  std::size_t locals_indexed = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (local_index[r] != kNotLocal) ++locals_indexed;
  }
  if (locals_indexed != locals_seen) {
    return Status::Corruption("local_index marks a rank with no CSR row");
  }
  return Status::OK();
}

namespace {

/// One frozen node capture: the vertex id plus its dedup undirected
/// neighborhood, read in a single pinned cell visit.
struct CapturedNode {
  CellId id = kInvalidCell;
  std::vector<CellId> neighbors;
};

/// Scans machine m's trunks over the lock-free read path. Nodes that vanish
/// mid-scan (concurrent remove) are skipped; each captured node is
/// internally consistent because the visit pins the cell.
Status ScanMachine(graph::Graph* graph, cloud::MemoryCloud* cloud,
                   MachineId m, std::vector<CapturedNode>* out) {
  storage::MemoryStorage* store = cloud->storage(m);
  if (store == nullptr) return Status::OK();  // Dead slave: empty view.
  std::vector<CellId> ids = graph->LocalNodes(m);
  out->reserve(ids.size());
  for (CellId id : ids) {
    CapturedNode node;
    node.id = id;
    Status s = graph->VisitLocalNode(
        store, id,
        [&node, id](Slice, const CellId* in, std::size_t in_count,
                    const CellId* vout, std::size_t out_count) {
          node.neighbors.reserve(in_count + out_count);
          for (std::size_t i = 0; i < in_count; ++i) {
            if (in[i] != id) node.neighbors.push_back(in[i]);
          }
          for (std::size_t i = 0; i < out_count; ++i) {
            if (vout[i] != id) node.neighbors.push_back(vout[i]);
          }
          std::sort(node.neighbors.begin(), node.neighbors.end());
          node.neighbors.erase(
              std::unique(node.neighbors.begin(), node.neighbors.end()),
              node.neighbors.end());
        });
    if (s.IsNotFound() || s.IsCorruption()) continue;
    if (!s.ok()) return s;
    out->push_back(std::move(node));
  }
  return Status::OK();
}

struct DegreeRecord {
  CellId id;
  std::uint32_t degree;
  MachineId owner;
};

}  // namespace

Status SnapshotBuilder::Build(graph::Graph* graph,
                              std::vector<GraphSnapshot>* views,
                              BuildStats* stats) {
  cloud::MemoryCloud* cloud = graph->cloud();
  if (graph->options().directed && !graph->options().track_inlinks) {
    return Status::InvalidArgument(
        "snapshot build needs in-link tracking: a vertex must see its full "
        "undirected neighborhood in its own cell");
  }
  net::Fabric& fabric = cloud->fabric();
  const int slaves = cloud->num_slaves();
  views->assign(slaves, GraphSnapshot());
  BuildStats local_stats;
  Stopwatch watch;

  // Phase 1: frozen per-machine scans (lock-free read path).
  std::vector<std::vector<CapturedNode>> captured(slaves);
  for (MachineId m = 0; m < slaves; ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    Status s = ScanMachine(graph, cloud, m, &captured[m]);
    if (!s.ok()) return s;
  }
  local_stats.scan_ms = watch.ElapsedMillis();

  // Phase 2: degree gather to a coordinator + rank-table broadcast. One
  // packed payload per machine pair, in each direction — O(machines), not
  // O(edges), and the only traffic the build ever puts on the wire.
  watch.Reset();
  const net::NetworkStats before = fabric.stats();
  MachineId coord = 0;
  for (MachineId m = 0; m < slaves; ++m) {
    if (cloud->storage(m) != nullptr) {
      coord = m;
      break;
    }
  }
  std::vector<DegreeRecord> merged;
  fabric.RegisterAsyncHandler(
      coord, cloud::kSnapshotDegreeHandler,
      [&merged](MachineId src, Slice payload) {
        compute::ForEachPackedRecord(payload, [&](CellId id, Slice deg) {
          if (deg.size() != 4) return;
          std::uint32_t d = 0;
          std::memcpy(&d, deg.data(), 4);
          merged.push_back({id, d, src});
        });
      });
  for (MachineId m = 0; m < slaves; ++m) {
    if (captured[m].empty()) continue;
    if (m == coord) {
      for (const CapturedNode& node : captured[m]) {
        merged.push_back(
            {node.id, static_cast<std::uint32_t>(node.neighbors.size()), m});
      }
      continue;
    }
    std::string buf;
    for (const CapturedNode& node : captured[m]) {
      const auto degree = static_cast<std::uint32_t>(node.neighbors.size());
      compute::AppendPackedRecord(
          &buf, node.id, Slice(reinterpret_cast<const char*>(&degree), 4));
    }
    Status s = fabric.SendPacked(m, coord, cloud::kSnapshotDegreeHandler,
                                 Slice(buf), captured[m].size());
    if (!s.ok()) return s;
  }
  {
    // Coordinator: dedup (a cell captured twice keeps its first claimant)
    // and order by (degree desc, id asc) — the rank function.
    net::Fabric::MeterScope meter(fabric, coord);
    std::stable_sort(merged.begin(), merged.end(),
                     [](const DegreeRecord& a, const DegreeRecord& b) {
                       return a.id < b.id;
                     });
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const DegreeRecord& a, const DegreeRecord& b) {
                               return a.id == b.id;
                             }),
                 merged.end());
    std::sort(merged.begin(), merged.end(),
              [](const DegreeRecord& a, const DegreeRecord& b) {
                if (a.degree != b.degree) return a.degree > b.degree;
                return a.id < b.id;
              });
  }
  // Broadcast the table in rank order; every machine fills its global
  // tables from the arrival order of the records.
  const auto fill_tables = [&merged](GraphSnapshot* view) {
    view->id_by_rank.reserve(merged.size());
    view->degree_by_rank.reserve(merged.size());
    view->owner_by_rank.reserve(merged.size());
    for (const DegreeRecord& rec : merged) {
      view->id_by_rank.push_back(rec.id);
      view->degree_by_rank.push_back(rec.degree);
      view->owner_by_rank.push_back(rec.owner);
    }
  };
  std::string table_buf;
  {
    net::Fabric::MeterScope meter(fabric, coord);
    for (const DegreeRecord& rec : merged) {
      char payload[8];
      std::memcpy(payload, &rec.degree, 4);
      std::memcpy(payload + 4, &rec.owner, 4);
      compute::AppendPackedRecord(&table_buf, rec.id, Slice(payload, 8));
    }
  }
  for (MachineId m = 0; m < slaves; ++m) {
    GraphSnapshot& view = (*views)[m];
    view.machine = m;
    if (m == coord) {
      fill_tables(&view);
      continue;
    }
    fabric.RegisterAsyncHandler(
        m, cloud::kSnapshotRankHandler, [&view](MachineId, Slice payload) {
          compute::ForEachPackedRecord(payload, [&](CellId id, Slice rec) {
            if (rec.size() != 8) return;
            std::uint32_t degree = 0;
            MachineId owner = kInvalidMachine;
            std::memcpy(&degree, rec.data(), 4);
            std::memcpy(&owner, rec.data() + 4, 4);
            view.id_by_rank.push_back(id);
            view.degree_by_rank.push_back(degree);
            view.owner_by_rank.push_back(owner);
          });
        });
    Status s = fabric.SendPacked(coord, m, cloud::kSnapshotRankHandler,
                                 Slice(table_buf), merged.size());
    if (!s.ok()) return s;
  }
  const net::NetworkStats after = fabric.stats();
  local_stats.exchange_bytes = after.bytes - before.bytes;
  local_stats.exchange_messages = after.messages - before.messages;
  local_stats.exchange_ms = watch.ElapsedMillis();

  // Phase 3: per-machine oriented CSR materialization.
  watch.Reset();
  for (MachineId m = 0; m < slaves; ++m) {
    net::Fabric::MeterScope meter(fabric, m);
    GraphSnapshot& view = (*views)[m];
    const std::uint32_t n = view.num_vertices();
    std::unordered_map<CellId, std::uint32_t> rank_of_id;
    rank_of_id.reserve(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      rank_of_id.emplace(view.id_by_rank[r], r);
    }
    // Keep only the captures the coordinator attributed to us (a duplicate
    // claim keeps one owner so every rank has exactly one CSR row
    // cluster-wide), in ascending rank order.
    std::vector<std::pair<std::uint32_t, const CapturedNode*>> rows;
    rows.reserve(captured[m].size());
    for (const CapturedNode& node : captured[m]) {
      auto it = rank_of_id.find(node.id);
      if (it == rank_of_id.end()) continue;
      if (view.owner_by_rank[it->second] != m) continue;
      rows.emplace_back(it->second, &node);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    view.local_index.assign(n, GraphSnapshot::kNotLocal);
    view.local_ranks.reserve(rows.size());
    view.offsets.reserve(rows.size() + 1);
    view.offsets.push_back(0);
    std::vector<std::uint32_t> list;
    for (const auto& [rank, node] : rows) {
      list.clear();
      for (CellId nb : node->neighbors) {
        auto it = rank_of_id.find(nb);
        // Neighbors with no rank were never captured (e.g. a dangling edge
        // or a node added after the freeze) — the frozen view drops them.
        if (it == rank_of_id.end()) continue;
        if (it->second < rank) list.push_back(it->second);
      }
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      view.local_index[rank] =
          static_cast<std::uint32_t>(view.local_ranks.size());
      view.local_ranks.push_back(rank);
      view.adjacency.insert(view.adjacency.end(), list.begin(), list.end());
      view.offsets.push_back(view.adjacency.size());
    }
  }
  local_stats.csr_ms = watch.ElapsedMillis();
  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

Status SnapshotBuilder::BuildGlobal(graph::Graph* graph, GraphSnapshot* out,
                                    BuildStats* stats) {
  cloud::MemoryCloud* cloud = graph->cloud();
  std::vector<GraphSnapshot> views;
  Status s = Build(graph, &views, stats);
  if (!s.ok()) return s;
  net::Fabric& fabric = cloud->fabric();
  const MachineId client = cloud->client_id();

  *out = GraphSnapshot();
  out->machine = kInvalidMachine;
  out->id_by_rank = views[0].id_by_rank;
  out->degree_by_rank = views[0].degree_by_rank;
  out->owner_by_rank = views[0].owner_by_rank;
  const std::uint32_t n = out->num_vertices();

  // Gather: each machine ships its oriented CSR to the client once, as one
  // packed payload of [rank][len][ranks...] records.
  std::vector<std::vector<std::uint32_t>> lists(n);
  std::vector<bool> seen(n, false);
  fabric.RegisterAsyncHandler(
      client, cloud::kSnapshotAdjHandler,
      [&lists, &seen, n](MachineId, Slice payload) {
        compute::ForEachPackedRecord(payload, [&](CellId rank, Slice body) {
          if (rank >= n || body.size() % 4 != 0) return;
          const auto r = static_cast<std::uint32_t>(rank);
          if (seen[r]) return;
          seen[r] = true;
          lists[r].resize(body.size() / 4);
          if (!body.empty()) {
            std::memcpy(lists[r].data(), body.data(), body.size());
          }
        });
      });
  for (const GraphSnapshot& view : views) {
    if (view.num_local() == 0) continue;
    std::string buf;
    for (std::size_t i = 0; i < view.num_local(); ++i) {
      const std::span<const std::uint32_t> list = view.List(i);
      const Slice body =
          list.empty() ? Slice("")
                       : Slice(reinterpret_cast<const char*>(list.data()),
                               list.size() * 4);
      compute::AppendPackedRecord(&buf, view.local_ranks[i], body);
    }
    s = fabric.SendPacked(view.machine, client, cloud::kSnapshotAdjHandler,
                          Slice(buf), view.num_local());
    if (!s.ok()) return s;
  }

  out->local_ranks.resize(n);
  out->local_index.resize(n);
  out->offsets.reserve(n + 1);
  out->offsets.push_back(0);
  for (std::uint32_t r = 0; r < n; ++r) {
    out->local_ranks[r] = r;
    out->local_index[r] = r;
    out->adjacency.insert(out->adjacency.end(), lists[r].begin(),
                          lists[r].end());
    out->offsets.push_back(out->adjacency.size());
  }
  return s;
}

}  // namespace trinity::analytics
