#include "analytics/intersect.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define TRINITY_HAVE_AVX2_DISPATCH 1
#endif

namespace trinity::analytics {

std::uint64_t IntersectMerge(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint64_t* comparisons) {
  std::uint64_t hits = 0;
  std::size_t i = 0, j = 0;
  std::uint64_t steps = 0;
  while (i < na && j < nb) {
    ++steps;
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x == y) {
      ++hits;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  *comparisons += steps;
  return hits;
}

namespace {

/// First index in [lo, hi) with list[index] >= key; galloping's binary-search
/// tail. Steps are charged by the caller.
std::size_t LowerBound(const std::uint32_t* list, std::size_t lo,
                       std::size_t hi, std::uint32_t key,
                       std::uint64_t* steps) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++*steps;
    if (list[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::uint64_t IntersectGalloping(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb,
                                 std::uint64_t* comparisons) {
  // Gallop the smaller list through the larger one.
  if (na > nb) {
    const std::uint32_t* t = a;
    a = b;
    b = t;
    const std::size_t tn = na;
    na = nb;
    nb = tn;
  }
  std::uint64_t hits = 0;
  std::uint64_t steps = 0;
  std::size_t pos = 0;  // Search frontier in b; both lists ascend.
  for (std::size_t i = 0; i < na && pos < nb; ++i) {
    const std::uint32_t key = a[i];
    // Exponential probe from the frontier...
    std::size_t bound = 1;
    while (pos + bound < nb && b[pos + bound] < key) {
      ++steps;
      bound <<= 1;
    }
    ++steps;
    // ...then binary search inside the bracketed window.
    const std::size_t hi = pos + bound < nb ? pos + bound + 1 : nb;
    pos = LowerBound(b, pos, hi, key, &steps);
    if (pos < nb && b[pos] == key) {
      ++hits;
      ++pos;
    }
  }
  *comparisons += steps;
  return hits;
}

std::uint64_t IntersectBitmapProbe(const std::uint32_t* list, std::size_t n,
                                   const std::uint64_t* bitmap,
                                   std::uint64_t* comparisons) {
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t r = list[i];
    hits += (bitmap[r >> 6] >> (r & 63)) & 1u;
  }
  *comparisons += n;
  return hits;
}

std::uint64_t AndPopcountScalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::uint64_t hits = 0;
  for (std::size_t w = 0; w < words; ++w) {
    hits += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return hits;
}

namespace {

#ifdef TRINITY_HAVE_AVX2_DISPATCH
__attribute__((target("avx2"))) std::uint64_t AndPopcountAvx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::uint64_t hits = 0;
  std::size_t w = 0;
  alignas(32) std::uint64_t lanes[4];
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(va, vb));
    hits += static_cast<std::uint64_t>(__builtin_popcountll(lanes[0])) +
            static_cast<std::uint64_t>(__builtin_popcountll(lanes[1])) +
            static_cast<std::uint64_t>(__builtin_popcountll(lanes[2])) +
            static_cast<std::uint64_t>(__builtin_popcountll(lanes[3]));
  }
  for (; w < words; ++w) {
    hits += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return hits;
}
#endif

using AndPopcountFn = std::uint64_t (*)(const std::uint64_t*,
                                        const std::uint64_t*, std::size_t);

AndPopcountFn PickAndPopcount() {
#ifdef TRINITY_HAVE_AVX2_DISPATCH
  if (__builtin_cpu_supports("avx2")) return &AndPopcountAvx2;
#endif
  return &AndPopcountScalar;
}

const AndPopcountFn kAndPopcount = PickAndPopcount();

}  // namespace

bool BitmapKernelUsesAvx2() {
#ifdef TRINITY_HAVE_AVX2_DISPATCH
  return kAndPopcount != &AndPopcountScalar;
#else
  return false;
#endif
}

std::uint64_t IntersectBitmapWords(const std::uint64_t* a,
                                   const std::uint64_t* b, std::size_t words,
                                   std::uint64_t* comparisons) {
  *comparisons += words;
  return kAndPopcount(a, b, words);
}

}  // namespace trinity::analytics
