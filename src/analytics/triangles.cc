#include "analytics/triangles.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "analytics/intersect.h"
#include "cloud/memory_cloud.h"
#include "compute/packed_messages.h"
#include "net/fabric.h"

namespace trinity::analytics {

void TriangleStats::Merge(const TriangleStats& other) {
  triangles += other.triangles;
  merge.Merge(other.merge);
  gallop.Merge(other.gallop);
  probe.Merge(other.probe);
  bitmap_and.Merge(other.bitmap_and);
  bitmap_builds += other.bitmap_builds;
  bitmap_build_ops += other.bitmap_build_ops;
  boundary_calls += other.boundary_calls;
  boundary_lists += other.boundary_lists;
  boundary_bytes += other.boundary_bytes;
  exchange_ms += other.exchange_ms;
  count_ms += other.count_ms;
}

namespace {

/// Resolves oriented lists for one machine's counting pass: local lists out
/// of the view's CSR, boundary lists out of the pool fetched during the
/// exchange. Read-only during the parallel loop.
struct ListResolver {
  const GraphSnapshot* view;
  std::vector<std::uint32_t> fetched;  ///< Boundary lists, concatenated.
  /// Rank → (offset, length) into `fetched`.
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>>
      remote;

  const std::uint32_t* ListOf(std::uint32_t rank, std::uint32_t* len) const {
    const std::uint32_t li = view->local_index[rank];
    if (li != GraphSnapshot::kNotLocal) {
      const std::span<const std::uint32_t> list = view->List(li);
      *len = static_cast<std::uint32_t>(list.size());
      return list.data();
    }
    auto it = remote.find(rank);
    if (it == remote.end()) {
      *len = 0;
      return nullptr;
    }
    *len = it->second.second;
    return fetched.data() + it->second.first;
  }
};

/// Packed hub bitmaps, allocated on demand for *built* ranks below
/// `hub_ranks`. An oriented list of rank r only holds ranks < r, so r's
/// bitmap is sized to (r+63)/64 words — hubs (low rank) get tiny bitmaps,
/// which is what makes the AND so cheap on hub-hub pairs. Ranks with short
/// lists are never built: a bitmap only pays for itself when the probes it
/// serves save more than the build spent, and power-law hubs with short
/// oriented lists fail that test.
struct HubBitmaps {
  static constexpr std::uint32_t kNotBuilt = ~static_cast<std::uint32_t>(0);

  std::uint32_t hub_ranks = 0;
  std::vector<std::uint64_t> bits;      ///< Built bitmaps, concatenated.
  std::vector<std::uint32_t> offset;    ///< Rank → word offset into `bits`.

  const std::uint64_t* Of(std::uint32_t rank) const {
    return bits.data() + offset[rank];
  }
  bool Built(std::uint32_t rank) const {
    return rank < hub_ranks && offset[rank] != kNotBuilt;
  }
};

/// The per-pair kernel dispatch. `prefix` is A+(v)[0..j) (every common
/// element is < u = A+(v)[j], so the prefix is the whole v-side input) and
/// `b` is A+(u).
std::uint64_t CountPair(const TriangleOptions& options, const HubBitmaps& bm,
                        std::uint32_t v, std::uint32_t u,
                        const std::uint32_t* prefix, std::uint32_t na,
                        const std::uint32_t* b, std::uint32_t nb,
                        TriangleStats* stats) {
  const auto record = [&](KernelStats* k, std::uint64_t hits) {
    ++k->intersections;
    k->smaller_len.Add(static_cast<double>(std::min(na, nb)));
    return hits;
  };
  const bool u_resident = bm.Built(u);
  const bool v_resident = bm.Built(v);
  switch (options.kernel) {
    case IntersectKernel::kMerge:
      return record(&stats->merge,
                    IntersectMerge(prefix, na, b, nb, &stats->merge.comparisons));
    case IntersectKernel::kGalloping:
      return record(
          &stats->gallop,
          IntersectGalloping(prefix, na, b, nb, &stats->gallop.comparisons));
    case IntersectKernel::kBitmap:
      if (u_resident && v_resident) {
        const std::uint32_t words = (u + 63) >> 6;
        return record(&stats->bitmap_and,
                      IntersectBitmapWords(bm.Of(v), bm.Of(u), words,
                                           &stats->bitmap_and.comparisons));
      }
      if (u_resident) {
        return record(&stats->probe,
                      IntersectBitmapProbe(prefix, na, bm.Of(u),
                                           &stats->probe.comparisons));
      }
      return record(&stats->merge,
                    IntersectMerge(prefix, na, b, nb, &stats->merge.comparisons));
    case IntersectKernel::kAdaptive:
      break;
  }
  // Adaptive fast path: a pair whose lists total a couple dozen elements
  // costs less to serve than to model — the selection logic below would
  // spend comparable work choosing. A resident hub u still takes the probe
  // (pays na instead of na+nb) or the AND when it scans fewer words than
  // the probe would scan elements; everything else merges.
  constexpr std::uint32_t kTinyPair = 24;
  if (na + nb <= kTinyPair) {
    if (u_resident) {
      const std::uint32_t words = (u + 63) >> 6;
      if (v_resident && words < na) {
        return record(&stats->bitmap_and,
                      IntersectBitmapWords(bm.Of(v), bm.Of(u), words,
                                           &stats->bitmap_and.comparisons));
      }
      return record(&stats->probe,
                    IntersectBitmapProbe(prefix, na, bm.Of(u),
                                         &stats->probe.comparisons));
    }
    return record(&stats->merge,
                  IntersectMerge(prefix, na, b, nb, &stats->merge.comparisons));
  }
  // Adaptive: pick the cheapest kernel by its predicted work. Merge walks
  // both lists; galloping pays ~log(larger/smaller + 1) probes per element
  // of the smaller list (worth it only past gallop_skew); a resident hub u
  // turns the pair into a probe paying only the v-prefix; a bitmap AND pays
  // one op per 64 ranks below u regardless of list lengths — a win only on
  // rows dense relative to their rank width.
  const double cost_merge = static_cast<double>(na) + static_cast<double>(nb);
  const std::uint32_t smaller = std::min(na, nb);
  const std::uint32_t larger = std::max(na, nb);
  double cost_gallop = cost_merge + 1;
  if (smaller > 0 &&
      static_cast<double>(smaller) * options.gallop_skew <=
          static_cast<double>(larger)) {
    cost_gallop =
        static_cast<double>(smaller) *
        (std::bit_width(static_cast<std::uint32_t>(larger / smaller)) + 1);
  }
  const double cost_probe =
      u_resident ? static_cast<double>(na) : cost_merge + 1;
  const double cost_and = (u_resident && v_resident)
                              ? static_cast<double>((u + 63) >> 6)
                              : cost_merge + 1;
  const double best =
      std::min(std::min(cost_merge, cost_gallop), std::min(cost_probe, cost_and));
  if (cost_and == best) {
    const std::uint32_t words = (u + 63) >> 6;
    return record(&stats->bitmap_and,
                  IntersectBitmapWords(bm.Of(v), bm.Of(u), words,
                                       &stats->bitmap_and.comparisons));
  }
  if (cost_probe == best) {
    return record(&stats->probe,
                  IntersectBitmapProbe(prefix, na, bm.Of(u),
                                       &stats->probe.comparisons));
  }
  if (cost_gallop == best) {
    return record(
        &stats->gallop,
        IntersectGalloping(prefix, na, b, nb, &stats->gallop.comparisons));
  }
  return record(&stats->merge,
                IntersectMerge(prefix, na, b, nb, &stats->merge.comparisons));
}

/// Counts one machine's share: every (v, u ∈ A+(v)) pair with v local.
/// Dispatches the vertex loop in cost-weighted shards; each shard
/// accumulates into its own TriangleStats, merged after the barrier.
void CountView(const TriangleOptions& options, ThreadPool* pool,
               const ListResolver& resolver, TriangleStats* stats) {
  const GraphSnapshot& view = *resolver.view;
  const auto num_local = static_cast<int>(view.num_local());
  if (num_local == 0) return;

  // Hub bitmaps: materialize resident ranks whose oriented list is long
  // enough to amortize the build AND that enough local pairs will actually
  // probe — a bitmap's build cost is paid per machine, so a hub that only a
  // handful of this machine's pairs reference is cheaper to merge/gallop
  // against. (At 8 machines each view sees ~1/8 of a hub's references;
  // without the reference gate every machine rebuilds every fetched hub's
  // bitmap and the build work swamps the probes it serves.)
  constexpr std::uint32_t kMinBitmapListLen = 8;
  constexpr std::uint32_t kMinBitmapRefs = 2;
  HubBitmaps bm;
  if (options.kernel == IntersectKernel::kBitmap ||
      options.kernel == IntersectKernel::kAdaptive) {
    bm.hub_ranks = std::min(options.hub_ranks, view.num_vertices());
    bm.offset.assign(bm.hub_ranks, HubBitmaps::kNotBuilt);
    std::vector<std::uint32_t> refs(bm.hub_ranks, 0);
    for (const std::uint32_t u : view.adjacency) {
      if (u < bm.hub_ranks) ++refs[u];
    }
    for (std::uint32_t r = 0; r < bm.hub_ranks; ++r) {
      std::uint32_t len = 0;
      const std::uint32_t* list = resolver.ListOf(r, &len);
      if (list == nullptr || len < kMinBitmapListLen ||
          refs[r] < kMinBitmapRefs) {
        continue;
      }
      bm.offset[r] = static_cast<std::uint32_t>(bm.bits.size());
      bm.bits.resize(bm.bits.size() + ((r + 63) >> 6), 0);
      std::uint64_t* words = bm.bits.data() + bm.offset[r];
      for (std::uint32_t i = 0; i < len; ++i) {
        words[list[i] >> 6] |= 1ull << (list[i] & 63);
      }
      ++stats->bitmap_builds;
      stats->bitmap_build_ops += len;
    }
  }

  // Cost model per local vertex: the exact pair work Σ (1 + min(j, |A+(u)|))
  // — what keeps power-law hubs from serializing one pool worker.
  std::vector<double> costs(num_local);
  for (int i = 0; i < num_local; ++i) {
    const std::span<const std::uint32_t> list =
        view.List(static_cast<std::size_t>(i));
    double c = 1.0;
    for (std::uint32_t j = 0; j < list.size(); ++j) {
      std::uint32_t nb = 0;
      resolver.ListOf(list[j], &nb);
      c += 1.0 + std::min<double>(j, nb);
    }
    costs[i] = c;
  }
  const std::vector<ThreadPool::Shard> shards = ThreadPool::SplitWeighted(
      num_local, [&costs](int i) { return costs[i]; },
      pool->num_threads() * 4);

  std::vector<TriangleStats> shard_stats(shards.size());
  pool->ParallelForShards(shards, [&](int shard, int begin, int end) {
    TriangleStats& local = shard_stats[shard];
    for (int i = begin; i < end; ++i) {
      const std::uint32_t v = view.local_ranks[i];
      const std::span<const std::uint32_t> list =
          view.List(static_cast<std::size_t>(i));
      for (std::uint32_t j = 0; j < list.size(); ++j) {
        const std::uint32_t u = list[j];
        if (j == 0) continue;  // Empty prefix: no triangle through this pair.
        std::uint32_t nb = 0;
        const std::uint32_t* b = resolver.ListOf(u, &nb);
        if (nb == 0) continue;
        local.triangles += CountPair(options, bm, v, u, list.data(), j, b, nb,
                                     &local);
      }
    }
  });
  for (const TriangleStats& s : shard_stats) {
    // Bitmap build work was already recorded once outside the shards.
    stats->Merge(s);
  }
}

}  // namespace

TriangleCounter::TriangleCounter(graph::Graph* graph, TriangleOptions options)
    : graph_(graph), options_(options) {
  int threads = options_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  pool_ = std::make_unique<ThreadPool>(threads);
}

TriangleCounter::TriangleCounter(graph::Graph* graph)
    : TriangleCounter(graph, TriangleOptions()) {}

Status TriangleCounter::Count(const std::vector<GraphSnapshot>& views,
                              TriangleStats* out) {
  *out = TriangleStats();
  cloud::MemoryCloud* cloud = graph_->cloud();
  net::Fabric& fabric = cloud->fabric();
  const int slaves = cloud->num_slaves();
  if (static_cast<int>(views.size()) != slaves) {
    return Status::InvalidArgument("one snapshot view per slave expected");
  }

  // Boundary-list server: answers one pull per requesting machine with the
  // oriented lists of the ranks it asked for. Request: [u32 rank]*; response:
  // packed [rank][len][ranks...] records.
  for (MachineId m = 0; m < slaves; ++m) {
    const GraphSnapshot* view = &views[m];
    fabric.RegisterSyncHandler(
        m, cloud::kSnapshotAdjHandler,
        [view](MachineId, Slice request, std::string* response) {
          if (request.size() % 4 != 0) {
            return Status::InvalidArgument("malformed boundary request");
          }
          const std::size_t count = request.size() / 4;
          for (std::size_t i = 0; i < count; ++i) {
            std::uint32_t rank = 0;
            std::memcpy(&rank, request.data() + i * 4, 4);
            Slice body("");
            if (rank < view->local_index.size() &&
                view->local_index[rank] != GraphSnapshot::kNotLocal) {
              const std::span<const std::uint32_t> list =
                  view->List(view->local_index[rank]);
              if (!list.empty()) {
                body = Slice(reinterpret_cast<const char*>(list.data()),
                             list.size() * 4);
              }
            }
            compute::AppendPackedRecord(response, rank, body);
          }
          return Status::OK();
        });
  }

  for (MachineId m = 0; m < slaves; ++m) {
    const GraphSnapshot& view = views[m];
    if (view.machine != m) {
      return Status::InvalidArgument("snapshot views out of order");
    }
    TriangleStats machine_stats;
    ListResolver resolver;
    resolver.view = &view;

    // Boundary exchange: the distinct remote ranks this machine's oriented
    // lists reference, grouped by owner — fetched once per (m, owner) pair.
    Stopwatch exchange_watch;
    {
      net::Fabric::MeterScope meter(fabric, m);
      std::vector<char> needed(view.num_vertices(), 0);
      for (const std::uint32_t u : view.adjacency) {
        if (view.local_index[u] == GraphSnapshot::kNotLocal) needed[u] = 1;
      }
      std::vector<std::vector<std::uint32_t>> per_owner(slaves);
      for (std::uint32_t r = 0; r < view.num_vertices(); ++r) {
        if (needed[r] == 0) continue;
        const MachineId owner = view.owner_by_rank[r];
        if (owner < 0 || owner >= slaves || owner == m) continue;
        per_owner[owner].push_back(r);
      }
      for (MachineId dst = 0; dst < slaves; ++dst) {
        if (per_owner[dst].empty()) continue;
        std::string request(per_owner[dst].size() * 4, '\0');
        std::memcpy(request.data(), per_owner[dst].data(), request.size());
        std::string response;
        Status s = fabric.Call(m, dst, cloud::kSnapshotAdjHandler,
                               Slice(request), &response);
        if (!s.ok()) return s;
        ++machine_stats.boundary_calls;
        machine_stats.boundary_bytes += request.size() + response.size();
        const bool parsed = compute::ForEachPackedRecord(
            Slice(response), [&resolver](CellId rank, Slice body) {
              const std::uint64_t offset = resolver.fetched.size();
              resolver.fetched.resize(offset + body.size() / 4);
              if (!body.empty()) {
                std::memcpy(resolver.fetched.data() + offset, body.data(),
                            body.size());
              }
              resolver.remote.emplace(
                  static_cast<std::uint32_t>(rank),
                  std::make_pair(offset,
                                 static_cast<std::uint32_t>(body.size() / 4)));
            });
        if (!parsed) return Status::Corruption("malformed boundary response");
        machine_stats.boundary_lists += per_owner[dst].size();
      }
    }
    machine_stats.exchange_ms = exchange_watch.ElapsedMillis();

    Stopwatch count_watch;
    {
      net::Fabric::MeterScope meter(fabric, m);
      CountView(options_, pool_.get(), resolver, &machine_stats);
    }
    machine_stats.count_ms = count_watch.ElapsedMillis();
    out->Merge(machine_stats);
  }
  return Status::OK();
}

Status TriangleCounter::CountLocal(const GraphSnapshot& snapshot,
                                   TriangleStats* out) {
  *out = TriangleStats();
  if (snapshot.num_local() != snapshot.num_vertices()) {
    return Status::InvalidArgument(
        "CountLocal needs a full snapshot (BuildGlobal)");
  }
  ListResolver resolver;
  resolver.view = &snapshot;
  Stopwatch watch;
  CountView(options_, pool_.get(), resolver, out);
  out->count_ms = watch.ElapsedMillis();
  return Status::OK();
}

Status TriangleCounter::CountFromCells(TriangleStats* out,
                                       SnapshotBuilder::BuildStats* build) {
  std::vector<GraphSnapshot> views;
  Status s = SnapshotBuilder::Build(graph_, &views, build);
  if (!s.ok()) return s;
  return Count(views, out);
}

Status CountTrianglesNaive(graph::Graph* graph, std::uint64_t* count,
                           std::uint64_t* cells_fetched) {
  cloud::MemoryCloud* cloud = graph->cloud();
  std::vector<CellId> ids;
  for (MachineId m = 0; m < cloud->num_slaves(); ++m) {
    std::vector<CellId> local = graph->LocalNodes(m);
    ids.insert(ids.end(), local.begin(), local.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // One cloud fetch per cell — the access pattern the snapshot exists to
  // avoid. The undirected edge set is re-derived from out-edges alone, so
  // the anchor shares no code path with the snapshot's in∪out capture.
  std::unordered_map<CellId, std::vector<CellId>> adj;
  adj.reserve(ids.size());
  for (CellId id : ids) adj.emplace(id, std::vector<CellId>());
  std::uint64_t fetched = 0;
  for (CellId id : ids) {
    std::string blob;
    Status s = cloud->GetCell(id, &blob);
    if (s.IsNotFound()) continue;
    if (!s.ok()) return s;
    ++fetched;
    graph::NodeImage node;
    s = graph::Graph::DecodeNode(id, Slice(blob), &node);
    if (!s.ok()) return s;
    for (CellId to : node.out) {
      if (to == id) continue;
      auto it = adj.find(to);
      if (it == adj.end()) continue;  // Dangling edge: no such node.
      adj[id].push_back(to);
      it->second.push_back(id);
    }
  }
  for (auto& [id, neighbors] : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  // Id-ordered count: triangle {u < v < w} found at pair (u, v) by the
  // suffix intersection beyond v.
  std::uint64_t total = 0;
  for (CellId u : ids) {
    const std::vector<CellId>& nu = adj[u];
    for (CellId v : nu) {
      if (v <= u) continue;
      const std::vector<CellId>& nv = adj[v];
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu == *iv) {
          ++total;
          ++iu;
          ++iv;
        } else if (*iu < *iv) {
          ++iu;
        } else {
          ++iv;
        }
      }
    }
  }
  *count = total;
  if (cells_fetched != nullptr) *cells_fetched = fetched;
  return Status::OK();
}

}  // namespace trinity::analytics
