#ifndef TRINITY_ANALYTICS_KTRUSS_H_
#define TRINITY_ANALYTICS_KTRUSS_H_

#include <cstdint>
#include <vector>

#include "analytics/graph_snapshot.h"
#include "common/status.h"

namespace trinity::analytics {

/// Truss decomposition of a gathered full-graph snapshot. Edge e belongs to
/// the k-truss iff every edge of some subgraph containing e closes at least
/// k-2 triangles inside that subgraph; `trussness[e]` is the largest such k
/// (2 for an edge in no triangle).
struct KTrussResult {
  /// Edge arrays aligned to the snapshot's oriented CSR: edge e connects
  /// ranks src[e] (the owning vertex) and dst[e] (< src[e]).
  std::vector<std::uint32_t> src;
  std::vector<std::uint32_t> dst;
  std::vector<std::uint32_t> trussness;
  std::uint32_t max_trussness = 0;  ///< 0 on an edgeless graph.
  std::uint64_t triangles = 0;      ///< Total triangles (from support init).

  std::size_t num_edges() const { return trussness.size(); }

  /// Trussness of the undirected edge {a, b} (ranks, either order), or 0
  /// when no such edge exists.
  std::uint32_t TrussnessOf(std::uint32_t a, std::uint32_t b) const;
};

/// Iterative support peeling with a bucket queue (the standard k-core-style
/// decomposition lifted to edges): initialize each edge's support to its
/// triangle count, then repeatedly peel the minimum-support edge — its
/// trussness is support + 2 — decrementing the supports of the two partner
/// edges of every triangle it still closes. Runs on a full snapshot
/// (SnapshotBuilder::BuildGlobal); returns InvalidArgument for a partial
/// per-machine view.
Status KTrussDecompose(const GraphSnapshot& snapshot, KTrussResult* out);

}  // namespace trinity::analytics

#endif  // TRINITY_ANALYTICS_KTRUSS_H_
