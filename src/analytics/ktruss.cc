#include "analytics/ktruss.h"

#include <algorithm>
#include <utility>

namespace trinity::analytics {

std::uint32_t KTrussResult::TrussnessOf(std::uint32_t a,
                                        std::uint32_t b) const {
  for (std::size_t e = 0; e < trussness.size(); ++e) {
    if ((src[e] == a && dst[e] == b) || (src[e] == b && dst[e] == a)) {
      return trussness[e];
    }
  }
  return 0;
}

namespace {

/// (neighbor rank, edge id), sorted by neighbor — the full undirected
/// adjacency the peel walks to find an edge's surviving triangles.
using AdjEntry = std::pair<std::uint32_t, std::uint32_t>;

const AdjEntry* FindNeighbor(const std::vector<AdjEntry>& adj,
                             std::uint32_t rank) {
  auto it = std::lower_bound(
      adj.begin(), adj.end(), rank,
      [](const AdjEntry& e, std::uint32_t r) { return e.first < r; });
  if (it == adj.end() || it->first != rank) return nullptr;
  return &*it;
}

}  // namespace

Status KTrussDecompose(const GraphSnapshot& snapshot, KTrussResult* out) {
  *out = KTrussResult();
  Status s = snapshot.Validate();
  if (!s.ok()) return s;
  if (snapshot.num_local() != snapshot.num_vertices()) {
    return Status::InvalidArgument(
        "k-truss needs a full snapshot (BuildGlobal), not a per-machine view");
  }
  const std::uint32_t n = snapshot.num_vertices();
  const std::size_t m = snapshot.adjacency.size();
  out->src.resize(m);
  out->dst.resize(m);
  out->trussness.assign(m, 2);
  if (m == 0) return Status::OK();

  // Undirected adjacency with edge ids: edge e = (v, u) contributes
  // (u, e) under v and (v, e) under u.
  std::vector<std::vector<AdjEntry>> adj(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t v = snapshot.local_ranks[i];
    const std::span<const std::uint32_t> list = snapshot.List(i);
    for (std::size_t j = 0; j < list.size(); ++j) {
      const auto e = static_cast<std::uint32_t>(snapshot.offsets[i] + j);
      out->src[e] = v;
      out->dst[e] = list[j];
      adj[v].emplace_back(list[j], e);
      adj[list[j]].emplace_back(v, e);
    }
  }
  for (std::vector<AdjEntry>& a : adj) std::sort(a.begin(), a.end());

  // Initial supports: |N(src) ∩ N(dst)| over the full neighborhoods.
  std::vector<std::uint32_t> support(m, 0);
  for (std::uint32_t e = 0; e < m; ++e) {
    const std::vector<AdjEntry>& a = adj[out->src[e]];
    const std::vector<AdjEntry>& b = adj[out->dst[e]];
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < a.size() && ib < b.size()) {
      if (a[ia].first == b[ib].first) {
        ++support[e];
        ++ia;
        ++ib;
      } else if (a[ia].first < b[ib].first) {
        ++ia;
      } else {
        ++ib;
      }
    }
  }
  std::uint64_t support_sum = 0;
  for (std::uint32_t x : support) support_sum += x;
  out->triangles = support_sum / 3;  // Every triangle supports 3 edges.

  // Bucket queue over supports (k-core style): edges sorted by support,
  // position[] locating each edge, bucket_start[] the first slot of each
  // support value. A decrement swaps the edge to the front of its bucket and
  // shifts the bucket boundary — O(1) per support change.
  const std::uint32_t max_support =
      *std::max_element(support.begin(), support.end());
  std::vector<std::uint32_t> bucket_start(max_support + 2, 0);
  for (std::uint32_t x : support) ++bucket_start[x + 1];
  for (std::uint32_t i = 1; i < bucket_start.size(); ++i) {
    bucket_start[i] += bucket_start[i - 1];
  }
  std::vector<std::uint32_t> order(m);
  std::vector<std::uint32_t> position(m);
  {
    std::vector<std::uint32_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (std::uint32_t e = 0; e < m; ++e) {
      position[e] = cursor[support[e]]++;
      order[position[e]] = e;
    }
  }

  // Batagelj–Zaversnik peel lifted to edges. The guard support[f] >
  // support[e] keeps every touched bucket front strictly past the scan
  // line (all slots ≤ idx hold supports ≤ support[e], so bucket_start of
  // any higher support points beyond idx), making each decrement a safe
  // O(1) swap-to-front.
  std::vector<char> alive(m, 1);
  const auto decrement = [&](std::uint32_t f) {
    const std::uint32_t sup = support[f];
    const std::uint32_t pf = position[f];
    const std::uint32_t pw = bucket_start[sup];
    const std::uint32_t w = order[pw];
    if (f != w) {
      order[pf] = w;
      order[pw] = f;
      position[f] = pw;
      position[w] = pf;
    }
    ++bucket_start[sup];
    --support[f];
  };

  for (std::uint32_t idx = 0; idx < m; ++idx) {
    const std::uint32_t e = order[idx];
    alive[e] = 0;
    out->trussness[e] = support[e] + 2;
    const std::uint32_t u = out->src[e];
    const std::uint32_t v = out->dst[e];
    const std::vector<AdjEntry>& small =
        adj[u].size() <= adj[v].size() ? adj[u] : adj[v];
    const std::uint32_t other_end = adj[u].size() <= adj[v].size() ? v : u;
    for (const AdjEntry& we : small) {
      if (!alive[we.second]) continue;
      const AdjEntry* back = FindNeighbor(adj[other_end], we.first);
      if (back == nullptr || !alive[back->second]) continue;
      // Triangle {u, v, w} was still closed: both surviving edges lose the
      // support e provided, clamped at the current peel level.
      if (support[we.second] > support[e]) decrement(we.second);
      if (support[back->second] > support[e]) decrement(back->second);
    }
  }

  out->max_trussness =
      *std::max_element(out->trussness.begin(), out->trussness.end());
  return Status::OK();
}

}  // namespace trinity::analytics
